/**
 * @file
 * Bit-exact equivalence harness for the event-driven DRAM core.
 *
 * Two layers of protection:
 *
 *  1. Golden pinning: the reference loop's statistics on a frozen
 *     workload matrix were captured from the pre-refactor simulator,
 *     so the controller-internals changes that rode along with the
 *     event core (incremental row-hit counters, the O(1) arrival-order
 *     request queue) are proven behavior-preserving in absolute terms,
 *     not merely consistent between the two present-day modes.
 *
 *  2. Cross-mode equivalence: reference and event-driven runs of the
 *     same system must agree on every ControllerStats field, every
 *     per-source counter, the exact achieved-bandwidth doubles, and
 *     the final cycle — across every registered scheduling policy,
 *     channel counts, demand scales, and seeds, including
 *     configurations that exercise scheduler quantum/shuffle tick
 *     events. The policy axis enumerates the registry, so a newly
 *     registered policy is equivalence-tested automatically;
 *     PCCS_POLICY_FILTER=A,B restricts the run to a subset (CI runs
 *     one job per policy).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "dram/run_mode.hh"
#include "dram/system.hh"

namespace pccs::dram {
namespace {

/** Restore the process-wide fast-path flag on scope exit. */
class FastPathGuard
{
  public:
    explicit FastPathGuard(bool on) : saved_(dramFastPathEnabled())
    {
        setDramFastPathEnabled(on);
    }
    ~FastPathGuard() { setDramFastPathEnabled(saved_); }

  private:
    bool saved_;
};

/**
 * Registered policy names, restricted by PCCS_POLICY_FILTER
 * (comma-separated names or aliases) when set.
 */
std::vector<std::string>
testPolicies()
{
    const char *env = std::getenv("PCCS_POLICY_FILTER");
    if (!env || !*env)
        return schedulerNames();
    std::vector<std::string> out;
    std::string list(env);
    std::size_t pos = 0;
    while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok =
            list.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        if (!tok.empty())
            out.push_back(schedulerFromName(tok).name);
        pos = comma == std::string::npos ? comma : comma + 1;
    }
    return out;
}

/**
 * FROZEN: this exact construction produced the golden numbers below
 * from the pre-refactor simulator. Do not change it; add new cases to
 * the cross-mode matrix instead.
 */
std::unique_ptr<DramSystem>
buildSystem(std::string_view policy, unsigned channels, double scale,
            std::uint64_t seed, DramRunMode mode,
            const SchedulerParams &sched_params = {})
{
    DramConfig cfg = table1Config();
    cfg.channels = channels;
    cfg.requestBufferEntries = 64 * channels;
    auto sys = std::make_unique<DramSystem>(cfg, policy, sched_params,
                                            mode);

    struct Gen
    {
        double demand, locality, writeFrac;
        unsigned mlp;
    };
    const Gen gens[4] = {{2.0, 0.97, 0.00, 16},
                         {6.0, 0.90, 0.20, 32},
                         {12.0, 0.60, 0.00, 64},
                         {20.0, 0.85, 0.35, 48}};
    for (unsigned s = 0; s < 4; ++s) {
        TrafficParams p;
        p.source = s;
        p.demand = gens[s].demand * scale;
        p.rowLocality = gens[s].locality;
        p.writeFraction = gens[s].writeFrac;
        p.mlp = gens[s].mlp;
        p.seed = seed * 131 + s;
        sys->addGenerator(p);
    }

    // A looping trace-replay source alongside the synthetic ones, so
    // both front ends are under test.
    Rng trng(seed * 977 + 7);
    std::vector<TraceEntry> trace;
    trace.reserve(400);
    for (unsigned i = 0; i < 400; ++i)
        trace.push_back({trng.next(), trng.chance(0.25)});
    ReplayParams rp;
    rp.source = 4;
    rp.demand = 8.0 * scale;
    rp.mlp = 24;
    rp.loop = true;
    sys->addReplay(rp, std::move(trace));
    return sys;
}

constexpr Cycles kWarmup = 3000;
constexpr Cycles kWindow = 20000;

void
runWindow(DramSystem &sys)
{
    sys.run(kWarmup);
    sys.resetMeasurement();
    sys.run(kWindow);
}

/** Compare every observable of two runs of the same configuration. */
void
expectIdentical(DramSystem &a, DramSystem &b)
{
    const ControllerStats &sa = a.controller().stats();
    const ControllerStats &sb = b.controller().stats();
    EXPECT_EQ(sa.reads, sb.reads);
    EXPECT_EQ(sa.writes, sb.writes);
    EXPECT_EQ(sa.rowHits, sb.rowHits);
    EXPECT_EQ(sa.rowMisses, sb.rowMisses);
    EXPECT_EQ(sa.refreshes, sb.refreshes);
    EXPECT_EQ(sa.bytesTransferred, sb.bytesTransferred);
    EXPECT_EQ(sa.completed, sb.completed);
    EXPECT_EQ(sa.totalLatency, sb.totalLatency);
    for (unsigned s = 0; s < Scheduler::maxSources; ++s) {
        EXPECT_EQ(sa.bytesPerSource[s], sb.bytesPerSource[s])
            << "source " << s;
        EXPECT_EQ(sa.completedPerSource[s], sb.completedPerSource[s])
            << "source " << s;
    }
    EXPECT_EQ(a.now(), b.now());
    EXPECT_EQ(a.controller().pendingRequests(),
              b.controller().pendingRequests());
    ASSERT_EQ(a.numGenerators(), b.numGenerators());
    for (std::size_t i = 0; i < a.numGenerators(); ++i) {
        EXPECT_EQ(a.generator(i).issuedLines(),
                  b.generator(i).issuedLines());
        EXPECT_EQ(a.generator(i).completedLines(),
                  b.generator(i).completedLines());
        // Bandwidth is a float derived from identical integers over an
        // identical window: exact double equality is required.
        EXPECT_EQ(a.achievedBandwidth(i), b.achievedBandwidth(i));
    }
    ASSERT_EQ(a.numReplays(), b.numReplays());
    for (std::size_t i = 0; i < a.numReplays(); ++i) {
        EXPECT_EQ(a.replay(i).issuedLines(), b.replay(i).issuedLines());
        EXPECT_EQ(a.replay(i).completedLines(),
                  b.replay(i).completedLines());
    }
    EXPECT_EQ(a.effectiveBandwidthFraction(),
              b.effectiveBandwidthFraction());
}

/**
 * Golden statistics captured from the per-cycle reference simulator
 * (channels = 4, seed = 1, default SchedulerParams, warmup 3000 +
 * window 20000). The five Table 2 policies' rows predate the event
 * core (pre-refactor capture); the extension policies' rows were
 * pinned from the same reference loop when each policy landed. Any
 * drift here means a rework changed simulated behavior, not just its
 * speed.
 */
struct GoldenRow
{
    const char *policy;
    double scale;
    struct
    {
        std::uint64_t reads, writes, rowHits, rowMisses, refreshes,
            bytes, completed, totalLatency;
    } want;
};

const GoldenRow kGolden[] = {
    {"FCFS", 0.25,
     {1837u, 506u, 609u, 1734u, 4u, 149952u, 2344u, 207366u}},
    {"FCFS", 2.50,
     {6147u, 1161u, 2239u, 5069u, 4u, 467712u, 7305u, 3672390u}},
    {"FR-FCFS", 0.25,
     {1837u, 506u, 617u, 1726u, 4u, 149952u, 2344u, 204290u}},
    {"FR-FCFS", 2.50,
     {7535u, 1445u, 3340u, 5640u, 4u, 574720u, 8979u, 3588863u}},
    {"ATLAS", 0.25,
     {1837u, 506u, 615u, 1728u, 4u, 149952u, 2344u, 206079u}},
    {"ATLAS", 2.50,
     {6693u, 1416u, 2639u, 5470u, 4u, 518976u, 8108u, 3421097u}},
    {"TCM", 0.25,
     {1837u, 506u, 617u, 1726u, 4u, 149952u, 2344u, 204290u}},
    {"TCM", 2.50,
     {7535u, 1445u, 3340u, 5640u, 4u, 574720u, 8979u, 3588863u}},
    {"SMS", 0.25,
     {1837u, 506u, 617u, 1726u, 4u, 149952u, 2344u, 204610u}},
    {"SMS", 2.50,
     {7519u, 1438u, 3314u, 5643u, 4u, 573248u, 8964u, 3622229u}},
    {"BLISS", 0.25,
     {1837u, 506u, 621u, 1722u, 4u, 149952u, 2344u, 204308u}},
    {"BLISS", 2.50,
     {7414u, 1438u, 3227u, 5625u, 4u, 566528u, 8853u, 3587850u}},
    {"PARBS", 0.25,
     {1837u, 506u, 616u, 1727u, 4u, 149952u, 2344u, 203872u}},
    {"PARBS", 2.50,
     {7473u, 1444u, 3301u, 5616u, 4u, 570688u, 8923u, 3570163u}},
    {"MEDUSA", 0.25,
     {1837u, 506u, 617u, 1726u, 4u, 149952u, 2345u, 204033u}},
    {"MEDUSA", 2.50,
     {7073u, 1370u, 3041u, 5402u, 4u, 540352u, 8457u, 3606726u}},
    // scale 5.0: deep saturation (queues full, backpressure active) —
    // the regime the bank-mask fast issue engine serves. Captured from
    // the reference loop immediately before the fast engine landed.
    {"FCFS", 5.00,
     {6136u, 1141u, 2288u, 4989u, 4u, 465728u, 7272u, 3422702u}},
    {"FR-FCFS", 5.00,
     {7551u, 1422u, 3313u, 5660u, 4u, 574272u, 8976u, 3655994u}},
    {"ATLAS", 5.00,
     {7603u, 1431u, 3671u, 5363u, 4u, 578176u, 9039u, 3621300u}},
    {"TCM", 5.00,
     {7551u, 1422u, 3313u, 5660u, 4u, 574272u, 8976u, 3655994u}},
    {"SMS", 5.00,
     {7475u, 1397u, 3244u, 5628u, 4u, 567808u, 8874u, 3649405u}},
    {"BLISS", 5.00,
     {7605u, 1403u, 3375u, 5633u, 4u, 576512u, 9004u, 3642757u}},
    {"PARBS", 5.00,
     {7615u, 1425u, 3495u, 5545u, 4u, 578560u, 9039u, 3664481u}},
    {"MEDUSA", 5.00,
     {7112u, 1345u, 3132u, 5325u, 4u, 541248u, 8455u, 3646361u}},
};

/**
 * One golden-pinning configuration: a run mode plus the fast issue
 * engine flag (sampled at controller construction). Reference mode
 * never consults the engine, so only the event-driven rows fork on
 * it: the mask-based fast path and the retained full-scan path must
 * both land on the identical pre-refactor numbers.
 */
struct GoldenMode
{
    DramRunMode mode;
    bool fastPath;
    const char *name;
};

class GoldenPinning : public ::testing::TestWithParam<GoldenMode>
{
};

TEST_P(GoldenPinning, MatchesPreRefactorStats)
{
    const GoldenMode &gm = GetParam();
    const std::vector<std::string> policies = testPolicies();
    auto selected = [&](const char *policy) {
        for (const std::string &p : policies)
            if (p == policy)
                return true;
        return false;
    };
    for (const GoldenRow &row : kGolden) {
        if (!selected(row.policy))
            continue;
        std::unique_ptr<DramSystem> sys;
        {
            FastPathGuard guard(gm.fastPath);
            sys = buildSystem(row.policy, 4, row.scale, 1, gm.mode);
        }
        runWindow(*sys);
        const ControllerStats &st = sys->controller().stats();
        SCOPED_TRACE(testing::Message()
                     << row.policy << " scale " << row.scale);
        EXPECT_EQ(st.reads, row.want.reads);
        EXPECT_EQ(st.writes, row.want.writes);
        EXPECT_EQ(st.rowHits, row.want.rowHits);
        EXPECT_EQ(st.rowMisses, row.want.rowMisses);
        EXPECT_EQ(st.refreshes, row.want.refreshes);
        EXPECT_EQ(st.bytesTransferred, row.want.bytes);
        EXPECT_EQ(st.completed, row.want.completed);
        EXPECT_EQ(st.totalLatency, row.want.totalLatency);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, GoldenPinning,
    ::testing::Values(
        GoldenMode{DramRunMode::Reference, true, "Reference"},
        GoldenMode{DramRunMode::EventDriven, true,
                   "EventDrivenFastPath"},
        GoldenMode{DramRunMode::EventDriven, false,
                   "EventDrivenFullScan"}),
    [](const auto &pinfo) { return std::string(pinfo.param.name); });

TEST(DramEquivalence, CrossModeMatrix)
{
    for (const std::string &policy : testPolicies()) {
        for (unsigned channels : {1u, 4u}) {
            for (double scale : {0.25, 1.0, 2.5}) {
                for (std::uint64_t seed : {1u, 2u}) {
                    SCOPED_TRACE(testing::Message()
                                 << policy << " ch="
                                 << channels << " scale=" << scale
                                 << " seed=" << seed);
                    auto ref = buildSystem(policy, channels, scale,
                                           seed,
                                           DramRunMode::Reference);
                    auto evt = buildSystem(policy, channels, scale,
                                           seed,
                                           DramRunMode::EventDriven);
                    runWindow(*ref);
                    runWindow(*evt);
                    expectIdentical(*ref, *evt);
                }
            }
        }
    }
}

TEST(DramEquivalence, SchedulerTickEventsUnderQuietTraffic)
{
    // Small quanta + low demand: ATLAS quantum folds, TCM
    // recluster/shuffle boundaries, and BLISS blacklist clears land
    // inside long quiet stretches, so the event core must wake on the
    // exact boundary cycles to keep the `next = now + interval` rearm
    // chains — and with them every later scheduling decision —
    // identical.
    SchedulerParams sp;
    sp.quantum = 1700;
    sp.tcmShuffleInterval = 430;
    sp.blissClearInterval = 790;
    for (const char *policy : {"ATLAS", "TCM", "BLISS"}) {
        for (double scale : {0.05, 1.0}) {
            SCOPED_TRACE(testing::Message()
                         << policy << " scale " << scale);
            auto ref = buildSystem(policy, 4, scale, 3,
                                   DramRunMode::Reference, sp);
            auto evt = buildSystem(policy, 4, scale, 3,
                                   DramRunMode::EventDriven, sp);
            runWindow(*ref);
            runWindow(*evt);
            expectIdentical(*ref, *evt);
        }
    }
}

TEST(DramEquivalence, ModeSwitchMidRun)
{
    // A system may flip modes between run() calls; state carried
    // across the switch (open rows, tokens, inflight, refresh phase)
    // must line up bit-for-bit with a single-mode run.
    auto ref = buildSystem("FR-FCFS", 4, 1.0, 5,
                           DramRunMode::Reference);
    auto mixed = buildSystem("FR-FCFS", 4, 1.0, 5,
                             DramRunMode::EventDriven);
    ref->run(9000);
    mixed->run(4000);
    mixed->setRunMode(DramRunMode::Reference);
    mixed->run(2500);
    mixed->setRunMode(DramRunMode::EventDriven);
    mixed->run(2500);
    expectIdentical(*ref, *mixed);
}

} // namespace
} // namespace pccs::dram
