/**
 * @file
 * Tests for the whole-SoC co-run predictor, including iterative
 * external-pressure refinement.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "pccs/builder.hh"
#include "pccs/corun.hh"
#include "soc/simulator.hh"
#include "workloads/nn.hh"
#include "workloads/rodinia.hh"
#include "workloads/table8.hh"

namespace pccs::model {
namespace {

PccsParams
flatParams()
{
    PccsParams p;
    p.normalBw = 40.0;
    p.intensiveBw = 100.0;
    p.mrmc = 4.0;
    p.cbp = 50.0;
    p.tbwdc = 90.0;
    p.rateN = 1.0;
    p.peakBw = 137.0;
    return p;
}

TEST(CorunInput, MeanDemandIsTimeWeighted)
{
    CorunInput in;
    in.phases = {{100.0, 0.25}, {20.0, 0.75}};
    EXPECT_DOUBLE_EQ(in.meanDemand(), 40.0);
}

TEST(CorunPredict, OneShotMatchesManualProtocol)
{
    const PccsModel m(flatParams());
    CorunInput a{&m, {{60.0, 1.0}}};
    CorunInput b{&m, {{50.0, 1.0}}};
    const auto rs = predictCorun({a, b});
    ASSERT_EQ(rs.size(), 2u);
    EXPECT_NEAR(rs[0], m.relativeSpeed(60.0, 50.0), 1e-9);
    EXPECT_NEAR(rs[1], m.relativeSpeed(50.0, 60.0), 1e-9);
}

TEST(CorunPredict, SinglePlacementIsFullSpeed)
{
    const PccsModel m(flatParams());
    CorunInput a{&m, {{60.0, 1.0}}};
    const auto rs = predictCorun({a});
    EXPECT_NEAR(rs[0], 100.0, 1e-9);
}

TEST(CorunPredict, RefinementNeverRaisesPressure)
{
    // Refined external pressures are bounded by the standalone
    // demands, so refined predictions are >= one-shot predictions.
    const PccsModel m(flatParams());
    CorunInput a{&m, {{80.0, 1.0}}};
    CorunInput b{&m, {{70.0, 1.0}}};
    const auto one_shot = predictCorun({a, b});
    CorunPredictOptions opts;
    opts.refinementIterations = 5;
    const auto refined = predictCorun({a, b}, opts);
    for (std::size_t i = 0; i < 2; ++i)
        EXPECT_GE(refined[i], one_shot[i] - 1e-9);
}

TEST(CorunPredict, RefinementConverges)
{
    const PccsModel m(flatParams());
    CorunInput a{&m, {{80.0, 1.0}}};
    CorunInput b{&m, {{70.0, 1.0}}};
    CorunPredictOptions opts;
    opts.refinementIterations = 10;
    const auto r10 = predictCorun({a, b}, opts);
    opts.refinementIterations = 11;
    const auto r11 = predictCorun({a, b}, opts);
    EXPECT_NEAR(r10[0], r11[0], 0.5);
    EXPECT_NEAR(r10[1], r11[1], 0.5);
}

TEST(CorunPredict, PhasedInputsUsePiecewisePrediction)
{
    const PccsModel m(flatParams());
    CorunInput phased{&m, {{110.0, 0.3}, {50.0, 0.7}}};
    CorunInput other{&m, {{40.0, 1.0}}};
    const auto rs = predictCorun({phased, other});
    const double expected =
        predictPiecewise(m, phased.phases, 40.0);
    EXPECT_NEAR(rs[0], expected, 1e-9);
}

TEST(CorunPredict, OneShotProtocolFitsDemandBasedSubstrate)
{
    // On this substrate a bandwidth-capped co-runner still *demands*
    // its standalone rate (the fairness allocator caps its service,
    // not its request stream), so the paper's one-shot protocol is
    // the right match and refinement must stay a bounded, optimistic
    // variant of it (it models issue-throttled co-runners instead).
    const soc::SocSimulator sim(soc::xavierLike());
    const auto &cfg = sim.config();
    const std::size_t pu[3] = {
        static_cast<std::size_t>(cfg.puIndex(soc::PuKind::Cpu)),
        static_cast<std::size_t>(cfg.puIndex(soc::PuKind::Gpu)),
        static_cast<std::size_t>(cfg.puIndex(soc::PuKind::Dla))};
    const PccsModel models[3] = {buildModel(sim, pu[0]),
                                 buildModel(sim, pu[1]),
                                 buildModel(sim, pu[2])};

    double err_oneshot = 0.0, err_refined = 0.0;
    int n = 0;
    for (const auto &wl : workloads::table8Workloads()) {
        soc::PhasedWorkload on[3];
        on[0] = soc::PhasedWorkload::single(
            workloads::rodiniaKernel(wl.cpuBench, soc::PuKind::Cpu));
        on[1] = soc::PhasedWorkload::single(
            workloads::rodiniaKernel(wl.gpuBench, soc::PuKind::Gpu));
        on[2] = workloads::dlaWorkload(wl.dlaModel);

        std::vector<CorunInput> inputs(3);
        for (int i = 0; i < 3; ++i) {
            inputs[i].model = &models[i];
            double total = 0.0;
            for (const auto &ph : on[i].phases)
                total += sim.profile(pu[i], ph).seconds;
            for (const auto &ph : on[i].phases) {
                const auto prof = sim.profile(pu[i], ph);
                inputs[i].phases.push_back(
                    {prof.bandwidthDemand, prof.seconds / total});
            }
        }

        const soc::CorunOutcome actual =
            sim.run({soc::Placement{pu[0], on[0]},
                     soc::Placement{pu[1], on[1]},
                     soc::Placement{pu[2], on[2]}});

        const auto one_shot = predictCorun(inputs);
        CorunPredictOptions opts;
        opts.refinementIterations = 6;
        const auto refined = predictCorun(inputs, opts);
        for (int i = 0; i < 3; ++i, ++n) {
            err_oneshot += std::fabs(
                one_shot[i] - actual.placements[i].relativeSpeed);
            err_refined += std::fabs(
                refined[i] - actual.placements[i].relativeSpeed);
        }
    }
    EXPECT_LT(err_oneshot / n, 12.0);
    EXPECT_LT(err_refined / n, err_oneshot / n + 4.0)
        << "refinement must stay a bounded variant of one-shot";
}

TEST(CorunPredictDeath, MissingModelPanics)
{
    CorunInput in;
    in.phases = {{10.0, 1.0}};
    EXPECT_DEATH(predictCorun({in}), "model");
}

TEST(CorunPredictDeath, EmptyInputsPanic)
{
    EXPECT_DEATH(predictCorun({}), "inputs");
}

} // namespace
} // namespace pccs::model
