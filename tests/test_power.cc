/**
 * @file
 * Tests for the power model and power-budgeted design exploration
 * (the Section 5 power-budget workflow).
 */

#include <gtest/gtest.h>

#include "calib/calibrator.hh"
#include "gables/gables.hh"
#include "pccs/builder.hh"
#include "pccs/power.hh"

namespace pccs::model {
namespace {

TEST(PuPower, CubicFrequencyScaling)
{
    PowerParams p;
    p.dynamicWatts = 16.0;
    p.staticWatts = 2.0;
    EXPECT_DOUBLE_EQ(puPower(p, 1000.0, 1000.0), 18.0);
    EXPECT_DOUBLE_EQ(puPower(p, 500.0, 1000.0), 2.0 + 16.0 / 8.0);
}

TEST(PuPower, CoreScaleReducesDynamicOnly)
{
    PowerParams p;
    p.dynamicWatts = 16.0;
    p.staticWatts = 2.0;
    EXPECT_DOUBLE_EQ(puPower(p, 1000.0, 1000.0, 0.5), 10.0);
}

TEST(PuPower, LinearExponentOption)
{
    PowerParams p;
    p.dynamicWatts = 10.0;
    p.staticWatts = 0.0;
    p.frequencyExponent = 1.0;
    EXPECT_DOUBLE_EQ(puPower(p, 250.0, 1000.0), 2.5);
}

TEST(PuPowerDeath, BadCoreScalePanics)
{
    EXPECT_DEATH(puPower(PowerParams{}, 500.0, 1000.0, 0.0), "scale");
}

class PowerBudgetTest : public ::testing::Test
{
  protected:
    PowerBudgetTest()
    {
        problem.soc = soc::xavierLike();
        const soc::SocSimulator sim(problem.soc);
        for (std::size_t i = 0; i < problem.soc.pus.size(); ++i) {
            models.push_back(std::make_unique<PccsModel>(
                buildModel(sim, i)));
            problem.models.push_back(models.back().get());
            // A memory-hungry kernel on every PU.
            problem.kernels.push_back(calib::makeCalibrator(
                sim.model(), problem.soc.pus[i],
                0.8 * problem.soc.pus[i].drawBandwidth()));
            // Clock grid: 50%..100% of nominal, 5 points.
            std::vector<MHz> grid;
            const MHz fmax = problem.soc.pus[i].maxFrequency;
            for (double r : {0.5, 0.625, 0.75, 0.875, 1.0})
                grid.push_back(r * fmax);
            problem.grids.push_back(grid);
        }
        // CPU 12 W, GPU 20 W, DLA 6 W dynamic at nominal clocks.
        problem.power = {{12.0, 2.0, 3.0},
                         {20.0, 3.0, 3.0},
                         {6.0, 1.0, 3.0}};
    }

    /** Power of the all-lowest-clocks assignment. */
    double
    minFeasibleWatts() const
    {
        double watts = 0.0;
        for (std::size_t i = 0; i < problem.soc.pus.size(); ++i) {
            watts += puPower(problem.power[i],
                             problem.grids[i].front(),
                             problem.soc.pus[i].maxFrequency);
        }
        return watts;
    }

    PowerBudgetProblem problem;
    std::vector<std::unique_ptr<PccsModel>> models;
};

TEST_F(PowerBudgetTest, UnlimitedBudgetPicksFeasibleAssignment)
{
    problem.budgetWatts = 1000.0;
    const PowerBudgetResult r = explorePowerBudget(problem);
    ASSERT_EQ(r.frequencies.size(), 3u);
    EXPECT_GT(r.worstRelativePerformance, 20.0);
    EXPECT_LE(r.totalWatts, 1000.0);
}

TEST_F(PowerBudgetTest, TightBudgetLowersClocksAndPower)
{
    problem.budgetWatts = 1000.0;
    const PowerBudgetResult loose = explorePowerBudget(problem);
    problem.budgetWatts = 1.1 * minFeasibleWatts();
    const PowerBudgetResult tight = explorePowerBudget(problem);
    ASSERT_EQ(tight.frequencies.size(), 3u);
    EXPECT_LE(tight.totalWatts, problem.budgetWatts + 1e-9);
    EXPECT_LE(tight.worstRelativePerformance,
              loose.worstRelativePerformance + 1e-9);
}

TEST_F(PowerBudgetTest, InfeasibleBudgetReturnsEmpty)
{
    problem.budgetWatts = 1.0; // below static power alone
    const PowerBudgetResult r = explorePowerBudget(problem);
    EXPECT_TRUE(r.frequencies.empty());
    EXPECT_DOUBLE_EQ(r.worstRelativePerformance, 0.0);
}

TEST_F(PowerBudgetTest, ContentionMakesDownClockingCheap)
{
    // The paper's use-case insight: with all PUs memory-hungry, the
    // co-run performance is grant-bound, so a sizable power cut costs
    // little predicted performance.
    problem.budgetWatts = 1000.0;
    const PowerBudgetResult loose = explorePowerBudget(problem);
    problem.budgetWatts = 1.15 * minFeasibleWatts();
    const PowerBudgetResult tight = explorePowerBudget(problem);
    ASSERT_FALSE(tight.frequencies.empty());
    // Nearly half the power for most of the worst-case performance.
    EXPECT_GT(tight.worstRelativePerformance,
              0.7 * loose.worstRelativePerformance);
}

TEST_F(PowerBudgetTest, ReportsPerPuPerformance)
{
    problem.budgetWatts = 40.0;
    const PowerBudgetResult r = explorePowerBudget(problem);
    ASSERT_EQ(r.relativePerformance.size(), 3u);
    for (double rel : r.relativePerformance)
        EXPECT_GE(rel, r.worstRelativePerformance - 1e-9);
}

TEST_F(PowerBudgetTest, GablesOverestimatesBudgetedPerformance)
{
    // Gables predicts no contention below peak, so it believes a
    // tight budget still delivers near-full performance.
    problem.budgetWatts = 35.0;
    const PowerBudgetResult via_pccs = explorePowerBudget(problem);

    const gables::GablesModel gables(
        problem.soc.memory.peakBandwidth);
    PowerBudgetProblem optimistic = problem;
    optimistic.models = {&gables, &gables, &gables};
    const PowerBudgetResult via_gables =
        explorePowerBudget(optimistic);

    ASSERT_FALSE(via_pccs.frequencies.empty());
    ASSERT_FALSE(via_gables.frequencies.empty());
    EXPECT_GE(via_gables.worstRelativePerformance,
              via_pccs.worstRelativePerformance);
}

TEST_F(PowerBudgetTest, MismatchedArraysPanic)
{
    problem.budgetWatts = 50.0;
    problem.grids.pop_back();
    EXPECT_DEATH(explorePowerBudget(problem), "parallel");
}

} // namespace
} // namespace pccs::model
