/**
 * @file
 * End-to-end tests of the TCP service: a real server on an ephemeral
 * loopback port, driven through TcpClient.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "pccs/model.hh"
#include "pccs/serialize.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/registry.hh"
#include "serve/server.hh"

namespace pccs::serve {
namespace {

model::PccsParams
sampleParams()
{
    model::PccsParams p;
    p.normalBw = 38.1;
    p.intensiveBw = 96.2;
    p.mrmc = 4.9;
    p.cbp = 45.3;
    p.tbwdc = 87.2;
    p.rateN = 1.11;
    p.peakBw = 137.0;
    return p;
}

/** A live server on an ephemeral port with one model, "m". */
struct LiveServer
{
    ModelRegistry registry;
    Metrics metrics;
    Dispatcher dispatcher{registry, metrics};
    Server server{dispatcher};

    LiveServer()
    {
        registry.addFromParams("m", sampleParams(), "test");
        std::string error;
        if (!server.start(&error))
            ADD_FAILURE() << "server failed to start: " << error;
    }

    ~LiveServer() { server.stop(); }

    TcpClient connect()
    {
        TcpClient client;
        std::string error;
        EXPECT_TRUE(
            client.connectTo("127.0.0.1", server.port(), &error))
            << error;
        return client;
    }
};

Json
makePredict(double demand, double external, int id)
{
    Json req = Json::object();
    req.set("op", "predict");
    req.set("id", id);
    req.set("model", "m");
    req.set("demand", demand);
    req.set("external", external);
    return req;
}

TEST(ServeServer, PredictOverTcpIsBitExact)
{
    LiveServer live;
    TcpClient client = live.connect();
    const model::PccsModel reference(sampleParams());

    for (double x : {8.0, 45.0, 120.0}) {
        for (double y : {0.0, 33.0, 80.0}) {
            const Json resp = client.request(makePredict(x, y, 1));
            ASSERT_TRUE(resp.find("ok")->asBool()) << resp.dump();
            EXPECT_EQ(resp.find("result")
                          ->find("relativeSpeed")
                          ->asNumber(),
                      reference.relativeSpeed(x, y));
        }
    }
}

TEST(ServeServer, PipelinedRequestsAnswerInOrder)
{
    LiveServer live;
    TcpClient client = live.connect();

    // Fire 50 requests without reading a single response; the server
    // must answer all of them, in order, likely in few batches.
    constexpr int kCount = 50;
    for (int i = 0; i < kCount; ++i)
        ASSERT_TRUE(
            client.sendLine(makePredict(10.0 + i, 5.0, i).dump()));
    for (int i = 0; i < kCount; ++i) {
        const auto line = client.recvLine();
        ASSERT_TRUE(line.has_value()) << "eof after " << i;
        const JsonParse parsed = parseJson(*line);
        ASSERT_TRUE(parsed.ok()) << *line;
        EXPECT_DOUBLE_EQ(parsed.value->find("id")->asNumber(), i);
        EXPECT_TRUE(parsed.value->find("ok")->asBool());
    }
}

TEST(ServeServer, MalformedFrameKeepsTheConnectionUsable)
{
    LiveServer live;
    TcpClient client = live.connect();

    ASSERT_TRUE(client.sendLine("this is not json"));
    auto line = client.recvLine();
    ASSERT_TRUE(line.has_value());
    EXPECT_FALSE(parseJson(*line).value->find("ok")->asBool());

    // An oversized line (> 1 MiB) is rejected but not fatal either.
    ASSERT_TRUE(client.sendLine(std::string(2u << 20, 'x')));
    line = client.recvLine();
    ASSERT_TRUE(line.has_value());
    EXPECT_FALSE(parseJson(*line).value->find("ok")->asBool());

    const Json resp = client.request(makePredict(20.0, 10.0, 9));
    EXPECT_TRUE(resp.find("ok")->asBool()) << resp.dump();
}

TEST(ServeServer, ConcurrentClients)
{
    LiveServer live;
    const model::PccsModel reference(sampleParams());
    constexpr int kClients = 6, kRequests = 40;
    std::vector<std::thread> threads;
    std::vector<int> bad(kClients, 0);
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            TcpClient client;
            std::string error;
            if (!client.connectTo("127.0.0.1", live.server.port(),
                                  &error)) {
                bad[c] = kRequests;
                return;
            }
            for (int i = 0; i < kRequests; ++i) {
                const double x = 5.0 + (c * kRequests + i) % 130;
                const Json resp =
                    client.request(makePredict(x, 25.0, i));
                const Json *ok = resp.find("ok");
                if (ok == nullptr || !ok->asBool() ||
                    resp.find("result")
                            ->find("relativeSpeed")
                            ->asNumber() !=
                        reference.relativeSpeed(x, 25.0)) {
                    ++bad[c];
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (int c = 0; c < kClients; ++c)
        EXPECT_EQ(bad[c], 0) << "client " << c;
    EXPECT_GE(live.server.connectionsAccepted(),
              static_cast<std::uint64_t>(kClients));
}

TEST(ServeServer, ReloadSwapsTheServedModelVersion)
{
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "pccs_serve_e2e_reload.model")
            .string();
    model::saveParams(sampleParams(), path);

    LiveServer live;
    ASSERT_EQ(live.registry.addFromFile("disk", path), "");
    TcpClient client = live.connect();

    Json predict = makePredict(90.0, 40.0, 1);
    predict.set("model", "disk");
    Json v1 = client.request(predict);
    ASSERT_TRUE(v1.find("ok")->asBool()) << v1.dump();
    EXPECT_DOUBLE_EQ(v1.find("result")->find("version")->asNumber(),
                     1.0);

    model::PccsParams changed = sampleParams();
    changed.cbp = 70.0;
    model::saveParams(changed, path);

    Json reload = Json::object();
    reload.set("op", "reload");
    reload.set("model", "disk");
    const Json reloaded = client.request(reload);
    ASSERT_TRUE(reloaded.find("ok")->asBool()) << reloaded.dump();
    EXPECT_DOUBLE_EQ(
        reloaded.find("result")->find("version")->asNumber(), 2.0);

    const Json v2 = client.request(predict);
    EXPECT_DOUBLE_EQ(v2.find("result")->find("version")->asNumber(),
                     2.0);
    EXPECT_EQ(v2.find("result")->find("relativeSpeed")->asNumber(),
              model::PccsModel(changed).relativeSpeed(90.0, 40.0));
    std::remove(path.c_str());
}

TEST(ServeServer, StatsShutdownAndGracefulExit)
{
    LiveServer live;
    TcpClient client = live.connect();

    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(
            client.request(makePredict(30.0, 10.0, i)).find("ok")
                ->asBool());

    Json statsReq = Json::object();
    statsReq.set("op", "stats");
    const Json stats = client.request(statsReq);
    ASSERT_TRUE(stats.find("ok")->asBool());
    const Json *predict =
        stats.find("result")->find("endpoints")->find("predict");
    ASSERT_NE(predict, nullptr);
    EXPECT_DOUBLE_EQ(predict->find("requests")->asNumber(), 5.0);
    EXPECT_GT(
        predict->find("latency")->find("p95Us")->asNumber(), 0.0);

    Json shutdownReq = Json::object();
    shutdownReq.set("op", "shutdown");
    const Json bye = client.request(shutdownReq);
    EXPECT_TRUE(bye.find("ok")->asBool());
    EXPECT_TRUE(
        bye.find("result")->find("stopping")->asBool());

    // The shutdown response arrived before the teardown; the server
    // unblocks serveForever and joins cleanly.
    std::thread waiter([&] { live.server.serveForever(); });
    waiter.join();
    EXPECT_TRUE(live.server.stopRequested());
}

TEST(ServeServer, FragmentedFramesAcrossArbitraryBoundaries)
{
    LiveServer live;
    TcpClient client = live.connect();

    // One frame dripped in byte-sized writes: the server must not
    // answer until the newline lands, then answer exactly once.
    const std::string frame = makePredict(42.0, 25.0, 7).dump() + "\n";
    for (char c : frame)
        ASSERT_TRUE(client.sendRaw(&c, 1));
    auto line = client.recvLine();
    ASSERT_TRUE(line.has_value());
    const JsonParse one = parseJson(*line);
    ASSERT_TRUE(one.ok()) << *line;
    EXPECT_TRUE(one.value->find("ok")->asBool());
    EXPECT_DOUBLE_EQ(one.value->find("id")->asNumber(), 7.0);

    // Two frames split at an awkward boundary: the tail of the first
    // and the head of the second arrive in the same write.
    const std::string a = makePredict(10.0, 5.0, 1).dump() + "\n";
    const std::string b = makePredict(20.0, 5.0, 2).dump() + "\n";
    const std::string glued = a + b;
    const std::size_t cut = a.size() - 4;
    ASSERT_TRUE(client.sendRaw(glued.data(), cut));
    ASSERT_TRUE(
        client.sendRaw(glued.data() + cut, glued.size() - cut));
    for (int id = 1; id <= 2; ++id) {
        line = client.recvLine();
        ASSERT_TRUE(line.has_value());
        const JsonParse parsed = parseJson(*line);
        ASSERT_TRUE(parsed.ok()) << *line;
        EXPECT_TRUE(parsed.value->find("ok")->asBool());
        EXPECT_DOUBLE_EQ(parsed.value->find("id")->asNumber(), id);
    }
}

TEST(ServeServer, SlowReaderParksOutputAndRecovers)
{
    // A tiny parked-output cap plus a shrunken client receive window
    // forces the whole backpressure path: partial send() parks the
    // remainder, EPOLLOUT re-arms, reads pause at the cap and resume
    // once the peer drains. Every response must still arrive, in
    // order, byte-intact.
    ModelRegistry registry;
    Metrics metrics;
    Dispatcher dispatcher{registry, metrics};
    ServerOptions opts;
    opts.maxPendingWriteBytes = 32u << 10;
    Server server{dispatcher, opts};
    registry.addFromParams("m", sampleParams(), "test");
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    TcpClient client;
    ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error))
        << error;
    const int rcvbuf = 4096;
    ::setsockopt(client.fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                 sizeof(rcvbuf));

    // ~250 KiB of responses against a 32 KiB cap and a 4 KiB peer
    // window: parking is certain, and the delayed-ACK-throttled
    // drain (~100 KiB/s) keeps the test a few seconds, not minutes.
    constexpr int kCount = 1200;
    std::string all;
    for (int i = 0; i < kCount; ++i)
        all += makePredict(5.0 + i % 130, 25.0, i).dump() + "\n";

    // Writer and reader must overlap: once the server hits the cap it
    // stops reading until responses drain, so a send-everything-first
    // client would deadlock against itself.
    std::thread writer([&] {
        EXPECT_TRUE(client.sendRaw(all.data(), all.size()));
    });
    for (int i = 0; i < kCount; ++i) {
        const auto line = client.recvLine();
        ASSERT_TRUE(line.has_value()) << "eof after " << i;
        const JsonParse parsed = parseJson(*line);
        ASSERT_TRUE(parsed.ok()) << *line;
        ASSERT_TRUE(parsed.value->find("ok")->asBool()) << *line;
        ASSERT_DOUBLE_EQ(parsed.value->find("id")->asNumber(), i);
    }
    writer.join();
    server.stop();
}

TEST(ServeServer, OversizedLineDiscardedAcrossManyReads)
{
    LiveServer live;
    TcpClient client = live.connect();

    // 2.5 MiB of garbage (limit: 1 MiB) dripped in 64 KiB chunks, so
    // the server crosses into discard mode mid-line and has to keep
    // discarding across multiple edge-triggered read cycles.
    const std::string chunk(64u << 10, 'x');
    for (int i = 0; i < 40; ++i)
        ASSERT_TRUE(client.sendRaw(chunk.data(), chunk.size()));
    ASSERT_TRUE(client.sendRaw("\n", 1));

    auto line = client.recvLine();
    ASSERT_TRUE(line.has_value());
    const JsonParse rejected = parseJson(*line);
    ASSERT_TRUE(rejected.ok()) << *line;
    EXPECT_FALSE(rejected.value->find("ok")->asBool());
    EXPECT_NE(rejected.value->find("error")->asString().find(
                  "size limit"),
              std::string::npos);

    // The connection survives and the framing is back in sync.
    const Json resp = client.request(makePredict(20.0, 10.0, 3));
    EXPECT_TRUE(resp.find("ok")->asBool()) << resp.dump();
}

TEST(ServeServer, HotReloadUnderConcurrentLoad)
{
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "pccs_serve_e2e_reload_load.model")
            .string();
    model::saveParams(sampleParams(), path);

    LiveServer live;
    ASSERT_EQ(live.registry.addFromFile("disk", path), "");

    constexpr int kWorkers = 3, kRequests = 200, kReloads = 10;
    std::vector<std::thread> workers;
    std::vector<int> bad(kWorkers, 0);
    for (int w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&, w] {
            TcpClient client;
            if (!client.connectTo("127.0.0.1", live.server.port())) {
                bad[w] = kRequests;
                return;
            }
            for (int i = 0; i < kRequests; ++i) {
                Json req = makePredict(5.0 + i % 130, 25.0, i);
                req.set("model", "disk");
                const Json resp = client.request(req);
                const Json *ok = resp.find("ok");
                if (ok == nullptr || !ok->asBool()) {
                    ++bad[w];
                    continue;
                }
                const double version =
                    resp.find("result")->find("version")->asNumber();
                if (version < 1.0 || version > kReloads + 1.0)
                    ++bad[w];
            }
        });
    }

    TcpClient admin = live.connect();
    for (int r = 0; r < kReloads; ++r) {
        model::PccsParams changed = sampleParams();
        changed.cbp = 45.3 + r;
        model::saveParams(changed, path);
        Json reload = Json::object();
        reload.set("op", "reload");
        reload.set("model", "disk");
        const Json resp = admin.request(reload);
        ASSERT_TRUE(resp.find("ok")->asBool()) << resp.dump();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    for (auto &t : workers)
        t.join();
    for (int w = 0; w < kWorkers; ++w)
        EXPECT_EQ(bad[w], 0) << "worker " << w;
    std::remove(path.c_str());
}

TEST(ServeServer, ConnectionChurnReusesSlots)
{
    LiveServer live;
    // Far more connections than one slab chunk (256): slots must be
    // recycled through the free list with their generation bumped, so
    // stale epoll events can't reach a reused connection.
    constexpr int kChurn = 300;
    for (int i = 0; i < kChurn; ++i) {
        TcpClient client = live.connect();
        const Json resp =
            client.request(makePredict(5.0 + i % 130, 25.0, i));
        ASSERT_TRUE(resp.find("ok")->asBool()) << resp.dump();
        ASSERT_DOUBLE_EQ(resp.find("id")->asNumber(), i);
    }
    EXPECT_GE(live.server.connectionsAccepted(),
              static_cast<std::uint64_t>(kChurn));
}

TEST(ServeServer, ShardCountFromOptionsAndEnvironment)
{
    ModelRegistry registry;
    registry.addFromParams("m", sampleParams(), "test");
    Metrics metrics;
    Dispatcher dispatcher{registry, metrics};

    {
        ServerOptions opts;
        opts.shards = 4;
        Server server{dispatcher, opts};
        std::string error;
        ASSERT_TRUE(server.start(&error)) << error;
        EXPECT_EQ(server.shardCount(), 4u);

        // All shards accept from the same listener; a burst of
        // clients spread across them still gets correct answers.
        const model::PccsModel reference(sampleParams());
        std::vector<std::thread> threads;
        std::vector<int> bad(8, 0);
        for (int c = 0; c < 8; ++c) {
            threads.emplace_back([&, c] {
                TcpClient client;
                if (!client.connectTo("127.0.0.1", server.port())) {
                    bad[c] = 1;
                    return;
                }
                for (int i = 0; i < 25; ++i) {
                    const double x = 5.0 + (c * 25 + i) % 130;
                    const Json resp =
                        client.request(makePredict(x, 25.0, i));
                    const Json *ok = resp.find("ok");
                    if (ok == nullptr || !ok->asBool() ||
                        resp.find("result")
                                ->find("relativeSpeed")
                                ->asNumber() !=
                            reference.relativeSpeed(x, 25.0))
                        ++bad[c];
                }
            });
        }
        for (auto &t : threads)
            t.join();
        for (int c = 0; c < 8; ++c)
            EXPECT_EQ(bad[c], 0) << "client " << c;
        server.stop();
    }

    {
        ::setenv("PCCS_SERVE_SHARDS", "3", 1);
        Server server{dispatcher};
        std::string error;
        ASSERT_TRUE(server.start(&error)) << error;
        EXPECT_EQ(server.shardCount(), 3u);
        server.stop();
        ::unsetenv("PCCS_SERVE_SHARDS");
    }
}

} // namespace
} // namespace pccs::serve
