/**
 * @file
 * End-to-end tests of the TCP service: a real server on an ephemeral
 * loopback port, driven through TcpClient.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "pccs/model.hh"
#include "pccs/serialize.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/registry.hh"
#include "serve/server.hh"

namespace pccs::serve {
namespace {

model::PccsParams
sampleParams()
{
    model::PccsParams p;
    p.normalBw = 38.1;
    p.intensiveBw = 96.2;
    p.mrmc = 4.9;
    p.cbp = 45.3;
    p.tbwdc = 87.2;
    p.rateN = 1.11;
    p.peakBw = 137.0;
    return p;
}

/** A live server on an ephemeral port with one model, "m". */
struct LiveServer
{
    ModelRegistry registry;
    Metrics metrics;
    Dispatcher dispatcher{registry, metrics};
    Server server{dispatcher};

    LiveServer()
    {
        registry.addFromParams("m", sampleParams(), "test");
        std::string error;
        if (!server.start(&error))
            ADD_FAILURE() << "server failed to start: " << error;
    }

    ~LiveServer() { server.stop(); }

    TcpClient connect()
    {
        TcpClient client;
        std::string error;
        EXPECT_TRUE(
            client.connectTo("127.0.0.1", server.port(), &error))
            << error;
        return client;
    }
};

Json
makePredict(double demand, double external, int id)
{
    Json req = Json::object();
    req.set("op", "predict");
    req.set("id", id);
    req.set("model", "m");
    req.set("demand", demand);
    req.set("external", external);
    return req;
}

TEST(ServeServer, PredictOverTcpIsBitExact)
{
    LiveServer live;
    TcpClient client = live.connect();
    const model::PccsModel reference(sampleParams());

    for (double x : {8.0, 45.0, 120.0}) {
        for (double y : {0.0, 33.0, 80.0}) {
            const Json resp = client.request(makePredict(x, y, 1));
            ASSERT_TRUE(resp.find("ok")->asBool()) << resp.dump();
            EXPECT_EQ(resp.find("result")
                          ->find("relativeSpeed")
                          ->asNumber(),
                      reference.relativeSpeed(x, y));
        }
    }
}

TEST(ServeServer, PipelinedRequestsAnswerInOrder)
{
    LiveServer live;
    TcpClient client = live.connect();

    // Fire 50 requests without reading a single response; the server
    // must answer all of them, in order, likely in few batches.
    constexpr int kCount = 50;
    for (int i = 0; i < kCount; ++i)
        ASSERT_TRUE(
            client.sendLine(makePredict(10.0 + i, 5.0, i).dump()));
    for (int i = 0; i < kCount; ++i) {
        const auto line = client.recvLine();
        ASSERT_TRUE(line.has_value()) << "eof after " << i;
        const JsonParse parsed = parseJson(*line);
        ASSERT_TRUE(parsed.ok()) << *line;
        EXPECT_DOUBLE_EQ(parsed.value->find("id")->asNumber(), i);
        EXPECT_TRUE(parsed.value->find("ok")->asBool());
    }
}

TEST(ServeServer, MalformedFrameKeepsTheConnectionUsable)
{
    LiveServer live;
    TcpClient client = live.connect();

    ASSERT_TRUE(client.sendLine("this is not json"));
    auto line = client.recvLine();
    ASSERT_TRUE(line.has_value());
    EXPECT_FALSE(parseJson(*line).value->find("ok")->asBool());

    // An oversized line (> 1 MiB) is rejected but not fatal either.
    ASSERT_TRUE(client.sendLine(std::string(2u << 20, 'x')));
    line = client.recvLine();
    ASSERT_TRUE(line.has_value());
    EXPECT_FALSE(parseJson(*line).value->find("ok")->asBool());

    const Json resp = client.request(makePredict(20.0, 10.0, 9));
    EXPECT_TRUE(resp.find("ok")->asBool()) << resp.dump();
}

TEST(ServeServer, ConcurrentClients)
{
    LiveServer live;
    const model::PccsModel reference(sampleParams());
    constexpr int kClients = 6, kRequests = 40;
    std::vector<std::thread> threads;
    std::vector<int> bad(kClients, 0);
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            TcpClient client;
            std::string error;
            if (!client.connectTo("127.0.0.1", live.server.port(),
                                  &error)) {
                bad[c] = kRequests;
                return;
            }
            for (int i = 0; i < kRequests; ++i) {
                const double x = 5.0 + (c * kRequests + i) % 130;
                const Json resp =
                    client.request(makePredict(x, 25.0, i));
                const Json *ok = resp.find("ok");
                if (ok == nullptr || !ok->asBool() ||
                    resp.find("result")
                            ->find("relativeSpeed")
                            ->asNumber() !=
                        reference.relativeSpeed(x, 25.0)) {
                    ++bad[c];
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (int c = 0; c < kClients; ++c)
        EXPECT_EQ(bad[c], 0) << "client " << c;
    EXPECT_GE(live.server.connectionsAccepted(),
              static_cast<std::uint64_t>(kClients));
}

TEST(ServeServer, ReloadSwapsTheServedModelVersion)
{
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "pccs_serve_e2e_reload.model")
            .string();
    model::saveParams(sampleParams(), path);

    LiveServer live;
    ASSERT_EQ(live.registry.addFromFile("disk", path), "");
    TcpClient client = live.connect();

    Json predict = makePredict(90.0, 40.0, 1);
    predict.set("model", "disk");
    Json v1 = client.request(predict);
    ASSERT_TRUE(v1.find("ok")->asBool()) << v1.dump();
    EXPECT_DOUBLE_EQ(v1.find("result")->find("version")->asNumber(),
                     1.0);

    model::PccsParams changed = sampleParams();
    changed.cbp = 70.0;
    model::saveParams(changed, path);

    Json reload = Json::object();
    reload.set("op", "reload");
    reload.set("model", "disk");
    const Json reloaded = client.request(reload);
    ASSERT_TRUE(reloaded.find("ok")->asBool()) << reloaded.dump();
    EXPECT_DOUBLE_EQ(
        reloaded.find("result")->find("version")->asNumber(), 2.0);

    const Json v2 = client.request(predict);
    EXPECT_DOUBLE_EQ(v2.find("result")->find("version")->asNumber(),
                     2.0);
    EXPECT_EQ(v2.find("result")->find("relativeSpeed")->asNumber(),
              model::PccsModel(changed).relativeSpeed(90.0, 40.0));
    std::remove(path.c_str());
}

TEST(ServeServer, StatsShutdownAndGracefulExit)
{
    LiveServer live;
    TcpClient client = live.connect();

    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(
            client.request(makePredict(30.0, 10.0, i)).find("ok")
                ->asBool());

    Json statsReq = Json::object();
    statsReq.set("op", "stats");
    const Json stats = client.request(statsReq);
    ASSERT_TRUE(stats.find("ok")->asBool());
    const Json *predict =
        stats.find("result")->find("endpoints")->find("predict");
    ASSERT_NE(predict, nullptr);
    EXPECT_DOUBLE_EQ(predict->find("requests")->asNumber(), 5.0);
    EXPECT_GT(
        predict->find("latency")->find("p95Us")->asNumber(), 0.0);

    Json shutdownReq = Json::object();
    shutdownReq.set("op", "shutdown");
    const Json bye = client.request(shutdownReq);
    EXPECT_TRUE(bye.find("ok")->asBool());
    EXPECT_TRUE(
        bye.find("result")->find("stopping")->asBool());

    // The shutdown response arrived before the teardown; the server
    // unblocks serveForever and joins cleanly.
    std::thread waiter([&] { live.server.serveForever(); });
    waiter.join();
    EXPECT_TRUE(live.server.stopRequested());
}

} // namespace
} // namespace pccs::serve
