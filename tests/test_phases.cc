/**
 * @file
 * Tests for multi-phase program prediction (Section 3.2 / Figure 13).
 */

#include <gtest/gtest.h>

#include "pccs/model.hh"
#include "pccs/phases.hh"

namespace pccs::model {
namespace {

PccsParams
params()
{
    PccsParams p;
    p.normalBw = 40.0;
    p.intensiveBw = 100.0;
    p.mrmc = 5.0;
    p.cbp = 50.0;
    p.tbwdc = 90.0;
    p.rateN = 1.2;
    p.peakBw = 137.0;
    return p;
}

TEST(Phases, SinglePhaseMatchesDirectPrediction)
{
    const PccsModel m(params());
    const std::vector<PhaseDemand> one{{60.0, 1.0}};
    EXPECT_NEAR(predictPiecewise(m, one, 45.0),
                m.relativeSpeed(60.0, 45.0), 1e-9);
    EXPECT_NEAR(predictAverageBw(m, one, 45.0),
                m.relativeSpeed(60.0, 45.0), 1e-9);
}

TEST(Phases, EqualPhasesCollapse)
{
    const PccsModel m(params());
    const std::vector<PhaseDemand> phases{{60.0, 0.5}, {60.0, 0.5}};
    EXPECT_NEAR(predictPiecewise(m, phases, 45.0),
                m.relativeSpeed(60.0, 45.0), 1e-9);
}

TEST(Phases, PiecewiseIsHarmonicTimeAggregation)
{
    const PccsModel m(params());
    const std::vector<PhaseDemand> phases{{110.0, 0.25}, {60.0, 0.75}};
    const double rs1 = m.relativeSpeed(110.0, 45.0);
    const double rs2 = m.relativeSpeed(60.0, 45.0);
    const double expected =
        100.0 / (0.25 / (rs1 / 100.0) + 0.75 / (rs2 / 100.0));
    EXPECT_NEAR(predictPiecewise(m, phases, 45.0), expected, 1e-9);
}

TEST(Phases, AverageBwUnderestimatesSlowdown)
{
    // The Figure 13 point: with one high-BW phase, feeding the average
    // bandwidth to the model predicts a milder slowdown than the
    // correct piecewise method (high-BW phases suffer disproportionate
    // slowdowns).
    const PccsModel m(params());
    const std::vector<PhaseDemand> phases{{115.0, 0.3}, {55.0, 0.7}};
    const double piecewise = predictPiecewise(m, phases, 40.0);
    const double averaged = predictAverageBw(m, phases, 40.0);
    EXPECT_GT(averaged, piecewise);
}

TEST(Phases, SharesNeedNotBeNormalized)
{
    const PccsModel m(params());
    const std::vector<PhaseDemand> a{{110.0, 0.25}, {60.0, 0.75}};
    const std::vector<PhaseDemand> b{{110.0, 1.0}, {60.0, 3.0}};
    EXPECT_NEAR(predictPiecewise(m, a, 45.0),
                predictPiecewise(m, b, 45.0), 1e-9);
    EXPECT_NEAR(predictAverageBw(m, a, 45.0),
                predictAverageBw(m, b, 45.0), 1e-9);
}

TEST(Phases, ZeroShitPhaseIgnored)
{
    const PccsModel m(params());
    const std::vector<PhaseDemand> a{{110.0, 0.0}, {60.0, 1.0}};
    EXPECT_NEAR(predictPiecewise(m, a, 45.0),
                m.relativeSpeed(60.0, 45.0), 1e-9);
}

TEST(Phases, NoExternalPressureIsFullSpeed)
{
    const PccsModel m(params());
    const std::vector<PhaseDemand> phases{{110.0, 0.5}, {20.0, 0.5}};
    EXPECT_NEAR(predictPiecewise(m, phases, 0.0), 100.0, 1e-9);
}

TEST(PhasesDeath, EmptyPhaseListPanics)
{
    const PccsModel m(params());
    EXPECT_DEATH(predictPiecewise(m, {}, 10.0), "empty");
}

TEST(PhasesDeath, AllZeroSharesPanic)
{
    const PccsModel m(params());
    const std::vector<PhaseDemand> phases{{50.0, 0.0}, {60.0, 0.0}};
    EXPECT_DEATH(predictPiecewise(m, phases, 10.0), "zero");
}

} // namespace
} // namespace pccs::model
