/**
 * @file
 * Tests for the QoS scheduler (src/sched/): job-table handle safety,
 * admission and placement decisions, the incremental slowdown cache,
 * parity with the design explorer's batched grid evaluation, and —
 * the load-bearing one — oracle validation: a pinned arrival trace is
 * scheduled and the accepted schedule replayed through the SoC
 * simulator, checking that every admitted job's *simulated* slowdown
 * honors the SLO the controller promised.
 */

#include <gtest/gtest.h>

#include <vector>

#include "pccs/design.hh"
#include "sched/job_table.hh"
#include "sched/oracle.hh"
#include "sched/qos.hh"
#include "workloads/rodinia.hh"

namespace pccs::sched {
namespace {

// ---------------------------------------------------------------- //
// JobTable                                                          //
// ---------------------------------------------------------------- //

TEST(JobTableTest, StaleAfterRelease)
{
    JobTable t;
    const JobHandle h = t.acquire();
    ASSERT_NE(h, kNoJob);
    ASSERT_NE(t.get(h), nullptr);
    EXPECT_TRUE(t.release(h));
    EXPECT_EQ(t.get(h), nullptr);
    EXPECT_FALSE(t.release(h)) << "double release must fail";
    EXPECT_EQ(t.size(), 0u);
}

TEST(JobTableTest, ZeroHandleIsNoJob)
{
    JobTable t;
    EXPECT_EQ(t.get(kNoJob), nullptr);
    EXPECT_FALSE(t.release(kNoJob));
}

TEST(JobTableTest, ReuseBumpsGeneration)
{
    JobTable t;
    const JobHandle h1 = t.acquire();
    t.get(h1)->name = "first";
    ASSERT_TRUE(t.release(h1));
    const JobHandle h2 = t.acquire();
    // The slot is recycled but the old handle must stay stale.
    EXPECT_NE(h1, h2);
    EXPECT_EQ(t.get(h1), nullptr);
    ASSERT_NE(t.get(h2), nullptr);
}

TEST(JobTableTest, GrowsAcrossChunksWithStableAddresses)
{
    JobTable t;
    std::vector<JobHandle> handles;
    for (std::size_t i = 0; i < 3 * JobTable::kChunk + 7; ++i) {
        handles.push_back(t.acquire());
        t.get(handles.back())->seq = i;
    }
    const Job *first = t.get(handles.front());
    EXPECT_EQ(t.size(), handles.size());
    EXPECT_GE(t.capacity(), handles.size());
    // Growth must never move a live job.
    EXPECT_EQ(t.get(handles.front()), first);
    for (std::size_t i = 0; i < handles.size(); ++i) {
        ASSERT_NE(t.get(handles[i]), nullptr);
        EXPECT_EQ(t.get(handles[i])->seq, i);
    }
    std::size_t visited = 0;
    t.forEach([&](JobHandle, const Job &) { ++visited; });
    EXPECT_EQ(visited, handles.size());
}

// ---------------------------------------------------------------- //
// QosController                                                     //
// ---------------------------------------------------------------- //

class QosTest : public ::testing::Test
{
  protected:
    /** A memory-bound kernel (GPU demand near the interface cap). */
    static soc::KernelProfile memBound()
    {
        soc::KernelProfile k{"mem-bound"};
        k.intensity = 0.01;
        k.locality = 0.9;
        return k;
    }

    JobRequest request(double slo, int pu = -1)
    {
        JobRequest req;
        req.kernel = memBound();
        req.sloSlowdown = slo;
        req.puIndex = pu;
        return req;
    }

    soc::SocConfig soc = soc::xavierLike();
    int gpu = soc.puIndex(soc::PuKind::Gpu);
    int cpu = soc.puIndex(soc::PuKind::Cpu);
};

TEST_F(QosTest, LooseSloAdmitsAtReducedClock)
{
    QosController ctl(soc);
    const Decision d = ctl.submit(request(3.0, gpu));
    ASSERT_EQ(d.kind, DecisionKind::Admitted);
    EXPECT_EQ(d.puIndex, static_cast<std::size_t>(gpu));
    // A 3x slowdown budget leaves clock headroom: the controller must
    // pick the lowest feasible grid clock, not the max.
    EXPECT_LT(d.frequencyMhz, soc.pus[gpu].maxFrequency);
    EXPECT_LE(d.predictedSlowdown, 3.0);
    EXPECT_GT(d.predictedSlowdown, 1.0);
}

TEST_F(QosTest, TightSloNeedsTheFullClock)
{
    QosController ctl(soc);
    const Decision d = ctl.submit(request(1.0, gpu));
    ASSERT_EQ(d.kind, DecisionKind::Admitted);
    EXPECT_EQ(d.frequencyMhz, soc.pus[gpu].maxFrequency);
    EXPECT_EQ(d.predictedSlowdown, 1.0);
}

TEST_F(QosTest, PuAtCapacityQueuesAndPromotesOnComplete)
{
    QosController ctl(soc);
    const Decision first = ctl.submit(request(2.0, gpu));
    ASSERT_EQ(first.kind, DecisionKind::Admitted);

    const Decision second = ctl.submit(request(2.0, gpu));
    EXPECT_EQ(second.kind, DecisionKind::Queued);
    EXPECT_EQ(ctl.queuedCount(), 1u);

    const Completion c = ctl.complete(first.handle);
    EXPECT_TRUE(c.ok);
    ASSERT_EQ(c.promoted.size(), 1u);
    EXPECT_EQ(c.promoted[0].kind, DecisionKind::Admitted);
    EXPECT_EQ(ctl.queuedCount(), 0u);
    EXPECT_EQ(ctl.residentCount(), 1u);
}

TEST_F(QosTest, StrictAdmissionProtectsResidents)
{
    QosController ctl(soc);
    // A resident with essentially zero slack on the GPU ...
    const Decision a = ctl.submit(request(1.0, gpu));
    ASSERT_EQ(a.kind, DecisionKind::Admitted);
    // ... blocks a loose-SLO arrival on the *other* PU, because its
    // memory traffic would push the resident past its own SLO.
    const Decision b = ctl.submit(request(10.0, cpu));
    EXPECT_EQ(b.kind, DecisionKind::Queued);
    EXPECT_NE(b.reason.find("SLO"), std::string::npos) << b.reason;

    // Departure of the fragile resident promotes the waiter.
    const Completion c = ctl.complete(a.handle);
    ASSERT_EQ(c.promoted.size(), 1u);
    EXPECT_EQ(c.promoted[0].kind, DecisionKind::Admitted);
    EXPECT_EQ(c.promoted[0].puIndex, static_cast<std::size_t>(cpu));
}

TEST_F(QosTest, BestEffortAdmitsWhatStrictQueues)
{
    SchedOptions strict;
    QosController a(soc, nullptr, strict);
    ASSERT_EQ(a.submit(request(1.0, gpu)).kind,
              DecisionKind::Admitted);
    ASSERT_EQ(a.submit(request(10.0, cpu)).kind, DecisionKind::Queued);

    SchedOptions be;
    be.policy = AdmissionPolicy::BestEffort;
    QosController b(soc, nullptr, be);
    ASSERT_EQ(b.submit(request(1.0, gpu)).kind,
              DecisionKind::Admitted);
    EXPECT_EQ(b.submit(request(10.0, cpu)).kind,
              DecisionKind::Admitted);
    // The GPU resident's SLO is now (predictably) broken — counted.
    EXPECT_GE(b.stats().expectedViolations, 1u);
}

TEST_F(QosTest, FairnessAdmitsWithinSlack)
{
    // The resident holds slo=1.2; under fairness it may stretch to
    // 1.2 * slack, which a strict controller would not allow.
    SchedOptions fair;
    fair.policy = AdmissionPolicy::FairnessWeighted;
    fair.fairnessSlack = 100.0; // effectively: only the arrival gates
    QosController ctl(soc, nullptr, fair);
    ASSERT_EQ(ctl.submit(request(1.0, gpu)).kind,
              DecisionKind::Admitted);
    EXPECT_EQ(ctl.submit(request(10.0, cpu)).kind,
              DecisionKind::Admitted);

    SchedOptions strict;
    QosController s(soc, nullptr, strict);
    ASSERT_EQ(s.submit(request(1.0, gpu)).kind,
              DecisionKind::Admitted);
    EXPECT_EQ(s.submit(request(10.0, cpu)).kind, DecisionKind::Queued);
}

TEST_F(QosTest, QueueOverflowRejects)
{
    SchedOptions opts;
    opts.maxQueued = 1;
    QosController ctl(soc, nullptr, opts);
    ASSERT_EQ(ctl.submit(request(2.0, gpu)).kind,
              DecisionKind::Admitted);
    ASSERT_EQ(ctl.submit(request(2.0, gpu)).kind,
              DecisionKind::Queued);
    const Decision d = ctl.submit(request(2.0, gpu));
    EXPECT_EQ(d.kind, DecisionKind::Rejected);
    EXPECT_NE(d.reason.find("queue full"), std::string::npos);
    EXPECT_EQ(ctl.stats().rejected, 1u);
}

TEST_F(QosTest, StaleCompleteFails)
{
    QosController ctl(soc);
    const Decision d = ctl.submit(request(2.0, gpu));
    ASSERT_EQ(d.kind, DecisionKind::Admitted);
    EXPECT_TRUE(ctl.complete(d.handle).ok);
    EXPECT_FALSE(ctl.complete(d.handle).ok) << "handle went stale";
    EXPECT_FALSE(ctl.complete(kNoJob).ok);
    EXPECT_EQ(ctl.stats().completed, 1u);
}

TEST_F(QosTest, GridEvaluationMatchesDesignExplorer)
{
    // The controller's admission grid is documented bit-exact with
    // DesignExplorer::corunPerformanceGrid over the same grid, model,
    // and (memoizing) engine.
    QosController ctl(soc);
    const JobRequest req = request(2.0, gpu);
    std::vector<double> mine;
    ASSERT_TRUE(ctl.corunPerformanceGrid(
        req, static_cast<std::size_t>(gpu), 40.0, mine));

    model::DesignExplorer explorer(soc);
    const std::vector<double> theirs = explorer.corunPerformanceGrid(
        static_cast<std::size_t>(gpu), req.kernel,
        ctl.frequencyGrid(static_cast<std::size_t>(gpu)), 40.0,
        ctl.puModel(static_cast<std::size_t>(gpu)));

    ASSERT_EQ(mine.size(), theirs.size());
    for (std::size_t i = 0; i < mine.size(); ++i)
        EXPECT_EQ(mine[i], theirs[i]) << "grid point " << i;
}

TEST_F(QosTest, IncrementalSlowdownMatchesFreshRecompute)
{
    SchedOptions be;
    be.policy = AdmissionPolicy::BestEffort;
    QosController ctl(soc, nullptr, be);
    ASSERT_EQ(ctl.submit(request(1.5, gpu)).kind,
              DecisionKind::Admitted);
    ASSERT_EQ(ctl.submit(request(1.5, cpu)).kind,
              DecisionKind::Admitted);

    // Every resident's cached prediction must match a from-scratch
    // scalar evaluation under the current co-run set.
    ctl.forEachJob([&](JobHandle, const Job &job) {
        const double external = ctl.totalDemand() - job.demand;
        const double rs =
            ctl.puModel(job.puIndex)
                .relativeSpeed(job.demand, std::max(0.0, external));
        const double expected =
            job.fullRate / (job.rate * rs / 100.0);
        EXPECT_NEAR(job.predictedSlowdown, expected,
                    1e-9 * expected);
    });
}

TEST_F(QosTest, RequestWithNoRunnablePuQueues)
{
    QosController ctl(soc);
    JobRequest req;
    req.sloSlowdown = 2.0;
    // Per-PU options, all marked "cannot run".
    req.options.assign(soc.pus.size(), std::nullopt);
    const Decision d = ctl.submit(req);
    EXPECT_EQ(d.kind, DecisionKind::Queued);
}

TEST_F(QosTest, StatsAndEventsAreConsistent)
{
    QosController ctl(soc);
    const Decision a = ctl.submit(request(2.0, gpu));
    const Decision b = ctl.submit(request(2.0, gpu)); // queued
    ASSERT_EQ(a.kind, DecisionKind::Admitted);
    ASSERT_EQ(b.kind, DecisionKind::Queued);
    ctl.complete(a.handle); // promotes b

    const SchedStats &st = ctl.stats();
    EXPECT_EQ(st.submitted, 2u);
    EXPECT_EQ(st.admitted, 2u);
    EXPECT_EQ(st.queued, 1u);
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(st.promoted, 1u);
    EXPECT_GT(st.modelPoints, 0u);

    // Event log: 2 admits + 1 complete, in order.
    ASSERT_EQ(ctl.events().size(), 3u);
    EXPECT_EQ(ctl.events()[0].kind, SchedEvent::Kind::Admit);
    EXPECT_EQ(ctl.events()[1].kind, SchedEvent::Kind::Complete);
    EXPECT_EQ(ctl.events()[1].seq, ctl.events()[0].seq);
    EXPECT_EQ(ctl.events()[2].kind, SchedEvent::Kind::Admit);
}

// ---------------------------------------------------------------- //
// Oracle validation                                                 //
// ---------------------------------------------------------------- //

class OracleTest : public ::testing::Test
{
  protected:
    /** Rodinia arrival with per-PU options (the DLA cannot run it). */
    JobRequest arrival(const std::string &bench, double slo,
                       int pu = -1)
    {
        JobRequest req;
        req.name = bench;
        req.sloSlowdown = slo;
        req.puIndex = pu;
        for (const soc::PuParams &p : soc.pus) {
            if (p.kind == soc::PuKind::Dla)
                req.options.emplace_back(std::nullopt);
            else
                req.options.emplace_back(
                    workloads::rodiniaKernel(bench, p.kind));
        }
        return req;
    }

    soc::SocConfig soc = soc::xavierLike();
};

TEST_F(OracleTest, AdmittedScheduleMeetsSlosInTheSimulator)
{
    // The acceptance-criteria test: schedule a pinned arrival trace
    // under strict admission (with the documented safety margin that
    // absorbs the model's few-percent error) and replay the accepted
    // schedule through the SoC simulator. Every admitted job's
    // *simulated* slowdown must meet its SLO in every interval.
    SchedOptions opts;
    opts.safetyMargin = 0.1;
    QosController ctl(soc, nullptr, opts);

    std::vector<JobHandle> admitted;
    const auto submit = [&](const std::string &bench, double slo,
                            int pu = -1) {
        const Decision d = ctl.submit(arrival(bench, slo, pu));
        if (d.kind == DecisionKind::Admitted)
            admitted.push_back(d.handle);
    };
    const auto complete = [&](std::size_t i) {
        for (const Decision &d : ctl.complete(admitted[i]).promoted)
            admitted.push_back(d.handle);
    };

    const int gpu = soc.puIndex(soc::PuKind::Gpu);
    const int cpu = soc.puIndex(soc::PuKind::Cpu);
    submit("streamcluster", 1.3, gpu);
    submit("hotspot", 2.0, cpu);
    submit("bfs", 1.4);
    submit("srad", 1.2);
    complete(0);
    submit("pathfinder", 1.5);
    complete(1);
    complete(2);
    submit("cfd", 1.6);
    while (!admitted.empty()) {
        complete(admitted.size() - 1);
        admitted.pop_back();
    }

    const OracleReport rep = validateSchedule(soc, ctl.events());
    EXPECT_EQ(rep.jobsChecked, ctl.stats().admitted);
    EXPECT_GT(rep.intervals, 0u);
    EXPECT_GT(rep.checks, 0u);
    EXPECT_EQ(rep.violations, 0u)
        << "worst excess " << rep.worstExcess;
    EXPECT_EQ(rep.attainment(), 1.0);
}

TEST_F(OracleTest, OracleFlagsAKnowinglyOversubscribedSchedule)
{
    // Best-effort admits past the SLOs; the oracle must notice. The
    // controller itself predicted the damage (expectedViolations), so
    // the two ends of the loop agree.
    SchedOptions opts;
    opts.policy = AdmissionPolicy::BestEffort;
    QosController ctl(soc, nullptr, opts);

    const int gpu = soc.puIndex(soc::PuKind::Gpu);
    const int cpu = soc.puIndex(soc::PuKind::Cpu);
    ASSERT_EQ(ctl.submit(arrival("streamcluster", 1.01, gpu)).kind,
              DecisionKind::Admitted);
    ASSERT_EQ(ctl.submit(arrival("srad", 1.01, cpu)).kind,
              DecisionKind::Admitted);
    ASSERT_GE(ctl.stats().expectedViolations, 1u);

    const OracleReport rep = validateSchedule(soc, ctl.events());
    EXPECT_GT(rep.violations, 0u);
    EXPECT_LT(rep.attainment(), 1.0);
    EXPECT_GT(rep.worstExcess, 0.0);
}

TEST_F(OracleTest, EmptyScheduleIsVacuouslyValid)
{
    const OracleReport rep = validateSchedule(soc, {});
    EXPECT_EQ(rep.jobsChecked, 0u);
    EXPECT_EQ(rep.violations, 0u);
    EXPECT_EQ(rep.attainment(), 1.0);
}

} // namespace
} // namespace pccs::sched
