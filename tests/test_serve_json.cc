/**
 * @file
 * Tests for the serve JSON value type and parser, including
 * cross-checks against the runner's JSON writers (jsonEscape,
 * jsonNumber) — the parser must accept everything they emit.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "runner/run_spec.hh"
#include "serve/json.hh"

namespace pccs::serve {
namespace {

Json
parsed(const std::string &text)
{
    const JsonParse p = parseJson(text);
    EXPECT_TRUE(p.ok()) << text << " -> " << p.error;
    return p.ok() ? *p.value : Json();
}

std::string
rejected(const std::string &text)
{
    const JsonParse p = parseJson(text);
    EXPECT_FALSE(p.ok()) << "accepted: " << text;
    return p.error;
}

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(parsed("null").isNull());
    EXPECT_EQ(parsed("true").asBool(), true);
    EXPECT_EQ(parsed("false").asBool(false), false);
    EXPECT_DOUBLE_EQ(parsed("0").asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(parsed("-0.5e2").asNumber(), -50.0);
    EXPECT_DOUBLE_EQ(parsed("1E+3").asNumber(), 1000.0);
    EXPECT_EQ(parsed("\"hi\"").asString(), "hi");
    EXPECT_EQ(parsed("  \"padded\"  ").asString(), "padded");
}

TEST(JsonParse, Containers)
{
    const Json arr = parsed("[1, [2, 3], {\"k\": null}]");
    ASSERT_TRUE(arr.isArray());
    ASSERT_EQ(arr.asArray().size(), 3u);
    EXPECT_DOUBLE_EQ(arr.asArray()[0].asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(arr.asArray()[1].asArray()[1].asNumber(), 3.0);
    EXPECT_TRUE(arr.asArray()[2].find("k")->isNull());

    const Json obj = parsed("{\"a\": 1, \"b\": {\"c\": [true]}}");
    ASSERT_TRUE(obj.isObject());
    EXPECT_DOUBLE_EQ(obj.find("a")->asNumber(), 1.0);
    EXPECT_TRUE(obj.find("b")->find("c")->asArray()[0].asBool());
    EXPECT_EQ(obj.find("missing"), nullptr);

    EXPECT_TRUE(parsed("[]").asArray().empty());
    EXPECT_TRUE(parsed("{}").asObject().empty());
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(parsed("\"a\\nb\\t\\\"\\\\\\/\"").asString(),
              "a\nb\t\"\\/");
    EXPECT_EQ(parsed("\"\\u0041\\u00e9\"").asString(), "A\xc3\xa9");
    // Surrogate pair -> one 4-byte UTF-8 code point (U+1F600).
    EXPECT_EQ(parsed("\"\\ud83d\\ude00\"").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(JsonParse, StrictnessRejections)
{
    rejected("");
    rejected("   ");
    rejected("tru");
    rejected("nulll");
    rejected("01");       // leading zero
    rejected("1.");       // digits required after the point
    rejected("1e");       // digits required in the exponent
    rejected("+1");       // no leading plus
    rejected(".5");       // no bare fraction
    rejected("NaN");      // not JSON
    rejected("Infinity"); // not JSON
    rejected("[1,]");     // trailing comma
    rejected("{\"a\":1,}");
    rejected("[1 2]");
    rejected("{\"a\" 1}");
    rejected("{a: 1}");   // unquoted key
    rejected("\"unterminated");
    rejected("\"bad\\q\"");       // unknown escape
    rejected("\"\\u12\"");        // short \u escape
    rejected(std::string("\"") + '\x01' + "\""); // raw control char
    rejected("\"\\ud83d\"");      // unpaired high surrogate
    rejected("\"\\ude00\"");      // lone low surrogate
    rejected("1 2");              // trailing document content
    rejected("{} []");
}

TEST(JsonParse, ErrorsCarryOffsets)
{
    const JsonParse p = parseJson("{\"a\": tru}");
    ASSERT_FALSE(p.ok());
    EXPECT_GE(p.offset, 6u);
    EXPECT_FALSE(p.error.empty());
}

TEST(JsonParse, DepthLimitHolds)
{
    std::string deep;
    for (int i = 0; i < 2000; ++i)
        deep += '[';
    // Never crashes, whatever the nesting — it reports an error.
    const JsonParse p = parseJson(deep);
    EXPECT_FALSE(p.ok());
    EXPECT_NE(p.error.find("depth"), std::string::npos) << p.error;

    // Exactly at the limit is fine.
    JsonLimits limits;
    limits.maxDepth = 4;
    EXPECT_TRUE(parseJson("[[[[1]]]]", limits).ok());
    EXPECT_FALSE(parseJson("[[[[[1]]]]]", limits).ok());
}

TEST(JsonDump, RoundTripsStructurally)
{
    Json obj = Json::object();
    obj.set("s", "text with \"quotes\" and \\slashes\\");
    obj.set("n", 1.5);
    obj.set("flag", true);
    obj.set("nothing", nullptr);
    Json arr = Json::array();
    arr.push(1);
    arr.push("two");
    obj.set("arr", std::move(arr));

    const Json back = parsed(obj.dump());
    EXPECT_EQ(back, obj);
}

TEST(JsonDump, EscapedControlCharactersRoundTrip)
{
    // Every code point below 0x20 must be escaped by the writer and
    // restored by the parser (satellite audit of runner::jsonEscape).
    std::string all;
    for (char c = 1; c < 0x20; ++c)
        all += c;
    const std::string wire = "\"" + runner::jsonEscape(all) + "\"";
    // The escaped form itself must not contain raw control bytes.
    for (char c : wire)
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    EXPECT_EQ(parsed(wire).asString(), all);

    // And via Json::dump, inside a full document.
    Json obj = Json::object();
    obj.set("ctrl", all + "\x7f normal tail");
    EXPECT_EQ(parsed(obj.dump()), obj);
    EXPECT_EQ(obj.dump().find('\n'), std::string::npos);
}

TEST(JsonNumber, NonFiniteBecomesNull)
{
    EXPECT_EQ(runner::jsonNumber(
                  std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(runner::jsonNumber(
                  std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(runner::jsonNumber(
                  -std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_TRUE(
        parsed(runner::jsonNumber(
                   std::numeric_limits<double>::quiet_NaN()))
            .isNull());
}

TEST(JsonNumber, SeventeenDigitsRoundTripBitExactly)
{
    const double values[] = {
        0.0,
        1.0 / 3.0,
        99.422549726120863,
        1e-308,
        1.7976931348623157e308,
        -123456.78901234567,
        2.2250738585072014e-308,
    };
    for (const double v : values) {
        const Json back = parsed(runner::jsonNumber(v));
        ASSERT_TRUE(back.isNumber());
        // Bit-exact: the wire format must not lose precision.
        EXPECT_EQ(back.asNumber(), v) << runner::jsonNumber(v);
    }
}

} // namespace
} // namespace pccs::serve
