/**
 * @file
 * End-to-end reproduction guards: the PCCS model built purely from
 * calibrators must predict application co-run slowdowns on the
 * simulated SoCs substantially better than the Gables baseline —
 * the paper's headline result (Section 4.1/4.2).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "gables/gables.hh"
#include "pccs/builder.hh"
#include "pccs/phases.hh"
#include "soc/simulator.hh"
#include "workloads/nn.hh"
#include "workloads/rodinia.hh"

namespace pccs {
namespace {

struct SweepErrors
{
    double pccs = 0.0;
    double gables = 0.0;
};

/** Average |predicted - actual| over the external-pressure ladder. */
SweepErrors
benchmarkErrors(const soc::SocSimulator &sim, soc::PuKind kind,
                const std::string &bench,
                const model::SlowdownPredictor &pccs,
                const model::SlowdownPredictor &gables)
{
    const auto pu = static_cast<std::size_t>(sim.config().puIndex(kind));
    const auto k = workloads::rodiniaKernel(bench, kind);
    const double x = sim.profile(pu, k).bandwidthDemand;
    const double max_ext = 0.73 * sim.config().memory.peakBandwidth;
    SweepErrors e;
    int n = 0;
    for (int j = 1; j <= 10; ++j, ++n) {
        const double y = 0.1 * j * max_ext;
        const double actual =
            sim.relativeSpeedUnderPressure(pu, k, y);
        e.pccs += std::fabs(pccs.relativeSpeed(x, y) - actual);
        e.gables += std::fabs(gables.relativeSpeed(x, y) - actual);
    }
    e.pccs /= n;
    e.gables /= n;
    return e;
}

SweepErrors
suiteErrors(const soc::SocSimulator &sim, soc::PuKind kind,
            const std::vector<std::string> &benches)
{
    const auto pu = static_cast<std::size_t>(sim.config().puIndex(kind));
    const model::PccsModel pccs = model::buildModel(sim, pu);
    const gables::GablesModel gables(
        sim.config().memory.peakBandwidth);
    SweepErrors total;
    for (const auto &b : benches) {
        const SweepErrors e =
            benchmarkErrors(sim, kind, b, pccs, gables);
        total.pccs += e.pccs;
        total.gables += e.gables;
    }
    total.pccs /= benches.size();
    total.gables /= benches.size();
    return total;
}

TEST(Reproduction, XavierGpuPccsBeatsGables)
{
    const soc::SocSimulator sim(soc::xavierLike());
    const SweepErrors e =
        suiteErrors(sim, soc::PuKind::Gpu, workloads::gpuBenchmarks());
    EXPECT_LT(e.pccs, 10.0) << "paper reports ~6.3% on the Xavier GPU";
    EXPECT_LT(e.pccs, 0.6 * e.gables);
}

TEST(Reproduction, XavierCpuPccsBeatsGables)
{
    const soc::SocSimulator sim(soc::xavierLike());
    const SweepErrors e =
        suiteErrors(sim, soc::PuKind::Cpu, workloads::cpuBenchmarks());
    EXPECT_LT(e.pccs, 5.0) << "paper reports ~2.6% on the Xavier CPU";
    EXPECT_LT(e.pccs, e.gables);
}

TEST(Reproduction, SnapdragonGpuPccsBeatsGables)
{
    const soc::SocSimulator sim(soc::snapdragonLike());
    const SweepErrors e =
        suiteErrors(sim, soc::PuKind::Gpu, workloads::gpuBenchmarks());
    EXPECT_LT(e.pccs, 12.0) << "paper reports ~5.9%";
    EXPECT_LT(e.pccs, 0.7 * e.gables);
}

TEST(Reproduction, SnapdragonCpuPccsBeatsGables)
{
    const soc::SocSimulator sim(soc::snapdragonLike());
    const SweepErrors e =
        suiteErrors(sim, soc::PuKind::Cpu, workloads::cpuBenchmarks());
    EXPECT_LT(e.pccs, 10.0) << "paper reports ~3.1%";
    EXPECT_LT(e.pccs, e.gables);
}

TEST(Reproduction, XavierDlaPccsBeatsGables)
{
    const soc::SocSimulator sim(soc::xavierLike());
    const auto dla =
        static_cast<std::size_t>(sim.config().puIndex(soc::PuKind::Dla));
    const model::PccsModel pccs = model::buildModel(sim, dla);
    const gables::GablesModel gables(
        sim.config().memory.peakBandwidth);

    double pccs_err = 0.0, gables_err = 0.0;
    int n = 0;
    for (const auto &w : {workloads::resnet50Dla(),
                          workloads::vgg19Dla(),
                          workloads::alexnetDla()}) {
        // Actual: time-weighted phase simulation; predicted: the
        // piecewise multi-phase method of Section 3.2.
        double solo_total = 0.0;
        std::vector<model::PhaseDemand> phases;
        for (const auto &ph : w.phases)
            solo_total += sim.profile(dla, ph).seconds;
        for (const auto &ph : w.phases) {
            const auto prof = sim.profile(dla, ph);
            phases.push_back(
                {prof.bandwidthDemand, prof.seconds / solo_total});
        }
        for (int j = 1; j <= 10; ++j, ++n) {
            const double y = 10.0 * j;
            double corun_time = 0.0;
            for (const auto &ph : w.phases) {
                const auto prof = sim.profile(dla, ph);
                const double rs =
                    sim.relativeSpeedUnderPressure(dla, ph, y);
                corun_time += prof.seconds / (rs / 100.0);
            }
            const double actual = 100.0 * solo_total / corun_time;
            pccs_err += std::fabs(
                model::predictPiecewise(pccs, phases, y) - actual);
            gables_err += std::fabs(
                model::predictPiecewise(gables, phases, y) - actual);
        }
    }
    pccs_err /= n;
    gables_err /= n;
    EXPECT_LT(pccs_err, 9.0) << "paper reports ~5.3% on the DLA";
    EXPECT_LT(pccs_err, 0.5 * gables_err);
}

TEST(Reproduction, PoorLocalityBenchmarksErrLargest)
{
    // Section 4.2: "The errors on bfs, k-means and b+tree benchmarks
    // are a bit larger than on other programs" (row-buffer behavior
    // differs from the calibrators').
    const soc::SocSimulator sim(soc::xavierLike());
    const auto gpu =
        static_cast<std::size_t>(sim.config().puIndex(soc::PuKind::Gpu));
    const model::PccsModel pccs = model::buildModel(sim, gpu);
    const gables::GablesModel gables(
        sim.config().memory.peakBandwidth);

    const double err_bfs =
        benchmarkErrors(sim, soc::PuKind::Gpu, "bfs", pccs, gables)
            .pccs;
    const double err_sc =
        benchmarkErrors(sim, soc::PuKind::Gpu, "streamcluster", pccs,
                        gables)
            .pccs;
    const double err_hs =
        benchmarkErrors(sim, soc::PuKind::Gpu, "hotspot", pccs, gables)
            .pccs;
    EXPECT_GT(err_bfs, err_hs);
    (void)err_sc; // locality-matched kernels sit between the extremes
}

} // namespace
} // namespace pccs
