/**
 * @file
 * Tests for the calibrator kernels and the calibration sweep
 * (the processor-centric model-construction inputs of Section 3.2).
 */

#include <gtest/gtest.h>

#include "calib/calibrator.hh"

namespace pccs::calib {
namespace {

class CalibratorTest : public ::testing::Test
{
  protected:
    soc::SocConfig soc = soc::xavierLike();
    soc::ExecutionModel model{soc.memory};
};

/** Calibrators must hit their bandwidth targets across PUs. */
class CalibratorTargets
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(CalibratorTargets, HitsTarget)
{
    const auto [pu_idx, frac] = GetParam();
    const soc::SocConfig soc = soc::xavierLike();
    const soc::ExecutionModel model(soc.memory);
    const soc::PuParams &pu = soc.pus[pu_idx];
    const GBps target = frac * pu.drawBandwidth();
    const soc::KernelProfile k = makeCalibrator(model, pu, target);
    const GBps achieved = model.standalone(pu, k).bandwidthDemand;
    EXPECT_NEAR(achieved, target, 0.02 * target + 0.1)
        << pu.name << " target " << target;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CalibratorTargets,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9)));

TEST_F(CalibratorTest, UnreachableTargetClipsToMaxStream)
{
    const soc::PuParams &dla = soc.pu(soc::PuKind::Dla);
    const soc::KernelProfile k = makeCalibrator(model, dla, 500.0);
    const GBps achieved = model.standalone(dla, k).bandwidthDemand;
    EXPECT_NEAR(achieved, dla.drawBandwidth(), 1.0);
}

TEST_F(CalibratorTest, IntensityMonotoneWithTarget)
{
    const soc::PuParams &gpu = soc.pu(soc::PuKind::Gpu);
    const auto low = makeCalibrator(model, gpu, 20.0);
    const auto high = makeCalibrator(model, gpu, 100.0);
    // Lower bandwidth demand = more compute per byte.
    EXPECT_GT(low.intensity, high.intensity);
}

TEST_F(CalibratorTest, LocalityCarriesThrough)
{
    const soc::PuParams &gpu = soc.pu(soc::PuKind::Gpu);
    const auto k = makeCalibrator(model, gpu, 50.0, 0.8);
    EXPECT_DOUBLE_EQ(k.locality, 0.8);
}

TEST_F(CalibratorTest, MatrixShapeAndAxes)
{
    const soc::SocSimulator sim(soc);
    SweepSpec spec;
    spec.numKernels = 6;
    spec.numExternal = 5;
    const CalibrationMatrix m = calibrate(sim, 1, spec);
    EXPECT_EQ(m.numKernels(), 6u);
    EXPECT_EQ(m.numExternal(), 5u);
    EXPECT_EQ(m.rela.size(), 6u);
    EXPECT_EQ(m.rela[0].size(), 5u);
    // Axes ascending; external axis starts above zero.
    EXPECT_GT(m.externalBw.front(), 0.0);
    for (std::size_t j = 1; j < m.numExternal(); ++j)
        EXPECT_GT(m.externalBw[j], m.externalBw[j - 1]);
    for (std::size_t i = 1; i < m.numKernels(); ++i)
        EXPECT_GE(m.standaloneBw[i], m.standaloneBw[i - 1] - 1e-9);
}

TEST_F(CalibratorTest, MatrixValuesAreRelativeSpeeds)
{
    const soc::SocSimulator sim(soc);
    SweepSpec spec;
    spec.numKernels = 5;
    spec.numExternal = 5;
    const CalibrationMatrix m = calibrate(sim, 0, spec);
    for (const auto &row : m.rela) {
        for (double v : row) {
            EXPECT_GT(v, 0.0);
            EXPECT_LE(v, 100.0 + 1e-9);
        }
    }
}

TEST_F(CalibratorTest, RowsNonIncreasingInExternalDemand)
{
    const soc::SocSimulator sim(soc);
    const CalibrationMatrix m = calibrate(sim, 1);
    for (const auto &row : m.rela)
        for (std::size_t j = 1; j < row.size(); ++j)
            EXPECT_LE(row[j], row[j - 1] + 0.2);
}

TEST_F(CalibratorTest, LargestExternalHurtsBiggerKernelsMore)
{
    const soc::SocSimulator sim(soc);
    const CalibrationMatrix m = calibrate(sim, 1);
    const std::size_t last = m.numExternal() - 1;
    // The most bandwidth-hungry calibrator must lose more speed than
    // the smallest one at the largest external pressure.
    EXPECT_LT(m.rela[m.numKernels() - 1][last], m.rela[0][last] - 5.0);
}

TEST_F(CalibratorTest, ExternalMaxFractionRespected)
{
    const soc::SocSimulator sim(soc);
    SweepSpec spec;
    spec.maxExternalFraction = 0.5;
    const CalibrationMatrix m = calibrate(sim, 0, spec);
    EXPECT_NEAR(m.externalBw.back(),
                0.5 * soc.memory.peakBandwidth, 1e-9);
}

TEST_F(CalibratorTest, TooSmallSweepDies)
{
    const soc::SocSimulator sim(soc);
    SweepSpec spec;
    spec.numKernels = 1;
    EXPECT_DEATH(calibrate(sim, 0, spec), "2x2");
}

McSweepSpec
smallMcSpec()
{
    // A deliberately small sweep: 2 MCs x 1 channel, short windows,
    // few points — enough to exercise shape, monotony, and run-mode
    // invariance without dominating the test suite's runtime.
    McSweepSpec spec;
    spec.perMcConfig.channels = 1;
    spec.perMcConfig.requestBufferEntries = 64;
    spec.numKernels = 3;
    spec.numExternal = 2;
    spec.warmup = 3000;
    spec.window = 12000;
    return spec;
}

TEST(CalibrateMultiMc, ShapeAndSaneValues)
{
    const CalibrationMatrix m = calibrateMultiMc(smallMcSpec());
    ASSERT_EQ(m.numKernels(), 3u);
    ASSERT_EQ(m.numExternal(), 2u);
    for (std::size_t i = 0; i < m.numKernels(); ++i) {
        EXPECT_GT(m.standaloneBw[i], 0.0);
        if (i)
            EXPECT_GT(m.standaloneBw[i], m.standaloneBw[i - 1]);
        for (double r : m.rela[i]) {
            EXPECT_GT(r, 0.0);
            EXPECT_LT(r, 110.0);
        }
    }
    EXPECT_GT(m.externalBw[1], m.externalBw[0]);
}

TEST(CalibrateMultiMc, RunModesAgreeBitExactly)
{
    // The sweep is a pure function of the spec: every run mode (and
    // the serial-points sharded path) must produce the identical
    // matrix, doubles included.
    McSweepSpec spec = smallMcSpec();
    spec.runMode = dram::McRunMode::Lockstep;
    const CalibrationMatrix ref = calibrateMultiMc(spec);
    for (dram::McRunMode mode : {dram::McRunMode::EventDriven,
                                 dram::McRunMode::Sharded}) {
        SCOPED_TRACE(dram::mcRunModeName(mode));
        spec.runMode = mode;
        const CalibrationMatrix got = calibrateMultiMc(spec);
        ASSERT_EQ(got.numKernels(), ref.numKernels());
        ASSERT_EQ(got.numExternal(), ref.numExternal());
        for (std::size_t i = 0; i < ref.numKernels(); ++i) {
            EXPECT_EQ(got.standaloneBw[i], ref.standaloneBw[i]);
            for (std::size_t j = 0; j < ref.numExternal(); ++j)
                EXPECT_EQ(got.rela[i][j], ref.rela[i][j]);
        }
    }
}

TEST(CalibrateMultiMc, PartitionedVictimShruggedOffWhenIsolated)
{
    // Under RangePartitioned, the victim (source 0, bottom slice)
    // shares its controller with at most the aggressors whose slices
    // land there; with interleaving every aggressor lands on every
    // controller. Contention at the top external step must therefore
    // be no worse under partitioning.
    McSweepSpec spec = smallMcSpec();
    spec.mapping = dram::McMapping::RangePartitioned;
    const CalibrationMatrix part = calibrateMultiMc(spec);
    spec.mapping = dram::McMapping::LineInterleaved;
    const CalibrationMatrix inter = calibrateMultiMc(spec);
    const std::size_t last = part.numExternal() - 1;
    const std::size_t big = part.numKernels() - 1;
    EXPECT_GE(part.rela[big][last], inter.rela[big][last] - 2.0);
}

} // namespace
} // namespace pccs::calib
