/**
 * @file
 * Unit tests for the DRAM bank and channel timing state machines.
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"
#include "dram/timing.hh"

namespace pccs::dram {
namespace {

class BankTest : public ::testing::Test
{
  protected:
    DramTimingParams t = ddr4_3200();
    Bank bank;
};

TEST_F(BankTest, StartsPrecharged)
{
    EXPECT_EQ(bank.openRow(), Bank::noRow);
    EXPECT_TRUE(bank.canActivate(0));
    EXPECT_FALSE(bank.canPrecharge(0));
    EXPECT_FALSE(bank.canAccess(0, 5));
}

TEST_F(BankTest, ActivateOpensRowAndBlocksCasUntilTrcd)
{
    bank.activate(100, 7, t);
    EXPECT_EQ(bank.openRow(), 7);
    EXPECT_FALSE(bank.canAccess(100 + t.tRCD - 1, 7));
    EXPECT_TRUE(bank.canAccess(100 + t.tRCD, 7));
    EXPECT_FALSE(bank.canAccess(100 + t.tRCD, 8)) << "wrong row";
}

TEST_F(BankTest, PrechargeBlockedUntilTras)
{
    bank.activate(100, 7, t);
    EXPECT_FALSE(bank.canPrecharge(100 + t.tRAS - 1));
    EXPECT_TRUE(bank.canPrecharge(100 + t.tRAS));
}

TEST_F(BankTest, PrechargeClosesRowAndBlocksActUntilTrp)
{
    bank.activate(0, 3, t);
    const Cycles pre_at = t.tRAS;
    bank.precharge(pre_at, t);
    EXPECT_EQ(bank.openRow(), Bank::noRow);
    EXPECT_FALSE(bank.canActivate(pre_at + t.tRP - 1));
    EXPECT_TRUE(bank.canActivate(pre_at + t.tRP));
}

TEST_F(BankTest, ReadCompletionTiming)
{
    bank.activate(0, 1, t);
    const Cycles cas_at = t.tRCD;
    const Cycles done = bank.access(cas_at, false, t);
    EXPECT_EQ(done, cas_at + t.tCL + t.tBURST);
}

TEST_F(BankTest, CasToCasSpacing)
{
    bank.activate(0, 1, t);
    const Cycles cas_at = t.tRCD;
    bank.access(cas_at, false, t);
    EXPECT_FALSE(bank.canAccess(cas_at + t.tCCD - 1, 1));
    EXPECT_TRUE(bank.canAccess(cas_at + t.tCCD, 1));
}

TEST_F(BankTest, ReadToPrechargeConstraint)
{
    bank.activate(0, 1, t);
    // Issue the CAS late enough that tRTP (not tRAS) is binding.
    const Cycles cas_at = t.tRAS;
    bank.access(cas_at, false, t);
    EXPECT_FALSE(bank.canPrecharge(cas_at + t.tRTP - 1));
    EXPECT_TRUE(bank.canPrecharge(cas_at + t.tRTP));
}

TEST_F(BankTest, WriteRecoveryDelaysPrecharge)
{
    bank.activate(0, 1, t);
    const Cycles cas_at = t.tRAS;
    const Cycles done = bank.access(cas_at, true, t);
    EXPECT_FALSE(bank.canPrecharge(done + t.tWR - 1));
    EXPECT_TRUE(bank.canPrecharge(done + t.tWR));
}

TEST_F(BankTest, IllegalActivateDies)
{
    bank.activate(0, 1, t);
    EXPECT_DEATH(bank.activate(1, 2, t), "illegal ACT");
}

TEST_F(BankTest, IllegalPrechargeDies)
{
    EXPECT_DEATH(bank.precharge(0, t), "illegal PRE");
}

class ChannelTest : public ::testing::Test
{
  protected:
    DramTimingParams t = ddr4_3200();
    ChannelTiming ch{8, t};
};

TEST_F(ChannelTest, FourActivateWindow)
{
    // Four back-to-back ACTs (respecting tRRD) fill the tFAW window.
    Cycles now = 0;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ch.canActivateRank(now));
        ch.recordActivate(now);
        now += t.tRRD;
    }
    // A fifth ACT must wait until tFAW after the first.
    EXPECT_FALSE(ch.canActivateRank(now));
    EXPECT_TRUE(ch.canActivateRank(t.tFAW));
}

TEST_F(ChannelTest, ActToActSpacing)
{
    ch.recordActivate(10);
    EXPECT_FALSE(ch.canActivateRank(10 + t.tRRD - 1));
    EXPECT_TRUE(ch.canActivateRank(10 + t.tRRD));
}

TEST_F(ChannelTest, BusReservation)
{
    EXPECT_TRUE(ch.busAvailable(0));
    ch.reserveBus(0);
    EXPECT_EQ(ch.busFreeAt(), t.tCL + t.tBURST);
    // A CAS issued tBURST later starts its burst exactly when the
    // previous burst ends: allowed.
    EXPECT_TRUE(ch.busAvailable(t.tBURST));
    // One cycle earlier would overlap bursts: denied.
    EXPECT_FALSE(ch.busAvailable(t.tBURST - 1));
}

TEST_F(ChannelTest, BankAccessors)
{
    EXPECT_EQ(ch.numBanks(), 8u);
    ch.bank(0).activate(0, 42, t);
    EXPECT_EQ(ch.bank(0).openRow(), 42);
    EXPECT_EQ(ch.bank(1).openRow(), Bank::noRow);
}

TEST(TimingPresets, Ddr4MatchesTable1)
{
    const DramTimingParams t = ddr4_3200();
    EXPECT_DOUBLE_EQ(t.busClockMhz, 1600.0);
    EXPECT_EQ(t.tBURST, 4u); // 64B line over a 64-bit DDR channel
}

TEST(TimingPresets, Lpddr4xScalesWithClock)
{
    const DramTimingParams fast = lpddr4x(2133.0);
    const DramTimingParams slow = lpddr4x(1066.0);
    // Nanosecond-class constraints take about half the cycles at half
    // the clock.
    EXPECT_NEAR(static_cast<double>(slow.tRCD),
                static_cast<double>(fast.tRCD) / 2.0, 1.0);
    EXPECT_GT(fast.tRAS, slow.tRAS);
}

} // namespace
} // namespace pccs::dram
