/**
 * @file
 * Tests for the Gables baseline model.
 */

#include <gtest/gtest.h>

#include "gables/gables.hh"

namespace pccs::gables {
namespace {

TEST(Gables, NoSlowdownBelowPeak)
{
    const GablesModel g(137.0);
    // The defining (flawed) assumption the paper refutes with Fig. 2:
    // zero slowdown while total demand stays under the peak.
    EXPECT_DOUBLE_EQ(g.relativeSpeed(60.0, 70.0), 100.0);
    EXPECT_DOUBLE_EQ(g.relativeSpeed(10.0, 0.0), 100.0);
    EXPECT_DOUBLE_EQ(g.relativeSpeed(137.0, 0.0), 100.0);
}

TEST(Gables, ProRatedAbovePeak)
{
    const GablesModel g(137.0);
    // x + y = 200 > 137: everyone is scaled by peak / total.
    EXPECT_NEAR(g.relativeSpeed(100.0, 100.0), 100.0 * 137.0 / 200.0,
                1e-9);
    EXPECT_NEAR(g.effectiveBandwidth(100.0, 100.0), 100.0 * 137.0 / 200.0,
                1e-9);
}

TEST(Gables, ContinuousAtPeak)
{
    const GablesModel g(137.0);
    EXPECT_NEAR(g.relativeSpeed(100.0, 37.0 - 1e-9),
                g.relativeSpeed(100.0, 37.0 + 1e-9), 1e-6);
}

TEST(Gables, MonotoneInExternal)
{
    const GablesModel g(137.0);
    double prev = 200.0;
    for (double y = 0.0; y <= 200.0; y += 5.0) {
        const double v = g.relativeSpeed(80.0, y);
        EXPECT_LE(v, prev + 1e-12);
        prev = v;
    }
}

TEST(Gables, ZeroDemandIsFullSpeed)
{
    const GablesModel g(137.0);
    EXPECT_DOUBLE_EQ(g.relativeSpeed(0.0, 500.0), 100.0);
}

TEST(Gables, SlowdownFactor)
{
    const GablesModel g(100.0);
    EXPECT_NEAR(g.slowdownFactor(100.0, 100.0), 2.0, 1e-9);
}

TEST(Gables, Name)
{
    const GablesModel g(100.0);
    EXPECT_STREQ(g.name(), "Gables");
}

TEST(GablesDeath, NonPositivePeakPanics)
{
    EXPECT_DEATH(GablesModel{0.0}, "positive");
}

TEST(Roofline, ComputeAndBandwidthRoofs)
{
    // Below the ridge: bandwidth bound.
    EXPECT_DOUBLE_EQ(rooflinePerformance(1000.0, 2.0, 100.0), 200.0);
    // Above the ridge: compute bound.
    EXPECT_DOUBLE_EQ(rooflinePerformance(1000.0, 50.0, 100.0), 1000.0);
    // Exactly at the ridge.
    EXPECT_DOUBLE_EQ(rooflinePerformance(1000.0, 10.0, 100.0), 1000.0);
}

TEST(Roofline, ZeroInputs)
{
    EXPECT_DOUBLE_EQ(rooflinePerformance(0.0, 10.0, 100.0), 0.0);
    EXPECT_DOUBLE_EQ(rooflinePerformance(1000.0, 0.0, 100.0), 0.0);
}

} // namespace
} // namespace pccs::gables
