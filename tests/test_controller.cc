/**
 * @file
 * Unit tests for the DRAM memory controller.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "dram/controller.hh"

namespace pccs::dram {
namespace {

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest()
        : ctrl(table1Config(), makeScheduler("FR-FCFS"))
    {
    }

    /** Run the controller for n cycles starting at `now`. */
    void run(Cycles n)
    {
        for (Cycles i = 0; i < n; ++i)
            ctrl.tick(now++);
    }

    MemoryController ctrl;
    Cycles now = 0;
};

TEST_F(ControllerTest, EnqueueAndComplete)
{
    std::vector<Request> done;
    ctrl.setCompletionCallback(
        [&](const Request &r) { done.push_back(r); });
    ASSERT_TRUE(ctrl.enqueue(0, 0x0, false, now));
    EXPECT_EQ(ctrl.pendingRequests(), 1u);
    run(200);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].source, 0u);
    EXPECT_EQ(ctrl.pendingRequests(), 0u);
    EXPECT_EQ(ctrl.stats().completed, 1u);
    EXPECT_EQ(ctrl.stats().reads, 1u);
    EXPECT_EQ(ctrl.stats().writes, 0u);
}

TEST_F(ControllerTest, ColdAccessIsRowMiss)
{
    ASSERT_TRUE(ctrl.enqueue(0, 0x0, false, now));
    run(200);
    EXPECT_EQ(ctrl.stats().rowMisses, 1u);
    EXPECT_EQ(ctrl.stats().rowHits, 0u);
}

TEST_F(ControllerTest, SecondAccessToOpenRowIsHit)
{
    const DramConfig &cfg = ctrl.config();
    // Two lines in the same row of the same channel/bank.
    const Addr a = 0x0;
    const Addr b = Addr{cfg.lineBytes} * cfg.channels; // next column
    ASSERT_EQ(ctrl.mapper().decode(a).row, ctrl.mapper().decode(b).row);
    ASSERT_EQ(ctrl.mapper().decode(a).bank,
              ctrl.mapper().decode(b).bank);
    ASSERT_TRUE(ctrl.enqueue(0, a, false, now));
    ASSERT_TRUE(ctrl.enqueue(0, b, false, now));
    run(300);
    EXPECT_EQ(ctrl.stats().rowMisses, 1u);
    EXPECT_EQ(ctrl.stats().rowHits, 1u);
    EXPECT_NEAR(ctrl.stats().rowBufferHitRate(), 0.5, 1e-9);
}

TEST_F(ControllerTest, RowConflictRequiresPrechargeLatency)
{
    const DramConfig &cfg = ctrl.config();
    const AddressMapper &map = ctrl.mapper();
    // Two different rows of the same bank (with XOR hash, bump the row
    // until the bank matches).
    const Addr a = 0x0;
    const DecodedAddr loc_a = map.decode(a);
    DecodedAddr loc_b = loc_a;
    Addr b = 0;
    for (std::uint32_t r = loc_a.row + 1; r < cfg.rowsPerBank; ++r) {
        loc_b.row = r;
        b = map.encode(loc_b);
        if (map.decode(b).bank == loc_a.bank)
            break;
    }
    ASSERT_EQ(map.decode(b).bank, loc_a.bank);
    ASSERT_NE(map.decode(b).row, loc_a.row);

    std::vector<Cycles> completions;
    ctrl.setCompletionCallback(
        [&](const Request &r) { completions.push_back(r.completion); });
    ASSERT_TRUE(ctrl.enqueue(0, a, false, now));
    ASSERT_TRUE(ctrl.enqueue(0, b, false, now));
    run(500);
    ASSERT_EQ(completions.size(), 2u);
    // The conflicting access needs tRAS + tRP + tRCD before its CAS.
    const DramTimingParams &t = cfg.timing;
    EXPECT_GE(completions[1],
              t.tRAS + t.tRP + t.tRCD + t.tCL + t.tBURST);
    EXPECT_EQ(ctrl.stats().rowMisses, 2u);
}

TEST_F(ControllerTest, QueueBackpressure)
{
    const DramConfig &cfg = ctrl.config();
    const unsigned cap = cfg.queuePerChannel();
    // Fill channel 0's queue: same channel = stride channels*lineBytes.
    unsigned accepted = 0;
    for (unsigned i = 0; i < cap + 10; ++i) {
        const Addr a = Addr{i} * cfg.lineBytes * cfg.channels;
        if (ctrl.enqueue(0, a, false, now))
            ++accepted;
    }
    EXPECT_EQ(accepted, cap);
    EXPECT_FALSE(ctrl.canAccept(0x0));
    // Another channel still has space.
    EXPECT_TRUE(ctrl.canAccept(cfg.lineBytes));
}

TEST_F(ControllerTest, BytesAccountedPerSource)
{
    ASSERT_TRUE(ctrl.enqueue(3, 0x0, false, now));
    ASSERT_TRUE(ctrl.enqueue(5, 0x40, true, now));
    run(300);
    EXPECT_EQ(ctrl.stats().bytesPerSource[3], 64u);
    EXPECT_EQ(ctrl.stats().bytesPerSource[5], 64u);
    EXPECT_EQ(ctrl.stats().bytesTransferred, 128u);
    EXPECT_EQ(ctrl.stats().writes, 1u);
    EXPECT_EQ(ctrl.stats().completedPerSource[3], 1u);
}

TEST_F(ControllerTest, ResetStatsClearsCounters)
{
    ASSERT_TRUE(ctrl.enqueue(0, 0x0, false, now));
    run(300);
    ASSERT_GT(ctrl.stats().completed, 0u);
    ctrl.resetStats();
    EXPECT_EQ(ctrl.stats().completed, 0u);
    EXPECT_EQ(ctrl.stats().bytesTransferred, 0u);
    EXPECT_EQ(ctrl.stats().rowMisses, 0u);
}

TEST_F(ControllerTest, AverageLatencyPositive)
{
    ASSERT_TRUE(ctrl.enqueue(0, 0x0, false, now));
    run(300);
    const DramTimingParams &t = ctrl.config().timing;
    EXPECT_GE(ctrl.stats().averageLatency(),
              static_cast<double>(t.tRCD + t.tCL + t.tBURST));
}

TEST_F(ControllerTest, EffectiveBandwidthFraction)
{
    // Saturate one channel with row-friendly traffic and check the
    // fraction is positive and below 1.
    const DramConfig &cfg = ctrl.config();
    for (unsigned i = 0; i < 32; ++i)
        ctrl.enqueue(0, Addr{i} * cfg.lineBytes * cfg.channels, false,
                     now);
    run(1000);
    const double frac = ctrl.effectiveBandwidthFraction(1000);
    EXPECT_GT(frac, 0.0);
    EXPECT_LE(frac, 1.0);
}

TEST_F(ControllerTest, SourceLimitEnforced)
{
    EXPECT_DEATH(ctrl.enqueue(Scheduler::maxSources, 0x0, false, now),
                 "source");
}

TEST(ControllerConfig, PeakBandwidthMatchesTable1)
{
    EXPECT_NEAR(table1Config().peakBandwidth(), 102.4, 1e-9);
}

TEST(ControllerStatsPrint, Gem5StyleDump)
{
    MemoryController ctrl(table1Config(),
                          makeScheduler("FR-FCFS"));
    Cycles now = 0;
    ASSERT_TRUE(ctrl.enqueue(0, 0x0, false, now));
    for (; now < 300; ++now)
        ctrl.tick(now);
    std::ostringstream os;
    ctrl.stats().print(os, "system.mc0");
    const std::string dump = os.str();
    EXPECT_NE(dump.find("system.mc0.reads 1 #"), std::string::npos);
    EXPECT_NE(dump.find("system.mc0.completed 1 #"),
              std::string::npos);
    EXPECT_NE(dump.find("rowBufferHitRate"), std::string::npos);
    // One line per statistic, each carrying a description.
    EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 9);
}

} // namespace
} // namespace pccs::dram
