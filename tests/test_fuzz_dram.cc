/**
 * @file
 * Randomized stress tests of the DRAM simulator: random geometries,
 * policies, and traffic mixes must uphold the controller's accounting
 * invariants (and trip none of the timing-legality assertions, which
 * stay armed in every build).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/rng.hh"
#include "dram/system.hh"

namespace pccs::dram {
namespace {

struct FuzzCase
{
    unsigned channels;
    unsigned banks;
    std::string policy;
    std::uint64_t seed;
};

class DramFuzz : public ::testing::TestWithParam<FuzzCase>
{
};

TEST_P(DramFuzz, InvariantsHoldUnderRandomTraffic)
{
    const FuzzCase fc = GetParam();
    Rng rng(fc.seed);

    DramConfig cfg = table1Config();
    cfg.channels = fc.channels;
    cfg.banksPerChannel = fc.banks;
    cfg.requestBufferEntries = 64 * fc.channels;

    DramSystem sys(cfg, fc.policy);
    const unsigned sources = 1 + rng.below(12);
    for (unsigned s = 0; s < sources; ++s) {
        TrafficParams p;
        p.source = s;
        p.demand = rng.uniform(1.0, 40.0);
        p.rowLocality = rng.uniform(0.3, 0.99);
        p.writeFraction = rng.uniform(0.0, 0.5);
        p.mlp = 4 + static_cast<unsigned>(rng.below(60));
        p.seed = fc.seed * 977 + s;
        sys.addGenerator(p);
    }

    // Measure from cycle zero: the CAS/completion balance invariants
    // are only exact when no request straddles the window start.
    sys.run(35000);

    const ControllerStats &st = sys.controller().stats();

    // CAS accounting: every CAS is a read or a write, is a hit or a
    // miss, and moves exactly one line.
    EXPECT_EQ(st.rowHits + st.rowMisses, st.reads + st.writes);
    EXPECT_EQ(st.bytesTransferred,
              (st.reads + st.writes) * cfg.lineBytes);

    // Completions never outrun CAS issues.
    EXPECT_LE(st.completed, st.reads + st.writes);

    // Every source made progress and none outran its issues.
    for (unsigned s = 0; s < sources; ++s) {
        const auto &gen = sys.generator(s);
        EXPECT_GT(gen.completedLines(), 0u) << "source " << s;
        EXPECT_LE(gen.completedLines(), gen.issuedLines())
            << "source " << s;
        EXPECT_LE(gen.outstanding(), 64u);
    }

    // Latency can never beat the raw pipeline minimum.
    if (st.completed > 0) {
        EXPECT_GE(st.averageLatency(),
                  static_cast<double>(cfg.timing.tCL +
                                      cfg.timing.tBURST));
    }

    // Bandwidth accounting stays within the theoretical peak.
    EXPECT_LE(sys.effectiveBandwidthFraction(), 1.0 + 1e-9);

    // Hit-rate is a valid ratio.
    EXPECT_GE(st.rowBufferHitRate(), 0.0);
    EXPECT_LE(st.rowBufferHitRate(), 1.0);
}

std::vector<FuzzCase>
fuzzCases()
{
    std::vector<FuzzCase> cases;
    std::uint64_t seed = 1;
    for (unsigned channels : {1u, 2u, 4u}) {
        for (unsigned banks : {4u, 8u, 16u}) {
            for (const std::string &policy : schedulerNames()) {
                cases.push_back({channels, banks, policy, seed++});
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DramFuzz, ::testing::ValuesIn(fuzzCases()),
    [](const ::testing::TestParamInfo<FuzzCase> &param_info) {
        std::string name = param_info.param.policy;
        name.erase(std::remove(name.begin(), name.end(), '-'),
                   name.end());
        return name + "_ch" + std::to_string(param_info.param.channels) +
               "_b" + std::to_string(param_info.param.banks);
    });

TEST(DramDrain, AllRequestsEventuallyComplete)
{
    // Enqueue a burst of conflicting requests directly and tick until
    // the controller drains: nothing may get stuck.
    MemoryController ctrl(table1Config(),
                          makeScheduler("ATLAS"));
    Rng rng(55);
    unsigned accepted = 0;
    std::uint64_t completed = 0;
    ctrl.setCompletionCallback(
        [&](const Request &) { ++completed; });
    Cycles now = 0;
    for (int i = 0; i < 500; ++i) {
        const Addr a = (rng.next() % ctrl.addressSpan()) & ~Addr{63};
        if (ctrl.enqueue(i % 16, a, rng.chance(0.3), now))
            ++accepted;
        ctrl.tick(now++);
    }
    ASSERT_GT(accepted, 100u);
    Cycles waited = 0;
    while (ctrl.pendingRequests() > 0 && waited < 200000) {
        ctrl.tick(now++);
        ++waited;
    }
    EXPECT_EQ(ctrl.pendingRequests(), 0u);
    EXPECT_EQ(completed, accepted);
}

} // namespace
} // namespace pccs::dram
