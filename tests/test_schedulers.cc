/**
 * @file
 * Unit tests for the five memory-controller scheduling policies
 * (Table 2 of the paper).
 */

#include <gtest/gtest.h>

#include <vector>

#include "dram/sched_atlas.hh"
#include "dram/sched_fcfs.hh"
#include "dram/sched_sms.hh"
#include "dram/sched_tcm.hh"
#include "dram/scheduler.hh"

namespace pccs::dram {
namespace {

Request
makeReq(std::uint64_t id, unsigned source, Cycles arrival,
        std::uint32_t row = 0)
{
    Request r;
    r.id = id;
    r.source = source;
    r.arrival = arrival;
    r.loc.row = row;
    return r;
}

TEST(SchedulerFactory, NamesRoundTrip)
{
    for (auto kind : {SchedulerKind::Fcfs, SchedulerKind::FrFcfs,
                      SchedulerKind::Atlas, SchedulerKind::Tcm,
                      SchedulerKind::Sms}) {
        auto sched = makeScheduler(kind);
        EXPECT_EQ(schedulerFromName(sched->name()), kind);
        EXPECT_STREQ(sched->name(), schedulerName(kind));
    }
}

TEST(SchedulerFactory, ParseAliases)
{
    EXPECT_EQ(schedulerFromName("frfcfs"), SchedulerKind::FrFcfs);
    EXPECT_EQ(schedulerFromName("FR-FCFS"), SchedulerKind::FrFcfs);
    EXPECT_EQ(schedulerFromName("atlas"), SchedulerKind::Atlas);
}

TEST(SchedulerFactoryDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(schedulerFromName("lru"),
                ::testing::ExitedWithCode(1), "unknown scheduler");
}

TEST(Fcfs, PicksOldestWhenIssuable)
{
    FcfsScheduler s;
    Request r1 = makeReq(1, 0, 10);
    Request r2 = makeReq(2, 1, 5);
    std::vector<QueueEntryView> q{{&r1, true, false}, {&r2, true, false}};
    EXPECT_EQ(s.pick(0, q, 20), 1);
}

TEST(Fcfs, OldestIssuableWhenHeadIsBlocked)
{
    FcfsScheduler s;
    Request r1 = makeReq(1, 0, 10);
    Request r2 = makeReq(2, 1, 5);
    // The oldest request cannot issue its command this cycle; service
    // stays chronological among the issuable ones.
    std::vector<QueueEntryView> q{{&r1, true, false},
                                  {&r2, false, false}};
    EXPECT_EQ(s.pick(0, q, 20), 0);
}

TEST(Fcfs, NeverPrefersRowHitOverOlderRequest)
{
    FcfsScheduler s;
    Request r1 = makeReq(1, 0, 5);  // older, row miss
    Request r2 = makeReq(2, 1, 10); // younger, row hit
    std::vector<QueueEntryView> q{{&r1, true, false}, {&r2, true, true}};
    EXPECT_EQ(s.pick(0, q, 20), 0);
}

TEST(FrFcfs, PrefersRowHitOverOlder)
{
    FrFcfsScheduler s;
    Request r1 = makeReq(1, 0, 5);  // older, row miss
    Request r2 = makeReq(2, 1, 10); // younger, row hit
    std::vector<QueueEntryView> q{{&r1, true, false}, {&r2, true, true}};
    EXPECT_EQ(s.pick(0, q, 20), 1);
}

TEST(FrFcfs, AgeBreaksTiesAmongHits)
{
    FrFcfsScheduler s;
    Request r1 = makeReq(1, 0, 10);
    Request r2 = makeReq(2, 1, 5);
    std::vector<QueueEntryView> q{{&r1, true, true}, {&r2, true, true}};
    EXPECT_EQ(s.pick(0, q, 20), 1);
}

TEST(FrFcfs, SkipsNonIssuable)
{
    FrFcfsScheduler s;
    Request r1 = makeReq(1, 0, 5);
    Request r2 = makeReq(2, 1, 10);
    std::vector<QueueEntryView> q{{&r1, false, true}, {&r2, true, false}};
    EXPECT_EQ(s.pick(0, q, 20), 1);
}

TEST(FrFcfs, EmptyQueueIdles)
{
    FrFcfsScheduler s;
    EXPECT_EQ(s.pick(0, {}, 0), -1);
}

TEST(Atlas, PrefersLeastAttainedService)
{
    SchedulerParams p;
    AtlasScheduler s(p);
    Request heavy = makeReq(1, 0, 0);
    Request light = makeReq(2, 1, 5);
    // Source 0 has attained lots of service this quantum.
    for (int i = 0; i < 100; ++i)
        s.onService(heavy, i, 64);
    std::vector<QueueEntryView> q{{&heavy, true, true},
                                  {&light, true, false}};
    // Despite being younger and a row miss, the least-served source
    // wins.
    EXPECT_EQ(s.pick(0, q, 50), 1);
}

TEST(Atlas, StarvationThresholdOverridesService)
{
    SchedulerParams p;
    p.starvationThreshold = 100;
    AtlasScheduler s(p);
    Request starved = makeReq(1, 0, 0);
    Request fresh = makeReq(2, 1, 190);
    for (int i = 0; i < 100; ++i)
        s.onService(starved, i, 64); // source 0 heavily served
    std::vector<QueueEntryView> q{{&starved, true, false},
                                  {&fresh, true, true}};
    // At now=200 the old request has waited 200 > threshold: it wins
    // regardless of attained service.
    EXPECT_EQ(s.pick(0, q, 200), 0);
}

TEST(Atlas, QuantumFoldsServiceWithSmoothing)
{
    SchedulerParams p;
    p.quantum = 1000;
    p.atlasAlpha = 0.5;
    AtlasScheduler s(p);
    Request r = makeReq(1, 3, 0);
    for (int i = 0; i < 10; ++i)
        s.onService(r, i, 64);
    EXPECT_DOUBLE_EQ(s.attainedService(3), 0.0) << "before quantum end";
    s.tick(1000);
    EXPECT_DOUBLE_EQ(s.attainedService(3), 5.0); // 0.5 * 10
    s.tick(2000);
    EXPECT_DOUBLE_EQ(s.attainedService(3), 2.5); // decays when idle
}

TEST(Atlas, RowHitBreaksServiceTies)
{
    AtlasScheduler s{SchedulerParams{}};
    Request r1 = makeReq(1, 0, 5);
    Request r2 = makeReq(2, 1, 3);
    std::vector<QueueEntryView> q{{&r1, true, true}, {&r2, true, false}};
    EXPECT_EQ(s.pick(0, q, 10), 0);
}

TEST(Tcm, EveryoneLatencySensitiveInitially)
{
    TcmScheduler s{SchedulerParams{}};
    EXPECT_TRUE(s.inLatencyCluster(0));
    EXPECT_TRUE(s.inLatencyCluster(63));
}

TEST(Tcm, ClustersByIntensityAfterQuantum)
{
    SchedulerParams p;
    p.quantum = 1000;
    p.tcmClusterFraction = 0.2;
    TcmScheduler s(p);
    Request heavy = makeReq(1, 0, 0);
    Request light = makeReq(2, 1, 0);
    for (int i = 0; i < 900; ++i)
        s.onService(heavy, i, 64);
    for (int i = 0; i < 30; ++i)
        s.onService(light, i, 64);
    s.tick(1000);
    EXPECT_FALSE(s.inLatencyCluster(0)) << "heavy source";
    EXPECT_TRUE(s.inLatencyCluster(1)) << "light source";
}

TEST(Tcm, LatencyClusterWinsPick)
{
    SchedulerParams p;
    p.quantum = 1000;
    p.tcmClusterFraction = 0.2;
    TcmScheduler s(p);
    Request heavy = makeReq(1, 0, 0);
    Request light = makeReq(2, 1, 10);
    for (int i = 0; i < 900; ++i)
        s.onService(heavy, i, 64);
    for (int i = 0; i < 30; ++i)
        s.onService(light, i, 64);
    s.tick(1000);
    // Heavy is older and a row hit; light still wins: it is in the
    // latency-sensitive cluster.
    std::vector<QueueEntryView> q{{&heavy, true, true},
                                  {&light, true, false}};
    EXPECT_EQ(s.pick(0, q, 1100), 1);
}

TEST(Sms, ServesBatchToCompletion)
{
    SchedulerParams p;
    p.smsShortestFirstProb = 1.0; // deterministic
    SmsScheduler s(p);
    Request a1 = makeReq(1, 0, 0, /*row=*/5);
    Request a2 = makeReq(2, 0, 1, /*row=*/5);
    Request b1 = makeReq(3, 1, 2, /*row=*/9);
    // Source 1's batch (1 request) is shorter: SJF picks it first.
    std::vector<QueueEntryView> q{{&a1, true, false},
                                  {&a2, true, false},
                                  {&b1, true, false}};
    EXPECT_EQ(s.pick(0, q, 10), 2);
    // Next pick: source 1 exhausted, source 0's batch begins.
    std::vector<QueueEntryView> q2{{&a1, true, false},
                                   {&a2, true, false}};
    EXPECT_EQ(s.pick(0, q2, 11), 0);
    // The batch continues with the same source/row even though another
    // source could be selected.
    Request c1 = makeReq(4, 2, 3, /*row=*/7);
    std::vector<QueueEntryView> q3{{&a2, true, false},
                                   {&c1, true, false}};
    EXPECT_EQ(s.pick(0, q3, 12), 0) << "batch not preempted";
}

TEST(Sms, WorkConservingWhenBatchHeadNotIssuable)
{
    SchedulerParams p;
    p.smsShortestFirstProb = 1.0;
    SmsScheduler s(p);
    Request a1 = makeReq(1, 0, 0, 5);
    Request a2 = makeReq(2, 0, 1, 5);
    std::vector<QueueEntryView> q{{&a1, true, false}, {&a2, true, false}};
    EXPECT_EQ(s.pick(0, q, 10), 0);
    // The batch of source 0 is in flight but its next request is
    // blocked (bank activating): the slot serves another source's
    // ready request instead of idling...
    Request b1 = makeReq(3, 1, 2, 9);
    std::vector<QueueEntryView> q2{{&a2, false, false},
                                   {&b1, true, false}};
    EXPECT_EQ(s.pick(0, q2, 11), 1);
    // ...and with nothing issuable at all, the slot idles.
    std::vector<QueueEntryView> q3{{&a2, false, false}};
    EXPECT_EQ(s.pick(0, q3, 12), -1);
}

TEST(Sms, EmptyQueueIdles)
{
    SmsScheduler s{SchedulerParams{}};
    EXPECT_EQ(s.pick(0, {}, 0), -1);
}

TEST(Sms, PerChannelBatchesAreIndependent)
{
    SchedulerParams p;
    p.smsShortestFirstProb = 1.0;
    SmsScheduler s(p);
    Request a = makeReq(1, 0, 0, 5);
    Request b = makeReq(2, 1, 1, 9);
    std::vector<QueueEntryView> q{{&a, true, false}, {&b, true, false}};
    // Channel 0 picks source 0's single-request batch... (both size 1;
    // older arrival wins the SJF tie).
    EXPECT_EQ(s.pick(0, q, 10), 0);
    // ...while channel 1's state is untouched and makes its own pick.
    EXPECT_EQ(s.pick(1, q, 10), 0);
}

} // namespace
} // namespace pccs::dram
