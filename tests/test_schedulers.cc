/**
 * @file
 * Unit tests for the memory-controller scheduling policies (the five
 * of Table 2 plus the BLISS/PARBS/MEDUSA extensions) and for the
 * name-keyed policy registry they live in.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dram/sched_atlas.hh"
#include "dram/sched_bliss.hh"
#include "dram/sched_fcfs.hh"
#include "dram/sched_medusa.hh"
#include "dram/sched_parbs.hh"
#include "dram/sched_sms.hh"
#include "dram/sched_tcm.hh"
#include "dram/scheduler.hh"

namespace pccs::dram {
namespace {

Request
makeReq(std::uint64_t id, unsigned source, Cycles arrival,
        std::uint32_t row = 0, std::uint32_t bank = 0,
        std::uint32_t channel = 0)
{
    Request r;
    r.id = id;
    r.source = source;
    r.arrival = arrival;
    r.loc.row = row;
    r.loc.bank = bank;
    r.loc.channel = channel;
    return r;
}

TEST(SchedulerRegistry, EnumeratesBuiltinsInRegistrationOrder)
{
    const std::vector<std::string> expect{"FCFS", "FR-FCFS", "ATLAS",
                                          "TCM",  "SMS",     "BLISS",
                                          "PARBS", "MEDUSA"};
    EXPECT_EQ(schedulerNames(), expect);
}

TEST(SchedulerRegistry, NamesRoundTrip)
{
    for (const std::string &name : schedulerNames()) {
        EXPECT_EQ(schedulerFromName(name).name, name);
        auto sched = makeScheduler(name);
        ASSERT_NE(sched, nullptr);
        EXPECT_EQ(sched->name(), name);
    }
}

TEST(SchedulerRegistry, DescriptorAgreesWithInstance)
{
    // The capability flags exist so tooling can inspect a policy
    // without instantiating it; they must never drift from what a
    // fresh instance actually reports.
    for (const PolicyInfo &info : schedulerPolicies()) {
        SCOPED_TRACE(info.name);
        auto sched = info.factory(SchedulerParams{});
        ASSERT_NE(sched, nullptr);
        EXPECT_EQ(sched->name(), info.name);
        EXPECT_EQ(sched->pickIsPure(), info.pickIsPure);
        EXPECT_EQ(sched->preservesRowHits(), info.preservesRowHits);
        EXPECT_EQ(sched->nextTickEvent() != kNoEvent,
                  info.needsTickEvents);
        EXPECT_EQ(sched->fastPickEligible(), info.fastPickEligible);
        // Every builtin now implements a fast pick; an impure policy
        // may too (the engine then calls fastPick() on every evaluated
        // cycle so its in-pick mutations land on reference cycles).
        // A documented-fallback note is only meaningful when eligible.
        EXPECT_TRUE(info.fastPickEligible || info.fastPickNote.empty());
    }
}

TEST(SchedulerRegistry, ParseAliasesAndCase)
{
    EXPECT_EQ(schedulerFromName("frfcfs").name, "FR-FCFS");
    EXPECT_EQ(schedulerFromName("FR-FCFS").name, "FR-FCFS");
    EXPECT_EQ(schedulerFromName("fr-fcfs").name, "FR-FCFS");
    EXPECT_EQ(schedulerFromName("atlas").name, "ATLAS");
    EXPECT_EQ(schedulerFromName("par-bs").name, "PARBS");
    EXPECT_EQ(schedulerFromName("parbs").name, "PARBS");
    EXPECT_EQ(schedulerFromName("bliss").name, "BLISS");
    EXPECT_EQ(schedulerFromName("Medusa").name, "MEDUSA");
    EXPECT_EQ(findSchedulerPolicy("not-a-policy"), nullptr);
}

TEST(SchedulerRegistryDeath, UnknownNameIsFatal)
{
    // The error must enumerate the valid names so a CLI user can
    // self-correct.
    EXPECT_EXIT(schedulerFromName("lru"),
                ::testing::ExitedWithCode(1),
                "unknown scheduler.*FR-FCFS.*BLISS.*PARBS.*MEDUSA");
}

TEST(SchedulerRegistryDeath, DuplicateRegistrationIsFatal)
{
    PolicyInfo dup;
    dup.name = "fcfs"; // collides case-insensitively with "FCFS"
    dup.factory = [](const SchedulerParams &) {
        return std::make_unique<FcfsScheduler>();
    };
    EXPECT_EXIT(registerSchedulerPolicy(std::move(dup)),
                ::testing::ExitedWithCode(1), "registered twice");
}

/** A minimal external policy to prove third-party registration. */
class RoundRobinTestScheduler : public Scheduler
{
  public:
    const char *name() const override { return "TEST-RR"; }
    int
    pick(unsigned channel, std::span<const QueueEntryView> entries,
         Cycles now) override
    {
        (void)channel;
        (void)now;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].issuable)
                return static_cast<int>(i);
        }
        return -1;
    }
};

TEST(SchedulerRegistry, ExternalRegistrationFlowsThroughLookup)
{
    registerSchedulerPolicy({
        .name = "TEST-RR",
        .aliases = {"rr"},
        .factory =
            [](const SchedulerParams &) {
                return std::make_unique<RoundRobinTestScheduler>();
            },
        .pickIsPure = true,
        .preservesRowHits = true,
        .needsTickEvents = false,
        .fastPickEligible = false,
        .fastPickNote = {},
    });
    const PolicyInfo *info = findSchedulerPolicy("rr");
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->name, "TEST-RR");
    auto sched = makeScheduler("test-rr");
    ASSERT_NE(sched, nullptr);
    EXPECT_STREQ(sched->name(), "TEST-RR");
    const std::vector<std::string> names = schedulerNames();
    EXPECT_EQ(names.back(), "TEST-RR");
}

TEST(Fcfs, PicksOldestWhenIssuable)
{
    FcfsScheduler s;
    Request r1 = makeReq(1, 0, 10);
    Request r2 = makeReq(2, 1, 5);
    std::vector<QueueEntryView> q{{&r1, true, false}, {&r2, true, false}};
    EXPECT_EQ(s.pick(0, q, 20), 1);
}

TEST(Fcfs, OldestIssuableWhenHeadIsBlocked)
{
    FcfsScheduler s;
    Request r1 = makeReq(1, 0, 10);
    Request r2 = makeReq(2, 1, 5);
    // The oldest request cannot issue its command this cycle; service
    // stays chronological among the issuable ones.
    std::vector<QueueEntryView> q{{&r1, true, false},
                                  {&r2, false, false}};
    EXPECT_EQ(s.pick(0, q, 20), 0);
}

TEST(Fcfs, NeverPrefersRowHitOverOlderRequest)
{
    FcfsScheduler s;
    Request r1 = makeReq(1, 0, 5);  // older, row miss
    Request r2 = makeReq(2, 1, 10); // younger, row hit
    std::vector<QueueEntryView> q{{&r1, true, false}, {&r2, true, true}};
    EXPECT_EQ(s.pick(0, q, 20), 0);
}

TEST(FrFcfs, PrefersRowHitOverOlder)
{
    FrFcfsScheduler s;
    Request r1 = makeReq(1, 0, 5);  // older, row miss
    Request r2 = makeReq(2, 1, 10); // younger, row hit
    std::vector<QueueEntryView> q{{&r1, true, false}, {&r2, true, true}};
    EXPECT_EQ(s.pick(0, q, 20), 1);
}

TEST(FrFcfs, AgeBreaksTiesAmongHits)
{
    FrFcfsScheduler s;
    Request r1 = makeReq(1, 0, 10);
    Request r2 = makeReq(2, 1, 5);
    std::vector<QueueEntryView> q{{&r1, true, true}, {&r2, true, true}};
    EXPECT_EQ(s.pick(0, q, 20), 1);
}

TEST(FrFcfs, SkipsNonIssuable)
{
    FrFcfsScheduler s;
    Request r1 = makeReq(1, 0, 5);
    Request r2 = makeReq(2, 1, 10);
    std::vector<QueueEntryView> q{{&r1, false, true}, {&r2, true, false}};
    EXPECT_EQ(s.pick(0, q, 20), 1);
}

TEST(FrFcfs, EmptyQueueIdles)
{
    FrFcfsScheduler s;
    EXPECT_EQ(s.pick(0, {}, 0), -1);
}

TEST(Atlas, PrefersLeastAttainedService)
{
    SchedulerParams p;
    AtlasScheduler s(p);
    Request heavy = makeReq(1, 0, 0);
    Request light = makeReq(2, 1, 5);
    // Source 0 has attained lots of service this quantum.
    for (int i = 0; i < 100; ++i)
        s.onService(heavy, i, 64);
    std::vector<QueueEntryView> q{{&heavy, true, true},
                                  {&light, true, false}};
    // Despite being younger and a row miss, the least-served source
    // wins.
    EXPECT_EQ(s.pick(0, q, 50), 1);
}

TEST(Atlas, StarvationThresholdOverridesService)
{
    SchedulerParams p;
    p.starvationThreshold = 100;
    AtlasScheduler s(p);
    Request starved = makeReq(1, 0, 0);
    Request fresh = makeReq(2, 1, 190);
    for (int i = 0; i < 100; ++i)
        s.onService(starved, i, 64); // source 0 heavily served
    std::vector<QueueEntryView> q{{&starved, true, false},
                                  {&fresh, true, true}};
    // At now=200 the old request has waited 200 > threshold: it wins
    // regardless of attained service.
    EXPECT_EQ(s.pick(0, q, 200), 0);
}

TEST(Atlas, QuantumFoldsServiceWithSmoothing)
{
    SchedulerParams p;
    p.quantum = 1000;
    p.atlasAlpha = 0.5;
    AtlasScheduler s(p);
    Request r = makeReq(1, 3, 0);
    for (int i = 0; i < 10; ++i)
        s.onService(r, i, 64);
    EXPECT_DOUBLE_EQ(s.attainedService(3), 0.0) << "before quantum end";
    s.tick(1000);
    EXPECT_DOUBLE_EQ(s.attainedService(3), 5.0); // 0.5 * 10
    s.tick(2000);
    EXPECT_DOUBLE_EQ(s.attainedService(3), 2.5); // decays when idle
}

TEST(Atlas, RowHitBreaksServiceTies)
{
    AtlasScheduler s{SchedulerParams{}};
    Request r1 = makeReq(1, 0, 5);
    Request r2 = makeReq(2, 1, 3);
    std::vector<QueueEntryView> q{{&r1, true, true}, {&r2, true, false}};
    EXPECT_EQ(s.pick(0, q, 10), 0);
}

TEST(Tcm, EveryoneLatencySensitiveInitially)
{
    TcmScheduler s{SchedulerParams{}};
    EXPECT_TRUE(s.inLatencyCluster(0));
    EXPECT_TRUE(s.inLatencyCluster(63));
}

TEST(Tcm, ClustersByIntensityAfterQuantum)
{
    SchedulerParams p;
    p.quantum = 1000;
    p.tcmClusterFraction = 0.2;
    TcmScheduler s(p);
    Request heavy = makeReq(1, 0, 0);
    Request light = makeReq(2, 1, 0);
    for (int i = 0; i < 900; ++i)
        s.onService(heavy, i, 64);
    for (int i = 0; i < 30; ++i)
        s.onService(light, i, 64);
    s.tick(1000);
    EXPECT_FALSE(s.inLatencyCluster(0)) << "heavy source";
    EXPECT_TRUE(s.inLatencyCluster(1)) << "light source";
}

TEST(Tcm, LatencyClusterWinsPick)
{
    SchedulerParams p;
    p.quantum = 1000;
    p.tcmClusterFraction = 0.2;
    TcmScheduler s(p);
    Request heavy = makeReq(1, 0, 0);
    Request light = makeReq(2, 1, 10);
    for (int i = 0; i < 900; ++i)
        s.onService(heavy, i, 64);
    for (int i = 0; i < 30; ++i)
        s.onService(light, i, 64);
    s.tick(1000);
    // Heavy is older and a row hit; light still wins: it is in the
    // latency-sensitive cluster.
    std::vector<QueueEntryView> q{{&heavy, true, true},
                                  {&light, true, false}};
    EXPECT_EQ(s.pick(0, q, 1100), 1);
}

TEST(Sms, ServesBatchToCompletion)
{
    SchedulerParams p;
    p.smsShortestFirstProb = 1.0; // deterministic
    SmsScheduler s(p);
    Request a1 = makeReq(1, 0, 0, /*row=*/5);
    Request a2 = makeReq(2, 0, 1, /*row=*/5);
    Request b1 = makeReq(3, 1, 2, /*row=*/9);
    // Source 1's batch (1 request) is shorter: SJF picks it first.
    std::vector<QueueEntryView> q{{&a1, true, false},
                                  {&a2, true, false},
                                  {&b1, true, false}};
    EXPECT_EQ(s.pick(0, q, 10), 2);
    // Next pick: source 1 exhausted, source 0's batch begins.
    std::vector<QueueEntryView> q2{{&a1, true, false},
                                   {&a2, true, false}};
    EXPECT_EQ(s.pick(0, q2, 11), 0);
    // The batch continues with the same source/row even though another
    // source could be selected.
    Request c1 = makeReq(4, 2, 3, /*row=*/7);
    std::vector<QueueEntryView> q3{{&a2, true, false},
                                   {&c1, true, false}};
    EXPECT_EQ(s.pick(0, q3, 12), 0) << "batch not preempted";
}

TEST(Sms, WorkConservingWhenBatchHeadNotIssuable)
{
    SchedulerParams p;
    p.smsShortestFirstProb = 1.0;
    SmsScheduler s(p);
    Request a1 = makeReq(1, 0, 0, 5);
    Request a2 = makeReq(2, 0, 1, 5);
    std::vector<QueueEntryView> q{{&a1, true, false}, {&a2, true, false}};
    EXPECT_EQ(s.pick(0, q, 10), 0);
    // The batch of source 0 is in flight but its next request is
    // blocked (bank activating): the slot serves another source's
    // ready request instead of idling...
    Request b1 = makeReq(3, 1, 2, 9);
    std::vector<QueueEntryView> q2{{&a2, false, false},
                                   {&b1, true, false}};
    EXPECT_EQ(s.pick(0, q2, 11), 1);
    // ...and with nothing issuable at all, the slot idles.
    std::vector<QueueEntryView> q3{{&a2, false, false}};
    EXPECT_EQ(s.pick(0, q3, 12), -1);
}

TEST(Sms, EmptyQueueIdles)
{
    SmsScheduler s{SchedulerParams{}};
    EXPECT_EQ(s.pick(0, {}, 0), -1);
}

TEST(Sms, PerChannelBatchesAreIndependent)
{
    SchedulerParams p;
    p.smsShortestFirstProb = 1.0;
    SmsScheduler s(p);
    Request a = makeReq(1, 0, 0, 5);
    Request b = makeReq(2, 1, 1, 9);
    std::vector<QueueEntryView> q{{&a, true, false}, {&b, true, false}};
    // Channel 0 picks source 0's single-request batch... (both size 1;
    // older arrival wins the SJF tie).
    EXPECT_EQ(s.pick(0, q, 10), 0);
    // ...while channel 1's state is untouched and makes its own pick.
    EXPECT_EQ(s.pick(1, q, 10), 0);
}

TEST(Bliss, BlacklistsAfterConsecutiveServices)
{
    SchedulerParams p;
    p.blissBlacklistThreshold = 3;
    BlissScheduler s(p);
    Request r = makeReq(1, 0, 0);
    s.onService(r, 0, 64);
    s.onService(r, 1, 64);
    EXPECT_FALSE(s.blacklisted(0)) << "two consecutive services";
    s.onService(r, 2, 64);
    EXPECT_TRUE(s.blacklisted(0)) << "third consecutive service";
}

TEST(Bliss, InterleavedServiceResetsStreak)
{
    SchedulerParams p;
    p.blissBlacklistThreshold = 3;
    BlissScheduler s(p);
    Request a = makeReq(1, 0, 0);
    Request b = makeReq(2, 1, 0);
    // Sources alternating never build a streak; nobody is blacklisted.
    for (Cycles c = 0; c < 12; ++c)
        s.onService(c % 2 ? b : a, c, 64);
    EXPECT_FALSE(s.blacklisted(0));
    EXPECT_FALSE(s.blacklisted(1));
}

TEST(Bliss, BlacklistedSourceLosesPick)
{
    SchedulerParams p;
    p.blissBlacklistThreshold = 2;
    BlissScheduler s(p);
    Request hog = makeReq(1, 0, 0);
    s.onService(hog, 0, 64);
    s.onService(hog, 1, 64);
    ASSERT_TRUE(s.blacklisted(0));
    // Blacklisted source 0 is older and a row hit; clean source 1
    // still wins.
    Request young = makeReq(2, 1, 10);
    std::vector<QueueEntryView> q{{&hog, true, true},
                                  {&young, true, false}};
    EXPECT_EQ(s.pick(0, q, 20), 1);
    // A blacklisted source is deprioritized, not starved: alone in the
    // queue it is still served.
    std::vector<QueueEntryView> q2{{&hog, true, false}};
    EXPECT_EQ(s.pick(0, q2, 21), 0);
}

TEST(Bliss, ClearIntervalGrantsCleanSlate)
{
    SchedulerParams p;
    p.blissBlacklistThreshold = 2;
    p.blissClearInterval = 1000;
    BlissScheduler s(p);
    Request hog = makeReq(1, 0, 0);
    s.onService(hog, 0, 64);
    s.onService(hog, 1, 64);
    ASSERT_TRUE(s.blacklisted(0));
    EXPECT_EQ(s.nextTickEvent(), 1000u);
    s.tick(999);
    EXPECT_TRUE(s.blacklisted(0)) << "tick before the boundary";
    s.tick(1000);
    EXPECT_FALSE(s.blacklisted(0)) << "boundary clears the blacklist";
    EXPECT_EQ(s.nextTickEvent(), 2000u) << "rearmed one interval out";
}

TEST(Parbs, BatchRanksShortestSourceFirst)
{
    SchedulerParams p;
    p.parbsBatchCap = 2;
    ParbsScheduler s(p);
    Request a1 = makeReq(1, 0, 0);
    Request a2 = makeReq(2, 0, 1);
    Request a3 = makeReq(3, 0, 2);
    Request b1 = makeReq(4, 1, 3);
    std::vector<QueueEntryView> q{{&a1, true, false},
                                  {&a2, true, false},
                                  {&a3, true, false},
                                  {&b1, true, false}};
    // First pick forms the batch: two oldest of source 0 plus source
    // 1's only request; source 1 (shortest job) ranks first, so its
    // request wins despite being the youngest.
    EXPECT_EQ(s.pick(0, q, 10), 3);
    EXPECT_EQ(s.markedCount(0), 3u);
}

TEST(Parbs, MarkedRequestsBeatUnmarkedRowHits)
{
    SchedulerParams p;
    p.parbsBatchCap = 1;
    ParbsScheduler s(p);
    Request a1 = makeReq(1, 0, 0);
    Request a2 = makeReq(2, 0, 1, /*row=*/7);
    std::vector<QueueEntryView> q{{&a1, true, false},
                                  {&a2, true, false}};
    // Batch = {a1} (cap 1). a2 later turns into a row hit; the marked
    // a1 still goes first — batch membership outranks row locality.
    EXPECT_EQ(s.pick(0, q, 10), 0);
    std::vector<QueueEntryView> q2{{&a1, true, false},
                                   {&a2, true, true}};
    EXPECT_EQ(s.pick(0, q2, 11), 0);
}

TEST(Parbs, BatchCompletionTriggersReformation)
{
    SchedulerParams p;
    p.parbsBatchCap = 2;
    ParbsScheduler s(p);
    Request a1 = makeReq(1, 0, 0);
    Request a2 = makeReq(2, 0, 1);
    Request a3 = makeReq(3, 0, 2);
    std::vector<QueueEntryView> q{{&a1, true, false},
                                  {&a2, true, false},
                                  {&a3, true, false}};
    EXPECT_EQ(s.pick(0, q, 10), 0);
    EXPECT_EQ(s.markedCount(0), 2u) << "a1 and a2 marked";
    // Servicing drains the batch; ids leave the marked set.
    s.onService(a1, 10, 64);
    EXPECT_EQ(s.markedCount(0), 1u);
    std::vector<QueueEntryView> q2{{&a2, true, false},
                                   {&a3, true, false}};
    EXPECT_EQ(s.pick(0, q2, 11), 0) << "a2 is the marked survivor";
    s.onService(a2, 11, 64);
    EXPECT_EQ(s.markedCount(0), 0u);
    // With the batch complete, the next pick re-forms around a3.
    std::vector<QueueEntryView> q3{{&a3, true, false}};
    EXPECT_EQ(s.pick(0, q3, 12), 0);
    EXPECT_EQ(s.markedCount(0), 1u) << "new batch marked a3";
}

TEST(Parbs, ChannelsBatchIndependently)
{
    SchedulerParams p;
    p.parbsBatchCap = 2;
    ParbsScheduler s(p);
    Request a = makeReq(1, 0, 0, 0, 0, /*channel=*/0);
    Request b = makeReq(2, 1, 1, 0, 0, /*channel=*/1);
    std::vector<QueueEntryView> q0{{&a, true, false}};
    std::vector<QueueEntryView> q1{{&b, true, false}};
    EXPECT_EQ(s.pick(0, q0, 10), 0);
    EXPECT_EQ(s.pick(1, q1, 10), 0);
    EXPECT_EQ(s.markedCount(0), 1u);
    EXPECT_EQ(s.markedCount(1), 1u);
    // Service on channel 0 must not disturb channel 1's batch.
    s.onService(a, 10, 64);
    EXPECT_EQ(s.markedCount(0), 0u);
    EXPECT_EQ(s.markedCount(1), 1u);
}

TEST(Medusa, ReservedBankBeatsNonReserved)
{
    SchedulerParams p;
    p.medusaReservedBankMask = 0x3; // banks 0 and 1 reserved
    MedusaScheduler s(p);
    // Non-reserved bank 2 is older and a row hit; reserved bank 1
    // still wins its slot.
    Request stream = makeReq(1, 0, 0, /*row=*/5, /*bank=*/2);
    Request isolated = makeReq(2, 1, 10, /*row=*/9, /*bank=*/1);
    std::vector<QueueEntryView> q{{&stream, true, true},
                                  {&isolated, true, false}};
    EXPECT_EQ(s.pick(0, q, 20), 1);
}

TEST(Medusa, ReservedBanksTakeRoundRobinTurns)
{
    SchedulerParams p;
    p.medusaReservedBankMask = 0x3;
    MedusaScheduler s(p);
    Request r0 = makeReq(1, 0, 0, 0, /*bank=*/0);
    Request r1 = makeReq(2, 1, 1, 0, /*bank=*/1);
    std::vector<QueueEntryView> q{{&r0, true, false},
                                  {&r1, true, false}};
    // Both reserved banks hold a turn: lowest bank index goes first.
    EXPECT_EQ(s.pick(0, q, 10), 0);
    s.onService(r0, 10, 64);
    EXPECT_EQ(s.turnMask(0), 0x2u) << "bank 0 spent its turn";
    // Bank 0 is now out of turn; bank 1 wins even though bank 0's
    // request is older.
    EXPECT_EQ(s.pick(0, q, 11), 1);
    s.onService(r1, 11, 64);
    EXPECT_EQ(s.turnMask(0), 0x3u) << "round exhausted, mask resets";
}

TEST(Medusa, NonReservedServiceLeavesTurnsUntouched)
{
    SchedulerParams p;
    p.medusaReservedBankMask = 0x3;
    MedusaScheduler s(p);
    Request stream = makeReq(1, 0, 0, 0, /*bank=*/3);
    s.onService(stream, 10, 64);
    EXPECT_EQ(s.turnMask(0), 0x3u);
}

TEST(Medusa, OutOfTurnReservedStillBeatsNonReserved)
{
    SchedulerParams p;
    p.medusaReservedBankMask = 0x3;
    MedusaScheduler s(p);
    Request r0 = makeReq(1, 0, 0, 0, /*bank=*/0);
    s.onService(r0, 10, 64); // bank 0 spends its turn
    ASSERT_EQ(s.turnMask(0), 0x2u);
    // An out-of-turn reserved bank still outranks the non-reserved
    // tier (younger, no row hit, still wins).
    Request again = makeReq(2, 0, 12, 0, /*bank=*/0);
    Request stream = makeReq(3, 1, 2, /*row=*/5, /*bank=*/3);
    std::vector<QueueEntryView> q{{&again, true, false},
                                  {&stream, true, true}};
    EXPECT_EQ(s.pick(0, q, 20), 0);
}

TEST(Medusa, PerChannelTurnMasksAreIndependent)
{
    SchedulerParams p;
    p.medusaReservedBankMask = 0x3;
    MedusaScheduler s(p);
    Request r0 = makeReq(1, 0, 0, 0, /*bank=*/0, /*channel=*/0);
    s.onService(r0, 10, 64);
    EXPECT_EQ(s.turnMask(0), 0x2u);
    EXPECT_EQ(s.turnMask(1), 0x3u) << "other channel keeps full mask";
}

} // namespace
} // namespace pccs::dram
