/**
 * @file
 * Bit-exact equivalence harness for the multi-controller run modes.
 *
 * Mirrors tests/test_dram_equivalence.cc for MultiMcSystem:
 *
 *  1. Golden pinning: the lockstep loop's statistics on a frozen
 *     workload matrix were captured from the pre-refactor simulator
 *     (whose only loop was lockstep), so the rework is proven
 *     behavior-preserving in absolute terms for every mode, not
 *     merely self-consistent.
 *
 *  2. Cross-mode equivalence: lockstep, event-driven, and sharded
 *     runs of the same system must agree on every per-controller
 *     stat, every per-source counter, and the exact achieved-
 *     bandwidth doubles — across every registered scheduling policy,
 *     both mappings, and controller counts that exercise both sharded
 *     sub-paths (4 MCs: clean range partition -> whole-run
 *     independent shards; 3 MCs: source 21 straddles an MC boundary
 *     -> one-cycle epoch barriers; LineInterleaved: always epoch).
 *
 * Set PCCS_POLICY_FILTER=name[,name...] to restrict the policy axis —
 * CI uses this to fan each policy out to its own job.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "dram/multi_mc.hh"

namespace pccs::dram {
namespace {

/**
 * Policies under test: all registered names, unless the
 * PCCS_POLICY_FILTER environment variable names a comma-separated
 * subset (each token resolved through the registry, so aliases and
 * case-insensitive spellings work).
 */
std::vector<std::string>
testPolicies()
{
    static const std::vector<std::string> policies = [] {
        const char *filter = std::getenv("PCCS_POLICY_FILTER");
        if (filter == nullptr || *filter == '\0')
            return schedulerNames();
        std::vector<std::string> out;
        std::string tok;
        for (const char *c = filter;; ++c) {
            if (*c == ',' || *c == '\0') {
                if (!tok.empty())
                    out.push_back(schedulerFromName(tok).name);
                tok.clear();
                if (*c == '\0')
                    break;
            } else {
                tok += *c;
            }
        }
        return out;
    }();
    return policies;
}

/**
 * FROZEN: this exact construction produced the golden numbers below
 * from the pre-refactor lockstep simulator. Do not change it; add new
 * cases to the cross-mode matrix instead.
 *
 * Source ids are spread over the address space so that slices are
 * clean at 4 controllers but straddle boundaries at 3 (64/3 is not
 * integral), pinning both sharded sub-paths.
 */
std::unique_ptr<MultiMcSystem>
buildSystem(std::string_view policy, unsigned mcs, McMapping mapping,
            double scale, std::uint64_t seed, McRunMode mode,
            const SchedulerParams &sched_params = {})
{
    DramConfig cfg = table1Config();
    cfg.channels = 1;
    cfg.requestBufferEntries = 64;
    auto sys = std::make_unique<MultiMcSystem>(cfg, mcs, policy,
                                               mapping, sched_params,
                                               mode);

    struct Gen
    {
        unsigned source;
        double demand, locality, writeFrac;
        unsigned mlp;
    };
    const Gen gens[6] = {{0, 2.0, 0.97, 0.00, 16},
                         {9, 6.0, 0.90, 0.20, 32},
                         {21, 12.0, 0.60, 0.00, 64},
                         {30, 4.0, 0.85, 0.35, 48},
                         {45, 9.0, 0.75, 0.10, 32},
                         {58, 3.0, 0.95, 0.00, 24}};
    for (const Gen &g : gens) {
        TrafficParams p;
        p.source = g.source;
        p.demand = g.demand * scale;
        p.rowLocality = g.locality;
        p.writeFraction = g.writeFrac;
        p.mlp = g.mlp;
        p.seed = seed * 131 + g.source;
        sys->addGenerator(p);
    }
    return sys;
}

constexpr Cycles kWarmup = 3000;
constexpr Cycles kWindow = 20000;

void
runWindow(MultiMcSystem &sys)
{
    sys.run(kWarmup);
    sys.resetMeasurement();
    sys.run(kWindow);
}

const McMapping kMappings[] = {McMapping::LineInterleaved,
                               McMapping::RangePartitioned};

const McRunMode kModes[] = {McRunMode::Lockstep,
                            McRunMode::EventDriven,
                            McRunMode::Sharded};

/** Compare every observable of two runs of the same configuration. */
void
expectIdentical(MultiMcSystem &a, MultiMcSystem &b)
{
    ASSERT_EQ(a.numControllers(), b.numControllers());
    for (unsigned m = 0; m < a.numControllers(); ++m) {
        SCOPED_TRACE(testing::Message() << "mc " << m);
        const ControllerStats &sa = a.controller(m).stats();
        const ControllerStats &sb = b.controller(m).stats();
        EXPECT_EQ(sa.reads, sb.reads);
        EXPECT_EQ(sa.writes, sb.writes);
        EXPECT_EQ(sa.rowHits, sb.rowHits);
        EXPECT_EQ(sa.rowMisses, sb.rowMisses);
        EXPECT_EQ(sa.refreshes, sb.refreshes);
        EXPECT_EQ(sa.bytesTransferred, sb.bytesTransferred);
        EXPECT_EQ(sa.completed, sb.completed);
        EXPECT_EQ(sa.totalLatency, sb.totalLatency);
        for (unsigned s = 0; s < Scheduler::maxSources; ++s) {
            EXPECT_EQ(sa.bytesPerSource[s], sb.bytesPerSource[s])
                << "source " << s;
            EXPECT_EQ(sa.completedPerSource[s],
                      sb.completedPerSource[s])
                << "source " << s;
        }
        EXPECT_EQ(a.controller(m).pendingRequests(),
                  b.controller(m).pendingRequests());
        EXPECT_EQ(a.bytesServed(m), b.bytesServed(m));
    }
    EXPECT_EQ(a.now(), b.now());
    ASSERT_EQ(a.numGenerators(), b.numGenerators());
    for (std::size_t i = 0; i < a.numGenerators(); ++i) {
        SCOPED_TRACE(testing::Message() << "generator " << i);
        EXPECT_EQ(a.generator(i).issuedLines(),
                  b.generator(i).issuedLines());
        EXPECT_EQ(a.generator(i).completedLines(),
                  b.generator(i).completedLines());
        EXPECT_EQ(a.generator(i).outstanding(),
                  b.generator(i).outstanding());
        // Bandwidth is a float derived from identical integers over an
        // identical window: exact double equality is required.
        EXPECT_EQ(a.achievedBandwidth(i), b.achievedBandwidth(i));
    }
    EXPECT_EQ(a.effectiveBandwidthFraction(),
              b.effectiveBandwidthFraction());
    EXPECT_EQ(a.rowBufferHitRate(), b.rowBufferHitRate());
}

/**
 * Golden statistics captured from the pre-refactor lockstep simulator
 * (4 controllers x 1 channel, seed = 1, default SchedulerParams,
 * warmup 3000 + window 20000), summed over controllers. Any drift
 * here means the rework changed simulated behavior, not just its
 * speed.
 *
 * BLISS/PARBS/MEDUSA post-date that simulator; their rows were pinned
 * from this codebase's lockstep loop (the oracle the other modes are
 * proven against) when each policy landed.
 */
struct GoldenRow
{
    const char *policy;
    McMapping mapping;
    double scale;
    struct
    {
        std::uint64_t reads, writes, rowHits, rowMisses, refreshes,
            bytes, completed, totalLatency;
    } want;
};

// clang-format off
const GoldenRow kGolden[] = {
    {"FCFS", McMapping::LineInterleaved, 0.25,
     {1565u, 194u, 343u, 1416u, 4u, 112576u, 1756u, 147077u}},
    {"FCFS", McMapping::LineInterleaved, 2.50,
     {7007u, 917u, 3049u, 4875u, 4u, 507136u, 7925u, 3619450u}},
    {"FCFS", McMapping::RangePartitioned, 0.25,
     {1568u, 194u, 1243u, 519u, 4u, 112768u, 1759u, 100813u}},
    {"FCFS", McMapping::RangePartitioned, 2.50,
     {8947u, 847u, 7615u, 2179u, 4u, 626816u, 9796u, 2981464u}},
    {"FR-FCFS", McMapping::LineInterleaved, 0.25,
     {1565u, 194u, 352u, 1407u, 4u, 112576u, 1756u, 146043u}},
    {"FR-FCFS", McMapping::LineInterleaved, 2.50,
     {9115u, 1131u, 4522u, 5724u, 4u, 655744u, 10249u, 3953162u}},
    {"FR-FCFS", McMapping::RangePartitioned, 0.25,
     {1569u, 194u, 1249u, 514u, 4u, 112832u, 1760u, 100016u}},
    {"FR-FCFS", McMapping::RangePartitioned, 2.50,
     {10782u, 1097u, 9288u, 2591u, 4u, 760256u, 11879u, 2902507u}},
    {"ATLAS", McMapping::LineInterleaved, 0.25,
     {1565u, 194u, 350u, 1409u, 4u, 112576u, 1756u, 147174u}},
    {"ATLAS", McMapping::LineInterleaved, 2.50,
     {8200u, 1132u, 3949u, 5383u, 4u, 597248u, 9333u, 3617303u}},
    {"ATLAS", McMapping::RangePartitioned, 0.25,
     {1569u, 194u, 1246u, 517u, 4u, 112832u, 1760u, 101457u}},
    {"ATLAS", McMapping::RangePartitioned, 2.50,
     {9728u, 1200u, 8688u, 2240u, 4u, 699392u, 10927u, 2737111u}},
    {"TCM", McMapping::LineInterleaved, 0.25,
     {1565u, 194u, 352u, 1407u, 4u, 112576u, 1756u, 146043u}},
    {"TCM", McMapping::LineInterleaved, 2.50,
     {9115u, 1131u, 4522u, 5724u, 4u, 655744u, 10249u, 3953162u}},
    {"TCM", McMapping::RangePartitioned, 0.25,
     {1569u, 194u, 1249u, 514u, 4u, 112832u, 1760u, 100016u}},
    {"TCM", McMapping::RangePartitioned, 2.50,
     {10782u, 1097u, 9288u, 2591u, 4u, 760256u, 11879u, 2902507u}},
    {"SMS", McMapping::LineInterleaved, 0.25,
     {1565u, 194u, 352u, 1407u, 4u, 112576u, 1756u, 147279u}},
    {"SMS", McMapping::LineInterleaved, 2.50,
     {8931u, 1106u, 4402u, 5635u, 4u, 642368u, 10040u, 3957728u}},
    {"SMS", McMapping::RangePartitioned, 0.25,
     {1569u, 194u, 1249u, 514u, 4u, 112832u, 1760u, 99787u}},
    {"SMS", McMapping::RangePartitioned, 2.50,
     {10670u, 1067u, 9178u, 2559u, 4u, 751168u, 11728u, 2837031u}},
    {"BLISS", McMapping::LineInterleaved, 0.25,
     {1565u, 194u, 352u, 1407u, 4u, 112576u, 1756u, 146124u}},
    {"BLISS", McMapping::LineInterleaved, 2.50,
     {8839u, 1136u, 4274u, 5701u, 4u, 638400u, 9976u, 3906369u}},
    {"BLISS", McMapping::RangePartitioned, 0.25,
     {1569u, 194u, 1248u, 515u, 4u, 112832u, 1760u, 101069u}},
    {"BLISS", McMapping::RangePartitioned, 2.50,
     {10799u, 1099u, 9307u, 2591u, 4u, 761472u, 11895u, 2902473u}},
    {"PARBS", McMapping::LineInterleaved, 0.25,
     {1565u, 194u, 351u, 1408u, 4u, 112576u, 1756u, 147138u}},
    {"PARBS", McMapping::LineInterleaved, 2.50,
     {9009u, 1158u, 4560u, 5607u, 4u, 650688u, 10164u, 3850225u}},
    {"PARBS", McMapping::RangePartitioned, 0.25,
     {1569u, 194u, 1249u, 514u, 4u, 112832u, 1760u, 99705u}},
    {"PARBS", McMapping::RangePartitioned, 2.50,
     {10594u, 1122u, 9220u, 2496u, 4u, 749824u, 11715u, 2845209u}},
    {"MEDUSA", McMapping::LineInterleaved, 0.25,
     {1565u, 194u, 352u, 1407u, 4u, 112576u, 1756u, 145843u}},
    {"MEDUSA", McMapping::LineInterleaved, 2.50,
     {8461u, 1074u, 4081u, 5454u, 4u, 610240u, 9533u, 3926487u}},
    {"MEDUSA", McMapping::RangePartitioned, 0.25,
     {1569u, 194u, 1249u, 514u, 4u, 112832u, 1760u, 100460u}},
    {"MEDUSA", McMapping::RangePartitioned, 2.50,
     {10075u, 1052u, 8762u, 2365u, 4u, 712128u, 11130u, 2856703u}},
};
// clang-format on

class GoldenPinning : public ::testing::TestWithParam<McRunMode>
{
};

TEST_P(GoldenPinning, MatchesPreRefactorStats)
{
    const auto selected = [](const char *policy) {
        for (const std::string &name : testPolicies())
            if (name == policy)
                return true;
        return false;
    };
    for (const GoldenRow &row : kGolden) {
        if (!selected(row.policy))
            continue;
        auto sys = buildSystem(row.policy, 4, row.mapping, row.scale,
                               1, GetParam());
        runWindow(*sys);
        std::uint64_t reads = 0, writes = 0, hits = 0, misses = 0,
                      refreshes = 0, bytes = 0, completed = 0,
                      latency = 0;
        for (unsigned m = 0; m < sys->numControllers(); ++m) {
            const ControllerStats &st = sys->controller(m).stats();
            reads += st.reads;
            writes += st.writes;
            hits += st.rowHits;
            misses += st.rowMisses;
            refreshes += st.refreshes;
            bytes += st.bytesTransferred;
            completed += st.completed;
            latency += st.totalLatency;
        }
        SCOPED_TRACE(testing::Message()
                     << row.policy << " "
                     << mcMappingName(row.mapping) << " scale "
                     << row.scale);
        EXPECT_EQ(reads, row.want.reads);
        EXPECT_EQ(writes, row.want.writes);
        EXPECT_EQ(hits, row.want.rowHits);
        EXPECT_EQ(misses, row.want.rowMisses);
        EXPECT_EQ(refreshes, row.want.refreshes);
        EXPECT_EQ(bytes, row.want.bytes);
        EXPECT_EQ(completed, row.want.completed);
        EXPECT_EQ(latency, row.want.totalLatency);
    }
}

INSTANTIATE_TEST_SUITE_P(AllModes, GoldenPinning,
                         ::testing::ValuesIn(kModes),
                         [](const auto &pinfo) {
                             switch (pinfo.param) {
                               case McRunMode::Lockstep:
                                 return "Lockstep";
                               case McRunMode::EventDriven:
                                 return "EventDriven";
                               case McRunMode::Sharded:
                                 return "Sharded";
                             }
                             return "Unknown";
                         });

TEST(MultiMcEquivalence, CrossModeMatrix)
{
    for (const std::string &policy : testPolicies()) {
        for (McMapping mapping : kMappings) {
            for (unsigned mcs : {2u, 3u, 4u}) {
                for (double scale : {0.25, 2.5}) {
                    for (std::uint64_t seed : {1u, 2u}) {
                        SCOPED_TRACE(testing::Message()
                                     << policy << " "
                                     << mcMappingName(mapping)
                                     << " mcs=" << mcs << " scale="
                                     << scale << " seed=" << seed);
                        auto ref = buildSystem(policy, mcs, mapping,
                                               scale, seed,
                                               McRunMode::Lockstep);
                        runWindow(*ref);
                        for (McRunMode mode :
                             {McRunMode::EventDriven,
                              McRunMode::Sharded}) {
                            SCOPED_TRACE(mcRunModeName(mode));
                            auto fast = buildSystem(policy, mcs,
                                                    mapping, scale,
                                                    seed, mode);
                            runWindow(*fast);
                            expectIdentical(*ref, *fast);
                        }
                    }
                }
            }
        }
    }
}

TEST(MultiMcEquivalence, SchedulerTickEventsUnderQuietTraffic)
{
    // Small quanta + low demand: ATLAS quantum folds, TCM shuffle
    // boundaries, and BLISS blacklist clears land inside long quiet
    // stretches; the jumping modes must wake on the exact boundary
    // cycles per controller.
    SchedulerParams sp;
    sp.quantum = 1700;
    sp.tcmShuffleInterval = 430;
    sp.blissClearInterval = 790;
    for (const char *policy : {"ATLAS", "TCM", "BLISS"}) {
        for (McMapping mapping : kMappings) {
            for (double scale : {0.05, 1.0}) {
                SCOPED_TRACE(testing::Message()
                             << policy << " "
                             << mcMappingName(mapping) << " scale "
                             << scale);
                auto ref = buildSystem(policy, 4, mapping, scale, 3,
                                       McRunMode::Lockstep, sp);
                runWindow(*ref);
                for (McRunMode mode :
                     {McRunMode::EventDriven, McRunMode::Sharded}) {
                    SCOPED_TRACE(mcRunModeName(mode));
                    auto fast = buildSystem(policy, 4, mapping, scale,
                                            3, mode, sp);
                    runWindow(*fast);
                    expectIdentical(*ref, *fast);
                }
            }
        }
    }
}

TEST(MultiMcEquivalence, ModeSwitchMidRun)
{
    // A system may flip modes between run() calls; state carried
    // across the switch (open rows, tokens, inflight, refresh phase,
    // deferred-delivery bookkeeping) must line up bit-for-bit with a
    // single-mode run.
    for (McMapping mapping : kMappings) {
        SCOPED_TRACE(mcMappingName(mapping));
        auto ref = buildSystem("FR-FCFS", 4, mapping, 1.0,
                               5, McRunMode::Lockstep);
        auto mixed = buildSystem("FR-FCFS", 4, mapping,
                                 1.0, 5, McRunMode::EventDriven);
        ref->run(9000);
        mixed->run(3000);
        mixed->setRunMode(McRunMode::Sharded);
        mixed->run(3000);
        mixed->setRunMode(McRunMode::Lockstep);
        mixed->run(1500);
        mixed->setRunMode(McRunMode::EventDriven);
        mixed->run(1500);
        expectIdentical(*ref, *mixed);
    }
}

} // namespace
} // namespace pccs::dram
