/**
 * @file
 * Tests for the multi-memory-controller subsystem (the Section 5
 * extension): address routing, capacity aggregation, and the
 * isolation property of range-partitioned mappings.
 */

#include <gtest/gtest.h>

#include "dram/multi_mc.hh"

namespace pccs::dram {
namespace {

DramConfig
halfConfig()
{
    // Half of the Table 1 system per controller: 2 channels each.
    DramConfig cfg = table1Config();
    cfg.channels = 2;
    cfg.requestBufferEntries = 128;
    return cfg;
}

TEST(MultiMcRouting, InterleavedRotatesLines)
{
    MultiMcSystem sys(halfConfig(), 2, "FR-FCFS",
                      McMapping::LineInterleaved);
    const unsigned line = halfConfig().lineBytes;
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(sys.route(Addr{i} * line), i % 2);
}

TEST(MultiMcRouting, PartitionedSplitsRanges)
{
    MultiMcSystem sys(halfConfig(), 2, "FR-FCFS",
                      McMapping::RangePartitioned);
    const Addr half = sys.addressSpan() / 2;
    EXPECT_EQ(sys.route(0), 0u);
    EXPECT_EQ(sys.route(half - 64), 0u);
    EXPECT_EQ(sys.route(half), 1u);
    EXPECT_EQ(sys.route(sys.addressSpan() - 64), 1u);
}

TEST(MultiMcRouting, LocalAddressesStayInLocalSpan)
{
    for (auto mapping : {McMapping::LineInterleaved,
                         McMapping::RangePartitioned}) {
        MultiMcSystem sys(halfConfig(), 4, "FR-FCFS",
                          mapping);
        const Addr local_span = sys.addressSpan() / 4;
        for (Addr a = 0; a < sys.addressSpan();
             a += sys.addressSpan() / 97) {
            EXPECT_LT(sys.localAddress(a), local_span)
                << mcMappingName(mapping);
        }
    }
}

TEST(MultiMcRouting, InterleavedTranslationIsInjective)
{
    MultiMcSystem sys(halfConfig(), 2, "FR-FCFS",
                      McMapping::LineInterleaved);
    // Distinct global lines must map to distinct (mc, local) pairs.
    const unsigned line = halfConfig().lineBytes;
    std::set<std::pair<unsigned, Addr>> seen;
    for (unsigned i = 0; i < 1000; ++i) {
        const Addr a = Addr{i} * line;
        const auto key =
            std::make_pair(sys.route(a), sys.localAddress(a));
        EXPECT_TRUE(seen.insert(key).second) << "line " << i;
    }
}

TEST(MultiMc, AggregateSpanAndNames)
{
    MultiMcSystem sys(halfConfig(), 2, "FR-FCFS",
                      McMapping::LineInterleaved);
    EXPECT_EQ(sys.numControllers(), 2u);
    EXPECT_EQ(sys.addressSpan(),
              2 * sys.controller(0).mapper().addressSpan());
    EXPECT_STREQ(mcMappingName(McMapping::LineInterleaved),
                 "line-interleaved");
    EXPECT_STREQ(mcMappingName(McMapping::RangePartitioned),
                 "range-partitioned");
}

TEST(MultiMc, InterleavedAggregatesBandwidth)
{
    // One streaming core should draw from both controllers and exceed
    // a single controller's capacity (2 channels = 51.2 GB/s).
    MultiMcSystem sys(halfConfig(), 2, "FR-FCFS",
                      McMapping::LineInterleaved);
    TrafficParams p;
    p.source = 0;
    p.demand = 80.0;
    p.mlp = 128;
    sys.addGenerator(p);
    sys.run(15000);
    sys.resetMeasurement();
    sys.run(60000);
    EXPECT_GT(sys.achievedBandwidth(0), 55.0);
    // Both controllers served a comparable share.
    const double a = static_cast<double>(sys.bytesServed(0));
    const double b = static_cast<double>(sys.bytesServed(1));
    EXPECT_NEAR(a / (a + b), 0.5, 0.05);
}

TEST(MultiMc, PartitionedConfinesASource)
{
    // A source whose private region lies in MC0's range must never
    // touch MC1. (Source regions are address-space slices; source 0's
    // slice is at the bottom.)
    MultiMcSystem sys(halfConfig(), 2, "FR-FCFS",
                      McMapping::RangePartitioned);
    TrafficParams p;
    p.source = 0;
    p.demand = 40.0;
    sys.addGenerator(p);
    sys.run(30000);
    EXPECT_GT(sys.bytesServed(0) + sys.controller(0).pendingRequests(),
              0u);
    EXPECT_EQ(sys.bytesServed(1), 0u);
}

TEST(MultiMc, PartitionedIsolatesInterference)
{
    // Two memory-hungry sources in different partitions interfere far
    // less than under interleaving -- the paper's point that the model
    // must consider the address mapping on multi-MC SoCs.
    auto victim_speed = [](McMapping mapping) {
        // Source 0 -> bottom partition; source 40 -> top partition
        // (64 source slices, so slice 40 is in the upper half).
        auto solo = [&](bool with_aggressor) {
            MultiMcSystem sys(halfConfig(), 2, "FR-FCFS",
                              mapping);
            TrafficParams v;
            v.source = 0;
            v.demand = 40.0;
            v.seed = 3;
            sys.addGenerator(v);
            if (with_aggressor) {
                TrafficParams a;
                a.source = 40;
                a.demand = 45.0;
                a.seed = 7;
                sys.addGenerator(a);
            }
            sys.run(15000);
            sys.resetMeasurement();
            sys.run(50000);
            return static_cast<double>(
                sys.generator(0).completedLines());
        };
        return solo(true) / solo(false);
    };

    const double partitioned =
        victim_speed(McMapping::RangePartitioned);
    const double interleaved =
        victim_speed(McMapping::LineInterleaved);
    EXPECT_GT(partitioned, 0.97) << "different partitions: no sharing";
    EXPECT_GT(partitioned, interleaved - 0.02);
}

TEST(MultiMc, PartitionedDisjointSlicesZeroMutualSlowdown)
{
    // The paper's isolation claim, taken literally: two sources whose
    // private regions live in disjoint partitions share *nothing* —
    // not a queue, not a bank, not a data bus — so the slowdown is
    // exactly zero, not merely small. Every per-source observable
    // must be bit-identical between the solo and co-run simulations,
    // in every run mode (this is also what licenses the whole-run
    // independent-shard parallel path).
    for (McRunMode mode : {McRunMode::Lockstep, McRunMode::EventDriven,
                           McRunMode::Sharded}) {
        SCOPED_TRACE(mcRunModeName(mode));
        auto run = [&](bool with_other, unsigned keep_source,
                       std::uint64_t &issued, std::uint64_t &completed,
                       GBps &bw) {
            MultiMcSystem sys(halfConfig(), 2, "FR-FCFS",
                              McMapping::RangePartitioned,
                              SchedulerParams{}, mode);
            TrafficParams v;
            v.source = 0;
            v.demand = 40.0;
            v.rowLocality = 0.8;
            v.seed = 3;
            TrafficParams a;
            a.source = 40;
            a.demand = 45.0;
            a.rowLocality = 0.7;
            a.seed = 7;
            std::size_t keep = 0;
            if (keep_source == 0) {
                keep = sys.addGenerator(v);
                if (with_other)
                    sys.addGenerator(a);
            } else {
                if (with_other)
                    sys.addGenerator(v);
                keep = sys.addGenerator(a);
            }
            sys.run(15000);
            sys.resetMeasurement();
            sys.run(50000);
            issued = sys.generator(keep).issuedLines();
            completed = sys.generator(keep).completedLines();
            bw = sys.achievedBandwidth(keep);
        };
        for (unsigned source : {0u, 40u}) {
            SCOPED_TRACE(testing::Message() << "source " << source);
            std::uint64_t solo_issued = 0, solo_completed = 0;
            std::uint64_t corun_issued = 0, corun_completed = 0;
            GBps solo_bw = 0.0, corun_bw = 0.0;
            run(false, source, solo_issued, solo_completed, solo_bw);
            run(true, source, corun_issued, corun_completed, corun_bw);
            EXPECT_EQ(corun_issued, solo_issued);
            EXPECT_EQ(corun_completed, solo_completed);
            EXPECT_EQ(corun_bw, solo_bw);
            EXPECT_GT(solo_completed, 0u);
        }
    }
}

TEST(MultiMc, InterleavedAggregateBandwidthScalesWithMcs)
{
    // LineInterleaved spreads every source over all controllers, so
    // the deliverable aggregate tracks num_mcs x per-MC capacity: four
    // saturating cores on 4 MCs (102.4 GB/s nominal) must clear twice
    // a single 2-channel controller's 51.2 GB/s ceiling, and the load
    // must spread near-evenly across the controllers.
    MultiMcSystem sys(halfConfig(), 4, "FR-FCFS",
                      McMapping::LineInterleaved);
    for (unsigned s = 0; s < 4; ++s) {
        TrafficParams p;
        p.source = s * 16;
        p.demand = 60.0;
        p.mlp = 128;
        p.seed = 11 + s;
        sys.addGenerator(p);
    }
    sys.run(15000);
    sys.resetMeasurement();
    sys.run(60000);
    GBps aggregate = 0.0;
    for (std::size_t i = 0; i < sys.numGenerators(); ++i)
        aggregate += sys.achievedBandwidth(i);
    EXPECT_GT(aggregate, 2 * 51.2);
    std::uint64_t total = 0;
    for (unsigned m = 0; m < 4; ++m)
        total += sys.bytesServed(m);
    for (unsigned m = 0; m < 4; ++m) {
        EXPECT_NEAR(static_cast<double>(sys.bytesServed(m)) /
                        static_cast<double>(total),
                    0.25, 0.05)
            << "mc " << m;
    }
}

TEST(MultiMc, SingleControllerDegeneratesToPlainSystem)
{
    MultiMcSystem sys(table1Config(), 1, "FR-FCFS",
                      McMapping::LineInterleaved);
    TrafficParams p;
    p.source = 0;
    p.demand = 30.0;
    sys.addGenerator(p);
    sys.run(15000);
    sys.resetMeasurement();
    sys.run(50000);
    EXPECT_NEAR(sys.achievedBandwidth(0), 30.0, 2.0);
    EXPECT_GT(sys.rowBufferHitRate(), 0.8);
}

TEST(MultiMcDeath, ZeroControllersPanics)
{
    EXPECT_DEATH(MultiMcSystem(halfConfig(), 0, "FR-FCFS",
                               McMapping::LineInterleaved),
                 "at least one");
}

} // namespace
} // namespace pccs::dram
