/**
 * @file
 * Targeted tests for the event-driven core's next-event computation:
 * coinciding events (completion + refresh deadline + token-accrual
 * crossings on the same cycle) must resolve in per-cycle-loop order
 * across skip boundaries, run() chunking must not be observable, and
 * nextEventCycle() must never place a wake past real work.
 */

#include <gtest/gtest.h>

#include <memory>

#include "dram/system.hh"

namespace pccs::dram {
namespace {

/** A small system whose refreshes are dense enough to collide with
 *  completions and token crossings many times per window. */
std::unique_ptr<DramSystem>
buildDense(std::string_view policy, double demand, DramRunMode mode)
{
    DramConfig cfg = table1Config();
    cfg.channels = 2;
    cfg.requestBufferEntries = 32;
    cfg.timing.tREFI = 200; // every 200 cycles (vs 12480 stock)
    cfg.timing.tRFC = 40;
    auto sys = std::make_unique<DramSystem>(cfg, policy,
                                            SchedulerParams{}, mode);
    for (unsigned s = 0; s < 3; ++s) {
        TrafficParams p;
        p.source = s;
        p.demand = demand * (1.0 + 0.5 * s);
        p.rowLocality = 0.9 - 0.2 * s;
        p.writeFraction = 0.15 * s;
        p.mlp = 8;
        p.seed = 40 + s;
        sys->addGenerator(p);
    }
    return sys;
}

void
expectSameStats(DramSystem &a, DramSystem &b)
{
    const ControllerStats &sa = a.controller().stats();
    const ControllerStats &sb = b.controller().stats();
    EXPECT_EQ(sa.reads, sb.reads);
    EXPECT_EQ(sa.writes, sb.writes);
    EXPECT_EQ(sa.rowHits, sb.rowHits);
    EXPECT_EQ(sa.rowMisses, sb.rowMisses);
    EXPECT_EQ(sa.refreshes, sb.refreshes);
    EXPECT_EQ(sa.bytesTransferred, sb.bytesTransferred);
    EXPECT_EQ(sa.completed, sb.completed);
    EXPECT_EQ(sa.totalLatency, sb.totalLatency);
    EXPECT_EQ(a.now(), b.now());
    EXPECT_EQ(a.controller().pendingRequests(),
              b.controller().pendingRequests());
}

TEST(DramEvents, CoincidingEventsResolveInCycleOrder)
{
    // With tREFI = 200 and ~70-cycle loaded latencies, refresh
    // deadlines, inflight completions, and token crossings repeatedly
    // land on the same cycle; the skipping core must replay exactly
    // the per-cycle order (controller: scheduler tick, completions,
    // refresh-before-schedule per channel; then generators).
    for (const std::string &policy : schedulerNames()) {
        for (double demand : {0.5, 4.0, 25.0}) {
            SCOPED_TRACE(testing::Message()
                         << policy << " demand " << demand);
            auto ref =
                buildDense(policy, demand, DramRunMode::Reference);
            auto evt =
                buildDense(policy, demand, DramRunMode::EventDriven);
            ref->run(15000);
            evt->run(15000);
            expectSameStats(*ref, *evt);
            EXPECT_GT(ref->controller().stats().refreshes, 50u);
        }
    }
}

TEST(DramEvents, RunChunkingIsUnobservable)
{
    // run(n) boundaries clamp a jump but change no state: the event
    // core called 15000 times with run(1), ~2143 times with run(7),
    // and once with run(15000) must agree bit-for-bit.
    auto whole =
        buildDense("FR-FCFS", 2.0, DramRunMode::EventDriven);
    auto by7 =
        buildDense("FR-FCFS", 2.0, DramRunMode::EventDriven);
    auto by1 =
        buildDense("FR-FCFS", 2.0, DramRunMode::EventDriven);
    whole->run(15000);
    for (int i = 0; i < 15000 / 7; ++i)
        by7->run(7);
    by7->run(15000 % 7);
    for (int i = 0; i < 15000; ++i)
        by1->run(1);
    expectSameStats(*whole, *by7);
    expectSameStats(*whole, *by1);
}

TEST(DramEvents, IdleControllerHasNoEvents)
{
    DramConfig cfg = table1Config();
    MemoryController mc(cfg, makeScheduler("FR-FCFS"));
    EXPECT_FALSE(mc.tick(0));
    // No queued requests, nothing inflight, no scheduler tick events:
    // a fully idle controller never needs to wake.
    EXPECT_EQ(mc.nextEventCycle(0), kNoEvent);
    EXPECT_EQ(mc.nextEventCycle(12345), kNoEvent);
}

TEST(DramEvents, SingleRequestWakesThroughActCasCompletion)
{
    // Walk one request through ACT -> CAS -> completion using only the
    // controller's own next-event hints, and verify each hop is both
    // productive (the woken cycle is active) and tight against the
    // DDR timing parameters.
    DramConfig cfg = table1Config();
    MemoryController mc(cfg, makeScheduler("FR-FCFS"));
    ASSERT_TRUE(mc.enqueue(0, 0x40, false, 0));
    const DecodedAddr loc = mc.mapper().decode(0x40);

    EXPECT_TRUE(mc.tick(0)); // ACT issues immediately
    EXPECT_EQ(mc.pendingRowHitMask(loc.channel), 1u << loc.bank);

    const Cycles cas_at = mc.nextEventCycle(0);
    EXPECT_EQ(cas_at, cfg.timing.tRCD); // CAS legal after tRCD
    for (Cycles c = 1; c < cas_at; ++c)
        EXPECT_FALSE(mc.tick(c)) << "cycle " << c;
    EXPECT_TRUE(mc.tick(cas_at));
    EXPECT_EQ(mc.pendingRowHitMask(loc.channel), 0u);

    const Cycles done_at = mc.nextEventCycle(cas_at);
    EXPECT_EQ(done_at, cas_at + cfg.timing.tCL + cfg.timing.tBURST);
    for (Cycles c = cas_at + 1; c < done_at; ++c)
        EXPECT_FALSE(mc.tick(c)) << "cycle " << c;
    EXPECT_TRUE(mc.tick(done_at)); // completion drains
    EXPECT_EQ(mc.stats().completed, 1u);
    EXPECT_EQ(mc.pendingRequests(), 0u);
    EXPECT_EQ(mc.nextEventCycle(done_at), kNoEvent);
}

TEST(DramEvents, LowDemandTokenAccrualMatchesReference)
{
    // A demand of ~1 line per ~500 cycles: the event core sleeps
    // through long token-accrual stretches and must neither issue a
    // line late (skipped crossing) nor drift the bucket's float value
    // (the accrual is replayed as identical capped per-cycle adds).
    for (double demand : {0.35, 1.0, 3.3}) {
        SCOPED_TRACE(testing::Message() << "demand " << demand);
        DramConfig cfg = table1Config();
        auto make = [&](DramRunMode mode) {
            auto sys = std::make_unique<DramSystem>(
                cfg, "FR-FCFS", SchedulerParams{}, mode);
            TrafficParams p;
            p.source = 0;
            p.demand = demand;
            p.rowLocality = 0.95;
            p.mlp = 4;
            p.seed = 99;
            sys->addGenerator(p);
            return sys;
        };
        auto ref = make(DramRunMode::Reference);
        auto evt = make(DramRunMode::EventDriven);
        ref->run(100000);
        evt->run(100000);
        expectSameStats(*ref, *evt);
        EXPECT_EQ(ref->generator(0).issuedLines(),
                  evt->generator(0).issuedLines());
        EXPECT_GT(evt->generator(0).issuedLines(), 0u);
    }
}

} // namespace
} // namespace pccs::dram
