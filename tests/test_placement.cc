/**
 * @file
 * Tests for the kernel-to-PU placement optimizer (the Figure 7
 * workflow as a library API).
 */

#include <gtest/gtest.h>

#include "pccs/builder.hh"
#include "pccs/placement.hh"
#include "workloads/nn.hh"
#include "workloads/rodinia.hh"

namespace pccs::model {
namespace {

class PlacementTest : public ::testing::Test
{
  protected:
    PlacementTest() : sim(soc::xavierLike())
    {
        for (std::size_t p = 0; p < sim.config().pus.size(); ++p)
            owned.push_back(
                std::make_unique<PccsModel>(buildModel(sim, p)));
        for (const auto &m : owned)
            models.push_back(m.get());
    }

    /** A Rodinia task runnable on CPU or GPU, not on the DLA. */
    PlacementTask
    rodiniaTask(const std::string &bench)
    {
        PlacementTask t;
        t.name = bench;
        for (const auto &pu : sim.config().pus) {
            if (pu.kind == soc::PuKind::Dla) {
                t.options.push_back({}); // infeasible on the DLA
            } else {
                t.options.push_back(soc::PhasedWorkload::single(
                    workloads::rodiniaKernel(bench, pu.kind)));
            }
        }
        return t;
    }

    /** An NN task runnable only on the DLA. */
    PlacementTask
    nnTask(const std::string &model_name)
    {
        PlacementTask t;
        t.name = model_name;
        for (const auto &pu : sim.config().pus) {
            if (pu.kind == soc::PuKind::Dla)
                t.options.push_back(workloads::dlaWorkload(model_name));
            else
                t.options.push_back({});
        }
        return t;
    }

    soc::SocSimulator sim;
    std::vector<std::unique_ptr<PccsModel>> owned;
    std::vector<const SlowdownPredictor *> models;
};

TEST_F(PlacementTest, EnumeratesAllFeasibleAssignments)
{
    // Two CPU/GPU-capable tasks on a 3-PU SoC: 2 orderings over
    // {CPU, GPU} are feasible (the DLA can run neither task), but the
    // enumeration also considers assignments using the DLA slot for
    // neither task -- every returned choice must be feasible.
    const auto choices = enumeratePlacements(
        sim, models,
        {rodiniaTask("streamcluster"), rodiniaTask("srad")});
    ASSERT_FALSE(choices.empty());
    for (const auto &c : choices) {
        ASSERT_EQ(c.puAssignment.size(), 2u);
        EXPECT_NE(c.puAssignment[0], c.puAssignment[1]);
        for (std::size_t t = 0; t < 2; ++t) {
            EXPECT_NE(sim.config().pus[c.puAssignment[t]].kind,
                      soc::PuKind::Dla);
        }
    }
}

TEST_F(PlacementTest, ChoicesSortedByScore)
{
    const auto choices = enumeratePlacements(
        sim, models,
        {rodiniaTask("streamcluster"), rodiniaTask("srad")});
    for (std::size_t i = 1; i < choices.size(); ++i)
        EXPECT_LE(choices[i].score, choices[i - 1].score + 1e-12);
}

TEST_F(PlacementTest, NnTaskPinsToTheDla)
{
    const auto best = bestPlacement(
        sim, models,
        {rodiniaTask("streamcluster"), rodiniaTask("srad"),
         nnTask("Resnet-50")});
    ASSERT_EQ(best.puAssignment.size(), 3u);
    EXPECT_EQ(sim.config().pus[best.puAssignment[2]].kind,
              soc::PuKind::Dla);
}

TEST_F(PlacementTest, ScoresAreConsistentWithReportedSpeeds)
{
    const auto choices = enumeratePlacements(
        sim, models,
        {rodiniaTask("streamcluster"), rodiniaTask("srad")});
    for (const auto &c : choices) {
        double worst = 1e300;
        for (double rs : c.relativeSpeed)
            worst = std::min(worst, rs);
        EXPECT_NEAR(c.score, worst, 1e-9);
    }
}

TEST_F(PlacementTest, MakespanObjectivePrefersShorterRuns)
{
    const auto choices = enumeratePlacements(
        sim, models,
        {rodiniaTask("streamcluster"), rodiniaTask("srad")},
        PlacementObjective::MinMakespan);
    ASSERT_GE(choices.size(), 2u);
    auto makespan = [](const PlacementChoice &c) {
        double m = 0.0;
        for (double s : c.corunSeconds)
            m = std::max(m, s);
        return m;
    };
    EXPECT_LE(makespan(choices[0]), makespan(choices[1]) + 1e-12);
}

TEST_F(PlacementTest, BestPlacementBeatsWorstOnTheBoard)
{
    // The point of the optimizer: the PCCS-chosen placement must be at
    // least as good as the PCCS-rejected one when actually co-run.
    const auto choices = enumeratePlacements(
        sim, models,
        {rodiniaTask("streamcluster"), rodiniaTask("srad")});
    ASSERT_GE(choices.size(), 2u);
    auto measure = [&](const PlacementChoice &c) {
        std::vector<soc::Placement> placements;
        placements.push_back(
            {c.puAssignment[0],
             soc::PhasedWorkload::single(workloads::rodiniaKernel(
                 "streamcluster",
                 sim.config().pus[c.puAssignment[0]].kind))});
        placements.push_back(
            {c.puAssignment[1],
             soc::PhasedWorkload::single(workloads::rodiniaKernel(
                 "srad", sim.config().pus[c.puAssignment[1]].kind))});
        const auto out =
            sim.run(placements, soc::StopPolicy::FirstFinish);
        return std::min(out.placements[0].relativeSpeed,
                        out.placements[1].relativeSpeed);
    };
    EXPECT_GE(measure(choices.front()), measure(choices.back()) - 2.0);
}

TEST_F(PlacementTest, InfeasibleEverywhereYieldsEmpty)
{
    PlacementTask impossible;
    impossible.name = "nowhere";
    impossible.options.resize(sim.config().pus.size());
    const auto choices =
        enumeratePlacements(sim, models, {impossible});
    EXPECT_TRUE(choices.empty());
}

TEST_F(PlacementTest, BestPlacementFatalWhenInfeasible)
{
    PlacementTask impossible;
    impossible.name = "nowhere";
    impossible.options.resize(sim.config().pus.size());
    EXPECT_EXIT(bestPlacement(sim, models, {impossible}),
                ::testing::ExitedWithCode(1), "no feasible");
}

TEST_F(PlacementTest, TooManyTasksPanic)
{
    std::vector<PlacementTask> four(4, rodiniaTask("srad"));
    EXPECT_DEATH(enumeratePlacements(sim, models, four), "task count");
}

TEST_F(PlacementTest, WrongOptionCountPanics)
{
    PlacementTask t = rodiniaTask("srad");
    t.options.pop_back();
    EXPECT_DEATH(enumeratePlacements(sim, models, {t}), "option slot");
}

} // namespace
} // namespace pccs::model
