/**
 * @file
 * Unit and property tests for DRAM address decoding.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "dram/address_map.hh"

namespace pccs::dram {
namespace {

TEST(AddressMap, ChannelInterleavingOfConsecutiveLines)
{
    const DramConfig cfg = table1Config();
    const AddressMapper map(cfg);
    // Consecutive cache lines must rotate across all channels (the
    // channel-interleaving scheme of Section 2.1).
    for (unsigned i = 0; i < 16; ++i) {
        const DecodedAddr loc = map.decode(Addr{i} * cfg.lineBytes);
        EXPECT_EQ(loc.channel, i % cfg.channels);
    }
}

TEST(AddressMap, LineOffsetIgnored)
{
    const DramConfig cfg = table1Config();
    const AddressMapper map(cfg);
    const DecodedAddr a = map.decode(0x1000);
    const DecodedAddr b = map.decode(0x1000 + cfg.lineBytes - 1);
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.column, b.column);
}

TEST(AddressMap, SequentialLinesFillRowBeforeSwitching)
{
    const DramConfig cfg = table1Config();
    const AddressMapper map(cfg);
    // Walking one channel's lines (stride = channels * lineBytes),
    // the row must stay constant for linesPerRow() accesses.
    const DecodedAddr first = map.decode(0);
    for (unsigned i = 1; i < cfg.linesPerRow(); ++i) {
        const DecodedAddr loc =
            map.decode(Addr{i} * cfg.lineBytes * cfg.channels);
        EXPECT_EQ(loc.row, first.row) << "line " << i;
        EXPECT_EQ(loc.channel, first.channel);
    }
}

TEST(AddressMap, XorHashSpreadsConflictingRows)
{
    DramConfig cfg = table1Config();
    cfg.xorBankHash = true;
    const AddressMapper map(cfg);
    // Addresses that differ only in the low row bits should land in
    // different banks thanks to the XOR hash.
    std::set<unsigned> banks;
    const Addr row_stride = Addr{cfg.lineBytes} * cfg.channels *
                            cfg.linesPerRow() * cfg.banksPerChannel;
    for (unsigned r = 0; r < cfg.banksPerChannel; ++r)
        banks.insert(map.decode(r * row_stride).bank);
    EXPECT_EQ(banks.size(), cfg.banksPerChannel);
}

TEST(AddressMap, NoHashKeepsBankStable)
{
    DramConfig cfg = table1Config();
    cfg.xorBankHash = false;
    const AddressMapper map(cfg);
    const Addr row_stride = Addr{cfg.lineBytes} * cfg.channels *
                            cfg.linesPerRow() * cfg.banksPerChannel;
    const unsigned bank0 = map.decode(0).bank;
    for (unsigned r = 1; r < 8; ++r)
        EXPECT_EQ(map.decode(r * row_stride).bank, bank0);
}

TEST(AddressMap, AddressSpanCoversGeometry)
{
    const DramConfig cfg = table1Config();
    const AddressMapper map(cfg);
    const Addr expected = Addr{cfg.lineBytes} * cfg.channels *
                          cfg.linesPerRow() * cfg.banksPerChannel *
                          cfg.rowsPerBank;
    EXPECT_EQ(map.addressSpan(), expected);
}

/** decode/encode must be inverse bijections over random addresses. */
class AddressRoundTrip : public ::testing::TestWithParam<bool>
{
};

TEST_P(AddressRoundTrip, DecodeEncodeIdentity)
{
    DramConfig cfg = table1Config();
    cfg.xorBankHash = GetParam();
    const AddressMapper map(cfg);
    Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = (rng.next() % map.addressSpan()) &
                       ~Addr{cfg.lineBytes - 1};
        EXPECT_EQ(map.encode(map.decode(a)), a);
    }
}

TEST_P(AddressRoundTrip, FieldsInRange)
{
    DramConfig cfg = table1Config();
    cfg.xorBankHash = GetParam();
    const AddressMapper map(cfg);
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.next() % map.addressSpan();
        const DecodedAddr loc = map.decode(a);
        EXPECT_LT(loc.channel, cfg.channels);
        EXPECT_LT(loc.bank, cfg.banksPerChannel);
        EXPECT_LT(loc.column, cfg.linesPerRow());
        EXPECT_LT(loc.row, cfg.rowsPerBank);
    }
}

INSTANTIATE_TEST_SUITE_P(HashModes, AddressRoundTrip,
                         ::testing::Bool());

TEST(AddressMapDeath, NonPowerOfTwoChannelsPanics)
{
    DramConfig cfg = table1Config();
    cfg.channels = 3;
    EXPECT_DEATH(AddressMapper{cfg}, "power of two");
}

} // namespace
} // namespace pccs::dram
