/**
 * @file
 * Tests for the epoch-driven co-run SoC simulator.
 */

#include <gtest/gtest.h>

#include "calib/calibrator.hh"
#include "soc/simulator.hh"

namespace pccs::soc {
namespace {

class SimulatorTest : public ::testing::Test
{
  protected:
    SocSimulator sim{xavierLike()};

    KernelProfile
    kernel(PuKind kind, GBps target, double bytes = 1e9)
    {
        KernelProfile k = calib::makeCalibrator(
            sim.model(), sim.config().pu(kind), target);
        k.workBytes = bytes;
        return k;
    }

    std::size_t
    idx(PuKind kind)
    {
        return static_cast<std::size_t>(sim.config().puIndex(kind));
    }
};

TEST_F(SimulatorTest, SinglePlacementRunsAtFullSpeed)
{
    Placement p{idx(PuKind::Gpu),
                PhasedWorkload::single(kernel(PuKind::Gpu, 80.0))};
    const CorunOutcome out = sim.run({p});
    ASSERT_EQ(out.placements.size(), 1u);
    EXPECT_TRUE(out.placements[0].finished);
    EXPECT_NEAR(out.placements[0].relativeSpeed, 100.0, 1e-6);
    EXPECT_NEAR(out.placements[0].bytesCompleted, 1e9, 1.0);
}

TEST_F(SimulatorTest, CorunSlowsBothParties)
{
    Placement g{idx(PuKind::Gpu),
                PhasedWorkload::single(kernel(PuKind::Gpu, 100.0, 4e9))};
    Placement c{idx(PuKind::Cpu),
                PhasedWorkload::single(kernel(PuKind::Cpu, 80.0, 4e9))};
    const CorunOutcome out = sim.run({g, c}, StopPolicy::AllFinish);
    EXPECT_LT(out.placements[0].relativeSpeed, 99.0);
    EXPECT_LT(out.placements[1].relativeSpeed, 99.0);
    EXPECT_GT(out.placements[0].relativeSpeed, 20.0);
}

TEST_F(SimulatorTest, FirstFinishStopsEarly)
{
    Placement small{idx(PuKind::Gpu),
                    PhasedWorkload::single(
                        kernel(PuKind::Gpu, 60.0, 1e8))};
    Placement big{idx(PuKind::Cpu),
                  PhasedWorkload::single(
                      kernel(PuKind::Cpu, 60.0, 1e10))};
    const CorunOutcome out = sim.run({small, big});
    EXPECT_TRUE(out.placements[0].finished);
    EXPECT_FALSE(out.placements[1].finished);
    EXPECT_LT(out.placements[1].bytesCompleted, 1e10);
}

TEST_F(SimulatorTest, AllFinishCompletesEveryone)
{
    Placement a{idx(PuKind::Gpu),
                PhasedWorkload::single(kernel(PuKind::Gpu, 60.0, 1e8))};
    Placement b{idx(PuKind::Cpu),
                PhasedWorkload::single(kernel(PuKind::Cpu, 60.0, 5e8))};
    const CorunOutcome out = sim.run({a, b}, StopPolicy::AllFinish);
    EXPECT_TRUE(out.placements[0].finished);
    EXPECT_TRUE(out.placements[1].finished);
}

TEST_F(SimulatorTest, RelativeSpeedDefinitionHolds)
{
    Placement g{idx(PuKind::Gpu),
                PhasedWorkload::single(kernel(PuKind::Gpu, 90.0, 2e9))};
    Placement c{idx(PuKind::Cpu),
                PhasedWorkload::single(kernel(PuKind::Cpu, 70.0, 2e9))};
    const CorunOutcome out = sim.run({g, c}, StopPolicy::AllFinish);
    for (const auto &po : out.placements) {
        EXPECT_NEAR(po.relativeSpeed,
                    100.0 * po.standaloneSeconds / po.corunSeconds,
                    1e-9);
        EXPECT_LE(po.standaloneSeconds, po.corunSeconds + 1e-12);
    }
}

TEST_F(SimulatorTest, PhasedWorkloadAdvancesThroughPhases)
{
    PhasedWorkload w;
    w.name = "two-phase";
    w.phases.push_back(kernel(PuKind::Gpu, 100.0, 5e8));
    w.phases.push_back(kernel(PuKind::Gpu, 20.0, 5e8));
    const CorunOutcome out = sim.run({Placement{idx(PuKind::Gpu), w}});
    EXPECT_TRUE(out.placements[0].finished);
    EXPECT_NEAR(out.placements[0].bytesCompleted, 1e9, 1.0);
}

TEST_F(SimulatorTest, PhasedStandaloneTimeIsSumOfPhases)
{
    PhasedWorkload w;
    w.name = "two-phase";
    w.phases.push_back(kernel(PuKind::Gpu, 100.0, 5e8));
    w.phases.push_back(kernel(PuKind::Gpu, 20.0, 5e8));
    double expected = 0.0;
    for (const auto &ph : w.phases)
        expected += sim.profile(idx(PuKind::Gpu), ph).seconds;
    const CorunOutcome out = sim.run({Placement{idx(PuKind::Gpu), w}});
    EXPECT_NEAR(out.placements[0].standaloneSeconds, expected, 1e-9);
}

TEST_F(SimulatorTest, SweepHelperMatchesModel)
{
    const KernelProfile k = kernel(PuKind::Gpu, 70.0);
    const std::size_t gpu = idx(PuKind::Gpu);
    const double via_sim = sim.relativeSpeedUnderPressure(gpu, k, 50.0);
    const auto ext = externalDemands(sim.config(), gpu, 50.0);
    const double via_model =
        sim.model().relativeSpeed(sim.config().pus[gpu], k, ext);
    EXPECT_NEAR(via_sim, via_model, 1e-12);
}

TEST_F(SimulatorTest, ProfileByKindAndIndexAgree)
{
    const KernelProfile k = kernel(PuKind::Cpu, 50.0);
    const auto a = sim.profile(PuKind::Cpu, k);
    const auto b = sim.profile(idx(PuKind::Cpu), k);
    EXPECT_DOUBLE_EQ(a.bandwidthDemand, b.bandwidthDemand);
    EXPECT_DOUBLE_EQ(a.rate, b.rate);
}

TEST_F(SimulatorTest, EmptyPlacementsDie)
{
    EXPECT_DEATH(sim.run({}), "placements");
}

TEST_F(SimulatorTest, BadPuIndexDies)
{
    Placement p{99, PhasedWorkload::single(kernel(PuKind::Gpu, 50.0))};
    EXPECT_DEATH(sim.run({p}), "missing PU");
}

} // namespace
} // namespace pccs::soc
