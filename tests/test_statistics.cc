/**
 * @file
 * Unit tests for the statistics toolkit.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/statistics.hh"

namespace pccs {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
    EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats rs;
    rs.add(42.0);
    EXPECT_EQ(rs.count(), 1u);
    EXPECT_DOUBLE_EQ(rs.mean(), 42.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
    EXPECT_DOUBLE_EQ(rs.min(), 42.0);
    EXPECT_DOUBLE_EQ(rs.max(), 42.0);
    EXPECT_DOUBLE_EQ(rs.sum(), 42.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats rs;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        rs.add(v);
    EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 4.0); // classic textbook data set
    EXPECT_DOUBLE_EQ(rs.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(rs.min(), 2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, NegativeValues)
{
    RunningStats rs;
    rs.add(-3.0);
    rs.add(3.0);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.min(), -3.0);
    EXPECT_DOUBLE_EQ(rs.max(), 3.0);
}

TEST(Mean, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Mean, Basic)
{
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean({v.data(), v.size()}), 2.5);
}

TEST(Stddev, ConstantSeriesIsZero)
{
    const std::vector<double> v{5.0, 5.0, 5.0};
    EXPECT_DOUBLE_EQ(stddev({v.data(), v.size()}), 0.0);
}

TEST(FitLine, ExactLineRecovered)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 10; ++i) {
        xs.push_back(i);
        ys.push_back(3.5 * i - 2.0);
    }
    const LineFit fit =
        fitLine({xs.data(), xs.size()}, {ys.data(), ys.size()});
    EXPECT_NEAR(fit.slope, 3.5, 1e-12);
    EXPECT_NEAR(fit.intercept, -2.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLine, NegativeSlope)
{
    std::vector<double> xs{0.0, 1.0, 2.0};
    std::vector<double> ys{10.0, 8.0, 6.0};
    const LineFit fit =
        fitLine({xs.data(), xs.size()}, {ys.data(), ys.size()});
    EXPECT_NEAR(fit.slope, -2.0, 1e-12);
}

TEST(FitLine, DegenerateXGivesMeanIntercept)
{
    std::vector<double> xs{5.0, 5.0, 5.0};
    std::vector<double> ys{1.0, 2.0, 3.0};
    const LineFit fit =
        fitLine({xs.data(), xs.size()}, {ys.data(), ys.size()});
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(FitLine, EmptyInput)
{
    const LineFit fit = fitLine({}, {});
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept, 0.0);
}

TEST(FitLine, NoisyDataReasonableR2)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 50; ++i) {
        xs.push_back(i);
        ys.push_back(2.0 * i + ((i % 2) ? 0.5 : -0.5));
    }
    const LineFit fit =
        fitLine({xs.data(), xs.size()}, {ys.data(), ys.size()});
    EXPECT_NEAR(fit.slope, 2.0, 0.01);
    EXPECT_GT(fit.r2, 0.99);
}

TEST(MeanAbsoluteError, Identity)
{
    const std::vector<double> a{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(
        meanAbsoluteError({a.data(), a.size()}, {a.data(), a.size()}),
        0.0);
}

TEST(MeanAbsoluteError, Known)
{
    const std::vector<double> p{90.0, 80.0, 70.0};
    const std::vector<double> t{100.0, 85.0, 65.0};
    EXPECT_DOUBLE_EQ(
        meanAbsoluteError({p.data(), p.size()}, {t.data(), t.size()}),
        (10.0 + 5.0 + 5.0) / 3.0);
}

TEST(MeanAbsPctPointError, MatchesMae)
{
    const std::vector<double> p{90.0, 80.0};
    const std::vector<double> t{92.0, 84.0};
    EXPECT_DOUBLE_EQ(
        meanAbsPctPointError({p.data(), p.size()}, {t.data(), t.size()}),
        meanAbsoluteError({p.data(), p.size()}, {t.data(), t.size()}));
}

TEST(Clamp, Bounds)
{
    EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 10.0), 5.0);
    EXPECT_DOUBLE_EQ(clamp(-1.0, 0.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp(11.0, 0.0, 10.0), 10.0);
    EXPECT_DOUBLE_EQ(clamp(0.0, 0.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp(10.0, 0.0, 10.0), 10.0);
}

/** Welford implementation must match the two-pass formula. */
class RunningStatsProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RunningStatsProperty, MatchesTwoPassVariance)
{
    const int seed = GetParam();
    std::vector<double> data;
    // Simple LCG to generate deterministic pseudo-random doubles.
    unsigned long long s = static_cast<unsigned long long>(seed) + 1;
    for (int i = 0; i < 200; ++i) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        data.push_back(static_cast<double>(s >> 11) / (1ull << 53) *
                       100.0);
    }
    RunningStats rs;
    for (double v : data)
        rs.add(v);
    const double m = mean({data.data(), data.size()});
    double var = 0.0;
    for (double v : data)
        var += (v - m) * (v - m);
    var /= static_cast<double>(data.size());
    EXPECT_NEAR(rs.mean(), m, 1e-9);
    EXPECT_NEAR(rs.variance(), var, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunningStatsProperty,
                         ::testing::Values(1, 2, 3, 7, 13, 42));

} // namespace
} // namespace pccs
