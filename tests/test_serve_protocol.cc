/**
 * @file
 * Tests for the serve protocol layer: frame reassembly, request
 * dispatch, batching, registry reloads, and robustness against
 * malformed input — all without sockets.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "pccs/corun.hh"
#include "pccs/model.hh"
#include "pccs/serialize.hh"
#include "serve/protocol.hh"

namespace pccs::serve {
namespace {

model::PccsParams
sampleParams()
{
    model::PccsParams p;
    p.normalBw = 38.1;
    p.intensiveBw = 96.2;
    p.mrmc = 4.9;
    p.cbp = 45.3;
    p.tbwdc = 87.2;
    p.rateN = 1.11;
    p.peakBw = 137.0;
    return p;
}

/** A registry+metrics+dispatcher trio with one model, "m". */
struct Service
{
    ModelRegistry registry;
    Metrics metrics;
    Dispatcher dispatcher{registry, metrics};

    Service() { registry.addFromParams("m", sampleParams(), "test"); }

    Json roundTrip(const std::string &frame, bool *shutdown = nullptr)
    {
        const std::string line =
            dispatcher.handleFrame(frame, shutdown);
        const JsonParse parsed = parseJson(line);
        EXPECT_TRUE(parsed.ok()) << line;
        return parsed.ok() ? *parsed.value : Json();
    }
};

TEST(FrameBuffer, SplitAndMergedReads)
{
    FrameBuffer fb;
    // One frame delivered a byte at a time...
    const std::string one = "{\"op\":\"health\"}\n";
    for (char c : one) {
        fb.feed(&c, 1);
        if (c != '\n') {
            EXPECT_FALSE(fb.next().has_value());
        }
    }
    auto frame = fb.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->text, "{\"op\":\"health\"}");

    // ...then three frames merged into a single read, one of them
    // blank and one carrying a \r\n terminator.
    const std::string merged = "abc\r\n\n{\"x\":1}\ntail";
    fb.feed(merged.data(), merged.size());
    frame = fb.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->text, "abc");
    frame = fb.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->text, "{\"x\":1}");
    EXPECT_FALSE(fb.next().has_value()); // "tail" incomplete
    fb.feed("\n", 1);
    frame = fb.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->text, "tail");
}

TEST(FrameBuffer, OversizedLinesAreBoundedAndReported)
{
    FrameBuffer fb(16);
    const std::string big(100, 'x');
    fb.feed(big.data(), big.size());
    auto frame = fb.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_TRUE(frame->oversized);

    // The rest of the oversized line is discarded, including across
    // later feeds, and the stream recovers at the next newline.
    fb.feed(big.data(), big.size());
    EXPECT_FALSE(fb.next().has_value());
    const std::string rest = "still-the-big-line\nok\n";
    fb.feed(rest.data(), rest.size());
    frame = fb.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_FALSE(frame->oversized);
    EXPECT_EQ(frame->text, "ok");
}

TEST(Dispatcher, PredictMatchesInProcessModelBitExactly)
{
    Service svc;
    const model::PccsModel reference(sampleParams());
    for (double x : {5.0, 20.0, 60.0, 110.0, 140.0}) {
        for (double y : {0.0, 15.0, 55.0, 90.0}) {
            char frame[160];
            std::snprintf(frame, sizeof(frame),
                          "{\"op\":\"predict\",\"id\":7,\"model\":"
                          "\"m\",\"demand\":%.17g,\"external\":%.17g}",
                          x, y);
            const Json resp = svc.roundTrip(frame);
            ASSERT_TRUE(resp.find("ok")->asBool()) << resp.dump();
            EXPECT_DOUBLE_EQ(resp.find("id")->asNumber(), 7.0);
            const Json &result = *resp.find("result");
            // Bit-exact equality with the in-process model.
            EXPECT_EQ(result.find("relativeSpeed")->asNumber(),
                      reference.relativeSpeed(x, y));
            EXPECT_EQ(result.find("slowdownFactor")->asNumber(),
                      reference.slowdownFactor(x, y));
            EXPECT_EQ(result.find("region")->asString(),
                      model::regionName(reference.classify(x)));
        }
    }
}

TEST(Dispatcher, PhasedPredictMatchesPiecewise)
{
    Service svc;
    const model::PccsModel reference(sampleParams());
    const std::vector<model::PhaseDemand> phases{{90.0, 0.4},
                                                 {20.0, 0.6}};
    const Json resp = svc.roundTrip(
        "{\"op\":\"predict\",\"model\":\"m\",\"external\":30,"
        "\"phases\":[{\"demand\":90,\"share\":0.4},"
        "{\"demand\":20,\"share\":0.6}]}");
    ASSERT_TRUE(resp.find("ok")->asBool()) << resp.dump();
    EXPECT_EQ(resp.find("result")->find("relativeSpeed")->asNumber(),
              model::predictPiecewise(reference, phases, 30.0));
}

TEST(Dispatcher, BatchedFramesAnswerInOrder)
{
    Service svc;
    std::vector<FrameBuffer::Frame> frames;
    const model::PccsModel reference(sampleParams());
    for (int i = 0; i < 24; ++i) {
        char frame[160];
        std::snprintf(frame, sizeof(frame),
                      "{\"op\":\"predict\",\"id\":%d,\"model\":\"m\","
                      "\"demand\":%d,\"external\":%d}",
                      i, 10 + i, 2 * i);
        frames.push_back({frame, false});
    }
    const std::vector<std::string> out =
        svc.dispatcher.handleFrames(frames);
    ASSERT_EQ(out.size(), frames.size());
    for (int i = 0; i < 24; ++i) {
        const JsonParse parsed = parseJson(out[i]);
        ASSERT_TRUE(parsed.ok());
        EXPECT_DOUBLE_EQ(parsed.value->find("id")->asNumber(), i);
        EXPECT_EQ(parsed.value->find("result")
                      ->find("relativeSpeed")
                      ->asNumber(),
                  reference.relativeSpeed(10.0 + i, 2.0 * i));
    }
    // The whole burst went through the batcher, and at least one
    // multi-request pass was recorded.
    const Json stats = svc.roundTrip("{\"op\":\"stats\"}");
    ASSERT_NE(stats.find("result"), nullptr);
    const Json *batches = stats.find("result")->find("batches");
    ASSERT_NE(batches, nullptr);
    EXPECT_GE(batches->find("requests")->asNumber(), 24.0);
    EXPECT_GT(batches->find("largest")->asNumber(), 1.0);
    // The achieved batch sizes are also exposed as powers-of-two
    // histogram buckets; the bucket counts add up to the pass count,
    // and a multi-request pass lands in a bucket past "1".
    const Json *histogram = batches->find("histogram");
    ASSERT_NE(histogram, nullptr);
    double bucketed = 0.0;
    double beyond_one = 0.0;
    for (const auto &[label, count] : histogram->asObject()) {
        bucketed += count.asNumber();
        if (label != "1")
            beyond_one += count.asNumber();
    }
    EXPECT_DOUBLE_EQ(bucketed, batches->find("passes")->asNumber());
    EXPECT_GE(beyond_one, 1.0);
}

TEST(Dispatcher, ConcurrentCallersAreCoalescedSafely)
{
    Service svc;
    const model::PccsModel reference(sampleParams());
    constexpr int kThreads = 8, kPerThread = 50;
    std::vector<std::thread> threads;
    std::vector<int> bad(kThreads, 0);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                const double x = 10.0 + (t * kPerThread + i) % 120;
                char frame[160];
                std::snprintf(
                    frame, sizeof(frame),
                    "{\"op\":\"predict\",\"model\":\"m\","
                    "\"demand\":%.17g,\"external\":25}",
                    x);
                const std::string line =
                    svc.dispatcher.handleFrame(frame);
                const JsonParse parsed = parseJson(line);
                if (!parsed.ok() ||
                    parsed.value->find("result")
                            ->find("relativeSpeed")
                            ->asNumber() !=
                        reference.relativeSpeed(x, 25.0)) {
                    ++bad[t];
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(bad[t], 0);
    EXPECT_EQ(svc.metrics.totalRequests(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Dispatcher, CorunMatchesLibraryPrediction)
{
    Service svc;
    const model::PccsModel reference(sampleParams());
    std::vector<model::CorunInput> inputs(2);
    inputs[0].model = &reference;
    inputs[0].phases = {{80.0, 1.0}};
    inputs[1].model = &reference;
    inputs[1].phases = {{30.0, 1.0}};
    const std::vector<double> expected =
        model::predictCorun(inputs, {});

    const Json resp = svc.roundTrip(
        "{\"op\":\"corun\",\"entries\":["
        "{\"model\":\"m\",\"demand\":80},"
        "{\"model\":\"m\",\"demand\":30}]}");
    ASSERT_TRUE(resp.find("ok")->asBool()) << resp.dump();
    const Json &rs = *resp.find("result")->find("relativeSpeed");
    ASSERT_EQ(rs.asArray().size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(rs.asArray()[i].asNumber(), expected[i]);
}

TEST(Dispatcher, MalformedFramesErrorWithoutTerminating)
{
    Service svc;
    const char *bad[] = {
        "garbage",
        "{\"op\":\"predict\"}",            // missing fields
        "{\"op\":\"predict\",\"model\":\"nope\",\"demand\":1,"
        "\"external\":1}",                  // unknown model
        "{\"op\":\"predict\",\"model\":\"m\",\"demand\":-5,"
        "\"external\":1}",                  // negative demand
        "{\"op\":\"predict\",\"model\":\"m\",\"demand\":\"x\","
        "\"external\":1}",                  // wrong type
        "{\"op\":\"frobnicate\"}",          // unknown op
        "{\"op\":42}",                      // non-string op
        "[1,2,3]",                          // not an object
        "{\"op\":\"corun\",\"entries\":[]}",
        "{\"op\":\"place\",\"soc\":\"mars\",\"tasks\":[\"lud\"]}",
        "{\"op\":\"reload\",\"model\":\"m\"}", // no backing file
        "\xff\xfe binary junk",
    };
    for (const char *frame : bad) {
        const Json resp = svc.roundTrip(frame);
        ASSERT_NE(resp.find("ok"), nullptr) << frame;
        EXPECT_FALSE(resp.find("ok")->asBool()) << frame;
        EXPECT_FALSE(resp.find("error")->asString().empty()) << frame;
    }
    // Deeply nested input hits the depth limit, not the stack.
    std::string deep = "{\"op\":\"predict\",\"model\":";
    for (int i = 0; i < 5000; ++i)
        deep += '[';
    EXPECT_FALSE(svc.roundTrip(deep).find("ok")->asBool());

    // Oversized frames are reported as such.
    std::vector<FrameBuffer::Frame> frames{{"", true}};
    const auto out = svc.dispatcher.handleFrames(frames);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NE(out[0].find("size limit"), std::string::npos);

    // After all that abuse the dispatcher still works.
    const Json ok = svc.roundTrip(
        "{\"op\":\"predict\",\"model\":\"m\",\"demand\":20,"
        "\"external\":10}");
    EXPECT_TRUE(ok.find("ok")->asBool());
    EXPECT_GT(svc.metrics.totalRequests(), 0u);
}

TEST(Dispatcher, FuzzedFramesNeverCrash)
{
    Service svc;
    Rng rng(12345);
    const std::string alphabet =
        "{}[]\",:0123456789.eE+-truefalsnl \\u\n\t\x01\x7f";
    for (int round = 0; round < 2000; ++round) {
        std::string frame;
        const std::size_t len = rng.below(64);
        for (std::size_t i = 0; i < len; ++i)
            frame += alphabet[rng.below(alphabet.size())];
        // Embedded newlines would be two frames on the wire; here we
        // exercise the dispatcher directly with arbitrary bytes.
        const std::string line = svc.dispatcher.handleFrame(frame);
        const JsonParse parsed = parseJson(line);
        ASSERT_TRUE(parsed.ok()) << line;
        ASSERT_NE(parsed.value->find("ok"), nullptr);
    }
    // And mutated near-valid requests.
    const std::string valid =
        "{\"op\":\"predict\",\"model\":\"m\",\"demand\":20,"
        "\"external\":10}";
    for (int round = 0; round < 2000; ++round) {
        std::string frame = valid;
        const std::size_t hits = 1 + rng.below(4);
        for (std::size_t h = 0; h < hits; ++h)
            frame[rng.below(frame.size())] = static_cast<char>(
                alphabet[rng.below(alphabet.size())]);
        const std::string line = svc.dispatcher.handleFrame(frame);
        ASSERT_TRUE(parseJson(line).ok()) << line;
    }
}

TEST(Registry, ReloadSwapsVersionsAndSurvivesFailure)
{
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "pccs_serve_reload.model")
            .string();
    model::saveParams(sampleParams(), path);

    ModelRegistry registry;
    ASSERT_EQ(registry.addFromFile("disk", path), "");
    auto v1 = registry.find("disk");
    ASSERT_NE(v1, nullptr);
    EXPECT_EQ(v1->version, 1u);

    // Change the file; reload publishes version 2.
    model::PccsParams changed = sampleParams();
    changed.cbp = 50.0;
    model::saveParams(changed, path);
    const auto good = registry.reload("disk");
    EXPECT_TRUE(good.ok) << good.error;
    EXPECT_EQ(good.version, 2u);
    EXPECT_DOUBLE_EQ(registry.find("disk")->params.cbp, 50.0);

    // The old snapshot a reader held across the swap stays valid.
    EXPECT_DOUBLE_EQ(v1->params.cbp, 45.3);

    // Corrupt the file; reload fails and version 2 stays published.
    {
        std::ofstream out(path);
        out << "pccs-model v1\ncbp broken\n";
    }
    const auto bad = registry.reload("disk");
    EXPECT_FALSE(bad.ok);
    EXPECT_FALSE(bad.error.empty());
    EXPECT_EQ(registry.find("disk")->version, 2u);
    EXPECT_DOUBLE_EQ(registry.find("disk")->params.cbp, 50.0);

    EXPECT_FALSE(registry.reload("never-added").ok);
    std::remove(path.c_str());
}

TEST(Dispatcher, ReloadUnderLoadKeepsInFlightRequestsConsistent)
{
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "pccs_serve_reload_load.model")
            .string();
    model::saveParams(sampleParams(), path);

    Service svc;
    ASSERT_EQ(svc.registry.addFromFile("disk", path), "");
    const model::PccsModel before(sampleParams());
    model::PccsParams changedParams = sampleParams();
    changedParams.cbp = 60.0;
    const model::PccsModel after(changedParams);

    std::thread reloader([&] {
        model::saveParams(changedParams, path);
        for (int i = 0; i < 50; ++i)
            svc.dispatcher.handleFrame(
                "{\"op\":\"reload\",\"model\":\"disk\"}");
    });
    int mismatches = 0;
    for (int i = 0; i < 400; ++i) {
        const Json resp = svc.roundTrip(
            "{\"op\":\"predict\",\"model\":\"disk\",\"demand\":90,"
            "\"external\":40}");
        ASSERT_TRUE(resp.find("ok")->asBool()) << resp.dump();
        const double rs =
            resp.find("result")->find("relativeSpeed")->asNumber();
        // Every answer is one model version or the other — never a
        // torn mixture, never an error.
        if (rs != before.relativeSpeed(90.0, 40.0) &&
            rs != after.relativeSpeed(90.0, 40.0)) {
            ++mismatches;
        }
    }
    reloader.join();
    EXPECT_EQ(mismatches, 0);
    std::remove(path.c_str());
}

TEST(Dispatcher, StatsAndHealthReportActivity)
{
    Service svc;
    for (int i = 0; i < 10; ++i)
        svc.roundTrip("{\"op\":\"predict\",\"model\":\"m\","
                      "\"demand\":20,\"external\":10}");
    svc.roundTrip("{\"op\":\"nonsense\"}");

    const Json health = svc.roundTrip("{\"op\":\"health\"}");
    EXPECT_EQ(health.find("result")->find("status")->asString(),
              "ok");
    EXPECT_DOUBLE_EQ(health.find("result")->find("models")->asNumber(),
                     1.0);

    const Json stats = svc.roundTrip("{\"op\":\"stats\"}");
    ASSERT_TRUE(stats.find("ok")->asBool());
    const Json &result = *stats.find("result");
    const Json *predict =
        result.find("endpoints")->find("predict");
    ASSERT_NE(predict, nullptr);
    EXPECT_DOUBLE_EQ(predict->find("requests")->asNumber(), 10.0);
    EXPECT_DOUBLE_EQ(predict->find("errors")->asNumber(), 0.0);
    const Json *latency = predict->find("latency");
    EXPECT_GT(latency->find("p50Us")->asNumber(), 0.0);
    EXPECT_GE(latency->find("p99Us")->asNumber(),
              latency->find("p50Us")->asNumber());
    EXPECT_GE(latency->find("maxUs")->asNumber(),
              latency->find("p99Us")->asNumber());
    const Json *bad = result.find("endpoints")->find("nonsense");
    ASSERT_NE(bad, nullptr);
    EXPECT_DOUBLE_EQ(bad->find("errors")->asNumber(), 1.0);
    EXPECT_GT(result.find("batches")->find("passes")->asNumber(),
              0.0);
    EXPECT_EQ(result.find("models")
                  ->asArray()
                  .front()
                  .find("name")
                  ->asString(),
              "m");
}

TEST(Dispatcher, ShutdownOpSetsTheFlag)
{
    Service svc;
    bool shutdown = false;
    const Json resp =
        svc.roundTrip("{\"op\":\"shutdown\"}", &shutdown);
    EXPECT_TRUE(resp.find("ok")->asBool());
    EXPECT_TRUE(shutdown);
}

TEST(Dispatcher, ScheduleAdmitCompletePromoteRoundTrip)
{
    Service svc;
    const Json first = svc.roundTrip(
        "{\"op\":\"schedule\",\"soc\":\"xavier\",\"pu\":\"gpu\","
        "\"bench\":\"streamcluster\",\"slo\":1.5}");
    ASSERT_TRUE(first.find("ok")->asBool()) << first.dump();
    const Json &r1 = *first.find("result");
    EXPECT_EQ(r1.find("decision")->asString(), "admitted");
    ASSERT_NE(r1.find("job"), nullptr);
    EXPECT_TRUE(r1.find("job")->isString())
        << "handles travel as exact decimal strings";
    EXPECT_GT(r1.find("frequencyMhz")->asNumber(), 0.0);
    EXPECT_GE(r1.find("predictedSlowdown")->asNumber(), 1.0);
    const std::string handle = r1.find("job")->asString();

    // Same PU again: capacity 1, so the arrival waits.
    const Json second = svc.roundTrip(
        "{\"op\":\"schedule\",\"soc\":\"xavier\",\"pu\":\"gpu\","
        "\"bench\":\"bfs\",\"slo\":1.5}");
    const Json &r2 = *second.find("result");
    EXPECT_EQ(r2.find("decision")->asString(), "queued");
    EXPECT_FALSE(r2.find("reason")->asString().empty());

    // Completing the resident promotes the waiter.
    const Json done = svc.roundTrip(
        "{\"op\":\"complete\",\"soc\":\"xavier\",\"job\":\"" + handle +
        "\"}");
    ASSERT_TRUE(done.find("ok")->asBool()) << done.dump();
    const Json &r3 = *done.find("result");
    EXPECT_TRUE(r3.find("completed")->asBool());
    ASSERT_EQ(r3.find("promoted")->asArray().size(), 1u);
    EXPECT_EQ(r3.find("promoted")
                  ->asArray()[0]
                  .find("decision")
                  ->asString(),
              "admitted");

    // The same handle is now stale.
    const Json stale = svc.roundTrip(
        "{\"op\":\"complete\",\"soc\":\"xavier\",\"job\":\"" + handle +
        "\"}");
    EXPECT_FALSE(stale.find("ok")->asBool());

    const Json stats = svc.roundTrip(
        "{\"op\":\"sched_stats\",\"soc\":\"xavier\"}");
    ASSERT_TRUE(stats.find("ok")->asBool());
    const Json &rs = *stats.find("result");
    EXPECT_TRUE(rs.find("scheduler")->asBool());
    EXPECT_EQ(rs.find("policy")->asString(), "strict");
    const Json &counters = *rs.find("counters");
    EXPECT_DOUBLE_EQ(counters.find("submitted")->asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(counters.find("admitted")->asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(counters.find("promoted")->asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(rs.find("resident")->asNumber(), 1.0);
    EXPECT_EQ(rs.find("pus")->asArray().size(), 3u);
}

TEST(Dispatcher, ScheduleValidatesRequests)
{
    Service svc;
    // No scheduler yet: stats say so, complete errors.
    const Json empty = svc.roundTrip(
        "{\"op\":\"sched_stats\",\"soc\":\"xavier\"}");
    EXPECT_FALSE(empty.find("result")->find("scheduler")->asBool());
    EXPECT_FALSE(
        svc.roundTrip("{\"op\":\"complete\",\"soc\":\"xavier\","
                      "\"job\":\"7\"}")
            .find("ok")
            ->asBool());

    // Field validation, each as its own error response.
    for (const char *bad : {
             "{\"op\":\"schedule\",\"soc\":\"xavier\","
             "\"bench\":\"bfs\"}", // missing slo
             "{\"op\":\"schedule\",\"soc\":\"xavier\","
             "\"bench\":\"bfs\",\"slo\":0.5}", // slo < 1
             "{\"op\":\"schedule\",\"soc\":\"xavier\","
             "\"bench\":\"nope\",\"slo\":1.5}", // unknown bench
             "{\"op\":\"schedule\",\"soc\":\"xavier\","
             "\"slo\":1.5}", // neither bench nor kernel
             "{\"op\":\"schedule\",\"soc\":\"xavier\",\"slo\":1.5,"
             "\"kernel\":{\"intensity\":1,\"locality\":7}}",
         }) {
        const Json resp = svc.roundTrip(bad);
        EXPECT_FALSE(resp.find("ok")->asBool()) << bad;
    }

    // A custom kernel works, and fixes the policy for the SoC ...
    const Json ok = svc.roundTrip(
        "{\"op\":\"schedule\",\"soc\":\"xavier\",\"slo\":2.0,"
        "\"policy\":\"best-effort\",\"pu\":\"gpu\","
        "\"kernel\":{\"intensity\":0.01,\"locality\":0.9}}");
    ASSERT_TRUE(ok.find("ok")->asBool()) << ok.dump();
    EXPECT_EQ(ok.find("result")->find("decision")->asString(),
              "admitted");

    // ... so asking for a different policy later is an error.
    const Json clash = svc.roundTrip(
        "{\"op\":\"schedule\",\"soc\":\"xavier\",\"slo\":2.0,"
        "\"policy\":\"strict\",\"bench\":\"bfs\"}");
    EXPECT_FALSE(clash.find("ok")->asBool());
    EXPECT_NE(clash.find("error")->asString().find("fixed"),
              std::string::npos);
}

TEST(Metrics, UnknownOpNamesAreBoundedPerShard)
{
    // A client flooding distinct bogus op names must not grow the
    // overflow map without bound: past kMaxOverflowOps distinct names
    // (per shard), everything folds into one "other" bucket. A
    // single-threaded flood lands on a single shard, making the cap
    // exact.
    Service svc;
    const std::size_t kFlood = 100;
    for (std::size_t i = 0; i < kFlood; ++i)
        svc.roundTrip("{\"op\":\"bogus" + std::to_string(i) + "\"}");

    const Json stats = svc.roundTrip("{\"op\":\"stats\"}");
    const Json &endpoints = *stats.find("result")->find("endpoints");
    std::size_t bogus = 0, folded = 0;
    for (const auto &[name, counters] : endpoints.asObject()) {
        if (name.rfind("bogus", 0) == 0) {
            ++bogus;
            folded += static_cast<std::size_t>(
                counters.find("requests")->asNumber());
        } else if (name == "other") {
            folded += static_cast<std::size_t>(
                counters.find("requests")->asNumber());
        }
    }
    EXPECT_LE(bogus, Metrics::kMaxOverflowOps);
    const Json *other = endpoints.find("other");
    ASSERT_NE(other, nullptr) << "the fold bucket must be reported";
    EXPECT_GE(other->find("requests")->asNumber(), 1.0);
    // No request lost to the cap: named + folded cover the flood.
    EXPECT_EQ(folded, kFlood);
}

} // namespace
} // namespace pccs::serve
