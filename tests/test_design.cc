/**
 * @file
 * Tests for the design-space explorer (Sections 3.4 / 4.3): frequency
 * and core-count selection under co-run slowdown requirements.
 */

#include <gtest/gtest.h>

#include "gables/gables.hh"
#include "pccs/builder.hh"
#include "pccs/design.hh"
#include "workloads/rodinia.hh"

namespace pccs::model {
namespace {

std::vector<double>
frequencyGrid()
{
    std::vector<double> grid;
    for (double f = 400.0; f <= 1377.0; f += 50.0)
        grid.push_back(f);
    grid.push_back(1377.0);
    return grid;
}

class DesignTest : public ::testing::Test
{
  protected:
    soc::SocConfig soc = soc::xavierLike();
    DesignExplorer explorer{soc};
    std::size_t gpu =
        static_cast<std::size_t>(soc.puIndex(soc::PuKind::Gpu));
    soc::KernelProfile sc =
        workloads::rodiniaKernel("streamcluster", soc::PuKind::Gpu);
};

TEST_F(DesignTest, ActualCorunPerformanceIncreasesWithFrequency)
{
    const double lo =
        explorer.corunPerformanceActual(gpu, sc, 500.0, 20.0);
    const double hi =
        explorer.corunPerformanceActual(gpu, sc, 1377.0, 20.0);
    EXPECT_GT(hi, lo);
}

TEST_F(DesignTest, ActualCorunPerformanceSaturatesUnderContention)
{
    // Under heavy external pressure, raising the clock past the point
    // where the memory grant binds cannot buy performance.
    const double mid =
        explorer.corunPerformanceActual(gpu, sc, 1100.0, 60.0);
    const double top =
        explorer.corunPerformanceActual(gpu, sc, 1377.0, 60.0);
    EXPECT_NEAR(top, mid, top * 0.06);
}

TEST_F(DesignTest, GroundTruthSelectsLowerFrequencyUnderPressure)
{
    const auto grid = frequencyGrid();
    const auto at_20 =
        explorer.selectFrequencyActual(gpu, sc, 20.0, 5.0, grid);
    const auto at_60 =
        explorer.selectFrequencyActual(gpu, sc, 60.0, 5.0, grid);
    // More external pressure -> co-run perf saturates earlier -> an
    // equally good (cheaper) lower clock exists (Table 9's trend).
    EXPECT_LE(at_60.value, at_20.value);
    EXPECT_LT(at_20.value, 1377.0) << "over-provisioning avoided";
}

TEST_F(DesignTest, LargerAllowedSlowdownPicksLowerFrequency)
{
    const auto grid = frequencyGrid();
    const auto tight =
        explorer.selectFrequencyActual(gpu, sc, 40.0, 5.0, grid);
    const auto loose =
        explorer.selectFrequencyActual(gpu, sc, 40.0, 20.0, grid);
    EXPECT_LE(loose.value, tight.value);
}

TEST_F(DesignTest, PccsSelectionTracksGroundTruthBetterThanGables)
{
    const soc::SocSimulator sim(soc);
    const PccsModel pccs = buildModel(sim, gpu);
    const gables::GablesModel gab(soc.memory.peakBandwidth);
    const auto grid = frequencyGrid();

    double pccs_err = 0.0, gables_err = 0.0;
    for (double y : {20.0, 40.0, 60.0}) {
        const auto truth =
            explorer.selectFrequencyActual(gpu, sc, y, 5.0, grid);
        const auto via_pccs =
            explorer.selectFrequency(gpu, sc, y, 5.0, pccs, grid);
        const auto via_gables =
            explorer.selectFrequency(gpu, sc, y, 5.0, gab, grid);
        pccs_err += std::abs(via_pccs.value - truth.value);
        gables_err += std::abs(via_gables.value - truth.value);
    }
    EXPECT_LE(pccs_err, gables_err)
        << "PCCS must guide frequency selection at least as well";
}

TEST_F(DesignTest, GablesOverProvisionsUnderContention)
{
    // Gables predicts no contention below the peak, so it sees no
    // benefit-loss from high clocks and keeps them high (the paper's
    // Table 9: Gables picks 880 MHz regardless of pressure).
    const gables::GablesModel gab(soc.memory.peakBandwidth);
    const auto grid = frequencyGrid();
    const auto truth =
        explorer.selectFrequencyActual(gpu, sc, 60.0, 5.0, grid);
    const auto via_gables =
        explorer.selectFrequency(gpu, sc, 60.0, 5.0, gab, grid);
    EXPECT_GE(via_gables.value, truth.value);
}

TEST_F(DesignTest, SelectionReportsPerformanceNumbers)
{
    const auto grid = frequencyGrid();
    const auto sel =
        explorer.selectFrequencyActual(gpu, sc, 40.0, 10.0, grid);
    EXPECT_GT(sel.referencePerformance, 0.0);
    EXPECT_GT(sel.predictedPerformance, 0.0);
    EXPECT_GE(sel.predictedPerformance,
              sel.referencePerformance * 0.9 - 1e-9);
}

TEST_F(DesignTest, CoreScaleSelection)
{
    const soc::SocSimulator sim(soc);
    const PccsModel pccs = buildModel(sim, gpu);
    const std::vector<double> scales{0.25, 0.5, 0.75, 1.0};
    const auto sel =
        explorer.selectCoreScale(gpu, sc, 60.0, 10.0, pccs, scales);
    EXPECT_GT(sel.value, 0.0);
    EXPECT_LE(sel.value, 1.0);
    // Under heavy contention a memory-bound kernel should not need the
    // full GPU (the paper's "saving up to 50% area" use case).
    EXPECT_LT(sel.value, 1.0);
}

TEST_F(DesignTest, EmptyGridDies)
{
    const gables::GablesModel gab(137.0);
    EXPECT_DEATH(explorer.selectFrequency(gpu, sc, 20.0, 5.0, gab, {}),
                 "grid");
}

TEST_F(DesignTest, GridEvaluationMatchesScalarLoop)
{
    // corunPerformanceGrid is documented bit-exact with calling
    // corunPerformance per grid point.
    const soc::SocSimulator sim(soc);
    const PccsModel pccs = buildModel(sim, gpu);
    const auto grid = frequencyGrid();
    const std::vector<double> batched =
        explorer.corunPerformanceGrid(gpu, sc, grid, 40.0, pccs);
    ASSERT_EQ(batched.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(batched[i],
                  explorer.corunPerformance(gpu, sc, grid[i], 40.0,
                                            pccs))
            << "f=" << grid[i];
    }
}

TEST_F(DesignTest, PrunedSelectionMatchesFullScan)
{
    // The binary-searched (pruned) selection must pick the same knob
    // value, predicted performance, and reference performance as the
    // exhaustive scan, for every consumer and several contention and
    // slack levels.
    const soc::SocSimulator sim(soc);
    const PccsModel pccs = buildModel(sim, gpu);
    const gables::GablesModel gab(soc.memory.peakBandwidth);
    const auto grid = frequencyGrid();
    const std::vector<double> scales{0.25, 0.5, 0.75, 1.0};

    ASSERT_TRUE(explorer.pruneSelection());
    for (double y : {20.0, 60.0}) {
        for (double allowed : {0.0, 5.0, 20.0}) {
            explorer.setPruneSelection(true);
            const auto p_pccs =
                explorer.selectFrequency(gpu, sc, y, allowed, pccs,
                                         grid);
            const auto p_gab = explorer.selectFrequency(gpu, sc, y,
                                                        allowed, gab,
                                                        grid);
            const auto p_act = explorer.selectFrequencyActual(
                gpu, sc, y, allowed, grid);
            const auto p_core = explorer.selectCoreScale(
                gpu, sc, y, allowed, pccs, scales);

            explorer.setPruneSelection(false);
            const auto s_pccs =
                explorer.selectFrequency(gpu, sc, y, allowed, pccs,
                                         grid);
            const auto s_gab = explorer.selectFrequency(gpu, sc, y,
                                                        allowed, gab,
                                                        grid);
            const auto s_act = explorer.selectFrequencyActual(
                gpu, sc, y, allowed, grid);
            const auto s_core = explorer.selectCoreScale(
                gpu, sc, y, allowed, pccs, scales);
            explorer.setPruneSelection(true);

            const auto same = [&](const DesignSelection &a,
                                  const DesignSelection &b,
                                  const char *what) {
                EXPECT_EQ(a.value, b.value)
                    << what << " y=" << y << " allowed=" << allowed;
                EXPECT_EQ(a.predictedPerformance,
                          b.predictedPerformance)
                    << what;
                EXPECT_EQ(a.referencePerformance,
                          b.referencePerformance)
                    << what;
            };
            same(p_pccs, s_pccs, "pccs");
            same(p_gab, s_gab, "gables");
            same(p_act, s_act, "actual");
            same(p_core, s_core, "core-scale");
        }
    }
}

class TieBreakTest : public ::testing::Test
{
  protected:
    /**
     * A config whose GPU co-run performance is bit-exactly flat over
     * high clocks: full compute/memory overlap plus a memory-bound
     * kernel make the standalone rate min(drawBandwidth, memory)-
     * limited, and drawBandwidth saturates at the interface cap for
     * f >= fmax * interface / issue (~901 MHz on the Xavier-like
     * GPU). Every grid point then scores identically, exposing the
     * selector's tie-breaking.
     */
    TieBreakTest()
    {
        soc.pus[gpu].overlap = 1.0;
        flat.intensity = 0.01;
        flat.locality = 0.9;
    }

    soc::SocConfig soc = soc::xavierLike();
    std::size_t gpu =
        static_cast<std::size_t>(soc.puIndex(soc::PuKind::Gpu));
    soc::KernelProfile flat{"flat"};
};

TEST_F(TieBreakTest, FrequencyTieBreaksToLowestValueBothPaths)
{
    DesignExplorer explorer{soc};
    const soc::SocSimulator sim(soc);
    const PccsModel pccs = buildModel(sim, gpu);
    const std::vector<double> grid{950.0, 1050.0, 1150.0, 1377.0};

    for (const bool prune : {true, false}) {
        explorer.setPruneSelection(prune);
        const auto sel =
            explorer.selectFrequency(gpu, flat, 30.0, 0.0, pccs, grid);
        EXPECT_EQ(sel.value, 950.0) << "prune=" << prune
                                    << ": equal scores must break to "
                                       "the lowest grid value";
        // On a flat region the cheapest clock gives up nothing.
        EXPECT_EQ(sel.predictedPerformance, sel.referencePerformance)
            << "prune=" << prune;
    }
}

TEST_F(TieBreakTest, GroundTruthFrequencyTieBreaksToLowestValue)
{
    DesignExplorer explorer{soc};
    const std::vector<double> grid{950.0, 1050.0, 1150.0, 1377.0};

    for (const bool prune : {true, false}) {
        explorer.setPruneSelection(prune);
        const auto sel =
            explorer.selectFrequencyActual(gpu, flat, 30.0, 0.0, grid);
        EXPECT_EQ(sel.value, 950.0) << "prune=" << prune;
        EXPECT_EQ(sel.predictedPerformance, sel.referencePerformance)
            << "prune=" << prune;
    }
}

TEST_F(TieBreakTest, CoreScaleTieBreaksToLowestValueBothPaths)
{
    DesignExplorer explorer{soc};
    const soc::SocSimulator sim(soc);
    const PccsModel pccs = buildModel(sim, gpu);
    // All scales past interface/issue (127/194 ~ 0.655) saturate the
    // same way the clock does, so these four tie exactly.
    const std::vector<double> scales{0.7, 0.8, 0.9, 1.0};

    for (const bool prune : {true, false}) {
        explorer.setPruneSelection(prune);
        const auto sel = explorer.selectCoreScale(gpu, flat, 30.0, 0.0,
                                                  pccs, scales);
        EXPECT_EQ(sel.value, 0.7) << "prune=" << prune;
        EXPECT_EQ(sel.predictedPerformance, sel.referencePerformance)
            << "prune=" << prune;
    }
}

} // namespace
} // namespace pccs::model
