/**
 * @file
 * Tests of the runner layer: the sweep engine's parallel == serial
 * guarantee, the eval cache's hit/miss accounting, the PCCS_JOBS
 * fallback, and the RunResult artifact rendering.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <thread>
#include <vector>

#include "calib/calibrator.hh"
#include "runner/eval_cache.hh"
#include "runner/run_spec.hh"
#include "runner/spin_barrier.hh"
#include "runner/sweep_engine.hh"
#include "soc/simulator.hh"

using namespace pccs;

namespace {

std::vector<runner::EvalPoint>
gpuSweepPoints(const soc::SocSimulator &sim, std::size_t gpu)
{
    std::vector<runner::EvalPoint> points;
    for (unsigned i = 0; i < 4; ++i) {
        const soc::KernelProfile k = calib::makeCalibrator(
            sim.model(), sim.config().pus[gpu], 25.0 + 25.0 * i);
        for (unsigned j = 1; j <= 5; ++j)
            points.push_back({gpu, k, 15.0 * j});
    }
    return points;
}

} // namespace

TEST(SweepEngine, ParallelEqualsSerialOnCalibrationMatrix)
{
    const soc::SocSimulator sim(soc::xavierLike());
    const std::size_t gpu = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Gpu));

    runner::SweepEngine serial(1);
    runner::SweepEngine parallel(4);
    ASSERT_EQ(serial.jobs(), 1u);
    ASSERT_EQ(parallel.jobs(), 4u);

    const calib::CalibrationMatrix a =
        calib::calibrate(sim, gpu, {}, &serial);
    const calib::CalibrationMatrix b =
        calib::calibrate(sim, gpu, {}, &parallel);

    ASSERT_EQ(a.numKernels(), b.numKernels());
    ASSERT_EQ(a.numExternal(), b.numExternal());
    EXPECT_EQ(a.standaloneBw, b.standaloneBw);
    EXPECT_EQ(a.externalBw, b.externalBw);
    for (std::size_t i = 0; i < a.numKernels(); ++i) {
        for (std::size_t j = 0; j < a.numExternal(); ++j) {
            // Bit-identical, not approximately equal.
            EXPECT_EQ(a.rela[i][j], b.rela[i][j])
                << "rela[" << i << "][" << j << "]";
        }
    }
}

TEST(SweepEngine, BatchMatchesDirectSimulatorCalls)
{
    const soc::SocSimulator sim(soc::xavierLike());
    const std::size_t gpu = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Gpu));
    const auto points = gpuSweepPoints(sim, gpu);

    runner::SweepEngine engine(4);
    const std::vector<double> batch =
        engine.evaluateBatch(sim, points);
    ASSERT_EQ(batch.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(batch[i], sim.relativeSpeedUnderPressure(
                                points[i].puIndex, points[i].kernel,
                                points[i].externalBw));
    }
}

TEST(SweepEngine, CacheCountsHitsAndMisses)
{
    const soc::SocSimulator sim(soc::xavierLike());
    const std::size_t gpu = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Gpu));
    const auto points = gpuSweepPoints(sim, gpu);

    runner::SweepEngine engine(2);
    const auto first = engine.evaluateBatch(sim, points);
    const runner::CacheStats cold = engine.cache().stats();
    EXPECT_EQ(cold.hits, 0u);
    EXPECT_EQ(cold.misses, points.size());

    // The second identical batch must be all hits, same values.
    const auto second = engine.evaluateBatch(sim, points);
    const runner::CacheStats warm = engine.cache().stats();
    EXPECT_EQ(warm.hits, points.size());
    EXPECT_EQ(warm.misses, points.size());
    EXPECT_GT(warm.hitRate(), 0.49);
    EXPECT_EQ(first, second);
}

TEST(SweepEngine, CalibrationSharesPointsWithFig8StyleSweep)
{
    const soc::SocSimulator sim(soc::xavierLike());
    const std::size_t gpu = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Gpu));

    runner::SweepEngine engine(2);
    const calib::SweepSpec spec;
    const calib::CalibrationMatrix matrix =
        calib::calibrate(sim, gpu, spec, &engine);
    const runner::CacheStats after_calib = engine.cache().stats();
    EXPECT_EQ(after_calib.hits, 0u);

    // A Fig. 8-style sweep of an application kernel over the
    // calibration ladder: the kernel happens to have a calibrator's
    // demand, so every point is already in the cache.
    const soc::KernelProfile k = calib::makeCalibrator(
        sim.model(), sim.config().pus[gpu],
        spec.maxDemandFraction *
            sim.config().pus[gpu].drawBandwidth());
    std::vector<runner::EvalPoint> points;
    for (GBps y : matrix.externalBw)
        points.push_back({gpu, k, y});
    engine.evaluateBatch(sim, points);

    const runner::CacheStats after_sweep = engine.cache().stats();
    EXPECT_GT(after_sweep.hits, 0u) << "calibration and the sweep "
                                       "share points but none hit";
    EXPECT_GT(after_sweep.hitRate(), 0.0);
}

TEST(SweepEngine, ProfileIsMemoized)
{
    const soc::SocSimulator sim(soc::xavierLike());
    const std::size_t gpu = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Gpu));
    const soc::KernelProfile k = calib::makeCalibrator(
        sim.model(), sim.config().pus[gpu], 70.0);

    runner::SweepEngine engine(1);
    const soc::StandaloneProfile p1 = engine.profile(sim, gpu, k);
    const soc::StandaloneProfile p2 = engine.profile(sim, gpu, k);
    EXPECT_EQ(engine.cache().stats().hits, 1u);
    EXPECT_EQ(p1.bandwidthDemand, p2.bandwidthDemand);
    EXPECT_EQ(p1.seconds, p2.seconds);
    const soc::StandaloneProfile direct = sim.profile(gpu, k);
    EXPECT_EQ(p1.bandwidthDemand, direct.bandwidthDemand);
    EXPECT_EQ(p1.seconds, direct.seconds);
}

TEST(SweepEngine, DistinctConfigsDoNotCollide)
{
    soc::SocConfig base = soc::xavierLike();
    soc::SocConfig scaled = base.withMemoryScaled(0.75);
    const soc::SocSimulator sim_a(base);
    const soc::SocSimulator sim_b(scaled);
    const std::size_t gpu = static_cast<std::size_t>(
        base.puIndex(soc::PuKind::Gpu));
    const soc::KernelProfile k = calib::makeCalibrator(
        sim_a.model(), base.pus[gpu], 70.0);

    runner::SweepEngine engine(1);
    const double a = engine.evaluate(sim_a, gpu, k, 50.0);
    const double b = engine.evaluate(sim_b, gpu, k, 50.0);
    EXPECT_EQ(engine.cache().stats().hits, 0u);
    EXPECT_EQ(a, sim_a.relativeSpeedUnderPressure(gpu, k, 50.0));
    EXPECT_EQ(b, sim_b.relativeSpeedUnderPressure(gpu, k, 50.0));
}

TEST(SweepEngine, CacheClearResetsEverything)
{
    const soc::SocSimulator sim(soc::xavierLike());
    const std::size_t gpu = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Gpu));
    const soc::KernelProfile k = calib::makeCalibrator(
        sim.model(), sim.config().pus[gpu], 40.0);

    runner::SweepEngine engine(1);
    engine.evaluate(sim, gpu, k, 30.0);
    EXPECT_GT(engine.cache().size(), 0u);
    engine.cache().clear();
    EXPECT_EQ(engine.cache().size(), 0u);
    EXPECT_EQ(engine.cache().stats().lookups(), 0u);
}

TEST(SweepEngine, PccsJobsEnvForcesSerialFallback)
{
    setenv("PCCS_JOBS", "1", 1);
    runner::SweepEngine engine; // jobs = 0 -> consult PCCS_JOBS
    unsetenv("PCCS_JOBS");
    EXPECT_EQ(engine.jobs(), 1u);

    const soc::SocSimulator sim(soc::xavierLike());
    const std::size_t gpu = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Gpu));
    const auto points = gpuSweepPoints(sim, gpu);
    const auto results = engine.evaluateBatch(sim, points);
    runner::SweepEngine parallel(4);
    EXPECT_EQ(results, parallel.evaluateBatch(sim, points));
}

TEST(SweepEngine, PccsJobsEnvSizesThePool)
{
    setenv("PCCS_JOBS", "3", 1);
    runner::SweepEngine engine;
    unsetenv("PCCS_JOBS");
    EXPECT_EQ(engine.jobs(), 3u);
}

TEST(SweepEngine, ParallelForCoversEveryIndexOnce)
{
    runner::SweepEngine engine(4);
    std::vector<int> counts(257, 0);
    engine.parallelFor(counts.size(), [&](std::size_t i) {
        ++counts[i]; // each index owned by exactly one worker
    });
    for (std::size_t i = 0; i < counts.size(); ++i)
        EXPECT_EQ(counts[i], 1) << "index " << i;
}

TEST(PointKey, SpeedAndProfileKeysDiffer)
{
    const soc::SocConfig cfg = soc::xavierLike();
    const soc::SocSimulator sim(cfg);
    const std::size_t gpu = static_cast<std::size_t>(
        cfg.puIndex(soc::PuKind::Gpu));
    const soc::KernelProfile k = calib::makeCalibrator(
        sim.model(), cfg.pus[gpu], 70.0);

    // external = 0 speed evaluations and standalone profiles live in
    // separate tables, so equal key fields must not alias results.
    runner::SweepEngine engine(1);
    engine.evaluate(sim, gpu, k, 0.0);
    engine.profile(sim, gpu, k);
    EXPECT_EQ(engine.cache().stats().hits, 0u);
    EXPECT_EQ(engine.cache().stats().misses, 2u);
}

TEST(RunResult, JsonContainsSpecSeriesAndTables)
{
    runner::RunResult r;
    r.spec.experiment = "unit_test";
    r.spec.title = "a \"quoted\" title";
    r.spec.paperRef = "Figure 0";
    r.spec.socName = "xavier-like";
    r.spec.puName = "GPU";
    r.spec.externalBw = {10.0, 20.0};
    r.kernels.push_back(
        {"bfs", 55.25, {{"actual", {99.0, 88.5}}}});
    r.tables.push_back({"summary", {"a", "b"}, {{"1", "2"}}});
    r.cache = {3, 9};

    const std::string json = r.toJson();
    EXPECT_NE(json.find("\"experiment\": \"unit_test\""),
              std::string::npos);
    EXPECT_NE(json.find("a \\\"quoted\\\" title"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"bfs\""), std::string::npos);
    EXPECT_NE(json.find("\"actual\""), std::string::npos);
    EXPECT_NE(json.find("\"summary\""), std::string::npos);
    EXPECT_NE(json.find("\"hits\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"misses\": 9"), std::string::npos);

    const std::string csv = r.toCsv();
    EXPECT_NE(csv.find("kernel,demand_gbps,series,"
                       "external_bw_gbps,value"),
              std::string::npos);
    EXPECT_NE(csv.find("bfs"), std::string::npos);
    EXPECT_NE(csv.find("# summary"), std::string::npos);
}

TEST(RunResult, JsonNumberIsRoundTrippableAndFiniteSafe)
{
    EXPECT_EQ(runner::jsonNumber(0.5), "0.5");
    const double v = 1.0 / 3.0;
    EXPECT_EQ(std::stod(runner::jsonNumber(v)), v);
    EXPECT_EQ(runner::jsonNumber(
                  std::numeric_limits<double>::quiet_NaN()),
              "null");
}

TEST(SpinBarrier, RendezvousMakesWritesVisibleAcrossPhases)
{
    // N threads repeatedly: write their slot, cross the barrier, and
    // check every other slot carries the current phase. Any missed
    // rendezvous or stale read trips the expectations; the phase
    // counter also proves the barrier is reusable back-to-back.
    constexpr unsigned kParties = 4;
    constexpr unsigned kPhases = 2000;
    runner::SpinBarrier barrier(kParties);
    std::vector<unsigned> slots(kParties, 0);
    std::atomic<unsigned> mismatches{0};
    {
        std::vector<std::jthread> threads;
        for (unsigned t = 0; t < kParties; ++t) {
            threads.emplace_back([&, t] {
                for (unsigned phase = 1; phase <= kPhases; ++phase) {
                    slots[t] = phase;
                    barrier.arriveAndWait();
                    for (unsigned o = 0; o < kParties; ++o) {
                        if (slots[o] != phase)
                            mismatches.fetch_add(1);
                    }
                    barrier.arriveAndWait();
                }
            });
        }
    }
    EXPECT_EQ(mismatches.load(), 0u);
    EXPECT_EQ(barrier.parties(), kParties);
}

TEST(SpinBarrier, SinglePartyNeverBlocks)
{
    runner::SpinBarrier barrier(1);
    for (int i = 0; i < 100; ++i)
        barrier.arriveAndWait();
    SUCCEED();
}
