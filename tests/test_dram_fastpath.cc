/**
 * @file
 * Differential fuzz for the saturated-path fast issue engine.
 *
 * Every configuration is run three ways — the per-cycle reference
 * loop, the event-driven loop with the bank-mask fast path (the
 * default), and the event-driven loop with PCCS_DRAM_FASTPATH=0
 * semantics (setDramFastPathEnabled(false)) forcing the retained
 * full-scan path — and all three must agree on every statistic,
 * per-source counter, and the final pending-request census. The
 * workloads are randomized per seed and deliberately hostile: mixed
 * read/write traffic, tiny queues so enqueue backpressure is constant,
 * write drains, refresh cadence, and scheduler quantum/shuffle/clear
 * ticks at shortened intervals. Source-skewed mixes target the
 * per-source rank tiers: a hot source camping most of the queue
 * (blacklist/batch-cap/starvation churn) and low-demand bursty
 * sources whose arrival FIFOs drain empty between token-bucket
 * bursts (activeSourceMask set/clear churn).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "dram/run_mode.hh"
#include "dram/system.hh"

namespace pccs::dram {
namespace {

/** Restore the process-wide fast-path flag on scope exit. */
class FastPathGuard
{
  public:
    explicit FastPathGuard(bool on) : saved_(dramFastPathEnabled())
    {
        setDramFastPathEnabled(on);
    }
    ~FastPathGuard() { setDramFastPathEnabled(saved_); }

  private:
    bool saved_;
};

/** Traffic shape of a fuzz configuration. */
enum class TrafficSkew
{
    /** The original per-seed random mix (moderate per-source load). */
    Mixed,
    /**
     * One source camps most of the queue while trickle sources dart
     * in and out: stresses blacklist formation (BLISS), batch caps
     * (PARBS/SMS), service-skew ranking (ATLAS/TCM), and the
     * starvation fallback.
     */
    HotSource,
    /**
     * Every source is a low-demand burster: the 8-line token cap
     * fills slowly, then flushes as one burst, so per-source arrival
     * FIFOs oscillate between empty and full and the
     * activeSourceMask/per-source occupancy masks churn constantly.
     */
    Bursts,
};

/**
 * A randomized small-queue system: per-seed traffic mix over 2
 * channels with 16 queue slots each, so saturation and queue-full
 * retry paths are exercised from the first few hundred cycles.
 */
std::unique_ptr<DramSystem>
buildFuzzSystem(std::string_view policy, std::uint64_t seed,
                DramRunMode mode, TrafficSkew skew = TrafficSkew::Mixed)
{
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
    DramConfig cfg = table1Config();
    cfg.channels = 2;
    cfg.requestBufferEntries = 16 * cfg.channels;

    // Shortened tick cadences so quantum/shuffle/blacklist-clear
    // events land inside the short fuzz window.
    SchedulerParams sp;
    sp.quantum = 1500;
    sp.starvationThreshold = 600;
    sp.tcmShuffleInterval = 700;
    sp.blissClearInterval = 900;
    sp.blissBlacklistThreshold = 2;
    sp.smsBatchCap = 8;
    sp.seed = seed * 31 + 5;

    auto sys = std::make_unique<DramSystem>(cfg, policy, sp, mode);
    switch (skew) {
    case TrafficSkew::Mixed: {
        const unsigned gens = 2 + static_cast<unsigned>(rng.next() % 3);
        for (unsigned s = 0; s < gens; ++s) {
            TrafficParams p;
            p.source = s;
            p.demand = 4.0 + 28.0 * rng.uniform();
            p.rowLocality = 0.3 + 0.65 * rng.uniform();
            p.writeFraction = 0.5 * rng.uniform();
            p.mlp = 8 + static_cast<unsigned>(rng.next() % 56);
            p.seed = seed * 131 + s;
            sys->addGenerator(p);
        }
        break;
    }
    case TrafficSkew::HotSource: {
        TrafficParams hot;
        hot.source = 0;
        hot.demand = 45.0 + 15.0 * rng.uniform();
        hot.rowLocality = 0.85 + 0.1 * rng.uniform();
        hot.writeFraction = 0.3 * rng.uniform();
        hot.mlp = 48 + static_cast<unsigned>(rng.next() % 16);
        hot.seed = seed * 131;
        sys->addGenerator(hot);
        const unsigned trickles =
            2 + static_cast<unsigned>(rng.next() % 2);
        for (unsigned s = 1; s <= trickles; ++s) {
            TrafficParams p;
            p.source = s;
            p.demand = 0.8 + 1.5 * rng.uniform();
            p.rowLocality = 0.3 + 0.5 * rng.uniform();
            p.writeFraction = 0.5 * rng.uniform();
            p.mlp = 2 + static_cast<unsigned>(rng.next() % 3);
            p.seed = seed * 131 + s;
            sys->addGenerator(p);
        }
        break;
    }
    case TrafficSkew::Bursts: {
        const unsigned gens = 3 + static_cast<unsigned>(rng.next() % 2);
        for (unsigned s = 0; s < gens; ++s) {
            TrafficParams p;
            p.source = s;
            p.demand = 1.5 + 2.5 * rng.uniform();
            p.rowLocality = 0.3 + 0.65 * rng.uniform();
            p.writeFraction = 0.5 * rng.uniform();
            p.mlp = 8 + static_cast<unsigned>(rng.next() % 9);
            p.seed = seed * 131 + s;
            sys->addGenerator(p);
        }
        break;
    }
    }
    return sys;
}

void
expectIdenticalStats(DramSystem &a, DramSystem &b, const char *label)
{
    SCOPED_TRACE(label);
    const ControllerStats &sa = a.controller().stats();
    const ControllerStats &sb = b.controller().stats();
    EXPECT_EQ(sa.reads, sb.reads);
    EXPECT_EQ(sa.writes, sb.writes);
    EXPECT_EQ(sa.rowHits, sb.rowHits);
    EXPECT_EQ(sa.rowMisses, sb.rowMisses);
    EXPECT_EQ(sa.refreshes, sb.refreshes);
    EXPECT_EQ(sa.bytesTransferred, sb.bytesTransferred);
    EXPECT_EQ(sa.completed, sb.completed);
    EXPECT_EQ(sa.totalLatency, sb.totalLatency);
    for (unsigned s = 0; s < Scheduler::maxSources; ++s) {
        EXPECT_EQ(sa.bytesPerSource[s], sb.bytesPerSource[s])
            << "source " << s;
        EXPECT_EQ(sa.completedPerSource[s], sb.completedPerSource[s])
            << "source " << s;
    }
    EXPECT_EQ(a.now(), b.now());
    EXPECT_EQ(a.controller().pendingRequests(),
              b.controller().pendingRequests());
}

/**
 * Segmented run: several short run() calls (instead of one long one)
 * so mid-flight queue states are crossed by the outer loop boundary,
 * plus a measurement reset partway to cover stats-window interplay.
 */
void
runSegmented(DramSystem &sys)
{
    sys.run(700);
    sys.run(300);
    sys.resetMeasurement();
    for (int i = 0; i < 5; ++i)
        sys.run(1100);
}

/** One three-way differential run of a (policy, seed, skew) triple. */
void
threeWayCheck(const std::string &policy, std::uint64_t seed,
              TrafficSkew skew)
{
    SCOPED_TRACE("seed " + std::to_string(seed));

    auto ref =
        buildFuzzSystem(policy, seed, DramRunMode::Reference, skew);
    runSegmented(*ref);

    // The flag is sampled at controller construction, so the
    // guard must wrap the build, not just the run.
    std::unique_ptr<DramSystem> fast;
    {
        FastPathGuard on(true);
        fast = buildFuzzSystem(policy, seed, DramRunMode::EventDriven,
                               skew);
    }
    runSegmented(*fast);

    std::unique_ptr<DramSystem> slow;
    {
        FastPathGuard off(false);
        slow = buildFuzzSystem(policy, seed, DramRunMode::EventDriven,
                               skew);
    }
    runSegmented(*slow);

    expectIdenticalStats(*ref, *fast, "reference vs fastpath");
    expectIdenticalStats(*ref, *slow, "reference vs full-scan");

    // The scratch buffers are reserved to queue capacity up
    // front; any regrowth under saturation is a regression.
    EXPECT_EQ(ref->controller().scratchReallocations(), 0u);
    EXPECT_EQ(fast->controller().scratchReallocations(), 0u);
    EXPECT_EQ(slow->controller().scratchReallocations(), 0u);
}

class FastPathDifferential
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FastPathDifferential, ThreeWayAgreement)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        threeWayCheck(GetParam(), seed, TrafficSkew::Mixed);
}

TEST_P(FastPathDifferential, ThreeWayAgreementHotSource)
{
    SCOPED_TRACE("skew HotSource");
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
        threeWayCheck(GetParam(), seed, TrafficSkew::HotSource);
}

TEST_P(FastPathDifferential, ThreeWayAgreementBursts)
{
    SCOPED_TRACE("skew Bursts");
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
        threeWayCheck(GetParam(), seed, TrafficSkew::Bursts);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, FastPathDifferential,
    ::testing::ValuesIn(schedulerNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

/** The env-var parse itself: only the literal "0" disables. */
TEST(FastPathFlag, SetterRoundTrip)
{
    const bool saved = dramFastPathEnabled();
    setDramFastPathEnabled(false);
    EXPECT_FALSE(dramFastPathEnabled());
    setDramFastPathEnabled(true);
    EXPECT_TRUE(dramFastPathEnabled());
    setDramFastPathEnabled(saved);
}

} // namespace
} // namespace pccs::dram
