/**
 * @file
 * Unit tests for the three-region PCCS slowdown model
 * (Equations 1-5 of the paper).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "pccs/model.hh"

namespace pccs::model {
namespace {

PccsParams
gpuLikeParams()
{
    // Roughly the paper's Table 7 Xavier GPU column.
    PccsParams p;
    p.normalBw = 38.1;
    p.intensiveBw = 96.2;
    p.mrmc = 4.9;
    p.cbp = 45.3;
    p.tbwdc = 87.2;
    p.rateN = 1.0;
    p.peakBw = 137.0;
    return p;
}

TEST(PccsParams, ValidityChecks)
{
    EXPECT_TRUE(gpuLikeParams().valid());
    PccsParams bad = gpuLikeParams();
    bad.peakBw = 0.0;
    EXPECT_FALSE(bad.valid());
    bad = gpuLikeParams();
    bad.intensiveBw = bad.normalBw - 1.0;
    EXPECT_FALSE(bad.valid());
    bad = gpuLikeParams();
    bad.cbp = 0.0;
    EXPECT_FALSE(bad.valid());
}

TEST(PccsParams, NoMinorRegionViaNan)
{
    PccsParams p = gpuLikeParams();
    EXPECT_FALSE(p.noMinorRegion());
    p.mrmc = std::numeric_limits<double>::quiet_NaN();
    p.normalBw = 0.0;
    EXPECT_TRUE(p.noMinorRegion());
    EXPECT_TRUE(p.valid());
}

TEST(Equation1, RegionClassification)
{
    const PccsModel m(gpuLikeParams());
    EXPECT_EQ(m.classify(0.0), Region::Minor);
    EXPECT_EQ(m.classify(38.1), Region::Minor); // boundary inclusive
    EXPECT_EQ(m.classify(38.2), Region::Normal);
    EXPECT_EQ(m.classify(96.2), Region::Normal);
    EXPECT_EQ(m.classify(96.3), Region::Intensive);
}

TEST(Equation1, DlaStyleNoMinorRegion)
{
    PccsParams p = gpuLikeParams();
    p.normalBw = 0.0;
    p.mrmc = std::numeric_limits<double>::quiet_NaN();
    const PccsModel m(p);
    EXPECT_EQ(m.classify(0.1), Region::Normal);
}

TEST(Equation2, MinorRegionLinearInExternalDemand)
{
    const PccsModel m(gpuLikeParams());
    // RS = 100 - MRMC * y / PBW.
    EXPECT_DOUBLE_EQ(m.relativeSpeed(10.0, 0.0), 100.0);
    EXPECT_NEAR(m.relativeSpeed(10.0, 137.0), 100.0 - 4.9, 1e-9);
    EXPECT_NEAR(m.relativeSpeed(10.0, 68.5), 100.0 - 4.9 / 2.0, 1e-9);
}

TEST(Equation2, MinorRegionIndependentOfOwnDemand)
{
    const PccsModel m(gpuLikeParams());
    EXPECT_DOUBLE_EQ(m.relativeSpeed(5.0, 50.0),
                     m.relativeSpeed(30.0, 50.0));
}

TEST(Equation3, PreContentionPieceMatchesMinor)
{
    const PccsModel m(gpuLikeParams());
    // x = 60 (normal region), y = 20: x + y < TBWDC and y < CBP.
    EXPECT_DOUBLE_EQ(m.relativeSpeed(60.0, 20.0),
                     m.relativeSpeed(10.0, 20.0));
}

TEST(Equation3, DropPiece)
{
    const PccsModel m(gpuLikeParams());
    // x = 60, y = 40: x + y = 100 > TBWDC = 87.2, y < CBP.
    const double expected = 100.0 - (100.0 - 87.2) * 1.0;
    EXPECT_NEAR(m.relativeSpeed(60.0, 40.0), expected, 1e-9);
}

TEST(Equation3, FlatPieceBeyondCbp)
{
    const PccsModel m(gpuLikeParams());
    const double at_cbp = m.relativeSpeed(60.0, 45.3);
    EXPECT_NEAR(m.relativeSpeed(60.0, 60.0), at_cbp, 0.6);
    EXPECT_NEAR(m.relativeSpeed(60.0, 100.0), at_cbp, 0.6);
    // Only the residual minor-line slope remains after CBP.
    EXPECT_LE(m.relativeSpeed(60.0, 100.0),
              m.relativeSpeed(60.0, 60.0));
}

TEST(Equation3, ContinuousAtCbp)
{
    const PccsModel m(gpuLikeParams());
    const double before = m.relativeSpeed(60.0, 45.3 - 1e-6);
    const double after = m.relativeSpeed(60.0, 45.3 + 1e-6);
    EXPECT_NEAR(before, after, 1e-3);
}

TEST(Equation4, RateIDerivation)
{
    const PccsModel m(gpuLikeParams());
    // rateI = rateN * (x + CBP - TBWDC) / CBP.
    const double expected = 1.0 * (110.0 + 45.3 - 87.2) / 45.3;
    EXPECT_NEAR(m.rateI(110.0), expected, 1e-9);
}

TEST(Equation4, RateIGrowsWithDemand)
{
    const PccsModel m(gpuLikeParams());
    EXPECT_GT(m.rateI(120.0), m.rateI(100.0));
}

TEST(Equation5, IntensiveDropsFromZeroExternal)
{
    const PccsModel m(gpuLikeParams());
    EXPECT_DOUBLE_EQ(m.relativeSpeed(110.0, 0.0), 100.0);
    // Immediate decline, much steeper than the minor slope.
    const double at_10 = m.relativeSpeed(110.0, 10.0);
    EXPECT_LT(at_10, 100.0 - 10.0 * m.rateI(110.0) + 1e-9);
    EXPECT_NEAR(at_10, 100.0 - 10.0 * m.rateI(110.0), 1e-9);
}

TEST(Equation5, IntensiveFlatBeyondCbp)
{
    const PccsModel m(gpuLikeParams());
    const double at_cbp = m.relativeSpeed(110.0, 45.3);
    EXPECT_NEAR(m.relativeSpeed(110.0, 90.0), at_cbp, 0.6);
}

TEST(Equation5, IntensiveReachesNormalReductionAtCbp)
{
    // By construction (Eq. 4) the intensive line meets the normal-
    // region reduction at the contention balance point.
    const PccsParams p = gpuLikeParams();
    const PccsModel m(p);
    const double x = 110.0;
    const double intensive_at_cbp = m.relativeSpeed(x, p.cbp);
    const double normal_formula =
        100.0 - (x + p.cbp - p.tbwdc) * p.rateN;
    EXPECT_NEAR(intensive_at_cbp, normal_formula, 1e-9);
}

TEST(PccsModel, MonotoneNonIncreasingInY)
{
    const PccsModel m(gpuLikeParams());
    for (double x : {5.0, 50.0, 70.0, 110.0, 130.0}) {
        double prev = 200.0;
        for (double y = 0.0; y <= 137.0; y += 1.0) {
            const double v = m.relativeSpeed(x, y);
            EXPECT_LE(v, prev + 1e-9) << "x=" << x << " y=" << y;
            prev = v;
        }
    }
}

TEST(PccsModel, MonotoneNonIncreasingInXWithinEachRegion)
{
    // The model is piecewise by region (and genuinely discontinuous at
    // the normal/intensive boundary), so monotonicity in the kernel's
    // own demand holds within a region, not globally.
    const PccsParams p = gpuLikeParams();
    const PccsModel m(p);
    const double ranges[3][2] = {{1.0, p.normalBw},
                                 {p.normalBw + 0.1, p.intensiveBw},
                                 {p.intensiveBw + 0.1, 130.0}};
    for (double y : {20.0, 50.0, 90.0}) {
        for (const auto &range : ranges) {
            double prev = 200.0;
            for (double x = range[0]; x <= range[1]; x += 0.5) {
                const double v = m.relativeSpeed(x, y);
                EXPECT_LE(v, prev + 1e-9) << "x=" << x << " y=" << y;
                prev = v;
            }
        }
    }
}

TEST(PccsModel, ClampedToValidRange)
{
    PccsParams p = gpuLikeParams();
    p.rateN = 50.0; // absurd rate would drive RS negative
    const PccsModel m(p);
    for (double y = 0.0; y <= 137.0; y += 10.0) {
        const double v = m.relativeSpeed(120.0, y);
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 100.0);
    }
}

TEST(PccsModel, SlowdownFactorInverse)
{
    const PccsModel m(gpuLikeParams());
    const double rs = m.relativeSpeed(60.0, 50.0);
    EXPECT_NEAR(m.slowdownFactor(60.0, 50.0), 100.0 / rs, 1e-9);
}

TEST(PccsModel, RegionNames)
{
    EXPECT_STREQ(regionName(Region::Minor), "minor");
    EXPECT_STREQ(regionName(Region::Normal), "normal");
    EXPECT_STREQ(regionName(Region::Intensive), "intensive");
}

TEST(PccsModelDeath, NegativeDemandPanics)
{
    const PccsModel m(gpuLikeParams());
    EXPECT_DEATH(m.relativeSpeed(-1.0, 0.0), "negative");
}

TEST(PccsModelDeath, InvalidParamsPanic)
{
    PccsParams p = gpuLikeParams();
    p.peakBw = -1.0;
    EXPECT_DEATH(PccsModel{p}, "invalid");
}

} // namespace
} // namespace pccs::model
