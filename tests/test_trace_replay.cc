/**
 * @file
 * Tests for trace-driven DRAM traffic replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "dram/system.hh"

namespace pccs::dram {
namespace {

std::string
writeTempTrace(const std::string &content)
{
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "pccs_trace_test.trc")
            .string();
    std::ofstream out(path);
    out << content;
    return path;
}

TEST(LoadTrace, ParsesReadsWritesAndBareAddresses)
{
    const std::string path = writeTempTrace(
        "# a comment line\n"
        "R 0x1000\n"
        "W 0x2000\n"
        "0x3000\n"
        "r 4096\n"
        "\n");
    const auto trace = loadTrace(path);
    std::remove(path.c_str());
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace[0].addr, 0x1000u);
    EXPECT_FALSE(trace[0].isWrite);
    EXPECT_EQ(trace[1].addr, 0x2000u);
    EXPECT_TRUE(trace[1].isWrite);
    EXPECT_EQ(trace[2].addr, 0x3000u);
    EXPECT_FALSE(trace[2].isWrite);
    EXPECT_EQ(trace[3].addr, 4096u);
}

TEST(LoadTrace, SkipsMalformedLinesWithWarning)
{
    const std::string path = writeTempTrace(
        "R 0x1000\n"
        "R not-an-address\n"
        "W\n"
        "0x2000\n");
    const auto trace = loadTrace(path);
    std::remove(path.c_str());
    ASSERT_EQ(trace.size(), 2u);
}

TEST(LoadTraceDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(loadTrace("/nonexistent/file.trc"),
                ::testing::ExitedWithCode(1), "cannot open");
}

std::vector<TraceEntry>
sequentialTrace(unsigned lines, unsigned line_bytes = 64)
{
    std::vector<TraceEntry> t;
    for (unsigned i = 0; i < lines; ++i)
        t.push_back({Addr{i} * line_bytes, false});
    return t;
}

TEST(TraceReplay, LoopingReplayAchievesDemand)
{
    DramSystem sys(table1Config(), "FR-FCFS");
    ReplayParams p;
    p.source = 0;
    p.demand = 25.0;
    sys.addReplay(p, sequentialTrace(4096));
    sys.run(10000);
    sys.resetMeasurement();
    sys.run(50000);
    const double bw =
        static_cast<double>(sys.replay(0).completedLines()) * 64.0 /
        (50000 * table1Config().timing.cycleSeconds()) / 1e9;
    EXPECT_NEAR(bw, 25.0, 2.0);
}

TEST(TraceReplay, NonLoopingStopsAtTraceEnd)
{
    DramSystem sys(table1Config(), "FR-FCFS");
    ReplayParams p;
    p.source = 0;
    p.demand = 50.0;
    p.loop = false;
    sys.addReplay(p, sequentialTrace(100));
    sys.run(60000);
    EXPECT_TRUE(sys.replay(0).exhausted());
    EXPECT_EQ(sys.replay(0).issuedLines(), 100u);
    EXPECT_EQ(sys.replay(0).completedLines(), 100u);
}

TEST(TraceReplay, SequentialTraceGetsHighRowHitRate)
{
    DramSystem sys(table1Config(), "FR-FCFS");
    ReplayParams p;
    p.source = 0;
    p.demand = 40.0;
    sys.addReplay(p, sequentialTrace(8192));
    sys.run(40000);
    EXPECT_GT(sys.controller().stats().rowBufferHitRate(), 0.85);
}

TEST(TraceReplay, CoexistsWithSyntheticTraffic)
{
    DramSystem sys(table1Config(), "ATLAS");
    ReplayParams rp;
    rp.source = 0;
    rp.demand = 20.0;
    sys.addReplay(rp, sequentialTrace(4096));
    TrafficParams tp;
    tp.source = 1;
    tp.demand = 30.0;
    sys.addGenerator(tp);
    sys.run(40000);
    EXPECT_GT(sys.replay(0).completedLines(), 0u);
    EXPECT_GT(sys.generator(0).completedLines(), 0u);
}

TEST(TraceReplay, AddressesWrappedIntoSpan)
{
    // Addresses beyond the port's space must be folded, not crash.
    DramSystem sys(table1Config(), "FR-FCFS");
    std::vector<TraceEntry> t{{~Addr{0}, false}, {Addr{1} << 60, true}};
    ReplayParams p;
    p.source = 0;
    p.demand = 10.0;
    sys.addReplay(p, t);
    sys.run(2000);
    EXPECT_GT(sys.replay(0).completedLines(), 0u);
}

TEST(TraceReplayDeath, DuplicateSourceAcrossKindsDies)
{
    DramSystem sys(table1Config(), "FR-FCFS");
    TrafficParams tp;
    tp.source = 0;
    tp.demand = 10.0;
    sys.addGenerator(tp);
    ReplayParams rp;
    rp.source = 0;
    rp.demand = 10.0;
    EXPECT_DEATH(sys.addReplay(rp, sequentialTrace(16)), "duplicate");
}

TEST(TraceReplayDeath, EmptyTraceDies)
{
    DramSystem sys(table1Config(), "FR-FCFS");
    ReplayParams p;
    p.source = 0;
    EXPECT_DEATH(sys.addReplay(p, {}), "non-empty");
}

} // namespace
} // namespace pccs::dram
