/**
 * @file
 * Unit tests for the ASCII table / CSV writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

namespace pccs {
namespace {

TEST(Table, HeadersOnly)
{
    Table t({"a", "b"});
    EXPECT_EQ(t.rows(), 0u);
    const std::string s = t.str();
    EXPECT_NE(s.find("a"), std::string::npos);
    EXPECT_NE(s.find("b"), std::string::npos);
}

TEST(Table, RowAlignment)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "2"});
    const std::string s = t.str();
    // Every rendered line must have the same length (aligned columns).
    std::istringstream is(s);
    std::string line;
    std::size_t len = 0;
    while (std::getline(is, line)) {
        if (len == 0)
            len = line.size();
        EXPECT_EQ(line.size(), len) << "misaligned line: " << line;
    }
}

TEST(Table, DoubleRowFormatting)
{
    Table t({"bench", "err"});
    t.addRow("bfs", {12.345}, 1);
    EXPECT_NE(t.str().find("12.3"), std::string::npos);
}

TEST(Table, CsvFormat)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    t.addRow({"3", "4"});
    EXPECT_EQ(t.csv(), "a,b\n1,2\n3,4\n");
}

TEST(Table, StreamOperator)
{
    Table t({"h"});
    t.addRow({"v"});
    std::ostringstream os;
    os << t;
    EXPECT_EQ(os.str(), t.str());
}

TEST(Table, RowCount)
{
    Table t({"h"});
    t.addRow({"1"});
    t.addRow({"2"});
    t.addRow({"3"});
    EXPECT_EQ(t.rows(), 3u);
}

TEST(FmtDouble, Precision)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(3.14159, 0), "3");
    EXPECT_EQ(fmtDouble(-1.5, 1), "-1.5");
    EXPECT_EQ(fmtDouble(0.0, 3), "0.000");
}

TEST(TableDeath, WrongCellCountPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(TableDeath, EmptyHeadersPanics)
{
    EXPECT_DEATH(Table({}), "column");
}

} // namespace
} // namespace pccs
