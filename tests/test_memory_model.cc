/**
 * @file
 * Unit and property tests for the SoC shared-memory contention model
 * (effective bandwidth + fairness allocation).
 */

#include <gtest/gtest.h>

#include "soc/memory_model.hh"

namespace pccs::soc {
namespace {

MemoryParams
xavierMem()
{
    MemoryParams m;
    m.peakBandwidth = 137.0;
    return m;
}

TEST(EffectiveBandwidth, SingleStreamingSourceNearBase)
{
    SharedMemorySystem mem(xavierMem());
    const GBps eff = mem.effectiveBandwidth({{100.0, 0.97, 1.0}});
    EXPECT_NEAR(eff, 137.0 * 0.93, 2.0);
}

TEST(EffectiveBandwidth, IdleSystemIsBase)
{
    SharedMemorySystem mem(xavierMem());
    EXPECT_DOUBLE_EQ(mem.effectiveBandwidth({}),
                     137.0 * xavierMem().baseEfficiency);
}

TEST(EffectiveBandwidth, MixingDegrades)
{
    SharedMemorySystem mem(xavierMem());
    const GBps solo = mem.effectiveBandwidth({{120.0, 0.97, 1.0}});
    const GBps duo = mem.effectiveBandwidth(
        {{60.0, 0.97, 1.0}, {60.0, 0.97, 1.0}});
    EXPECT_LT(duo, solo - 1.0);
}

TEST(EffectiveBandwidth, MoreSourcesDegradeMore)
{
    SharedMemorySystem mem(xavierMem());
    const GBps duo = mem.effectiveBandwidth(
        {{70.0, 0.97, 1.0}, {70.0, 0.97, 1.0}});
    const GBps trio = mem.effectiveBandwidth(
        {{47.0, 0.97, 1.0}, {47.0, 0.97, 1.0}, {46.0, 0.97, 1.0}});
    EXPECT_LT(trio, duo);
}

TEST(EffectiveBandwidth, PoorLocalityDegrades)
{
    SharedMemorySystem mem(xavierMem());
    const GBps good = mem.effectiveBandwidth({{80.0, 0.97, 1.0}});
    const GBps bad = mem.effectiveBandwidth({{80.0, 0.50, 1.0}});
    EXPECT_LT(bad, good - 5.0);
}

TEST(EffectiveBandwidth, FloorHolds)
{
    SharedMemorySystem mem(xavierMem());
    std::vector<BandwidthDemand> many;
    for (int i = 0; i < 16; ++i)
        many.push_back({50.0, 0.1, 1.0});
    EXPECT_GE(mem.effectiveBandwidth(many),
              137.0 * xavierMem().minEfficiency - 1e-9);
}

TEST(EffectiveBandwidth, DemandSaturationFreezesDegradation)
{
    // Past full utilization, more *demand* must not further reduce the
    // effective bandwidth (this produces the flat curve tails).
    SharedMemorySystem mem(xavierMem());
    const GBps at_sat = mem.effectiveBandwidth(
        {{70.0, 0.97, 1.0}, {70.0, 0.97, 1.0}});
    const GBps beyond = mem.effectiveBandwidth(
        {{70.0, 0.97, 1.0}, {500.0, 0.97, 1.0}});
    // Not equal (shares differ) but the heavier case cannot collapse.
    EXPECT_GT(beyond, at_sat * 0.9);
}

TEST(WaterFill, AllMetUnderCapacity)
{
    SharedMemorySystem mem(xavierMem());
    const auto res =
        mem.allocate({{30.0, 0.97, 1.0}, {40.0, 0.97, 1.0}});
    EXPECT_DOUBLE_EQ(res.grants[0], 30.0);
    EXPECT_DOUBLE_EQ(res.grants[1], 40.0);
}

TEST(WaterFill, SmallDemandProtected)
{
    SharedMemorySystem mem(xavierMem());
    const auto res =
        mem.allocate({{10.0, 0.97, 1.0}, {500.0, 0.97, 1.0}});
    EXPECT_NEAR(res.grants[0], 10.0, 1e-6);
    EXPECT_LT(res.grants[1], 500.0);
}

TEST(WaterFill, EqualDemandsSplitEqually)
{
    SharedMemorySystem mem(xavierMem());
    const auto res =
        mem.allocate({{200.0, 0.97, 1.0}, {200.0, 0.97, 1.0}});
    EXPECT_NEAR(res.grants[0], res.grants[1], 1e-6);
    EXPECT_NEAR(res.grants[0] + res.grants[1], res.effectiveBandwidth,
                1e-6);
}

TEST(WaterFill, WeightsBiasShares)
{
    SharedMemorySystem mem(xavierMem());
    const auto res =
        mem.allocate({{200.0, 0.97, 2.0}, {200.0, 0.97, 1.0}});
    EXPECT_NEAR(res.grants[0], 2.0 * res.grants[1], 1e-6);
}

TEST(WaterFill, LoadRatioSaturatesAtOne)
{
    SharedMemorySystem mem(xavierMem());
    const auto light = mem.allocate({{30.0, 0.97, 1.0}});
    EXPECT_LT(light.loadRatio, 1.0);
    const auto heavy =
        mem.allocate({{300.0, 0.97, 1.0}, {300.0, 0.97, 1.0}});
    EXPECT_NEAR(heavy.loadRatio, 1.0, 1e-9);
}

TEST(Proportional, NoReductionBelowPeak)
{
    MemoryParams m = xavierMem();
    m.policy = AllocationPolicy::Proportional;
    SharedMemorySystem mem(m);
    const auto res =
        mem.allocate({{60.0, 0.97, 1.0}, {70.0, 0.97, 1.0}});
    // The Gables assumption: total below the *nominal* peak -> all met.
    EXPECT_DOUBLE_EQ(res.grants[0], 60.0);
    EXPECT_DOUBLE_EQ(res.grants[1], 70.0);
}

TEST(Proportional, ProRatedAbovePeak)
{
    MemoryParams m = xavierMem();
    m.policy = AllocationPolicy::Proportional;
    SharedMemorySystem mem(m);
    const auto res =
        mem.allocate({{100.0, 0.97, 1.0}, {100.0, 0.97, 1.0}});
    EXPECT_NEAR(res.grants[0], 100.0 * 137.0 / 200.0, 1e-9);
    EXPECT_NEAR(res.grants[1], res.grants[0], 1e-9);
}

TEST(MemoryParams, ScaledChangesOnlyPeak)
{
    const MemoryParams m = xavierMem();
    const MemoryParams s = m.scaled(0.5);
    EXPECT_DOUBLE_EQ(s.peakBandwidth, m.peakBandwidth * 0.5);
    EXPECT_DOUBLE_EQ(s.baseEfficiency, m.baseEfficiency);
    EXPECT_DOUBLE_EQ(s.mixPenalty, m.mixPenalty);
}

/** Water-filling conservation property over many demand patterns. */
class WaterFillProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(WaterFillProperty, ConservationAndCaps)
{
    const auto [n_sources, seed] = GetParam();
    SharedMemorySystem mem(xavierMem());
    std::vector<BandwidthDemand> demands;
    unsigned long long s = seed + 1;
    auto next = [&s]() {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<double>(s >> 11) / (1ull << 53);
    };
    for (int i = 0; i < n_sources; ++i)
        demands.push_back(
            {next() * 150.0, 0.5 + 0.5 * next(), 0.5 + 2.0 * next()});

    const auto res = mem.allocate(demands);
    double total_demand = 0.0, total_grant = 0.0;
    for (std::size_t i = 0; i < demands.size(); ++i) {
        // No source ever gets more than it asked for.
        EXPECT_LE(res.grants[i], demands[i].demand + 1e-9);
        EXPECT_GE(res.grants[i], 0.0);
        total_demand += demands[i].demand;
        total_grant += res.grants[i];
    }
    // Grants sum to min(total demand, effective bandwidth).
    EXPECT_NEAR(total_grant,
                std::min(total_demand, res.effectiveBandwidth), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, WaterFillProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(11, 22, 33)));

} // namespace
} // namespace pccs::soc
