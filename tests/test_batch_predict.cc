/**
 * @file
 * The scalar-vs-batch parity oracle: the structure-of-arrays kernels
 * of PccsModel and GablesModel must be bit-exact with the scalar
 * `relativeSpeed` path — same operations, same order per point — on
 * dense grids, at the exact region boundaries, on the NaN-mrmc (DLA)
 * parameterization, and under randomized parameters and inputs.
 * Non-finite inputs must be rejected (or passed through) identically
 * by both paths.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hh"
#include "gables/gables.hh"
#include "pccs/batch.hh"
#include "pccs/corun.hh"
#include "pccs/model.hh"
#include "pccs/phases.hh"

namespace pccs::model {
namespace {

PccsParams
gpuLikeParams()
{
    // Roughly the paper's Table 7 Xavier GPU column.
    PccsParams p;
    p.normalBw = 38.1;
    p.intensiveBw = 96.2;
    p.mrmc = 4.9;
    p.cbp = 45.3;
    p.tbwdc = 87.2;
    p.rateN = 1.0;
    p.peakBw = 137.0;
    return p;
}

PccsParams
dlaLikeParams()
{
    // The paper's DLA case: no minor region (mrmc is NaN).
    PccsParams p = gpuLikeParams();
    p.normalBw = 0.0;
    p.mrmc = std::numeric_limits<double>::quiet_NaN();
    return p;
}

/** Bitwise equality: catches even sign-of-zero and NaN differences. */
::testing::AssertionResult
bitEqual(double a, double b)
{
    if (std::bit_cast<std::uint64_t>(a) ==
        std::bit_cast<std::uint64_t>(b))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a << " and " << b << " differ bitwise";
}

/** Assert batch == scalar, pointwise and broadcast, on (xs, ys). */
void
expectParity(const SlowdownPredictor &scalar, const BatchPredictor &bp,
             const std::vector<double> &xs, const std::vector<double> &ys)
{
    ASSERT_EQ(xs.size(), ys.size());
    std::vector<double> speeds(xs.size(), -1.0);
    bp.relativeSpeedBatch(xs, ys, speeds);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_TRUE(bitEqual(speeds[i],
                             scalar.relativeSpeed(xs[i], ys[i])))
            << "x=" << xs[i] << " y=" << ys[i];
    }
}

TEST(BatchParity, PccsDenseGrid)
{
    const PccsModel m(gpuLikeParams());
    std::vector<double> xs, ys;
    for (double x = 0.0; x <= 140.0; x += 0.7) {
        for (double y = 0.0; y <= 150.0; y += 3.1) {
            xs.push_back(x);
            ys.push_back(y);
        }
    }
    expectParity(m, m, xs, ys);
}

TEST(BatchParity, PccsRegionBoundariesExact)
{
    const PccsParams p = gpuLikeParams();
    const PccsModel m(p);
    // The exact classification boundaries (x == normalBw inclusive to
    // Minor, x == intensiveBw inclusive to Normal) and their
    // one-ulp-ish neighbors, against assorted external demands
    // including the y-side boundaries (CBP, TBWDC - x, peak).
    std::vector<double> xs, ys;
    const double x_edges[] = {
        p.normalBw, std::nextafter(p.normalBw, 1e300),
        std::nextafter(p.normalBw, 0.0), p.intensiveBw,
        std::nextafter(p.intensiveBw, 1e300),
        std::nextafter(p.intensiveBw, 0.0)};
    for (double x : x_edges) {
        for (double y : {0.0, p.cbp, std::nextafter(p.cbp, 1e300),
                         p.tbwdc - x, p.peakBw, p.peakBw + 10.0}) {
            if (y < 0.0)
                continue;
            xs.push_back(x);
            ys.push_back(y);
        }
    }
    expectParity(m, m, xs, ys);
    // The batched values at the boundaries follow the scalar
    // classification: x == normalBw evaluates the minor curve,
    // x == intensiveBw the normal curve.
    std::vector<double> speeds(2, 0.0);
    const std::vector<double> bx{p.normalBw, p.intensiveBw};
    const std::vector<double> by{p.peakBw, p.peakBw};
    m.relativeSpeedBatch(bx, by, speeds);
    EXPECT_EQ(m.classify(p.normalBw), Region::Minor);
    EXPECT_TRUE(
        bitEqual(speeds[0], m.relativeSpeed(p.normalBw, p.peakBw)));
    EXPECT_EQ(m.classify(p.intensiveBw), Region::Normal);
    EXPECT_TRUE(
        bitEqual(speeds[1], m.relativeSpeed(p.intensiveBw, p.peakBw)));
}

TEST(BatchParity, PccsNoMinorRegionDlaCase)
{
    const PccsModel m(dlaLikeParams());
    std::vector<double> xs, ys;
    for (double x : {0.0, 0.1, 10.0, 50.0, 96.2, 96.3, 120.0}) {
        for (double y = 0.0; y <= 150.0; y += 2.3) {
            xs.push_back(x);
            ys.push_back(y);
        }
    }
    expectParity(m, m, xs, ys);
    // With no minor region the (empty) minor curve is flat at 100%.
    std::vector<double> speed(1, 0.0);
    m.relativeSpeedBatch(std::vector<double>{0.0},
                         std::vector<double>{137.0}, speed);
    EXPECT_TRUE(bitEqual(speed[0], 100.0));
}

TEST(BatchParity, PccsBroadcastMatchesPairwise)
{
    const PccsModel m(gpuLikeParams());
    std::vector<double> xs;
    for (double x = 0.0; x <= 140.0; x += 0.9)
        xs.push_back(x);
    const double y = 52.7;
    std::vector<double> broadcast(xs.size(), 0.0);
    m.relativeSpeedBroadcast(xs, y, broadcast);
    const std::vector<double> ys(xs.size(), y);
    std::vector<double> pairwise(xs.size(), 0.0);
    m.relativeSpeedBatch(xs, ys, pairwise);
    for (std::size_t i = 0; i < xs.size(); ++i)
        EXPECT_TRUE(bitEqual(broadcast[i], pairwise[i]));
}

TEST(BatchParity, PropertyRandomParamsAndBatches)
{
    // Randomized models x randomized structure-of-arrays batches:
    // scalar and batch must agree bitwise everywhere, including at
    // demands snapped onto the region boundaries.
    Rng rng(0xC0FFEEull);
    for (int trial = 0; trial < 200; ++trial) {
        PccsParams p;
        p.peakBw = rng.uniform(50.0, 250.0);
        p.normalBw = rng.uniform(0.0, 0.5 * p.peakBw);
        p.intensiveBw =
            p.normalBw + rng.uniform(0.0, 0.6 * p.peakBw);
        p.cbp = rng.uniform(1.0, p.peakBw);
        p.tbwdc = rng.uniform(0.0, 1.2 * p.peakBw);
        p.rateN = rng.uniform(0.0, 3.0);
        p.mrmc = rng.chance(0.25)
                     ? std::numeric_limits<double>::quiet_NaN()
                     : rng.uniform(0.0, 12.0);
        if (p.noMinorRegion())
            p.normalBw = 0.0;
        ASSERT_TRUE(p.valid());
        const PccsModel m(p);

        std::vector<double> xs, ys;
        for (int i = 0; i < 256; ++i) {
            double x = rng.uniform(0.0, 1.5 * p.peakBw);
            if (rng.chance(0.1))
                x = p.normalBw; // boundary, exactly
            else if (rng.chance(0.1))
                x = p.intensiveBw;
            double y = rng.uniform(0.0, 1.5 * p.peakBw);
            if (rng.chance(0.1))
                y = p.cbp;
            xs.push_back(x);
            ys.push_back(y);
        }
        expectParity(m, m, xs, ys);
    }
}

TEST(BatchParity, InfiniteInputsBehaveLikeScalar)
{
    // +inf is accepted by both paths (it is >= 0) and must produce
    // the same value; the parity oracle covers it like any input.
    const PccsModel m(gpuLikeParams());
    const double inf = std::numeric_limits<double>::infinity();
    expectParity(m, m, {inf, 10.0, inf}, {5.0, inf, inf});
    const gables::GablesModel g(137.0);
    expectParity(g, g, {inf, 10.0}, {5.0, inf});
}

TEST(BatchParityDeath, NonFiniteInputsRejectedConsistently)
{
    const PccsModel m(gpuLikeParams());
    const double nan = std::numeric_limits<double>::quiet_NaN();
    // Scalar path panics on NaN (fails the >= 0 check)...
    EXPECT_DEATH(m.relativeSpeed(nan, 1.0), "negative");
    EXPECT_DEATH(m.relativeSpeed(1.0, nan), "negative");
    // ...and the batch path panics identically, even when the bad
    // point is buried in the middle of a batch.
    const std::vector<double> xs{1.0, nan, 2.0};
    const std::vector<double> ys{1.0, 1.0, 1.0};
    std::vector<double> out(3, 0.0);
    EXPECT_DEATH(m.relativeSpeedBatch(xs, ys, out), "negative");
    const std::vector<double> ys_nan{1.0, 1.0, nan};
    EXPECT_DEATH(m.relativeSpeedBatch(ys, ys_nan, out), "negative");
    EXPECT_DEATH(m.relativeSpeedBroadcast(xs, 1.0, out), "negative");

    const gables::GablesModel g(137.0);
    EXPECT_DEATH(g.relativeSpeed(nan, 1.0), "negative");
    EXPECT_DEATH(g.relativeSpeedBatch(xs, ys, out), "negative");
    // Gables' scalar path short-circuits x <= 0 before validating y;
    // the batch path must not reject what the scalar path accepts.
    EXPECT_TRUE(bitEqual(g.relativeSpeed(0.0, nan), 100.0));
    std::vector<double> one(1, 0.0);
    g.relativeSpeedBatch(std::vector<double>{0.0},
                         std::vector<double>{nan}, one);
    EXPECT_TRUE(bitEqual(one[0], 100.0));
}

TEST(BatchParityDeath, MismatchedSpansPanic)
{
    const PccsModel m(gpuLikeParams());
    const std::vector<double> xs{1.0, 2.0};
    const std::vector<double> ys{1.0};
    std::vector<double> out(2, 0.0);
    EXPECT_DEATH(m.relativeSpeedBatch(xs, ys, out), "lengths");
    std::vector<double> small(1, 0.0);
    EXPECT_DEATH(m.relativeSpeedBroadcast(xs, 1.0, small), "lengths");
}

TEST(BatchParity, GablesDenseGridAndEdges)
{
    const gables::GablesModel g(137.0);
    std::vector<double> xs, ys;
    for (double x = 0.0; x <= 200.0; x += 1.7) {
        for (double y : {0.0, 30.0, 136.9, 137.0,
                         std::nextafter(137.0, 1e300), 200.0}) {
            xs.push_back(x);
            ys.push_back(y);
        }
    }
    xs.push_back(0.0); // zero own demand: 100% by definition
    ys.push_back(500.0);
    expectParity(g, g, xs, ys);
}

TEST(BatchParity, ScalarAdapterMatchesNativeKernel)
{
    const PccsModel m(gpuLikeParams());
    const ScalarBatchAdapter adapter(m);
    std::vector<double> xs, ys;
    Rng rng(42);
    for (int i = 0; i < 512; ++i) {
        xs.push_back(rng.uniform(0.0, 150.0));
        ys.push_back(rng.uniform(0.0, 150.0));
    }
    const std::vector<double> native = m.relativeSpeeds(xs, ys);
    const std::vector<double> adapted = adapter.relativeSpeeds(xs, ys);
    for (std::size_t i = 0; i < xs.size(); ++i)
        EXPECT_TRUE(bitEqual(native[i], adapted[i]));
}

TEST(BatchParity, BatchInterfaceDiscovery)
{
    const PccsModel m(gpuLikeParams());
    const gables::GablesModel g(137.0);
    EXPECT_NE(batchInterface(m), nullptr);
    EXPECT_NE(batchInterface(g), nullptr);

    // A scalar-only predictor exposes no native batch interface.
    class ScalarOnly final : public SlowdownPredictor
    {
      public:
        const char *name() const override { return "scalar-only"; }
        double relativeSpeed(GBps, GBps y) const override
        {
            return y > 50.0 ? 50.0 : 100.0;
        }
    };
    const ScalarOnly s;
    EXPECT_EQ(batchInterface(s), nullptr);
}

/**
 * The batched co-run solver must match the pre-batching algorithm:
 * per round, y_i = sum of co-runners' pressures, rs_i =
 * predictPiecewise(model_i, phases_i, y_i), then damped refinement.
 */
std::vector<double>
referenceCorun(const std::vector<CorunInput> &inputs,
               const CorunPredictOptions &opts)
{
    const std::size_t n = inputs.size();
    std::vector<double> pressure(n);
    for (std::size_t i = 0; i < n; ++i)
        pressure[i] = inputs[i].meanDemand();
    std::vector<double> rs(n, 100.0);
    const unsigned rounds = 1 + opts.refinementIterations;
    for (unsigned round = 0; round < rounds; ++round) {
        for (std::size_t i = 0; i < n; ++i) {
            double y = 0.0;
            for (std::size_t j = 0; j < n; ++j)
                if (j != i)
                    y += pressure[j];
            rs[i] = predictPiecewise(*inputs[i].model,
                                     inputs[i].phases, y);
        }
        if (round + 1 < rounds) {
            for (std::size_t i = 0; i < n; ++i) {
                const double target =
                    inputs[i].meanDemand() * rs[i] / 100.0;
                pressure[i] += opts.damping * (target - pressure[i]);
            }
        }
    }
    return rs;
}

TEST(BatchParity, CorunSolverMatchesScalarReference)
{
    const PccsModel gpu(gpuLikeParams());
    const PccsModel dla(dlaLikeParams());
    const gables::GablesModel gab(137.0);

    std::vector<CorunInput> inputs(3);
    inputs[0].model = &gpu;
    inputs[0].phases = {{70.0, 0.5}, {20.0, 0.3}, {110.0, 0.2}};
    inputs[1].model = &dla;
    inputs[1].phases = {{45.0, 1.0}};
    inputs[2].model = &gab;
    inputs[2].phases = {{30.0, 0.6}, {0.0, 0.0}, {60.0, 0.4}};

    for (unsigned refine : {0u, 1u, 5u}) {
        CorunPredictOptions opts;
        opts.refinementIterations = refine;
        const auto batched = predictCorun(inputs, opts);
        const auto reference = referenceCorun(inputs, opts);
        ASSERT_EQ(batched.size(), reference.size());
        for (std::size_t i = 0; i < batched.size(); ++i) {
            EXPECT_TRUE(bitEqual(batched[i], reference[i]))
                << "refine=" << refine << " i=" << i;
        }
    }
}

} // namespace
} // namespace pccs::model
