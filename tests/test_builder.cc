/**
 * @file
 * Tests for the five-step model-construction algorithm (Section 3.2):
 * planted-parameter recovery on synthetic matrices plus end-to-end
 * construction on the simulated SoCs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "pccs/builder.hh"

namespace pccs::model {
namespace {

/**
 * Generate a calibration matrix from a known PccsModel: the builder
 * must approximately recover the planted parameters.
 */
calib::CalibrationMatrix
matrixFromModel(const PccsModel &model, std::size_t n, std::size_t cols,
                GBps max_std, GBps max_ext)
{
    calib::CalibrationMatrix m;
    for (std::size_t i = 0; i < n; ++i)
        m.standaloneBw.push_back(max_std * (i + 1) /
                                 static_cast<double>(n));
    for (std::size_t j = 0; j < cols; ++j)
        m.externalBw.push_back(max_ext * (j + 1) /
                               static_cast<double>(cols));
    m.rela.assign(n, std::vector<double>(cols, 100.0));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            m.rela[i][j] = model.relativeSpeed(m.standaloneBw[i],
                                               m.externalBw[j]);
    return m;
}

PccsParams
planted()
{
    PccsParams p;
    p.normalBw = 40.0;
    p.intensiveBw = 100.0;
    p.mrmc = 5.0;
    p.cbp = 50.0;
    p.tbwdc = 90.0;
    p.rateN = 1.2;
    p.peakBw = 137.0;
    return p;
}

TEST(Builder, RecoversPlantedBoundaries)
{
    const PccsModel model(planted());
    const auto m = matrixFromModel(model, 20, 20, 130.0, 100.0);
    const PccsParams rec = buildModelParams(m, 137.0);
    EXPECT_NEAR(rec.normalBw, planted().normalBw, 15.0);
    EXPECT_NEAR(rec.tbwdc, planted().tbwdc, 15.0);
    EXPECT_NEAR(rec.cbp, planted().cbp, 12.0);
    EXPECT_NEAR(rec.rateN, planted().rateN, 0.35);
    EXPECT_FALSE(rec.noMinorRegion());
}

TEST(Builder, RecoveredModelPredictsPlantedModel)
{
    // The real acceptance criterion: the reconstructed model agrees
    // with the planted one over the whole (x, y) plane.
    const PccsModel model(planted());
    const auto m = matrixFromModel(model, 20, 20, 130.0, 100.0);
    const PccsModel rec(buildModelParams(m, 137.0));
    double worst = 0.0;
    for (double x = 5.0; x <= 130.0; x += 5.0)
        for (double y = 0.0; y <= 100.0; y += 5.0)
            worst = std::max(worst,
                             std::fabs(rec.relativeSpeed(x, y) -
                                       model.relativeSpeed(x, y)));
    EXPECT_LT(worst, 15.0);
    // Average error should be much smaller than worst-case.
    double sum = 0.0;
    int count = 0;
    for (double x = 5.0; x <= 130.0; x += 5.0)
        for (double y = 0.0; y <= 100.0; y += 5.0, ++count)
            sum += std::fabs(rec.relativeSpeed(x, y) -
                             model.relativeSpeed(x, y));
    EXPECT_LT(sum / count, 4.0);
}

TEST(Builder, FlatMatrixMeansEverythingMinor)
{
    calib::CalibrationMatrix m;
    for (int i = 0; i < 8; ++i)
        m.standaloneBw.push_back(10.0 * (i + 1));
    for (int j = 0; j < 8; ++j)
        m.externalBw.push_back(12.0 * (j + 1));
    // Identical mild declines everywhere: no normal boundary exists.
    m.rela.assign(8, {});
    for (int i = 0; i < 8; ++i)
        for (int j = 0; j < 8; ++j)
            m.rela[i].push_back(100.0 - 0.02 * m.externalBw[j]);
    const PccsParams p = buildModelParams(m, 137.0);
    EXPECT_NEAR(p.normalBw, m.standaloneBw.back(), 1e-9);
    EXPECT_FALSE(p.noMinorRegion());
    EXPECT_TRUE(p.valid());
}

TEST(Builder, DlaStyleMatrixHasNoMinorRegion)
{
    // Every kernel, even the smallest, loses a lot of speed: the
    // Table 7 DLA case (normalBW = 0, MRMC = NA).
    calib::CalibrationMatrix m;
    for (int i = 0; i < 8; ++i)
        m.standaloneBw.push_back(3.0 * (i + 1));
    for (int j = 0; j < 8; ++j)
        m.externalBw.push_back(12.0 * (j + 1));
    m.rela.assign(8, {});
    for (int i = 0; i < 8; ++i)
        for (int j = 0; j < 8; ++j)
            m.rela[i].push_back(100.0 - 0.4 * m.externalBw[j]);
    const PccsParams p = buildModelParams(m, 137.0);
    EXPECT_DOUBLE_EQ(p.normalBw, 0.0);
    EXPECT_TRUE(p.noMinorRegion());
    EXPECT_TRUE(p.valid());
}

TEST(Builder, XavierGpuParametersSane)
{
    const soc::SocSimulator sim(soc::xavierLike());
    const int gpu = sim.config().puIndex(soc::PuKind::Gpu);
    const PccsModel m = buildModel(sim, gpu);
    const PccsParams &p = m.params();
    EXPECT_TRUE(p.valid());
    EXPECT_FALSE(p.noMinorRegion());
    // The GPU's minor/normal boundary sits in the tens of GB/s and
    // MRMC is a single-digit percentage (Table 7: 38.1 / 4.9).
    EXPECT_GT(p.normalBw, 15.0);
    EXPECT_LT(p.normalBw, 70.0);
    EXPECT_GT(p.mrmc, 1.0);
    EXPECT_LT(p.mrmc, 12.0);
    EXPECT_GT(p.cbp, 30.0);
    EXPECT_GT(p.tbwdc, p.normalBw);
    EXPECT_GT(p.rateN, 0.3);
}

TEST(Builder, XavierDlaHasNoMinorRegion)
{
    const soc::SocSimulator sim(soc::xavierLike());
    const int dla = sim.config().puIndex(soc::PuKind::Dla);
    const PccsModel m = buildModel(sim, dla);
    EXPECT_TRUE(m.params().noMinorRegion());
    EXPECT_DOUBLE_EQ(m.params().normalBw, 0.0);
}

TEST(Builder, XavierCpuGentlerThanGpu)
{
    const soc::SocSimulator sim(soc::xavierLike());
    const PccsModel cpu =
        buildModel(sim, sim.config().puIndex(soc::PuKind::Cpu));
    const PccsModel gpu =
        buildModel(sim, sim.config().puIndex(soc::PuKind::Gpu));
    // Section 4.1: "GPUs are more sensitive to external memory demand
    // and they have a higher reduction rate than CPUs have."
    const double x_c = cpu.params().intensiveBw * 0.8;
    const double x_g = gpu.params().intensiveBw * 0.8;
    EXPECT_GT(cpu.relativeSpeed(x_c, 90.0),
              gpu.relativeSpeed(x_g, 90.0));
}

TEST(Builder, SnapdragonModelsBuild)
{
    const soc::SocSimulator sim(soc::snapdragonLike());
    for (std::size_t p = 0; p < sim.config().pus.size(); ++p) {
        const PccsModel m = buildModel(sim, p);
        EXPECT_TRUE(m.params().valid());
        // Snapdragon's 34 GB/s memory implies small BW parameters.
        EXPECT_LT(m.params().normalBw, 34.0);
    }
}

TEST(Builder, BuilderPredictsItsOwnCalibrators)
{
    // Self-consistency: the constructed model should fit the matrix it
    // was built from with a small average error.
    const soc::SocSimulator sim(soc::xavierLike());
    const int gpu = sim.config().puIndex(soc::PuKind::Gpu);
    const auto matrix = calib::calibrate(sim, gpu);
    const PccsModel m(buildModelParams(
        matrix, sim.config().memory.peakBandwidth));
    double sum = 0.0, sum_mid = 0.0;
    int count = 0, count_mid = 0;
    const double mid_cap = 0.75 * matrix.standaloneBw.back();
    for (std::size_t i = 0; i < matrix.numKernels(); ++i) {
        for (std::size_t j = 0; j < matrix.numExternal(); ++j) {
            const double err =
                std::fabs(m.relativeSpeed(matrix.standaloneBw[i],
                                          matrix.externalBw[j]) -
                          matrix.rela[i][j]);
            sum += err;
            ++count;
            if (matrix.standaloneBw[i] <= mid_cap) {
                sum_mid += err;
                ++count_mid;
            }
        }
    }
    // The piecewise-linear model fits the minor/normal range tightly;
    // the far-intensive corner (x near the PU's draw cap) saturates
    // hyperbolically where the paper's model extrapolates linearly,
    // so the all-rows average is looser.
    EXPECT_LT(sum_mid / count_mid, 5.0);
    EXPECT_LT(sum / count, 12.0);
}

TEST(BuilderDeath, TinyMatrixPanics)
{
    calib::CalibrationMatrix m;
    m.standaloneBw = {10.0};
    m.externalBw = {10.0};
    m.rela = {{100.0}};
    EXPECT_DEATH(buildModelParams(m, 137.0), "too small");
}

TEST(BuilderDeath, ShapeMismatchPanics)
{
    calib::CalibrationMatrix m;
    m.standaloneBw = {10.0, 20.0};
    m.externalBw = {10.0, 20.0};
    m.rela = {{100.0, 99.0}}; // only one row
    EXPECT_DEATH(buildModelParams(m, 137.0), "shape");
}

} // namespace
} // namespace pccs::model
