/**
 * @file
 * Tests for PCCS model parameter serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>

#include "pccs/serialize.hh"

namespace pccs::model {
namespace {

PccsParams
sample()
{
    PccsParams p;
    p.normalBw = 38.1;
    p.intensiveBw = 96.2;
    p.mrmc = 4.9;
    p.cbp = 45.3;
    p.tbwdc = 87.2;
    p.rateN = 1.11;
    p.peakBw = 137.0;
    return p;
}

TEST(Serialize, RoundTripExact)
{
    const PccsParams p = sample();
    const auto parsed = paramsFromText(paramsToText(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed->normalBw, p.normalBw);
    EXPECT_DOUBLE_EQ(parsed->intensiveBw, p.intensiveBw);
    EXPECT_DOUBLE_EQ(parsed->mrmc, p.mrmc);
    EXPECT_DOUBLE_EQ(parsed->cbp, p.cbp);
    EXPECT_DOUBLE_EQ(parsed->tbwdc, p.tbwdc);
    EXPECT_DOUBLE_EQ(parsed->rateN, p.rateN);
    EXPECT_DOUBLE_EQ(parsed->peakBw, p.peakBw);
}

TEST(Serialize, NaRoundTrip)
{
    PccsParams p = sample();
    p.normalBw = 0.0;
    p.mrmc = std::numeric_limits<double>::quiet_NaN();
    const auto parsed = paramsFromText(paramsToText(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->noMinorRegion());
}

TEST(Serialize, CommentsAndBlankLinesIgnored)
{
    std::string text = paramsToText(sample());
    text += "\n# trailing comment\n\n";
    text.insert(text.find('\n') + 1, "# a leading comment line\n");
    const auto parsed = paramsFromText(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed->cbp, sample().cbp);
}

TEST(Serialize, InlineCommentsIgnored)
{
    std::string text = "pccs-model v1\n"
                       "normalBw 38.1 # boundary\n"
                       "intensiveBw 96.2\nmrmc 4.9\ncbp 45.3\n"
                       "tbwdc 87.2\nrateN 1.11\npeakBw 137\n";
    const auto parsed = paramsFromText(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed->normalBw, 38.1);
}

TEST(Serialize, BadHeaderRejected)
{
    EXPECT_FALSE(paramsFromText("not-a-model v1\n").has_value());
    EXPECT_FALSE(paramsFromText("pccs-model v2\n").has_value());
    EXPECT_FALSE(paramsFromText("").has_value());
}

TEST(Serialize, MissingKeyRejected)
{
    std::string text = paramsToText(sample());
    const auto pos = text.find("cbp");
    text.erase(pos, text.find('\n', pos) - pos + 1);
    EXPECT_FALSE(paramsFromText(text).has_value());
}

TEST(Serialize, GarbageValueRejected)
{
    std::string text = paramsToText(sample());
    const auto pos = text.find("cbp ");
    text.replace(pos, text.find('\n', pos) - pos, "cbp forty-five");
    EXPECT_FALSE(paramsFromText(text).has_value());
}

TEST(Serialize, InvalidParametersRejected)
{
    PccsParams p = sample();
    p.peakBw = -1.0;
    EXPECT_FALSE(paramsFromText(paramsToText(p)).has_value());
}

TEST(Serialize, FileRoundTrip)
{
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "pccs_serialize_test.model")
            .string();
    saveParams(sample(), path);
    const PccsParams loaded = loadParams(path);
    EXPECT_DOUBLE_EQ(loaded.rateN, sample().rateN);
    std::remove(path.c_str());
}

TEST(SerializeDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(loadParams("/nonexistent/dir/model.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(Serialize, LoadedModelPredictsLikeOriginal)
{
    const PccsModel original(sample());
    const auto parsed = paramsFromText(paramsToText(sample()));
    ASSERT_TRUE(parsed.has_value());
    const PccsModel restored(*parsed);
    for (double x : {10.0, 60.0, 110.0})
        for (double y : {0.0, 40.0, 90.0})
            EXPECT_DOUBLE_EQ(restored.relativeSpeed(x, y),
                             original.relativeSpeed(x, y));
}

} // namespace
} // namespace pccs::model
