/**
 * @file
 * Tests for PCCS model parameter serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>

#include "pccs/serialize.hh"

namespace pccs::model {
namespace {

PccsParams
sample()
{
    PccsParams p;
    p.normalBw = 38.1;
    p.intensiveBw = 96.2;
    p.mrmc = 4.9;
    p.cbp = 45.3;
    p.tbwdc = 87.2;
    p.rateN = 1.11;
    p.peakBw = 137.0;
    return p;
}

TEST(Serialize, RoundTripExact)
{
    const PccsParams p = sample();
    const auto parsed = paramsFromText(paramsToText(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed->normalBw, p.normalBw);
    EXPECT_DOUBLE_EQ(parsed->intensiveBw, p.intensiveBw);
    EXPECT_DOUBLE_EQ(parsed->mrmc, p.mrmc);
    EXPECT_DOUBLE_EQ(parsed->cbp, p.cbp);
    EXPECT_DOUBLE_EQ(parsed->tbwdc, p.tbwdc);
    EXPECT_DOUBLE_EQ(parsed->rateN, p.rateN);
    EXPECT_DOUBLE_EQ(parsed->peakBw, p.peakBw);
}

TEST(Serialize, NaRoundTrip)
{
    PccsParams p = sample();
    p.normalBw = 0.0;
    p.mrmc = std::numeric_limits<double>::quiet_NaN();
    const auto parsed = paramsFromText(paramsToText(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->noMinorRegion());
}

TEST(Serialize, CommentsAndBlankLinesIgnored)
{
    std::string text = paramsToText(sample());
    text += "\n# trailing comment\n\n";
    text.insert(text.find('\n') + 1, "# a leading comment line\n");
    const auto parsed = paramsFromText(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed->cbp, sample().cbp);
}

TEST(Serialize, InlineCommentsIgnored)
{
    std::string text = "pccs-model v1\n"
                       "normalBw 38.1 # boundary\n"
                       "intensiveBw 96.2\nmrmc 4.9\ncbp 45.3\n"
                       "tbwdc 87.2\nrateN 1.11\npeakBw 137\n";
    const auto parsed = paramsFromText(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed->normalBw, 38.1);
}

TEST(Serialize, BadHeaderRejected)
{
    EXPECT_FALSE(paramsFromText("not-a-model v1\n").has_value());
    EXPECT_FALSE(paramsFromText("pccs-model v2\n").has_value());
    EXPECT_FALSE(paramsFromText("").has_value());
}

TEST(Serialize, MissingKeyRejected)
{
    std::string text = paramsToText(sample());
    const auto pos = text.find("cbp");
    text.erase(pos, text.find('\n', pos) - pos + 1);
    EXPECT_FALSE(paramsFromText(text).has_value());
}

TEST(Serialize, GarbageValueRejected)
{
    std::string text = paramsToText(sample());
    const auto pos = text.find("cbp ");
    text.replace(pos, text.find('\n', pos) - pos, "cbp forty-five");
    EXPECT_FALSE(paramsFromText(text).has_value());
}

TEST(Serialize, InvalidParametersRejected)
{
    PccsParams p = sample();
    p.peakBw = -1.0;
    EXPECT_FALSE(paramsFromText(paramsToText(p)).has_value());
}

TEST(Serialize, FileRoundTrip)
{
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "pccs_serialize_test.model")
            .string();
    saveParams(sample(), path);
    const PccsParams loaded = loadParams(path);
    EXPECT_DOUBLE_EQ(loaded.rateN, sample().rateN);
    std::remove(path.c_str());
}

TEST(SerializeDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(loadParams("/nonexistent/dir/model.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(SerializeChecked, DiagnosticsNameTheProblem)
{
    // Truncated text: a missing key is called out by name.
    std::string text = paramsToText(sample());
    const auto pos = text.find("tbwdc");
    text.erase(pos);
    const ParamsLoad load = paramsFromTextChecked(text);
    EXPECT_FALSE(load.ok());
    EXPECT_NE(load.error.find("tbwdc"), std::string::npos)
        << load.error;
    EXPECT_NE(load.error.find("truncated"), std::string::npos)
        << load.error;
}

TEST(SerializeChecked, WrongTypeNamesLineAndKey)
{
    const std::string text = "pccs-model v1\n"
                             "normalBw 38.1\nintensiveBw 96.2\n"
                             "mrmc 4.9\ncbp fast\n"
                             "tbwdc 87.2\nrateN 1.11\npeakBw 137\n";
    const ParamsLoad load = paramsFromTextChecked(text);
    EXPECT_FALSE(load.ok());
    EXPECT_NE(load.error.find("line 5"), std::string::npos)
        << load.error;
    EXPECT_NE(load.error.find("cbp"), std::string::npos) << load.error;
}

TEST(SerializeChecked, MoreMalformedInputs)
{
    const char *header = "pccs-model v1\n";
    const char *body = "normalBw 38.1\nintensiveBw 96.2\nmrmc 4.9\n"
                       "cbp 45.3\ntbwdc 87.2\nrateN 1.11\n"
                       "peakBw 137\n";
    // Each mutation must fail cleanly, never crash.
    EXPECT_FALSE(
        paramsFromTextChecked(std::string(header) + body + "cbp 1\n")
            .ok()); // duplicate key
    EXPECT_FALSE(paramsFromTextChecked(std::string(header) + body +
                                       "bogus 3\n")
                     .ok()); // unknown key
    EXPECT_FALSE(paramsFromTextChecked(std::string(header) +
                                       "normalBw 38.1 42\n")
                     .ok()); // trailing token
    EXPECT_FALSE(paramsFromTextChecked(std::string(header) +
                                       "normalBw\n")
                     .ok()); // key without a value
    EXPECT_FALSE(paramsFromTextChecked(
                     std::string("pccs-model v1 extra\n") + body)
                     .ok()); // trailing token on the header
    std::string na_cbp(body);
    na_cbp.replace(na_cbp.find("cbp 45.3"), 8, "cbp NA");
    EXPECT_FALSE(
        paramsFromTextChecked(std::string(header) + na_cbp).ok());
    std::string inf(body);
    inf.replace(inf.find("cbp 45.3"), 8, "cbp inf");
    EXPECT_FALSE(
        paramsFromTextChecked(std::string(header) + inf).ok());
}

TEST(SerializeChecked, OutOfRangeValuesRejected)
{
    auto text_with = [](auto mutate) {
        PccsParams p = sample();
        mutate(p);
        return paramsToText(p);
    };
    EXPECT_FALSE(paramsFromTextChecked(text_with([](PccsParams &p) {
                     p.peakBw = 0.0;
                 })).ok());
    EXPECT_FALSE(paramsFromTextChecked(text_with([](PccsParams &p) {
                     p.normalBw = -1.0;
                 })).ok());
    EXPECT_FALSE(paramsFromTextChecked(text_with([](PccsParams &p) {
                     p.intensiveBw = p.normalBw - 1.0;
                 })).ok());
    EXPECT_FALSE(paramsFromTextChecked(text_with([](PccsParams &p) {
                     p.cbp = 0.0;
                 })).ok());
    EXPECT_FALSE(paramsFromTextChecked(text_with([](PccsParams &p) {
                     p.tbwdc = -0.5;
                 })).ok());
    EXPECT_FALSE(paramsFromTextChecked(text_with([](PccsParams &p) {
                     p.rateN = -2.0;
                 })).ok());
    EXPECT_FALSE(paramsFromTextChecked(text_with([](PccsParams &p) {
                     p.mrmc = -3.0;
                 })).ok());
}

TEST(SerializeChecked, TryLoadReportsInsteadOfDying)
{
    const ParamsLoad missing =
        tryLoadParams("/nonexistent/dir/model.txt");
    EXPECT_FALSE(missing.ok());
    EXPECT_NE(missing.error.find("cannot open"), std::string::npos);

    const std::string path =
        (std::filesystem::temp_directory_path() /
         "pccs_serialize_truncated.model")
            .string();
    {
        std::string text = paramsToText(sample());
        text.resize(text.size() / 2); // truncate mid-file
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
    }
    const ParamsLoad truncated = tryLoadParams(path);
    EXPECT_FALSE(truncated.ok());
    // The diagnostic names the offending file.
    EXPECT_NE(truncated.error.find(path), std::string::npos)
        << truncated.error;
    std::remove(path.c_str());
}

TEST(SerializeChecked, SaveLoadSaveIsIdentity)
{
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "pccs_serialize_identity.model")
            .string();
    for (bool with_na : {false, true}) {
        PccsParams p = sample();
        if (with_na) {
            p.normalBw = 0.0;
            p.mrmc = std::numeric_limits<double>::quiet_NaN();
        }
        saveParams(p, path);
        const PccsParams loaded = loadParams(path);
        EXPECT_EQ(paramsToText(loaded), paramsToText(p));
    }
    std::remove(path.c_str());
}

TEST(Serialize, LoadedModelPredictsLikeOriginal)
{
    const PccsModel original(sample());
    const auto parsed = paramsFromText(paramsToText(sample()));
    ASSERT_TRUE(parsed.has_value());
    const PccsModel restored(*parsed);
    for (double x : {10.0, 60.0, 110.0})
        for (double y : {0.0, 40.0, 90.0})
            EXPECT_DOUBLE_EQ(restored.relativeSpeed(x, y),
                             original.relativeSpeed(x, y));
}

} // namespace
} // namespace pccs::model
