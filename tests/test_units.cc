/**
 * @file
 * Unit tests for unit helpers.
 */

#include <gtest/gtest.h>

#include "common/units.hh"

namespace pccs {
namespace {

TEST(Units, ToGBps)
{
    EXPECT_DOUBLE_EQ(toGBps(1e9, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(toGBps(5e9, 0.5), 10.0);
    EXPECT_DOUBLE_EQ(toGBps(1e9, 0.0), 0.0);
}

TEST(Units, MhzToHz)
{
    EXPECT_DOUBLE_EQ(mhzToHz(1.0), 1e6);
    EXPECT_DOUBLE_EQ(mhzToHz(2133.0), 2.133e9);
}

TEST(Units, PeakBandwidthTable1)
{
    // DDR4-3200, 4 channels, 64-bit: 102.4 GB/s (Table 1).
    EXPECT_NEAR(peakBandwidth(3200.0, 4, 64), 102.4, 1e-9);
}

TEST(Units, PeakBandwidthXavier)
{
    // LPDDR4x at 2133 MHz DDR (4266 MT/s), 256-bit: ~136.5 GB/s.
    EXPECT_NEAR(peakBandwidth(4266.0, 1, 256), 136.5, 0.1);
}

TEST(Units, PeakBandwidthSnapdragon)
{
    // 64-bit LPDDR4x @ 2133 (4266 MT/s): ~34 GB/s (Table 6).
    EXPECT_NEAR(peakBandwidth(4266.0, 1, 64), 34.1, 0.1);
}

} // namespace
} // namespace pccs
