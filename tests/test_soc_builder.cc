/**
 * @file
 * Tests for the fluent SoC builder and its PU-class templates.
 */

#include <gtest/gtest.h>

#include "calib/calibrator.hh"
#include "pccs/builder.hh"
#include "soc/builder.hh"
#include "soc/simulator.hh"

namespace pccs::soc {
namespace {

TEST(PuTemplate, KindCharacteristics)
{
    // The DLA class has no latency hiding; the GPU class hides nearly
    // everything.
    EXPECT_GT(puTemplate(PuKind::Dla).latencySensitivity,
              puTemplate(PuKind::Gpu).latencySensitivity * 5.0);
    EXPECT_GT(puTemplate(PuKind::Gpu).overlap,
              puTemplate(PuKind::Dla).overlap);
    EXPECT_EQ(puTemplate(PuKind::Cpu).kind, PuKind::Cpu);
}

TEST(SocBuilder, BuildsACustomSoc)
{
    const SocConfig soc =
        SocBuilder("my-soc")
            .memory(100.0)
            .addCpu("little-cpu", 1500.0, 32.0, 40.0)
            .addGpu("big-gpu", 1000.0, 2048.0, 90.0)
            .build();
    EXPECT_EQ(soc.name, "my-soc");
    EXPECT_DOUBLE_EQ(soc.memory.peakBandwidth, 100.0);
    ASSERT_EQ(soc.pus.size(), 2u);
    EXPECT_EQ(soc.pu(PuKind::Cpu).name, "little-cpu");
    EXPECT_EQ(soc.pu(PuKind::Gpu).name, "big-gpu");
}

TEST(SocBuilder, IssueDefaultsFollowClassRatios)
{
    const SocConfig soc = SocBuilder("s")
                              .memory(100.0)
                              .addGpu("g", 1000.0, 1024.0, 100.0)
                              .build();
    // GPU issue default is the Xavier 194/127 ratio.
    EXPECT_NEAR(soc.pu(PuKind::Gpu).issueBandwidth,
                100.0 * 194.0 / 127.0, 0.1);
}

TEST(SocBuilder, ExplicitIssueOverrides)
{
    const SocConfig soc = SocBuilder("s")
                              .memory(100.0)
                              .addGpu("g", 1000.0, 1024.0, 100.0, 120.0)
                              .build();
    EXPECT_DOUBLE_EQ(soc.pu(PuKind::Gpu).issueBandwidth, 120.0);
}

TEST(SocBuilder, TemplatesCarryContentionCharacter)
{
    const SocConfig soc = SocBuilder("s")
                              .memory(137.0)
                              .addDla("dla", 1400.0, 512.0, 30.0)
                              .build();
    EXPECT_DOUBLE_EQ(soc.pu(PuKind::Dla).latencySensitivity,
                     puTemplate(PuKind::Dla).latencySensitivity);
}

TEST(SocBuilder, BuiltSocIsSimulatable)
{
    const SocConfig soc =
        SocBuilder("sim-me")
            .memory(60.0)
            .addCpu("cpu", 2000.0, 48.0, 30.0)
            .addGpu("gpu", 900.0, 1024.0, 50.0)
            .build();
    const SocSimulator sim(soc);
    const std::size_t gpu =
        static_cast<std::size_t>(soc.puIndex(PuKind::Gpu));
    const KernelProfile k =
        calib::makeCalibrator(sim.model(), soc.pus[gpu], 40.0);
    EXPECT_NEAR(sim.profile(gpu, k).bandwidthDemand, 40.0, 2.0);
    const double rs = sim.relativeSpeedUnderPressure(gpu, k, 25.0);
    EXPECT_GT(rs, 10.0);
    EXPECT_LE(rs, 100.0);
}

TEST(SocBuilder, BuiltSocIsCalibratable)
{
    // The whole pipeline must work on a designer's custom SoC: build,
    // calibrate, extract a valid PCCS model.
    const SocConfig soc =
        SocBuilder("calib-me")
            .memory(80.0)
            .addCpu("cpu", 1800.0, 40.0, 35.0)
            .addGpu("gpu", 1100.0, 1536.0, 70.0)
            .build();
    const SocSimulator sim(soc);
    const model::PccsModel m = model::buildModel(
        sim, static_cast<std::size_t>(soc.puIndex(PuKind::Gpu)));
    EXPECT_TRUE(m.params().valid());
    EXPECT_DOUBLE_EQ(m.params().peakBw, 80.0);
}

TEST(SocBuilderDeath, MissingMemoryIsFatal)
{
    EXPECT_EXIT(SocBuilder("s").addCpu("c", 1000.0, 8.0, 10.0).build(),
                ::testing::ExitedWithCode(1), "memory");
}

TEST(SocBuilderDeath, NoPusIsFatal)
{
    EXPECT_EXIT(SocBuilder("s").memory(50.0).build(),
                ::testing::ExitedWithCode(1), "no processing units");
}

TEST(SocBuilderDeath, BadSizingPanics)
{
    EXPECT_DEATH(SocBuilder("s").memory(50.0).addCpu("c", 0.0, 8.0,
                                                     10.0),
                 "positive sizing");
}

} // namespace
} // namespace pccs::soc
