/**
 * @file
 * Tests for linear bandwidth scaling of PCCS parameters (Section 3.3,
 * Table 5): scaled models must closely match models constructed from
 * scratch at the target memory configuration.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "pccs/builder.hh"
#include "pccs/scaling.hh"

namespace pccs::model {
namespace {

PccsParams
base()
{
    PccsParams p;
    p.normalBw = 40.0;
    p.intensiveBw = 100.0;
    p.mrmc = 5.0;
    p.cbp = 50.0;
    p.tbwdc = 90.0;
    p.rateN = 1.2;
    p.peakBw = 137.0;
    return p;
}

TEST(ScaleParams, BandwidthValuesScaleLinearly)
{
    const PccsParams s = scaleParams(base(), 0.5);
    EXPECT_DOUBLE_EQ(s.normalBw, 20.0);
    EXPECT_DOUBLE_EQ(s.intensiveBw, 50.0);
    EXPECT_DOUBLE_EQ(s.cbp, 25.0);
    EXPECT_DOUBLE_EQ(s.tbwdc, 45.0);
    EXPECT_DOUBLE_EQ(s.peakBw, 68.5);
}

TEST(ScaleParams, RatesScaleInversely)
{
    const PccsParams s = scaleParams(base(), 0.5);
    EXPECT_DOUBLE_EQ(s.rateN, 2.4);
}

TEST(ScaleParams, MrmcPreserved)
{
    const PccsParams s = scaleParams(base(), 0.75);
    EXPECT_DOUBLE_EQ(s.mrmc, 5.0);
}

TEST(ScaleParams, IdentityRatio)
{
    const PccsParams s = scaleParams(base(), 1.0);
    EXPECT_DOUBLE_EQ(s.normalBw, base().normalBw);
    EXPECT_DOUBLE_EQ(s.rateN, base().rateN);
}

TEST(ScaleParams, RoundTrip)
{
    const PccsParams s = scaleParams(scaleParams(base(), 0.5), 2.0);
    EXPECT_NEAR(s.normalBw, base().normalBw, 1e-12);
    EXPECT_NEAR(s.rateN, base().rateN, 1e-12);
}

TEST(ScaleParams, ScaledModelPredictsScaledCoordinates)
{
    // The scaled model evaluated at scaled coordinates must equal the
    // base model at base coordinates: the curve shape is preserved.
    const PccsModel m(base());
    const PccsModel s(scaleParams(base(), 0.5));
    for (double x = 5.0; x <= 130.0; x += 9.0)
        for (double y = 0.0; y <= 100.0; y += 9.0)
            EXPECT_NEAR(s.relativeSpeed(x * 0.5, y * 0.5),
                        m.relativeSpeed(x, y), 1e-9)
                << x << "," << y;
}

TEST(CompareParams, ZeroForIdentical)
{
    const ScalingError e = compareParams(base(), base());
    EXPECT_DOUBLE_EQ(e.average(), 0.0);
}

TEST(CompareParams, KnownRelativeError)
{
    PccsParams a = base();
    a.normalBw = 44.0; // 10% off
    const ScalingError e = compareParams(a, base());
    EXPECT_NEAR(e.normalBw, 10.0, 1e-9);
}

TEST(CompareParams, NanMrmcPairsCompareEqual)
{
    PccsParams a = base(), b = base();
    a.mrmc = std::numeric_limits<double>::quiet_NaN();
    b.mrmc = std::numeric_limits<double>::quiet_NaN();
    a.normalBw = b.normalBw = 0.0;
    EXPECT_DOUBLE_EQ(compareParams(a, b).mrmc, 0.0);
}

TEST(ScaleParamsDeath, NonPositiveRatioPanics)
{
    EXPECT_DEATH(scaleParams(base(), 0.0), "positive");
}

/**
 * The Table 5 experiment: construct at full memory speed, scale down,
 * and compare against construction at the reduced speed. The paper
 * reports average errors below ~3%; our simulated substrate should
 * stay in the same ballpark (single-digit percent).
 */
class LinearScalingFidelity : public ::testing::TestWithParam<double>
{
};

TEST_P(LinearScalingFidelity, ScaledTracksConstructed)
{
    const double ratio = GetParam();
    const soc::SocConfig full = soc::xavierLike();
    const soc::SocSimulator sim_full(full);
    const soc::SocSimulator sim_scaled(full.withMemoryScaled(ratio));
    const int gpu = full.puIndex(soc::PuKind::Gpu);

    const PccsParams built_full = buildModel(sim_full, gpu).params();
    const PccsParams scaled = scaleParams(built_full, ratio);
    const PccsParams constructed =
        buildModel(sim_scaled, gpu).params();

    const ScalingError err = compareParams(scaled, constructed);
    // The paper reports <3% because on real hardware every bandwidth-
    // related quantity scales with the memory clock together; in the
    // simulated substrate the PU-side draw caps do not scale, so a
    // larger (but still small) divergence is expected.
    EXPECT_LT(err.average(), 18.0) << "ratio " << ratio;
}

INSTANTIATE_TEST_SUITE_P(Ratios, LinearScalingFidelity,
                         ::testing::Values(1066.0 / 2133.0,
                                           1333.0 / 2133.0,
                                           1600.0 / 2133.0));

} // namespace
} // namespace pccs::model
