/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace pccs {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRange)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(5.0, 6.0);
        EXPECT_GE(u, 5.0);
        EXPECT_LT(u, 6.0);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowBound)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowZeroIsZero)
{
    Rng r(3);
    EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
        EXPECT_FALSE(r.chance(-0.5));
        EXPECT_TRUE(r.chance(1.5));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng r(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (r.chance(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

} // namespace
} // namespace pccs
