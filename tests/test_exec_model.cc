/**
 * @file
 * Unit and property tests for the PU execution model, including the
 * three-region behavior the paper's Figure 3 documents.
 */

#include <gtest/gtest.h>

#include "calib/calibrator.hh"
#include "soc/exec_model.hh"
#include "soc/soc_config.hh"

namespace pccs::soc {
namespace {

class ExecModelTest : public ::testing::Test
{
  protected:
    SocConfig soc = xavierLike();
    ExecutionModel model{soc.memory};

    KernelProfile
    kernelWithDemand(PuKind kind, GBps target)
    {
        return calib::makeCalibrator(model, soc.pu(kind), target);
    }

    double
    rs(PuKind kind, const KernelProfile &k, GBps external)
    {
        const int idx = soc.puIndex(kind);
        const auto ext =
            externalDemands(soc, static_cast<std::size_t>(idx), external);
        return model.relativeSpeed(soc.pu(kind), k, ext);
    }
};

TEST_F(ExecModelTest, StandaloneDemandsMatchFigure2)
{
    // Fig. 2 caption: requested BW 93 (CPU), 127 (GPU), 30 (DLA).
    const auto cpu = model.standalone(soc.pu(PuKind::Cpu),
                                      kernelWithDemand(PuKind::Cpu, 999));
    const auto gpu = model.standalone(soc.pu(PuKind::Gpu),
                                      kernelWithDemand(PuKind::Gpu, 999));
    const auto dla = model.standalone(soc.pu(PuKind::Dla),
                                      kernelWithDemand(PuKind::Dla, 999));
    EXPECT_NEAR(cpu.bandwidthDemand, 93.0, 3.0);
    EXPECT_NEAR(gpu.bandwidthDemand, 127.0, 3.0);
    EXPECT_NEAR(dla.bandwidthDemand, 30.0, 2.0);
}

TEST_F(ExecModelTest, StandaloneSecondsConsistent)
{
    KernelProfile k = kernelWithDemand(PuKind::Gpu, 60.0);
    k.workBytes = 3e9;
    const auto prof = model.standalone(soc.pu(PuKind::Gpu), k);
    EXPECT_NEAR(prof.seconds, 3e9 / prof.rate, 1e-12);
    EXPECT_NEAR(prof.bandwidthDemand, prof.rate / 1e9, 1e-12);
}

TEST_F(ExecModelTest, NoExternalMeansFullSpeed)
{
    for (GBps x : {10.0, 40.0, 80.0, 120.0}) {
        const KernelProfile k = kernelWithDemand(PuKind::Gpu, x);
        EXPECT_NEAR(rs(PuKind::Gpu, k, 0.0), 100.0, 1e-9) << x;
    }
}

TEST_F(ExecModelTest, RelativeSpeedMonotoneInExternalDemand)
{
    // Tolerance note: at the exact saturation boundary the efficiency
    // model can produce sub-0.01%-point wiggles (the victim's share of
    // a slightly smaller effective pie); anything beyond measurement-
    // noise scale would be a real monotonicity bug.
    for (GBps x : {15.0, 60.0, 110.0}) {
        const KernelProfile k = kernelWithDemand(PuKind::Gpu, x);
        double prev = 101.0;
        for (GBps y = 0.0; y <= 100.0; y += 5.0) {
            const double v = rs(PuKind::Gpu, k, y);
            EXPECT_LE(v, prev + 0.05) << "x=" << x << " y=" << y;
            prev = v;
        }
    }
}

TEST_F(ExecModelTest, MinorKernelBarelySlows)
{
    const KernelProfile k = kernelWithDemand(PuKind::Gpu, 15.0);
    EXPECT_GT(rs(PuKind::Gpu, k, 100.0), 90.0);
}

TEST_F(ExecModelTest, MediumKernelShowsThreeStages)
{
    // Fig. 3(b): flat start, steep middle, flat tail.
    const KernelProfile k = kernelWithDemand(PuKind::Gpu, 70.0);
    const double early = rs(PuKind::Gpu, k, 10.0) -
                         rs(PuKind::Gpu, k, 25.0);
    const double mid = rs(PuKind::Gpu, k, 45.0) -
                       rs(PuKind::Gpu, k, 60.0);
    const double late = rs(PuKind::Gpu, k, 85.0) -
                        rs(PuKind::Gpu, k, 100.0);
    EXPECT_GT(mid, 3.0 * early) << "drop phase must be much steeper";
    EXPECT_GT(mid, 3.0 * late) << "tail must flatten";
}

TEST_F(ExecModelTest, IntensiveKernelDropsImmediately)
{
    // Fig. 3(c): high-demand kernels slow down under small pressure.
    const KernelProfile k = kernelWithDemand(PuKind::Gpu, 123.0);
    EXPECT_LT(rs(PuKind::Gpu, k, 20.0), 90.0);
}

TEST_F(ExecModelTest, ContentionBeforeNominalSaturation)
{
    // The Figure 2 headline: slowdown appears even when
    // x + y < peak bandwidth (137).
    const KernelProfile k = kernelWithDemand(PuKind::Gpu, 76.0);
    const double v = rs(PuKind::Gpu, k, 50.0); // 76 + 50 < 137
    EXPECT_LT(v, 95.0);
}

TEST_F(ExecModelTest, DlaSlowsEvenWithLowDemand)
{
    // The DLA has no minor contention region (Table 7): even a
    // low-bandwidth kernel slows notably under pressure.
    const KernelProfile k = kernelWithDemand(PuKind::Dla, 5.0);
    EXPECT_LT(rs(PuKind::Dla, k, 80.0), 88.0);
}

TEST_F(ExecModelTest, CpuVictimGentlerThanGpuVictim)
{
    // Paper Sec. 4.2: programs on the CPU see smaller reductions than
    // programs on the GPU.
    const KernelProfile kc = kernelWithDemand(PuKind::Cpu, 55.0);
    const KernelProfile kg = kernelWithDemand(PuKind::Gpu, 80.0);
    EXPECT_GT(rs(PuKind::Cpu, kc, 90.0), rs(PuKind::Gpu, kg, 90.0));
}

TEST_F(ExecModelTest, CorunMatchesRelativeSpeed)
{
    // corun() and relativeSpeed() must agree for a 2-PU scenario.
    const KernelProfile kg = kernelWithDemand(PuKind::Gpu, 70.0);
    const KernelProfile kc = kernelWithDemand(PuKind::Cpu, 50.0);
    std::vector<PuParams> pus{soc.pu(PuKind::Gpu), soc.pu(PuKind::Cpu)};
    std::vector<KernelProfile> ks{kg, kc};
    const CorunRates rates = model.corun(pus, ks);
    const auto solo_g = model.standalone(pus[0], kg);
    const double rs_corun = 100.0 * rates.rates[0] / solo_g.rate;

    const auto solo_c = model.standalone(pus[1], kc);
    const double rs_direct = model.relativeSpeed(
        pus[0], kg,
        {{solo_c.bandwidthDemand, kc.locality,
          pus[1].fairShareWeight}});
    EXPECT_NEAR(rs_corun, rs_direct, 1e-6);
}

TEST_F(ExecModelTest, GrantsNeverExceedDemands)
{
    const KernelProfile kg = kernelWithDemand(PuKind::Gpu, 110.0);
    const KernelProfile kc = kernelWithDemand(PuKind::Cpu, 80.0);
    const KernelProfile kd = kernelWithDemand(PuKind::Dla, 25.0);
    std::vector<PuParams> pus{soc.pu(PuKind::Gpu), soc.pu(PuKind::Cpu),
                              soc.pu(PuKind::Dla)};
    std::vector<KernelProfile> ks{kg, kc, kd};
    const CorunRates rates = model.corun(pus, ks);
    for (std::size_t i = 0; i < pus.size(); ++i) {
        const auto solo = model.standalone(pus[i], ks[i]);
        EXPECT_LE(rates.allocation.grants[i],
                  solo.bandwidthDemand + 1e-6);
        EXPECT_LE(rates.rates[i], solo.rate * (1.0 + 1e-9));
    }
}

TEST_F(ExecModelTest, FrequencyScalingKneeForMemoryBoundKernel)
{
    // The Figure 15 observation: a memory-bound GPU kernel keeps its
    // standalone speed until the clock drops below the knee
    // (~900 MHz on Xavier), then slows roughly linearly.
    const KernelProfile k = kernelWithDemand(PuKind::Gpu, 999.0);
    const PuParams &gpu = soc.pu(PuKind::Gpu);
    const double full =
        model.standalone(gpu.atFrequency(1377.0), k).rate;
    const double at_950 =
        model.standalone(gpu.atFrequency(950.0), k).rate;
    const double at_700 =
        model.standalone(gpu.atFrequency(700.0), k).rate;
    EXPECT_NEAR(at_950 / full, 1.0, 0.03) << "above the knee";
    EXPECT_LT(at_700 / full, 0.85) << "below the knee";
}

TEST_F(ExecModelTest, ComputeBoundKernelScalesWithFrequency)
{
    const KernelProfile k = kernelWithDemand(PuKind::Gpu, 15.0);
    const PuParams &gpu = soc.pu(PuKind::Gpu);
    const double full =
        model.standalone(gpu.atFrequency(1377.0), k).rate;
    const double half =
        model.standalone(gpu.atFrequency(688.5), k).rate;
    EXPECT_NEAR(half / full, 0.5, 0.05);
}

/** Relative speed must lie in (0, 100] across a broad random sweep. */
class RsBounds
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(RsBounds, AlwaysInRange)
{
    const auto [pu_idx, target] = GetParam();
    SocConfig soc = xavierLike();
    ExecutionModel model(soc.memory);
    const KernelProfile k = calib::makeCalibrator(
        model, soc.pus[pu_idx], target);
    for (GBps y = 0.0; y <= 120.0; y += 7.0) {
        const auto ext = externalDemands(soc, pu_idx, y);
        const double v = model.relativeSpeed(soc.pus[pu_idx], k, ext);
        EXPECT_GT(v, 0.0);
        EXPECT_LE(v, 100.0 + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RsBounds,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(5.0, 20.0, 60.0, 110.0)));

} // namespace
} // namespace pccs::soc
