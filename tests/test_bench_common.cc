/**
 * @file
 * Tests of the bench support library: the external-pressure ladder
 * and the per-kernel sweep error metrics.
 */

#include <gtest/gtest.h>

#include "bench/common.hh"
#include "calib/calibrator.hh"
#include "gables/gables.hh"
#include "pccs/builder.hh"

using namespace pccs;

TEST(ExternalLadder, HasRequestedShapeAndEndpoints)
{
    const auto ladder = bench::externalLadder(100.0, 10);
    ASSERT_EQ(ladder.size(), 10u);
    EXPECT_DOUBLE_EQ(ladder.front(), 10.0);
    EXPECT_DOUBLE_EQ(ladder.back(), 100.0);
    for (std::size_t j = 1; j < ladder.size(); ++j)
        EXPECT_LT(ladder[j - 1], ladder[j]);
}

TEST(ExternalLadder, ScalesWithMaxExternal)
{
    const auto ladder = bench::externalLadder(73.0, 5);
    ASSERT_EQ(ladder.size(), 5u);
    EXPECT_DOUBLE_EQ(ladder.front(), 73.0 / 5.0);
    EXPECT_DOUBLE_EQ(ladder.back(), 73.0);
}

TEST(SweepResult, ErrorsAgainstKnownVectors)
{
    bench::SweepResult r;
    r.actual = {100.0, 80.0, 50.0};
    r.pccs = {100.0, 80.0, 50.0};   // perfect prediction
    r.gables = {110.0, 100.0, 60.0}; // off by 10/20/10 RS points
    EXPECT_DOUBLE_EQ(r.pccsError(), 0.0);
    // Mean absolute per-point error in RS percentage points.
    EXPECT_NEAR(r.gablesError(), (10.0 + 20.0 + 10.0) / 3.0, 1e-9);
}

TEST(SweepResult, ErrorIsSymmetricInSign)
{
    bench::SweepResult r;
    r.actual = {90.0, 90.0};
    r.pccs = {80.0, 100.0}; // -10 and +10
    EXPECT_NEAR(r.pccsError(), 10.0, 1e-9);
}

TEST(SweepKernel, PopulatesAllSeriesOverTheLadder)
{
    const soc::SocSimulator sim(soc::xavierLike());
    const std::size_t gpu = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Gpu));
    const model::PccsModel pccs = model::buildModel(sim, gpu);
    const gables::GablesModel gables(
        sim.config().memory.peakBandwidth);
    const soc::KernelProfile k = calib::makeCalibrator(
        sim.model(), sim.config().pus[gpu], 70.0);
    const auto ladder = bench::externalLadder(100.0, 5);

    runner::SweepEngine engine(2);
    const bench::SweepResult r = bench::sweepKernel(
        sim, gpu, k, pccs, gables, ladder, &engine);
    EXPECT_EQ(r.name, k.name);
    EXPECT_GT(r.demand, 0.0);
    ASSERT_EQ(r.actual.size(), ladder.size());
    ASSERT_EQ(r.pccs.size(), ladder.size());
    ASSERT_EQ(r.gables.size(), ladder.size());
    for (std::size_t j = 0; j < ladder.size(); ++j) {
        EXPECT_EQ(r.actual[j], sim.relativeSpeedUnderPressure(
                                   gpu, k, ladder[j]));
    }
}

TEST(SweepArtifact, CarriesCurvesAndErrorTable)
{
    const soc::SocSimulator sim(soc::xavierLike());
    const std::size_t gpu = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Gpu));
    const model::PccsModel pccs = model::buildModel(sim, gpu);
    const gables::GablesModel gables(
        sim.config().memory.peakBandwidth);
    const soc::KernelProfile k = calib::makeCalibrator(
        sim.model(), sim.config().pus[gpu], 70.0);
    const auto ladder = bench::externalLadder(100.0, 5);

    runner::SweepEngine engine(1);
    std::vector<bench::SweepResult> results{bench::sweepKernel(
        sim, gpu, k, pccs, gables, ladder, &engine)};
    const runner::RunResult artifact = bench::sweepArtifact(
        "unit_sweep", "unit sweep", "test", sim, gpu, results,
        ladder);
    EXPECT_EQ(artifact.spec.experiment, "unit_sweep");
    EXPECT_EQ(artifact.spec.externalBw, ladder);
    ASSERT_EQ(artifact.kernels.size(), 1u);
    ASSERT_EQ(artifact.kernels[0].series.size(), 3u);
    EXPECT_EQ(artifact.kernels[0].series[0].name, "actual");
    EXPECT_EQ(artifact.kernels[0].series[0].values,
              results[0].actual);
    ASSERT_EQ(artifact.tables.size(), 1u);
    EXPECT_EQ(artifact.tables[0].title,
              "mean absolute error vs actual");
}
