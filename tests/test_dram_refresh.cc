/**
 * @file
 * Tests for DRAM refresh and write-related channel timing.
 */

#include <gtest/gtest.h>

#include "dram/system.hh"

namespace pccs::dram {
namespace {

TEST(ChannelWtr, ReadBlockedAfterWriteBurst)
{
    const DramTimingParams t = ddr4_3200();
    ChannelTiming ch(8, t);
    ch.reserveBus(100, /*is_write=*/true);
    const Cycles write_end = 100 + t.tCL + t.tBURST;
    // Another write may follow as soon as the bus frees...
    EXPECT_TRUE(ch.busAvailable(write_end, /*is_write=*/true));
    // ...but a read must additionally wait out tWTR.
    EXPECT_FALSE(ch.busAvailable(write_end, /*is_write=*/false));
    EXPECT_FALSE(
        ch.busAvailable(write_end + t.tWTR - 1, /*is_write=*/false));
    EXPECT_TRUE(
        ch.busAvailable(write_end + t.tWTR, /*is_write=*/false));
}

TEST(ChannelWtr, ReadsUnaffectedByReads)
{
    const DramTimingParams t = ddr4_3200();
    ChannelTiming ch(8, t);
    ch.reserveBus(100, /*is_write=*/false);
    EXPECT_TRUE(ch.busAvailable(100 + t.tBURST, /*is_write=*/false));
}

class RefreshTest : public ::testing::Test
{
  protected:
    static std::unique_ptr<DramSystem>
    makeLoaded(Cycles trefi, Cycles trfc, double write_fraction = 0.0)
    {
        DramConfig cfg = table1Config();
        cfg.timing.tREFI = trefi;
        cfg.timing.tRFC = trfc;
        auto sys = std::make_unique<DramSystem>(
            cfg, "FR-FCFS");
        TrafficParams p;
        p.source = 0;
        p.demand = 60.0;
        p.writeFraction = write_fraction;
        sys->addGenerator(p);
        sys->run(10000);
        sys->resetMeasurement();
        sys->run(50000);
        return sys;
    }
};

TEST_F(RefreshTest, RefreshCadenceMatchesTrefi)
{
    auto sys = makeLoaded(5000, 100);
    // 50000 cycles / 5000 tREFI = ~10 refreshes per channel, 4 chans.
    const std::uint64_t refreshes =
        sys->controller().stats().refreshes;
    EXPECT_GE(refreshes, 30u);
    EXPECT_LE(refreshes, 50u);
}

TEST_F(RefreshTest, RefreshCostsBandwidth)
{
    // A third of every tREFI spent refreshing must show as lost
    // bandwidth relative to a nearly-refresh-free run.
    auto heavy = makeLoaded(3000, 1000);
    auto light = makeLoaded(1u << 30, 100);
    const double bw_heavy = heavy->achievedBandwidth(0);
    const double bw_light = light->achievedBandwidth(0);
    EXPECT_LT(bw_heavy, 0.85 * bw_light);
}

TEST_F(RefreshTest, DefaultRefreshOverheadIsSmall)
{
    // DDR4's 560/12480 = ~4.5% overhead must not cripple throughput.
    auto sys = makeLoaded(12480, 560);
    EXPECT_GT(sys->achievedBandwidth(0), 50.0);
}

TEST_F(RefreshTest, WriteTrafficIsServed)
{
    auto sys = makeLoaded(12480, 560, /*write_fraction=*/0.3);
    const auto &stats = sys->controller().stats();
    EXPECT_GT(stats.writes, 0u);
    EXPECT_GT(stats.reads, 0u);
    // Roughly the configured mix.
    const double frac =
        static_cast<double>(stats.writes) /
        static_cast<double>(stats.writes + stats.reads);
    EXPECT_NEAR(frac, 0.3, 0.05);
    // Interleaved reads and writes pay the tWTR turnaround; a single
    // unbatched stream keeps most but not all of its bandwidth.
    EXPECT_GT(sys->achievedBandwidth(0), 45.0);
}

TEST_F(RefreshTest, MixedReadWriteSlowerThanPureRead)
{
    // Write-to-read turnarounds cost bandwidth at saturation.
    DramConfig cfg = table1Config();
    auto measure = [&](double write_fraction) {
        DramSystem sys(cfg, "FR-FCFS");
        for (unsigned c = 0; c < 4; ++c) {
            TrafficParams p;
            p.source = c;
            p.demand = 40.0;
            p.writeFraction = write_fraction;
            p.seed = 10 + c;
            sys.addGenerator(p);
        }
        sys.run(10000);
        sys.resetMeasurement();
        sys.run(50000);
        return sys.effectiveBandwidthFraction();
    };
    EXPECT_LT(measure(0.5), measure(0.0));
}

} // namespace
} // namespace pccs::dram
