/**
 * @file
 * Integration tests of the DRAM system: traffic generators against
 * the memory controller under every registered scheduling policy.
 * These verify the substrate properties the paper's Section 2.3
 * analysis rests on.
 */

#include <gtest/gtest.h>

#include "dram/system.hh"

namespace pccs::dram {
namespace {

constexpr Cycles warmup = 20000;
constexpr Cycles window = 80000;

/** Build a system with one generator per demand (GB/s). */
std::unique_ptr<DramSystem>
makeSystem(std::string_view policy, const std::vector<GBps> &demands,
           double locality = 0.97)
{
    auto sys = std::make_unique<DramSystem>(table1Config(), policy);
    for (std::size_t i = 0; i < demands.size(); ++i) {
        TrafficParams p;
        p.source = static_cast<unsigned>(i);
        p.demand = demands[i];
        p.rowLocality = locality;
        p.seed = 100 + i;
        sys->addGenerator(p);
    }
    sys->run(warmup);
    sys->resetMeasurement();
    sys->run(window);
    return sys;
}

TEST(DramSystem, StandaloneAchievesDemand)
{
    auto sys = makeSystem("FR-FCFS", {20.0});
    EXPECT_NEAR(sys->achievedBandwidth(0), 20.0, 1.5);
}

TEST(DramSystem, StandaloneHighDemandNearsPeak)
{
    // A 95 GB/s streaming demand on a 102.4 GB/s system should achieve
    // a large fraction of it with FR-FCFS.
    auto sys = makeSystem("FR-FCFS", {95.0});
    EXPECT_GT(sys->achievedBandwidth(0), 75.0);
}

TEST(DramSystem, StandaloneRowBufferHitRateHigh)
{
    auto sys = makeSystem("FR-FCFS", {40.0});
    EXPECT_GT(sys->controller().stats().rowBufferHitRate(), 0.85);
}

TEST(DramSystem, PoorLocalityLowersHitRate)
{
    auto good = makeSystem("FR-FCFS", {40.0}, 0.97);
    auto bad = makeSystem("FR-FCFS", {40.0}, 0.30);
    EXPECT_LT(bad->controller().stats().rowBufferHitRate(),
              good->controller().stats().rowBufferHitRate() - 0.1);
}

TEST(DramSystem, SmallDemandsCoexistWithoutLoss)
{
    auto sys = makeSystem("FR-FCFS", {10.0, 10.0, 10.0});
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(sys->achievedBandwidth(i), 10.0, 1.5);
}

TEST(DramSystem, OversubscriptionCapsTotal)
{
    auto sys =
        makeSystem("FR-FCFS", {60.0, 60.0, 60.0});
    const double total = sys->achievedBandwidth(0) +
                         sys->achievedBandwidth(1) +
                         sys->achievedBandwidth(2);
    EXPECT_LT(total, 102.5);
    EXPECT_GT(total, 60.0);
}

/** Under FR-FCFS (no fairness), a low-demand core co-located with
 * saturating traffic loses noticeably; fairness policies protect it
 * better. This is the core observation behind Figure 5. */
TEST(DramSystem, FairnessProtectsLowDemandSource)
{
    const std::vector<GBps> demands{8.0, 50.0, 50.0, 50.0};
    auto frfcfs = makeSystem("FR-FCFS", demands);
    auto atlas = makeSystem("ATLAS", demands);
    const double v_frfcfs = frfcfs->achievedBandwidth(0);
    const double v_atlas = atlas->achievedBandwidth(0);
    // ATLAS must serve the light source at least as well as FR-FCFS.
    EXPECT_GE(v_atlas, v_frfcfs - 0.5);
    EXPECT_GT(v_atlas, 6.0);
}

TEST(DramSystem, FcfsHasLowestRowHitRate)
{
    const std::vector<GBps> demands{40.0, 40.0, 40.0};
    auto fcfs = makeSystem("FCFS", demands);
    auto frfcfs = makeSystem("FR-FCFS", demands);
    // FR-FCFS exists to exploit row locality; FCFS ignores it
    // (Table 3: RBH 47.7% vs 91.6%).
    EXPECT_LT(fcfs->controller().stats().rowBufferHitRate(),
              frfcfs->controller().stats().rowBufferHitRate());
}

TEST(DramSystem, FcfsDeliversLessBandwidth)
{
    const std::vector<GBps> demands{50.0, 50.0, 50.0};
    auto fcfs = makeSystem("FCFS", demands);
    auto frfcfs = makeSystem("FR-FCFS", demands);
    EXPECT_LT(fcfs->effectiveBandwidthFraction(),
              frfcfs->effectiveBandwidthFraction());
}

TEST(DramSystem, AllPoliciesServeEveryone)
{
    const std::vector<GBps> demands{20.0, 40.0, 60.0};
    for (const std::string &policy : schedulerNames()) {
        auto sys = makeSystem(policy, demands);
        for (std::size_t i = 0; i < demands.size(); ++i) {
            EXPECT_GT(sys->achievedBandwidth(i), 1.0)
                << policy << " starved source " << i;
        }
    }
}

TEST(DramSystem, MeasurementWindowBookkeeping)
{
    auto sys = std::make_unique<DramSystem>(table1Config(),
                                            "FR-FCFS");
    TrafficParams p;
    p.source = 0;
    p.demand = 30.0;
    sys->addGenerator(p);
    sys->run(1000);
    EXPECT_EQ(sys->now(), 1000u);
    sys->resetMeasurement();
    EXPECT_EQ(sys->windowCycles(), 0u);
    sys->run(500);
    EXPECT_EQ(sys->windowCycles(), 500u);
}

TEST(DramSystem, DuplicateSourceIdDies)
{
    DramSystem sys(table1Config(), "FR-FCFS");
    TrafficParams p;
    p.source = 0;
    p.demand = 10.0;
    sys.addGenerator(p);
    EXPECT_DEATH(sys.addGenerator(p), "duplicate");
}

TEST(DramSystem, GeneratorIssueCompleteBalance)
{
    auto sys = makeSystem("FR-FCFS", {30.0});
    const auto &gen = sys->generator(0);
    // Completions can lag issues only by the outstanding window.
    EXPECT_LE(gen.completedLines(), gen.issuedLines() + 16);
    EXPECT_GT(gen.completedLines(), 0u);
}

} // namespace
} // namespace pccs::dram
