/**
 * @file
 * Tests for the SoC presets and configuration helpers.
 */

#include <gtest/gtest.h>

#include "soc/soc_config.hh"

namespace pccs::soc {
namespace {

TEST(XavierPreset, Structure)
{
    const SocConfig soc = xavierLike();
    EXPECT_EQ(soc.pus.size(), 3u);
    EXPECT_GE(soc.puIndex(PuKind::Cpu), 0);
    EXPECT_GE(soc.puIndex(PuKind::Gpu), 0);
    EXPECT_GE(soc.puIndex(PuKind::Dla), 0);
    EXPECT_NEAR(soc.memory.peakBandwidth, 137.0, 0.5);
}

TEST(XavierPreset, Table6Frequencies)
{
    const SocConfig soc = xavierLike();
    EXPECT_NEAR(soc.pu(PuKind::Cpu).frequency, 2265.0, 1.0);
    EXPECT_NEAR(soc.pu(PuKind::Gpu).frequency, 1377.0, 1.0);
    EXPECT_NEAR(soc.pu(PuKind::Dla).frequency, 1395.2, 1.0);
}

TEST(XavierPreset, DrawCapsMatchFigure2)
{
    const SocConfig soc = xavierLike();
    EXPECT_NEAR(soc.pu(PuKind::Cpu).drawBandwidth(), 93.0, 1.0);
    EXPECT_NEAR(soc.pu(PuKind::Gpu).drawBandwidth(), 127.0, 1.0);
    EXPECT_NEAR(soc.pu(PuKind::Dla).drawBandwidth(), 30.0, 1.0);
}

TEST(SnapdragonPreset, Structure)
{
    const SocConfig soc = snapdragonLike();
    EXPECT_EQ(soc.pus.size(), 2u);
    EXPECT_GE(soc.puIndex(PuKind::Cpu), 0);
    EXPECT_GE(soc.puIndex(PuKind::Gpu), 0);
    EXPECT_EQ(soc.puIndex(PuKind::Dla), -1);
    EXPECT_NEAR(soc.memory.peakBandwidth, 34.0, 0.5);
}

TEST(SnapdragonPresetDeath, MissingDlaIsFatal)
{
    const SocConfig soc = snapdragonLike();
    EXPECT_EXIT(soc.pu(PuKind::Dla), ::testing::ExitedWithCode(1),
                "has no DLA");
}

TEST(PuParams, DrawBandwidthScalesWithClockUntilInterfaceCap)
{
    PuParams pu;
    pu.frequency = pu.maxFrequency = 1000.0;
    pu.interfaceBandwidth = 100.0;
    pu.issueBandwidth = 150.0;
    EXPECT_DOUBLE_EQ(pu.drawBandwidth(), 100.0);
    EXPECT_DOUBLE_EQ(pu.atFrequency(500.0).drawBandwidth(), 75.0);
    // The knee: issue capability crosses the interface cap at
    // f = fmax * iface / issue.
    EXPECT_NEAR(pu.atFrequency(1000.0 * 100.0 / 150.0).drawBandwidth(),
                100.0, 1e-9);
}

TEST(PuParams, ComputeScalesWithClock)
{
    PuParams pu;
    pu.frequency = pu.maxFrequency = 1000.0;
    pu.flopsPerCycle = 64.0;
    EXPECT_DOUBLE_EQ(pu.computeGflops(), 64.0);
    EXPECT_DOUBLE_EQ(pu.atFrequency(2000.0).computeGflops(), 128.0);
}

TEST(SocConfig, MemoryScaling)
{
    const SocConfig soc = xavierLike();
    const SocConfig half = soc.withMemoryScaled(0.5);
    EXPECT_NEAR(half.memory.peakBandwidth, 68.5, 1e-9);
    EXPECT_EQ(half.pus.size(), soc.pus.size());
}

TEST(ExternalDemands, SplitsAcrossOtherPus)
{
    const SocConfig soc = xavierLike();
    const std::size_t gpu =
        static_cast<std::size_t>(soc.puIndex(PuKind::Gpu));
    const auto ext = externalDemands(soc, gpu, 60.0);
    ASSERT_EQ(ext.size(), 2u); // CPU and DLA
    double total = 0.0;
    for (const auto &d : ext)
        total += d.demand;
    EXPECT_NEAR(total, 60.0, 1e-9);
}

TEST(ExternalDemands, ClipsAtDrawCapabilities)
{
    const SocConfig soc = snapdragonLike();
    const std::size_t gpu =
        static_cast<std::size_t>(soc.puIndex(PuKind::Gpu));
    // Only the CPU (draw ~20 GB/s) can generate pressure on the GPU:
    // a 50 GB/s request must clip to the CPU's capability.
    const auto ext = externalDemands(soc, gpu, 50.0);
    ASSERT_EQ(ext.size(), 1u);
    EXPECT_NEAR(ext[0].demand, soc.pu(PuKind::Cpu).drawBandwidth(),
                1e-9);
}

TEST(ExternalDemands, ZeroDemandIsEmpty)
{
    const SocConfig soc = xavierLike();
    EXPECT_TRUE(externalDemands(soc, 0, 0.0).empty());
}

TEST(PuKindNames, AllDistinct)
{
    EXPECT_STREQ(puKindName(PuKind::Cpu), "CPU");
    EXPECT_STREQ(puKindName(PuKind::Gpu), "GPU");
    EXPECT_STREQ(puKindName(PuKind::Dla), "DLA");
}

} // namespace
} // namespace pccs::soc
