/**
 * @file
 * Tests for bandwidth-trace phase detection and the end-to-end
 * trace -> phases -> piecewise-prediction pipeline.
 */

#include <gtest/gtest.h>

#include <vector>

#include "pccs/model.hh"
#include "pccs/phase_detect.hh"
#include "soc/trace.hh"
#include "workloads/rodinia.hh"

namespace pccs::model {
namespace {

std::vector<GBps>
step(std::initializer_list<std::pair<double, int>> levels)
{
    std::vector<GBps> trace;
    for (const auto &[level, count] : levels)
        trace.insert(trace.end(), count, level);
    return trace;
}

TEST(PhaseDetect, ConstantTraceIsOnePhase)
{
    const auto trace = step({{50.0, 100}});
    const auto phases = detectPhases(trace);
    ASSERT_EQ(phases.size(), 1u);
    EXPECT_EQ(phases[0].begin, 0u);
    EXPECT_EQ(phases[0].end, 100u);
    EXPECT_NEAR(phases[0].meanDemand, 50.0, 1e-9);
}

TEST(PhaseDetect, TwoLevelTrace)
{
    const auto trace = step({{90.0, 60}, {30.0, 60}});
    const auto phases = detectPhases(trace);
    ASSERT_EQ(phases.size(), 2u);
    EXPECT_NEAR(phases[0].meanDemand, 90.0, 5.0);
    EXPECT_NEAR(phases[1].meanDemand, 30.0, 5.0);
    // The cut lands near the true boundary.
    EXPECT_NEAR(static_cast<double>(phases[0].end), 60.0, 8.0);
}

TEST(PhaseDetect, FourPhaseCfdShape)
{
    // The CFD pattern: one high-BW kernel plus three medium ones.
    const auto trace =
        step({{95.0, 40}, {55.0, 30}, {50.0, 25}, {58.0, 30}});
    const auto phases = detectPhases(trace);
    // K2-K4 are within the merge threshold of each other, so 2-4
    // phases are acceptable; the high phase must stand alone.
    ASSERT_GE(phases.size(), 2u);
    EXPECT_NEAR(phases[0].meanDemand, 95.0, 5.0);
    for (std::size_t i = 1; i < phases.size(); ++i)
        EXPECT_LT(phases[i].meanDemand, 65.0);
}

TEST(PhaseDetect, PhasesCoverTraceContiguously)
{
    const auto trace = step({{80.0, 37}, {20.0, 23}, {60.0, 41}});
    const auto phases = detectPhases(trace);
    EXPECT_EQ(phases.front().begin, 0u);
    EXPECT_EQ(phases.back().end, trace.size());
    for (std::size_t i = 1; i < phases.size(); ++i)
        EXPECT_EQ(phases[i].begin, phases[i - 1].end);
}

TEST(PhaseDetect, NoiseDoesNotSplitPhases)
{
    std::vector<GBps> trace;
    unsigned long long s = 7;
    for (int i = 0; i < 200; ++i) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        const double jitter =
            (static_cast<double>(s >> 11) / (1ull << 53) - 0.5) * 6.0;
        trace.push_back((i < 100 ? 80.0 : 30.0) + jitter);
    }
    const auto phases = detectPhases(trace);
    EXPECT_EQ(phases.size(), 2u);
}

TEST(PhaseDetect, ShortBlipMergesAway)
{
    PhaseDetectorOptions opts;
    opts.minPhaseLength = 6;
    const auto trace = step({{50.0, 80}, {90.0, 2}, {50.0, 80}});
    const auto phases = detectPhases(trace, opts);
    EXPECT_EQ(phases.size(), 1u);
}

TEST(PhaseDetect, ToPhaseDemandsSharesSumToOne)
{
    const auto trace = step({{90.0, 30}, {30.0, 70}});
    const auto demands = toPhaseDemands(detectPhases(trace));
    double total = 0.0;
    for (const auto &d : demands)
        total += d.timeShare;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PhaseDetect, TimeSharesMatchSegmentLengths)
{
    const auto trace = step({{90.0, 25}, {30.0, 75}});
    const auto demands = toPhaseDemands(detectPhases(trace));
    ASSERT_EQ(demands.size(), 2u);
    EXPECT_NEAR(demands[0].timeShare, 0.25, 0.08);
    EXPECT_NEAR(demands[1].timeShare, 0.75, 0.08);
}

TEST(PhaseDetectDeath, EmptyTracePanics)
{
    EXPECT_DEATH(detectPhases({}), "trace");
}

PccsParams
gpuParams()
{
    PccsParams p;
    p.normalBw = 38.0;
    p.intensiveBw = 96.0;
    p.mrmc = 4.9;
    p.cbp = 45.0;
    p.tbwdc = 87.0;
    p.rateN = 1.0;
    p.peakBw = 137.0;
    return p;
}

TEST(PhaseDetect, PredictFromTraceMatchesManualPhases)
{
    const PccsModel m(gpuParams());
    const auto trace = step({{95.0, 30}, {55.0, 70}});
    const double via_trace = predictFromTrace(m, trace, 40.0);
    const std::vector<PhaseDemand> manual{{95.0, 0.3}, {55.0, 0.7}};
    const double via_manual = predictPiecewise(m, manual, 40.0);
    EXPECT_NEAR(via_trace, via_manual, 1.5);
}

TEST(TraceWorkload, SamplesMatchPhaseDurations)
{
    const soc::SocSimulator sim(soc::xavierLike());
    const std::size_t gpu = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Gpu));
    const auto w = workloads::cfdPhased(soc::PuKind::Gpu);
    soc::TraceOptions opts;
    opts.samplePeriod = 1e-3;
    const auto trace = soc::traceWorkload(sim, gpu, w, opts);
    double total_s = 0.0;
    for (const auto &ph : w.phases)
        total_s += sim.profile(gpu, ph).seconds;
    EXPECT_NEAR(static_cast<double>(trace.size()),
                total_s / opts.samplePeriod, 6.0);
}

TEST(TraceWorkload, NoiseStaysBounded)
{
    const soc::SocSimulator sim(soc::xavierLike());
    const std::size_t gpu = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Gpu));
    const auto w = soc::PhasedWorkload::single(
        workloads::rodiniaKernel("srad", soc::PuKind::Gpu));
    soc::TraceOptions opts;
    opts.noise = 0.05;
    const auto trace = soc::traceWorkload(sim, gpu, w, opts);
    const double x =
        sim.profile(gpu, w.phases[0]).bandwidthDemand;
    for (double v : trace) {
        EXPECT_GE(v, x * 0.94);
        EXPECT_LE(v, x * 1.06);
    }
}

TEST(TraceWorkload, EndToEndPipelineOnCfd)
{
    // The complete loop the paper leaves to "orthogonal work": sample
    // a standalone trace of the 4-phase CFD, detect phases, and
    // predict -- the result must track the known-phase prediction.
    const soc::SocSimulator sim(soc::xavierLike());
    const std::size_t gpu = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Gpu));
    const model::PccsModel m(gpuParams());
    const auto w = workloads::cfdPhased(soc::PuKind::Gpu);

    soc::TraceOptions opts;
    opts.noise = 0.03;
    const auto trace = soc::traceWorkload(sim, gpu, w, opts);

    std::vector<PhaseDemand> manual;
    double total_s = 0.0;
    for (const auto &ph : w.phases)
        total_s += sim.profile(gpu, ph).seconds;
    for (const auto &ph : w.phases) {
        const auto prof = sim.profile(gpu, ph);
        manual.push_back(
            {prof.bandwidthDemand, prof.seconds / total_s});
    }

    for (double y : {20.0, 45.0, 70.0}) {
        EXPECT_NEAR(predictFromTrace(m, trace, y),
                    predictPiecewise(m, manual, y), 3.0)
            << "y=" << y;
    }
}

} // namespace
} // namespace pccs::model
