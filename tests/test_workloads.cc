/**
 * @file
 * Tests for the workload library: Rodinia profiles, NN models for the
 * DLA, the CFD multi-phase program, and the Table 8 co-run triples.
 */

#include <gtest/gtest.h>

#include <set>

#include "soc/simulator.hh"
#include "workloads/nn.hh"
#include "workloads/rodinia.hh"
#include "workloads/table8.hh"

namespace pccs::workloads {
namespace {

TEST(Rodinia, SuiteHasTenBenchmarks)
{
    EXPECT_EQ(rodiniaSuite().size(), 10u);
    std::set<std::string> names;
    for (const auto &s : rodiniaSuite())
        names.insert(s.name);
    EXPECT_EQ(names.size(), 10u);
}

TEST(Rodinia, ComputeIntensiveTrio)
{
    // Section 4.1: HS, LC, HW are compute intensive; the other 7 are
    // memory intensive.
    int compute = 0;
    for (const auto &s : rodiniaSuite())
        if (s.computeIntensive)
            ++compute;
    EXPECT_EQ(compute, 3);
    EXPECT_TRUE(rodiniaSpec("hotspot").computeIntensive);
    EXPECT_TRUE(rodiniaSpec("leukocyte").computeIntensive);
    EXPECT_TRUE(rodiniaSpec("heartwall").computeIntensive);
    EXPECT_FALSE(rodiniaSpec("bfs").computeIntensive);
}

TEST(Rodinia, CpuListMatchesFigure9)
{
    const auto cpu = cpuBenchmarks();
    EXPECT_EQ(cpu.size(), 5u);
    EXPECT_EQ(gpuBenchmarks().size(), 10u);
}

TEST(Rodinia, UnknownBenchmarkIsFatal)
{
    EXPECT_EXIT(rodiniaSpec("doitgen"), ::testing::ExitedWithCode(1),
                "unknown Rodinia");
}

TEST(Rodinia, XavierDemandsHitTargets)
{
    const soc::SocSimulator sim(soc::xavierLike());
    for (const auto &spec : rodiniaSuite()) {
        const auto kc = rodiniaKernel(spec.name, soc::PuKind::Cpu);
        const auto kg = rodiniaKernel(spec.name, soc::PuKind::Gpu);
        EXPECT_NEAR(sim.profile(soc::PuKind::Cpu, kc).bandwidthDemand,
                    spec.cpuTarget, 0.05 * spec.cpuTarget + 0.5)
            << spec.name;
        EXPECT_NEAR(sim.profile(soc::PuKind::Gpu, kg).bandwidthDemand,
                    spec.gpuTarget, 0.05 * spec.gpuTarget + 0.5)
            << spec.name;
    }
}

TEST(Rodinia, ComputeIntensiveKernelsLandInMinorRegionDemands)
{
    const soc::SocSimulator sim(soc::xavierLike());
    for (const char *name : {"hotspot", "leukocyte", "heartwall"}) {
        const auto k = rodiniaKernel(name, soc::PuKind::Cpu);
        EXPECT_LT(sim.profile(soc::PuKind::Cpu, k).bandwidthDemand,
                  15.0)
            << name;
    }
}

TEST(Rodinia, SnapdragonDemandsAreLower)
{
    // The same binaries draw less bandwidth on the smaller SoC
    // (Section 4.1: hotspot moves into the minor contention category
    // on the Snapdragon).
    const soc::SocSimulator xavier(soc::xavierLike());
    const soc::SocSimulator snap(soc::snapdragonLike());
    for (const auto &spec : rodiniaSuite()) {
        const auto k = rodiniaKernel(spec.name, soc::PuKind::Cpu);
        const double on_x =
            xavier.profile(soc::PuKind::Cpu, k).bandwidthDemand;
        const double on_s =
            snap.profile(soc::PuKind::Cpu, k).bandwidthDemand;
        EXPECT_LT(on_s, on_x) << spec.name;
    }
}

TEST(Rodinia, KernelCacheReturnsSameProfile)
{
    const auto a = rodiniaKernel("bfs", soc::PuKind::Gpu);
    const auto b = rodiniaKernel("bfs", soc::PuKind::Gpu);
    EXPECT_DOUBLE_EQ(a.intensity, b.intensity);
    EXPECT_EQ(a.name, b.name);
}

TEST(Rodinia, PoorLocalityTrio)
{
    // The paper attributes bfs/k-means/b+tree's larger errors to poor
    // row-buffer behavior.
    EXPECT_LT(rodiniaSpec("bfs").locality,
              rodiniaSpec("streamcluster").locality);
    EXPECT_LT(rodiniaSpec("k-means").locality,
              rodiniaSpec("streamcluster").locality);
    EXPECT_LT(rodiniaSpec("b+tree").locality,
              rodiniaSpec("streamcluster").locality);
}

TEST(Cfd, FourPhasesWithOneHighBwKernel)
{
    const auto w = cfdPhased(soc::PuKind::Gpu);
    ASSERT_EQ(w.phases.size(), 4u);
    const soc::SocSimulator sim(soc::xavierLike());
    std::vector<double> demands;
    for (const auto &ph : w.phases)
        demands.push_back(
            sim.profile(soc::PuKind::Gpu, ph).bandwidthDemand);
    // K1 is the high-bandwidth kernel.
    EXPECT_GT(demands[0], demands[1] + 20.0);
    EXPECT_GT(demands[0], demands[2] + 20.0);
    EXPECT_GT(demands[0], demands[3] + 20.0);
}

TEST(Cfd, TotalBytesMatchSpec)
{
    const auto w = cfdPhased(soc::PuKind::Gpu);
    EXPECT_NEAR(w.totalBytes(), rodiniaSpec("cfd").workBytes, 1.0);
}

TEST(Nn, DlaModelsArePhased)
{
    EXPECT_EQ(resnet50Dla().phases.size(), 3u);
    EXPECT_EQ(vgg19Dla().phases.size(), 3u);
    EXPECT_EQ(alexnetDla().phases.size(), 2u);
}

TEST(Nn, DlaDemandsWithinDlaRange)
{
    // The DLA only achieves 20-30 GB/s in standalone runs (Sec. 4.1).
    const soc::SocSimulator sim(soc::xavierLike());
    for (const auto &w :
         {resnet50Dla(), vgg19Dla(), alexnetDla()}) {
        for (const auto &ph : w.phases) {
            const double d =
                sim.profile(soc::PuKind::Dla, ph).bandwidthDemand;
            EXPECT_GT(d, 5.0) << w.name;
            EXPECT_LE(d, 30.5) << w.name;
        }
    }
}

TEST(Nn, Vgg19IsTheBandwidthHeaviest)
{
    const soc::SocSimulator sim(soc::xavierLike());
    auto peak_demand = [&](const soc::PhasedWorkload &w) {
        double best = 0.0;
        for (const auto &ph : w.phases)
            best = std::max(
                best, sim.profile(soc::PuKind::Dla, ph).bandwidthDemand);
        return best;
    };
    EXPECT_GT(peak_demand(vgg19Dla()), peak_demand(resnet50Dla()));
    EXPECT_GT(peak_demand(vgg19Dla()), peak_demand(alexnetDla()));
}

TEST(Nn, MnistCalibratorHitsTarget)
{
    const soc::SocSimulator sim(soc::xavierLike());
    const auto k = mnistDla(15.0);
    EXPECT_NEAR(sim.profile(soc::PuKind::Dla, k).bandwidthDemand, 15.0,
                1.0);
}

TEST(Nn, WorkloadLookupByName)
{
    EXPECT_EQ(dlaWorkload("Resnet-50").name, "resnet-50");
    EXPECT_EQ(dlaWorkload("VGG-19").name, "vgg-19");
    EXPECT_EQ(dlaWorkload("Alexnet").name, "alexnet");
}

TEST(Nn, UnknownModelIsFatal)
{
    EXPECT_EXIT(dlaWorkload("bert"), ::testing::ExitedWithCode(1),
                "unknown DLA workload");
}

TEST(Table8, ElevenWorkloadsAthroughK)
{
    const auto &ws = table8Workloads();
    ASSERT_EQ(ws.size(), 11u);
    EXPECT_EQ(ws.front().id, "A");
    EXPECT_EQ(ws.back().id, "K");
    for (const auto &w : ws) {
        // Every referenced benchmark/model must resolve.
        EXPECT_NO_FATAL_FAILURE(rodiniaSpec(w.cpuBench));
        EXPECT_NO_FATAL_FAILURE(rodiniaSpec(w.gpuBench));
        EXPECT_EQ(dlaWorkload(w.dlaModel).phases.empty(), false);
    }
}

TEST(Table8, MatchesPaperRows)
{
    const auto &ws = table8Workloads();
    EXPECT_EQ(ws[0].cpuBench, "streamcluster");
    EXPECT_EQ(ws[0].gpuBench, "pathfinder");
    EXPECT_EQ(ws[0].dlaModel, "Resnet-50");
    EXPECT_EQ(ws[8].cpuBench, "hotspot");
    EXPECT_EQ(ws[8].gpuBench, "bfs");
    EXPECT_EQ(ws[8].dlaModel, "Alexnet");
}

TEST(RodiniaDeath, DlaPlacementIsFatal)
{
    EXPECT_EXIT(rodiniaKernel("bfs", soc::PuKind::Dla),
                ::testing::ExitedWithCode(1), "no DLA implementation");
}

} // namespace
} // namespace pccs::workloads
