file(REMOVE_RECURSE
  "libpccs_gables.a"
)
