# Empty compiler generated dependencies file for pccs_gables.
# This may be replaced when dependencies are built.
