file(REMOVE_RECURSE
  "CMakeFiles/pccs_gables.dir/gables.cc.o"
  "CMakeFiles/pccs_gables.dir/gables.cc.o.d"
  "libpccs_gables.a"
  "libpccs_gables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pccs_gables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
