# Empty dependencies file for pccs_dram.
# This may be replaced when dependencies are built.
