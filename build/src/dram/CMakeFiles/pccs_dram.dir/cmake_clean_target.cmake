file(REMOVE_RECURSE
  "libpccs_dram.a"
)
