file(REMOVE_RECURSE
  "CMakeFiles/pccs_dram.dir/address_map.cc.o"
  "CMakeFiles/pccs_dram.dir/address_map.cc.o.d"
  "CMakeFiles/pccs_dram.dir/bank.cc.o"
  "CMakeFiles/pccs_dram.dir/bank.cc.o.d"
  "CMakeFiles/pccs_dram.dir/config.cc.o"
  "CMakeFiles/pccs_dram.dir/config.cc.o.d"
  "CMakeFiles/pccs_dram.dir/controller.cc.o"
  "CMakeFiles/pccs_dram.dir/controller.cc.o.d"
  "CMakeFiles/pccs_dram.dir/multi_mc.cc.o"
  "CMakeFiles/pccs_dram.dir/multi_mc.cc.o.d"
  "CMakeFiles/pccs_dram.dir/sched_atlas.cc.o"
  "CMakeFiles/pccs_dram.dir/sched_atlas.cc.o.d"
  "CMakeFiles/pccs_dram.dir/sched_fcfs.cc.o"
  "CMakeFiles/pccs_dram.dir/sched_fcfs.cc.o.d"
  "CMakeFiles/pccs_dram.dir/sched_sms.cc.o"
  "CMakeFiles/pccs_dram.dir/sched_sms.cc.o.d"
  "CMakeFiles/pccs_dram.dir/sched_tcm.cc.o"
  "CMakeFiles/pccs_dram.dir/sched_tcm.cc.o.d"
  "CMakeFiles/pccs_dram.dir/scheduler.cc.o"
  "CMakeFiles/pccs_dram.dir/scheduler.cc.o.d"
  "CMakeFiles/pccs_dram.dir/system.cc.o"
  "CMakeFiles/pccs_dram.dir/system.cc.o.d"
  "CMakeFiles/pccs_dram.dir/timing.cc.o"
  "CMakeFiles/pccs_dram.dir/timing.cc.o.d"
  "CMakeFiles/pccs_dram.dir/trace_replay.cc.o"
  "CMakeFiles/pccs_dram.dir/trace_replay.cc.o.d"
  "CMakeFiles/pccs_dram.dir/traffic.cc.o"
  "CMakeFiles/pccs_dram.dir/traffic.cc.o.d"
  "libpccs_dram.a"
  "libpccs_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pccs_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
