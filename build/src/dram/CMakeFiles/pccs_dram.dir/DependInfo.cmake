
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/address_map.cc" "src/dram/CMakeFiles/pccs_dram.dir/address_map.cc.o" "gcc" "src/dram/CMakeFiles/pccs_dram.dir/address_map.cc.o.d"
  "/root/repo/src/dram/bank.cc" "src/dram/CMakeFiles/pccs_dram.dir/bank.cc.o" "gcc" "src/dram/CMakeFiles/pccs_dram.dir/bank.cc.o.d"
  "/root/repo/src/dram/config.cc" "src/dram/CMakeFiles/pccs_dram.dir/config.cc.o" "gcc" "src/dram/CMakeFiles/pccs_dram.dir/config.cc.o.d"
  "/root/repo/src/dram/controller.cc" "src/dram/CMakeFiles/pccs_dram.dir/controller.cc.o" "gcc" "src/dram/CMakeFiles/pccs_dram.dir/controller.cc.o.d"
  "/root/repo/src/dram/multi_mc.cc" "src/dram/CMakeFiles/pccs_dram.dir/multi_mc.cc.o" "gcc" "src/dram/CMakeFiles/pccs_dram.dir/multi_mc.cc.o.d"
  "/root/repo/src/dram/sched_atlas.cc" "src/dram/CMakeFiles/pccs_dram.dir/sched_atlas.cc.o" "gcc" "src/dram/CMakeFiles/pccs_dram.dir/sched_atlas.cc.o.d"
  "/root/repo/src/dram/sched_fcfs.cc" "src/dram/CMakeFiles/pccs_dram.dir/sched_fcfs.cc.o" "gcc" "src/dram/CMakeFiles/pccs_dram.dir/sched_fcfs.cc.o.d"
  "/root/repo/src/dram/sched_sms.cc" "src/dram/CMakeFiles/pccs_dram.dir/sched_sms.cc.o" "gcc" "src/dram/CMakeFiles/pccs_dram.dir/sched_sms.cc.o.d"
  "/root/repo/src/dram/sched_tcm.cc" "src/dram/CMakeFiles/pccs_dram.dir/sched_tcm.cc.o" "gcc" "src/dram/CMakeFiles/pccs_dram.dir/sched_tcm.cc.o.d"
  "/root/repo/src/dram/scheduler.cc" "src/dram/CMakeFiles/pccs_dram.dir/scheduler.cc.o" "gcc" "src/dram/CMakeFiles/pccs_dram.dir/scheduler.cc.o.d"
  "/root/repo/src/dram/system.cc" "src/dram/CMakeFiles/pccs_dram.dir/system.cc.o" "gcc" "src/dram/CMakeFiles/pccs_dram.dir/system.cc.o.d"
  "/root/repo/src/dram/timing.cc" "src/dram/CMakeFiles/pccs_dram.dir/timing.cc.o" "gcc" "src/dram/CMakeFiles/pccs_dram.dir/timing.cc.o.d"
  "/root/repo/src/dram/trace_replay.cc" "src/dram/CMakeFiles/pccs_dram.dir/trace_replay.cc.o" "gcc" "src/dram/CMakeFiles/pccs_dram.dir/trace_replay.cc.o.d"
  "/root/repo/src/dram/traffic.cc" "src/dram/CMakeFiles/pccs_dram.dir/traffic.cc.o" "gcc" "src/dram/CMakeFiles/pccs_dram.dir/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pccs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
