file(REMOVE_RECURSE
  "CMakeFiles/pccs_common.dir/logging.cc.o"
  "CMakeFiles/pccs_common.dir/logging.cc.o.d"
  "CMakeFiles/pccs_common.dir/rng.cc.o"
  "CMakeFiles/pccs_common.dir/rng.cc.o.d"
  "CMakeFiles/pccs_common.dir/statistics.cc.o"
  "CMakeFiles/pccs_common.dir/statistics.cc.o.d"
  "CMakeFiles/pccs_common.dir/table.cc.o"
  "CMakeFiles/pccs_common.dir/table.cc.o.d"
  "libpccs_common.a"
  "libpccs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pccs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
