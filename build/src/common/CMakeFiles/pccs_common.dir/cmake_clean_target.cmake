file(REMOVE_RECURSE
  "libpccs_common.a"
)
