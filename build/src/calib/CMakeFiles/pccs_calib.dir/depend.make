# Empty dependencies file for pccs_calib.
# This may be replaced when dependencies are built.
