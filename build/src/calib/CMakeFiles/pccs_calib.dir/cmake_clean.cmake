file(REMOVE_RECURSE
  "CMakeFiles/pccs_calib.dir/calibrator.cc.o"
  "CMakeFiles/pccs_calib.dir/calibrator.cc.o.d"
  "libpccs_calib.a"
  "libpccs_calib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pccs_calib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
