file(REMOVE_RECURSE
  "libpccs_calib.a"
)
