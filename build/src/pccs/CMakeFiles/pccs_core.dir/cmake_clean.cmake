file(REMOVE_RECURSE
  "CMakeFiles/pccs_core.dir/builder.cc.o"
  "CMakeFiles/pccs_core.dir/builder.cc.o.d"
  "CMakeFiles/pccs_core.dir/corun.cc.o"
  "CMakeFiles/pccs_core.dir/corun.cc.o.d"
  "CMakeFiles/pccs_core.dir/design.cc.o"
  "CMakeFiles/pccs_core.dir/design.cc.o.d"
  "CMakeFiles/pccs_core.dir/model.cc.o"
  "CMakeFiles/pccs_core.dir/model.cc.o.d"
  "CMakeFiles/pccs_core.dir/phase_detect.cc.o"
  "CMakeFiles/pccs_core.dir/phase_detect.cc.o.d"
  "CMakeFiles/pccs_core.dir/phases.cc.o"
  "CMakeFiles/pccs_core.dir/phases.cc.o.d"
  "CMakeFiles/pccs_core.dir/placement.cc.o"
  "CMakeFiles/pccs_core.dir/placement.cc.o.d"
  "CMakeFiles/pccs_core.dir/power.cc.o"
  "CMakeFiles/pccs_core.dir/power.cc.o.d"
  "CMakeFiles/pccs_core.dir/scaling.cc.o"
  "CMakeFiles/pccs_core.dir/scaling.cc.o.d"
  "CMakeFiles/pccs_core.dir/serialize.cc.o"
  "CMakeFiles/pccs_core.dir/serialize.cc.o.d"
  "libpccs_core.a"
  "libpccs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pccs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
