file(REMOVE_RECURSE
  "libpccs_core.a"
)
