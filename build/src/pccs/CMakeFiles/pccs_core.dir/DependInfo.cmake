
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pccs/builder.cc" "src/pccs/CMakeFiles/pccs_core.dir/builder.cc.o" "gcc" "src/pccs/CMakeFiles/pccs_core.dir/builder.cc.o.d"
  "/root/repo/src/pccs/corun.cc" "src/pccs/CMakeFiles/pccs_core.dir/corun.cc.o" "gcc" "src/pccs/CMakeFiles/pccs_core.dir/corun.cc.o.d"
  "/root/repo/src/pccs/design.cc" "src/pccs/CMakeFiles/pccs_core.dir/design.cc.o" "gcc" "src/pccs/CMakeFiles/pccs_core.dir/design.cc.o.d"
  "/root/repo/src/pccs/model.cc" "src/pccs/CMakeFiles/pccs_core.dir/model.cc.o" "gcc" "src/pccs/CMakeFiles/pccs_core.dir/model.cc.o.d"
  "/root/repo/src/pccs/phase_detect.cc" "src/pccs/CMakeFiles/pccs_core.dir/phase_detect.cc.o" "gcc" "src/pccs/CMakeFiles/pccs_core.dir/phase_detect.cc.o.d"
  "/root/repo/src/pccs/phases.cc" "src/pccs/CMakeFiles/pccs_core.dir/phases.cc.o" "gcc" "src/pccs/CMakeFiles/pccs_core.dir/phases.cc.o.d"
  "/root/repo/src/pccs/placement.cc" "src/pccs/CMakeFiles/pccs_core.dir/placement.cc.o" "gcc" "src/pccs/CMakeFiles/pccs_core.dir/placement.cc.o.d"
  "/root/repo/src/pccs/power.cc" "src/pccs/CMakeFiles/pccs_core.dir/power.cc.o" "gcc" "src/pccs/CMakeFiles/pccs_core.dir/power.cc.o.d"
  "/root/repo/src/pccs/scaling.cc" "src/pccs/CMakeFiles/pccs_core.dir/scaling.cc.o" "gcc" "src/pccs/CMakeFiles/pccs_core.dir/scaling.cc.o.d"
  "/root/repo/src/pccs/serialize.cc" "src/pccs/CMakeFiles/pccs_core.dir/serialize.cc.o" "gcc" "src/pccs/CMakeFiles/pccs_core.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/calib/CMakeFiles/pccs_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/pccs_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pccs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
