# Empty dependencies file for pccs_core.
# This may be replaced when dependencies are built.
