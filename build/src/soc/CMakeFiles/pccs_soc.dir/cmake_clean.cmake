file(REMOVE_RECURSE
  "CMakeFiles/pccs_soc.dir/builder.cc.o"
  "CMakeFiles/pccs_soc.dir/builder.cc.o.d"
  "CMakeFiles/pccs_soc.dir/exec_model.cc.o"
  "CMakeFiles/pccs_soc.dir/exec_model.cc.o.d"
  "CMakeFiles/pccs_soc.dir/memory_model.cc.o"
  "CMakeFiles/pccs_soc.dir/memory_model.cc.o.d"
  "CMakeFiles/pccs_soc.dir/pu.cc.o"
  "CMakeFiles/pccs_soc.dir/pu.cc.o.d"
  "CMakeFiles/pccs_soc.dir/simulator.cc.o"
  "CMakeFiles/pccs_soc.dir/simulator.cc.o.d"
  "CMakeFiles/pccs_soc.dir/soc_config.cc.o"
  "CMakeFiles/pccs_soc.dir/soc_config.cc.o.d"
  "CMakeFiles/pccs_soc.dir/trace.cc.o"
  "CMakeFiles/pccs_soc.dir/trace.cc.o.d"
  "libpccs_soc.a"
  "libpccs_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pccs_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
