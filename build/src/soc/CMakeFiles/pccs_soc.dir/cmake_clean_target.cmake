file(REMOVE_RECURSE
  "libpccs_soc.a"
)
