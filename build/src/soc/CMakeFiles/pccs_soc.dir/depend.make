# Empty dependencies file for pccs_soc.
# This may be replaced when dependencies are built.
