
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/builder.cc" "src/soc/CMakeFiles/pccs_soc.dir/builder.cc.o" "gcc" "src/soc/CMakeFiles/pccs_soc.dir/builder.cc.o.d"
  "/root/repo/src/soc/exec_model.cc" "src/soc/CMakeFiles/pccs_soc.dir/exec_model.cc.o" "gcc" "src/soc/CMakeFiles/pccs_soc.dir/exec_model.cc.o.d"
  "/root/repo/src/soc/memory_model.cc" "src/soc/CMakeFiles/pccs_soc.dir/memory_model.cc.o" "gcc" "src/soc/CMakeFiles/pccs_soc.dir/memory_model.cc.o.d"
  "/root/repo/src/soc/pu.cc" "src/soc/CMakeFiles/pccs_soc.dir/pu.cc.o" "gcc" "src/soc/CMakeFiles/pccs_soc.dir/pu.cc.o.d"
  "/root/repo/src/soc/simulator.cc" "src/soc/CMakeFiles/pccs_soc.dir/simulator.cc.o" "gcc" "src/soc/CMakeFiles/pccs_soc.dir/simulator.cc.o.d"
  "/root/repo/src/soc/soc_config.cc" "src/soc/CMakeFiles/pccs_soc.dir/soc_config.cc.o" "gcc" "src/soc/CMakeFiles/pccs_soc.dir/soc_config.cc.o.d"
  "/root/repo/src/soc/trace.cc" "src/soc/CMakeFiles/pccs_soc.dir/trace.cc.o" "gcc" "src/soc/CMakeFiles/pccs_soc.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pccs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
