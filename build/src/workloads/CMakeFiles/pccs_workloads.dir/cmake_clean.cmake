file(REMOVE_RECURSE
  "CMakeFiles/pccs_workloads.dir/nn.cc.o"
  "CMakeFiles/pccs_workloads.dir/nn.cc.o.d"
  "CMakeFiles/pccs_workloads.dir/rodinia.cc.o"
  "CMakeFiles/pccs_workloads.dir/rodinia.cc.o.d"
  "CMakeFiles/pccs_workloads.dir/table8.cc.o"
  "CMakeFiles/pccs_workloads.dir/table8.cc.o.d"
  "libpccs_workloads.a"
  "libpccs_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pccs_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
