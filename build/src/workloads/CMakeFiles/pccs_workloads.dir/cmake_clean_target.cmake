file(REMOVE_RECURSE
  "libpccs_workloads.a"
)
