# Empty compiler generated dependencies file for pccs_workloads.
# This may be replaced when dependencies are built.
