
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/nn.cc" "src/workloads/CMakeFiles/pccs_workloads.dir/nn.cc.o" "gcc" "src/workloads/CMakeFiles/pccs_workloads.dir/nn.cc.o.d"
  "/root/repo/src/workloads/rodinia.cc" "src/workloads/CMakeFiles/pccs_workloads.dir/rodinia.cc.o" "gcc" "src/workloads/CMakeFiles/pccs_workloads.dir/rodinia.cc.o.d"
  "/root/repo/src/workloads/table8.cc" "src/workloads/CMakeFiles/pccs_workloads.dir/table8.cc.o" "gcc" "src/workloads/CMakeFiles/pccs_workloads.dir/table8.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/calib/CMakeFiles/pccs_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/pccs_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pccs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
