# Empty compiler generated dependencies file for test_fuzz_dram.
# This may be replaced when dependencies are built.
