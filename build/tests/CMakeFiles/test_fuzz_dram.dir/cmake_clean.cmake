file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_dram.dir/test_fuzz_dram.cc.o"
  "CMakeFiles/test_fuzz_dram.dir/test_fuzz_dram.cc.o.d"
  "test_fuzz_dram"
  "test_fuzz_dram.pdb"
  "test_fuzz_dram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
