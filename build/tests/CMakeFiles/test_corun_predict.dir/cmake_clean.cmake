file(REMOVE_RECURSE
  "CMakeFiles/test_corun_predict.dir/test_corun_predict.cc.o"
  "CMakeFiles/test_corun_predict.dir/test_corun_predict.cc.o.d"
  "test_corun_predict"
  "test_corun_predict.pdb"
  "test_corun_predict[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corun_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
