# Empty dependencies file for test_corun_predict.
# This may be replaced when dependencies are built.
