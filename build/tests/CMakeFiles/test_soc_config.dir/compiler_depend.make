# Empty compiler generated dependencies file for test_soc_config.
# This may be replaced when dependencies are built.
