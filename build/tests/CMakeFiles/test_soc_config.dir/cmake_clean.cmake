file(REMOVE_RECURSE
  "CMakeFiles/test_soc_config.dir/test_soc_config.cc.o"
  "CMakeFiles/test_soc_config.dir/test_soc_config.cc.o.d"
  "test_soc_config"
  "test_soc_config.pdb"
  "test_soc_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soc_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
