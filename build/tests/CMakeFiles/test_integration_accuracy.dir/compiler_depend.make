# Empty compiler generated dependencies file for test_integration_accuracy.
# This may be replaced when dependencies are built.
