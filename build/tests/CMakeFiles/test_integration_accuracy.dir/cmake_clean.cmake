file(REMOVE_RECURSE
  "CMakeFiles/test_integration_accuracy.dir/test_integration_accuracy.cc.o"
  "CMakeFiles/test_integration_accuracy.dir/test_integration_accuracy.cc.o.d"
  "test_integration_accuracy"
  "test_integration_accuracy.pdb"
  "test_integration_accuracy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
