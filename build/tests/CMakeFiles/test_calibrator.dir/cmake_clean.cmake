file(REMOVE_RECURSE
  "CMakeFiles/test_calibrator.dir/test_calibrator.cc.o"
  "CMakeFiles/test_calibrator.dir/test_calibrator.cc.o.d"
  "test_calibrator"
  "test_calibrator.pdb"
  "test_calibrator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calibrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
