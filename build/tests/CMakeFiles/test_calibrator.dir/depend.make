# Empty dependencies file for test_calibrator.
# This may be replaced when dependencies are built.
