# Empty compiler generated dependencies file for test_multi_mc.
# This may be replaced when dependencies are built.
