file(REMOVE_RECURSE
  "CMakeFiles/test_multi_mc.dir/test_multi_mc.cc.o"
  "CMakeFiles/test_multi_mc.dir/test_multi_mc.cc.o.d"
  "test_multi_mc"
  "test_multi_mc.pdb"
  "test_multi_mc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
