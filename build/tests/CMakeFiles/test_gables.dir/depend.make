# Empty dependencies file for test_gables.
# This may be replaced when dependencies are built.
