file(REMOVE_RECURSE
  "CMakeFiles/test_gables.dir/test_gables.cc.o"
  "CMakeFiles/test_gables.dir/test_gables.cc.o.d"
  "test_gables"
  "test_gables.pdb"
  "test_gables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
