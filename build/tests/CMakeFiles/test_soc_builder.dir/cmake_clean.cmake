file(REMOVE_RECURSE
  "CMakeFiles/test_soc_builder.dir/test_soc_builder.cc.o"
  "CMakeFiles/test_soc_builder.dir/test_soc_builder.cc.o.d"
  "test_soc_builder"
  "test_soc_builder.pdb"
  "test_soc_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soc_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
