# Empty dependencies file for test_dram_refresh.
# This may be replaced when dependencies are built.
