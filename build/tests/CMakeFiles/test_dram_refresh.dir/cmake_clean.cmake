file(REMOVE_RECURSE
  "CMakeFiles/test_dram_refresh.dir/test_dram_refresh.cc.o"
  "CMakeFiles/test_dram_refresh.dir/test_dram_refresh.cc.o.d"
  "test_dram_refresh"
  "test_dram_refresh.pdb"
  "test_dram_refresh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dram_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
