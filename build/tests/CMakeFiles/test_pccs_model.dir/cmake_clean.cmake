file(REMOVE_RECURSE
  "CMakeFiles/test_pccs_model.dir/test_pccs_model.cc.o"
  "CMakeFiles/test_pccs_model.dir/test_pccs_model.cc.o.d"
  "test_pccs_model"
  "test_pccs_model.pdb"
  "test_pccs_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pccs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
