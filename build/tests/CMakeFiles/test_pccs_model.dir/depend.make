# Empty dependencies file for test_pccs_model.
# This may be replaced when dependencies are built.
