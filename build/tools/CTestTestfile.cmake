# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_calibrate "pccs" "calibrate" "--soc" "snapdragon" "--pu" "cpu")
set_tests_properties(cli_calibrate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_predict "pccs" "predict" "--soc" "snapdragon" "--pu" "gpu" "--demand" "20" "--external" "15")
set_tests_properties(cli_predict PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_region "pccs" "region" "--soc" "xavier" "--pu" "gpu" "--demand" "110")
set_tests_properties(cli_region PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_phases "pccs" "phases" "--trace" "/root/repo/build/cli_trace.txt" "--soc" "xavier" "--pu" "gpu" "--external" "50")
set_tests_properties(cli_phases PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
