file(REMOVE_RECURSE
  "CMakeFiles/pccs_cli.dir/pccs_cli.cc.o"
  "CMakeFiles/pccs_cli.dir/pccs_cli.cc.o.d"
  "pccs"
  "pccs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pccs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
