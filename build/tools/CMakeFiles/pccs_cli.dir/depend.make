# Empty dependencies file for pccs_cli.
# This may be replaced when dependencies are built.
