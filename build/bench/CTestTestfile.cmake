# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig02_bw_satisfaction "/root/repo/build/bench/fig02_bw_satisfaction")
set_tests_properties(bench_smoke_fig02_bw_satisfaction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig03_three_regions "/root/repo/build/bench/fig03_three_regions")
set_tests_properties(bench_smoke_fig03_three_regions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig08_xavier_gpu "/root/repo/build/bench/fig08_xavier_gpu")
set_tests_properties(bench_smoke_fig08_xavier_gpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig09_xavier_cpu "/root/repo/build/bench/fig09_xavier_cpu")
set_tests_properties(bench_smoke_fig09_xavier_cpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig10_snapdragon_gpu "/root/repo/build/bench/fig10_snapdragon_gpu")
set_tests_properties(bench_smoke_fig10_snapdragon_gpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig11_snapdragon_cpu "/root/repo/build/bench/fig11_snapdragon_cpu")
set_tests_properties(bench_smoke_fig11_snapdragon_cpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig12_xavier_dla "/root/repo/build/bench/fig12_xavier_dla")
set_tests_properties(bench_smoke_fig12_xavier_dla PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig13_cfd_phases "/root/repo/build/bench/fig13_cfd_phases")
set_tests_properties(bench_smoke_fig13_cfd_phases PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig14_colocation "/root/repo/build/bench/fig14_colocation")
set_tests_properties(bench_smoke_fig14_colocation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table05_linear_scaling "/root/repo/build/bench/table05_linear_scaling")
set_tests_properties(bench_smoke_table05_linear_scaling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table07_model_params "/root/repo/build/bench/table07_model_params")
set_tests_properties(bench_smoke_table07_model_params PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table09_freq_selection "/root/repo/build/bench/table09_freq_selection")
set_tests_properties(bench_smoke_table09_freq_selection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_allocation "/root/repo/build/bench/ablation_allocation")
set_tests_properties(bench_smoke_ablation_allocation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ext_power_budget "/root/repo/build/bench/ext_power_budget")
set_tests_properties(bench_smoke_ext_power_budget PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
