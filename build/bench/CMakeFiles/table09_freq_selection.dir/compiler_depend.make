# Empty compiler generated dependencies file for table09_freq_selection.
# This may be replaced when dependencies are built.
