file(REMOVE_RECURSE
  "CMakeFiles/table09_freq_selection.dir/table09_freq_selection.cc.o"
  "CMakeFiles/table09_freq_selection.dir/table09_freq_selection.cc.o.d"
  "table09_freq_selection"
  "table09_freq_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_freq_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
