file(REMOVE_RECURSE
  "CMakeFiles/fig09_xavier_cpu.dir/fig09_xavier_cpu.cc.o"
  "CMakeFiles/fig09_xavier_cpu.dir/fig09_xavier_cpu.cc.o.d"
  "fig09_xavier_cpu"
  "fig09_xavier_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_xavier_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
