# Empty compiler generated dependencies file for fig09_xavier_cpu.
# This may be replaced when dependencies are built.
