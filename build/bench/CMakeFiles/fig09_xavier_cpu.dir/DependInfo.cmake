
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_xavier_cpu.cc" "bench/CMakeFiles/fig09_xavier_cpu.dir/fig09_xavier_cpu.cc.o" "gcc" "bench/CMakeFiles/fig09_xavier_cpu.dir/fig09_xavier_cpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/pccs_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/pccs_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pccs_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/gables/CMakeFiles/pccs_gables.dir/DependInfo.cmake"
  "/root/repo/build/src/pccs/CMakeFiles/pccs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/pccs_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/pccs_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pccs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
