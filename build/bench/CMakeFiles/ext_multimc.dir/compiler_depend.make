# Empty compiler generated dependencies file for ext_multimc.
# This may be replaced when dependencies are built.
