file(REMOVE_RECURSE
  "CMakeFiles/ext_multimc.dir/ext_multimc.cc.o"
  "CMakeFiles/ext_multimc.dir/ext_multimc.cc.o.d"
  "ext_multimc"
  "ext_multimc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multimc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
