file(REMOVE_RECURSE
  "CMakeFiles/fig11_snapdragon_cpu.dir/fig11_snapdragon_cpu.cc.o"
  "CMakeFiles/fig11_snapdragon_cpu.dir/fig11_snapdragon_cpu.cc.o.d"
  "fig11_snapdragon_cpu"
  "fig11_snapdragon_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_snapdragon_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
