# Empty compiler generated dependencies file for fig11_snapdragon_cpu.
# This may be replaced when dependencies are built.
