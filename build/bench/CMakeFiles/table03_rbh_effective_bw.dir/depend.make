# Empty dependencies file for table03_rbh_effective_bw.
# This may be replaced when dependencies are built.
