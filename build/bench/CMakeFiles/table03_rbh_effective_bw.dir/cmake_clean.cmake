file(REMOVE_RECURSE
  "CMakeFiles/table03_rbh_effective_bw.dir/table03_rbh_effective_bw.cc.o"
  "CMakeFiles/table03_rbh_effective_bw.dir/table03_rbh_effective_bw.cc.o.d"
  "table03_rbh_effective_bw"
  "table03_rbh_effective_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_rbh_effective_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
