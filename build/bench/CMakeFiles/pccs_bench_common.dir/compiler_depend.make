# Empty compiler generated dependencies file for pccs_bench_common.
# This may be replaced when dependencies are built.
