file(REMOVE_RECURSE
  "../lib/libpccs_bench_common.a"
  "../lib/libpccs_bench_common.pdb"
  "CMakeFiles/pccs_bench_common.dir/common.cc.o"
  "CMakeFiles/pccs_bench_common.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pccs_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
