file(REMOVE_RECURSE
  "../lib/libpccs_bench_common.a"
)
