file(REMOVE_RECURSE
  "CMakeFiles/table07_model_params.dir/table07_model_params.cc.o"
  "CMakeFiles/table07_model_params.dir/table07_model_params.cc.o.d"
  "table07_model_params"
  "table07_model_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_model_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
