# Empty compiler generated dependencies file for table07_model_params.
# This may be replaced when dependencies are built.
