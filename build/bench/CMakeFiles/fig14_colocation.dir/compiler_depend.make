# Empty compiler generated dependencies file for fig14_colocation.
# This may be replaced when dependencies are built.
