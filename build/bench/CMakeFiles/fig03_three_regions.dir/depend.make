# Empty dependencies file for fig03_three_regions.
# This may be replaced when dependencies are built.
