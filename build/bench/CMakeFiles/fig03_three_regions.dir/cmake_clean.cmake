file(REMOVE_RECURSE
  "CMakeFiles/fig03_three_regions.dir/fig03_three_regions.cc.o"
  "CMakeFiles/fig03_three_regions.dir/fig03_three_regions.cc.o.d"
  "fig03_three_regions"
  "fig03_three_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_three_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
