# Empty dependencies file for fig02_bw_satisfaction.
# This may be replaced when dependencies are built.
