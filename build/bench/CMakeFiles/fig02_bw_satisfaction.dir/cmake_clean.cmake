file(REMOVE_RECURSE
  "CMakeFiles/fig02_bw_satisfaction.dir/fig02_bw_satisfaction.cc.o"
  "CMakeFiles/fig02_bw_satisfaction.dir/fig02_bw_satisfaction.cc.o.d"
  "fig02_bw_satisfaction"
  "fig02_bw_satisfaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_bw_satisfaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
