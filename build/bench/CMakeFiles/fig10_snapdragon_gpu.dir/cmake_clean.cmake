file(REMOVE_RECURSE
  "CMakeFiles/fig10_snapdragon_gpu.dir/fig10_snapdragon_gpu.cc.o"
  "CMakeFiles/fig10_snapdragon_gpu.dir/fig10_snapdragon_gpu.cc.o.d"
  "fig10_snapdragon_gpu"
  "fig10_snapdragon_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_snapdragon_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
