# Empty compiler generated dependencies file for fig10_snapdragon_gpu.
# This may be replaced when dependencies are built.
