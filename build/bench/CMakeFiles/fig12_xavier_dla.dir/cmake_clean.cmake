file(REMOVE_RECURSE
  "CMakeFiles/fig12_xavier_dla.dir/fig12_xavier_dla.cc.o"
  "CMakeFiles/fig12_xavier_dla.dir/fig12_xavier_dla.cc.o.d"
  "fig12_xavier_dla"
  "fig12_xavier_dla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_xavier_dla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
