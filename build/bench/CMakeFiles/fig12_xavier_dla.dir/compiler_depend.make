# Empty compiler generated dependencies file for fig12_xavier_dla.
# This may be replaced when dependencies are built.
