file(REMOVE_RECURSE
  "CMakeFiles/ext_power_budget.dir/ext_power_budget.cc.o"
  "CMakeFiles/ext_power_budget.dir/ext_power_budget.cc.o.d"
  "ext_power_budget"
  "ext_power_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_power_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
