file(REMOVE_RECURSE
  "CMakeFiles/table05_linear_scaling.dir/table05_linear_scaling.cc.o"
  "CMakeFiles/table05_linear_scaling.dir/table05_linear_scaling.cc.o.d"
  "table05_linear_scaling"
  "table05_linear_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_linear_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
