# Empty dependencies file for table05_linear_scaling.
# This may be replaced when dependencies are built.
