# Empty dependencies file for fig08_xavier_gpu.
# This may be replaced when dependencies are built.
