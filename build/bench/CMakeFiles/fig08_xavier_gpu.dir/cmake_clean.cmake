file(REMOVE_RECURSE
  "CMakeFiles/fig08_xavier_gpu.dir/fig08_xavier_gpu.cc.o"
  "CMakeFiles/fig08_xavier_gpu.dir/fig08_xavier_gpu.cc.o.d"
  "fig08_xavier_gpu"
  "fig08_xavier_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_xavier_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
