# Empty dependencies file for fig05_scheduling_policies.
# This may be replaced when dependencies are built.
