file(REMOVE_RECURSE
  "CMakeFiles/fig05_scheduling_policies.dir/fig05_scheduling_policies.cc.o"
  "CMakeFiles/fig05_scheduling_policies.dir/fig05_scheduling_policies.cc.o.d"
  "fig05_scheduling_policies"
  "fig05_scheduling_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_scheduling_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
