file(REMOVE_RECURSE
  "CMakeFiles/fig13_cfd_phases.dir/fig13_cfd_phases.cc.o"
  "CMakeFiles/fig13_cfd_phases.dir/fig13_cfd_phases.cc.o.d"
  "fig13_cfd_phases"
  "fig13_cfd_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cfd_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
