# Empty dependencies file for fig13_cfd_phases.
# This may be replaced when dependencies are built.
