file(REMOVE_RECURSE
  "CMakeFiles/autonomous_vehicle.dir/autonomous_vehicle.cpp.o"
  "CMakeFiles/autonomous_vehicle.dir/autonomous_vehicle.cpp.o.d"
  "autonomous_vehicle"
  "autonomous_vehicle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonomous_vehicle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
