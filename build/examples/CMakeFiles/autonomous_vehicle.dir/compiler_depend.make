# Empty compiler generated dependencies file for autonomous_vehicle.
# This may be replaced when dependencies are built.
