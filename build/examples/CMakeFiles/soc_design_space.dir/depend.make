# Empty dependencies file for soc_design_space.
# This may be replaced when dependencies are built.
