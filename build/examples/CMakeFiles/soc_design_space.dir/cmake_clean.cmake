file(REMOVE_RECURSE
  "CMakeFiles/soc_design_space.dir/soc_design_space.cpp.o"
  "CMakeFiles/soc_design_space.dir/soc_design_space.cpp.o.d"
  "soc_design_space"
  "soc_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
