/**
 * @file
 * pccs — command-line front end to the library.
 *
 * Subcommands:
 *   calibrate --soc xavier|snapdragon --pu cpu|gpu|dla [--out FILE]
 *       Build a PU's slowdown model from calibrator sweeps and print
 *       (optionally save) its parameters.
 *   predict --model FILE --demand X --external Y
 *   predict --soc S --pu P --demand X --external Y
 *       Predict the achieved relative speed (%) of a kernel.
 *   scale --model FILE --ratio R [--out FILE]
 *       Linearly scale a model to a new memory bandwidth (Sec. 3.3).
 *   explore --soc S --pu P --bench NAME --external Y --allowed PCT
 *       Pick the lowest PU clock meeting a co-run slowdown budget.
 *   region --model FILE --demand X
 *       Classify a demand into its contention region.
 *   sweep --soc S --pu P --bench NAME [--max-external Y] [--steps N]
 *       Sweep a kernel under external pressure through the parallel
 *       sweep engine and write JSON/CSV artifacts.
 *   serve [--host H] [--port N] [--shards N]
 *         [--model NAME=FILE,...] [--calibrate SOC:PU,...]
 *       Run the prediction service: newline-delimited JSON over TCP
 *       (see DESIGN.md sections 9 and 13). --shards (or
 *       PCCS_SERVE_SHARDS) sets the event-loop shard count;
 *       default = hardware concurrency.
 *   client --port N [--host H] (--send JSON | --op OP [fields])
 *       Send one request to a running service and print the response.
 *
 *   schedule [--soc S] [--policy strict|best-effort|fairness]
 *            [--trace FILE] [--capacity N] [--margin F]
 *            [--grid-steps N]
 *       Run the QoS admission controller over an offline arrival
 *       trace (or a built-in demo), then replay the accepted schedule
 *       through the SoC simulator oracle and report SLO attainment.
 *   multimc [--mcs N] [--channels N]
 *           [--mapping interleaved|partitioned] [--policy NAME]
 *           [--kernels N] [--external N]
 *       Calibrate a victim against aggressors on the cycle-accurate
 *       multi-controller DRAM subsystem and print the rela matrix.
 *   policies [--format names|table]
 *       List the registered scheduling policies with their
 *       capability flags (or one name per line for scripts).
 *
 *
 * `pccs --version` prints the tool version. Global options:
 * --jobs N caps the sweep engine's worker threads (equivalent to
 * setting PCCS_JOBS=N); --dram-reference selects the per-cycle
 * reference DRAM loops (single-MC reference core + multi-MC
 * lockstep); --mc-parallel selects the sharded-parallel multi-MC run
 * mode (PCCS_MC_SHARDS sizes the worker team).
 */

#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <fstream>

#include "common/logging.hh"
#include "common/table.hh"
#include "gables/gables.hh"
#include "pccs/builder.hh"
#include "pccs/design.hh"
#include "pccs/phase_detect.hh"
#include "pccs/scaling.hh"
#include "pccs/serialize.hh"
#include "runner/run_spec.hh"
#include "runner/sweep_engine.hh"
#include "sched/oracle.hh"
#include "sched/qos.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/registry.hh"
#include "serve/server.hh"
#include "workloads/rodinia.hh"

#ifndef PCCS_CLI_VERSION
#define PCCS_CLI_VERSION "0.3.0"
#endif

using namespace pccs;

namespace {

using ArgMap = std::map<std::string, std::string>;

void usage(std::FILE *to);

ArgMap
parseArgs(int argc, char **argv, int first)
{
    ArgMap args;
    for (int i = first; i < argc; ++i) {
        const std::string key = argv[i];
        if (key.rfind("--", 0) != 0)
            fatal("expected --option, got '%s'", key.c_str());
        if (i + 1 >= argc)
            fatal("option '%s' needs a value", key.c_str());
        args[key.substr(2)] = argv[++i];
    }
    return args;
}

const std::string &
require(const ArgMap &args, const std::string &key)
{
    auto it = args.find(key);
    if (it == args.end()) {
        usage(stderr);
        fatal("missing required option --%s", key.c_str());
    }
    return it->second;
}

double
requireDouble(const ArgMap &args, const std::string &key)
{
    try {
        return std::stod(require(args, key));
    } catch (const std::exception &) {
        fatal("option --%s needs a number", key.c_str());
    }
}

soc::SocConfig
socByName(const std::string &name)
{
    if (name == "xavier")
        return soc::xavierLike();
    if (name == "snapdragon")
        return soc::snapdragonLike();
    fatal("unknown SoC '%s' (use xavier or snapdragon)", name.c_str());
}

soc::PuKind
puByName(const std::string &name)
{
    if (name == "cpu")
        return soc::PuKind::Cpu;
    if (name == "gpu")
        return soc::PuKind::Gpu;
    if (name == "dla")
        return soc::PuKind::Dla;
    fatal("unknown PU '%s' (use cpu, gpu, or dla)", name.c_str());
}

void
printParams(const model::PccsParams &p)
{
    std::printf("%s", model::paramsToText(p).c_str());
}

model::PccsParams
paramsFromArgs(const ArgMap &args)
{
    if (args.count("model"))
        return model::loadParams(args.at("model"));
    const soc::SocConfig soc = socByName(require(args, "soc"));
    const int pu = soc.puIndex(puByName(require(args, "pu")));
    if (pu < 0)
        fatal("that SoC has no such PU");
    const soc::SocSimulator sim(soc);
    return model::buildModel(sim, static_cast<std::size_t>(pu))
        .params();
}

int
cmdCalibrate(const ArgMap &args)
{
    const soc::SocConfig soc = socByName(require(args, "soc"));
    const int pu = soc.puIndex(puByName(require(args, "pu")));
    if (pu < 0)
        fatal("that SoC has no such PU");
    const soc::SocSimulator sim(soc);
    const model::PccsParams p =
        model::buildModel(sim, static_cast<std::size_t>(pu)).params();
    printParams(p);
    if (args.count("out")) {
        model::saveParams(p, args.at("out"));
        inform("model written to %s", args.at("out").c_str());
    }
    return 0;
}

int
cmdPredict(const ArgMap &args)
{
    const model::PccsParams p = paramsFromArgs(args);
    const model::PccsModel m(p);
    const double x = requireDouble(args, "demand");
    const double y = requireDouble(args, "external");
    std::printf("region:          %s\n",
                model::regionName(m.classify(x)));
    std::printf("relative speed:  %.2f %%\n", m.relativeSpeed(x, y));
    std::printf("slowdown factor: %.3fx\n", m.slowdownFactor(x, y));
    return 0;
}

int
cmdScale(const ArgMap &args)
{
    const model::PccsParams p =
        model::loadParams(require(args, "model"));
    const double ratio = requireDouble(args, "ratio");
    const model::PccsParams scaled = model::scaleParams(p, ratio);
    printParams(scaled);
    if (args.count("out")) {
        model::saveParams(scaled, args.at("out"));
        inform("scaled model written to %s", args.at("out").c_str());
    }
    return 0;
}

int
cmdExplore(const ArgMap &args)
{
    const soc::SocConfig soc = socByName(require(args, "soc"));
    const soc::PuKind kind = puByName(require(args, "pu"));
    const int pu = soc.puIndex(kind);
    if (pu < 0)
        fatal("that SoC has no such PU");
    const soc::KernelProfile kernel =
        workloads::rodiniaKernel(require(args, "bench"), kind);
    const double y = requireDouble(args, "external");
    const double allowed = requireDouble(args, "allowed");

    const soc::SocSimulator sim(soc);
    const model::PccsModel m =
        model::buildModel(sim, static_cast<std::size_t>(pu));
    const model::DesignExplorer explorer(soc);

    std::vector<double> grid;
    const double fmax = soc.pus[pu].maxFrequency;
    for (double f = 0.3 * fmax; f < fmax; f += fmax / 64.0)
        grid.push_back(f);
    grid.push_back(fmax);

    const auto sel = explorer.selectFrequency(
        static_cast<std::size_t>(pu), kernel, y, allowed, m, grid);
    std::printf("selected clock:  %.0f MHz (of %.0f MHz max)\n",
                sel.value, fmax);
    std::printf("predicted co-run performance: %.1f %% of the "
                "full-clock co-run\n",
                100.0 * sel.predictedPerformance /
                    sel.referencePerformance);
    return 0;
}

int
cmdPhases(const ArgMap &args)
{
    // Read whitespace-separated GB/s samples from the trace file.
    const std::string &path = require(args, "trace");
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '%s'", path.c_str());
    std::vector<GBps> trace;
    double v;
    while (in >> v)
        trace.push_back(v);
    if (trace.empty())
        fatal("trace file '%s' has no samples", path.c_str());

    const model::PccsParams p = paramsFromArgs(args);
    const model::PccsModel m(p);
    const double y = requireDouble(args, "external");

    const auto phases = model::detectPhases(trace);
    std::printf("detected %zu phase(s):\n", phases.size());
    for (const auto &ph : phases) {
        std::printf("  samples [%zu, %zu): mean demand %.1f GB/s "
                    "(%.0f%% of time)\n",
                    ph.begin, ph.end, ph.meanDemand,
                    100.0 * ph.length() / trace.size());
    }
    const double rs = model::predictPiecewise(
        m, model::toPhaseDemands(phases), y);
    std::printf("piecewise relative speed at y=%.1f GB/s: %.2f %%\n",
                y, rs);
    return 0;
}

int
cmdSweep(const ArgMap &args)
{
    const soc::SocConfig soc = socByName(require(args, "soc"));
    const soc::PuKind kind = puByName(require(args, "pu"));
    const int pu = soc.puIndex(kind);
    if (pu < 0)
        fatal("that SoC has no such PU");
    const std::size_t pi = static_cast<std::size_t>(pu);
    const soc::KernelProfile kernel =
        workloads::rodiniaKernel(require(args, "bench"), kind);

    const double max_external =
        args.count("max-external")
            ? requireDouble(args, "max-external")
            : 0.73 * soc.memory.peakBandwidth;
    const unsigned steps =
        args.count("steps")
            ? static_cast<unsigned>(requireDouble(args, "steps"))
            : 10;
    if (steps == 0)
        fatal("--steps must be at least 1");

    std::vector<GBps> ladder;
    for (unsigned j = 1; j <= steps; ++j)
        ladder.push_back(max_external * j / steps);

    const soc::SocSimulator sim(soc);
    const model::PccsModel pccs = model::buildModel(sim, pi);
    const gables::GablesModel gables(soc.memory.peakBandwidth);

    runner::SweepEngine &engine = runner::SweepEngine::global();
    const GBps demand = engine.profile(sim, pi, kernel).bandwidthDemand;
    std::vector<runner::EvalPoint> points;
    points.reserve(ladder.size());
    for (GBps y : ladder)
        points.push_back({pi, kernel, y});
    const std::vector<double> actual =
        engine.evaluateBatch(sim, points);

    runner::RunResult artifact;
    artifact.spec.experiment = "sweep_" + kernel.name;
    artifact.spec.title = kernel.name + " on the " + soc.name + " " +
                          soc.pus[pi].name + " under external pressure";
    artifact.spec.paperRef = "pccs sweep";
    artifact.spec.socName = soc.name;
    artifact.spec.puName = soc.pus[pi].name;
    artifact.spec.externalBw = ladder;

    runner::KernelRun kr;
    kr.name = kernel.name;
    kr.demand = demand;
    kr.series.push_back({"actual", actual});
    std::vector<double> prd, gab;
    for (GBps y : ladder) {
        prd.push_back(pccs.relativeSpeed(demand, y));
        gab.push_back(gables.relativeSpeed(demand, y));
    }
    kr.series.push_back({"pccs", prd});
    kr.series.push_back({"gables", gab});
    artifact.kernels.push_back(std::move(kr));
    artifact.cache = engine.cache().stats();

    std::vector<std::string> headers{"series"};
    for (GBps y : ladder)
        headers.push_back("y=" + fmtDouble(y, 0));
    Table t(std::move(headers));
    t.addRow("actual RS (%)", actual, 1);
    t.addRow("PCCS RS (%)", prd, 1);
    t.addRow("Gables RS (%)", gab, 1);
    std::printf("%s (standalone demand %.1f GB/s)\n%s\n",
                kernel.name.c_str(), demand, t.str().c_str());

    const char *env = std::getenv("PCCS_ARTIFACT_DIR");
    const std::string dir =
        args.count("out") ? args.at("out")
                          : (env && *env ? env : ".");
    const std::string path = artifact.writeArtifacts(dir);
    std::printf("artifact: %s (+ .csv)\n", path.c_str());
    std::printf("engine: %u job(s), cache %llu hit(s) / %llu "
                "miss(es)\n",
                engine.jobs(),
                static_cast<unsigned long long>(
                    artifact.cache.hits),
                static_cast<unsigned long long>(
                    artifact.cache.misses));
    return 0;
}

/** Split "a,b,c" into its non-empty comma-separated pieces. */
std::vector<std::string>
splitCsv(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        if (comma > start)
            out.push_back(text.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

serve::Server *g_server = nullptr;

extern "C" void
handleStopSignal(int)
{
    // requestStop is async-signal-safe (atomic store + pipe write).
    if (g_server != nullptr)
        g_server->requestStop();
}

int
cmdServe(const ArgMap &args)
{
    serve::ModelRegistry registry;

    // --model NAME=FILE[,NAME=FILE...]: preload serialized models.
    if (args.count("model")) {
        for (const std::string &spec : splitCsv(args.at("model"))) {
            const std::size_t eq = spec.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 >= spec.size()) {
                fatal("--model wants NAME=FILE, got '%s'",
                      spec.c_str());
            }
            const std::string name = spec.substr(0, eq);
            const std::string path = spec.substr(eq + 1);
            const std::string err = registry.addFromFile(name, path);
            if (!err.empty())
                fatal("cannot load model '%s': %s", name.c_str(),
                      err.c_str());
            inform("loaded model '%s' from %s", name.c_str(),
                   path.c_str());
        }
    }

    // --calibrate SOC:PU[,SOC:PU...]: build models from the
    // simulator and register them as "<soc>.<pu>".
    if (args.count("calibrate")) {
        for (const std::string &spec :
             splitCsv(args.at("calibrate"))) {
            const std::size_t colon = spec.find(':');
            if (colon == std::string::npos) {
                fatal("--calibrate wants SOC:PU, got '%s'",
                      spec.c_str());
            }
            const std::string soc_name = spec.substr(0, colon);
            const std::string pu_name = spec.substr(colon + 1);
            const soc::SocConfig soc = socByName(soc_name);
            const int pu = soc.puIndex(puByName(pu_name));
            if (pu < 0)
                fatal("SoC '%s' has no %s", soc_name.c_str(),
                      pu_name.c_str());
            const soc::SocSimulator sim(soc);
            const model::PccsParams p =
                model::buildModel(sim, static_cast<std::size_t>(pu))
                    .params();
            const std::string name = soc_name + "." + pu_name;
            registry.addFromParams(
                name, p, "calibrated:" + soc_name + ":" + pu_name);
            inform("calibrated model '%s'", name.c_str());
        }
    }

    if (registry.size() == 0) {
        warn("starting with an empty model registry; use "
             "--model/--calibrate, or reload with a path later");
    }

    serve::Metrics metrics;
    serve::Dispatcher dispatcher(registry, metrics);
    serve::ServerOptions opts;
    if (args.count("host"))
        opts.host = args.at("host");
    if (args.count("port"))
        opts.port =
            static_cast<std::uint16_t>(requireDouble(args, "port"));
    if (args.count("shards"))
        opts.shards =
            static_cast<unsigned>(requireDouble(args, "shards"));

    serve::Server server(dispatcher, opts);
    std::string err;
    if (!server.start(&err))
        fatal("%s", err.c_str());

    g_server = &server;
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);

    // The port line is machine-read by scripts; keep its shape.
    std::printf("pccs serve: listening on %s:%u (%zu model(s))\n",
                opts.host.c_str(), server.port(), registry.size());
    std::fflush(stdout);

    server.serveForever();
    g_server = nullptr;
    inform("pccs serve: stopped (%llu connection(s) served)",
           static_cast<unsigned long long>(
               server.connectionsAccepted()));
    return 0;
}

int
cmdClient(const ArgMap &args)
{
    const std::string host =
        args.count("host") ? args.at("host") : "127.0.0.1";
    const std::uint16_t port =
        static_cast<std::uint16_t>(requireDouble(args, "port"));

    serve::Json req;
    if (args.count("send")) {
        const serve::JsonParse parsed =
            serve::parseJson(args.at("send"));
        if (!parsed.ok())
            fatal("--send is not valid JSON: %s",
                  parsed.error.c_str());
        req = *parsed.value;
    } else {
        req = serve::Json::object();
        req.set("op", serve::Json(require(args, "op")));
        req.set("id", serve::Json(1));
        if (args.count("model"))
            req.set("model", serve::Json(args.at("model")));
        if (args.count("demand"))
            req.set("demand",
                    serve::Json(requireDouble(args, "demand")));
        if (args.count("external"))
            req.set("external",
                    serve::Json(requireDouble(args, "external")));
        if (args.count("path"))
            req.set("path", serve::Json(args.at("path")));
    }

    serve::TcpClient client;
    std::string err;
    if (!client.connectTo(host, port, &err))
        fatal("%s", err.c_str());

    const serve::Json resp = client.request(req);
    std::printf("%s\n", resp.dump().c_str());
    const serve::Json *ok = resp.find("ok");
    return (ok != nullptr && ok->isBool() && ok->asBool()) ? 0 : 1;
}

int
cmdRegion(const ArgMap &args)
{
    const model::PccsParams p = paramsFromArgs(args);
    const model::PccsModel m(p);
    const double x = requireDouble(args, "demand");
    std::printf("%s\n", model::regionName(m.classify(x)));
    return 0;
}

int
cmdPolicies(const ArgMap &args)
{
    // `--format names` emits one canonical name per line for shell
    // loops (CI iterates the equivalence matrix with it).
    if (args.count("format")) {
        const std::string &f = args.at("format");
        if (f != "names" && f != "table")
            fatal("--format must be names or table");
        if (f == "names") {
            for (const auto &p : dram::schedulerPolicies())
                std::printf("%s\n", p.name.c_str());
            return 0;
        }
    }
    Table t({"policy", "aliases", "pure pick", "row-hit preserving",
             "tick events", "fast pick"});
    for (const auto &p : dram::schedulerPolicies()) {
        std::string aliases;
        for (const std::string &a : p.aliases) {
            if (!aliases.empty())
                aliases += ",";
            aliases += a;
        }
        // Fallback states (fastPickNote) ride in the fast-pick cell:
        // "yes" means the mask path is total for the policy.
        std::string fast = p.fastPickEligible ? "yes" : "no";
        if (p.fastPickEligible && !p.fastPickNote.empty())
            fast += " (" + p.fastPickNote + ")";
        t.addRow({p.name, aliases.empty() ? "-" : aliases,
                  p.pickIsPure ? "yes" : "no",
                  p.preservesRowHits ? "yes" : "no",
                  p.needsTickEvents ? "yes" : "no", fast});
    }
    std::printf("%s", t.str().c_str());
    return 0;
}

int
cmdMultimc(const ArgMap &args)
{
    calib::McSweepSpec spec;
    if (args.count("mcs"))
        spec.numMcs =
            static_cast<unsigned>(std::atoi(args.at("mcs").c_str()));
    if (args.count("channels"))
        spec.perMcConfig.channels = static_cast<unsigned>(
            std::atoi(args.at("channels").c_str()));
    spec.perMcConfig.requestBufferEntries =
        64 * spec.perMcConfig.channels;
    if (args.count("mapping")) {
        const std::string &m = args.at("mapping");
        if (m == "interleaved")
            spec.mapping = dram::McMapping::LineInterleaved;
        else if (m == "partitioned")
            spec.mapping = dram::McMapping::RangePartitioned;
        else
            fatal("--mapping must be interleaved or partitioned");
    }
    if (args.count("policy")) {
        // Resolve through the registry (case-insensitive, aliases);
        // schedulerFromName enumerates the valid names on error.
        spec.policy = dram::schedulerFromName(args.at("policy")).name;
    }
    if (args.count("kernels"))
        spec.numKernels = static_cast<unsigned>(
            std::atoi(args.at("kernels").c_str()));
    if (args.count("external"))
        spec.numExternal = static_cast<unsigned>(
            std::atoi(args.at("external").c_str()));

    std::printf("multi-MC calibration sweep: %u MC x %u ch, %s, %s, "
                "%s run mode\n\n",
                spec.numMcs, spec.perMcConfig.channels,
                spec.policy.c_str(),
                dram::mcMappingName(spec.mapping),
                dram::mcRunModeName(spec.runMode));
    const calib::CalibrationMatrix m = calib::calibrateMultiMc(spec);

    std::vector<std::string> header{"standalone (GB/s)"};
    for (GBps y : m.externalBw) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "ext %.1f", y);
        header.push_back(buf);
    }
    Table t(header);
    for (std::size_t i = 0; i < m.numKernels(); ++i) {
        std::vector<std::string> row{fmtDouble(m.standaloneBw[i], 2)};
        for (double r : m.rela[i])
            row.push_back(fmtDouble(r, 1));
        t.addRow(row);
    }
    std::printf("%s\nrela[i][j]: victim relative speed (%%)\n",
                t.str().c_str());
    return 0;
}

int
cmdSchedule(const ArgMap &args)
{
    const soc::SocConfig soc = socByName(
        args.count("soc") ? args.at("soc") : "xavier");

    sched::SchedOptions opts;
    // Default margin absorbs the model's few-percent error against
    // the simulator, so the demo trace validates clean under strict.
    opts.safetyMargin = 0.1;
    if (args.count("policy")) {
        const auto p = sched::admissionPolicyFromName(args.at("policy"));
        if (!p)
            fatal("unknown policy '%s' (use strict, best-effort, or "
                  "fairness)",
                  args.at("policy").c_str());
        opts.policy = *p;
    }
    if (args.count("margin"))
        opts.safetyMargin = requireDouble(args, "margin");
    if (args.count("capacity"))
        opts.puCapacity = static_cast<std::size_t>(
            std::atoi(args.at("capacity").c_str()));
    if (args.count("grid-steps"))
        opts.gridSteps = static_cast<unsigned>(
            std::atoi(args.at("grid-steps").c_str()));

    // The arrival trace: `submit BENCH SLO [cpu|gpu|dla|any]` and
    // `complete N` (N indexes the admission-ordered job list,
    // promotions included). '#' starts a comment.
    std::vector<std::string> lines;
    if (args.count("trace")) {
        std::ifstream in(args.at("trace"));
        if (!in)
            fatal("cannot open trace '%s'", args.at("trace").c_str());
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    } else {
        lines = {
            "submit streamcluster 1.3 gpu", "submit hotspot 2.0 cpu",
            "submit bfs 1.4 any",           "submit srad 1.2 any",
            "complete 0",                   "submit pathfinder 1.5 any",
            "complete 1",                   "complete 2",
        };
    }

    sched::QosController ctl(soc, nullptr, opts);
    std::vector<sched::JobHandle> jobs;

    Table t({"line", "event", "decision", "pu", "MHz", "slowdown",
             "slo"});
    const auto decisionRow = [&](std::size_t lineno,
                                 const std::string &event,
                                 const sched::Decision &d, double slo) {
        if (d.kind == sched::DecisionKind::Admitted) {
            t.addRow({std::to_string(lineno), event,
                      sched::decisionKindName(d.kind),
                      soc.pus[d.puIndex].name,
                      fmtDouble(d.frequencyMhz, 0),
                      fmtDouble(d.predictedSlowdown, 3),
                      fmtDouble(slo, 2)});
            jobs.push_back(d.handle);
        } else {
            t.addRow({std::to_string(lineno), event,
                      sched::decisionKindName(d.kind), "-", "-", "-",
                      fmtDouble(slo, 2)});
        }
    };

    std::size_t lineno = 0;
    for (const std::string &line : lines) {
        ++lineno;
        std::istringstream is(line);
        std::string verb;
        if (!(is >> verb) || verb[0] == '#')
            continue;
        if (verb == "submit") {
            std::string bench;
            double slo = 0.0;
            if (!(is >> bench >> slo))
                fatal("trace line %zu: want 'submit BENCH SLO [PU]'",
                      lineno);
            std::string pu = "any";
            is >> pu;
            sched::JobRequest req;
            req.name = bench;
            req.sloSlowdown = slo;
            for (const soc::PuParams &p : soc.pus) {
                if (p.kind == soc::PuKind::Dla)
                    req.options.emplace_back(std::nullopt);
                else
                    req.options.emplace_back(
                        workloads::rodiniaKernel(bench, p.kind));
            }
            if (pu != "any") {
                const int pi = soc.puIndex(puByName(pu));
                if (pi < 0)
                    fatal("trace line %zu: that SoC has no %s", lineno,
                          pu.c_str());
                req.puIndex = pi;
            }
            decisionRow(lineno, "submit " + bench, ctl.submit(req),
                        slo);
        } else if (verb == "complete") {
            std::size_t idx = 0;
            if (!(is >> idx))
                fatal("trace line %zu: want 'complete INDEX'", lineno);
            if (idx >= jobs.size())
                fatal("trace line %zu: no admitted job %zu", lineno,
                      idx);
            const sched::Completion c = ctl.complete(jobs[idx]);
            t.addRow({std::to_string(lineno),
                      "complete #" + std::to_string(idx),
                      c.ok ? "completed" : "stale", "-", "-", "-",
                      "-"});
            for (const sched::Decision &d : c.promoted)
                decisionRow(lineno, "promoted",
                            d, ctl.job(d.handle)->sloSlowdown);
        } else {
            fatal("trace line %zu: unknown verb '%s' (submit or "
                  "complete)",
                  lineno, verb.c_str());
        }
    }
    std::printf("%s policy on %s, margin %.2f\n\n%s\n",
                sched::admissionPolicyName(opts.policy),
                soc.name.c_str(), opts.safetyMargin,
                t.str().c_str());

    const sched::SchedStats &st = ctl.stats();
    std::printf("decisions %llu: %llu admitted, %llu queued, "
                "%llu rejected, %llu promoted "
                "(%llu model points)\n",
                static_cast<unsigned long long>(st.decisions),
                static_cast<unsigned long long>(st.admitted),
                static_cast<unsigned long long>(st.queued),
                static_cast<unsigned long long>(st.rejected),
                static_cast<unsigned long long>(st.promoted),
                static_cast<unsigned long long>(st.modelPoints));

    // Replay the accepted schedule through the SoC simulator: every
    // interval's true slowdowns vs the SLOs the controller promised.
    const sched::OracleReport rep =
        sched::validateSchedule(soc, ctl.events());
    std::printf("oracle: %zu intervals, %zu checks, %zu of %zu jobs "
                "violated, attainment %.1f%%, worst excess %+.1f%%\n",
                rep.intervals, rep.checks, rep.violations,
                rep.jobsChecked, 100.0 * rep.attainment(),
                100.0 * rep.worstExcess);
    // Under strict admission a violation means the controller broke
    // its promise — fail the run so scripts and CI notice.
    if (opts.policy == sched::AdmissionPolicy::StrictSlo &&
        rep.violations > 0)
        return 1;
    return 0;
}

/** One `pccs` subcommand: dispatch entry plus its usage synopsis. */
struct Command
{
    const char *name;
    int (*run)(const ArgMap &args);
    const char *synopsis;
};

/**
 * The single source of truth for subcommands: main() dispatches by
 * walking this table and usage() renders it, so the help text cannot
 * drift from what actually dispatches.
 */
const Command kCommands[] = {
    {"calibrate", cmdCalibrate,
     "  pccs calibrate --soc S --pu P [--out FILE]\n"},
    {"predict", cmdPredict,
     "  pccs predict   (--model FILE | --soc S --pu P) --demand X "
     "--external Y\n"},
    {"scale", cmdScale,
     "  pccs scale     --model FILE --ratio R [--out FILE]\n"},
    {"explore", cmdExplore,
     "  pccs explore   --soc S --pu P --bench NAME --external Y "
     "--allowed PCT\n"},
    {"region", cmdRegion,
     "  pccs region    (--model FILE | --soc S --pu P) --demand X\n"},
    {"phases", cmdPhases,
     "  pccs phases    --trace FILE (--model FILE | --soc S --pu P) "
     "--external Y\n"},
    {"sweep", cmdSweep,
     "  pccs sweep     --soc S --pu P --bench NAME "
     "[--max-external Y]\n"
     "                 [--steps N] [--out DIR]\n"},
    {"schedule", cmdSchedule,
     "  pccs schedule  [--soc S] "
     "[--policy strict|best-effort|fairness]\n"
     "                 [--trace FILE] [--margin F] [--capacity N] "
     "[--grid-steps N]\n"},
    {"serve", cmdServe,
     "  pccs serve     [--host H] [--port N] [--shards N] "
     "[--model NAME=FILE,...]\n"
     "                 [--calibrate SOC:PU,...]\n"},
    {"client", cmdClient,
     "  pccs client    --port N [--host H] (--send JSON | --op OP "
     "[--model M]\n"
     "                 [--demand X] [--external Y] [--path FILE])\n"},
    {"multimc", cmdMultimc,
     "  pccs multimc   [--mcs N] [--channels N] "
     "[--mapping interleaved|partitioned]\n"
     "                 [--policy NAME] [--kernels N] "
     "[--external N]\n"},
    {"policies", cmdPolicies,
     "  pccs policies  [--format names|table]\n"},
};

void
usage(std::FILE *to)
{
    std::fprintf(to,
        "pccs — processor-centric contention-aware slowdown modeling\n"
        "\n"
        "usage:\n");
    for (const Command &c : kCommands)
        std::fputs(c.synopsis, to);
    std::fprintf(to,
        "  pccs --version\n"
        "\n"
        "  S: xavier | snapdragon      P: cpu | gpu | dla\n"
        "  NAME: a Rodinia benchmark (e.g. streamcluster)\n"
        "  OP: predict | corun | place | explore | reload | stats | "
        "health |\n"
        "      schedule | complete | sched_stats | shutdown\n"
        "\n"
        "global options:\n"
        "  --jobs N           cap the sweep engine's worker threads "
        "(PCCS_JOBS)\n"
        "  --dram-reference   per-cycle reference DRAM loops "
        "(PCCS_DRAM_REFERENCE=1):\n"
        "                     the single-MC reference core and the "
        "multi-MC lockstep loop\n"
        "  --mc-parallel      sharded-parallel multi-MC run mode "
        "(PCCS_MC_SHARDS sizes\n"
        "                     the worker team; bit-exact vs the "
        "default event-driven loop)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the value-less global run-mode flags before parseArgs
    // (which pairs every --option with a value).
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dram-reference") == 0) {
            dram::setDefaultDramRunMode(dram::DramRunMode::Reference);
            dram::setDefaultMcRunMode(dram::McRunMode::Lockstep);
        } else if (std::strcmp(argv[i], "--mc-parallel") == 0) {
            dram::setDefaultMcRunMode(dram::McRunMode::Sharded);
        } else {
            argv[kept++] = argv[i];
        }
    }
    argc = kept;
    if (argc < 2) {
        usage(stderr);
        return 1;
    }
    const std::string cmd = argv[1];
    if (cmd == "--version" || cmd == "version") {
        std::printf("pccs %s\n", PCCS_CLI_VERSION);
        return 0;
    }
    if (cmd == "--help" || cmd == "help") {
        usage(stdout);
        return 0;
    }
    const ArgMap args = parseArgs(argc, argv, 2);
    if (args.count("jobs")) {
        // Must land before the first SweepEngine::global() call.
        setenv("PCCS_JOBS", args.at("jobs").c_str(), 1);
    }
    for (const Command &c : kCommands)
        if (cmd == c.name)
            return c.run(args);
    usage(stderr);
    fatal("unknown command '%s'", cmd.c_str());
}
