/**
 * @file
 * Extension study (paper Section 5, "Power budget"): co-run
 * performance attainable at each total SoC power budget, with per-PU
 * clocks chosen by PCCS-predicted slowdowns vs by Gables. The paper's
 * use-case claim: accurate slowdown models let designers cut power
 * substantially (up to 52.1% of the budget) without losing actual
 * co-run performance.
 */

#include <cstdio>

#include "bench/common.hh"
#include "calib/calibrator.hh"
#include "common/table.hh"
#include "gables/gables.hh"
#include "pccs/builder.hh"
#include "pccs/power.hh"

using namespace pccs;

int
main()
{
    bench::banner("Co-run performance vs SoC power budget",
                  "Section 5 extension (power budget)");

    model::PowerBudgetProblem problem;
    problem.soc = soc::xavierLike();
    const soc::SocSimulator sim(problem.soc);

    std::vector<model::PccsModel> pccs_models;
    pccs_models.reserve(problem.soc.pus.size());
    for (std::size_t i = 0; i < problem.soc.pus.size(); ++i)
        pccs_models.push_back(model::buildModel(sim, i));

    for (std::size_t i = 0; i < problem.soc.pus.size(); ++i) {
        problem.models.push_back(&pccs_models[i]);
        problem.kernels.push_back(calib::makeCalibrator(
            sim.model(), problem.soc.pus[i],
            0.8 * problem.soc.pus[i].drawBandwidth()));
        std::vector<MHz> grid;
        const MHz fmax = problem.soc.pus[i].maxFrequency;
        for (double r = 0.4; r <= 1.001; r += 0.1)
            grid.push_back(r * fmax);
        problem.grids.push_back(grid);
    }
    problem.power = {{12.0, 2.0, 3.0},  // CPU
                     {20.0, 3.0, 3.0},  // GPU
                     {6.0, 1.0, 3.0}};  // DLA

    const gables::GablesModel gables(problem.soc.memory.peakBandwidth);
    model::PowerBudgetProblem optimistic = problem;
    optimistic.models = {&gables, &gables, &gables};

    // Validate a selection on the "board": simulate the co-run at the
    // chosen clocks and report the true worst relative performance.
    auto validate = [&](const std::vector<MHz> &freqs) {
        if (freqs.empty())
            return 0.0;
        soc::SocConfig cfg = problem.soc;
        for (std::size_t i = 0; i < freqs.size(); ++i)
            cfg.pus[i].frequency = freqs[i];
        const soc::SocSimulator at(cfg);
        std::vector<soc::PuParams> pus = cfg.pus;
        const soc::CorunRates rates =
            at.model().corun(pus, problem.kernels);
        double worst = 1e300;
        for (std::size_t i = 0; i < pus.size(); ++i) {
            const double ref =
                sim.profile(i, problem.kernels[i]).rate;
            worst = std::min(worst,
                             100.0 * rates.rates[i] / ref);
        }
        return worst;
    };

    Table t({"budget (W)", "PCCS clocks (MHz)", "PCCS actual (%)",
             "Gables clocks (MHz)", "Gables actual (%)"});
    auto fmt_clocks = [](const std::vector<MHz> &f) {
        if (f.empty())
            return std::string("infeasible");
        std::string s;
        for (std::size_t i = 0; i < f.size(); ++i) {
            if (i)
                s += "/";
            s += fmtDouble(f[i], 0);
        }
        return s;
    };

    for (double budget : {12.0, 16.0, 20.0, 28.0, 36.0, 44.0}) {
        problem.budgetWatts = budget;
        optimistic.budgetWatts = budget;
        const auto via_pccs = model::explorePowerBudget(problem);
        const auto via_gables = model::explorePowerBudget(optimistic);
        t.addRow({fmtDouble(budget, 0),
                  fmt_clocks(via_pccs.frequencies),
                  fmtDouble(validate(via_pccs.frequencies), 1),
                  fmt_clocks(via_gables.frequencies),
                  fmtDouble(validate(via_gables.frequencies), 1)});
    }
    std::printf("%s\n", t.str().c_str());

    runner::RunResult artifact = bench::makeArtifact(
        "ext_power_budget", "Co-run performance vs SoC power budget",
        "Section 5 extension (power budget)", problem.soc.name, "all");
    artifact.addTable("clock choices and actual worst co-run "
                      "performance",
                      t);
    bench::writeArtifact(std::move(artifact));

    std::printf(
        "Columns report the *actual* (simulated) worst per-PU co-run "
        "performance of each model's clock choice,\nrelative to "
        "full-clock standalone. Under contention the curves flatten "
        "early: most of the power budget\nabove the knee buys nothing "
        "-- the paper's 'up to 52.1%% power saving' use case.\n");
    return 0;
}
