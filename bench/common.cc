#include "common.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/statistics.hh"
#include "dram/run_mode.hh"

namespace pccs::bench {

std::vector<std::string>
consumeDramRunFlags(int argc, char **argv)
{
    std::vector<std::string> leftover;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dram-reference") == 0) {
            dram::setDefaultDramRunMode(dram::DramRunMode::Reference);
            dram::setDefaultMcRunMode(dram::McRunMode::Lockstep);
        } else if (std::strcmp(argv[i], "--mc-parallel") == 0) {
            dram::setDefaultMcRunMode(dram::McRunMode::Sharded);
        } else {
            leftover.push_back(argv[i]);
        }
    }
    return leftover;
}

void
applyDramRunFlags(int argc, char **argv)
{
    const std::vector<std::string> leftover =
        consumeDramRunFlags(argc, argv);
    if (!leftover.empty()) {
        std::fprintf(stderr,
                     "usage: %s [--dram-reference] [--mc-parallel]\n"
                     "unknown argument '%s'\n",
                     argv[0], leftover.front().c_str());
        std::exit(2);
    }
}

void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n==============================================="
                "=====================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("================================================"
                "====================\n\n");
}

std::vector<GBps>
externalLadder(GBps max_external, unsigned steps)
{
    std::vector<GBps> ladder;
    for (unsigned j = 1; j <= steps; ++j)
        ladder.push_back(max_external * j / steps);
    return ladder;
}

double
SweepResult::pccsError() const
{
    return meanAbsPctPointError({pccs.data(), pccs.size()},
                                {actual.data(), actual.size()});
}

double
SweepResult::gablesError() const
{
    return meanAbsPctPointError({gables.data(), gables.size()},
                                {actual.data(), actual.size()});
}

SweepResult
sweepKernel(const soc::SocSimulator &sim, std::size_t pu,
            const soc::KernelProfile &kernel,
            const model::SlowdownPredictor &pccs,
            const model::SlowdownPredictor &gables,
            const std::vector<GBps> &ladder,
            runner::SweepEngine *engine)
{
    runner::SweepEngine &eng =
        engine ? *engine : runner::SweepEngine::global();

    SweepResult r;
    r.name = kernel.name;
    r.demand = eng.profile(sim, pu, kernel).bandwidthDemand;

    std::vector<runner::EvalPoint> points;
    points.reserve(ladder.size());
    for (GBps y : ladder)
        points.push_back({pu, kernel, y});
    r.actual = eng.evaluateBatch(sim, points);

    for (GBps y : ladder) {
        r.pccs.push_back(pccs.relativeSpeed(r.demand, y));
        r.gables.push_back(gables.relativeSpeed(r.demand, y));
    }
    return r;
}

void
printSweepReport(const std::vector<SweepResult> &results,
                 const std::vector<GBps> &ladder)
{
    for (const auto &r : results) {
        std::printf("%s (standalone demand %.1f GB/s)\n",
                    r.name.c_str(), r.demand);
        std::vector<std::string> headers{"series"};
        for (GBps y : ladder)
            headers.push_back("y=" + fmtDouble(y, 0));
        Table t(std::move(headers));
        t.addRow("actual RS (%)", r.actual, 1);
        t.addRow("PCCS RS (%)", r.pccs, 1);
        t.addRow("Gables RS (%)", r.gables, 1);
        std::printf("%s\n", t.str().c_str());
    }
}

void
printErrorSummary(const std::vector<SweepResult> &results,
                  double paper_pccs, double paper_gables)
{
    Table t({"kernel", "demand (GB/s)", "PCCS err (%)",
             "Gables err (%)"});
    double pccs_sum = 0.0, gables_sum = 0.0;
    for (const auto &r : results) {
        t.addRow({r.name, fmtDouble(r.demand, 1),
                  fmtDouble(r.pccsError(), 1),
                  fmtDouble(r.gablesError(), 1)});
        pccs_sum += r.pccsError();
        gables_sum += r.gablesError();
    }
    const double n = static_cast<double>(results.size());
    t.addRow({"AVERAGE", "-", fmtDouble(pccs_sum / n, 1),
              fmtDouble(gables_sum / n, 1)});
    std::printf("%s\n", t.str().c_str());
    std::printf("paper reports (on real hardware): PCCS %.1f%%, "
                "Gables %.1f%%\n",
                paper_pccs, paper_gables);
    std::printf("measured on simulated substrate:  PCCS %.1f%%, "
                "Gables %.1f%%\n\n",
                pccs_sum / n, gables_sum / n);
}

runner::RunResult
makeArtifact(const std::string &experiment, const std::string &title,
             const std::string &paper_ref, const std::string &soc_name,
             const std::string &pu_name,
             const std::vector<GBps> &ladder)
{
    runner::RunResult r;
    r.spec.experiment = experiment;
    r.spec.title = title;
    r.spec.paperRef = paper_ref;
    r.spec.socName = soc_name;
    r.spec.puName = pu_name;
    r.spec.externalBw = ladder;
    return r;
}

runner::RunResult
sweepArtifact(const std::string &experiment, const std::string &title,
              const std::string &paper_ref,
              const soc::SocSimulator &sim, std::size_t pu,
              const std::vector<SweepResult> &results,
              const std::vector<GBps> &ladder)
{
    runner::RunResult r =
        makeArtifact(experiment, title, paper_ref, sim.config().name,
                     sim.config().pus[pu].name, ladder);
    for (const SweepResult &res : results) {
        runner::KernelRun kr;
        kr.name = res.name;
        kr.demand = res.demand;
        kr.series.push_back({"actual", res.actual});
        kr.series.push_back({"pccs", res.pccs});
        kr.series.push_back({"gables", res.gables});
        r.kernels.push_back(std::move(kr));
    }
    Table errors({"kernel", "demand (GB/s)", "PCCS err (%)",
                  "Gables err (%)"});
    for (const SweepResult &res : results) {
        errors.addRow({res.name, fmtDouble(res.demand, 1),
                       fmtDouble(res.pccsError(), 1),
                       fmtDouble(res.gablesError(), 1)});
    }
    r.addTable("mean absolute error vs actual", errors);
    return r;
}

void
writeArtifact(runner::RunResult artifact)
{
    const char *env = std::getenv("PCCS_ARTIFACT_DIR");
    const std::string dir = env && *env ? env : ".";
    artifact.cache = runner::SweepEngine::global().cache().stats();
    const std::string path = artifact.writeArtifacts(dir);
    std::printf("artifact: %s (+ .csv; engine cache: %llu hits / "
                "%llu misses)\n",
                path.c_str(),
                static_cast<unsigned long long>(artifact.cache.hits),
                static_cast<unsigned long long>(
                    artifact.cache.misses));
}

} // namespace pccs::bench
