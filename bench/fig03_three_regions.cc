/**
 * @file
 * Figure 3: achieved relative speed of synthetic kernels under
 * external pressure, in three standalone-demand classes:
 *   (a) 10-30 GB/s  -- mild, near-linear decline (minor contention)
 *   (b) 40-80 GB/s  -- flat start, steep drop, flat tail (normal)
 *   (c) 80-100 GB/s -- immediate drop, then flat (intensive)
 * Run on the Xavier-class GPU, external pressure 0-100 GB/s.
 */

#include <cstdio>

#include "bench/common.hh"
#include "calib/calibrator.hh"
#include "common/table.hh"

using namespace pccs;

namespace {

void
panel(const soc::SocSimulator &sim, std::size_t gpu, const char *title,
      const std::vector<GBps> &targets, runner::RunResult &artifact)
{
    std::printf("--- %s ---\n", title);
    std::vector<std::string> headers{"kernel"};
    for (GBps y = 0.0; y <= 100.0; y += 10.0)
        headers.push_back("y=" + fmtDouble(y, 0));
    Table t(std::move(headers));
    for (GBps target : targets) {
        const soc::KernelProfile k = calib::makeCalibrator(
            sim.model(), sim.config().pus[gpu], target);
        const GBps x = sim.profile(gpu, k).bandwidthDemand;
        std::vector<double> row;
        for (GBps y = 0.0; y <= 100.0; y += 10.0)
            row.push_back(sim.relativeSpeedUnderPressure(gpu, k, y));
        t.addRow("x=" + fmtDouble(x, 0) + " GB/s", row, 1);
    }
    std::printf("%s\n", t.str().c_str());
    artifact.addTable(title, t);
}

} // namespace

int
main()
{
    bench::banner("Synthetic kernels under memory pressure: the three "
                  "contention regions",
                  "Figure 3 (a)(b)(c)");
    const soc::SocSimulator sim(soc::xavierLike());
    const std::size_t gpu = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Gpu));

    std::vector<GBps> ladder;
    for (GBps y = 0.0; y <= 100.0; y += 10.0)
        ladder.push_back(y);
    runner::RunResult artifact = bench::makeArtifact(
        "fig03_three_regions",
        "Synthetic kernels under memory pressure: the three "
        "contention regions",
        "Figure 3 (a)(b)(c)", sim.config().name,
        sim.config().pus[gpu].name, ladder);

    panel(sim, gpu, "(a) low demand: 10-30 GB/s", {10.0, 20.0, 30.0},
          artifact);
    panel(sim, gpu, "(b) medium demand: 40-80 GB/s",
          {40.0, 50.0, 60.0, 70.0, 80.0}, artifact);
    panel(sim, gpu, "(c) high demand: 80-100+ GB/s",
          {85.0, 95.0, 110.0, 125.0}, artifact);

    bench::writeArtifact(std::move(artifact));

    std::printf(
        "Expected shapes (paper, Fig. 3): (a) mild near-linear decline;"
        "\n(b) flat start, then a near-linear drop, then a flat tail;\n"
        "(c) significant reduction already at small external demand,\n"
        "    flattening once the external demand exceeds a certain "
        "level.\n");
    return 0;
}
