/**
 * @file
 * Figure 2: the percentage of the requested memory bandwidth that is
 * met on each PU under increasing external memory pressure. The
 * requested bandwidths are the PUs' maximum draws (DLA ~30, CPU ~93,
 * GPU ~127 GB/s on the 137 GB/s Xavier-class SoC). The paper's point:
 * contention effects appear even while requested + external demand is
 * below the DRAM peak.
 */

#include <cstdio>

#include "bench/common.hh"
#include "calib/calibrator.hh"
#include "common/table.hh"

using namespace pccs;

int
main()
{
    bench::banner("Bandwidth satisfaction under external pressure",
                  "Figure 2");

    const soc::SocSimulator sim(soc::xavierLike());
    const auto &cfg = sim.config();
    const GBps peak = cfg.memory.peakBandwidth;

    const auto ladder = bench::externalLadder(100.0, 10);
    std::vector<std::string> headers{"PU (requested GB/s)"};
    for (GBps y : ladder)
        headers.push_back("y=" + fmtDouble(y, 0));
    Table t(std::move(headers));

    for (std::size_t p = 0; p < cfg.pus.size(); ++p) {
        // The most bandwidth-hungry kernel the PU can run.
        const soc::KernelProfile k =
            calib::makeCalibrator(sim.model(), cfg.pus[p], 999.0);
        const GBps requested = sim.profile(p, k).bandwidthDemand;

        std::vector<double> met;
        for (GBps y : ladder) {
            // Achieved bandwidth = relative speed x requested demand.
            const double rs =
                sim.relativeSpeedUnderPressure(p, k, y);
            met.push_back(rs); // % of requested BW that is met
        }
        t.addRow(cfg.pus[p].name + " (" + fmtDouble(requested, 0) + ")",
                 met, 1);
    }
    std::printf("%s\n", t.str().c_str());

    // The A/B/C markers of the figure: external demand where
    // requested + external = DRAM peak, per PU.
    Table marks({"PU", "requested (GB/s)",
                 "external at nominal saturation (GB/s)",
                 "% met already lost at that point"});
    for (std::size_t p = 0; p < cfg.pus.size(); ++p) {
        const soc::KernelProfile k =
            calib::makeCalibrator(sim.model(), cfg.pus[p], 999.0);
        const GBps requested = sim.profile(p, k).bandwidthDemand;
        const GBps saturation_y = peak - requested;
        const double met = sim.relativeSpeedUnderPressure(
            p, k, saturation_y > 0.0 ? saturation_y : 0.0);
        marks.addRow({cfg.pus[p].name, fmtDouble(requested, 1),
                      fmtDouble(saturation_y, 1),
                      fmtDouble(100.0 - met, 1)});
    }
    std::printf("%s\n", marks.str().c_str());

    runner::RunResult artifact = bench::makeArtifact(
        "fig02_bw_satisfaction",
        "Bandwidth satisfaction under external pressure", "Figure 2",
        cfg.name, "all", ladder);
    artifact.addTable("% of requested bandwidth met", t);
    artifact.addTable("nominal saturation points", marks);
    bench::writeArtifact(std::move(artifact));

    std::printf("Key observation (paper, Fig. 2): the %% of requested "
                "bandwidth that is met already drops *before* the\n"
                "sum of requested and external bandwidth reaches the "
                "DRAM peak -- contradicting proportional sharing.\n");
    return 0;
}
