/**
 * @file
 * Figure 13: predicting the multi-phase CFD program (one high-BW
 * kernel K1 plus three medium-BW kernels K2-K4) with (a) the average
 * bandwidth as the model input versus (b) per-phase piecewise
 * prediction weighted by standalone time shares. Paper: 19.4% error
 * with the average, 4.6% with the piecewise method.
 */

#include <cmath>
#include <cstdio>

#include "bench/common.hh"
#include "common/table.hh"
#include "pccs/builder.hh"
#include "pccs/phases.hh"
#include "workloads/rodinia.hh"

using namespace pccs;

int
main()
{
    bench::banner("CFD with phase shifts: average-BW vs piecewise "
                  "prediction",
                  "Figure 13 (a)(b)");

    const soc::SocSimulator sim(soc::xavierLike());
    const std::size_t gpu = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Gpu));
    const model::PccsModel pccs = model::buildModel(sim, gpu);
    const auto w = workloads::cfdPhased(soc::PuKind::Gpu);

    double solo_total = 0.0;
    for (const auto &ph : w.phases)
        solo_total += sim.profile(gpu, ph).seconds;
    std::vector<model::PhaseDemand> phases;
    std::printf("CFD phases on the GPU:\n");
    for (const auto &ph : w.phases) {
        const auto prof = sim.profile(gpu, ph);
        phases.push_back(
            {prof.bandwidthDemand, prof.seconds / solo_total});
        std::printf("  %-8s demand %6.1f GB/s, time share %4.1f%%\n",
                    ph.name.c_str(), prof.bandwidthDemand,
                    100.0 * prof.seconds / solo_total);
    }
    std::printf("\n");

    const auto ladder = bench::externalLadder(100.0);
    std::vector<std::string> headers{"series"};
    for (GBps y : ladder)
        headers.push_back("y=" + fmtDouble(y, 0));
    Table t(std::move(headers));

    std::vector<double> act, avg, pw;
    for (GBps y : ladder) {
        double corun_time = 0.0;
        for (const auto &ph : w.phases) {
            const auto prof = sim.profile(gpu, ph);
            const double rs =
                sim.relativeSpeedUnderPressure(gpu, ph, y);
            corun_time += prof.seconds / (rs / 100.0);
        }
        act.push_back(100.0 * solo_total / corun_time);
        avg.push_back(model::predictAverageBw(pccs, phases, y));
        pw.push_back(model::predictPiecewise(pccs, phases, y));
    }
    t.addRow("actual RS (%)", act, 1);
    t.addRow("(a) avg-BW prediction", avg, 1);
    t.addRow("(b) piecewise prediction", pw, 1);
    std::printf("%s\n", t.str().c_str());

    runner::RunResult artifact = bench::makeArtifact(
        "fig13_cfd_phases",
        "CFD with phase shifts: average-BW vs piecewise prediction",
        "Figure 13 (a)(b)", sim.config().name,
        sim.config().pus[gpu].name, ladder);
    runner::KernelRun kr;
    kr.name = w.name;
    for (const auto &ph : phases)
        kr.demand += ph.demand * ph.timeShare;
    kr.series.push_back({"actual", act});
    kr.series.push_back({"avg-bw", avg});
    kr.series.push_back({"piecewise", pw});
    artifact.kernels.push_back(std::move(kr));
    bench::writeArtifact(std::move(artifact));

    double avg_err = 0.0, pw_err = 0.0;
    for (std::size_t j = 0; j < ladder.size(); ++j) {
        avg_err += std::fabs(avg[j] - act[j]);
        pw_err += std::fabs(pw[j] - act[j]);
    }
    avg_err /= ladder.size();
    pw_err /= ladder.size();

    std::printf("measured: avg-BW error %.1f%%, piecewise error "
                "%.1f%%\n",
                avg_err, pw_err);
    std::printf("paper:    avg-BW error 19.4%%, piecewise error "
                "4.6%%\n");
    std::printf("Expected: the average-BW input underestimates the "
                "slowdown (high-BW phases suffer disproportionately); "
                "the piecewise method fixes it.\n");
    return 0;
}
