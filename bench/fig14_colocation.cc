/**
 * @file
 * Table 8 + Figure 14: eleven real three-PU co-run workloads (a
 * Rodinia benchmark on the CPU, one on the GPU, and a neural network
 * on the DLA). Each workload runs until the first program finishes;
 * the measured achieved relative speed of every PU is compared with
 * the PCCS and Gables predictions. Paper: average errors PCCS
 * 3.7/8.7/5.6% vs Gables 13.4/30.3/20.6% on CPU/GPU/DLA.
 */

#include <cmath>
#include <cstdio>

#include "bench/common.hh"
#include "common/table.hh"
#include "gables/gables.hh"
#include "pccs/builder.hh"
#include "pccs/corun.hh"
#include "pccs/phases.hh"
#include "workloads/nn.hh"
#include "workloads/rodinia.hh"
#include "workloads/table8.hh"

using namespace pccs;

namespace {

/** Phase demands + time-weighted mean demand of a workload on a PU. */
struct Characterization
{
    std::vector<model::PhaseDemand> phases;
    double meanDemand = 0.0;
};

Characterization
characterize(const soc::SocSimulator &sim, std::size_t pu,
             const soc::PhasedWorkload &w)
{
    Characterization c;
    double solo_total = 0.0;
    for (const auto &ph : w.phases)
        solo_total += sim.profile(pu, ph).seconds;
    for (const auto &ph : w.phases) {
        const auto prof = sim.profile(pu, ph);
        const double share = prof.seconds / solo_total;
        c.phases.push_back({prof.bandwidthDemand, share});
        c.meanDemand += share * prof.bandwidthDemand;
    }
    return c;
}

} // namespace

int
main()
{
    bench::banner("Eleven 3-PU co-run workloads: predicted vs actual "
                  "achieved relative speed",
                  "Table 8 + Figure 14 (a)(b)(c)");

    const soc::SocSimulator sim(soc::xavierLike());
    const auto &cfg = sim.config();
    const std::size_t cpu = static_cast<std::size_t>(
        cfg.puIndex(soc::PuKind::Cpu));
    const std::size_t gpu = static_cast<std::size_t>(
        cfg.puIndex(soc::PuKind::Gpu));
    const std::size_t dla = static_cast<std::size_t>(
        cfg.puIndex(soc::PuKind::Dla));

    const model::PccsModel pccs_cpu = model::buildModel(sim, cpu);
    const model::PccsModel pccs_gpu = model::buildModel(sim, gpu);
    const model::PccsModel pccs_dla = model::buildModel(sim, dla);
    const gables::GablesModel gables(cfg.memory.peakBandwidth);

    const std::size_t pu_index[3] = {cpu, gpu, dla};
    const model::PccsModel *pccs_model[3] = {&pccs_cpu, &pccs_gpu,
                                             &pccs_dla};
    const char *pu_label[3] = {"CPU", "GPU", "DLA"};

    Table tables[3] = {
        Table({"workload", "actual RS (%)", "PCCS RS (%)",
               "PCCS err", "Gables RS (%)", "Gables err"}),
        Table({"workload", "actual RS (%)", "PCCS RS (%)",
               "PCCS err", "Gables RS (%)", "Gables err"}),
        Table({"workload", "actual RS (%)", "PCCS RS (%)",
               "PCCS err", "Gables RS (%)", "Gables err"})};
    double pccs_err[3] = {0, 0, 0};
    double gables_err[3] = {0, 0, 0};

    const auto &rows = workloads::table8Workloads();
    for (const auto &wl : rows) {
        // Assemble the three placements.
        soc::PhasedWorkload on[3];
        on[0] = soc::PhasedWorkload::single(
            workloads::rodiniaKernel(wl.cpuBench, soc::PuKind::Cpu));
        on[1] = soc::PhasedWorkload::single(
            workloads::rodiniaKernel(wl.gpuBench, soc::PuKind::Gpu));
        on[2] = workloads::dlaWorkload(wl.dlaModel);

        Characterization ch[3];
        for (int i = 0; i < 3; ++i)
            ch[i] = characterize(sim, pu_index[i], on[i]);

        // Actual: co-run until the first program finishes.
        const soc::CorunOutcome out =
            sim.run({soc::Placement{cpu, on[0]},
                     soc::Placement{gpu, on[1]},
                     soc::Placement{dla, on[2]}},
                    soc::StopPolicy::FirstFinish);

        // Predicted via the co-run API (the paper's one-shot
        // protocol: external inputs are standalone demands).
        std::vector<model::CorunInput> in_pccs(3), in_gables(3);
        for (int i = 0; i < 3; ++i) {
            in_pccs[i] = {pccs_model[i], ch[i].phases};
            in_gables[i] = {&gables, ch[i].phases};
        }
        const auto prd_all = model::predictCorun(in_pccs);
        const auto gab_all = model::predictCorun(in_gables);

        for (int i = 0; i < 3; ++i) {
            const double actual = out.placements[i].relativeSpeed;
            const double prd = prd_all[i];
            const double gab = gab_all[i];
            tables[i].addRow(
                {wl.id + " (" +
                     (i == 0 ? wl.cpuBench
                             : (i == 1 ? wl.gpuBench : wl.dlaModel)) +
                     ")",
                 fmtDouble(actual, 1), fmtDouble(prd, 1),
                 fmtDouble(std::fabs(prd - actual), 1),
                 fmtDouble(gab, 1),
                 fmtDouble(std::fabs(gab - actual), 1)});
            pccs_err[i] += std::fabs(prd - actual);
            gables_err[i] += std::fabs(gab - actual);
        }
    }

    const double paper_pccs[3] = {3.7, 8.7, 5.6};
    const double paper_gables[3] = {13.4, 30.3, 20.6};
    const double n = static_cast<double>(rows.size());
    runner::RunResult artifact = bench::makeArtifact(
        "fig14_colocation",
        "Eleven 3-PU co-run workloads: predicted vs actual achieved "
        "relative speed",
        "Table 8 + Figure 14 (a)(b)(c)", cfg.name, "all");
    for (int i = 0; i < 3; ++i) {
        std::printf("--- Figure 14 (%c): %s ---\n", 'a' + i,
                    pu_label[i]);
        std::printf("%s", tables[i].str().c_str());
        std::printf("average error: PCCS %.1f%%, Gables %.1f%%  "
                    "(paper: PCCS %.1f%%, Gables %.1f%%)\n\n",
                    pccs_err[i] / n, gables_err[i] / n, paper_pccs[i],
                    paper_gables[i]);
        artifact.addTable(std::string("Figure 14 (") +
                              static_cast<char>('a' + i) + ") " +
                              pu_label[i],
                          tables[i]);
    }
    bench::writeArtifact(std::move(artifact));
    return 0;
}
