/**
 * @file
 * Figure 9: predicted (PCCS, Gables) and actual slowdowns of five
 * Rodinia benchmarks on the Xavier-class CPU. Paper: PCCS averages
 * 2.6% error, Gables 10.3%.
 */

#include "bench/common.hh"
#include "gables/gables.hh"
#include "pccs/builder.hh"
#include "workloads/rodinia.hh"

using namespace pccs;

int
main()
{
    bench::banner("Rodinia on the Xavier CPU: predicted vs actual "
                  "slowdown",
                  "Figure 9");

    const soc::SocSimulator sim(soc::xavierLike());
    const std::size_t cpu = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Cpu));
    const model::PccsModel pccs = model::buildModel(sim, cpu);
    const gables::GablesModel gables(
        sim.config().memory.peakBandwidth);
    const auto ladder = bench::externalLadder(
        0.73 * sim.config().memory.peakBandwidth);

    std::vector<bench::SweepResult> results;
    for (const auto &name : workloads::cpuBenchmarks()) {
        results.push_back(bench::sweepKernel(
            sim, cpu, workloads::rodiniaKernel(name, soc::PuKind::Cpu),
            pccs, gables, ladder));
    }
    bench::printSweepReport(results, ladder);
    bench::printErrorSummary(results, 2.6, 10.3);
    bench::writeArtifact(bench::sweepArtifact(
        "fig09_xavier_cpu",
        "Rodinia on the Xavier CPU: predicted vs actual slowdown",
        "Figure 9", sim, cpu, results, ladder));
    return 0;
}
