/**
 * @file
 * google-benchmark microbenchmarks of the library's hot paths: model
 * evaluation, model construction, bandwidth allocation, the DRAM
 * simulator's cycle loop (reference and event-driven), and the SoC
 * co-run solver. These quantify the cost of using PCCS inside a
 * design-space-exploration loop.
 *
 * Beyond the standard google-benchmark flags, `--json <path>` writes a
 * machine-readable snapshot ({benchmark, ns/op, items/s}) of every run
 * — CI stores it as the BENCH_dram.json artifact — and
 * `--min-cycles-per-sec <n>` exits nonzero unless every saturated
 * DRAM row that ran (the headline event-driven row plus each
 * per-policy row) sustained at least `n` simulated cycles/s (the CI
 * perf-smoke floor for the fast issue engine). The per-policy
 * saturated rows are registered under their policy names
 * (`BM_DramCyclesSaturatedPolicy/FR-FCFS`, ...); `--policies a,b` or
 * the PCCS_POLICY_FILTER environment variable restricts which
 * policies get rows, so CI floors can target policy subsets.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "calib/calibrator.hh"
#include "dram/multi_mc.hh"
#include "dram/system.hh"
#include "gables/gables.hh"
#include "pccs/builder.hh"
#include "runner/sweep_engine.hh"
#include "soc/simulator.hh"

using namespace pccs;

namespace {

const soc::SocConfig &
xavier()
{
    static const soc::SocConfig cfg = soc::xavierLike();
    return cfg;
}

const model::PccsModel &
gpuModel()
{
    static const model::PccsModel m = [] {
        const soc::SocSimulator sim(xavier());
        return model::buildModel(
            sim, xavier().puIndex(soc::PuKind::Gpu));
    }();
    return m;
}

void
BM_PccsPredict(benchmark::State &state)
{
    const model::PccsModel &m = gpuModel();
    double x = 10.0, y = 5.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.relativeSpeed(x, y));
        x = x < 120.0 ? x + 1.0 : 10.0;
        y = y < 100.0 ? y + 1.0 : 5.0;
    }
}
BENCHMARK(BM_PccsPredict);

void
BM_GablesPredict(benchmark::State &state)
{
    const gables::GablesModel g(137.0);
    double x = 10.0, y = 5.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(g.relativeSpeed(x, y));
        x = x < 120.0 ? x + 1.0 : 10.0;
        y = y < 100.0 ? y + 1.0 : 5.0;
    }
}
BENCHMARK(BM_GablesPredict);

/** Deterministic structure-of-arrays demand grid for batch benches. */
void
fillDemandGrid(std::vector<double> &xs, std::vector<double> &ys,
               std::size_t n)
{
    xs.resize(n);
    ys.resize(n);
    double x = 10.0, y = 5.0;
    for (std::size_t i = 0; i < n; ++i) {
        xs[i] = x;
        ys[i] = y;
        x = x < 120.0 ? x + 1.0 : 10.0;
        y = y < 100.0 ? y + 1.0 : 5.0;
    }
}

void
BM_PccsPredictBatch(benchmark::State &state)
{
    const model::PccsModel &m = gpuModel();
    std::vector<double> xs, ys;
    fillDemandGrid(xs, ys, static_cast<std::size_t>(state.range(0)));
    std::vector<double> speeds(xs.size());
    for (auto _ : state) {
        m.relativeSpeedBatch(xs, ys, speeds);
        benchmark::DoNotOptimize(speeds.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_PccsPredictBatch)->Arg(4096)->ArgNames({"points"});

void
BM_GablesPredictBatch(benchmark::State &state)
{
    const gables::GablesModel g(137.0);
    std::vector<double> xs, ys;
    fillDemandGrid(xs, ys, static_cast<std::size_t>(state.range(0)));
    std::vector<double> speeds(xs.size());
    for (auto _ : state) {
        g.relativeSpeedBatch(xs, ys, speeds);
        benchmark::DoNotOptimize(speeds.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_GablesPredictBatch)->Arg(4096)->ArgNames({"points"});

void
BM_WaterFillAllocation(benchmark::State &state)
{
    const soc::SharedMemorySystem mem(xavier().memory);
    const std::vector<soc::BandwidthDemand> demands{
        {80.0, 0.95, 1.0}, {60.0, 0.9, 1.1}, {25.0, 0.94, 0.8}};
    for (auto _ : state)
        benchmark::DoNotOptimize(mem.allocate(demands));
}
BENCHMARK(BM_WaterFillAllocation);

void
BM_StandaloneProfile(benchmark::State &state)
{
    const soc::SocSimulator sim(xavier());
    const soc::KernelProfile k = calib::makeCalibrator(
        sim.model(), xavier().pu(soc::PuKind::Gpu), 70.0);
    const std::size_t gpu = static_cast<std::size_t>(
        xavier().puIndex(soc::PuKind::Gpu));
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.profile(gpu, k));
}
BENCHMARK(BM_StandaloneProfile);

void
BM_CorunSolve(benchmark::State &state)
{
    const soc::SocSimulator sim(xavier());
    const std::size_t gpu = static_cast<std::size_t>(
        xavier().puIndex(soc::PuKind::Gpu));
    const soc::KernelProfile k = calib::makeCalibrator(
        sim.model(), xavier().pus[gpu], 70.0);
    double y = 10.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim.relativeSpeedUnderPressure(gpu, k, y));
        y = y < 100.0 ? y + 1.0 : 10.0;
    }
}
BENCHMARK(BM_CorunSolve);

void
BM_ModelConstruction(benchmark::State &state)
{
    const soc::SocSimulator sim(xavier());
    const std::size_t gpu = static_cast<std::size_t>(
        xavier().puIndex(soc::PuKind::Gpu));
    for (auto _ : state)
        benchmark::DoNotOptimize(model::buildModel(sim, gpu));
}
BENCHMARK(BM_ModelConstruction)->Unit(benchmark::kMillisecond);

void
BM_DramCyclesUnderLoad(benchmark::State &state)
{
    // Cost of one simulated bus cycle with 16 active cores.
    dram::DramSystem sys(dram::table1Config(),
                         "FR-FCFS");
    for (unsigned c = 0; c < 16; ++c) {
        dram::TrafficParams p;
        p.source = c;
        p.demand = 6.0;
        p.seed = 10 + c;
        sys.addGenerator(p);
    }
    sys.run(10000); // warm the queues
    for (auto _ : state)
        sys.run(static_cast<Cycles>(state.range(0)));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DramCyclesUnderLoad)->Arg(1000)->Unit(
    benchmark::kMicrosecond);

/**
 * Simulated-cycles-per-second of the two DRAM run loops, reported via
 * items/s (one item = one simulated bus cycle). Idle-heavy case: one
 * low-demand core, so the event core skips long quiet stretches.
 */
void
dramCyclesIdleSingle(benchmark::State &state, dram::DramRunMode mode)
{
    dram::DramSystem sys(dram::table1Config(),
                         "FR-FCFS",
                         dram::SchedulerParams{}, mode);
    dram::TrafficParams p;
    p.source = 0;
    p.demand = 0.8; // ~1 line every ~240 cycles
    p.mlp = 8;
    p.seed = 7;
    sys.addGenerator(p);
    sys.run(10000);
    for (auto _ : state)
        sys.run(static_cast<Cycles>(state.range(0)));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_DramCyclesIdleSingleReference(benchmark::State &state)
{
    dramCyclesIdleSingle(state, dram::DramRunMode::Reference);
}
BENCHMARK(BM_DramCyclesIdleSingleReference)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void
BM_DramCyclesIdleSingleEventDriven(benchmark::State &state)
{
    dramCyclesIdleSingle(state, dram::DramRunMode::EventDriven);
}
BENCHMARK(BM_DramCyclesIdleSingleEventDriven)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

/**
 * Saturated case: four cores demanding 120 GB/s against a 102.4 GB/s
 * system; nearly every cycle is active, so the event core's win comes
 * from the incremental controller bookkeeping, not from skipping.
 */
void
dramCyclesSaturated4(benchmark::State &state, dram::DramRunMode mode)
{
    dram::DramSystem sys(dram::table1Config(),
                         "FR-FCFS",
                         dram::SchedulerParams{}, mode);
    for (unsigned c = 0; c < 4; ++c) {
        dram::TrafficParams p;
        p.source = c;
        p.demand = 30.0;
        p.seed = 20 + c;
        sys.addGenerator(p);
    }
    sys.run(10000); // fill the queues
    for (auto _ : state)
        sys.run(static_cast<Cycles>(state.range(0)));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_DramCyclesSaturated4Reference(benchmark::State &state)
{
    dramCyclesSaturated4(state, dram::DramRunMode::Reference);
}
BENCHMARK(BM_DramCyclesSaturated4Reference)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void
BM_DramCyclesSaturated4EventDriven(benchmark::State &state)
{
    dramCyclesSaturated4(state, dram::DramRunMode::EventDriven);
}
BENCHMARK(BM_DramCyclesSaturated4EventDriven)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

/**
 * The same saturated workload once per registered policy (event-driven
 * mode), so the fast-pick engine's coverage is visible: every registry
 * policy takes the mask-based issue path now, with the materialized
 * scan held in reserve for fastPick fallback states (a starved ATLAS
 * entry). Registered programmatically from main() so each row carries
 * its policy name (`BM_DramCyclesSaturatedPolicy/FR-FCFS`) instead of
 * a registry index, and so `--policies` can restrict the set.
 */
void
dramCyclesSaturatedPolicy(benchmark::State &state,
                          const std::string &policy)
{
    constexpr Cycles kCycles = 20000;
    dram::DramSystem sys(dram::table1Config(), policy,
                         dram::SchedulerParams{},
                         dram::DramRunMode::EventDriven);
    for (unsigned c = 0; c < 4; ++c) {
        dram::TrafficParams p;
        p.source = c;
        p.demand = 30.0;
        p.seed = 20 + c;
        sys.addGenerator(p);
    }
    sys.run(10000); // fill the queues
    for (auto _ : state)
        sys.run(kCycles);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kCycles));
}

/**
 * Simulated-cycles-per-second of the three multi-MC run loops
 * (4 MCs x 1 channel, range-partitioned). Idle/mixed case: two
 * low-demand cores in two slices, so two controllers are completely
 * idle — the lockstep loop still ticks all four every cycle, the
 * event-driven loop jumps over the quiet stretches, and the sharded
 * loop runs the four whole-run-independent shards on pool threads.
 */
void
multiMcCycles(benchmark::State &state, dram::McRunMode mode,
              bool saturated, const std::string &policy = "FR-FCFS",
              Cycles cycles = 0) // 0: take the count from range(0)
{
    dram::DramConfig cfg = dram::table1Config();
    cfg.channels = 1;
    cfg.requestBufferEntries = 64;
    dram::MultiMcSystem sys(cfg, 4, policy,
                            dram::McMapping::RangePartitioned,
                            dram::SchedulerParams{}, mode);
    const unsigned sources = saturated ? 4 : 2;
    for (unsigned c = 0; c < sources; ++c) {
        dram::TrafficParams p;
        p.source = c * 16; // one source slice per controller
        // Saturated: 30 GB/s against 25.6 GB/s per MC. Idle: a
        // trickle (~1 line every ~240 cycles) on half the MCs.
        p.demand = saturated ? 30.0 : 0.8;
        p.mlp = saturated ? 64 : 8;
        p.seed = 20 + c;
        sys.addGenerator(p);
    }
    sys.run(10000);
    if (cycles == 0)
        cycles = static_cast<Cycles>(state.range(0));
    for (auto _ : state)
        sys.run(cycles);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cycles));
}

void
BM_MultiMcCyclesIdleLockstep(benchmark::State &state)
{
    multiMcCycles(state, dram::McRunMode::Lockstep, false);
}
BENCHMARK(BM_MultiMcCyclesIdleLockstep)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void
BM_MultiMcCyclesIdleEventDriven(benchmark::State &state)
{
    multiMcCycles(state, dram::McRunMode::EventDriven, false);
}
BENCHMARK(BM_MultiMcCyclesIdleEventDriven)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void
BM_MultiMcCyclesIdleSharded(benchmark::State &state)
{
    multiMcCycles(state, dram::McRunMode::Sharded, false);
}
BENCHMARK(BM_MultiMcCyclesIdleSharded)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

/**
 * Saturated case: one 30 GB/s core per 25.6 GB/s controller, so every
 * controller is active nearly every cycle. Skipping buys little here;
 * the sharded loop's four parallel shards carry the win.
 */
void
BM_MultiMcCyclesSaturatedLockstep(benchmark::State &state)
{
    multiMcCycles(state, dram::McRunMode::Lockstep, true);
}
BENCHMARK(BM_MultiMcCyclesSaturatedLockstep)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void
BM_MultiMcCyclesSaturatedEventDriven(benchmark::State &state)
{
    multiMcCycles(state, dram::McRunMode::EventDriven, true);
}
BENCHMARK(BM_MultiMcCyclesSaturatedEventDriven)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void
BM_MultiMcCyclesSaturatedSharded(benchmark::State &state)
{
    multiMcCycles(state, dram::McRunMode::Sharded, true);
}
BENCHMARK(BM_MultiMcCyclesSaturatedSharded)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

/**
 * The saturated multi-MC workload once per registered policy
 * (event-driven mode — each MemoryController inherits the fast issue
 * engine, so these rows show the per-source tier passes under the
 * multi-controller loops). Registered programmatically from main()
 * with policy-name row labels, same as the single-MC per-policy rows.
 */
void
multiMcCyclesSaturatedPolicy(benchmark::State &state,
                             const std::string &policy)
{
    multiMcCycles(state, dram::McRunMode::EventDriven, true, policy,
                  20000);
}

/**
 * Register the per-policy saturated rows, restricted to `filter` when
 * non-empty (entries already validated against the registry). Called
 * from main() after benchmark::Initialize so each row is named after
 * its policy rather than a registry index.
 */
void
registerPerPolicyBenchmarks(const std::vector<std::string> &filter)
{
    for (const auto &info : dram::schedulerPolicies()) {
        if (!filter.empty() &&
            std::find(filter.begin(), filter.end(), info.name) ==
                filter.end()) {
            continue;
        }
        const std::string name = info.name;
        benchmark::RegisterBenchmark(
            ("BM_DramCyclesSaturatedPolicy/" + name).c_str(),
            [name](benchmark::State &st) {
                dramCyclesSaturatedPolicy(st, name);
            })
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            ("BM_MultiMcCyclesSaturatedPolicy/" + name).c_str(),
            [name](benchmark::State &st) {
                multiMcCyclesSaturatedPolicy(st, name);
            })
            ->Unit(benchmark::kMillisecond);
    }
}

void
BM_SchedulerPick(benchmark::State &state)
{
    // Raw policy-decision cost on a synthetic 32-entry queue. The
    // argument indexes the registry, so new registrations are
    // benchmarked automatically.
    const auto &policies = dram::schedulerPolicies();
    const auto &info =
        policies[static_cast<std::size_t>(state.range(0))];
    state.SetLabel(info.name);
    auto sched = info.factory(dram::SchedulerParams{});
    std::vector<dram::Request> reqs(32);
    std::vector<dram::QueueEntryView> entries(32);
    for (unsigned i = 0; i < 32; ++i) {
        reqs[i].id = i;
        reqs[i].source = i % 16;
        reqs[i].arrival = i;
        reqs[i].loc.row = i / 4;
        entries[i] = {&reqs[i], (i % 3) != 0, (i % 2) == 0};
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(sched->pick(0, entries, 1000));
}
BENCHMARK(BM_SchedulerPick)
    ->Apply([](benchmark::internal::Benchmark *b) {
        const auto n = static_cast<long>(
            dram::schedulerPolicies().size());
        b->DenseRange(0, n - 1);
    })
    ->ArgNames({"policy"});

/** A 64-point sweep batch (8 kernels x 8 external-BW steps). */
std::vector<runner::EvalPoint>
sweepBatch(const soc::SocSimulator &sim, std::size_t gpu)
{
    std::vector<runner::EvalPoint> points;
    for (unsigned i = 0; i < 8; ++i) {
        const soc::KernelProfile k = calib::makeCalibrator(
            sim.model(), sim.config().pus[gpu], 20.0 + 12.0 * i);
        for (unsigned j = 1; j <= 8; ++j)
            points.push_back({gpu, k, 12.5 * j});
    }
    return points;
}

/**
 * Engine throughput on a cold cache: evaluateBatch of 64 sweep
 * points, serial (jobs=1) vs the hardware-sized pool.
 */
void
BM_EngineSweepThroughput(benchmark::State &state)
{
    const soc::SocSimulator sim(xavier());
    const std::size_t gpu = static_cast<std::size_t>(
        xavier().puIndex(soc::PuKind::Gpu));
    runner::SweepEngine engine(
        static_cast<unsigned>(state.range(0)));
    const auto points = sweepBatch(sim, gpu);
    for (auto _ : state) {
        engine.cache().clear();
        benchmark::DoNotOptimize(engine.evaluateBatch(sim, points));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_EngineSweepThroughput)
    ->Arg(1)
    ->Arg(0) // 0 = hardware concurrency (or PCCS_JOBS)
    ->ArgNames({"jobs"})
    ->Unit(benchmark::kMillisecond);

/** Warm-cache hit path: the same batch re-evaluated repeatedly. */
void
BM_EngineCacheHit(benchmark::State &state)
{
    const soc::SocSimulator sim(xavier());
    const std::size_t gpu = static_cast<std::size_t>(
        xavier().puIndex(soc::PuKind::Gpu));
    runner::SweepEngine engine(1);
    const auto points = sweepBatch(sim, gpu);
    engine.evaluateBatch(sim, points); // warm the cache
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.evaluateBatch(sim, points));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_EngineCacheHit);

/**
 * Console output as usual, plus an in-memory snapshot of every
 * per-iteration run for the `--json` artifact. (A display-reporter
 * subclass, because benchmark's separate file reporter only engages
 * with --benchmark_out.)
 */
class JsonSnapshotReporter : public benchmark::ConsoleReporter
{
  public:
    void ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &r : runs) {
            if (r.run_type != Run::RT_Iteration || r.error_occurred)
                continue;
            Row row;
            row.name = r.benchmark_name();
            row.nsPerOp = r.iterations
                              ? r.real_accumulated_time /
                                    static_cast<double>(r.iterations) *
                                    1e9
                              : 0.0;
            const auto it = r.counters.find("items_per_second");
            row.itemsPerSecond =
                it != r.counters.end() ? it->second.value : 0.0;
            rows_.push_back(std::move(row));
        }
        benchmark::ConsoleReporter::ReportRuns(runs);
    }

    /**
     * Enforce a throughput floor on every saturated single-MC DRAM
     * row that ran: the headline event-driven row plus each
     * per-policy row (CI perf smoke; with all eight policies
     * fast-pick eligible the floor binds on the whole registry, and
     * `--policies` narrows the checked set along with the run set).
     * @return true when at least one such row ran and all met the
     *         floor.
     */
    bool checkSaturatedFloor(double min_cycles_per_sec) const
    {
        bool found = false;
        bool ok = true;
        const Row *worst = nullptr;
        for (const Row &row : rows_) {
            if (row.name.rfind("BM_DramCyclesSaturated4EventDriven",
                               0) != 0 &&
                row.name.rfind("BM_DramCyclesSaturatedPolicy/", 0) !=
                    0) {
                continue;
            }
            found = true;
            if (!worst || row.itemsPerSecond < worst->itemsPerSecond)
                worst = &row;
            if (row.itemsPerSecond < min_cycles_per_sec) {
                std::fprintf(stderr,
                             "perf floor FAILED: %s ran %.0f "
                             "cycles/s, floor %.0f\n",
                             row.name.c_str(), row.itemsPerSecond,
                             min_cycles_per_sec);
                ok = false;
            }
        }
        if (!found) {
            std::fprintf(stderr,
                         "perf floor FAILED: no saturated DRAM row "
                         "ran (check --benchmark_filter / "
                         "--policies)\n");
            return false;
        }
        if (ok) {
            std::printf("perf floor ok: worst row %s ran %.0f >= "
                        "%.0f cycles/s\n",
                        worst->name.c_str(), worst->itemsPerSecond,
                        min_cycles_per_sec);
        }
        return ok;
    }

    /** Write the snapshot; fatal-free (a bench must not fail late). */
    void write(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return;
        }
        std::fprintf(f, "{\n  \"benchmarks\": [\n");
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            const Row &row = rows_[i];
            std::fprintf(f,
                         "    {\"name\": \"%s\", \"ns_per_op\": %.3f, "
                         "\"items_per_second\": %.3f}%s\n",
                         row.name.c_str(), row.nsPerOp,
                         row.itemsPerSecond,
                         i + 1 < rows_.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
    }

  private:
    struct Row
    {
        std::string name;
        double nsPerOp = 0.0;
        /** Simulated cycles (or sweep points) per wall-clock second. */
        double itemsPerSecond = 0.0;
    };
    std::vector<Row> rows_;
};

/**
 * Parse a comma-separated policy list into canonical registry names.
 * Unknown names are a fatal error (a typo in a CI floor should fail
 * loudly, not silently benchmark nothing).
 * @return false on an unknown policy name.
 */
bool
parsePolicyFilter(const std::string &list,
                  std::vector<std::string> &filter)
{
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string token = list.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (!token.empty()) {
            const dram::PolicyInfo *info =
                dram::findSchedulerPolicy(token);
            if (!info) {
                std::fprintf(stderr,
                             "unknown policy '%s' (valid: %s)\n",
                             token.c_str(),
                             dram::schedulerNameList().c_str());
                return false;
            }
            filter.push_back(info->name);
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel off `--json <path>` / `--json=<path>`,
    // `--min-cycles-per-sec <n>`, and `--policies <a,b>` before
    // benchmark's own flag parsing (it rejects unknown flags).
    std::string json_path;
    std::string policy_list;
    if (const char *env = std::getenv("PCCS_POLICY_FILTER"))
        policy_list = env;
    double min_cycles_per_sec = 0.0;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else if (arg == "--min-cycles-per-sec" && i + 1 < argc) {
            min_cycles_per_sec = std::atof(argv[++i]);
        } else if (arg.rfind("--min-cycles-per-sec=", 0) == 0) {
            min_cycles_per_sec = std::atof(arg.c_str() + 21);
        } else if (arg == "--policies" && i + 1 < argc) {
            policy_list = argv[++i];
        } else if (arg.rfind("--policies=", 0) == 0) {
            policy_list = arg.substr(11);
        } else {
            args.push_back(argv[i]);
        }
    }
    std::vector<std::string> policy_filter;
    if (!parsePolicyFilter(policy_list, policy_filter))
        return 1;
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;
    registerPerPolicyBenchmarks(policy_filter);
    JsonSnapshotReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    if (!json_path.empty())
        reporter.write(json_path);
    benchmark::Shutdown();
    if (min_cycles_per_sec > 0.0 &&
        !reporter.checkSaturatedFloor(min_cycles_per_sec)) {
        return 1;
    }
    return 0;
}
