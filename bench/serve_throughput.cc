/**
 * @file
 * Load generator for the prediction service: starts an in-process
 * `serve::Server` on an ephemeral loopback port, drives it from
 * pipelined TCP clients, and reports sustained predict throughput.
 *
 * The client is deliberately cheap so the server stays the bottleneck:
 * each client prebuilds one burst of `pipeline` frames and sends it
 * with a single write, then counts response newlines straight out of
 * the receive buffer — no per-request formatting, parsing, or
 * allocation in the measurement loop.
 *
 * Modes:
 *  - default: one (clients × pipeline) cell for --seconds, written to
 *    --json (BENCH_serve.json), same shape the repo has always kept;
 *  - --smoke: a short self-check cell; with --min-throughput N the
 *    exit status enforces a throughput floor (CI regression gate);
 *  - --sweep: a clients × pipeline saturation grid, then a
 *    latency-under-load table — a closed-loop latency probe runs
 *    beside the load generator while the load is paced to 25/50/75/
 *    100% of the measured peak (see DESIGN.md section 13).
 *
 * Flags: --seconds N, --clients N, --pipeline N, --shards N,
 * --json PATH / --json=PATH, --smoke, --min-throughput N, --sweep.
 */

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "pccs/model.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/registry.hh"
#include "serve/server.hh"

using namespace pccs;
using namespace pccs::serve;

namespace {

using Clock = std::chrono::steady_clock;

model::PccsParams
xavierGpuLikeParams()
{
    // Fixed parameters in the shape of a calibrated Xavier GPU model;
    // the bench measures the service, not the calibrator.
    model::PccsParams p;
    p.normalBw = 38.1;
    p.intensiveBw = 96.2;
    p.mrmc = 4.9;
    p.cbp = 45.3;
    p.tbwdc = 87.2;
    p.rateN = 1.11;
    p.peakBw = 137.0;
    return p;
}

struct ClientTally
{
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
};

/** One prebuilt burst of `pipeline` predict frames. */
std::string
buildBurst(unsigned pipeline)
{
    std::string burst;
    burst.reserve(pipeline * 96);
    double demand = 5.0;
    for (unsigned i = 0; i < pipeline; ++i) {
        char frame[160];
        std::snprintf(frame, sizeof(frame),
                      "{\"op\":\"predict\",\"id\":%u,"
                      "\"model\":\"xavier.gpu\",\"demand\":%.17g,"
                      "\"external\":25}\n",
                      i, demand);
        demand = demand < 130.0 ? demand + 1.0 : 5.0;
        burst += frame;
    }
    return burst;
}

/**
 * Closed-loop pipelined load client. When perClientRps > 0 the burst
 * cadence is paced to that rate (the latency-under-load fractions);
 * otherwise it runs flat out.
 */
void
burstLoop(std::uint16_t port, unsigned pipeline,
          Clock::time_point deadline, double per_client_rps,
          ClientTally &tally)
{
    TcpClient client;
    std::string error;
    if (!client.connectTo("127.0.0.1", port, &error)) {
        std::fprintf(stderr, "client: %s\n", error.c_str());
        tally.failed = 1;
        return;
    }
    const std::string burst = buildBurst(pipeline);
    // Boundary-safe "ok":false detector: responses can split across
    // recv() chunks, so keep a small carry tail between chunks.
    const std::string_view kFalse = "\"ok\":false";
    std::string carry;
    char buf[256 * 1024];

    const auto interval =
        per_client_rps > 0.0
            ? std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(pipeline /
                                                per_client_rps))
            : Clock::duration::zero();
    auto next = Clock::now();

    while (Clock::now() < deadline) {
        if (!client.sendRaw(burst.data(), burst.size())) {
            ++tally.failed;
            return;
        }
        unsigned seen = 0;
        while (seen < pipeline) {
            const ssize_t n =
                ::recv(client.fd(), buf, sizeof(buf), 0);
            if (n == 0) {
                ++tally.failed;
                return;
            }
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                ++tally.failed;
                return;
            }
            const char *p = buf;
            const char *end = buf + n;
            while (const char *nl = static_cast<const char *>(
                       std::memchr(p, '\n',
                                   static_cast<std::size_t>(end -
                                                            p)))) {
                ++seen;
                ++tally.ok;
                p = nl + 1;
            }
            carry.append(buf, static_cast<std::size_t>(n));
            std::size_t at = 0;
            while ((at = carry.find(kFalse, at)) !=
                   std::string::npos) {
                ++tally.failed;
                --tally.ok;
                at += kFalse.size();
            }
            if (carry.size() > kFalse.size())
                carry.erase(0, carry.size() - kFalse.size());
        }
        if (interval != Clock::duration::zero()) {
            next += interval;
            const auto now = Clock::now();
            if (next > now)
                std::this_thread::sleep_until(next);
            else
                next = now;
        }
    }
}

/** One request at a time; records round-trip microseconds. */
void
latencyLoop(std::uint16_t port, Clock::time_point deadline,
            std::vector<double> &rtts)
{
    TcpClient client;
    if (!client.connectTo("127.0.0.1", port))
        return;
    const std::string frame =
        "{\"op\":\"predict\",\"id\":0,\"model\":\"xavier.gpu\","
        "\"demand\":42,\"external\":25}\n";
    while (Clock::now() < deadline) {
        const auto t0 = Clock::now();
        if (!client.sendRaw(frame.data(), frame.size()))
            return;
        if (!client.recvLine().has_value())
            return;
        rtts.push_back(
            std::chrono::duration<double, std::micro>(
                Clock::now() - t0)
                .count());
    }
}

struct CellResult
{
    unsigned clients = 0;
    unsigned pipeline = 0;
    double seconds = 0.0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    double throughput = 0.0;
};

CellResult
runCell(std::uint16_t port, unsigned clients, unsigned pipeline,
        double seconds, double total_rps = 0.0,
        std::vector<double> *latencies = nullptr)
{
    const auto start = Clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(seconds));
    std::vector<ClientTally> tallies(clients);
    std::vector<std::thread> threads;
    const double per_client =
        total_rps > 0.0 ? total_rps / clients : 0.0;
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            burstLoop(port, pipeline, deadline, per_client,
                      tallies[c]);
        });
    }
    std::thread probe;
    if (latencies != nullptr) {
        probe = std::thread(
            [&] { latencyLoop(port, deadline, *latencies); });
    }
    for (auto &t : threads)
        t.join();
    if (probe.joinable())
        probe.join();

    CellResult r;
    r.clients = clients;
    r.pipeline = pipeline;
    r.seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    for (const ClientTally &t : tallies) {
        r.ok += t.ok;
        r.failed += t.failed;
    }
    r.throughput = r.seconds > 0.0 ? r.ok / r.seconds : 0.0;
    return r;
}

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank = p / 100.0 * (sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - lo;
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Json
fetchServerStats(std::uint16_t port)
{
    TcpClient probe;
    Json stats;
    if (probe.connectTo("127.0.0.1", port)) {
        Json req = Json::object();
        req.set("op", "stats");
        const Json resp = probe.request(req);
        if (const Json *result = resp.find("result"))
            stats = *result;
    }
    return stats;
}

} // namespace

int
main(int argc, char **argv)
{
    double seconds = 3.0;
    unsigned clients = 6;
    unsigned pipeline = 64;
    unsigned shards = 0;
    bool smoke = false;
    bool sweep = false;
    double min_throughput = 0.0;
    std::string json_path = "BENCH_serve.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("flag %s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--seconds")
            seconds = std::atof(value().c_str());
        else if (arg == "--clients")
            clients = static_cast<unsigned>(
                std::atoi(value().c_str()));
        else if (arg == "--pipeline")
            pipeline = static_cast<unsigned>(
                std::atoi(value().c_str()));
        else if (arg == "--shards")
            shards = static_cast<unsigned>(
                std::atoi(value().c_str()));
        else if (arg == "--smoke")
            smoke = true;
        else if (arg == "--sweep")
            sweep = true;
        else if (arg == "--min-throughput")
            min_throughput = std::atof(value().c_str());
        else if (arg == "--json")
            json_path = value();
        else if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else
            fatal("unknown flag '%s'", arg.c_str());
    }
    if (smoke) {
        // A quick self-check cell: small, but big enough to exercise
        // batching across concurrent connections.
        seconds = 1.0;
        clients = 2;
        pipeline = 32;
    }
    if (seconds <= 0.0 || clients == 0 || pipeline == 0)
        fatal("--seconds, --clients, and --pipeline must be > 0");

    ModelRegistry registry;
    registry.addFromParams("xavier.gpu", xavierGpuLikeParams(),
                           "bench:fixed");
    Metrics metrics;
    Dispatcher dispatcher(registry, metrics);
    ServerOptions opts;
    opts.shards = shards;
    Server server(dispatcher, opts);
    std::string error;
    if (!server.start(&error))
        fatal("%s", error.c_str());

    Json out = Json::object();
    out.set("benchmark", "serve_throughput");
    out.set("shards", server.shardCount());
    int exit_code = 0;

    if (sweep) {
        static const unsigned kClients[] = {1, 2, 4, 8, 16};
        static const unsigned kPipelines[] = {1, 16, 64, 256};
        std::printf("serve_throughput sweep: %u shard(s)\n",
                    server.shardCount());
        std::printf("%8s %9s %14s\n", "clients", "pipeline",
                    "req/s");
        Json grid = Json::array();
        CellResult peak;
        std::uint64_t failed = 0;
        for (const unsigned c : kClients) {
            for (const unsigned p : kPipelines) {
                const CellResult r =
                    runCell(server.port(), c, p, 1.2);
                failed += r.failed;
                std::printf("%8u %9u %14.0f\n", c, p,
                            r.throughput);
                Json cell = Json::object();
                cell.set("clients", c);
                cell.set("pipeline", p);
                cell.set("throughputPerSecond", r.throughput);
                grid.push(std::move(cell));
                if (r.throughput > peak.throughput)
                    peak = r;
            }
        }
        out.set("sweep", std::move(grid));

        Json peak_json = Json::object();
        peak_json.set("clients", peak.clients);
        peak_json.set("pipeline", peak.pipeline);
        peak_json.set("throughputPerSecond", peak.throughput);
        out.set("peak", std::move(peak_json));
        std::printf("peak: %.0f req/s at %u client(s) × pipeline "
                    "%u\n",
                    peak.throughput, peak.clients, peak.pipeline);

        // Latency under load: a closed-loop probe beside the load
        // generator, paced to fractions of the measured peak.
        std::printf("%8s %12s %9s %9s %9s %9s\n", "load", "req/s",
                    "p50us", "p95us", "p99us", "maxus");
        Json lat_table = Json::array();
        for (const double frac : {0.25, 0.50, 0.75, 1.0}) {
            std::vector<double> rtts;
            const CellResult r = runCell(
                server.port(), peak.clients, peak.pipeline, 2.0,
                frac < 1.0 ? frac * peak.throughput : 0.0, &rtts);
            failed += r.failed;
            std::sort(rtts.begin(), rtts.end());
            const double p50 = percentile(rtts, 50.0);
            const double p95 = percentile(rtts, 95.0);
            const double p99 = percentile(rtts, 99.0);
            const double mx = rtts.empty() ? 0.0 : rtts.back();
            std::printf("%7.0f%% %12.0f %9.0f %9.0f %9.0f %9.0f\n",
                        frac * 100.0, r.throughput, p50, p95, p99,
                        mx);
            Json row = Json::object();
            row.set("loadFraction", frac);
            row.set("throughputPerSecond", r.throughput);
            row.set("probeRequests", rtts.size());
            row.set("p50Us", p50);
            row.set("p95Us", p95);
            row.set("p99Us", p99);
            row.set("maxUs", mx);
            lat_table.push(std::move(row));
        }
        out.set("latencyUnderLoad", std::move(lat_table));

        // Legacy top-level fields point at the peak cell, so older
        // readers of BENCH_serve.json keep working.
        out.set("clients", peak.clients);
        out.set("pipeline", peak.pipeline);
        out.set("requestsOk", peak.ok);
        out.set("requestsFailed", failed);
        out.set("throughputPerSecond", peak.throughput);
        if (failed > 0)
            exit_code = 1;
        if (min_throughput > 0.0 &&
            peak.throughput < min_throughput) {
            std::fprintf(stderr,
                         "FAIL: peak %.0f req/s below the floor "
                         "%.0f req/s\n",
                         peak.throughput, min_throughput);
            exit_code = 1;
        }
    } else {
        std::printf("serve_throughput: %u client(s), pipeline %u, "
                    "%.1f s window, %u shard(s), port %u\n",
                    clients, pipeline, seconds,
                    server.shardCount(), server.port());
        const CellResult r = runCell(server.port(), clients,
                                     pipeline, seconds);
        std::printf(
            "predict responses: %llu ok, %llu failed in %.2f s\n",
            static_cast<unsigned long long>(r.ok),
            static_cast<unsigned long long>(r.failed), r.seconds);
        std::printf("throughput: %.0f predict req/s\n",
                    r.throughput);
        out.set("clients", clients);
        out.set("pipeline", pipeline);
        out.set("elapsedSeconds", r.seconds);
        out.set("requestsOk", r.ok);
        out.set("requestsFailed", r.failed);
        out.set("throughputPerSecond", r.throughput);
        if (r.failed > 0) {
            std::fprintf(
                stderr, "serve_throughput: %llu failed request(s)\n",
                static_cast<unsigned long long>(r.failed));
            exit_code = 1;
        }
        if (min_throughput > 0.0 && r.throughput < min_throughput) {
            std::fprintf(stderr,
                         "FAIL: %.0f req/s below the floor %.0f "
                         "req/s\n",
                         r.throughput, min_throughput);
            exit_code = 1;
        }
    }

    // The server's own view (latency histograms, batch sizes, cache
    // counters) rides along in the artifact.
    Json server_stats = fetchServerStats(server.port());
    if (const Json *batches = server_stats.find("batches")) {
        std::printf("batches: %.0f passes, mean size %.1f, "
                    "largest %.0f\n",
                    batches->find("passes")->asNumber(),
                    batches->find("meanSize")->asNumber(),
                    batches->find("largest")->asNumber());
    }
    out.set("server", std::move(server_stats));
    server.stop();

    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        const std::string text = out.dump();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("artifact: %s\n", json_path.c_str());
    } else {
        fatal("cannot write %s", json_path.c_str());
    }
    return exit_code;
}
