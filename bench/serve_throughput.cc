/**
 * @file
 * Load generator for the prediction service: starts an in-process
 * `serve::Server` on an ephemeral loopback port, drives it from
 * pipelined TCP clients, and reports sustained predict throughput.
 *
 * Flags: --seconds N (measurement window, default 3), --clients N
 * (default 6), --pipeline N (in-flight requests per client, default
 * 64), --json PATH / --json=PATH (machine-readable snapshot, default
 * BENCH_serve.json). The JSON records client-side throughput plus the
 * server's own latency percentiles and batch-size distribution, so a
 * regression in either the transport or the batcher shows up in CI.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "pccs/model.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/registry.hh"
#include "serve/server.hh"

using namespace pccs;
using namespace pccs::serve;

namespace {

model::PccsParams
xavierGpuLikeParams()
{
    // Fixed parameters in the shape of a calibrated Xavier GPU model;
    // the bench measures the service, not the calibrator.
    model::PccsParams p;
    p.normalBw = 38.1;
    p.intensiveBw = 96.2;
    p.mrmc = 4.9;
    p.cbp = 45.3;
    p.tbwdc = 87.2;
    p.rateN = 1.11;
    p.peakBw = 137.0;
    return p;
}

struct ClientTally
{
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
};

void
clientLoop(std::uint16_t port, unsigned pipeline,
           std::chrono::steady_clock::time_point deadline,
           ClientTally &tally)
{
    TcpClient client;
    std::string error;
    if (!client.connectTo("127.0.0.1", port, &error)) {
        std::fprintf(stderr, "client: %s\n", error.c_str());
        tally.failed = 1;
        return;
    }
    std::uint64_t id = 0;
    double demand = 5.0;
    while (std::chrono::steady_clock::now() < deadline) {
        for (unsigned i = 0; i < pipeline; ++i) {
            char frame[160];
            std::snprintf(frame, sizeof(frame),
                          "{\"op\":\"predict\",\"id\":%llu,"
                          "\"model\":\"xavier.gpu\",\"demand\":%.17g,"
                          "\"external\":25}",
                          static_cast<unsigned long long>(id++),
                          demand);
            demand = demand < 130.0 ? demand + 1.0 : 5.0;
            if (!client.sendLine(frame)) {
                ++tally.failed;
                return;
            }
        }
        for (unsigned i = 0; i < pipeline; ++i) {
            const auto line = client.recvLine();
            if (!line.has_value()) {
                ++tally.failed;
                return;
            }
            // Responses are one JSON object per line; the cheap check
            // keeps the generator out of the measurement's way.
            if (line->find("\"ok\":true") != std::string::npos)
                ++tally.ok;
            else
                ++tally.failed;
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    double seconds = 3.0;
    unsigned clients = 6;
    unsigned pipeline = 64;
    std::string json_path = "BENCH_serve.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("flag %s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--seconds")
            seconds = std::atof(value().c_str());
        else if (arg == "--clients")
            clients = static_cast<unsigned>(
                std::atoi(value().c_str()));
        else if (arg == "--pipeline")
            pipeline = static_cast<unsigned>(
                std::atoi(value().c_str()));
        else if (arg == "--json")
            json_path = value();
        else if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else
            fatal("unknown flag '%s'", arg.c_str());
    }
    if (seconds <= 0.0 || clients == 0 || pipeline == 0)
        fatal("--seconds, --clients, and --pipeline must be > 0");

    ModelRegistry registry;
    registry.addFromParams("xavier.gpu", xavierGpuLikeParams(),
                           "bench:fixed");
    Metrics metrics;
    Dispatcher dispatcher(registry, metrics);
    Server server(dispatcher);
    std::string error;
    if (!server.start(&error))
        fatal("%s", error.c_str());

    std::printf("serve_throughput: %u client(s), pipeline %u, "
                "%.1f s window, port %u\n",
                clients, pipeline, seconds, server.port());

    const auto start = std::chrono::steady_clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds));
    std::vector<ClientTally> tallies(clients);
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            clientLoop(server.port(), pipeline, deadline,
                       tallies[c]);
        });
    }
    for (auto &t : threads)
        t.join();
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    std::uint64_t ok = 0, failed = 0;
    for (const ClientTally &t : tallies) {
        ok += t.ok;
        failed += t.failed;
    }
    const double throughput = elapsed > 0.0 ? ok / elapsed : 0.0;

    // Pull the server's own view before stopping it.
    TcpClient probe;
    Json server_stats;
    if (probe.connectTo("127.0.0.1", server.port())) {
        Json req = Json::object();
        req.set("op", "stats");
        const Json resp = probe.request(req);
        if (const Json *result = resp.find("result"))
            server_stats = *result;
    }
    server.stop();

    std::printf("predict responses: %llu ok, %llu failed in %.2f s\n",
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(failed), elapsed);
    std::printf("throughput: %.0f predict req/s\n", throughput);
    if (const Json *batches = server_stats.find("batches")) {
        std::printf("batches: %.0f passes, mean size %.1f, "
                    "largest %.0f\n",
                    batches->find("passes")->asNumber(),
                    batches->find("meanSize")->asNumber(),
                    batches->find("largest")->asNumber());
    }

    Json out = Json::object();
    out.set("benchmark", "serve_throughput");
    out.set("clients", clients);
    out.set("pipeline", pipeline);
    out.set("elapsedSeconds", elapsed);
    out.set("requestsOk", ok);
    out.set("requestsFailed", failed);
    out.set("throughputPerSecond", throughput);
    out.set("server", std::move(server_stats));
    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        const std::string text = out.dump();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("artifact: %s\n", json_path.c_str());
    } else {
        fatal("cannot write %s", json_path.c_str());
    }

    if (failed > 0) {
        std::fprintf(stderr,
                     "serve_throughput: %llu failed request(s)\n",
                     static_cast<unsigned long long>(failed));
        return 1;
    }
    return 0;
}
