/**
 * @file
 * Table 9 + Figure 15: the SoC-design use case. Architects pick the
 * lowest GPU clock whose co-run performance of streamcluster stays
 * within 5% (or 20%) of the full-clock co-run performance, under
 * 20/40/60 GB/s of external demand. Selections guided by PCCS and
 * Gables are validated against the simulated ground truth. Paper:
 * PCCS selections land 1.3-3.6% off; Gables 3.8-49.1% off, because it
 * predicts no contention while total demand is below the peak.
 */

#include <cmath>
#include <cstdio>

#include "bench/common.hh"
#include "common/table.hh"
#include "gables/gables.hh"
#include "pccs/builder.hh"
#include "pccs/design.hh"
#include "workloads/rodinia.hh"

using namespace pccs;

int
main()
{
    bench::banner("GPU frequency selection for streamcluster under "
                  "co-run slowdown caps",
                  "Table 9 + Figure 15");

    const soc::SocConfig soc = soc::xavierLike();
    const soc::SocSimulator sim(soc);
    const std::size_t gpu = static_cast<std::size_t>(
        soc.puIndex(soc::PuKind::Gpu));
    const soc::KernelProfile sc =
        workloads::rodiniaKernel("streamcluster", soc::PuKind::Gpu);

    const model::PccsModel pccs = model::buildModel(sim, gpu);
    const gables::GablesModel gables(soc.memory.peakBandwidth);
    const model::DesignExplorer explorer(soc);

    std::vector<double> grid;
    for (double f = 420.0; f <= 1370.0; f += 10.0)
        grid.push_back(f);
    grid.push_back(1377.0);

    runner::RunResult artifact = bench::makeArtifact(
        "table09_freq_selection",
        "GPU frequency selection for streamcluster under co-run "
        "slowdown caps",
        "Table 9 + Figure 15", soc.name, soc.pus[gpu].name);

    // --- Table 9 analogue -------------------------------------------
    for (double allowed : {5.0, 20.0}) {
        std::printf("--- maximum allowed co-run slowdown: %.0f%% ---\n",
                    allowed);
        Table t({"external BW (GB/s)", "ground truth (MHz)",
                 "PCCS (MHz)", "PCCS err (%)", "Gables (MHz)",
                 "Gables err (%)"});
        double pe_sum = 0.0, ge_sum = 0.0;
        for (double y : {20.0, 40.0, 60.0}) {
            const auto truth = explorer.selectFrequencyActual(
                gpu, sc, y, allowed, grid);
            const auto p = explorer.selectFrequency(gpu, sc, y,
                                                    allowed, pccs,
                                                    grid);
            const auto g = explorer.selectFrequency(gpu, sc, y,
                                                    allowed, gables,
                                                    grid);
            const double pe =
                100.0 * std::fabs(p.value - truth.value) / truth.value;
            const double ge =
                100.0 * std::fabs(g.value - truth.value) / truth.value;
            pe_sum += pe;
            ge_sum += ge;
            t.addRow({fmtDouble(y, 0), fmtDouble(truth.value, 0),
                      fmtDouble(p.value, 0), fmtDouble(pe, 1),
                      fmtDouble(g.value, 0), fmtDouble(ge, 1)});
        }
        t.addRow({"AVERAGE", "-", "-", fmtDouble(pe_sum / 3.0, 1),
                  "-", fmtDouble(ge_sum / 3.0, 1)});
        std::printf("%s\n", t.str().c_str());
        artifact.addTable("max allowed slowdown " +
                              fmtDouble(allowed, 0) + "%",
                          t);
    }
    std::printf("paper (Table 9): PCCS picks within 1.3-3.6%% of the "
                "ground truth; Gables is 3.8-49.1%% off (it keeps the "
                "clock high because it predicts no contention below "
                "the peak).\n\n");

    // --- Figure 15 analogue: co-run performance curves --------------
    for (double freq : {900.0, 670.0}) {
        std::printf("--- co-run relative performance at %.0f MHz "
                    "(vs full-clock co-run) ---\n",
                    freq);
        std::vector<std::string> headers{"series"};
        std::vector<double> ys;
        for (double y = 0.0; y <= 80.0; y += 10.0)
            ys.push_back(y);
        for (double y : ys)
            headers.push_back("y=" + fmtDouble(y, 0));
        Table t(std::move(headers));

        std::vector<double> actual, via_pccs, via_gables;
        for (double y : ys) {
            const double ref =
                explorer.corunPerformanceActual(gpu, sc, 1377.0, y);
            actual.push_back(100.0 *
                             explorer.corunPerformanceActual(
                                 gpu, sc, freq, y) /
                             ref);
            const double ref_p =
                explorer.corunPerformance(gpu, sc, 1377.0, y, pccs);
            via_pccs.push_back(
                100.0 *
                explorer.corunPerformance(gpu, sc, freq, y, pccs) /
                ref_p);
            const double ref_g =
                explorer.corunPerformance(gpu, sc, 1377.0, y, gables);
            via_gables.push_back(
                100.0 *
                explorer.corunPerformance(gpu, sc, freq, y, gables) /
                ref_g);
        }
        t.addRow("ground truth (%)", actual, 1);
        t.addRow("PCCS (%)", via_pccs, 1);
        t.addRow("Gables (%)", via_gables, 1);
        std::printf("%s\n", t.str().c_str());
        artifact.addTable("co-run performance at " +
                              fmtDouble(freq, 0) + " MHz",
                          t);
    }
    bench::writeArtifact(std::move(artifact));
    std::printf("Expected (Fig. 15): under contention the down-clocked "
                "GPU loses little co-run performance (its demand no\n"
                "longer exceeds its shrunken grant); PCCS tracks this, "
                "Gables does not.\n");
    return 0;
}
