/**
 * @file
 * Figure 5: achieved relative speed (%) of the high-bandwidth core
 * group under external memory pressure from the low-bandwidth group,
 * for the five memory-controller scheduling policies of Table 2, on
 * the cycle-level DRAM simulator configured per Table 1 (16 cores,
 * 4-channel DDR4-3200, 102.4 GB/s).
 *
 * Expected result (Section 2.3): FCFS degrades everyone proportionally;
 * FR-FCFS lets memory-intensive co-runners starve the observed group;
 * only the fairness-controlled policies (ATLAS, TCM, SMS) reproduce
 * the flat-drop-flat trends measured on the real Xavier.
 */

#include <cstdio>

#include "bench/common.hh"
#include "common/table.hh"
#include "dram/system.hh"

using namespace pccs;
using namespace pccs::dram;

namespace {

constexpr unsigned groupCores = 8;
constexpr Cycles warmup = 15000;
constexpr Cycles window = 60000;

/** Total completed lines of cores [begin, end). */
std::uint64_t
groupCompleted(DramSystem &sys, unsigned begin, unsigned end)
{
    std::uint64_t lines = 0;
    for (unsigned i = begin; i < end; ++i)
        lines += sys.generator(i).completedLines();
    return lines;
}

/**
 * Measure the high group's achieved speed (lines completed in the
 * window) with `high_total` GB/s spread over the high group and
 * `low_total` GB/s over the low group (0 = group absent).
 */
std::uint64_t
measure(SchedulerKind policy, GBps high_total, GBps low_total)
{
    DramSystem sys(table1Config(), policy);
    unsigned source = 0;
    for (unsigned c = 0; c < groupCores; ++c, ++source) {
        TrafficParams p;
        p.source = source;
        p.demand = low_total > 0.0 ? low_total / groupCores : 0.0;
        p.seed = 1000 + source;
        if (low_total > 0.0)
            sys.addGenerator(p);
    }
    unsigned high_begin = low_total > 0.0 ? groupCores : 0;
    for (unsigned c = 0; c < groupCores; ++c) {
        TrafficParams p;
        p.source = groupCores + c;
        p.demand = high_total / groupCores;
        p.seed = 2000 + c;
        sys.addGenerator(p);
    }
    sys.run(warmup);
    sys.resetMeasurement();
    sys.run(window);
    return groupCompleted(sys, high_begin ? groupCores : 0,
                          (high_begin ? groupCores : 0) + groupCores);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::applyDramRunFlags(argc, argv);
    bench::banner("High-BW group relative speed under the five MC "
                  "scheduling policies (cycle-level DRAM simulator)",
                  "Figure 5 (a)-(e), Tables 1 & 2");

    const std::vector<GBps> high_demands{18.0, 36.0, 54.0, 72.0, 90.0};
    const std::vector<GBps> low_demands{10.0, 20.0, 30.0, 40.0, 50.0,
                                        60.0};

    runner::RunResult artifact = bench::makeArtifact(
        "fig05_scheduling_policies",
        "High-BW group relative speed under the five MC scheduling "
        "policies",
        "Figure 5 (a)-(e), Tables 1 & 2", "table1-ddr4", "high group",
        low_demands);

    for (auto policy : {SchedulerKind::Fcfs, SchedulerKind::FrFcfs,
                        SchedulerKind::Atlas, SchedulerKind::Tcm,
                        SchedulerKind::Sms}) {
        std::printf("--- %s ---\n", schedulerName(policy));
        std::vector<std::string> headers{"high-group demand"};
        for (GBps low : low_demands)
            headers.push_back("ext=" + fmtDouble(low, 0));
        Table t(std::move(headers));

        for (GBps high : high_demands) {
            const double solo = static_cast<double>(
                measure(policy, high, 0.0));
            std::vector<double> row;
            for (GBps low : low_demands) {
                const double corun = static_cast<double>(
                    measure(policy, high, low));
                row.push_back(100.0 * corun / solo);
            }
            t.addRow(fmtDouble(high, 0) + " GB/s", row, 1);
        }
        std::printf("%s\n", t.str().c_str());
        artifact.addTable(schedulerName(policy), t);
    }

    bench::writeArtifact(std::move(artifact));

    std::printf("Expected (paper, Fig. 5): FCFS reduces speed roughly "
                "proportionally with pressure; FR-FCFS shows large\n"
                "slowdowns for the observed group when co-located with "
                "intensive traffic; ATLAS/TCM/SMS (fairness control)\n"
                "show the three-stage flat/drop/flat trends seen on "
                "the real Xavier (Fig. 3).\n");
    return 0;
}
