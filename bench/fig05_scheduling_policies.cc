/**
 * @file
 * Figure 5: achieved relative speed (%) of the high-bandwidth core
 * group under external memory pressure from the low-bandwidth group,
 * for every registered memory-controller scheduling policy, on the
 * cycle-level DRAM simulator configured per Table 1 (16 cores,
 * 4-channel DDR4-3200, 102.4 GB/s).
 *
 * Expected result (Section 2.3): FCFS degrades everyone proportionally;
 * FR-FCFS lets memory-intensive co-runners starve the observed group;
 * only the fairness-controlled policies (ATLAS, TCM, SMS — and of the
 * extension policies BLISS and PARBS) reproduce the flat-drop-flat
 * trends measured on the real Xavier.
 *
 * On top of the per-policy grids, each policy's measured matrix is fed
 * through the PCCS model-construction algorithm (Section 3.2) and the
 * closing table reports the extracted region boundaries plus the
 * model's mean fit error against the measurements — i.e., which
 * policies preserve the minor/normal/intensive three-region structure
 * and how the PCCS calibration error shifts per policy.
 *
 * Flags: `--policies A,B,...` restricts the run to a subset of
 * registered policies; `--quick` shrinks the demand grids and windows
 * (CI smoke); plus the common `--dram-reference` run-mode flag.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "dram/system.hh"
#include "pccs/builder.hh"

using namespace pccs;
using namespace pccs::dram;

namespace {

constexpr unsigned groupCores = 8;

Cycles warmup = 15000;
Cycles window = 60000;

/** Total completed lines of cores [begin, end). */
std::uint64_t
groupCompleted(DramSystem &sys, unsigned begin, unsigned end)
{
    std::uint64_t lines = 0;
    for (unsigned i = begin; i < end; ++i)
        lines += sys.generator(i).completedLines();
    return lines;
}

/**
 * Measure the high group's achieved speed (lines completed in the
 * window) with `high_total` GB/s spread over the high group and
 * `low_total` GB/s over the low group (0 = group absent).
 */
std::uint64_t
measure(const std::string &policy, GBps high_total, GBps low_total)
{
    DramSystem sys(table1Config(), policy);
    unsigned source = 0;
    for (unsigned c = 0; c < groupCores; ++c, ++source) {
        TrafficParams p;
        p.source = source;
        p.demand = low_total > 0.0 ? low_total / groupCores : 0.0;
        p.seed = 1000 + source;
        if (low_total > 0.0)
            sys.addGenerator(p);
    }
    unsigned high_begin = low_total > 0.0 ? groupCores : 0;
    for (unsigned c = 0; c < groupCores; ++c) {
        TrafficParams p;
        p.source = groupCores + c;
        p.demand = high_total / groupCores;
        p.seed = 2000 + c;
        sys.addGenerator(p);
    }
    sys.run(warmup);
    sys.resetMeasurement();
    sys.run(window);
    return groupCompleted(sys, high_begin ? groupCores : 0,
                          (high_begin ? groupCores : 0) + groupCores);
}

/** Per-policy three-region characterization derived from its grid. */
struct Characterization
{
    std::string policy;
    model::PccsParams params;
    /** Mean |model - measured| over the grid, percentage points. */
    double fitError = 0.0;
    /** True when the minor/normal/intensive structure survived. */
    bool threeRegions = false;
};

Characterization
characterize(const std::string &policy,
             const std::vector<GBps> &high_demands,
             const std::vector<GBps> &low_demands,
             const std::vector<std::vector<double>> &rela)
{
    // The measured grid *is* a calibration matrix: rows are the high
    // group's standalone demands, columns the external-pressure
    // ladder, cells the achieved relative speeds. Run the Section 3.2
    // construction on it and score the resulting model against the
    // very measurements it was built from (in-sample fit error).
    calib::CalibrationMatrix matrix;
    matrix.standaloneBw = high_demands;
    matrix.externalBw = low_demands;
    matrix.rela = rela;

    Characterization c;
    c.policy = policy;
    c.params =
        model::buildModelParams(matrix, table1Config().peakBandwidth());
    model::PccsModel m(c.params);
    double err = 0.0;
    for (std::size_t i = 0; i < high_demands.size(); ++i) {
        for (std::size_t j = 0; j < low_demands.size(); ++j) {
            err += std::abs(m.relativeSpeed(high_demands[i],
                                            low_demands[j]) -
                            rela[i][j]);
        }
    }
    c.fitError = err / static_cast<double>(high_demands.size() *
                                           low_demands.size());
    c.threeRegions = !c.params.noMinorRegion() &&
                     c.params.normalBw > 0.0 &&
                     c.params.normalBw < c.params.intensiveBw;
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> policies;
    bool quick = false;
    const std::vector<std::string> leftover =
        bench::consumeDramRunFlags(argc, argv);
    for (std::size_t i = 0; i < leftover.size(); ++i) {
        if (leftover[i] == "--quick") {
            quick = true;
        } else if (leftover[i] == "--policies" &&
                   i + 1 < leftover.size()) {
            std::string list = leftover[++i];
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                const std::size_t comma = list.find(',', pos);
                const std::string tok =
                    list.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos);
                if (!tok.empty())
                    policies.push_back(schedulerFromName(tok).name);
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else {
            fatal("usage: %s [--dram-reference] [--mc-parallel] "
                  "[--quick] [--policies A,B,...]\n"
                  "unknown argument '%s' (valid policies: %s)",
                  argv[0], leftover[i].c_str(),
                  schedulerNameList().c_str());
        }
    }
    if (policies.empty())
        policies = schedulerNames();

    bench::banner("High-BW group relative speed under the registered "
                  "MC scheduling policies (cycle-level DRAM simulator)",
                  "Figure 5, Tables 1 & 2");

    std::vector<GBps> high_demands{18.0, 36.0, 54.0, 72.0, 90.0};
    std::vector<GBps> low_demands{10.0, 20.0, 30.0, 40.0, 50.0, 60.0};
    if (quick) {
        high_demands = {18.0, 54.0, 90.0};
        low_demands = {20.0, 40.0, 60.0};
        warmup = 6000;
        window = 20000;
    }

    runner::RunResult artifact = bench::makeArtifact(
        "fig05_scheduling_policies",
        "High-BW group relative speed under the registered MC "
        "scheduling policies",
        "Figure 5, Tables 1 & 2", "table1-ddr4", "high group",
        low_demands);

    std::vector<Characterization> chars;
    for (const std::string &policy : policies) {
        std::printf("--- %s ---\n", policy.c_str());
        std::vector<std::string> headers{"high-group demand"};
        for (GBps low : low_demands)
            headers.push_back("ext=" + fmtDouble(low, 0));
        Table t(std::move(headers));

        std::vector<std::vector<double>> rela;
        for (GBps high : high_demands) {
            const double solo = static_cast<double>(
                measure(policy, high, 0.0));
            std::vector<double> row;
            for (GBps low : low_demands) {
                const double corun = static_cast<double>(
                    measure(policy, high, low));
                row.push_back(100.0 * corun / solo);
            }
            t.addRow(fmtDouble(high, 0) + " GB/s", row, 1);
            rela.push_back(std::move(row));
        }
        std::printf("%s\n", t.str().c_str());
        artifact.addTable(policy, t);
        chars.push_back(
            characterize(policy, high_demands, low_demands, rela));
    }

    // Three-region characterization: which policies keep the paper's
    // minor/normal/intensive structure, and how well the PCCS model
    // built from each policy's matrix fits it back.
    Table summary({"policy", "normalBW", "intensiveBW", "MRMC (%)",
                   "rateN", "fit err (%)", "three regions"});
    for (const Characterization &c : chars) {
        summary.addRow(
            {c.policy, fmtDouble(c.params.normalBw, 1),
             fmtDouble(c.params.intensiveBw, 1),
             c.params.noMinorRegion() ? std::string("NA")
                                      : fmtDouble(c.params.mrmc, 1),
             fmtDouble(c.params.rateN, 2), fmtDouble(c.fitError, 1),
             c.threeRegions ? "yes" : "no"});
    }
    std::printf("--- PCCS three-region characterization ---\n%s\n",
                summary.str().c_str());
    artifact.addTable("three-region characterization", summary);

    bench::writeArtifact(std::move(artifact));

    std::printf("Expected (paper, Fig. 5): FCFS reduces speed roughly "
                "proportionally with pressure; FR-FCFS shows large\n"
                "slowdowns for the observed group when co-located with "
                "intensive traffic; the fairness-controlled policies\n"
                "(ATLAS/TCM/SMS, and BLISS/PARBS among the extension "
                "policies) show the three-stage flat/drop/flat trends\n"
                "seen on the real Xavier (Fig. 3).\n");
    return 0;
}
