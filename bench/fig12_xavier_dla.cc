/**
 * @file
 * Figure 12: predicted and actual slowdowns of VGG19 and ResNet-50
 * (plus AlexNet from Table 8) inference on the Xavier-class DLA.
 * Paper: PCCS averages 5.3% error, Gables 26.7%. The DLA only draws
 * 20-30 GB/s standalone, yet keeps slowing until ~70 GB/s of external
 * pressure with only a small flat region at the high end.
 */

#include <cmath>
#include <cstdio>

#include "bench/common.hh"
#include "common/table.hh"
#include "gables/gables.hh"
#include "pccs/builder.hh"
#include "pccs/phases.hh"
#include "workloads/nn.hh"

using namespace pccs;

int
main()
{
    bench::banner("Neural-network inference on the Xavier DLA: "
                  "predicted vs actual slowdown",
                  "Figure 12");

    const soc::SocSimulator sim(soc::xavierLike());
    const std::size_t dla = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Dla));
    const model::PccsModel pccs = model::buildModel(sim, dla);
    const gables::GablesModel gables(
        sim.config().memory.peakBandwidth);
    const auto ladder = bench::externalLadder(100.0);

    double pccs_sum = 0.0, gables_sum = 0.0;
    int n_models = 0;
    Table summary({"model", "PCCS err (%)", "Gables err (%)"});
    runner::RunResult artifact = bench::makeArtifact(
        "fig12_xavier_dla",
        "Neural-network inference on the Xavier DLA: predicted vs "
        "actual slowdown",
        "Figure 12", sim.config().name, sim.config().pus[dla].name,
        ladder);

    for (const auto &w : {workloads::vgg19Dla(),
                          workloads::resnet50Dla(),
                          workloads::alexnetDla()}) {
        // Phase decomposition: standalone time shares + demands.
        double solo_total = 0.0;
        for (const auto &ph : w.phases)
            solo_total += sim.profile(dla, ph).seconds;
        std::vector<model::PhaseDemand> phases;
        for (const auto &ph : w.phases) {
            const auto prof = sim.profile(dla, ph);
            phases.push_back(
                {prof.bandwidthDemand, prof.seconds / solo_total});
        }

        std::vector<std::string> headers{"series"};
        for (GBps y : ladder)
            headers.push_back("y=" + fmtDouble(y, 0));
        Table t(std::move(headers));
        std::vector<double> act, prd, gab;
        for (GBps y : ladder) {
            double corun_time = 0.0;
            for (const auto &ph : w.phases) {
                const auto prof = sim.profile(dla, ph);
                const double rs =
                    sim.relativeSpeedUnderPressure(dla, ph, y);
                corun_time += prof.seconds / (rs / 100.0);
            }
            act.push_back(100.0 * solo_total / corun_time);
            prd.push_back(model::predictPiecewise(pccs, phases, y));
            gab.push_back(model::predictPiecewise(gables, phases, y));
        }
        t.addRow("actual RS (%)", act, 1);
        t.addRow("PCCS RS (%)", prd, 1);
        t.addRow("Gables RS (%)", gab, 1);
        std::printf("%s\n%s\n", w.name.c_str(), t.str().c_str());

        runner::KernelRun kr;
        kr.name = w.name;
        kr.demand = 0.0;
        for (const auto &ph : phases)
            kr.demand += ph.demand * ph.timeShare;
        kr.series.push_back({"actual", act});
        kr.series.push_back({"pccs", prd});
        kr.series.push_back({"gables", gab});
        artifact.kernels.push_back(std::move(kr));

        double pe = 0.0, ge = 0.0;
        for (std::size_t j = 0; j < ladder.size(); ++j) {
            pe += std::fabs(prd[j] - act[j]);
            ge += std::fabs(gab[j] - act[j]);
        }
        pe /= ladder.size();
        ge /= ladder.size();
        summary.addRow(
            {w.name, fmtDouble(pe, 1), fmtDouble(ge, 1)});
        pccs_sum += pe;
        gables_sum += ge;
        ++n_models;
    }
    summary.addRow({"AVERAGE", fmtDouble(pccs_sum / n_models, 1),
                    fmtDouble(gables_sum / n_models, 1)});
    std::printf("%s\n", summary.str().c_str());
    artifact.addTable("mean absolute error vs actual", summary);
    bench::writeArtifact(std::move(artifact));
    std::printf("paper reports (on real hardware): PCCS 5.3%%, Gables "
                "26.7%%\n");
    return 0;
}
