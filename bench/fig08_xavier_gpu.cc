/**
 * @file
 * Figure 8: predicted (PCCS, Gables) and actual slowdowns of the ten
 * Rodinia benchmarks on the Xavier-class GPU under external memory
 * contention swept from 10% to 100% of the peak-bandwidth-scaled
 * ladder. Paper: PCCS averages 6.3% error, Gables 39%.
 */

#include "bench/common.hh"
#include "gables/gables.hh"
#include "pccs/builder.hh"
#include "workloads/rodinia.hh"

using namespace pccs;

int
main()
{
    bench::banner("Rodinia on the Xavier GPU: predicted vs actual "
                  "slowdown",
                  "Figure 8");

    const soc::SocSimulator sim(soc::xavierLike());
    const std::size_t gpu = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Gpu));
    const model::PccsModel pccs = model::buildModel(sim, gpu);
    const gables::GablesModel gables(
        sim.config().memory.peakBandwidth);
    const auto ladder = bench::externalLadder(
        0.73 * sim.config().memory.peakBandwidth);

    std::vector<bench::SweepResult> results;
    for (const auto &name : workloads::gpuBenchmarks()) {
        results.push_back(bench::sweepKernel(
            sim, gpu, workloads::rodiniaKernel(name, soc::PuKind::Gpu),
            pccs, gables, ladder));
    }
    bench::printSweepReport(results, ladder);
    bench::printErrorSummary(results, 6.3, 39.0);
    bench::writeArtifact(bench::sweepArtifact(
        "fig08_xavier_gpu",
        "Rodinia on the Xavier GPU: predicted vs actual slowdown",
        "Figure 8", sim, gpu, results, ladder));
    return 0;
}
