/**
 * @file
 * Figure 10: predicted (PCCS, Gables) and actual slowdowns of the ten
 * Rodinia benchmarks on the Snapdragon-855-class GPU. Paper: PCCS
 * averages 5.9% error, Gables 37.6%.
 */

#include "bench/common.hh"
#include "gables/gables.hh"
#include "pccs/builder.hh"
#include "workloads/rodinia.hh"

using namespace pccs;

int
main()
{
    bench::banner("Rodinia on the Snapdragon 855 GPU: predicted vs "
                  "actual slowdown",
                  "Figure 10");

    const soc::SocSimulator sim(soc::snapdragonLike());
    const std::size_t gpu = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Gpu));
    const model::PccsModel pccs = model::buildModel(sim, gpu);
    const gables::GablesModel gables(
        sim.config().memory.peakBandwidth);
    const auto ladder = bench::externalLadder(
        0.73 * sim.config().memory.peakBandwidth);

    std::vector<bench::SweepResult> results;
    for (const auto &name : workloads::gpuBenchmarks()) {
        results.push_back(bench::sweepKernel(
            sim, gpu, workloads::rodiniaKernel(name, soc::PuKind::Gpu),
            pccs, gables, ladder));
    }
    bench::printSweepReport(results, ladder);
    bench::printErrorSummary(results, 5.9, 37.6);
    bench::writeArtifact(bench::sweepArtifact(
        "fig10_snapdragon_gpu",
        "Rodinia on the Snapdragon 855 GPU: predicted vs actual "
        "slowdown",
        "Figure 10", sim, gpu, results, ladder));
    return 0;
}
