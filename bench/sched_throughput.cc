/**
 * @file
 * Throughput and quality of the QoS scheduler (src/sched/).
 *
 * Two measurements:
 *
 *  1. decision throughput: admission decisions per second on the
 *     steady-state batched path — interned kernel classes, warm
 *     frequency grids, no event recording — driven by a pinned
 *     submit/submit/complete/complete loop across the Xavier-like
 *     GPU and CPU. The floor the CI smoke job enforces lives here.
 *
 *  2. SLO attainment vs load: a pinned random arrival/departure
 *     process at increasing arrival intensities, under both strict
 *     and best-effort admission. Every accepted schedule is replayed
 *     through the SoC simulator oracle; the curve records admission
 *     rate and *simulated* SLO attainment per (load, policy) point —
 *     the closed-loop story: strict trades admissions for a flat
 *     100% attainment line, best-effort admits more and lets
 *     attainment sag as load grows.
 *
 * Flags: --seconds S (phase-1 measurement window, default 2),
 * --events N (phase-2 events per curve point, default 400),
 * --min-throughput N (fail unless phase 1 reaches N decisions/s),
 * --smoke (shrink both phases for CI), --json PATH / --json=PATH
 * (snapshot, default BENCH_sched.json).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sched/oracle.hh"
#include "sched/qos.hh"
#include "serve/json.hh"
#include "soc/soc_config.hh"
#include "workloads/rodinia.hh"

using namespace pccs;
using serve::Json;

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** A memory-bound kernel for the hot decision loop. */
soc::KernelProfile
memBound(const char *name, double intensity)
{
    soc::KernelProfile k{name};
    k.intensity = intensity;
    k.locality = 0.9;
    return k;
}

/** Phase 1: steady-state decisions per second (no event log). */
struct ThroughputResult
{
    double decisionsPerSecond = 0.0;
    std::uint64_t decisions = 0;
    std::uint64_t modelPoints = 0;
};

ThroughputResult
measureDecisions(const soc::SocConfig &soc, double seconds)
{
    sched::SchedOptions opts;
    opts.recordEvents = false;
    sched::QosController ctl(soc, nullptr, opts);

    const int gpu = soc.puIndex(soc::PuKind::Gpu);
    const int cpu = soc.puIndex(soc::PuKind::Cpu);

    sched::JobRequest on_gpu;
    on_gpu.kernel = memBound("stream-a", 0.01);
    on_gpu.sloSlowdown = 2.0;
    on_gpu.puIndex = gpu;
    sched::JobRequest on_cpu;
    on_cpu.kernel = memBound("stream-b", 0.02);
    on_cpu.sloSlowdown = 2.0;
    on_cpu.puIndex = cpu;

    // Warm the kernel-class grids so the timed loop measures the
    // steady-state batched path, not the one-time simulator sweeps.
    ctl.complete(ctl.submit(on_gpu).handle);
    ctl.complete(ctl.submit(on_cpu).handle);
    const std::uint64_t warm = ctl.stats().decisions;

    const double t0 = nowSeconds();
    double t1 = t0;
    do {
        for (int i = 0; i < 64; ++i) {
            const sched::Decision a = ctl.submit(on_gpu);
            const sched::Decision b = ctl.submit(on_cpu);
            ctl.complete(a.handle);
            ctl.complete(b.handle);
        }
        t1 = nowSeconds();
    } while (t1 - t0 < seconds);

    ThroughputResult r;
    r.decisions = ctl.stats().decisions - warm;
    r.modelPoints = ctl.stats().modelPoints;
    r.decisionsPerSecond =
        t1 > t0 ? static_cast<double>(r.decisions) / (t1 - t0) : 0.0;
    return r;
}

/** One point of the phase-2 curve. */
struct LoadPoint
{
    double load = 0.0;
    const char *policy = "";
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    double admissionRate = 0.0;
    sched::OracleReport oracle;
};

/**
 * Pinned random arrival/departure process: each step submits (with
 * probability `load`) a random Rodinia benchmark with a random SLO,
 * or completes a random resident. Same seed per (load, policy) pair,
 * so the two policies face the identical arrival stream.
 */
LoadPoint
measureLoad(const soc::SocConfig &soc, double load,
            sched::AdmissionPolicy policy, std::size_t events)
{
    sched::SchedOptions opts;
    opts.policy = policy;
    opts.safetyMargin = 0.1;
    opts.maxQueued = 8;
    sched::QosController ctl(soc, nullptr, opts);

    const std::vector<std::string> benches =
        workloads::gpuBenchmarks();
    std::vector<sched::JobHandle> live;
    Rng rng(0xC0FFEEull + static_cast<std::uint64_t>(load * 1000.0));

    const auto submitOne = [&]() {
        sched::JobRequest req;
        const std::string &bench = benches[rng.below(benches.size())];
        req.name = bench;
        req.sloSlowdown = 1.1 + rng.uniform() * 0.9;
        for (const soc::PuParams &pu : soc.pus) {
            if (pu.kind == soc::PuKind::Dla)
                req.options.emplace_back(std::nullopt);
            else
                req.options.emplace_back(
                    workloads::rodiniaKernel(bench, pu.kind));
        }
        const sched::Decision d = ctl.submit(req);
        if (d.kind == sched::DecisionKind::Admitted)
            live.push_back(d.handle);
    };
    const auto completeOne = [&]() {
        if (live.empty())
            return;
        const std::size_t i = live.size() > 1
                                  ? static_cast<std::size_t>(
                                        rng.below(live.size()))
                                  : 0;
        const sched::Completion c = ctl.complete(live[i]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        for (const sched::Decision &d : c.promoted)
            live.push_back(d.handle);
    };

    for (std::size_t e = 0; e < events; ++e) {
        if (live.empty() || rng.chance(load))
            submitOne();
        else
            completeOne();
    }
    while (!live.empty())
        completeOne();

    LoadPoint p;
    p.load = load;
    p.policy = sched::admissionPolicyName(policy);
    p.submitted = ctl.stats().submitted;
    p.admitted = ctl.stats().admitted;
    p.rejected = ctl.stats().rejected;
    p.admissionRate =
        p.submitted > 0
            ? static_cast<double>(p.admitted) /
                  static_cast<double>(p.submitted)
            : 0.0;
    p.oracle = sched::validateSchedule(soc, ctl.events());
    return p;
}

Json
loadPointJson(const LoadPoint &p)
{
    Json j = Json::object();
    j.set("load", p.load);
    j.set("policy", p.policy);
    j.set("submitted", p.submitted);
    j.set("admitted", p.admitted);
    j.set("rejected", p.rejected);
    j.set("admissionRate", p.admissionRate);
    Json o = Json::object();
    o.set("jobsChecked", p.oracle.jobsChecked);
    o.set("checks", p.oracle.checks);
    o.set("violations", p.oracle.violations);
    o.set("attainment", p.oracle.attainment());
    o.set("worstExcess", p.oracle.worstExcess);
    j.set("oracle", std::move(o));
    return j;
}

} // namespace

int
main(int argc, char **argv)
{
    double seconds = 2.0;
    std::size_t events = 400;
    double min_throughput = 0.0;
    bool smoke = false;
    std::string json_path = "BENCH_sched.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("flag %s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--seconds")
            seconds = std::atof(value().c_str());
        else if (arg == "--events")
            events = static_cast<std::size_t>(
                std::atoll(value().c_str()));
        else if (arg == "--min-throughput")
            min_throughput = std::atof(value().c_str());
        else if (arg == "--smoke")
            smoke = true;
        else if (arg == "--json")
            json_path = value();
        else if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else
            fatal("unknown flag '%s'", arg.c_str());
    }
    if (smoke) {
        seconds = std::min(seconds, 0.2);
        events = std::min<std::size_t>(events, 60);
    }
    if (seconds <= 0.0 || events == 0)
        fatal("--seconds and --events must be > 0");

    const soc::SocConfig soc = soc::xavierLike();

    const ThroughputResult tp = measureDecisions(soc, seconds);
    std::printf("sched_throughput: %.2f M decisions/s "
                "(%llu decisions, %llu model points, %.1fs window)\n",
                tp.decisionsPerSecond / 1e6,
                static_cast<unsigned long long>(tp.decisions),
                static_cast<unsigned long long>(tp.modelPoints),
                seconds);

    const std::vector<double> loads =
        smoke ? std::vector<double>{0.5, 0.9}
              : std::vector<double>{0.3, 0.5, 0.7, 0.8, 0.9, 0.97};
    std::vector<LoadPoint> curve;
    std::printf("\n%-12s %-6s %-10s %-10s %-11s %s\n", "policy",
                "load", "admitted", "rejected", "attainment",
                "worst excess");
    for (const sched::AdmissionPolicy policy :
         {sched::AdmissionPolicy::StrictSlo,
          sched::AdmissionPolicy::BestEffort}) {
        for (const double load : loads) {
            curve.push_back(measureLoad(soc, load, policy, events));
            const LoadPoint &p = curve.back();
            std::printf("%-12s %-6.2f %4llu/%-5llu %-10llu "
                        "%-11.3f %+.1f%%\n",
                        p.policy, p.load,
                        static_cast<unsigned long long>(p.admitted),
                        static_cast<unsigned long long>(p.submitted),
                        static_cast<unsigned long long>(p.rejected),
                        p.oracle.attainment(),
                        100.0 * p.oracle.worstExcess);
        }
    }

    // The closed loop's promise: strict admission keeps every
    // simulated interval inside the SLOs at any load.
    for (const LoadPoint &p : curve) {
        if (std::string(p.policy) == "strict" &&
            p.oracle.violations > 0)
            fatal("strict policy violated %zu SLO(s) at load %.2f",
                  p.oracle.violations, p.load);
    }

    Json out = Json::object();
    out.set("benchmark", "sched_throughput");
    out.set("smoke", smoke);
    out.set("seconds", seconds);
    out.set("eventsPerPoint", events);
    out.set("decisionsPerSecond", tp.decisionsPerSecond);
    out.set("decisions", tp.decisions);
    Json slo_curve = Json::array();
    for (const LoadPoint &p : curve)
        slo_curve.push(loadPointJson(p));
    out.set("sloCurve", std::move(slo_curve));
    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        const std::string text = out.dump();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("artifact: %s\n", json_path.c_str());
    } else {
        fatal("cannot write %s", json_path.c_str());
    }

    if (min_throughput > 0.0 &&
        tp.decisionsPerSecond < min_throughput) {
        std::fprintf(stderr,
                     "FAIL: %.0f decisions/s below the %.0f floor\n",
                     tp.decisionsPerSecond, min_throughput);
        return 1;
    }
    return 0;
}
