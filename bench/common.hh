/**
 * @file
 * Shared helpers for the benchmark harness: standard sweeps, error
 * accounting, report formatting, and machine-readable artifacts. Each
 * bench binary regenerates one table or figure of the paper, prints
 * the corresponding series, and writes a JSON + CSV artifact
 * (`<experiment>.json` / `<experiment>.csv`, in $PCCS_ARTIFACT_DIR or
 * the working directory) with the same data.
 *
 * All simulator evaluations route through the process-wide
 * `runner::SweepEngine`: sweep points run in parallel and overlapping
 * sweeps (model calibration, figure ladders, frequency grids) are
 * memoized instead of recomputed.
 */

#ifndef PCCS_BENCH_COMMON_HH
#define PCCS_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "common/table.hh"
#include "pccs/predictor.hh"
#include "runner/run_spec.hh"
#include "runner/sweep_engine.hh"
#include "soc/simulator.hh"

namespace pccs::bench {

/** Print a banner naming the experiment being regenerated. */
void banner(const std::string &title, const std::string &paper_ref);

/**
 * Handle the DRAM run-loop flags shared by the DRAM-driven benches:
 * `--dram-reference` selects the cycle-by-cycle reference core for
 * every DramSystem (and the lockstep loop for every MultiMcSystem)
 * the bench constructs; `--mc-parallel` opts multi-MC systems into
 * the sharded-parallel run mode (PCCS_MC_SHARDS sizes the team). The
 * default is the bit-exact event-driven core either way. Unknown
 * arguments are fatal.
 */
void applyDramRunFlags(int argc, char **argv);

/**
 * Like applyDramRunFlags(), but returns the arguments it did not
 * consume (for benches with flags of their own) instead of treating
 * them as fatal. argv[0] is not included in the result.
 */
std::vector<std::string> consumeDramRunFlags(int argc, char **argv);

/** The external-pressure ladder the paper sweeps (10%..100% of max). */
std::vector<GBps> externalLadder(GBps max_external, unsigned steps = 10);

/** One predicted-vs-actual sweep result for a single kernel. */
struct SweepResult
{
    std::string name;
    GBps demand = 0.0;
    std::vector<double> actual;
    std::vector<double> pccs;
    std::vector<double> gables;

    /** Mean |pccs - actual| in percentage points. */
    double pccsError() const;
    /** Mean |gables - actual| in percentage points. */
    double gablesError() const;
};

/**
 * Sweep one kernel on one PU across the external ladder, collecting
 * actual (simulated) and predicted (PCCS + Gables) relative speeds.
 * The actual points are evaluated through `engine` (the process-wide
 * engine when null), in parallel and memoized.
 */
SweepResult sweepKernel(const soc::SocSimulator &sim, std::size_t pu,
                        const soc::KernelProfile &kernel,
                        const model::SlowdownPredictor &pccs,
                        const model::SlowdownPredictor &gables,
                        const std::vector<GBps> &ladder,
                        runner::SweepEngine *engine = nullptr);

/** Render a set of sweep results as per-kernel curve tables. */
void printSweepReport(const std::vector<SweepResult> &results,
                      const std::vector<GBps> &ladder);

/**
 * Print the closing summary: measured average errors side by side
 * with the numbers the paper reports for the same experiment.
 */
void printErrorSummary(const std::vector<SweepResult> &results,
                       double paper_pccs, double paper_gables);

/**
 * Start a machine-readable artifact for this experiment. The SoC/PU
 * names and the global engine's cache counters are filled in when the
 * artifact is written.
 */
runner::RunResult makeArtifact(const std::string &experiment,
                               const std::string &title,
                               const std::string &paper_ref,
                               const std::string &soc_name,
                               const std::string &pu_name,
                               const std::vector<GBps> &ladder = {});

/**
 * Assemble a predicted-vs-actual figure artifact from sweep results
 * (actual/pccs/gables series per kernel plus the error summary).
 */
runner::RunResult sweepArtifact(const std::string &experiment,
                                const std::string &title,
                                const std::string &paper_ref,
                                const soc::SocSimulator &sim,
                                std::size_t pu,
                                const std::vector<SweepResult> &results,
                                const std::vector<GBps> &ladder);

/**
 * Write the artifact's JSON and CSV files into $PCCS_ARTIFACT_DIR
 * (default: the working directory), stamping in the engine's cache
 * counters, and announce the JSON path.
 */
void writeArtifact(runner::RunResult artifact);

} // namespace pccs::bench

#endif // PCCS_BENCH_COMMON_HH
