/**
 * @file
 * Shared helpers for the benchmark harness: standard sweeps, error
 * accounting, and report formatting. Each bench binary regenerates one
 * table or figure of the paper and prints the corresponding series.
 */

#ifndef PCCS_BENCH_COMMON_HH
#define PCCS_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "common/table.hh"
#include "pccs/predictor.hh"
#include "soc/simulator.hh"

namespace pccs::bench {

/** Print a banner naming the experiment being regenerated. */
void banner(const std::string &title, const std::string &paper_ref);

/** The external-pressure ladder the paper sweeps (10%..100% of max). */
std::vector<GBps> externalLadder(GBps max_external, unsigned steps = 10);

/** One predicted-vs-actual sweep result for a single kernel. */
struct SweepResult
{
    std::string name;
    GBps demand = 0.0;
    std::vector<double> actual;
    std::vector<double> pccs;
    std::vector<double> gables;

    /** Mean |pccs - actual| in percentage points. */
    double pccsError() const;
    /** Mean |gables - actual| in percentage points. */
    double gablesError() const;
};

/**
 * Sweep one kernel on one PU across the external ladder, collecting
 * actual (simulated) and predicted (PCCS + Gables) relative speeds.
 */
SweepResult sweepKernel(const soc::SocSimulator &sim, std::size_t pu,
                        const soc::KernelProfile &kernel,
                        const model::SlowdownPredictor &pccs,
                        const model::SlowdownPredictor &gables,
                        const std::vector<GBps> &ladder);

/** Render a set of sweep results as per-kernel curve tables. */
void printSweepReport(const std::vector<SweepResult> &results,
                      const std::vector<GBps> &ladder);

/**
 * Print the closing summary: measured average errors side by side
 * with the numbers the paper reports for the same experiment.
 */
void printErrorSummary(const std::vector<SweepResult> &results,
                       double paper_pccs, double paper_gables);

} // namespace pccs::bench

#endif // PCCS_BENCH_COMMON_HH
