/**
 * @file
 * Table 3: average row-buffer hit rate and effective bandwidth (as a
 * percentage of the theoretical peak) of every registered scheduling
 * policy when the co-located programs' summed standalone bandwidth
 * meets or exceeds the theoretical peak of the Table 1 system. The
 * paper's measured numbers exist for its five Table 2 policies; the
 * extension policies print "-" in the paper columns.
 */

#include <cstdio>
#include <string>

#include "bench/common.hh"
#include "common/table.hh"
#include "dram/system.hh"

using namespace pccs;
using namespace pccs::dram;

int
main(int argc, char **argv)
{
    bench::applyDramRunFlags(argc, argv);
    bench::banner("Row-buffer hits and effective bandwidth at "
                  "saturation, per scheduling policy",
                  "Table 3");

    // 16 cores: low group totals 60 GB/s, high group totals 90 GB/s;
    // 150 GB/s of demand on a 102.4 GB/s system (>= peak, as Table 3
    // prescribes).
    constexpr unsigned group = 8;
    constexpr GBps low_total = 60.0;
    constexpr GBps high_total = 90.0;
    constexpr Cycles warmup = 15000;
    constexpr Cycles window = 80000;

    Table t({"policy", "RBH (%)", "effective BW over peak (%)",
             "paper RBH (%)", "paper eff. BW (%)"});

    struct PaperRow
    {
        const char *policy;
        double rbh;
        double eff;
    };
    const PaperRow paper[] = {
        {"FCFS", 47.7, 65.6},  {"FR-FCFS", 91.6, 89.7},
        {"ATLAS", 74.2, 78.4}, {"TCM", 79.6, 80.8},
        {"SMS", 84.7, 84.3},
    };
    auto paperRow = [&](const std::string &policy) -> const PaperRow * {
        for (const PaperRow &row : paper)
            if (policy == row.policy)
                return &row;
        return nullptr;
    };

    for (const std::string &policy : schedulerNames()) {
        DramSystem sys(table1Config(), policy);
        for (unsigned c = 0; c < group; ++c) {
            TrafficParams p;
            p.source = c;
            p.demand = low_total / group;
            p.seed = 1000 + c;
            sys.addGenerator(p);
        }
        for (unsigned c = 0; c < group; ++c) {
            TrafficParams p;
            p.source = group + c;
            p.demand = high_total / group;
            p.seed = 2000 + c;
            sys.addGenerator(p);
        }
        sys.run(warmup);
        sys.resetMeasurement();
        sys.run(window);

        const double rbh =
            100.0 * sys.controller().stats().rowBufferHitRate();
        const double eff = 100.0 * sys.effectiveBandwidthFraction();
        const PaperRow *row = paperRow(policy);
        t.addRow({policy, fmtDouble(rbh, 1), fmtDouble(eff, 1),
                  row ? fmtDouble(row->rbh, 1) : "-",
                  row ? fmtDouble(row->eff, 1) : "-"});
    }
    std::printf("%s\n", t.str().c_str());

    runner::RunResult artifact = bench::makeArtifact(
        "table03_rbh_effective_bw",
        "Row-buffer hits and effective bandwidth at saturation, per "
        "scheduling policy",
        "Table 3", "table1-ddr4", "all");
    artifact.addTable("RBH and effective bandwidth", t);
    bench::writeArtifact(std::move(artifact));

    std::printf("Expected ordering (paper, Table 3): FCFS has by far "
                "the lowest RBH and effective bandwidth; FR-FCFS the\n"
                "highest; the fairness policies (ATLAS/TCM/SMS) trade "
                "a little bandwidth for fairness and land in between\n"
                "(the real Xavier measures 79.1%% effective BW, right "
                "in the fairness-policy band).\n");
    return 0;
}
