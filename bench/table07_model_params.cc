/**
 * @file
 * Table 7: the PCCS model parameters of every PU on both SoCs,
 * constructed via the processor-centric calibration of Section 3.2.
 * Paper values are printed alongside for shape comparison (absolute
 * values differ: the substrate is a simulator, not the authors'
 * boards; the structure — DLA's missing minor region, GPU's higher
 * rates than CPU's, Snapdragon's small bandwidth scale — is what
 * should match).
 */

#include <cmath>
#include <cstdio>

#include "bench/common.hh"
#include "common/table.hh"
#include "pccs/builder.hh"

using namespace pccs;

namespace {

std::string
fmtOrNa(double v, int precision)
{
    return std::isnan(v) ? "NA" : fmtDouble(v, precision);
}

void
addColumn(Table &t, const std::string &label,
          const model::PccsParams &p, double rate_i_example_x)
{
    const model::PccsModel m(p);
    t.addRow({label, fmtDouble(p.normalBw, 1),
              fmtDouble(p.intensiveBw, 1), fmtOrNa(p.mrmc, 1),
              fmtDouble(p.cbp, 1), fmtDouble(p.tbwdc, 1),
              fmtDouble(p.rateN, 2),
              fmtDouble(m.rateI(rate_i_example_x), 2)});
}

} // namespace

int
main()
{
    bench::banner("PCCS model parameters per PU", "Table 7");

    Table t({"PU", "Normal BW (GB/s)", "Intensive BW (GB/s)",
             "MRMC (%)", "CBP (GB/s)", "TBWDC (GB/s)",
             "rateN (%/GBps)", "rateI @cap (%/GBps)"});

    {
        const soc::SocSimulator sim(soc::xavierLike());
        for (std::size_t p = 0; p < sim.config().pus.size(); ++p) {
            const model::PccsParams params =
                model::buildModel(sim, p).params();
            addColumn(t, "Xavier " + sim.config().pus[p].name, params,
                      sim.config().pus[p].drawBandwidth());
        }
    }
    {
        const soc::SocSimulator sim(soc::snapdragonLike());
        for (std::size_t p = 0; p < sim.config().pus.size(); ++p) {
            const model::PccsParams params =
                model::buildModel(sim, p).params();
            addColumn(t, "Snapdragon " + sim.config().pus[p].name,
                      params, sim.config().pus[p].drawBandwidth());
        }
    }
    std::printf("%s\n", t.str().c_str());

    std::printf("Paper values (Table 7) for reference:\n");
    Table paper({"PU", "Normal BW", "Intensive BW", "MRMC", "CBP",
                 "TBWC", "rateI"});
    paper.addRow({"Xavier CPU", "37.6", "65.7", "3.7", "46.6", "82.8",
                  "0.57"});
    paper.addRow({"Xavier GPU", "38.1", "96.2", "4.9", "45.3", "87.2",
                  "1.11"});
    paper.addRow({"Xavier DLA", "0", "27.9", "NA", "71.1", "22.1",
                  "0.35"});
    paper.addRow({"Snapdragon CPU", "6.8", "19.1", "5.7", "16.1",
                  "14.1", "1.22"});
    paper.addRow({"Snapdragon GPU", "9.1", "24.1", "9.8", "12.8",
                  "13.4", "2.27"});
    std::printf("%s\n", paper.str().c_str());

    runner::RunResult artifact = bench::makeArtifact(
        "table07_model_params", "PCCS model parameters per PU",
        "Table 7", "xavier-like + snapdragon-like", "all");
    artifact.addTable("constructed parameters", t);
    artifact.addTable("paper values", paper);
    bench::writeArtifact(std::move(artifact));

    std::printf("Structural checks: the DLA column must show "
                "normalBW=0 / MRMC=NA (no minor contention region);\n"
                "Snapdragon parameters must sit an order of magnitude "
                "below Xavier's (34 vs 137 GB/s memory).\n");
    return 0;
}
