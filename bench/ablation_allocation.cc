/**
 * @file
 * Ablation (DESIGN.md section 5): what the SoC memory model's two
 * mechanisms buy.
 *
 *  1. Fair water-filling vs proportional sharing: switching the
 *     allocator to proportional sharing reproduces Gables-like
 *     behavior — no slowdown until the nominal peak, no flat tail.
 *  2. Effective-bandwidth degradation: without it (mixPenalty = 0,
 *     localityPenalty = 0, baseEfficiency = 1), no contention occurs
 *     before nominal saturation, contradicting the paper's Figure 2.
 */

#include <cstdio>

#include "bench/common.hh"
#include "calib/calibrator.hh"
#include "common/table.hh"

using namespace pccs;

namespace {

void
sweepRow(Table &t, const std::string &label, const soc::SocConfig &cfg,
         GBps target)
{
    const soc::SocSimulator sim(cfg);
    const std::size_t gpu = static_cast<std::size_t>(
        cfg.puIndex(soc::PuKind::Gpu));
    const soc::KernelProfile k =
        calib::makeCalibrator(sim.model(), cfg.pus[gpu], target);
    std::vector<runner::EvalPoint> points;
    for (GBps y = 0.0; y <= 100.0; y += 10.0)
        points.push_back({gpu, k, y});
    const std::vector<double> row =
        runner::SweepEngine::global().evaluateBatch(sim, points);
    t.addRow(label, row, 1);
}

Table
makeTable()
{
    std::vector<std::string> headers{"memory model"};
    for (GBps y = 0.0; y <= 100.0; y += 10.0)
        headers.push_back("y=" + fmtDouble(y, 0));
    return Table(std::move(headers));
}

} // namespace

int
main()
{
    bench::banner("Memory-model ablations: fairness allocation and "
                  "effective-bandwidth degradation",
                  "DESIGN.md ablations (supports Figs. 2, 3, 5)");

    const soc::SocConfig base = soc::xavierLike();

    soc::SocConfig proportional = base;
    proportional.memory.policy = soc::AllocationPolicy::Proportional;

    soc::SocConfig no_degradation = base;
    no_degradation.memory.mixPenalty = 0.0;
    no_degradation.memory.localityPenalty = 0.0;
    no_degradation.memory.baseEfficiency = 1.0;
    no_degradation.memory.minEfficiency = 1.0;

    soc::SocConfig no_latency = base;
    for (auto &pu : no_latency.pus)
        pu.latencySensitivity = 0.0;

    runner::RunResult artifact = bench::makeArtifact(
        "ablation_allocation",
        "Memory-model ablations: fairness allocation and "
        "effective-bandwidth degradation",
        "DESIGN.md ablations (supports Figs. 2, 3, 5)", base.name,
        "GPU");

    for (GBps target : {60.0, 110.0}) {
        std::printf("--- GPU kernel with ~%.0f GB/s standalone demand "
                    "---\n",
                    target);
        Table t = makeTable();
        sweepRow(t, "full model (fair water-fill)", base, target);
        sweepRow(t, "proportional sharing (Gables-like)", proportional,
                 target);
        sweepRow(t, "no effective-BW degradation", no_degradation,
                 target);
        sweepRow(t, "no latency sensitivity", no_latency, target);
        std::printf("%s\n", t.str().c_str());
        artifact.addTable("GPU kernel ~" + fmtDouble(target, 0) +
                              " GB/s standalone demand",
                          t);
    }
    bench::writeArtifact(std::move(artifact));

    std::printf(
        "Reading the ablation:\n"
        " * proportional sharing shows no slowdown until x + y "
        "reaches the peak and no flat tail - exactly the Gables\n"
        "   assumptions the paper refutes;\n"
        " * removing effective-BW degradation delays the drop onset "
        "to the nominal peak (contradicts Fig. 2);\n"
        " * removing latency sensitivity erases the minor-region "
        "slope (low-demand kernels would never slow down).\n");
    return 0;
}
