/**
 * @file
 * Extension study (paper Section 5, "Address mapping and multi-MC"):
 * the same aggregate DRAM capacity organized as one 4-channel MC,
 * two 2-channel MCs, or four 1-channel MCs, under line-interleaved vs
 * range-partitioned address mappings. Co-location behavior depends on
 * the mapping: interleaving shares (and contends for) everything;
 * partitioning isolates sources that live in different slices.
 */

#include <chrono>
#include <cstdio>

#include "bench/common.hh"
#include "calib/calibrator.hh"
#include "common/table.hh"
#include "dram/multi_mc.hh"

using namespace pccs;
using namespace pccs::dram;

namespace {

constexpr Cycles warmup = 15000;
constexpr Cycles window = 60000;

DramConfig
perMcConfig(unsigned channels)
{
    DramConfig cfg = table1Config();
    cfg.channels = channels;
    cfg.requestBufferEntries = 64 * channels;
    return cfg;
}

struct Result
{
    double victimRelativeSpeed; // %
    double aggregateBandwidth;  // GB/s
    double rowHitRate;          // %
};

Result
study(unsigned num_mcs, McMapping mapping)
{
    const unsigned channels = 4 / num_mcs;
    auto run = [&](bool with_aggressors) {
        MultiMcSystem sys(perMcConfig(channels), num_mcs,
                          "ATLAS", mapping);
        TrafficParams victim;
        victim.source = 0; // bottom address slice
        victim.demand = 30.0;
        victim.seed = 11;
        sys.addGenerator(victim);
        if (with_aggressors) {
            // Aggressors spread across the upper address slices.
            for (unsigned i = 0; i < 3; ++i) {
                TrafficParams p;
                p.source = 20 + 16 * i; // slices 20, 36, 52 of 64
                p.demand = 25.0;
                p.seed = 100 + i;
                sys.addGenerator(p);
            }
        }
        sys.run(warmup);
        sys.resetMeasurement();
        sys.run(window);
        Result r;
        r.victimRelativeSpeed =
            static_cast<double>(sys.generator(0).completedLines());
        double bytes = 0.0;
        for (unsigned m = 0; m < sys.numControllers(); ++m)
            bytes += static_cast<double>(sys.bytesServed(m));
        r.aggregateBandwidth = toGBps(
            bytes, static_cast<double>(window) * sys.cycleSeconds());
        r.rowHitRate = 100.0 * sys.rowBufferHitRate();
        return r;
    };
    const Result solo = run(false);
    Result corun = run(true);
    corun.victimRelativeSpeed =
        100.0 * corun.victimRelativeSpeed / solo.victimRelativeSpeed;
    return corun;
}

/** Wall-time of one multi-MC calibration sweep in a given run mode. */
double
sweepSeconds(McRunMode mode, calib::CalibrationMatrix &out)
{
    calib::McSweepSpec spec;
    spec.perMcConfig = perMcConfig(1);
    spec.numMcs = 4;
    spec.policy = "ATLAS";
    spec.mapping = McMapping::RangePartitioned;
    spec.runMode = mode;
    const auto t0 = std::chrono::steady_clock::now();
    out = calib::calibrateMultiMc(spec);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::applyDramRunFlags(argc, argv);
    bench::banner("Multi-MC organizations and address mappings under "
                  "co-location",
                  "Section 5 extension (multi-MC / address mapping)");
    std::printf("Multi-MC run mode: %s\n",
                mcRunModeName(defaultMcRunMode()));

    std::printf("One 30 GB/s victim vs three 25 GB/s aggressors; "
                "same aggregate capacity (4 x DDR4-3200 channels, "
                "ATLAS scheduling) in every row.\n\n");

    Table t({"organization", "mapping", "victim RS (%)",
             "aggregate BW (GB/s)", "RBH (%)"});
    for (unsigned num_mcs : {1u, 2u, 4u}) {
        for (auto mapping : {McMapping::LineInterleaved,
                             McMapping::RangePartitioned}) {
            if (num_mcs == 1 &&
                mapping == McMapping::RangePartitioned) {
                continue; // identical to interleaved with one MC
            }
            const Result r = study(num_mcs, mapping);
            char org[32];
            std::snprintf(org, sizeof(org), "%u MC x %u ch", num_mcs,
                          4 / num_mcs);
            t.addRow({org, mcMappingName(mapping),
                      fmtDouble(r.victimRelativeSpeed, 1),
                      fmtDouble(r.aggregateBandwidth, 1),
                      fmtDouble(r.rowHitRate, 1)});
        }
    }
    std::printf("%s\n", t.str().c_str());

    // The accelerated calibration sweep: identical matrices from
    // every run mode (the equivalence tests enforce it bit-exactly),
    // so the only thing that changes with the mode is the wall time.
    std::printf("Multi-MC calibration sweep (4 MC x 1 ch, "
                "range-partitioned, ATLAS; 4 victims x 4+1 external "
                "steps):\n\n");
    Table sweep_t({"run mode", "wall time (s)", "speedup vs lockstep",
                   "rela[last][last] (%)"});
    calib::CalibrationMatrix matrix;
    const double lockstep_s = sweepSeconds(McRunMode::Lockstep, matrix);
    const double last = matrix.rela.back().back();
    sweep_t.addRow({"lockstep", fmtDouble(lockstep_s, 3), "1.0",
                    fmtDouble(last, 1)});
    for (McRunMode mode :
         {McRunMode::EventDriven, McRunMode::Sharded}) {
        const double s = sweepSeconds(mode, matrix);
        sweep_t.addRow({mcRunModeName(mode), fmtDouble(s, 3),
                        fmtDouble(lockstep_s / s, 1),
                        fmtDouble(matrix.rela.back().back(), 1)});
    }
    std::printf("%s\n", sweep_t.str().c_str());

    runner::RunResult artifact = bench::makeArtifact(
        "ext_multimc",
        "Multi-MC organizations and address mappings under "
        "co-location",
        "Section 5 extension (multi-MC / address mapping)",
        "table1-ddr4", "victim");
    artifact.addTable("victim RS / aggregate BW / RBH", t);
    artifact.addTable("calibration sweep wall time by run mode",
                      sweep_t);
    bench::writeArtifact(std::move(artifact));

    std::printf(
        "Reading: with line interleaving every source stresses every "
        "controller, so the victim contends everywhere\n"
        "(but enjoys the aggregate bandwidth). Range partitioning "
        "confines each source to its slice's controller:\n"
        "sources in different slices stop interfering entirely -- the "
        "mapping-awareness PCCS would need on such SoCs\n"
        "(model the per-partition bandwidth, not the chip-wide peak).\n");
    return 0;
}
