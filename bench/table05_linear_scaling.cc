/**
 * @file
 * Table 5: linear parameter scaling of the PCCS model (Section 3.3).
 * Construct the model at the full memory clock (2133 MHz), scale the
 * five bandwidth parameters linearly to 1600/1333/1066 MHz, and
 * compare against models constructed from scratch at each clock.
 */

#include <cstdio>

#include "bench/common.hh"
#include "common/table.hh"
#include "pccs/builder.hh"
#include "pccs/scaling.hh"

using namespace pccs;

int
main()
{
    bench::banner("Linear parameter scaling across memory clocks",
                  "Table 5");

    const soc::SocConfig full = soc::xavierLike();
    const soc::SocSimulator sim_full(full);
    const std::size_t gpu = static_cast<std::size_t>(
        full.puIndex(soc::PuKind::Gpu));
    const model::PccsParams built_full =
        model::buildModel(sim_full, gpu).params();

    const double clocks[] = {1600.0, 1333.0, 1066.0};
    model::ScalingError sum;

    Table t({"target clock (MHz)", "normalBW err (%)",
             "intensiveBW err (%)", "MRMC err (%)", "CBP err (%)",
             "TBWDC err (%)", "rateN err (%)", "avg err (%)"});

    int n = 0;
    for (double clock : clocks) {
        const double ratio = clock / 2133.0;
        const soc::SocSimulator sim_scaled(
            full.withMemoryScaled(ratio));
        const model::PccsParams scaled =
            model::scaleParams(built_full, ratio);
        const model::PccsParams constructed =
            model::buildModel(sim_scaled, gpu).params();
        const model::ScalingError e =
            model::compareParams(scaled, constructed);
        t.addRow({fmtDouble(clock, 0), fmtDouble(e.normalBw, 1),
                  fmtDouble(e.intensiveBw, 1), fmtDouble(e.mrmc, 1),
                  fmtDouble(e.cbp, 1), fmtDouble(e.tbwdc, 1),
                  fmtDouble(e.rateN, 1), fmtDouble(e.average(), 1)});
        sum.normalBw += e.normalBw;
        sum.intensiveBw += e.intensiveBw;
        sum.mrmc += e.mrmc;
        sum.cbp += e.cbp;
        sum.tbwdc += e.tbwdc;
        sum.rateN += e.rateN;
        ++n;
    }
    t.addRow({"AVERAGE", fmtDouble(sum.normalBw / n, 1),
              fmtDouble(sum.intensiveBw / n, 1),
              fmtDouble(sum.mrmc / n, 1), fmtDouble(sum.cbp / n, 1),
              fmtDouble(sum.tbwdc / n, 1), fmtDouble(sum.rateN / n, 1),
              fmtDouble(sum.average() / n, 1)});
    std::printf("%s\n", t.str().c_str());

    runner::RunResult artifact = bench::makeArtifact(
        "table05_linear_scaling",
        "Linear parameter scaling across memory clocks", "Table 5",
        full.name, full.pus[gpu].name);
    artifact.addTable("scaled vs constructed parameters", t);
    bench::writeArtifact(std::move(artifact));

    std::printf("Paper (Table 5) reports 1.5-2.2%% average error per "
                "parameter on real hardware, where all bandwidth-\n"
                "related quantities scale with the memory clock "
                "together. On the simulated substrate the PU-side\n"
                "draw caps do not scale, so the divergence is larger "
                "but linear scaling remains a good approximation.\n");
    return 0;
}
