/**
 * @file
 * Throughput of the batched prediction layer, and the wall-clock win
 * of pruned design exploration.
 *
 * Three measurements:
 *
 *  1. grid evaluation: points/s of the scalar `relativeSpeed` loop
 *     (the pre-batching consumer pattern: one virtual call per point)
 *     vs the structure-of-arrays `relativeSpeedBatch` kernel, for the
 *     PCCS and Gables models;
 *  2. broadcast evaluation: the constant-y variant the design
 *     explorer and co-run solver use;
 *  3. design exploration: wall clock of Table-9-style frequency
 *     selection with the full-scan strategy vs the binary-searched
 *     (pruned) strategy, on fresh engines so memoization cannot leak
 *     between the two.
 *
 * Every batched result is checked bitwise against the scalar path
 * before timing — the bench doubles as the parity oracle, so `--smoke`
 * (tiny sizes, one reset) is a crash/parity test suitable for CI.
 *
 * Flags: --points N (grid points per repetition, default 1M),
 * --reps N (repetitions, best-of, default 5), --smoke (shrink to
 * 4k points / 1 query and skip nothing), --json PATH / --json=PATH
 * (snapshot, default BENCH_predict.json).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "gables/gables.hh"
#include "pccs/batch.hh"
#include "pccs/builder.hh"
#include "pccs/design.hh"
#include "pccs/model.hh"
#include "runner/sweep_engine.hh"
#include "serve/json.hh"
#include "soc/soc_config.hh"
#include "workloads/rodinia.hh"

using namespace pccs;
using serve::Json;

namespace {

model::PccsParams
xavierGpuLikeParams()
{
    model::PccsParams p;
    p.normalBw = 38.1;
    p.intensiveBw = 96.2;
    p.mrmc = 4.9;
    p.cbp = 45.3;
    p.tbwdc = 87.2;
    p.rateN = 1.11;
    p.peakBw = 137.0;
    return p;
}

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Scalar vs batch points/s of one predictor over (xs, ys). */
struct GridResult
{
    double scalarPointsPerSec = 0.0;
    double batchPointsPerSec = 0.0;
    double broadcastPointsPerSec = 0.0;
    double checksum = 0.0; // keeps the loops observable
};

GridResult
measureGrid(const model::SlowdownPredictor &scalar,
            const model::BatchPredictor &batch,
            const std::vector<double> &xs, const std::vector<double> &ys,
            unsigned reps)
{
    const std::size_t n = xs.size();
    std::vector<double> scalar_out(n), batch_out(n), bcast_out(n);

    // Parity first: the timed kernels must be bit-exact with the
    // scalar path, or the speedup is meaningless.
    for (std::size_t i = 0; i < n; ++i)
        scalar_out[i] = scalar.relativeSpeed(xs[i], ys[i]);
    batch.relativeSpeedBatch(xs, ys, batch_out);
    for (std::size_t i = 0; i < n; ++i) {
        if (std::memcmp(&scalar_out[i], &batch_out[i],
                        sizeof(double)) != 0)
            fatal("batch/scalar parity broken at point %zu "
                  "(x=%f y=%f: %.17g vs %.17g)",
                  i, xs[i], ys[i], scalar_out[i], batch_out[i]);
    }
    const double y0 = ys.empty() ? 0.0 : ys[0];
    batch.relativeSpeedBroadcast(xs, y0, bcast_out);
    for (std::size_t i = 0; i < n; ++i) {
        const double want = scalar.relativeSpeed(xs[i], y0);
        if (std::memcmp(&want, &bcast_out[i], sizeof(double)) != 0)
            fatal("broadcast parity broken at point %zu", i);
    }

    GridResult r;
    for (unsigned rep = 0; rep < reps; ++rep) {
        double t0 = nowSeconds();
        for (std::size_t i = 0; i < n; ++i)
            scalar_out[i] = scalar.relativeSpeed(xs[i], ys[i]);
        double t1 = nowSeconds();
        batch.relativeSpeedBatch(xs, ys, batch_out);
        double t2 = nowSeconds();
        batch.relativeSpeedBroadcast(xs, y0, bcast_out);
        double t3 = nowSeconds();

        r.scalarPointsPerSec = std::max(
            r.scalarPointsPerSec,
            t1 > t0 ? static_cast<double>(n) / (t1 - t0) : 0.0);
        r.batchPointsPerSec = std::max(
            r.batchPointsPerSec,
            t2 > t1 ? static_cast<double>(n) / (t2 - t1) : 0.0);
        r.broadcastPointsPerSec = std::max(
            r.broadcastPointsPerSec,
            t3 > t2 ? static_cast<double>(n) / (t3 - t2) : 0.0);
        r.checksum += scalar_out[n / 2] + batch_out[n / 3] +
                      bcast_out[n / 4];
    }
    return r;
}

Json
gridJson(const GridResult &r)
{
    Json j = Json::object();
    j.set("scalarPointsPerSecond", r.scalarPointsPerSec);
    j.set("batchPointsPerSecond", r.batchPointsPerSec);
    j.set("broadcastPointsPerSecond", r.broadcastPointsPerSec);
    j.set("speedup", r.scalarPointsPerSec > 0.0
                         ? r.batchPointsPerSec / r.scalarPointsPerSec
                         : 0.0);
    return j;
}

/**
 * Wall clock of `queries` frequency selections (PCCS-guided and
 * ground truth) with the given strategy, on a fresh serial engine so
 * the memoization cache starts cold for both strategies.
 */
double
measureExploration(const soc::SocConfig &soc,
                   const soc::KernelProfile &kernel,
                   const std::vector<double> &grid,
                   const std::vector<double> &externals, bool pruned,
                   std::vector<model::DesignSelection> &out)
{
    runner::SweepEngine engine(1);
    model::DesignExplorer explorer(soc, &engine);
    explorer.setPruneSelection(pruned);
    const std::size_t gpu =
        static_cast<std::size_t>(soc.puIndex(soc::PuKind::Gpu));
    const soc::SocSimulator sim(soc);
    const model::PccsModel pccs = model::buildModel(sim, gpu);

    out.clear();
    const double t0 = nowSeconds();
    for (double y : externals) {
        out.push_back(explorer.selectFrequency(gpu, kernel, y, 5.0,
                                               pccs, grid));
        out.push_back(
            explorer.selectFrequencyActual(gpu, kernel, y, 5.0, grid));
    }
    return nowSeconds() - t0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t points = 1u << 20;
    unsigned reps = 5;
    bool smoke = false;
    std::string json_path = "BENCH_predict.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("flag %s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--points")
            points = static_cast<std::size_t>(
                std::atoll(value().c_str()));
        else if (arg == "--reps")
            reps = static_cast<unsigned>(std::atoi(value().c_str()));
        else if (arg == "--smoke")
            smoke = true;
        else if (arg == "--json")
            json_path = value();
        else if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else
            fatal("unknown flag '%s'", arg.c_str());
    }
    if (smoke) {
        points = 4096;
        reps = 1;
    }
    if (points == 0 || reps == 0)
        fatal("--points and --reps must be > 0");

    // Random demands spanning all three regions and both sides of the
    // Gables peak, deterministic across runs.
    Rng rng(0x5EEDull);
    std::vector<double> xs(points), ys(points);
    for (std::size_t i = 0; i < points; ++i) {
        xs[i] = rng.uniform(0.0, 150.0);
        ys[i] = rng.uniform(0.0, 150.0);
    }

    const model::PccsModel pccs(xavierGpuLikeParams());
    const gables::GablesModel gables(137.0);

    std::printf("predict_throughput: %zu points, best of %u\n", points,
                reps);
    const GridResult pccs_r = measureGrid(pccs, pccs, xs, ys, reps);
    std::printf("pccs:   scalar %.1f Mpts/s, batch %.1f Mpts/s "
                "(%.1fx), broadcast %.1f Mpts/s\n",
                pccs_r.scalarPointsPerSec / 1e6,
                pccs_r.batchPointsPerSec / 1e6,
                pccs_r.batchPointsPerSec / pccs_r.scalarPointsPerSec,
                pccs_r.broadcastPointsPerSec / 1e6);
    const GridResult gables_r =
        measureGrid(gables, gables, xs, ys, reps);
    std::printf("gables: scalar %.1f Mpts/s, batch %.1f Mpts/s "
                "(%.1fx), broadcast %.1f Mpts/s\n",
                gables_r.scalarPointsPerSec / 1e6,
                gables_r.batchPointsPerSec / 1e6,
                gables_r.batchPointsPerSec /
                    gables_r.scalarPointsPerSec,
                gables_r.broadcastPointsPerSec / 1e6);

    // Design exploration: Table-9 shape (97-point frequency grid).
    const soc::SocConfig soc = soc::xavierLike();
    const soc::KernelProfile kernel =
        workloads::rodiniaKernel("streamcluster", soc::PuKind::Gpu);
    std::vector<double> grid;
    for (double f = 420.0; f <= 1377.0; f += 10.0)
        grid.push_back(f);
    grid.push_back(1377.0);
    const std::vector<double> externals =
        smoke ? std::vector<double>{40.0}
              : std::vector<double>{10.0, 20.0, 30.0, 40.0, 50.0, 60.0};

    std::vector<model::DesignSelection> scan_sel, pruned_sel;
    const double scan_s = measureExploration(soc, kernel, grid,
                                             externals, false,
                                             scan_sel);
    const double pruned_s = measureExploration(soc, kernel, grid,
                                               externals, true,
                                               pruned_sel);
    if (scan_sel.size() != pruned_sel.size())
        fatal("exploration strategies returned different counts");
    for (std::size_t i = 0; i < scan_sel.size(); ++i) {
        if (scan_sel[i].value != pruned_sel[i].value ||
            scan_sel[i].predictedPerformance !=
                pruned_sel[i].predictedPerformance)
            fatal("pruned selection diverged from full scan at "
                  "query %zu (%.1f vs %.1f)",
                  i, pruned_sel[i].value, scan_sel[i].value);
    }
    std::printf("exploration (%zu queries, %zu-point grid): "
                "full scan %.4f s, pruned %.4f s (%.1fx)\n",
                externals.size() * 2, grid.size(), scan_s, pruned_s,
                pruned_s > 0.0 ? scan_s / pruned_s : 0.0);

    Json out = Json::object();
    out.set("benchmark", "predict_throughput");
    out.set("points", points);
    out.set("reps", reps);
    out.set("smoke", smoke);
    out.set("pccs", gridJson(pccs_r));
    out.set("gables", gridJson(gables_r));
    Json explore = Json::object();
    explore.set("queries", externals.size() * 2);
    explore.set("gridPoints", grid.size());
    explore.set("fullScanSeconds", scan_s);
    explore.set("prunedSeconds", pruned_s);
    explore.set("speedup", pruned_s > 0.0 ? scan_s / pruned_s : 0.0);
    out.set("exploration", std::move(explore));
    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        const std::string text = out.dump();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("artifact: %s\n", json_path.c_str());
    } else {
        fatal("cannot write %s", json_path.c_str());
    }
    return 0;
}
