/**
 * @file
 * Figure 11: predicted (PCCS, Gables) and actual slowdowns of five
 * Rodinia benchmarks on the Snapdragon-855-class CPU. Paper: PCCS
 * averages 3.1% error, Gables 8.1%. Note hotspot: on the slower Kryo
 * cores its standalone demand falls into the minor contention region
 * (the paper's portability observation).
 */

#include "bench/common.hh"
#include "gables/gables.hh"
#include "pccs/builder.hh"
#include "workloads/rodinia.hh"

using namespace pccs;

int
main()
{
    bench::banner("Rodinia on the Snapdragon 855 CPU: predicted vs "
                  "actual slowdown",
                  "Figure 11");

    const soc::SocSimulator sim(soc::snapdragonLike());
    const std::size_t cpu = static_cast<std::size_t>(
        sim.config().puIndex(soc::PuKind::Cpu));
    const model::PccsModel pccs = model::buildModel(sim, cpu);
    const gables::GablesModel gables(
        sim.config().memory.peakBandwidth);
    const auto ladder = bench::externalLadder(
        0.73 * sim.config().memory.peakBandwidth);

    std::vector<bench::SweepResult> results;
    for (const auto &name : workloads::cpuBenchmarks()) {
        results.push_back(bench::sweepKernel(
            sim, cpu, workloads::rodiniaKernel(name, soc::PuKind::Cpu),
            pccs, gables, ladder));
    }
    bench::printSweepReport(results, ladder);
    bench::printErrorSummary(results, 3.1, 8.1);
    bench::writeArtifact(bench::sweepArtifact(
        "fig11_snapdragon_cpu",
        "Rodinia on the Snapdragon 855 CPU: predicted vs actual "
        "slowdown",
        "Figure 11", sim, cpu, results, ladder));
    return 0;
}
