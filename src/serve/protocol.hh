/**
 * @file
 * The wire protocol of the prediction service: newline-delimited JSON
 * frames, one request per line, one response line per request.
 *
 * Request:  {"op": "<endpoint>", "id": <any>, ...endpoint fields}
 * Response: {"id": <echoed>, "ok": true,  "result": {...}}
 *        or {"id": <echoed>, "ok": false, "error": "<diagnostic>"}
 *
 * Endpoints: predict, corun, place, explore, reload, stats, health,
 * shutdown (see DESIGN.md section 9 for the field grammar). Every
 * malformed frame — garbage bytes, oversized lines, bad JSON, wrong
 * field types — yields an `ok:false` response for that frame only;
 * nothing a client sends can terminate the service.
 *
 * The dispatcher is transport-agnostic (tests drive it without
 * sockets) and coalesces concurrent `predict` requests: instead of
 * evaluating one model query per caller, pending queries are drained
 * into a single batch fed through one `BatchPredictor` kernel call
 * per distinct model, with responses built in parallel on the
 * `SweepEngine` pool (smart batching: under load, batches form
 * naturally; when idle, a lone request flows through immediately).
 */

#ifndef PCCS_SERVE_PROTOCOL_HH
#define PCCS_SERVE_PROTOCOL_HH

#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "pccs/phases.hh"
#include "runner/sweep_engine.hh"
#include "serve/json.hh"
#include "serve/metrics.hh"
#include "serve/registry.hh"

namespace pccs::serve {

/**
 * Reassembles newline-delimited frames from a TCP byte stream that
 * may arrive arbitrarily split or merged. Lines longer than the
 * configured maximum are reported once as oversized (so the peer gets
 * a diagnostic) and their remaining bytes are discarded until the
 * terminating newline, bounding memory per connection.
 */
class FrameBuffer
{
  public:
    explicit FrameBuffer(std::size_t max_frame_bytes = 1 << 20)
        : maxFrame_(max_frame_bytes)
    {
    }

    /** One reassembled frame (without the trailing newline). */
    struct Frame
    {
        std::string text;
        /** True when the line exceeded the limit (text is empty). */
        bool oversized = false;
    };

    /** Append raw bytes from the stream. */
    void feed(const char *data, std::size_t n);

    /** @return the next complete frame, if any. */
    std::optional<Frame> next();

  private:
    std::string buf_;
    std::size_t scanned_ = 0;
    std::size_t maxFrame_;
    bool discarding_ = false;
};

/** Configuration of a dispatcher (and so of the service). */
struct DispatchOptions
{
    /** Frequency-grid points of the `explore` endpoint. */
    unsigned exploreGridSteps = 64;
};

/**
 * Parses, validates, and executes protocol requests against a model
 * registry, recording metrics. Thread-safe: connection handlers call
 * `handleFrames` concurrently.
 */
class Dispatcher
{
  public:
    /**
     * @param engine evaluation engine for batched predicts and the
     *        simulator-backed endpoints; the process-wide engine
     *        when null
     */
    Dispatcher(ModelRegistry &registry, Metrics &metrics,
               runner::SweepEngine *engine = nullptr,
               DispatchOptions options = {});
    ~Dispatcher();

    Dispatcher(const Dispatcher &) = delete;
    Dispatcher &operator=(const Dispatcher &) = delete;

    /**
     * Handle one batch of frames (typically: everything one read()
     * returned). Returns exactly one response line per frame, in
     * frame order, without trailing newlines. All `predict` frames of
     * the batch are submitted to the shared batcher together.
     *
     * @param shutdown set to true when a frame requested shutdown
     */
    std::vector<std::string>
    handleFrames(const std::vector<FrameBuffer::Frame> &frames,
                 bool *shutdown = nullptr);

    /** Convenience wrapper for a single textual frame. */
    std::string handleFrame(const std::string &frame,
                            bool *shutdown = nullptr);

    ModelRegistry &registry() { return registry_; }
    Metrics &metrics() { return metrics_; }
    runner::SweepEngine &engine() { return *engine_; }

  private:
    /** One parsed, batchable predict query awaiting evaluation. */
    struct PredictJob
    {
        std::shared_ptr<const ModelEntry> entry;
        std::vector<model::PhaseDemand> phases;
        GBps external = 0.0;
        Json result;
        std::promise<void> done;
        std::future<void> ready;
    };

    /** Lazily built simulator + per-PU models of one named SoC. */
    struct SocBundle
    {
        soc::SocConfig config;
        std::unique_ptr<soc::SocSimulator> sim;
        std::vector<std::unique_ptr<model::PccsModel>> models;
    };

    Json execute(const std::string &op, const Json &request,
                 bool *shutdown);

    Json doCorun(const Json &request);
    Json doPlace(const Json &request);
    Json doExplore(const Json &request);
    Json doReload(const Json &request);
    Json doStats() const;
    Json doHealth() const;

    std::unique_ptr<PredictJob> makePredictJob(const Json &request);

    /** Build one job's wire result from its evaluated speed. */
    static void finishPredict(PredictJob &job, double rs);

    /**
     * Evaluate one coalesced batch: single-phase queries are grouped
     * by model snapshot and each distinct model's batch kernel runs
     * once over the group's structure-of-arrays demands (multi-phase
     * queries aggregate through the piecewise path). Wire results are
     * bit-exact with per-job scalar evaluation.
     */
    void evaluateJobs(const std::vector<PredictJob *> &batch);

    void submitBatch(std::vector<std::unique_ptr<PredictJob>> &batch);
    void batchLoop(const std::stop_token &stop);

    SocBundle &socBundle(const std::string &soc_name);
    const model::PccsModel &puModel(SocBundle &bundle,
                                    std::size_t pu_index);

    ModelRegistry &registry_;
    Metrics &metrics_;
    runner::SweepEngine *engine_;
    DispatchOptions options_;

    std::mutex socMutex_;
    std::map<std::string, std::unique_ptr<SocBundle>> socs_;

    std::mutex batchMutex_;
    std::condition_variable_any batchCv_;
    std::deque<PredictJob *> queue_;
    /** Declared last: joins before the members it uses die. */
    std::jthread batchThread_;
};

} // namespace pccs::serve

#endif // PCCS_SERVE_PROTOCOL_HH
