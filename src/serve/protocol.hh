/**
 * @file
 * The wire protocol of the prediction service: newline-delimited JSON
 * frames, one request per line, one response line per request.
 *
 * Request:  {"op": "<endpoint>", "id": <any>, ...endpoint fields}
 * Response: {"id": <echoed>, "ok": true,  "result": {...}}
 *        or {"id": <echoed>, "ok": false, "error": "<diagnostic>"}
 *
 * Endpoints: predict, corun, place, explore, reload, stats, health,
 * shutdown (see DESIGN.md section 9 for the field grammar). Every
 * malformed frame — garbage bytes, oversized lines, bad JSON, wrong
 * field types — yields an `ok:false` response for that frame only;
 * nothing a client sends can terminate the service.
 *
 * The dispatcher is transport-agnostic (tests drive it without
 * sockets) and synchronous: a caller hands over the batch of frames
 * one event-loop drain produced and gets wire-ready responses back.
 * All `predict` frames of the batch are coalesced into one SoA
 * kernel call per distinct model (flat combining happens at the
 * server's shard level — every readable connection of a readiness
 * cycle contributes frames to the same batch). The steady-state
 * predict path allocates nothing: frames arrive as string_views, a
 * specialized scanner extracts the fields without building Json
 * values, job and group state lives in a caller-owned reusable
 * Scratch, and responses are serialized straight into the scratch
 * wire buffer (bit-identical to the generic Json-built rendering,
 * which remains the fallback for every frame the scanner does not
 * fully recognize).
 */

#ifndef PCCS_SERVE_PROTOCOL_HH
#define PCCS_SERVE_PROTOCOL_HH

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pccs/phases.hh"
#include "runner/sweep_engine.hh"
#include "serve/json.hh"
#include "serve/metrics.hh"
#include "serve/registry.hh"

namespace pccs::sched {
class QosController;
}

namespace pccs::serve {

/**
 * Reassembles newline-delimited frames from a TCP byte stream that
 * may arrive arbitrarily split or merged. Lines longer than the
 * configured maximum are reported once as oversized (so the peer gets
 * a diagnostic) and their remaining bytes are discarded until the
 * terminating newline, bounding memory per connection.
 *
 * The zero-copy interface is `nextView()`: frames are string_views
 * into the internal buffer, valid until the next `feed()` or
 * `reset()` (the buffer is compacted on feed, never while views are
 * outstanding). `next()` is the copying convenience wrapper.
 */
class FrameBuffer
{
  public:
    explicit FrameBuffer(std::size_t max_frame_bytes = 1 << 20)
        : maxFrame_(max_frame_bytes)
    {
    }

    /** One reassembled frame (without the trailing newline). */
    struct Frame
    {
        std::string text;
        /** True when the line exceeded the limit (text is empty). */
        bool oversized = false;
    };

    /** Zero-copy frame; text is valid until the next feed/reset. */
    struct View
    {
        std::string_view text;
        bool oversized = false;
    };

    /** Append raw bytes from the stream. Invalidates prior views. */
    void feed(const char *data, std::size_t n);

    /** @return the next complete frame (copying), if any. */
    std::optional<Frame> next();

    /** @return the next complete frame as a view, if any. */
    std::optional<View> nextView();

    /** Drop all buffered state (slab reuse for a new connection). */
    void reset();

    /** Buffered not-yet-consumed bytes. */
    std::size_t pendingBytes() const { return buf_.size() - pos_; }

  private:
    std::string buf_;
    /** Consumed prefix of buf_ (compacted away on the next feed). */
    std::size_t pos_ = 0;
    /** Newline scan cursor, so long partial lines stay linear. */
    std::size_t scanned_ = 0;
    std::size_t maxFrame_;
    bool discarding_ = false;
};

/** Configuration of a dispatcher (and so of the service). */
struct DispatchOptions
{
    /** Frequency-grid points of the `explore` endpoint. */
    unsigned exploreGridSteps = 64;
};

/** One response's byte range inside DispatchScratch::wire
 *  (including the trailing newline). */
struct WireSpan
{
    std::size_t offset = 0;
    std::size_t length = 0;
};

/**
 * Parses, validates, and executes protocol requests against a model
 * registry, recording metrics. Thread-safe: server shards call
 * `handleFrames` concurrently, each with its own Scratch.
 */
class Dispatcher
{
  public:
    /** One parsed, batchable predict query awaiting evaluation.
     *  Lives in Scratch so its buffers are reused across batches. */
    struct PredictJob
    {
        std::shared_ptr<const ModelEntry> entry;
        GBps external = 0.0;
        /** One entry with share 1.0 for single-point queries. */
        std::vector<model::PhaseDemand> phases;
    };

    /**
     * Caller-owned reusable working state: one per server shard (or
     * per thread). After handleFrames returns, `wire` holds every
     * response concatenated ('\n'-terminated) and `spans[i]` is the
     * byte range answering input frame i. Everything else is
     * internal scratch that keeps its capacity across calls — the
     * reason the steady-state request path performs no allocation.
     */
    struct Scratch
    {
        std::string wire;
        std::vector<WireSpan> spans;

        /** @name internal (reused by the dispatcher) @{ */
        struct Slot
        {
            EndpointOp op = EndpointOp::Frame;
            /** Unknown op name (overflow metrics); cold. */
            std::string opOther;
            bool hasId = false;
            /** Fast-path id: a plain number. */
            bool idIsNumber = false;
            double idNumber = 0.0;
            /** Generic-path id: points into `request`. */
            const Json *idValue = nullptr;
            Json request;
            Json result;
            std::string error;
            int jobIndex = -1;
            std::chrono::steady_clock::time_point start;
        };
        std::vector<Slot> slots;
        std::vector<PredictJob> jobs;
        std::size_t jobsUsed = 0;
        std::vector<const ModelEntry *> groupEntries;
        std::vector<std::vector<std::size_t>> groupMembers;
        std::vector<double> gx, gy, gout, rs;
        /** @} */
    };

    /**
     * @param engine evaluation engine for batched predicts and the
     *        simulator-backed endpoints; the process-wide engine
     *        when null
     */
    Dispatcher(ModelRegistry &registry, Metrics &metrics,
               runner::SweepEngine *engine = nullptr,
               DispatchOptions options = {});
    ~Dispatcher();

    Dispatcher(const Dispatcher &) = delete;
    Dispatcher &operator=(const Dispatcher &) = delete;

    /**
     * Handle one batch of frames (typically: everything one event
     * loop readiness cycle produced, across all of a shard's ready
     * connections). Responses land in scratch.wire / scratch.spans,
     * exactly one per frame, in frame order. All well-formed
     * `predict` frames of the batch are evaluated in one coalesced
     * pass (one batch kernel call per distinct model).
     *
     * @param shutdown set to true when a frame requested shutdown
     */
    void handleFrames(const FrameBuffer::View *frames,
                      std::size_t count, Scratch &scratch,
                      bool *shutdown = nullptr);

    /**
     * Copying convenience wrapper: one response line per frame, in
     * frame order, without trailing newlines.
     */
    std::vector<std::string>
    handleFrames(const std::vector<FrameBuffer::Frame> &frames,
                 bool *shutdown = nullptr);

    /** Convenience wrapper for a single textual frame. */
    std::string handleFrame(const std::string &frame,
                            bool *shutdown = nullptr);

    ModelRegistry &registry() { return registry_; }
    Metrics &metrics() { return metrics_; }
    runner::SweepEngine &engine() { return *engine_; }

  private:
    /** Lazily built simulator + per-PU models of one named SoC. */
    struct SocBundle
    {
        soc::SocConfig config;
        std::unique_ptr<soc::SocSimulator> sim;
        std::vector<std::unique_ptr<model::PccsModel>> models;
        /** QoS scheduler, created by the first `schedule` request
         *  (its admission policy is fixed at that moment). */
        std::unique_ptr<sched::QosController> sched;
    };

    /**
     * The zero-allocation predict scanner: recognizes exactly the
     * strict-JSON single-point predict grammar (op/id/model/demand/
     * external, any order, no duplicates, no escapes). On success
     * fills the slot and appends a job; any deviation returns false
     * and the generic parser takes over (producing byte-identical
     * diagnostics for the malformed cases).
     */
    bool tryFastPredict(std::string_view text, Scratch &scratch,
                        Scratch::Slot &slot);

    /** Generic (Json-building) parse + execute of one frame. */
    void parseGeneric(std::string_view text, Scratch &scratch,
                      Scratch::Slot &slot, bool *shutdown);

    Json execute(const std::string &op, const Json &request,
                 bool *shutdown);

    Json doCorun(const Json &request);
    Json doPlace(const Json &request);
    Json doExplore(const Json &request);
    Json doReload(const Json &request);
    Json doStats() const;
    Json doHealth() const;
    Json doSchedule(const Json &request);
    Json doComplete(const Json &request);
    Json doSchedStats(const Json &request);

    /** Parse a generic predict request into a scratch job slot. */
    void makePredictJob(const Json &request, Scratch &scratch,
                        Scratch::Slot &slot);

    /** Append one job's wire result object ({"region":...}). */
    static void appendPredictResult(const PredictJob &job, double rs,
                                    std::string &wire);

    /**
     * Evaluate the batch in scratch.jobs[0..jobsUsed): single-point
     * queries are grouped by model snapshot and each distinct
     * model's batch kernel runs once over the group's
     * structure-of-arrays demands (multi-phase queries aggregate
     * through the piecewise path). Results land in scratch.rs,
     * bit-exact with per-job scalar evaluation.
     */
    void evaluateJobs(Scratch &scratch);

    SocBundle &socBundle(const std::string &soc_name);
    const model::PccsModel &puModel(SocBundle &bundle,
                                    std::size_t pu_index);

    ModelRegistry &registry_;
    Metrics &metrics_;
    runner::SweepEngine *engine_;
    DispatchOptions options_;

    std::mutex socMutex_;
    std::map<std::string, std::unique_ptr<SocBundle>> socs_;
};

} // namespace pccs::serve

#endif // PCCS_SERVE_PROTOCOL_HH
