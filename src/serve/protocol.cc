#include "protocol.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "pccs/builder.hh"
#include "pccs/corun.hh"
#include "pccs/design.hh"
#include "pccs/placement.hh"
#include "workloads/nn.hh"
#include "workloads/rodinia.hh"

namespace pccs::serve {

void
FrameBuffer::feed(const char *data, std::size_t n)
{
    buf_.append(data, n);
}

std::optional<FrameBuffer::Frame>
FrameBuffer::next()
{
    while (true) {
        const std::size_t nl = buf_.find('\n', scanned_);
        if (discarding_) {
            if (nl == std::string::npos) {
                buf_.clear();
                scanned_ = 0;
                return std::nullopt;
            }
            buf_.erase(0, nl + 1);
            scanned_ = 0;
            discarding_ = false;
            continue;
        }
        if (nl == std::string::npos) {
            // Remember how far we scanned so repeated feeds of a long
            // line stay linear.
            scanned_ = buf_.size();
            if (buf_.size() > maxFrame_) {
                buf_.clear();
                scanned_ = 0;
                discarding_ = true;
                return Frame{"", true};
            }
            return std::nullopt;
        }
        if (nl > maxFrame_) {
            buf_.erase(0, nl + 1);
            scanned_ = 0;
            return Frame{"", true};
        }
        std::string text = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        scanned_ = 0;
        if (!text.empty() && text.back() == '\r')
            text.pop_back();
        if (text.empty())
            continue; // tolerate blank lines between frames
        return Frame{std::move(text), false};
    }
}

namespace {

/** A per-request failure; caught per frame, never escapes. */
struct ThrownRequestError
{
    std::string message;
};

[[noreturn]] void
requestError(std::string message)
{
    throw ThrownRequestError{std::move(message)};
}

/** @return the member `key`, or fail the request. */
const Json &
field(const Json &request, const char *key)
{
    const Json *v = request.find(key);
    if (v == nullptr)
        requestError(std::string("missing field '") + key + "'");
    return *v;
}

std::string
requireString(const Json &request, const char *key)
{
    const Json &v = field(request, key);
    if (!v.isString())
        requestError(std::string("field '") + key +
                     "' must be a string");
    return v.asString();
}

double
requireFinite(const Json &request, const char *key)
{
    const Json &v = field(request, key);
    if (!v.isNumber() || !std::isfinite(v.asNumber()))
        requestError(std::string("field '") + key +
                     "' must be a finite number");
    return v.asNumber();
}

double
requireNonNegative(const Json &request, const char *key)
{
    const double v = requireFinite(request, key);
    if (v < 0.0)
        requestError(std::string("field '") + key +
                     "' must be >= 0");
    return v;
}

/** The program's phase demands: "phases" array, or a lone "demand". */
std::vector<model::PhaseDemand>
parsePhases(const Json &request)
{
    const Json *phases = request.find("phases");
    if (phases == nullptr)
        return {{requireNonNegative(request, "demand"), 1.0}};
    if (!phases->isArray() || phases->asArray().empty())
        requestError("field 'phases' must be a non-empty array");
    std::vector<model::PhaseDemand> out;
    out.reserve(phases->asArray().size());
    for (const Json &phase : phases->asArray()) {
        if (!phase.isObject())
            requestError("each phase must be an object with "
                         "'demand' and 'share'");
        const double demand = requireNonNegative(phase, "demand");
        const double share = requireFinite(phase, "share");
        if (share <= 0.0)
            requestError("field 'share' must be > 0");
        out.push_back({demand, share});
    }
    return out;
}

bool
isRodiniaBenchmark(const std::string &name)
{
    for (const auto &spec : workloads::rodiniaSuite())
        if (spec.name == name)
            return true;
    return false;
}

bool
isDlaWorkload(const std::string &name)
{
    return name == "Resnet-50" || name == "resnet-50" ||
           name == "VGG-19" || name == "vgg-19" ||
           name == "Alexnet" || name == "alexnet";
}

soc::PuKind
puKindByName(const std::string &name)
{
    if (name == "cpu")
        return soc::PuKind::Cpu;
    if (name == "gpu")
        return soc::PuKind::Gpu;
    if (name == "dla")
        return soc::PuKind::Dla;
    requestError("unknown pu '" + name +
                 "' (use cpu, gpu, or dla)");
}

double
nowMicros(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

Dispatcher::Dispatcher(ModelRegistry &registry, Metrics &metrics,
                       runner::SweepEngine *engine,
                       DispatchOptions options)
    : registry_(registry), metrics_(metrics),
      engine_(engine != nullptr ? engine
                                : &runner::SweepEngine::global()),
      options_(options),
      batchThread_([this](std::stop_token stop) { batchLoop(stop); })
{
}

Dispatcher::~Dispatcher()
{
    batchThread_.request_stop();
    batchCv_.notify_all();
}

std::vector<std::string>
Dispatcher::handleFrames(const std::vector<FrameBuffer::Frame> &frames,
                         bool *shutdown)
{
    struct Slot
    {
        std::string op = "_frame";
        Json id;
        bool hasId = false;
        std::string error;
        Json result;
        PredictJob *job = nullptr;
        std::chrono::steady_clock::time_point start;
    };

    std::vector<Slot> slots(frames.size());
    std::vector<std::unique_ptr<PredictJob>> jobs;

    for (std::size_t i = 0; i < frames.size(); ++i) {
        Slot &s = slots[i];
        s.start = std::chrono::steady_clock::now();
        if (frames[i].oversized) {
            s.error = "frame exceeds the size limit";
            continue;
        }
        JsonParse parsed = parseJson(frames[i].text);
        if (!parsed.ok()) {
            s.error = "parse error at offset " +
                      std::to_string(parsed.offset) + ": " +
                      parsed.error;
            continue;
        }
        const Json &request = *parsed.value;
        if (!request.isObject()) {
            s.error = "request must be a JSON object";
            continue;
        }
        if (const Json *id = request.find("id")) {
            s.id = *id;
            s.hasId = true;
        }
        const Json *op = request.find("op");
        if (op == nullptr || !op->isString()) {
            s.error = "missing string field 'op'";
            continue;
        }
        s.op = op->asString();
        try {
            if (s.op == "predict") {
                jobs.push_back(makePredictJob(request));
                s.job = jobs.back().get();
            } else {
                s.result = execute(s.op, request, shutdown);
            }
        } catch (const ThrownRequestError &e) {
            s.error = e.message;
        }
    }

    if (!jobs.empty())
        submitBatch(jobs);

    std::vector<std::string> out;
    out.reserve(frames.size());
    for (Slot &s : slots) {
        if (s.job != nullptr) {
            s.job->ready.wait();
            s.result = std::move(s.job->result);
        }
        Json response = Json::object();
        if (s.hasId)
            response.set("id", std::move(s.id));
        const bool ok = s.error.empty();
        response.set("ok", ok);
        if (ok)
            response.set("result", std::move(s.result));
        else
            response.set("error", s.error);
        metrics_.recordRequest(s.op, ok, nowMicros(s.start));
        out.push_back(response.dump());
    }
    return out;
}

std::string
Dispatcher::handleFrame(const std::string &frame, bool *shutdown)
{
    return handleFrames({FrameBuffer::Frame{frame, false}}, shutdown)
        .front();
}

Json
Dispatcher::execute(const std::string &op, const Json &request,
                    bool *shutdown)
{
    if (op == "health")
        return doHealth();
    if (op == "stats")
        return doStats();
    if (op == "reload")
        return doReload(request);
    if (op == "corun")
        return doCorun(request);
    if (op == "place")
        return doPlace(request);
    if (op == "explore")
        return doExplore(request);
    if (op == "shutdown") {
        if (shutdown != nullptr)
            *shutdown = true;
        Json result = Json::object();
        result.set("stopping", true);
        return result;
    }
    requestError("unknown op '" + op + "'");
}

std::unique_ptr<Dispatcher::PredictJob>
Dispatcher::makePredictJob(const Json &request)
{
    auto job = std::make_unique<PredictJob>();
    const std::string name = requireString(request, "model");
    job->entry = registry_.find(name);
    if (!job->entry)
        requestError("unknown model '" + name + "'");
    job->external = requireNonNegative(request, "external");
    job->phases = parsePhases(request);
    job->ready = job->done.get_future();
    return job;
}

void
Dispatcher::finishPredict(PredictJob &job, double rs)
{
    const model::PccsModel &m = job.entry->model;
    Json result = Json::object();
    const double slowdown = rs > 0.0 ? 100.0 / rs : 1e9;
    if (job.phases.size() == 1) {
        const GBps x = job.phases.front().demand;
        result.set("region", model::regionName(m.classify(x)));
        result.set("demand", x);
    } else {
        result.set("phases", job.phases.size());
    }
    result.set("model", job.entry->name);
    result.set("version", job.entry->version);
    result.set("external", job.external);
    result.set("relativeSpeed", rs);
    result.set("slowdownFactor", slowdown);
    job.result = std::move(result);
}

void
Dispatcher::evaluateJobs(const std::vector<PredictJob *> &batch)
{
    const std::size_t n = batch.size();
    std::vector<double> rs(n, 0.0);

    // Group the single-phase queries by model snapshot: one batch
    // kernel call per distinct model instead of one scalar virtual
    // call per request.
    std::vector<const ModelEntry *> entries;
    std::vector<std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < n; ++i) {
        if (batch[i]->phases.size() != 1)
            continue;
        const ModelEntry *entry = batch[i]->entry.get();
        std::size_t g = 0;
        while (g < entries.size() && entries[g] != entry)
            ++g;
        if (g == entries.size()) {
            entries.push_back(entry);
            groups.emplace_back();
        }
        groups[g].push_back(i);
    }
    std::vector<double> gx, gy, gout;
    for (std::size_t g = 0; g < entries.size(); ++g) {
        const std::vector<std::size_t> &idx = groups[g];
        gx.assign(idx.size(), 0.0);
        gy.assign(idx.size(), 0.0);
        gout.assign(idx.size(), 0.0);
        for (std::size_t j = 0; j < idx.size(); ++j) {
            gx[j] = batch[idx[j]]->phases.front().demand;
            gy[j] = batch[idx[j]]->external;
        }
        entries[g]->model.relativeSpeedBatch(gx, gy, gout);
        for (std::size_t j = 0; j < idx.size(); ++j)
            rs[idx[j]] = gout[j];
    }

    // Multi-phase programs aggregate per phase (bit-exact with the
    // scalar protocol; rare next to single-point queries).
    for (std::size_t i = 0; i < n; ++i) {
        if (batch[i]->phases.size() != 1) {
            rs[i] = model::predictPiecewise(batch[i]->entry->model,
                                            batch[i]->phases,
                                            batch[i]->external);
        }
    }

    // Response construction is the string-heavy part; build it on
    // the engine pool when a real batch coalesced.
    if (n > 1 && engine_->jobs() > 1) {
        engine_->parallelFor(n, [&](std::size_t i) {
            finishPredict(*batch[i], rs[i]);
        });
    } else {
        for (std::size_t i = 0; i < n; ++i)
            finishPredict(*batch[i], rs[i]);
    }
}

void
Dispatcher::submitBatch(
    std::vector<std::unique_ptr<PredictJob>> &batch)
{
    {
        std::lock_guard lock(batchMutex_);
        for (const auto &job : batch)
            queue_.push_back(job.get());
    }
    batchCv_.notify_all();
}

void
Dispatcher::batchLoop(const std::stop_token &stop)
{
    std::unique_lock lock(batchMutex_);
    while (true) {
        if (!batchCv_.wait(lock, stop,
                           [&] { return !queue_.empty(); })) {
            break; // stop requested while idle
        }
        std::vector<PredictJob *> batch(queue_.begin(), queue_.end());
        queue_.clear();
        lock.unlock();

        // One coalesced evaluation pass for however many queries
        // accumulated while the previous pass ran.
        metrics_.recordBatch(batch.size());
        evaluateJobs(batch);
        for (PredictJob *job : batch)
            job->done.set_value();

        lock.lock();
    }
    // Graceful drain: finish whatever was queued when stop arrived.
    if (!queue_.empty()) {
        const std::vector<PredictJob *> rest(queue_.begin(),
                                             queue_.end());
        evaluateJobs(rest);
        for (PredictJob *job : rest)
            job->done.set_value();
        queue_.clear();
    }
}

Json
Dispatcher::doCorun(const Json &request)
{
    const Json &entries = field(request, "entries");
    if (!entries.isArray() || entries.asArray().empty())
        requestError("field 'entries' must be a non-empty array");

    std::vector<std::shared_ptr<const ModelEntry>> held;
    std::vector<model::CorunInput> inputs;
    Json names = Json::array();
    for (const Json &entry : entries.asArray()) {
        if (!entry.isObject())
            requestError("each corun entry must be an object");
        const std::string name = requireString(entry, "model");
        auto snapshot = registry_.find(name);
        if (!snapshot)
            requestError("unknown model '" + name + "'");
        model::CorunInput input;
        input.model = &snapshot->model;
        input.phases = parsePhases(entry);
        held.push_back(std::move(snapshot));
        inputs.push_back(std::move(input));
        names.push(name);
    }

    model::CorunPredictOptions opts;
    if (request.find("refine") != nullptr) {
        const double n = requireNonNegative(request, "refine");
        opts.refinementIterations = static_cast<unsigned>(n);
    }
    if (request.find("damping") != nullptr) {
        opts.damping = requireFinite(request, "damping");
        if (opts.damping <= 0.0 || opts.damping > 1.0)
            requestError("field 'damping' must be in (0, 1]");
    }

    const std::vector<double> speeds =
        model::predictCorun(inputs, opts);
    Json rs = Json::array();
    Json slowdown = Json::array();
    for (double s : speeds) {
        rs.push(s);
        slowdown.push(s > 0.0 ? 100.0 / s : 1e9);
    }
    Json result = Json::object();
    result.set("models", std::move(names));
    result.set("relativeSpeed", std::move(rs));
    result.set("slowdownFactor", std::move(slowdown));
    return result;
}

Json
Dispatcher::doPlace(const Json &request)
{
    std::lock_guard lock(socMutex_);
    SocBundle &bundle = socBundle(requireString(request, "soc"));

    const Json &taskList = field(request, "tasks");
    if (!taskList.isArray() || taskList.asArray().empty())
        requestError("field 'tasks' must be a non-empty array");
    if (taskList.asArray().size() > bundle.config.pus.size())
        requestError("more tasks than PUs on that SoC");

    std::vector<model::PlacementTask> tasks;
    for (const Json &item : taskList.asArray()) {
        std::string bench, nn;
        if (item.isString()) {
            bench = item.asString();
        } else if (item.isObject()) {
            if (const Json *b = item.find("bench"))
                bench = b->asString();
            else if (const Json *n = item.find("nn"))
                nn = n->asString();
        }
        model::PlacementTask task;
        if (!bench.empty()) {
            if (!isRodiniaBenchmark(bench))
                requestError("unknown benchmark '" + bench + "'");
            task.name = bench;
            for (const auto &pu : bundle.config.pus) {
                if (pu.kind == soc::PuKind::Dla) {
                    task.options.push_back({});
                } else {
                    task.options.push_back(
                        soc::PhasedWorkload::single(
                            workloads::rodiniaKernel(bench,
                                                     pu.kind)));
                }
            }
        } else if (!nn.empty()) {
            if (!isDlaWorkload(nn))
                requestError("unknown DLA workload '" + nn + "'");
            task.name = nn;
            for (const auto &pu : bundle.config.pus) {
                if (pu.kind == soc::PuKind::Dla)
                    task.options.push_back(
                        workloads::dlaWorkload(nn));
                else
                    task.options.push_back({});
            }
        } else {
            requestError("each task must be a benchmark name, "
                         "{\"bench\": ...}, or {\"nn\": ...}");
        }
        tasks.push_back(std::move(task));
    }

    model::PlacementObjective objective =
        model::PlacementObjective::MaxMinRelativeSpeed;
    if (const Json *o = request.find("objective")) {
        if (o->asString() == "makespan")
            objective = model::PlacementObjective::MinMakespan;
        else if (o->asString() != "maxmin")
            requestError("field 'objective' must be 'maxmin' or "
                         "'makespan'");
    }

    std::vector<const model::SlowdownPredictor *> models;
    for (std::size_t p = 0; p < bundle.config.pus.size(); ++p)
        models.push_back(&puModel(bundle, p));

    const auto choices = model::enumeratePlacements(
        *bundle.sim, models, tasks, objective);
    if (choices.empty())
        requestError("no feasible placement for those tasks");
    const model::PlacementChoice &best = choices.front();

    Json assignment = Json::array();
    for (std::size_t t = 0; t < tasks.size(); ++t) {
        Json a = Json::object();
        a.set("task", tasks[t].name);
        a.set("pu", best.puAssignment[t]);
        a.set("puName",
              bundle.config.pus[best.puAssignment[t]].name);
        assignment.push(std::move(a));
    }
    Json rs = Json::array();
    for (double s : best.relativeSpeed)
        rs.push(s);
    Json seconds = Json::array();
    for (double s : best.corunSeconds)
        seconds.push(s);

    Json result = Json::object();
    result.set("assignment", std::move(assignment));
    result.set("relativeSpeed", std::move(rs));
    result.set("corunSeconds", std::move(seconds));
    result.set("score", best.score);
    result.set("choicesConsidered", choices.size());
    return result;
}

Json
Dispatcher::doExplore(const Json &request)
{
    std::lock_guard lock(socMutex_);
    SocBundle &bundle = socBundle(requireString(request, "soc"));

    const soc::PuKind kind =
        puKindByName(requireString(request, "pu"));
    const int pu = bundle.config.puIndex(kind);
    if (pu < 0)
        requestError("that SoC has no such PU");
    if (kind == soc::PuKind::Dla)
        requestError("explore supports cpu and gpu kernels");
    const std::string bench = requireString(request, "bench");
    if (!isRodiniaBenchmark(bench))
        requestError("unknown benchmark '" + bench + "'");
    const double external = requireNonNegative(request, "external");
    const double allowed = requireNonNegative(request, "allowed");

    const std::size_t pi = static_cast<std::size_t>(pu);
    const soc::KernelProfile kernel =
        workloads::rodiniaKernel(bench, kind);
    const model::PccsModel &m = puModel(bundle, pi);
    const model::DesignExplorer explorer(bundle.config, engine_);

    std::vector<MHz> grid;
    const double fmax = bundle.config.pus[pi].maxFrequency;
    const unsigned steps = std::max(2u, options_.exploreGridSteps);
    for (double f = 0.3 * fmax; f < fmax; f += fmax / steps)
        grid.push_back(f);
    grid.push_back(fmax);

    const model::DesignSelection sel = explorer.selectFrequency(
        pi, kernel, external, allowed, m, grid);

    Json result = Json::object();
    result.set("bench", bench);
    result.set("selectedMhz", sel.value);
    result.set("maxMhz", fmax);
    result.set("predictedPerformance", sel.predictedPerformance);
    result.set("referencePerformance", sel.referencePerformance);
    result.set("performanceRatio",
               sel.referencePerformance > 0.0
                   ? sel.predictedPerformance /
                         sel.referencePerformance
                   : 0.0);
    return result;
}

Json
Dispatcher::doReload(const Json &request)
{
    const std::string name = requireString(request, "model");
    std::string path;
    if (request.find("path") != nullptr)
        path = requireString(request, "path");
    const ModelRegistry::Reloaded outcome =
        registry_.reload(name, path);
    if (!outcome.ok)
        requestError(outcome.error);
    Json result = Json::object();
    result.set("model", name);
    result.set("version", outcome.version);
    if (auto entry = registry_.find(name))
        result.set("source", entry->source);
    return result;
}

Json
Dispatcher::doStats() const
{
    Json stats = metrics_.toJson(engine_->cache().stats());
    Json models = Json::array();
    for (const auto &entry : registry_.list()) {
        Json m = Json::object();
        m.set("name", entry->name);
        m.set("version", entry->version);
        m.set("source", entry->source);
        models.push(std::move(m));
    }
    stats.set("models", std::move(models));
    return stats;
}

Json
Dispatcher::doHealth() const
{
    Json result = Json::object();
    result.set("status", "ok");
    result.set("uptimeSeconds", metrics_.uptimeSeconds());
    result.set("models", registry_.size());
    result.set("protocol", 1);
    return result;
}

Dispatcher::SocBundle &
Dispatcher::socBundle(const std::string &soc_name)
{
    auto it = socs_.find(soc_name);
    if (it != socs_.end())
        return *it->second;

    soc::SocConfig config;
    if (soc_name == "xavier")
        config = soc::xavierLike();
    else if (soc_name == "snapdragon")
        config = soc::snapdragonLike();
    else
        requestError("unknown soc '" + soc_name +
                     "' (use xavier or snapdragon)");

    auto bundle = std::make_unique<SocBundle>();
    bundle->config = config;
    bundle->sim = std::make_unique<soc::SocSimulator>(config);
    bundle->models.resize(config.pus.size());
    return *(socs_[soc_name] = std::move(bundle));
}

const model::PccsModel &
Dispatcher::puModel(SocBundle &bundle, std::size_t pu_index)
{
    if (!bundle.models[pu_index]) {
        bundle.models[pu_index] =
            std::make_unique<model::PccsModel>(
                model::buildModel(*bundle.sim, pu_index));
    }
    return *bundle.models[pu_index];
}

} // namespace pccs::serve
