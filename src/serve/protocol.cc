#include "protocol.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "pccs/builder.hh"
#include "pccs/corun.hh"
#include "pccs/design.hh"
#include "pccs/placement.hh"
#include "runner/run_spec.hh"
#include "sched/qos.hh"
#include "workloads/nn.hh"
#include "workloads/rodinia.hh"

namespace pccs::serve {

void
FrameBuffer::feed(const char *data, std::size_t n)
{
    // Compact the consumed prefix now, while no views are
    // outstanding (feeding invalidates them by contract). Usually
    // the whole buffer was consumed and this is a cheap clear.
    if (pos_ > 0) {
        buf_.erase(0, pos_);
        scanned_ -= pos_;
        pos_ = 0;
    }
    buf_.append(data, n);
}

void
FrameBuffer::reset()
{
    buf_.clear();
    pos_ = 0;
    scanned_ = 0;
    discarding_ = false;
}

std::optional<FrameBuffer::View>
FrameBuffer::nextView()
{
    while (true) {
        const std::size_t from = std::max(scanned_, pos_);
        const std::size_t nl = buf_.find('\n', from);
        if (discarding_) {
            if (nl == std::string::npos) {
                // Consume (but keep until the next feed compacts)
                // the rest of the oversized line.
                pos_ = buf_.size();
                scanned_ = buf_.size();
                return std::nullopt;
            }
            pos_ = nl + 1;
            scanned_ = pos_;
            discarding_ = false;
            continue;
        }
        if (nl == std::string::npos) {
            // Remember how far we scanned so repeated feeds of a long
            // line stay linear.
            scanned_ = buf_.size();
            if (buf_.size() - pos_ > maxFrame_) {
                pos_ = buf_.size();
                discarding_ = true;
                return View{{}, true};
            }
            return std::nullopt;
        }
        if (nl - pos_ > maxFrame_) {
            pos_ = nl + 1;
            scanned_ = pos_;
            return View{{}, true};
        }
        std::string_view text(buf_.data() + pos_, nl - pos_);
        pos_ = nl + 1;
        scanned_ = pos_;
        if (!text.empty() && text.back() == '\r')
            text.remove_suffix(1);
        if (text.empty())
            continue; // tolerate blank lines between frames
        return View{text, false};
    }
}

std::optional<FrameBuffer::Frame>
FrameBuffer::next()
{
    std::optional<View> v = nextView();
    if (!v)
        return std::nullopt;
    return Frame{std::string(v->text), v->oversized};
}

namespace {

/** A per-request failure; caught per frame, never escapes. */
struct ThrownRequestError
{
    std::string message;
};

[[noreturn]] void
requestError(std::string message)
{
    throw ThrownRequestError{std::move(message)};
}

/** @return the member `key`, or fail the request. */
const Json &
field(const Json &request, const char *key)
{
    const Json *v = request.find(key);
    if (v == nullptr)
        requestError(std::string("missing field '") + key + "'");
    return *v;
}

std::string
requireString(const Json &request, const char *key)
{
    const Json &v = field(request, key);
    if (!v.isString())
        requestError(std::string("field '") + key +
                     "' must be a string");
    return v.asString();
}

double
requireFinite(const Json &request, const char *key)
{
    const Json &v = field(request, key);
    if (!v.isNumber() || !std::isfinite(v.asNumber()))
        requestError(std::string("field '") + key +
                     "' must be a finite number");
    return v.asNumber();
}

double
requireNonNegative(const Json &request, const char *key)
{
    const double v = requireFinite(request, key);
    if (v < 0.0)
        requestError(std::string("field '") + key +
                     "' must be >= 0");
    return v;
}

/** The program's phase demands: "phases" array, or a lone "demand". */
std::vector<model::PhaseDemand>
parsePhases(const Json &request)
{
    const Json *phases = request.find("phases");
    if (phases == nullptr)
        return {{requireNonNegative(request, "demand"), 1.0}};
    if (!phases->isArray() || phases->asArray().empty())
        requestError("field 'phases' must be a non-empty array");
    std::vector<model::PhaseDemand> out;
    out.reserve(phases->asArray().size());
    for (const Json &phase : phases->asArray()) {
        if (!phase.isObject())
            requestError("each phase must be an object with "
                         "'demand' and 'share'");
        const double demand = requireNonNegative(phase, "demand");
        const double share = requireFinite(phase, "share");
        if (share <= 0.0)
            requestError("field 'share' must be > 0");
        out.push_back({demand, share});
    }
    return out;
}

bool
isRodiniaBenchmark(const std::string &name)
{
    for (const auto &spec : workloads::rodiniaSuite())
        if (spec.name == name)
            return true;
    return false;
}

bool
isDlaWorkload(const std::string &name)
{
    return name == "Resnet-50" || name == "resnet-50" ||
           name == "VGG-19" || name == "vgg-19" ||
           name == "Alexnet" || name == "alexnet";
}

soc::PuKind
puKindByName(const std::string &name)
{
    if (name == "cpu")
        return soc::PuKind::Cpu;
    if (name == "gpu")
        return soc::PuKind::Gpu;
    if (name == "dla")
        return soc::PuKind::Dla;
    requestError("unknown pu '" + name +
                 "' (use cpu, gpu, or dla)");
}

double
nowMicros(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Append `v` rendered exactly like runner::jsonNumber, without
 *  materializing a std::string (the %.17g worst case overflows SSO). */
void
appendNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null"; // JSON has no NaN/Inf
        return;
    }
    char buf[40];
    const int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
    out.append(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
}

/** Append `s` escaped exactly like runner::jsonEscape. */
void
appendEscaped(std::string &out, std::string_view s)
{
    for (const char raw : s) {
        const unsigned char c = static_cast<unsigned char>(raw);
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += raw;
            }
        }
    }
}

/**
 * Cursor of the fast predict scanner. Whitespace and number rules
 * mirror the strict Json parser exactly: anything the scanner
 * accepts, the generic parser would accept with the same meaning —
 * and anything suspicious makes the scanner bail so the generic
 * parser produces its (byte-identical) diagnostic.
 */
struct FastScan
{
    std::string_view text;
    std::size_t pos = 0;

    void skipWs()
    {
        while (pos < text.size()) {
            const char c = text[pos];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos;
        }
    }

    bool eat(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    /** A string with no escapes or control bytes (view into text). */
    bool scanSimpleString(std::string_view &out)
    {
        if (!eat('"'))
            return false;
        const std::size_t start = pos;
        while (pos < text.size()) {
            const unsigned char c =
                static_cast<unsigned char>(text[pos]);
            if (c == '"') {
                out = text.substr(start, pos - start);
                ++pos;
                return true;
            }
            if (c == '\\' || c < 0x20)
                return false; // escapes and errors: generic path
            ++pos;
        }
        return false;
    }

    /** RFC 8259 number, same grammar as Parser::parseNumber. */
    bool scanNumber(double &out)
    {
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        if (pos >= text.size() || !isDigit(text[pos]))
            return false;
        if (text[pos] == '0') {
            ++pos;
        } else {
            while (pos < text.size() && isDigit(text[pos]))
                ++pos;
        }
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            if (pos >= text.size() || !isDigit(text[pos]))
                return false;
            while (pos < text.size() && isDigit(text[pos]))
                ++pos;
        }
        if (pos < text.size() &&
            (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (pos >= text.size() || !isDigit(text[pos]))
                return false;
            while (pos < text.size() && isDigit(text[pos]))
                ++pos;
        }
        if (pos < text.size() && isDigit(text[pos]))
            return false; // a leading zero: generic rejects it
        const std::size_t len = pos - start;
        char buf[64];
        if (len >= sizeof(buf))
            return false; // absurd token: let the generic path pay
        std::memcpy(buf, text.data() + start, len);
        buf[len] = '\0';
        out = std::strtod(buf, nullptr);
        return true;
    }

    static bool isDigit(char c) { return c >= '0' && c <= '9'; }
};

} // namespace

Dispatcher::Dispatcher(ModelRegistry &registry, Metrics &metrics,
                       runner::SweepEngine *engine,
                       DispatchOptions options)
    : registry_(registry), metrics_(metrics),
      engine_(engine != nullptr ? engine
                                : &runner::SweepEngine::global()),
      options_(options)
{
}

Dispatcher::~Dispatcher() = default;

bool
Dispatcher::tryFastPredict(std::string_view text, Scratch &scratch,
                           Scratch::Slot &slot)
{
    FastScan sc{text};
    sc.skipWs();
    if (!sc.eat('{'))
        return false;
    sc.skipWs();
    if (sc.pos < text.size() && text[sc.pos] == '}')
        return false; // empty object: generic emits "missing op"

    bool haveOp = false, haveModel = false, haveDemand = false,
         haveExternal = false, haveId = false;
    std::string_view modelName;
    double demand = 0.0, external = 0.0, idNumber = 0.0;

    while (true) {
        sc.skipWs();
        std::string_view key;
        if (!sc.scanSimpleString(key))
            return false;
        sc.skipWs();
        if (!sc.eat(':'))
            return false;
        sc.skipWs();
        if (key == "op") {
            std::string_view v;
            if (haveOp || !sc.scanSimpleString(v) || v != "predict")
                return false;
            haveOp = true;
        } else if (key == "model") {
            if (haveModel || !sc.scanSimpleString(modelName))
                return false;
            haveModel = true;
        } else if (key == "demand") {
            if (haveDemand || !sc.scanNumber(demand))
                return false;
            haveDemand = true;
        } else if (key == "external") {
            if (haveExternal || !sc.scanNumber(external))
                return false;
            haveExternal = true;
        } else if (key == "id") {
            // Only numeric ids take the fast path; anything else
            // (strings, null, objects) falls back to the generic
            // parser, which echoes arbitrary Json ids.
            if (haveId || !sc.scanNumber(idNumber))
                return false;
            haveId = true;
        } else {
            return false; // "phases" and any unknown key
        }
        sc.skipWs();
        if (sc.eat(','))
            continue;
        if (sc.eat('}'))
            break;
        return false;
    }
    sc.skipWs();
    if (sc.pos != text.size())
        return false; // trailing bytes: generic emits the diagnostic
    if (!haveOp || !haveModel || !haveDemand || !haveExternal)
        return false;
    // Semantic bailouts, so every diagnostic ("unknown model",
    // "must be >= 0") comes from the one generic code path.
    if (!(demand >= 0.0) || !std::isfinite(demand))
        return false;
    if (!(external >= 0.0) || !std::isfinite(external))
        return false;
    std::shared_ptr<const ModelEntry> entry =
        registry_.find(modelName);
    if (!entry)
        return false;

    if (scratch.jobs.size() <= scratch.jobsUsed)
        scratch.jobs.emplace_back();
    PredictJob &job = scratch.jobs[scratch.jobsUsed];
    job.entry = std::move(entry);
    job.external = external;
    job.phases.clear();
    job.phases.push_back({demand, 1.0});

    slot.op = EndpointOp::Predict;
    slot.hasId = haveId;
    slot.idIsNumber = haveId;
    slot.idNumber = idNumber;
    slot.jobIndex = static_cast<int>(scratch.jobsUsed++);
    return true;
}

void
Dispatcher::parseGeneric(std::string_view text, Scratch &scratch,
                         Scratch::Slot &slot, bool *shutdown)
{
    JsonParse parsed = parseJson(text);
    if (!parsed.ok()) {
        slot.error = "parse error at offset " +
                     std::to_string(parsed.offset) + ": " +
                     parsed.error;
        return;
    }
    slot.request = std::move(*parsed.value);
    const Json &request = slot.request;
    if (!request.isObject()) {
        slot.error = "request must be a JSON object";
        return;
    }
    if (const Json *id = request.find("id")) {
        slot.hasId = true;
        slot.idValue = id;
    }
    const Json *op = request.find("op");
    if (op == nullptr || !op->isString()) {
        slot.error = "missing string field 'op'";
        return;
    }
    const std::string &opName = op->asString();
    const EndpointOp fixed = endpointOpFromName(opName);
    slot.op = fixed;
    if (fixed == EndpointOp::kCount)
        slot.opOther = opName;
    try {
        if (fixed == EndpointOp::Predict)
            makePredictJob(request, scratch, slot);
        else
            slot.result = execute(opName, request, shutdown);
    } catch (const ThrownRequestError &e) {
        slot.error = e.message;
    }
}

void
Dispatcher::makePredictJob(const Json &request, Scratch &scratch,
                           Scratch::Slot &slot)
{
    if (scratch.jobs.size() <= scratch.jobsUsed)
        scratch.jobs.emplace_back();
    PredictJob &job = scratch.jobs[scratch.jobsUsed];
    const std::string name = requireString(request, "model");
    job.entry = registry_.find(name);
    if (!job.entry)
        requestError("unknown model '" + name + "'");
    job.external = requireNonNegative(request, "external");
    job.phases = parsePhases(request);
    slot.jobIndex = static_cast<int>(scratch.jobsUsed++);
}

void
Dispatcher::appendPredictResult(const PredictJob &job, double rs,
                                std::string &wire)
{
    const model::PccsModel &m = job.entry->model;
    const double slowdown = rs > 0.0 ? 100.0 / rs : 1e9;
    wire += "{\"";
    if (job.phases.size() == 1) {
        const GBps x = job.phases.front().demand;
        wire += "region\":\"";
        appendEscaped(wire, model::regionName(m.classify(x)));
        wire += "\",\"demand\":";
        appendNumber(wire, x);
    } else {
        wire += "phases\":";
        appendNumber(wire,
                     static_cast<double>(job.phases.size()));
    }
    wire += ",\"model\":\"";
    appendEscaped(wire, job.entry->name);
    wire += "\",\"version\":";
    appendNumber(wire, static_cast<double>(job.entry->version));
    wire += ",\"external\":";
    appendNumber(wire, job.external);
    wire += ",\"relativeSpeed\":";
    appendNumber(wire, rs);
    wire += ",\"slowdownFactor\":";
    appendNumber(wire, slowdown);
    wire += '}';
}

void
Dispatcher::evaluateJobs(Scratch &scratch)
{
    const std::size_t n = scratch.jobsUsed;
    scratch.rs.assign(n, 0.0);

    // Group the single-phase queries by model snapshot: one batch
    // kernel call per distinct model instead of one scalar virtual
    // call per request.
    scratch.groupEntries.clear();
    for (std::size_t i = 0; i < n; ++i) {
        if (scratch.jobs[i].phases.size() != 1)
            continue;
        const ModelEntry *entry = scratch.jobs[i].entry.get();
        std::size_t g = 0;
        while (g < scratch.groupEntries.size() &&
               scratch.groupEntries[g] != entry)
            ++g;
        if (g == scratch.groupEntries.size()) {
            scratch.groupEntries.push_back(entry);
            if (scratch.groupMembers.size() <
                scratch.groupEntries.size())
                scratch.groupMembers.emplace_back();
            else
                scratch.groupMembers[g].clear();
        }
        scratch.groupMembers[g].push_back(i);
    }
    for (std::size_t g = 0; g < scratch.groupEntries.size(); ++g) {
        const std::vector<std::size_t> &idx =
            scratch.groupMembers[g];
        scratch.gx.assign(idx.size(), 0.0);
        scratch.gy.assign(idx.size(), 0.0);
        scratch.gout.assign(idx.size(), 0.0);
        for (std::size_t j = 0; j < idx.size(); ++j) {
            scratch.gx[j] =
                scratch.jobs[idx[j]].phases.front().demand;
            scratch.gy[j] = scratch.jobs[idx[j]].external;
        }
        scratch.groupEntries[g]->model.relativeSpeedBatch(
            scratch.gx, scratch.gy, scratch.gout);
        for (std::size_t j = 0; j < idx.size(); ++j)
            scratch.rs[idx[j]] = scratch.gout[j];
    }

    // Multi-phase programs aggregate per phase (bit-exact with the
    // scalar protocol; rare next to single-point queries).
    for (std::size_t i = 0; i < n; ++i) {
        if (scratch.jobs[i].phases.size() != 1) {
            scratch.rs[i] = model::predictPiecewise(
                scratch.jobs[i].entry->model,
                scratch.jobs[i].phases, scratch.jobs[i].external);
        }
    }
}

void
Dispatcher::handleFrames(const FrameBuffer::View *frames,
                         std::size_t count, Scratch &scratch,
                         bool *shutdown)
{
    scratch.wire.clear();
    scratch.spans.clear();
    if (scratch.spans.capacity() < count)
        scratch.spans.reserve(count);
    if (scratch.slots.size() < count)
        scratch.slots.resize(count);
    scratch.jobsUsed = 0;

    for (std::size_t i = 0; i < count; ++i) {
        Scratch::Slot &s = scratch.slots[i];
        s.start = std::chrono::steady_clock::now();
        s.op = EndpointOp::Frame;
        s.hasId = false;
        s.idIsNumber = false;
        s.idValue = nullptr;
        s.error.clear();
        s.jobIndex = -1;
        if (frames[i].oversized) {
            s.error = "frame exceeds the size limit";
            continue;
        }
        if (!tryFastPredict(frames[i].text, scratch, s))
            parseGeneric(frames[i].text, scratch, s, shutdown);
    }

    // One coalesced evaluation pass for the whole drain cycle.
    if (scratch.jobsUsed > 0) {
        metrics_.recordBatch(scratch.jobsUsed);
        evaluateJobs(scratch);
    }

    for (std::size_t i = 0; i < count; ++i) {
        Scratch::Slot &s = scratch.slots[i];
        std::string &w = scratch.wire;
        const std::size_t begin = w.size();
        w += '{';
        if (s.hasId) {
            w += "\"id\":";
            if (s.idIsNumber)
                appendNumber(w, s.idNumber);
            else if (s.idValue != nullptr)
                s.idValue->dumpTo(w);
            else
                w += "null";
            w += ',';
        }
        const bool ok = s.error.empty();
        if (ok) {
            w += "\"ok\":true,\"result\":";
            if (s.jobIndex >= 0) {
                appendPredictResult(
                    scratch.jobs[static_cast<std::size_t>(
                        s.jobIndex)],
                    scratch.rs[static_cast<std::size_t>(s.jobIndex)],
                    w);
            } else {
                s.result.dumpTo(w);
            }
        } else {
            w += "\"ok\":false,\"error\":\"";
            appendEscaped(w, s.error);
            w += '"';
        }
        w += "}\n";
        scratch.spans.push_back({begin, w.size() - begin});

        const double micros = nowMicros(s.start);
        if (s.op == EndpointOp::kCount)
            metrics_.recordRequest(std::string_view(s.opOther), ok,
                                   micros);
        else
            metrics_.recordRequest(s.op, ok, micros);
        // The generic-path id points into s.request; both die
        // together, but don't let a stale pointer outlive the slot's
        // next reuse.
        s.idValue = nullptr;
    }
}

std::vector<std::string>
Dispatcher::handleFrames(const std::vector<FrameBuffer::Frame> &frames,
                         bool *shutdown)
{
    std::vector<FrameBuffer::View> views;
    views.reserve(frames.size());
    for (const FrameBuffer::Frame &frame : frames)
        views.push_back({frame.text, frame.oversized});
    Scratch scratch;
    handleFrames(views.data(), views.size(), scratch, shutdown);
    std::vector<std::string> out;
    out.reserve(frames.size());
    for (const WireSpan &span : scratch.spans) {
        // Drop the trailing newline the wire form carries.
        out.emplace_back(scratch.wire, span.offset, span.length - 1);
    }
    return out;
}

std::string
Dispatcher::handleFrame(const std::string &frame, bool *shutdown)
{
    return handleFrames({FrameBuffer::Frame{frame, false}}, shutdown)
        .front();
}

Json
Dispatcher::execute(const std::string &op, const Json &request,
                    bool *shutdown)
{
    if (op == "health")
        return doHealth();
    if (op == "stats")
        return doStats();
    if (op == "reload")
        return doReload(request);
    if (op == "corun")
        return doCorun(request);
    if (op == "place")
        return doPlace(request);
    if (op == "explore")
        return doExplore(request);
    if (op == "schedule")
        return doSchedule(request);
    if (op == "complete")
        return doComplete(request);
    if (op == "sched_stats")
        return doSchedStats(request);
    if (op == "shutdown") {
        if (shutdown != nullptr)
            *shutdown = true;
        Json result = Json::object();
        result.set("stopping", true);
        return result;
    }
    requestError("unknown op '" + op + "'");
}

Json
Dispatcher::doCorun(const Json &request)
{
    const Json &entries = field(request, "entries");
    if (!entries.isArray() || entries.asArray().empty())
        requestError("field 'entries' must be a non-empty array");

    std::vector<std::shared_ptr<const ModelEntry>> held;
    std::vector<model::CorunInput> inputs;
    Json names = Json::array();
    for (const Json &entry : entries.asArray()) {
        if (!entry.isObject())
            requestError("each corun entry must be an object");
        const std::string name = requireString(entry, "model");
        auto snapshot = registry_.find(name);
        if (!snapshot)
            requestError("unknown model '" + name + "'");
        model::CorunInput input;
        input.model = &snapshot->model;
        input.phases = parsePhases(entry);
        held.push_back(std::move(snapshot));
        inputs.push_back(std::move(input));
        names.push(name);
    }

    model::CorunPredictOptions opts;
    if (request.find("refine") != nullptr) {
        const double n = requireNonNegative(request, "refine");
        opts.refinementIterations = static_cast<unsigned>(n);
    }
    if (request.find("damping") != nullptr) {
        opts.damping = requireFinite(request, "damping");
        if (opts.damping <= 0.0 || opts.damping > 1.0)
            requestError("field 'damping' must be in (0, 1]");
    }

    const std::vector<double> speeds =
        model::predictCorun(inputs, opts);
    Json rs = Json::array();
    Json slowdown = Json::array();
    for (double s : speeds) {
        rs.push(s);
        slowdown.push(s > 0.0 ? 100.0 / s : 1e9);
    }
    Json result = Json::object();
    result.set("models", std::move(names));
    result.set("relativeSpeed", std::move(rs));
    result.set("slowdownFactor", std::move(slowdown));
    return result;
}

Json
Dispatcher::doPlace(const Json &request)
{
    std::lock_guard lock(socMutex_);
    SocBundle &bundle = socBundle(requireString(request, "soc"));

    const Json &taskList = field(request, "tasks");
    if (!taskList.isArray() || taskList.asArray().empty())
        requestError("field 'tasks' must be a non-empty array");
    if (taskList.asArray().size() > bundle.config.pus.size())
        requestError("more tasks than PUs on that SoC");

    std::vector<model::PlacementTask> tasks;
    for (const Json &item : taskList.asArray()) {
        std::string bench, nn;
        if (item.isString()) {
            bench = item.asString();
        } else if (item.isObject()) {
            if (const Json *b = item.find("bench"))
                bench = b->asString();
            else if (const Json *n = item.find("nn"))
                nn = n->asString();
        }
        model::PlacementTask task;
        if (!bench.empty()) {
            if (!isRodiniaBenchmark(bench))
                requestError("unknown benchmark '" + bench + "'");
            task.name = bench;
            for (const auto &pu : bundle.config.pus) {
                if (pu.kind == soc::PuKind::Dla) {
                    task.options.push_back({});
                } else {
                    task.options.push_back(
                        soc::PhasedWorkload::single(
                            workloads::rodiniaKernel(bench,
                                                     pu.kind)));
                }
            }
        } else if (!nn.empty()) {
            if (!isDlaWorkload(nn))
                requestError("unknown DLA workload '" + nn + "'");
            task.name = nn;
            for (const auto &pu : bundle.config.pus) {
                if (pu.kind == soc::PuKind::Dla)
                    task.options.push_back(
                        workloads::dlaWorkload(nn));
                else
                    task.options.push_back({});
            }
        } else {
            requestError("each task must be a benchmark name, "
                         "{\"bench\": ...}, or {\"nn\": ...}");
        }
        tasks.push_back(std::move(task));
    }

    model::PlacementObjective objective =
        model::PlacementObjective::MaxMinRelativeSpeed;
    if (const Json *o = request.find("objective")) {
        if (o->asString() == "makespan")
            objective = model::PlacementObjective::MinMakespan;
        else if (o->asString() != "maxmin")
            requestError("field 'objective' must be 'maxmin' or "
                         "'makespan'");
    }

    std::vector<const model::SlowdownPredictor *> models;
    for (std::size_t p = 0; p < bundle.config.pus.size(); ++p)
        models.push_back(&puModel(bundle, p));

    const auto choices = model::enumeratePlacements(
        *bundle.sim, models, tasks, objective);
    if (choices.empty())
        requestError("no feasible placement for those tasks");
    const model::PlacementChoice &best = choices.front();

    Json assignment = Json::array();
    for (std::size_t t = 0; t < tasks.size(); ++t) {
        Json a = Json::object();
        a.set("task", tasks[t].name);
        a.set("pu", best.puAssignment[t]);
        a.set("puName",
              bundle.config.pus[best.puAssignment[t]].name);
        assignment.push(std::move(a));
    }
    Json rs = Json::array();
    for (double s : best.relativeSpeed)
        rs.push(s);
    Json seconds = Json::array();
    for (double s : best.corunSeconds)
        seconds.push(s);

    Json result = Json::object();
    result.set("assignment", std::move(assignment));
    result.set("relativeSpeed", std::move(rs));
    result.set("corunSeconds", std::move(seconds));
    result.set("score", best.score);
    result.set("choicesConsidered", choices.size());
    return result;
}

Json
Dispatcher::doExplore(const Json &request)
{
    std::lock_guard lock(socMutex_);
    SocBundle &bundle = socBundle(requireString(request, "soc"));

    const soc::PuKind kind =
        puKindByName(requireString(request, "pu"));
    const int pu = bundle.config.puIndex(kind);
    if (pu < 0)
        requestError("that SoC has no such PU");
    if (kind == soc::PuKind::Dla)
        requestError("explore supports cpu and gpu kernels");
    const std::string bench = requireString(request, "bench");
    if (!isRodiniaBenchmark(bench))
        requestError("unknown benchmark '" + bench + "'");
    const double external = requireNonNegative(request, "external");
    const double allowed = requireNonNegative(request, "allowed");

    const std::size_t pi = static_cast<std::size_t>(pu);
    const soc::KernelProfile kernel =
        workloads::rodiniaKernel(bench, kind);
    const model::PccsModel &m = puModel(bundle, pi);
    const model::DesignExplorer explorer(bundle.config, engine_);

    std::vector<MHz> grid;
    const double fmax = bundle.config.pus[pi].maxFrequency;
    const unsigned steps = std::max(2u, options_.exploreGridSteps);
    for (double f = 0.3 * fmax; f < fmax; f += fmax / steps)
        grid.push_back(f);
    grid.push_back(fmax);

    const model::DesignSelection sel = explorer.selectFrequency(
        pi, kernel, external, allowed, m, grid);

    Json result = Json::object();
    result.set("bench", bench);
    result.set("selectedMhz", sel.value);
    result.set("maxMhz", fmax);
    result.set("predictedPerformance", sel.predictedPerformance);
    result.set("referencePerformance", sel.referencePerformance);
    result.set("performanceRatio",
               sel.referencePerformance > 0.0
                   ? sel.predictedPerformance /
                         sel.referencePerformance
                   : 0.0);
    return result;
}

Json
Dispatcher::doReload(const Json &request)
{
    const std::string name = requireString(request, "model");
    std::string path;
    if (request.find("path") != nullptr)
        path = requireString(request, "path");
    const ModelRegistry::Reloaded outcome =
        registry_.reload(name, path);
    if (!outcome.ok)
        requestError(outcome.error);
    Json result = Json::object();
    result.set("model", name);
    result.set("version", outcome.version);
    if (auto entry = registry_.find(name))
        result.set("source", entry->source);
    return result;
}

Json
Dispatcher::doStats() const
{
    Json stats = metrics_.toJson(engine_->cache().stats());
    Json models = Json::array();
    for (const auto &entry : registry_.list()) {
        Json m = Json::object();
        m.set("name", entry->name);
        m.set("version", entry->version);
        m.set("source", entry->source);
        models.push(std::move(m));
    }
    stats.set("models", std::move(models));
    return stats;
}

Json
Dispatcher::doHealth() const
{
    Json result = Json::object();
    result.set("status", "ok");
    result.set("uptimeSeconds", metrics_.uptimeSeconds());
    result.set("models", registry_.size());
    result.set("protocol", 1);
    return result;
}

namespace {

/**
 * Job handles travel as decimal strings: a handle packs a generation
 * in its high 32 bits, so large values would lose low bits in a JSON
 * double. Numeric input is accepted for small handles (exact
 * integers below 2^53); the string form is always exact.
 */
sched::JobHandle
parseJobHandle(const Json &v)
{
    if (v.isString()) {
        const std::string &s = v.asString();
        if (s.empty() || s.size() > 20 ||
            s.find_first_not_of("0123456789") != std::string::npos)
            requestError("field 'job' must be a decimal job handle");
        return std::strtoull(s.c_str(), nullptr, 10);
    }
    if (v.isNumber()) {
        const double n = v.asNumber();
        if (!(n >= 0.0) || n != std::floor(n) || n > 9.0e15)
            requestError("field 'job' must be a decimal job handle "
                         "(string form is exact)");
        return static_cast<sched::JobHandle>(n);
    }
    requestError("field 'job' must be a decimal job handle");
}

/** Render one scheduler decision as its wire object. */
Json
decisionJson(const sched::Decision &d, const soc::SocConfig &config)
{
    Json out = Json::object();
    out.set("decision", sched::decisionKindName(d.kind));
    if (d.kind == sched::DecisionKind::Admitted) {
        out.set("job", std::to_string(d.handle));
        out.set("pu", d.puIndex);
        out.set("puName", config.pus[d.puIndex].name);
        out.set("frequencyMhz", d.frequencyMhz);
        out.set("predictedSlowdown", d.predictedSlowdown);
        out.set("worstSlack", d.worstSlack);
    } else {
        out.set("reason", d.reason);
    }
    return out;
}

sched::AdmissionPolicy
parsePolicy(const Json &request)
{
    const std::string name = requireString(request, "policy");
    const std::optional<sched::AdmissionPolicy> policy =
        sched::admissionPolicyFromName(name);
    if (!policy)
        requestError("unknown policy '" + name +
                     "' (use strict, best-effort, or fairness)");
    return *policy;
}

} // namespace

Json
Dispatcher::doSchedule(const Json &request)
{
    std::lock_guard lock(socMutex_);
    SocBundle &bundle = socBundle(requireString(request, "soc"));

    if (bundle.sched && request.find("policy") != nullptr &&
        parsePolicy(request) != bundle.sched->options().policy) {
        requestError(
            std::string("scheduler policy is fixed at '") +
            sched::admissionPolicyName(
                bundle.sched->options().policy) +
            "' for this SoC");
    }

    sched::JobRequest job;
    if (request.find("name") != nullptr)
        job.name = requireString(request, "name");
    job.sloSlowdown = requireFinite(request, "slo");
    if (job.sloSlowdown < 1.0)
        requestError("field 'slo' must be >= 1");
    if (request.find("deadline") != nullptr)
        job.deadlineSeconds = requireNonNegative(request, "deadline");
    if (request.find("pu") != nullptr) {
        const soc::PuKind kind =
            puKindByName(requireString(request, "pu"));
        const int pi = bundle.config.puIndex(kind);
        if (pi < 0)
            requestError("that SoC has no such PU");
        job.puIndex = pi;
    }

    if (request.find("bench") != nullptr) {
        const std::string bench = requireString(request, "bench");
        if (!isRodiniaBenchmark(bench))
            requestError("unknown benchmark '" + bench + "'");
        if (job.name.empty())
            job.name = bench;
        for (const auto &pu : bundle.config.pus) {
            if (pu.kind == soc::PuKind::Dla)
                job.options.emplace_back(std::nullopt);
            else
                job.options.emplace_back(
                    workloads::rodiniaKernel(bench, pu.kind));
        }
    } else {
        const Json &k = field(request, "kernel");
        if (!k.isObject())
            requestError("field 'kernel' must be an object");
        job.kernel.name = job.name;
        job.kernel.intensity = requireNonNegative(k, "intensity");
        job.kernel.locality = requireFinite(k, "locality");
        if (job.kernel.locality < 0.0 || job.kernel.locality > 1.0)
            requestError("field 'locality' must be in [0, 1]");
        if (k.find("workBytes") != nullptr) {
            job.kernel.workBytes = requireFinite(k, "workBytes");
            if (job.kernel.workBytes <= 0.0)
                requestError("field 'workBytes' must be > 0");
        }
    }

    // Create the controller only for a fully validated request, so a
    // malformed frame can never fix the SoC's admission policy.
    if (!bundle.sched) {
        sched::SchedOptions opts;
        if (request.find("policy") != nullptr)
            opts.policy = parsePolicy(request);
        if (request.find("margin") != nullptr)
            opts.safetyMargin = requireNonNegative(request, "margin");
        bundle.sched = std::make_unique<sched::QosController>(
            bundle.config, engine_, opts);
    }
    return decisionJson(bundle.sched->submit(job), bundle.config);
}

Json
Dispatcher::doComplete(const Json &request)
{
    std::lock_guard lock(socMutex_);
    SocBundle &bundle = socBundle(requireString(request, "soc"));
    if (!bundle.sched)
        requestError("no scheduler on that SoC "
                     "(nothing scheduled yet)");
    const sched::JobHandle handle =
        parseJobHandle(field(request, "job"));
    const sched::Completion c = bundle.sched->complete(handle);
    if (!c.ok)
        requestError("stale or unknown job handle");
    Json promoted = Json::array();
    for (const sched::Decision &d : c.promoted)
        promoted.push(decisionJson(d, bundle.config));
    Json result = Json::object();
    result.set("completed", true);
    result.set("promoted", std::move(promoted));
    return result;
}

Json
Dispatcher::doSchedStats(const Json &request)
{
    std::lock_guard lock(socMutex_);
    SocBundle &bundle = socBundle(requireString(request, "soc"));
    Json result = Json::object();
    if (!bundle.sched) {
        result.set("scheduler", false);
        return result;
    }
    const sched::QosController &ctl = *bundle.sched;
    result.set("scheduler", true);
    result.set("policy",
               sched::admissionPolicyName(ctl.options().policy));
    const sched::SchedStats &st = ctl.stats();
    Json counters = Json::object();
    counters.set("submitted", st.submitted);
    counters.set("admitted", st.admitted);
    counters.set("queued", st.queued);
    counters.set("rejected", st.rejected);
    counters.set("completed", st.completed);
    counters.set("promoted", st.promoted);
    counters.set("decisions", st.decisions);
    counters.set("modelPoints", st.modelPoints);
    counters.set("expectedViolations", st.expectedViolations);
    result.set("counters", std::move(counters));
    result.set("resident", ctl.residentCount());
    result.set("queued", ctl.queuedCount());
    result.set("totalDemandGBps", ctl.totalDemand());
    Json pus = Json::array();
    for (std::size_t p = 0; p < bundle.config.pus.size(); ++p) {
        Json e = Json::object();
        e.set("name", bundle.config.pus[p].name);
        e.set("resident", ctl.residents(p).size());
        pus.push(std::move(e));
    }
    result.set("pus", std::move(pus));
    return result;
}

Dispatcher::SocBundle &
Dispatcher::socBundle(const std::string &soc_name)
{
    auto it = socs_.find(soc_name);
    if (it != socs_.end())
        return *it->second;

    soc::SocConfig config;
    if (soc_name == "xavier")
        config = soc::xavierLike();
    else if (soc_name == "snapdragon")
        config = soc::snapdragonLike();
    else
        requestError("unknown soc '" + soc_name +
                     "' (use xavier or snapdragon)");

    auto bundle = std::make_unique<SocBundle>();
    bundle->config = config;
    bundle->sim = std::make_unique<soc::SocSimulator>(config);
    bundle->models.resize(config.pus.size());
    return *(socs_[soc_name] = std::move(bundle));
}

const model::PccsModel &
Dispatcher::puModel(SocBundle &bundle, std::size_t pu_index)
{
    if (!bundle.models[pu_index]) {
        bundle.models[pu_index] =
            std::make_unique<model::PccsModel>(
                model::buildModel(*bundle.sim, pu_index));
    }
    return *bundle.models[pu_index];
}

} // namespace pccs::serve
