#include "registry.hh"

#include <mutex>

#include "pccs/serialize.hh"

namespace pccs::serve {

std::string
ModelRegistry::addFromFile(const std::string &name,
                           const std::string &path)
{
    const model::ParamsLoad load = model::tryLoadParams(path);
    if (!load.ok())
        return load.error;
    std::unique_lock lock(mutex_);
    Slot &slot = slots_[name];
    const std::uint64_t version =
        slot.entry ? slot.entry->version + 1 : 1;
    slot.path = path;
    slot.entry = std::make_shared<const ModelEntry>(
        name, version, "file:" + path, *load.params);
    return "";
}

void
ModelRegistry::addFromParams(const std::string &name,
                             const model::PccsParams &params,
                             const std::string &source)
{
    std::unique_lock lock(mutex_);
    Slot &slot = slots_[name];
    const std::uint64_t version =
        slot.entry ? slot.entry->version + 1 : 1;
    slot.path.clear();
    slot.entry = std::make_shared<const ModelEntry>(name, version,
                                                    source, params);
}

std::shared_ptr<const ModelEntry>
ModelRegistry::find(std::string_view name) const
{
    std::shared_lock lock(mutex_);
    auto it = slots_.find(name);
    return it != slots_.end() ? it->second.entry : nullptr;
}

ModelRegistry::Reloaded
ModelRegistry::reload(const std::string &name,
                      const std::string &path_override)
{
    std::string path = path_override;
    std::uint64_t current = 0;
    {
        std::shared_lock lock(mutex_);
        auto it = slots_.find(name);
        if (it == slots_.end() && path.empty())
            return {false, "unknown model '" + name + "'", 0};
        if (it != slots_.end()) {
            current = it->second.entry ? it->second.entry->version : 0;
            if (path.empty())
                path = it->second.path;
        }
        if (path.empty()) {
            return {false,
                    "model '" + name +
                        "' has no backing file (give a path)",
                    current};
        }
    }

    // Load outside the lock: file I/O must not stall readers.
    const model::ParamsLoad load = model::tryLoadParams(path);
    if (!load.ok())
        return {false, load.error, current};

    std::unique_lock lock(mutex_);
    Slot &slot = slots_[name];
    const std::uint64_t version =
        slot.entry ? slot.entry->version + 1 : 1;
    slot.path = path;
    slot.entry = std::make_shared<const ModelEntry>(
        name, version, "file:" + path, *load.params);
    return {true, "", version};
}

std::vector<std::shared_ptr<const ModelEntry>>
ModelRegistry::list() const
{
    std::shared_lock lock(mutex_);
    std::vector<std::shared_ptr<const ModelEntry>> out;
    out.reserve(slots_.size());
    for (const auto &[name, slot] : slots_) {
        if (slot.entry)
            out.push_back(slot.entry);
    }
    return out;
}

std::size_t
ModelRegistry::size() const
{
    std::shared_lock lock(mutex_);
    return slots_.size();
}

} // namespace pccs::serve
