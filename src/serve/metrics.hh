/**
 * @file
 * Live observability of the prediction service: per-endpoint request
 * and error counters, latency histograms with percentile estimates,
 * and the predict batcher's batch-size distribution.
 *
 * Recording is lock-free and sharded: the hot path is a handful of
 * relaxed atomic increments on a cache-line-padded per-shard block
 * (shards are assigned per recording thread, so server shards never
 * contend), and the `stats` endpoint aggregates the shards into one
 * snapshot. Only requests whose op is not one of the fixed protocol
 * endpoints (a client typo'd op name, say) fall back to a per-shard
 * mutex-guarded overflow map — by definition a cold path.
 *
 * Latencies land in geometric (powers-of-two microseconds) buckets,
 * so recording is O(1) and percentiles are estimated by linear
 * interpolation inside the bucket that crosses the requested rank —
 * the standard monitoring-histogram trade: bounded memory, ~2x worst
 * case relative error, exact counts.
 *
 * Batch sizes get the same treatment: a log-bucket histogram always,
 * plus (only when debug stats are enabled — PCCS_SERVE_DEBUG_STATS=1
 * or `enableDebugSizes()`) the raw per-size map, which is unbounded
 * in cardinality and therefore kept out of every production `stats`
 * response.
 */

#ifndef PCCS_SERVE_METRICS_HH
#define PCCS_SERVE_METRICS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "runner/eval_cache.hh"
#include "serve/json.hh"

namespace pccs::serve {

/** Fixed-bucket log-scale histogram of microsecond latencies
 *  (plain, single-threaded; used for aggregation snapshots). */
class LatencyHistogram
{
  public:
    void record(double micros);

    std::uint64_t count() const { return count_; }

    /** Mean recorded latency, microseconds (0 when empty). */
    double meanMicros() const
    {
        return count_ > 0 ? sumMicros_ / static_cast<double>(count_)
                          : 0.0;
    }

    /** Largest recorded latency, microseconds. */
    double maxMicros() const { return maxMicros_; }

    /**
     * Estimated p-th percentile (p in [0, 100]), microseconds.
     * Interpolated within the crossing bucket; 0 when empty.
     */
    double percentileMicros(double p) const;

    /** Buckets cover [2^i, 2^(i+1)) microseconds. */
    static constexpr std::size_t kBuckets = 40;

    /** Add one bucket's worth of samples (shard aggregation). */
    void addBucket(std::size_t bucket, std::uint64_t n);

    /** Fold in a shard's running sum and max (shard aggregation). */
    void addSummary(double sum_micros, double max_micros);

    /** Fold another histogram into this one. */
    void merge(const LatencyHistogram &other);

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    double sumMicros_ = 0.0;
    double maxMicros_ = 0.0;
};

/** The fixed protocol endpoints, indexable for lock-free counters. */
enum class EndpointOp : unsigned {
    Predict,
    Corun,
    Place,
    Explore,
    Reload,
    Stats,
    Health,
    Shutdown,
    Schedule,
    Complete,
    SchedStats,
    /** Frames with no usable op (parse errors, oversized lines). */
    Frame,
    kCount
};

/** @return the fixed slot for `op`, or kCount for unknown names. */
EndpointOp endpointOpFromName(std::string_view op);

/** @return the wire name of a fixed endpoint slot. */
std::string_view endpointOpName(EndpointOp op);

/** Counters of one protocol endpoint (aggregation snapshot). */
struct EndpointCounters
{
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    LatencyHistogram latency;
};

/**
 * Thread-safe metrics registry of the service. One instance per
 * server; the `stats` endpoint renders it as JSON.
 */
class Metrics
{
  public:
    Metrics();

    /** Record one handled request (ok or error) and its latency;
     *  lock-free for the fixed endpoints. */
    void recordRequest(EndpointOp op, bool ok, double micros);

    /** Same, by op name — unknown names take the overflow map. */
    void recordRequest(std::string_view op, bool ok, double micros);

    /** Record one coalesced predict evaluation pass of `size`. */
    void recordBatch(std::size_t size);

    /** Total requests across all endpoints. */
    std::uint64_t totalRequests() const;

    /** Seconds since the metrics (i.e., the server) started. */
    double uptimeSeconds() const;

    /** Also collect (and report) the raw per-size batch map. Off by
     *  default; PCCS_SERVE_DEBUG_STATS=1 enables it at construction. */
    void enableDebugSizes(bool on) { debugSizes_.store(on); }
    bool debugSizesEnabled() const { return debugSizes_.load(); }

    /**
     * Render everything as the `stats` result object; `cache` is the
     * shared sweep-engine cache counters to report alongside.
     */
    Json toJson(const runner::CacheStats &cache) const;

    /** Recording shards; fixed, independent of server shard count. */
    static constexpr std::size_t kShards = 16;

    /**
     * Cap on distinct unknown-op names tracked per shard. Beyond it,
     * new names fold into one "other" bucket, so a client flooding
     * random op names cannot grow the overflow map unboundedly.
     */
    static constexpr std::size_t kMaxOverflowOps = 16;

  private:
    /** One endpoint's lock-free accumulator. */
    struct AtomicCounters
    {
        std::atomic<std::uint64_t> requests{0};
        std::atomic<std::uint64_t> errors{0};
        std::array<std::atomic<std::uint64_t>,
                   LatencyHistogram::kBuckets>
            latencyBuckets{};
        std::atomic<double> latencySum{0.0};
        std::atomic<double> latencyMax{0.0};
    };

    /** Batch-size log-bucket accumulator: [2^k, 2^(k+1)) passes. */
    static constexpr std::size_t kBatchBuckets = 32;

    struct alignas(64) Shard
    {
        std::array<AtomicCounters,
                   static_cast<std::size_t>(EndpointOp::kCount)>
            ops;
        std::array<std::atomic<std::uint64_t>, kBatchBuckets>
            batchBuckets{};
        std::atomic<std::uint64_t> batchPasses{0};
        std::atomic<std::uint64_t> batchRequests{0};
        std::atomic<std::uint64_t> batchLargest{0};

        /** Cold paths, each guarded per shard. */
        mutable std::mutex overflowMutex;
        std::map<std::string, EndpointCounters, std::less<>>
            overflow;
        mutable std::mutex sizesMutex;
        std::map<std::size_t, std::uint64_t> sizes;
    };

    Shard &localShard();

    std::array<Shard, kShards> shards_;
    std::atomic<bool> debugSizes_{false};
    std::chrono::steady_clock::time_point start_;
};

} // namespace pccs::serve

#endif // PCCS_SERVE_METRICS_HH
