/**
 * @file
 * Live observability of the prediction service: per-endpoint request
 * and error counters, latency histograms with percentile estimates,
 * and the predict batcher's batch-size distribution.
 *
 * Latencies land in geometric (powers-of-two microseconds) buckets,
 * so recording is O(1) and percentiles are estimated by linear
 * interpolation inside the bucket that crosses the requested rank —
 * the standard monitoring-histogram trade: bounded memory, ~2x worst
 * case relative error, exact counts.
 */

#ifndef PCCS_SERVE_METRICS_HH
#define PCCS_SERVE_METRICS_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "runner/eval_cache.hh"
#include "serve/json.hh"

namespace pccs::serve {

/** Fixed-bucket log-scale histogram of microsecond latencies. */
class LatencyHistogram
{
  public:
    void record(double micros);

    std::uint64_t count() const { return count_; }

    /** Mean recorded latency, microseconds (0 when empty). */
    double meanMicros() const
    {
        return count_ > 0 ? sumMicros_ / static_cast<double>(count_)
                          : 0.0;
    }

    /** Largest recorded latency, microseconds. */
    double maxMicros() const { return maxMicros_; }

    /**
     * Estimated p-th percentile (p in [0, 100]), microseconds.
     * Interpolated within the crossing bucket; 0 when empty.
     */
    double percentileMicros(double p) const;

  private:
    /** Buckets cover [2^i, 2^(i+1)) microseconds. */
    static constexpr std::size_t kBuckets = 40;

    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    double sumMicros_ = 0.0;
    double maxMicros_ = 0.0;
};

/** Counters of one protocol endpoint. */
struct EndpointCounters
{
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    LatencyHistogram latency;
};

/**
 * Thread-safe metrics registry of the service. One instance per
 * server; the `stats` endpoint renders it as JSON.
 */
class Metrics
{
  public:
    Metrics() : start_(std::chrono::steady_clock::now()) {}

    /** Record one handled request (ok or error) and its latency. */
    void recordRequest(const std::string &op, bool ok, double micros);

    /** Record one coalesced predict evaluation pass of `size`. */
    void recordBatch(std::size_t size);

    /** Total requests across all endpoints. */
    std::uint64_t totalRequests() const;

    /** Seconds since the metrics (i.e., the server) started. */
    double uptimeSeconds() const;

    /**
     * Render everything as the `stats` result object; `cache` is the
     * shared sweep-engine cache counters to report alongside.
     */
    Json toJson(const runner::CacheStats &cache) const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, EndpointCounters> endpoints_;
    /** batch size -> number of passes with that size. */
    std::map<std::size_t, std::uint64_t> batchSizes_;
    std::uint64_t batchedRequests_ = 0;
    std::chrono::steady_clock::time_point start_;
};

} // namespace pccs::serve

#endif // PCCS_SERVE_METRICS_HH
