/**
 * @file
 * The TCP front end of the prediction service: a sharded,
 * nonblocking epoll event loop.
 *
 * `PCCS_SERVE_SHARDS` (or ServerOptions::shards) worker shards each
 * run an independent epoll loop. The one listening socket is
 * registered in every shard's epoll with EPOLLEXCLUSIVE, so the
 * kernel spreads accepted connections across shards; a connection
 * then lives on its shard for its whole life (no cross-shard
 * handoff, no locks on the request path).
 *
 * Connections are slots in a per-shard slab (chunked, address-stable,
 * O(1) alloc/free with a free list); each slot's FrameBuffer and
 * output buffer keep their capacity across connections, so the
 * steady-state request path — readiness, read, frame reassembly,
 * dispatch, response write — allocates nothing. Each epoll drain
 * cycle gathers every complete frame from every ready connection
 * into ONE dispatcher batch (flat combining), so concurrent clients
 * coalesce into single SoA model-kernel calls.
 *
 * Backpressure and robustness rules (DESIGN.md section 13):
 *  - reads are edge-triggered with a per-cycle budget; connections
 *    with possibly-more-data are revisited next cycle, so one
 *    firehose client cannot starve the shard;
 *  - a partial write parks the remainder in the connection's output
 *    buffer and arms EPOLLOUT; once the parked output exceeds
 *    ServerOptions::maxPendingWriteBytes, reads from that connection
 *    pause until the peer drains — memory per connection is bounded
 *    by the frame limit plus the output cap;
 *  - oversized lines are discarded as they stream in (bounded input
 *    buffer) and answered with one error frame.
 *
 * Shutdown is graceful and race-free: `requestStop()` is
 * async-signal-safe (an eventfd write per shard), `serveForever()`
 * returns once stop is requested, and `stop()` finishes in-flight
 * batches, flushes parked responses (with a deadline), closes every
 * connection, and joins the shard threads.
 */

#ifndef PCCS_SERVE_SERVER_HH
#define PCCS_SERVE_SERVER_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hh"

namespace pccs::serve {

/** Listener configuration. */
struct ServerOptions
{
    /** Bind address; loopback by default (the service is a local
     *  sidecar, not an internet-facing daemon). */
    std::string host = "127.0.0.1";
    /** TCP port; 0 = let the kernel pick (see Server::port()). */
    std::uint16_t port = 0;
    /** Per-connection frame size limit, bytes. */
    std::size_t maxFrameBytes = 1 << 20;
    int backlog = 64;
    /** Event-loop shards; 0 = $PCCS_SERVE_SHARDS, else the hardware
     *  concurrency. */
    unsigned shards = 0;
    /** Parked-output cap per connection: beyond this, reads from the
     *  (slow, pipelining) peer pause until it drains responses. */
    std::size_t maxPendingWriteBytes = 4u << 20;
};

/** Newline-delimited-JSON-over-TCP server around a Dispatcher. */
class Server
{
  public:
    explicit Server(Dispatcher &dispatcher, ServerOptions options = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and start the shard event loops.
     * @return true on success; else false with a diagnostic in *error
     */
    bool start(std::string *error = nullptr);

    /** The bound port (resolves ephemeral binds); 0 before start(). */
    std::uint16_t port() const { return port_; }

    /** Ask the server to stop; safe from any thread and from signal
     *  handlers. Returns immediately. */
    void requestStop();

    /** @return true once requestStop() was called. */
    bool stopRequested() const;

    /** Block until requestStop(), then tear everything down. */
    void serveForever();

    /** Stop accepting, drain in-flight work, join all shards. */
    void stop();

    /** Connections accepted so far. */
    std::uint64_t connectionsAccepted() const
    {
        return connectionsAccepted_.load();
    }

    /** The number of event-loop shards actually running. */
    unsigned shardCount() const
    {
        return static_cast<unsigned>(shardCount_);
    }

  private:
    /** One connection slot of a shard's slab. */
    struct Conn
    {
        int fd = -1;
        /** Bumped on close; stale epoll events carry the old one. */
        std::uint32_t gen = 0;
        bool inUse = false;
        /** EPOLLOUT armed (output parked). */
        bool wantWrite = false;
        /** Reads paused: parked output exceeded the cap. */
        bool paused = false;
        /** Close once the parked output drains. */
        bool closing = false;
        /** Peer half-closed; finish responses, then close. */
        bool eof = false;
        /** Queued in pendingReads (dedup flag). */
        bool queuedRead = false;
        /** Last cycle this conn was drained (one read per cycle, so
         *  a second feed can't invalidate already-gathered views). */
        std::uint64_t lastRead = 0;
        FrameBuffer frames;
        /** Parked output: [outPos, out.size()) awaits the socket. */
        std::string out;
        std::size_t outPos = 0;

        explicit Conn(std::size_t max_frame)
            : frames(max_frame)
        {
        }
    };

    /** Slab chunk size: slot i lives in chunks[i / 256][i % 256]. */
    static constexpr std::size_t kChunk = 256;

    /** One event loop: epoll instance, wake eventfd, connection
     *  slab, and the per-cycle batch state. */
    struct Shard
    {
        std::size_t index = 0;
        int epollFd = -1;
        int wakeFd = -1;
        std::thread thread;

        std::vector<std::unique_ptr<std::vector<Conn>>> chunks;
        std::vector<std::uint32_t> freeSlots;

        /** @name per-cycle state (capacity reused forever) @{ */
        Dispatcher::Scratch scratch;
        std::vector<FrameBuffer::View> views;
        /** (slot, gen, frame count) per contributing connection. */
        struct Source
        {
            std::uint32_t slot;
            std::uint32_t gen;
            std::uint32_t frames;
        };
        std::vector<Source> sources;
        /** Budget-capped connections to re-read next cycle. */
        std::vector<std::uint32_t> pendingReads;
        /** Slots closed this cycle; recycled only after dispatch,
         *  because gathered views may point into their buffers. */
        std::vector<std::uint32_t> deadSlots;
        /** Drain-cycle counter (pairs with Conn::lastRead). */
        std::uint64_t cycle = 0;
        /** @} */
    };

    void shardLoop(Shard &shard);
    void acceptReady(Shard &shard);
    Conn &connAt(Shard &shard, std::uint32_t slot);
    std::uint32_t allocSlot(Shard &shard);
    void closeConn(Shard &shard, std::uint32_t slot);
    /** Read until EAGAIN or budget; gather complete frames. */
    void readReady(Shard &shard, std::uint32_t slot);
    /** Collect the slot's complete frames into the cycle batch.
     *  @return how many frames this slot contributed */
    std::uint32_t gatherFrames(Shard &shard, std::uint32_t slot);
    /** Run the cycle's batch and route responses to their conns. */
    void dispatchCycle(Shard &shard);
    /** Write (direct first, then park + arm EPOLLOUT). */
    void sendOrPark(Shard &shard, std::uint32_t slot,
                    const char *data, std::size_t len);
    /** Drain parked output; disarm/close/unpause as it empties. */
    void flushParked(Shard &shard, std::uint32_t slot);
    void updateInterest(Shard &shard, std::uint32_t slot);
    void queueRead(Shard &shard, std::uint32_t slot);
    /** Best-effort blocking flush of parked output at shutdown. */
    void drainAtExit(Shard &shard);

    Dispatcher &dispatcher_;
    ServerOptions options_;
    int listenFd_ = -1;
    /** Self-pipe for serveForever(); written by requestStop(). */
    int stopPipe_[2] = {-1, -1};
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> connectionsAccepted_{0};

    static constexpr std::size_t kMaxShards = 64;
    std::size_t shardCount_ = 0;
    /** Shard wake eventfds, fixed storage so requestStop() can walk
     *  it from a signal handler. */
    std::array<int, kMaxShards> wakeFds_{};
    std::vector<std::unique_ptr<Shard>> shards_;

    std::mutex stopMutex_;
    bool stopped_ = false;
};

} // namespace pccs::serve

#endif // PCCS_SERVE_SERVER_HH
