/**
 * @file
 * The TCP front end of the prediction service.
 *
 * A plain BSD-socket loop: one accept thread, one thread per
 * connection, newline-delimited JSON frames reassembled by
 * `FrameBuffer` and executed by the shared `Dispatcher`. Binding to
 * port 0 picks an ephemeral port (reported by `port()`), which the
 * tests and the throughput bench rely on.
 *
 * Shutdown is graceful and race-free: `requestStop()` is
 * async-signal-safe (a byte down a self-pipe), `serveForever()`
 * returns once stop is requested, and `stop()` closes the listener,
 * half-closes every connection (SHUT_RD), and joins — in-flight
 * requests finish and their responses are written before the
 * connection threads exit.
 */

#ifndef PCCS_SERVE_SERVER_HH
#define PCCS_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hh"

namespace pccs::serve {

/** Listener configuration. */
struct ServerOptions
{
    /** Bind address; loopback by default (the service is a local
     *  sidecar, not an internet-facing daemon). */
    std::string host = "127.0.0.1";
    /** TCP port; 0 = let the kernel pick (see Server::port()). */
    std::uint16_t port = 0;
    /** Per-connection frame size limit, bytes. */
    std::size_t maxFrameBytes = 1 << 20;
    int backlog = 64;
};

/** Newline-delimited-JSON-over-TCP server around a Dispatcher. */
class Server
{
  public:
    explicit Server(Dispatcher &dispatcher, ServerOptions options = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and start accepting.
     * @return true on success; else false with a diagnostic in *error
     */
    bool start(std::string *error = nullptr);

    /** The bound port (resolves ephemeral binds); 0 before start(). */
    std::uint16_t port() const { return port_; }

    /** Ask the server to stop; safe from any thread and from signal
     *  handlers. Returns immediately. */
    void requestStop();

    /** @return true once requestStop() was called. */
    bool stopRequested() const;

    /** Block until requestStop(), then tear everything down. */
    void serveForever();

    /** Stop accepting, drain connections, join all threads. */
    void stop();

    /** Connections accepted so far. */
    std::uint64_t connectionsAccepted() const
    {
        return connectionsAccepted_.load();
    }

  private:
    void acceptLoop();
    void reapFinishedLocked();

    struct Connection
    {
        int fd = -1;
        std::atomic<bool> done{false};
        std::thread thread;
    };

    Dispatcher &dispatcher_;
    ServerOptions options_;
    int listenFd_ = -1;
    int wakePipe_[2] = {-1, -1};
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> connectionsAccepted_{0};

    std::mutex connMutex_;
    std::vector<std::unique_ptr<Connection>> connections_;
    std::thread acceptThread_;
};

} // namespace pccs::serve

#endif // PCCS_SERVE_SERVER_HH
