/**
 * @file
 * A small, dependency-free JSON value type with a strict parser and a
 * compact writer — the wire format of the prediction service.
 *
 * The repo so far only *wrote* JSON (runner/run_spec artifacts); the
 * serve subsystem also has to *read* it, so this file adds the
 * parser. It is deliberately strict (RFC 8259): no trailing commas,
 * no comments, no leading zeros, no bare control characters inside
 * strings. Parse failures carry a message and the byte offset, and a
 * configurable nesting-depth limit keeps adversarial frames
 * ("[[[[[...") from overflowing the stack.
 *
 * Objects preserve insertion order and use linear lookup — protocol
 * messages have a handful of keys, so a map would only cost locality.
 */

#ifndef PCCS_SERVE_JSON_HH
#define PCCS_SERVE_JSON_HH

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace pccs::serve {

class Json;

/** Array of JSON values. */
using JsonArray = std::vector<Json>;

/** Insertion-ordered object; keys are not deduplicated on insert. */
using JsonObject = std::vector<std::pair<std::string, Json>>;

/** One JSON value (null, bool, number, string, array, or object). */
class Json
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Json() : value_(nullptr) {}
    Json(std::nullptr_t) : value_(nullptr) {}
    Json(bool b) : value_(b) {}
    Json(double v) : value_(v) {}
    Json(int v) : value_(static_cast<double>(v)) {}
    Json(unsigned v) : value_(static_cast<double>(v)) {}
    Json(long v) : value_(static_cast<double>(v)) {}
    Json(unsigned long v) : value_(static_cast<double>(v)) {}
    Json(unsigned long long v) : value_(static_cast<double>(v)) {}
    Json(const char *s) : value_(std::string(s)) {}
    Json(std::string s) : value_(std::move(s)) {}
    Json(JsonArray a) : value_(std::move(a)) {}
    Json(JsonObject o) : value_(std::move(o)) {}

    /** @return an empty array value. */
    static Json array() { return Json(JsonArray{}); }

    /** @return an empty object value. */
    static Json object() { return Json(JsonObject{}); }

    Kind kind() const { return static_cast<Kind>(value_.index()); }

    bool isNull() const { return kind() == Kind::Null; }
    bool isBool() const { return kind() == Kind::Bool; }
    bool isNumber() const { return kind() == Kind::Number; }
    bool isString() const { return kind() == Kind::String; }
    bool isArray() const { return kind() == Kind::Array; }
    bool isObject() const { return kind() == Kind::Object; }

    /** @return the bool payload, or `fallback` for other kinds. */
    bool asBool(bool fallback = false) const
    {
        return isBool() ? std::get<bool>(value_) : fallback;
    }

    /** @return the number payload, or `fallback` for other kinds. */
    double asNumber(double fallback = 0.0) const
    {
        return isNumber() ? std::get<double>(value_) : fallback;
    }

    /** @return the string payload; empty for other kinds. */
    const std::string &asString() const;

    /** @return the array items; empty for other kinds. */
    const JsonArray &asArray() const;

    /** @return the object members; empty for other kinds. */
    const JsonObject &asObject() const;

    /**
     * @return the value of the first member named `key`, or nullptr
     *         when absent or when this value is not an object.
     */
    const Json *find(std::string_view key) const;

    /** Append/overwrite an object member (makes this an object). */
    void set(std::string key, Json value);

    /** Append an array element (makes this an array). */
    void push(Json value);

    /** Render compactly on one line (never emits raw newlines). */
    std::string dump() const;

    /**
     * Append the compact rendering to `out` (same bytes as dump()).
     * The zero-allocation serve path reuses one output buffer per
     * connection, so the writer must not allocate a fresh string.
     */
    void dumpTo(std::string &out) const;

    /** Structural deep equality (numbers compare by value). */
    bool operator==(const Json &other) const = default;

  private:
    std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
                 JsonObject>
        value_;
};

/** Knobs bounding what the parser accepts. */
struct JsonLimits
{
    /** Maximum container nesting depth. */
    std::size_t maxDepth = 64;
};

/** Outcome of a parse: a value, or a diagnostic with its offset. */
struct JsonParse
{
    std::optional<Json> value;
    /** Parse diagnostic; empty on success. */
    std::string error;
    /** Byte offset the diagnostic refers to. */
    std::size_t offset = 0;

    bool ok() const { return value.has_value(); }
};

/**
 * Parse one complete JSON document. Leading/trailing whitespace is
 * allowed; anything else after the document is an error.
 */
JsonParse parseJson(std::string_view text, const JsonLimits &limits = {});

} // namespace pccs::serve

#endif // PCCS_SERVE_JSON_HH
