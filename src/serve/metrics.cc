#include "metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace pccs::serve {

namespace {

/** Index of the bucket covering `micros`: floor(log2), clamped. */
std::size_t
bucketIndex(double micros, std::size_t buckets)
{
    if (!(micros >= 1.0))
        return 0;
    const int e = std::ilogb(micros);
    return std::min<std::size_t>(static_cast<std::size_t>(e),
                                 buckets - 1);
}

/** Relaxed-atomic running maximum of a double. */
void
atomicMax(std::atomic<double> &slot, double v)
{
    double seen = slot.load(std::memory_order_relaxed);
    while (v > seen &&
           !slot.compare_exchange_weak(seen, v,
                                       std::memory_order_relaxed)) {
    }
}

} // namespace

void
LatencyHistogram::record(double micros)
{
    if (!(micros >= 0.0) || !std::isfinite(micros))
        micros = 0.0;
    ++buckets_[bucketIndex(micros, kBuckets)];
    ++count_;
    sumMicros_ += micros;
    maxMicros_ = std::max(maxMicros_, micros);
}

void
LatencyHistogram::addBucket(std::size_t bucket, std::uint64_t n)
{
    if (bucket < kBuckets)
        buckets_[bucket] += n;
    count_ += n;
}

void
LatencyHistogram::addSummary(double sum_micros, double max_micros)
{
    sumMicros_ += sum_micros;
    maxMicros_ = std::max(maxMicros_, max_micros);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (std::size_t i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sumMicros_ += other.sumMicros_;
    maxMicros_ = std::max(maxMicros_, other.maxMicros_);
}

double
LatencyHistogram::percentileMicros(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Rank of the requested percentile (1-based, nearest-rank).
    const double rank =
        std::max(1.0, std::ceil(p / 100.0 *
                                static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        if (buckets_[i] == 0)
            continue;
        const double before = static_cast<double>(seen);
        seen += buckets_[i];
        if (static_cast<double>(seen) < rank)
            continue;
        // Interpolate within [2^i, 2^(i+1)) by the rank's position
        // among this bucket's samples.
        const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
        const double hi = std::ldexp(1.0, static_cast<int>(i) + 1);
        const double frac =
            (rank - before) / static_cast<double>(buckets_[i]);
        return std::min(lo + (hi - lo) * frac, maxMicros_);
    }
    return maxMicros_;
}

EndpointOp
endpointOpFromName(std::string_view op)
{
    switch (op.empty() ? '\0' : op.front()) {
      case 'p':
        if (op == "predict")
            return EndpointOp::Predict;
        if (op == "place")
            return EndpointOp::Place;
        break;
      case 'c':
        if (op == "corun")
            return EndpointOp::Corun;
        if (op == "complete")
            return EndpointOp::Complete;
        break;
      case 'e':
        if (op == "explore")
            return EndpointOp::Explore;
        break;
      case 'r':
        if (op == "reload")
            return EndpointOp::Reload;
        break;
      case 's':
        if (op == "stats")
            return EndpointOp::Stats;
        if (op == "shutdown")
            return EndpointOp::Shutdown;
        if (op == "schedule")
            return EndpointOp::Schedule;
        if (op == "sched_stats")
            return EndpointOp::SchedStats;
        break;
      case 'h':
        if (op == "health")
            return EndpointOp::Health;
        break;
      case '_':
        if (op == "_frame")
            return EndpointOp::Frame;
        break;
      default:
        break;
    }
    return EndpointOp::kCount;
}

std::string_view
endpointOpName(EndpointOp op)
{
    switch (op) {
      case EndpointOp::Predict:
        return "predict";
      case EndpointOp::Corun:
        return "corun";
      case EndpointOp::Place:
        return "place";
      case EndpointOp::Explore:
        return "explore";
      case EndpointOp::Reload:
        return "reload";
      case EndpointOp::Stats:
        return "stats";
      case EndpointOp::Health:
        return "health";
      case EndpointOp::Shutdown:
        return "shutdown";
      case EndpointOp::Schedule:
        return "schedule";
      case EndpointOp::Complete:
        return "complete";
      case EndpointOp::SchedStats:
        return "sched_stats";
      case EndpointOp::Frame:
      case EndpointOp::kCount:
        break;
    }
    return "_frame";
}

Metrics::Metrics() : start_(std::chrono::steady_clock::now())
{
    const char *env = std::getenv("PCCS_SERVE_DEBUG_STATS");
    if (env != nullptr && env[0] != '\0' && env[0] != '0')
        debugSizes_.store(true);
}

Metrics::Shard &
Metrics::localShard()
{
    // Each recording thread sticks to one shard for its lifetime;
    // round-robin assignment spreads server shards across blocks.
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t mine =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return shards_[mine];
}

void
Metrics::recordRequest(EndpointOp op, bool ok, double micros)
{
    if (op == EndpointOp::kCount)
        op = EndpointOp::Frame;
    if (!(micros >= 0.0) || !std::isfinite(micros))
        micros = 0.0;
    Shard &shard = localShard();
    AtomicCounters &c = shard.ops[static_cast<std::size_t>(op)];
    c.requests.fetch_add(1, std::memory_order_relaxed);
    if (!ok)
        c.errors.fetch_add(1, std::memory_order_relaxed);
    c.latencyBuckets[bucketIndex(micros,
                                 LatencyHistogram::kBuckets)]
        .fetch_add(1, std::memory_order_relaxed);
    c.latencySum.fetch_add(micros, std::memory_order_relaxed);
    atomicMax(c.latencyMax, micros);
}

void
Metrics::recordRequest(std::string_view op, bool ok, double micros)
{
    const EndpointOp fixed = endpointOpFromName(op);
    if (fixed != EndpointOp::kCount) {
        recordRequest(fixed, ok, micros);
        return;
    }
    // Unknown op name (client typo): the cold mutex-guarded map,
    // bounded at kMaxOverflowOps distinct names per shard — names
    // beyond the cap share the "other" bucket, so a flood of random
    // ops costs one map entry, not one per name.
    Shard &shard = localShard();
    std::lock_guard lock(shard.overflowMutex);
    auto it = shard.overflow.find(op);
    if (it == shard.overflow.end()) {
        if (shard.overflow.size() >= kMaxOverflowOps)
            it = shard.overflow
                     .emplace("other", EndpointCounters{})
                     .first;
        else
            it = shard.overflow
                     .emplace(std::string(op), EndpointCounters{})
                     .first;
    }
    EndpointCounters &c = it->second;
    ++c.requests;
    if (!ok)
        ++c.errors;
    c.latency.record(micros);
}

void
Metrics::recordBatch(std::size_t size)
{
    if (size == 0)
        return;
    Shard &shard = localShard();
    std::size_t bucket = 0;
    while (bucket + 1 < kBatchBuckets &&
           (std::size_t{2} << bucket) <= size)
        ++bucket;
    shard.batchBuckets[bucket].fetch_add(1,
                                         std::memory_order_relaxed);
    shard.batchPasses.fetch_add(1, std::memory_order_relaxed);
    shard.batchRequests.fetch_add(size, std::memory_order_relaxed);
    std::uint64_t seen =
        shard.batchLargest.load(std::memory_order_relaxed);
    while (size > seen &&
           !shard.batchLargest.compare_exchange_weak(
               seen, size, std::memory_order_relaxed)) {
    }
    if (debugSizes_.load(std::memory_order_relaxed)) {
        std::lock_guard lock(shard.sizesMutex);
        ++shard.sizes[size];
    }
}

std::uint64_t
Metrics::totalRequests() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_) {
        for (const AtomicCounters &c : shard.ops)
            total += c.requests.load(std::memory_order_relaxed);
        std::lock_guard lock(shard.overflowMutex);
        for (const auto &[op, c] : shard.overflow)
            total += c.requests;
    }
    return total;
}

double
Metrics::uptimeSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

Json
Metrics::toJson(const runner::CacheStats &cache) const
{
    // Aggregate the shards into plain snapshots first (insertion
    // into the ordered map keeps the endpoint listing alphabetical,
    // matching the pre-sharding wire shape).
    std::map<std::string, EndpointCounters> endpointTotals;
    for (const Shard &shard : shards_) {
        for (std::size_t op = 0;
             op < static_cast<std::size_t>(EndpointOp::kCount);
             ++op) {
            const AtomicCounters &c = shard.ops[op];
            const std::uint64_t requests =
                c.requests.load(std::memory_order_relaxed);
            if (requests == 0)
                continue;
            EndpointCounters &total = endpointTotals[std::string(
                endpointOpName(static_cast<EndpointOp>(op)))];
            total.requests += requests;
            total.errors +=
                c.errors.load(std::memory_order_relaxed);
            for (std::size_t b = 0;
                 b < LatencyHistogram::kBuckets; ++b) {
                const std::uint64_t n =
                    c.latencyBuckets[b].load(
                        std::memory_order_relaxed);
                if (n > 0)
                    total.latency.addBucket(b, n);
            }
            total.latency.addSummary(
                c.latencySum.load(std::memory_order_relaxed),
                c.latencyMax.load(std::memory_order_relaxed));
        }
        std::lock_guard lock(shard.overflowMutex);
        for (const auto &[op, c] : shard.overflow) {
            EndpointCounters &total = endpointTotals[op];
            total.requests += c.requests;
            total.errors += c.errors;
            total.latency.merge(c.latency);
        }
    }

    Json endpoints = Json::object();
    for (const auto &[op, c] : endpointTotals) {
        Json latency = Json::object();
        latency.set("meanUs", c.latency.meanMicros());
        latency.set("p50Us", c.latency.percentileMicros(50.0));
        latency.set("p95Us", c.latency.percentileMicros(95.0));
        latency.set("p99Us", c.latency.percentileMicros(99.0));
        latency.set("maxUs", c.latency.maxMicros());

        Json entry = Json::object();
        entry.set("requests", c.requests);
        entry.set("errors", c.errors);
        entry.set("latency", std::move(latency));
        endpoints.set(op, std::move(entry));
    }

    // Batch-size distribution: powers-of-two buckets always; the raw
    // per-size map only when debug stats are on (93 distinct sizes in
    // a production run would bloat every stats response for data the
    // histogram already carries).
    std::uint64_t passes = 0, batched = 0, largest = 0;
    std::array<std::uint64_t, kBatchBuckets> histogram{};
    std::map<std::size_t, std::uint64_t> rawSizes;
    for (const Shard &shard : shards_) {
        passes += shard.batchPasses.load(std::memory_order_relaxed);
        batched +=
            shard.batchRequests.load(std::memory_order_relaxed);
        largest = std::max(
            largest,
            shard.batchLargest.load(std::memory_order_relaxed));
        for (std::size_t b = 0; b < kBatchBuckets; ++b)
            histogram[b] +=
                shard.batchBuckets[b].load(
                    std::memory_order_relaxed);
        if (debugSizes_.load(std::memory_order_relaxed)) {
            std::lock_guard lock(shard.sizesMutex);
            for (const auto &[size, n] : shard.sizes)
                rawSizes[size] += n;
        }
    }
    Json buckets = Json::object();
    for (std::size_t b = 0; b < kBatchBuckets; ++b) {
        if (histogram[b] == 0)
            continue;
        const std::size_t lo = std::size_t{1} << b;
        const std::size_t hi = (std::size_t{2} << b) - 1;
        const std::string label =
            lo == hi ? std::to_string(lo)
                     : std::to_string(lo) + "-" + std::to_string(hi);
        buckets.set(label, histogram[b]);
    }
    Json batches = Json::object();
    batches.set("passes", passes);
    batches.set("requests", batched);
    batches.set("largest", largest);
    batches.set("meanSize",
                passes > 0 ? static_cast<double>(batched) /
                                 static_cast<double>(passes)
                           : 0.0);
    batches.set("histogram", std::move(buckets));
    if (debugSizes_.load(std::memory_order_relaxed)) {
        Json sizes = Json::object();
        for (const auto &[size, n] : rawSizes)
            sizes.set(std::to_string(size), n);
        batches.set("sizes", std::move(sizes));
    }

    Json cacheJson = Json::object();
    cacheJson.set("hits", cache.hits);
    cacheJson.set("misses", cache.misses);
    cacheJson.set("hitRate", cache.hitRate());

    Json out = Json::object();
    out.set("uptimeSeconds", uptimeSeconds());
    out.set("endpoints", std::move(endpoints));
    out.set("batches", std::move(batches));
    out.set("cache", std::move(cacheJson));
    return out;
}

} // namespace pccs::serve
