#include "metrics.hh"

#include <algorithm>
#include <cmath>

namespace pccs::serve {

namespace {

/** Index of the bucket covering `micros`: floor(log2), clamped. */
std::size_t
bucketIndex(double micros, std::size_t buckets)
{
    if (!(micros >= 1.0))
        return 0;
    const int e = std::ilogb(micros);
    return std::min<std::size_t>(static_cast<std::size_t>(e),
                                 buckets - 1);
}

} // namespace

void
LatencyHistogram::record(double micros)
{
    if (!(micros >= 0.0) || !std::isfinite(micros))
        micros = 0.0;
    ++buckets_[bucketIndex(micros, kBuckets)];
    ++count_;
    sumMicros_ += micros;
    maxMicros_ = std::max(maxMicros_, micros);
}

double
LatencyHistogram::percentileMicros(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Rank of the requested percentile (1-based, nearest-rank).
    const double rank =
        std::max(1.0, std::ceil(p / 100.0 *
                                static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        if (buckets_[i] == 0)
            continue;
        const double before = static_cast<double>(seen);
        seen += buckets_[i];
        if (static_cast<double>(seen) < rank)
            continue;
        // Interpolate within [2^i, 2^(i+1)) by the rank's position
        // among this bucket's samples.
        const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
        const double hi = std::ldexp(1.0, static_cast<int>(i) + 1);
        const double frac =
            (rank - before) / static_cast<double>(buckets_[i]);
        return std::min(lo + (hi - lo) * frac, maxMicros_);
    }
    return maxMicros_;
}

void
Metrics::recordRequest(const std::string &op, bool ok, double micros)
{
    std::lock_guard lock(mutex_);
    EndpointCounters &c = endpoints_[op];
    ++c.requests;
    if (!ok)
        ++c.errors;
    c.latency.record(micros);
}

void
Metrics::recordBatch(std::size_t size)
{
    if (size == 0)
        return;
    std::lock_guard lock(mutex_);
    ++batchSizes_[size];
    batchedRequests_ += size;
}

std::uint64_t
Metrics::totalRequests() const
{
    std::lock_guard lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &[op, c] : endpoints_)
        total += c.requests;
    return total;
}

double
Metrics::uptimeSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

Json
Metrics::toJson(const runner::CacheStats &cache) const
{
    std::lock_guard lock(mutex_);

    Json endpoints = Json::object();
    for (const auto &[op, c] : endpoints_) {
        Json latency = Json::object();
        latency.set("meanUs", c.latency.meanMicros());
        latency.set("p50Us", c.latency.percentileMicros(50.0));
        latency.set("p95Us", c.latency.percentileMicros(95.0));
        latency.set("p99Us", c.latency.percentileMicros(99.0));
        latency.set("maxUs", c.latency.maxMicros());

        Json entry = Json::object();
        entry.set("requests", c.requests);
        entry.set("errors", c.errors);
        entry.set("latency", std::move(latency));
        endpoints.set(op, std::move(entry));
    }

    Json sizes = Json::object();
    std::uint64_t passes = 0;
    std::size_t largest = 0;
    // Geometric (powers-of-two) buckets of the achieved batch sizes:
    // bucket k counts passes whose size fell in [2^k, 2^(k+1)), so
    // the batching win of the flat-combining predict batcher stays
    // observable in production without unbounded per-size cardinality.
    std::map<std::size_t, std::uint64_t> histogram;
    for (const auto &[size, n] : batchSizes_) {
        sizes.set(std::to_string(size), n);
        passes += n;
        largest = std::max(largest, size);
        std::size_t bucket = 0;
        while ((std::size_t{2} << bucket) <= size)
            ++bucket;
        histogram[bucket] += n;
    }
    Json buckets = Json::object();
    for (const auto &[bucket, n] : histogram) {
        const std::size_t lo = std::size_t{1} << bucket;
        const std::size_t hi = (std::size_t{2} << bucket) - 1;
        const std::string label =
            lo == hi ? std::to_string(lo)
                     : std::to_string(lo) + "-" + std::to_string(hi);
        buckets.set(label, n);
    }
    Json batches = Json::object();
    batches.set("passes", passes);
    batches.set("requests", batchedRequests_);
    batches.set("largest", largest);
    batches.set("meanSize",
                passes > 0 ? static_cast<double>(batchedRequests_) /
                                 static_cast<double>(passes)
                           : 0.0);
    batches.set("histogram", std::move(buckets));
    batches.set("sizes", std::move(sizes));

    Json cacheJson = Json::object();
    cacheJson.set("hits", cache.hits);
    cacheJson.set("misses", cache.misses);
    cacheJson.set("hitRate", cache.hitRate());

    Json out = Json::object();
    out.set("uptimeSeconds", uptimeSeconds());
    out.set("endpoints", std::move(endpoints));
    out.set("batches", std::move(batches));
    out.set("cache", std::move(cacheJson));
    return out;
}

} // namespace pccs::serve
