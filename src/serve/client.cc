#include "client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pccs::serve {

namespace {

Json
localError(const std::string &message)
{
    Json out = Json::object();
    out.set("ok", Json(false));
    out.set("error", Json(message));
    return out;
}

} // namespace

TcpClient::~TcpClient()
{
    close();
}

bool
TcpClient::connectTo(const std::string &host, std::uint16_t port,
                     std::string *error)
{
    close();

    auto failWith = [&](const std::string &message) {
        if (error != nullptr)
            *error = message + ": " + std::strerror(errno);
        close();
        return false;
    };

    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0)
        return failWith("cannot create socket");

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        errno = EINVAL;
        return failWith("bad address '" + host + "'");
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        return failWith("cannot connect to " + host + ":" +
                        std::to_string(port));
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
}

void
TcpClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    inbuf_.clear();
}

bool
TcpClient::sendLine(const std::string &line)
{
    std::string wire = line;
    wire += '\n';
    return sendRaw(wire.data(), wire.size());
}

bool
TcpClient::sendRaw(const char *data, std::size_t n)
{
    if (fd_ < 0)
        return false;
    while (n > 0) {
        const ssize_t sent = ::send(fd_, data, n, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += sent;
        n -= static_cast<std::size_t>(sent);
    }
    return true;
}

std::optional<std::string>
TcpClient::recvLine()
{
    if (fd_ < 0)
        return std::nullopt;
    for (;;) {
        const std::size_t eol = inbuf_.find('\n');
        if (eol != std::string::npos) {
            std::string line = inbuf_.substr(0, eol);
            inbuf_.erase(0, eol + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return line;
        }
        char buf[16 * 1024];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n == 0)
            return std::nullopt;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return std::nullopt;
        }
        inbuf_.append(buf, static_cast<std::size_t>(n));
    }
}

Json
TcpClient::request(const Json &message)
{
    if (!sendLine(message.dump()))
        return localError("send failed (connection lost?)");
    const std::optional<std::string> line = recvLine();
    if (!line.has_value())
        return localError("connection closed before a response");
    const JsonParse parsed = parseJson(*line);
    if (!parsed.ok())
        return localError("unparseable response: " + parsed.error);
    return *parsed.value;
}

} // namespace pccs::serve
