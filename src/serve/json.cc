#include "json.hh"

#include <cstdio>
#include <cstdlib>

#include "runner/run_spec.hh"

namespace pccs::serve {

const std::string &
Json::asString() const
{
    static const std::string empty;
    return isString() ? std::get<std::string>(value_) : empty;
}

const JsonArray &
Json::asArray() const
{
    static const JsonArray empty;
    return isArray() ? std::get<JsonArray>(value_) : empty;
}

const JsonObject &
Json::asObject() const
{
    static const JsonObject empty;
    return isObject() ? std::get<JsonObject>(value_) : empty;
}

const Json *
Json::find(std::string_view key) const
{
    if (!isObject())
        return nullptr;
    for (const auto &[k, v] : std::get<JsonObject>(value_)) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

void
Json::set(std::string key, Json value)
{
    if (!isObject())
        value_ = JsonObject{};
    auto &members = std::get<JsonObject>(value_);
    for (auto &[k, v] : members) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    members.emplace_back(std::move(key), std::move(value));
}

void
Json::push(Json value)
{
    if (!isArray())
        value_ = JsonArray{};
    std::get<JsonArray>(value_).push_back(std::move(value));
}

namespace {

void
dumpTo(const Json &v, std::string &out)
{
    switch (v.kind()) {
      case Json::Kind::Null:
        out += "null";
        break;
      case Json::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        break;
      case Json::Kind::Number:
        out += runner::jsonNumber(v.asNumber());
        break;
      case Json::Kind::String:
        out += '"';
        out += runner::jsonEscape(v.asString());
        out += '"';
        break;
      case Json::Kind::Array: {
        out += '[';
        bool first = true;
        for (const Json &item : v.asArray()) {
            if (!first)
                out += ',';
            first = false;
            dumpTo(item, out);
        }
        out += ']';
        break;
      }
      case Json::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[key, value] : v.asObject()) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += runner::jsonEscape(key);
            out += "\":";
            dumpTo(value, out);
        }
        out += '}';
        break;
      }
    }
}

/** Recursive-descent parser over a string_view. */
class Parser
{
  public:
    Parser(std::string_view text, const JsonLimits &limits)
        : text_(text), limits_(limits)
    {
    }

    JsonParse parse()
    {
        JsonParse result;
        Json value;
        if (!parseValue(value, 0)) {
            result.error = error_;
            result.offset = errorOffset_;
            return result;
        }
        skipWhitespace();
        if (pos_ != text_.size()) {
            result.error = "trailing characters after the document";
            result.offset = pos_;
            return result;
        }
        result.value = std::move(value);
        return result;
    }

  private:
    bool fail(std::string message)
    {
        // Keep the first (innermost) diagnostic.
        if (error_.empty()) {
            error_ = std::move(message);
            errorOffset_ = pos_;
        }
        return false;
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool atEnd() const { return pos_ >= text_.size(); }

    char peek() const { return text_[pos_]; }

    bool consumeLiteral(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("invalid literal");
        pos_ += word.size();
        return true;
    }

    bool parseValue(Json &out, std::size_t depth)
    {
        skipWhitespace();
        if (atEnd())
            return fail("unexpected end of input");
        switch (peek()) {
          case 'n':
            if (!consumeLiteral("null"))
                return false;
            out = Json();
            return true;
          case 't':
            if (!consumeLiteral("true"))
                return false;
            out = Json(true);
            return true;
          case 'f':
            if (!consumeLiteral("false"))
                return false;
            out = Json(false);
            return true;
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
          }
          case '[':
            return parseArray(out, depth);
          case '{':
            return parseObject(out, depth);
          default:
            return parseNumber(out);
        }
    }

    bool parseArray(Json &out, std::size_t depth)
    {
        if (depth >= limits_.maxDepth)
            return fail("nesting depth limit exceeded");
        ++pos_; // '['
        JsonArray items;
        skipWhitespace();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            out = Json(std::move(items));
            return true;
        }
        while (true) {
            Json item;
            if (!parseValue(item, depth + 1))
                return false;
            items.push_back(std::move(item));
            skipWhitespace();
            if (atEnd())
                return fail("unterminated array");
            const char c = text_[pos_];
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                out = Json(std::move(items));
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool parseObject(Json &out, std::size_t depth)
    {
        if (depth >= limits_.maxDepth)
            return fail("nesting depth limit exceeded");
        ++pos_; // '{'
        JsonObject members;
        skipWhitespace();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            out = Json(std::move(members));
            return true;
        }
        while (true) {
            skipWhitespace();
            if (atEnd() || peek() != '"')
                return fail("expected a string key in object");
            std::string key;
            if (!parseString(key))
                return false;
            skipWhitespace();
            if (atEnd() || peek() != ':')
                return fail("expected ':' after object key");
            ++pos_;
            Json value;
            if (!parseValue(value, depth + 1))
                return false;
            members.emplace_back(std::move(key), std::move(value));
            skipWhitespace();
            if (atEnd())
                return fail("unterminated object");
            const char c = text_[pos_];
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                out = Json(std::move(members));
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    static void appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool parseHex4(unsigned &out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + i];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        pos_ += 4;
        out = v;
        return true;
    }

    bool parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += static_cast<char>(c);
                ++pos_;
                continue;
            }
            ++pos_; // backslash
            if (atEnd())
                return fail("unterminated escape");
            const char e = text_[pos_];
            ++pos_;
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                unsigned cp = 0;
                if (!parseHex4(cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: a low surrogate must follow.
                    if (pos_ + 2 > text_.size() ||
                        text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
                        return fail("unpaired high surrogate");
                    pos_ += 2;
                    unsigned low = 0;
                    if (!parseHex4(low))
                        return false;
                    if (low < 0xDC00 || low > 0xDFFF)
                        return fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                         (low - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    return fail("unpaired low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("unknown escape character");
            }
        }
    }

    bool parseNumber(Json &out)
    {
        const std::size_t start = pos_;
        if (!atEnd() && peek() == '-')
            ++pos_;
        // Integer part: one zero, or a nonzero digit run (RFC 8259
        // forbids leading zeros).
        if (atEnd() || !isDigit(peek()))
            return failAt(start, "invalid value");
        if (peek() == '0') {
            ++pos_;
        } else {
            while (!atEnd() && isDigit(peek()))
                ++pos_;
        }
        if (!atEnd() && peek() == '.') {
            ++pos_;
            if (atEnd() || !isDigit(peek()))
                return failAt(start, "digits required after '.'");
            while (!atEnd() && isDigit(peek()))
                ++pos_;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (atEnd() || !isDigit(peek()))
                return failAt(start, "digits required in exponent");
            while (!atEnd() && isDigit(peek()))
                ++pos_;
        }
        if (!atEnd() && isDigit(peek()))
            return failAt(start, "number with a leading zero");
        const std::string token(text_.substr(start, pos_ - start));
        out = Json(std::strtod(token.c_str(), nullptr));
        return true;
    }

    static bool isDigit(char c) { return c >= '0' && c <= '9'; }

    bool failAt(std::size_t offset, std::string message)
    {
        pos_ = offset;
        return fail(std::move(message));
    }

    std::string_view text_;
    JsonLimits limits_;
    std::size_t pos_ = 0;
    std::string error_;
    std::size_t errorOffset_ = 0;
};

} // namespace

std::string
Json::dump() const
{
    std::string out;
    ::pccs::serve::dumpTo(*this, out);
    return out;
}

void
Json::dumpTo(std::string &out) const
{
    ::pccs::serve::dumpTo(*this, out);
}

JsonParse
parseJson(std::string_view text, const JsonLimits &limits)
{
    return Parser(text, limits).parse();
}

} // namespace pccs::serve
