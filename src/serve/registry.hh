/**
 * @file
 * The versioned model registry of the prediction service.
 *
 * The paper's calibrate-once / predict-forever workflow meets a
 * long-running daemon here: models are loaded from serialized
 * parameter files (or calibrated in-process at startup) under stable
 * names, and a `reload` request re-reads a model's backing file and
 * atomically publishes the new version. Readers hold
 * `shared_ptr<const ModelEntry>` snapshots, so a reload never
 * invalidates an in-flight request — predictions started against
 * version N complete against version N while new requests see N+1.
 *
 * A failed reload (missing file, malformed or out-of-range
 * parameters) reports a diagnostic and leaves the registered version
 * untouched; the service never serves a half-loaded model.
 */

#ifndef PCCS_SERVE_REGISTRY_HH
#define PCCS_SERVE_REGISTRY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "pccs/model.hh"

namespace pccs::serve {

/** One immutable published model version. */
struct ModelEntry
{
    ModelEntry(std::string entry_name, std::uint64_t entry_version,
               std::string entry_source,
               const model::PccsParams &entry_params)
        : name(std::move(entry_name)), version(entry_version),
          source(std::move(entry_source)), params(entry_params),
          model(entry_params)
    {
    }

    std::string name;
    std::uint64_t version;
    /** Provenance: "file:<path>" or "calibrated:<soc>:<pu>". */
    std::string source;
    model::PccsParams params;
    model::PccsModel model;
};

/** Thread-safe name -> (versioned model, backing path) table. */
class ModelRegistry
{
  public:
    /**
     * Load `path` and register/replace `name` backed by that file.
     * @return empty string on success, else the load diagnostic (the
     *         previously registered version, if any, is kept)
     */
    std::string addFromFile(const std::string &name,
                            const std::string &path);

    /**
     * Register/replace `name` from in-memory parameters (no backing
     * file; `reload` without an explicit path will fail for it).
     */
    void addFromParams(const std::string &name,
                       const model::PccsParams &params,
                       const std::string &source);

    /** @return the current version of `name`, or nullptr. The
     *  string_view overload exists for the zero-allocation predict
     *  path: lookup never materializes a std::string. */
    std::shared_ptr<const ModelEntry>
    find(std::string_view name) const;

    /** Outcome of a reload request. */
    struct Reloaded
    {
        bool ok = false;
        /** Diagnostic when !ok. */
        std::string error;
        /** The now-current version number. */
        std::uint64_t version = 0;
    };

    /**
     * Re-read `name`'s backing file (or `path_override`, which also
     * becomes the new backing file on success) and publish the next
     * version. On failure the current version stays published.
     */
    Reloaded reload(const std::string &name,
                    const std::string &path_override = "");

    /** Snapshot of all current entries, sorted by name. */
    std::vector<std::shared_ptr<const ModelEntry>> list() const;

    std::size_t size() const;

  private:
    struct Slot
    {
        /** Backing file; empty for in-memory registrations. */
        std::string path;
        std::shared_ptr<const ModelEntry> entry;
    };

    mutable std::shared_mutex mutex_;
    /** Transparent comparator: lookups by string_view don't allocate. */
    std::map<std::string, Slot, std::less<>> slots_;
};

} // namespace pccs::serve

#endif // PCCS_SERVE_REGISTRY_HH
