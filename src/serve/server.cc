#include "server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.hh"

namespace pccs::serve {

namespace {

/** write() the whole buffer; false when the peer went away. */
bool
sendAll(int fd, const char *data, std::size_t n)
{
    while (n > 0) {
        const ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += sent;
        n -= static_cast<std::size_t>(sent);
    }
    return true;
}

} // namespace

Server::Server(Dispatcher &dispatcher, ServerOptions options)
    : dispatcher_(dispatcher), options_(std::move(options))
{
}

Server::~Server()
{
    stop();
    if (wakePipe_[0] >= 0)
        ::close(wakePipe_[0]);
    if (wakePipe_[1] >= 0)
        ::close(wakePipe_[1]);
}

bool
Server::start(std::string *error)
{
    auto failWith = [&](const std::string &message) {
        if (error != nullptr)
            *error = message + ": " + std::strerror(errno);
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return false;
    };

    if (::pipe(wakePipe_) != 0)
        return failWith("cannot create wake pipe");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0)
        return failWith("cannot create socket");

    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(),
                    &addr.sin_addr) != 1) {
        errno = EINVAL;
        return failWith("bad bind address '" + options_.host + "'");
    }

    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return failWith("cannot bind " + options_.host + ":" +
                        std::to_string(options_.port));
    if (::listen(listenFd_, options_.backlog) != 0)
        return failWith("cannot listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return failWith("cannot read the bound address");
    port_ = ntohs(addr.sin_port);

    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
Server::requestStop()
{
    // Async-signal-safe: an atomic store and one pipe write.
    stopping_.store(true);
    if (wakePipe_[1] >= 0) {
        const char byte = 's';
        [[maybe_unused]] ssize_t n =
            ::write(wakePipe_[1], &byte, 1);
    }
}

bool
Server::stopRequested() const
{
    return stopping_.load();
}

void
Server::serveForever()
{
    char byte;
    while (!stopping_.load()) {
        const ssize_t n = ::read(wakePipe_[0], &byte, 1);
        if (n < 0 && errno == EINTR)
            continue;
        break;
    }
    stop();
}

void
Server::stop()
{
    stopping_.store(true);
    if (listenFd_ >= 0) {
        // Unblock accept(); the accept thread sees stopping_ and
        // exits.
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (acceptThread_.joinable())
        acceptThread_.join();

    std::lock_guard lock(connMutex_);
    for (auto &conn : connections_) {
        // Half-close: pending bytes are still processed and their
        // responses written, then the connection loop sees EOF.
        ::shutdown(conn->fd, SHUT_RD);
    }
    for (auto &conn : connections_) {
        if (conn->thread.joinable())
            conn->thread.join();
        ::close(conn->fd);
    }
    connections_.clear();
}

void
Server::acceptLoop()
{
    while (!stopping_.load()) {
        const int fd =
            ::accept4(listenFd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // listener closed (stop) or fatal accept error
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        connectionsAccepted_.fetch_add(1);

        std::lock_guard lock(connMutex_);
        reapFinishedLocked();
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        Connection *raw = conn.get();
        connections_.push_back(std::move(conn));
        raw->thread = std::thread([this, raw] {
            char buf[64 * 1024];
            FrameBuffer frames(options_.maxFrameBytes);
            std::vector<FrameBuffer::Frame> batch;
            bool alive = true;
            while (alive) {
                const ssize_t n =
                    ::recv(raw->fd, buf, sizeof(buf), 0);
                if (n == 0)
                    break;
                if (n < 0) {
                    if (errno == EINTR)
                        continue;
                    break;
                }
                frames.feed(buf, static_cast<std::size_t>(n));
                batch.clear();
                while (auto frame = frames.next())
                    batch.push_back(std::move(*frame));
                if (batch.empty())
                    continue;
                bool shutdown_requested = false;
                std::string wire;
                for (std::string &response : dispatcher_.handleFrames(
                         batch, &shutdown_requested)) {
                    wire += response;
                    wire += '\n';
                }
                alive = sendAll(raw->fd, wire.data(), wire.size());
                if (shutdown_requested)
                    requestStop();
            }
            // The fd is closed by reap/stop after the join, so a
            // racing stop() never touches a recycled descriptor.
            raw->done.store(true);
        });
    }
}

void
Server::reapFinishedLocked()
{
    for (std::size_t i = 0; i < connections_.size();) {
        if (!connections_[i]->done.load()) {
            ++i;
            continue;
        }
        if (connections_[i]->thread.joinable())
            connections_[i]->thread.join();
        ::close(connections_[i]->fd);
        connections_.erase(connections_.begin() +
                           static_cast<std::ptrdiff_t>(i));
    }
}

} // namespace pccs::serve
