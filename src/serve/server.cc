#include "server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace pccs::serve {

namespace {

/** epoll tags of the two non-connection fds of a shard. */
constexpr std::uint64_t kListenTag = ~std::uint64_t{0};
constexpr std::uint64_t kWakeTag = ~std::uint64_t{0} - 1;

/** Per-connection read budget of one drain cycle: a firehose peer
 *  yields the shard to its neighbors after this many bytes. */
constexpr std::size_t kReadBudget = 256u << 10;

std::uint64_t
connTag(std::uint32_t gen, std::uint32_t slot)
{
    return (static_cast<std::uint64_t>(gen) << 32) | slot;
}

unsigned
shardsFromEnv()
{
    const char *env = std::getenv("PCCS_SERVE_SHARDS");
    if (env == nullptr || *env == '\0')
        return 0;
    const unsigned long n = std::strtoul(env, nullptr, 10);
    if (n == 0 || n > 1000)
        return 0;
    return static_cast<unsigned>(n);
}

} // namespace

Server::Server(Dispatcher &dispatcher, ServerOptions options)
    : dispatcher_(dispatcher), options_(std::move(options))
{
    wakeFds_.fill(-1);
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error != nullptr)
            *error = what + ": " + std::strerror(errno);
        for (auto &shard : shards_) {
            if (shard->epollFd >= 0)
                ::close(shard->epollFd);
            if (shard->wakeFd >= 0)
                ::close(shard->wakeFd);
        }
        shards_.clear();
        shardCount_ = 0;
        wakeFds_.fill(-1);
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        for (int &fd : stopPipe_) {
            if (fd >= 0) {
                ::close(fd);
                fd = -1;
            }
        }
        return false;
    };

    unsigned shards = options_.shards;
    if (shards == 0)
        shards = shardsFromEnv();
    if (shards == 0) {
        shards = std::thread::hardware_concurrency();
        if (shards == 0)
            shards = 1;
    }
    if (shards > kMaxShards)
        shards = static_cast<unsigned>(kMaxShards);

    listenFd_ = ::socket(
        AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0)
        return fail("cannot create socket");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(),
                    &addr.sin_addr) != 1) {
        errno = EINVAL;
        return fail("bad bind address '" + options_.host + "'");
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("cannot bind " + options_.host + ":" +
                    std::to_string(options_.port));
    if (::listen(listenFd_, options_.backlog) != 0)
        return fail("cannot listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_,
                      reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return fail("cannot read the bound address");
    port_ = ntohs(addr.sin_port);

    if (::pipe2(stopPipe_, O_CLOEXEC | O_NONBLOCK) != 0)
        return fail("cannot create stop pipe");

    for (unsigned i = 0; i < shards; ++i) {
        auto shard = std::make_unique<Shard>();
        shard->index = i;
        shard->epollFd = ::epoll_create1(EPOLL_CLOEXEC);
        if (shard->epollFd < 0) {
            shards_.push_back(std::move(shard));
            return fail("cannot create epoll instance");
        }
        shard->wakeFd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
        if (shard->wakeFd < 0) {
            shards_.push_back(std::move(shard));
            return fail("cannot create wake eventfd");
        }
        epoll_event wake{};
        wake.events = EPOLLIN;
        wake.data.u64 = kWakeTag;
        if (::epoll_ctl(shard->epollFd, EPOLL_CTL_ADD,
                        shard->wakeFd, &wake) != 0) {
            shards_.push_back(std::move(shard));
            return fail("cannot register the wake eventfd");
        }
        // EPOLLEXCLUSIVE: the kernel wakes (roughly) one shard per
        // pending connection instead of the whole herd.
        epoll_event lst{};
        lst.events = EPOLLIN | EPOLLEXCLUSIVE;
        lst.data.u64 = kListenTag;
        if (::epoll_ctl(shard->epollFd, EPOLL_CTL_ADD, listenFd_,
                        &lst) != 0) {
            shards_.push_back(std::move(shard));
            return fail("cannot register the listener");
        }
        wakeFds_[i] = shard->wakeFd;
        shards_.push_back(std::move(shard));
    }
    shardCount_ = shards;

    for (auto &shard : shards_) {
        Shard *s = shard.get();
        shard->thread = std::thread([this, s] { shardLoop(*s); });
    }
    return true;
}

void
Server::requestStop()
{
    // Async-signal-safe: an atomic store and plain write()s.
    stopping_.store(true, std::memory_order_release);
    if (stopPipe_[1] >= 0) {
        const char byte = 's';
        [[maybe_unused]] ssize_t r =
            ::write(stopPipe_[1], &byte, 1);
    }
    const std::uint64_t tick = 1;
    for (std::size_t i = 0; i < shardCount_; ++i) {
        if (wakeFds_[i] >= 0) {
            [[maybe_unused]] ssize_t r =
                ::write(wakeFds_[i], &tick, sizeof(tick));
        }
    }
}

bool
Server::stopRequested() const
{
    return stopping_.load(std::memory_order_acquire);
}

void
Server::serveForever()
{
    while (!stopRequested()) {
        pollfd p{stopPipe_[0], POLLIN, 0};
        const int r = ::poll(&p, 1, 1000);
        if (r < 0 && errno != EINTR)
            break;
        if (r > 0)
            break;
    }
    stop();
}

void
Server::stop()
{
    requestStop();
    std::lock_guard lock(stopMutex_);
    if (stopped_)
        return;
    stopped_ = true;
    for (auto &shard : shards_) {
        if (shard->thread.joinable())
            shard->thread.join();
    }
    for (auto &shard : shards_) {
        if (shard->epollFd >= 0) {
            ::close(shard->epollFd);
            shard->epollFd = -1;
        }
        if (shard->wakeFd >= 0) {
            ::close(shard->wakeFd);
            shard->wakeFd = -1;
        }
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    for (int &fd : stopPipe_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
}

Server::Conn &
Server::connAt(Shard &shard, std::uint32_t slot)
{
    return (*shard.chunks[slot / kChunk])[slot % kChunk];
}

std::uint32_t
Server::allocSlot(Shard &shard)
{
    if (shard.freeSlots.empty()) {
        const std::uint32_t base = static_cast<std::uint32_t>(
            shard.chunks.size() * kChunk);
        auto chunk = std::make_unique<std::vector<Conn>>();
        chunk->reserve(kChunk);
        for (std::size_t i = 0; i < kChunk; ++i)
            chunk->emplace_back(options_.maxFrameBytes);
        shard.chunks.push_back(std::move(chunk));
        // Low slots first, so steady-state churn reuses warm slots.
        for (std::size_t i = kChunk; i > 0; --i)
            shard.freeSlots.push_back(
                base + static_cast<std::uint32_t>(i) - 1);
    }
    const std::uint32_t slot = shard.freeSlots.back();
    shard.freeSlots.pop_back();
    return slot;
}

void
Server::closeConn(Shard &shard, std::uint32_t slot)
{
    Conn &c = connAt(shard, slot);
    if (!c.inUse)
        return;
    ::close(c.fd); // also deregisters the fd from epoll
    c.fd = -1;
    c.inUse = false;
    ++c.gen; // invalidates in-flight epoll tags and batch sources
    shard.deadSlots.push_back(slot);
}

void
Server::acceptReady(Shard &shard)
{
    for (;;) {
        const int fd = ::accept4(listenFd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN: a sibling shard won the race
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        connectionsAccepted_.fetch_add(1,
                                       std::memory_order_relaxed);

        const std::uint32_t slot = allocSlot(shard);
        Conn &c = connAt(shard, slot);
        c.fd = fd;
        c.inUse = true;

        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
        ev.data.u64 = connTag(c.gen, slot);
        if (::epoll_ctl(shard.epollFd, EPOLL_CTL_ADD, fd, &ev) !=
            0) {
            ::close(fd);
            c.fd = -1;
            c.inUse = false;
            ++c.gen;
            shard.freeSlots.push_back(slot);
        }
    }
}

void
Server::queueRead(Shard &shard, std::uint32_t slot)
{
    Conn &c = connAt(shard, slot);
    if (c.queuedRead)
        return;
    c.queuedRead = true;
    shard.pendingReads.push_back(slot);
}

std::uint32_t
Server::gatherFrames(Shard &shard, std::uint32_t slot)
{
    Conn &c = connAt(shard, slot);
    std::uint32_t count = 0;
    while (std::optional<FrameBuffer::View> v =
               c.frames.nextView()) {
        shard.views.push_back(*v);
        ++count;
    }
    if (count > 0)
        shard.sources.push_back({slot, c.gen, count});
    return count;
}

void
Server::readReady(Shard &shard, std::uint32_t slot)
{
    Conn &c = connAt(shard, slot);
    if (c.lastRead == shard.cycle)
        return; // already drained this cycle; a second feed would
                // invalidate the views gathered the first time
    c.lastRead = shard.cycle;

    char buf[65536];
    std::size_t budget = kReadBudget;
    bool more = false;
    for (;;) {
        const ssize_t n = ::read(c.fd, buf, sizeof(buf));
        if (n > 0) {
            c.frames.feed(buf, static_cast<std::size_t>(n));
            if (budget <= static_cast<std::size_t>(n)) {
                // Out of budget: revisit next cycle ourselves —
                // edge-triggered epoll won't renotify for these
                // bytes.
                more = true;
                break;
            }
            budget -= static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) {
            c.eof = true;
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        closeConn(shard, slot);
        return;
    }

    const std::uint32_t count = gatherFrames(shard, slot);
    if (c.eof && count == 0) {
        // Nothing left to answer (a trailing partial line, if any,
        // dies with the connection, as it always has).
        if (c.outPos == c.out.size())
            closeConn(shard, slot);
        else
            c.closing = true;
        return;
    }
    if (more && !c.eof)
        queueRead(shard, slot);
}

void
Server::updateInterest(Shard &shard, std::uint32_t slot)
{
    Conn &c = connAt(shard, slot);
    const bool want = c.outPos < c.out.size();
    if (want == c.wantWrite)
        return;
    c.wantWrite = want;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET |
                (want ? EPOLLOUT : 0u);
    ev.data.u64 = connTag(c.gen, slot);
    ::epoll_ctl(shard.epollFd, EPOLL_CTL_MOD, c.fd, &ev);
}

void
Server::sendOrPark(Shard &shard, std::uint32_t slot,
                   const char *data, std::size_t len)
{
    Conn &c = connAt(shard, slot);
    std::size_t off = 0;
    if (c.outPos == c.out.size()) {
        // Nothing parked: write straight from the batch wire.
        while (off < len) {
            const ssize_t n = ::send(c.fd, data + off, len - off,
                                     MSG_NOSIGNAL);
            if (n > 0) {
                off += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 &&
                (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            closeConn(shard, slot);
            return;
        }
        if (off == len)
            return;
        c.out.clear();
        c.outPos = 0;
    }
    c.out.append(data + off, len - off);
    if (c.out.size() - c.outPos > options_.maxPendingWriteBytes)
        c.paused = true; // stop reading until the peer drains
    updateInterest(shard, slot);
}

void
Server::flushParked(Shard &shard, std::uint32_t slot)
{
    Conn &c = connAt(shard, slot);
    while (c.outPos < c.out.size()) {
        const ssize_t n =
            ::send(c.fd, c.out.data() + c.outPos,
                   c.out.size() - c.outPos, MSG_NOSIGNAL);
        if (n > 0) {
            c.outPos += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        closeConn(shard, slot);
        return;
    }
    if (c.outPos == c.out.size()) {
        c.out.clear(); // capacity stays for the next burst
        c.outPos = 0;
        if (c.closing) {
            closeConn(shard, slot);
            return;
        }
        updateInterest(shard, slot);
        if (c.paused) {
            c.paused = false;
            queueRead(shard, slot);
        }
    } else if (c.paused && c.out.size() - c.outPos <=
                               options_.maxPendingWriteBytes / 2) {
        c.paused = false;
        queueRead(shard, slot);
    }
}

void
Server::dispatchCycle(Shard &shard)
{
    if (!shard.views.empty()) {
        bool shutdown = false;
        dispatcher_.handleFrames(shard.views.data(),
                                 shard.views.size(), shard.scratch,
                                 &shutdown);
        std::size_t frame = 0;
        for (const Shard::Source &src : shard.sources) {
            const WireSpan &first = shard.scratch.spans[frame];
            const WireSpan &last =
                shard.scratch.spans[frame + src.frames - 1];
            frame += src.frames;
            Conn &c = connAt(shard, src.slot);
            if (!c.inUse || c.gen != src.gen)
                continue; // closed mid-cycle
            sendOrPark(shard, src.slot,
                       shard.scratch.wire.data() + first.offset,
                       last.offset + last.length - first.offset);
            if (c.inUse && c.gen == src.gen && c.eof) {
                if (c.outPos == c.out.size())
                    closeConn(shard, src.slot);
                else
                    c.closing = true;
            }
        }
        shard.views.clear();
        shard.sources.clear();
        if (shutdown)
            requestStop();
    }
    // Recycle closed slots only now: gathered views may have pointed
    // into their frame buffers until the batch was dispatched.
    for (const std::uint32_t slot : shard.deadSlots) {
        Conn &c = connAt(shard, slot);
        c.frames.reset();
        c.out.clear();
        c.outPos = 0;
        c.wantWrite = false;
        c.paused = false;
        c.closing = false;
        c.eof = false;
        c.queuedRead = false;
        c.lastRead = 0;
        shard.freeSlots.push_back(slot);
    }
    shard.deadSlots.clear();
}

void
Server::shardLoop(Shard &shard)
{
    std::array<epoll_event, 256> events;
    while (!stopping_.load(std::memory_order_acquire)) {
        const int timeout = shard.pendingReads.empty() ? -1 : 0;
        const int n = ::epoll_wait(shard.epollFd, events.data(),
                                   static_cast<int>(events.size()),
                                   timeout);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        ++shard.cycle;

        for (int i = 0; i < n; ++i) {
            const std::uint64_t tag = events[i].data.u64;
            const std::uint32_t ev = events[i].events;
            if (tag == kListenTag) {
                acceptReady(shard);
                continue;
            }
            if (tag == kWakeTag) {
                std::uint64_t v;
                [[maybe_unused]] ssize_t r =
                    ::read(shard.wakeFd, &v, sizeof(v));
                continue;
            }
            const std::uint32_t slot =
                static_cast<std::uint32_t>(tag & 0xffffffffu);
            const std::uint32_t gen =
                static_cast<std::uint32_t>(tag >> 32);
            {
                Conn &c = connAt(shard, slot);
                if (!c.inUse || c.gen != gen)
                    continue; // stale event for a recycled slot
                if ((ev & EPOLLERR) != 0) {
                    closeConn(shard, slot);
                    continue;
                }
                if ((ev & EPOLLOUT) != 0)
                    flushParked(shard, slot);
            }
            // flushParked may close; re-validate before reading.
            Conn &c = connAt(shard, slot);
            if (!c.inUse || c.gen != gen)
                continue;
            if ((ev & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0 &&
                !c.paused)
                readReady(shard, slot);
        }

        // Budget-capped / just-unpaused connections from earlier
        // cycles (edge-triggered epoll won't renotify for bytes
        // that already arrived).
        const std::size_t pending = shard.pendingReads.size();
        for (std::size_t i = 0; i < pending; ++i) {
            const std::uint32_t slot = shard.pendingReads[i];
            Conn &c = connAt(shard, slot);
            if (!c.inUse || c.paused) {
                // Paused conns are re-queued by flushParked when the
                // peer drains; dead ones are gone.
                c.queuedRead = false;
                continue;
            }
            if (c.lastRead == shard.cycle) {
                // A fresh epoll event already read this conn in the
                // current cycle (one feed per cycle, or the gathered
                // views would dangle). Its leftover bytes still need
                // a revisit: carry the entry to the next cycle
                // instead of swallowing it — the peer may never send
                // again, so no edge would come to save us.
                shard.pendingReads.push_back(slot);
                continue;
            }
            c.queuedRead = false;
            readReady(shard, slot);
        }
        shard.pendingReads.erase(
            shard.pendingReads.begin(),
            shard.pendingReads.begin() +
                static_cast<std::ptrdiff_t>(pending));

        // Flat combining: everything every ready connection sent
        // this cycle becomes ONE dispatcher batch.
        dispatchCycle(shard);
    }
    drainAtExit(shard);
}

void
Server::drainAtExit(Shard &shard)
{
    // Give parked responses (e.g. the shutdown acknowledgment) a
    // bounded chance to reach their peers, then close everything.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(3);
    for (auto &chunk : shard.chunks) {
        for (Conn &c : *chunk) {
            if (!c.inUse)
                continue;
            while (c.outPos < c.out.size()) {
                const auto left =
                    deadline - std::chrono::steady_clock::now();
                if (left <= std::chrono::milliseconds(0))
                    break;
                pollfd p{c.fd, POLLOUT, 0};
                const int ms = static_cast<int>(
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(left)
                        .count());
                const int r = ::poll(&p, 1, std::max(1, ms));
                if (r < 0 && errno == EINTR)
                    continue;
                if (r <= 0)
                    break;
                const ssize_t n =
                    ::send(c.fd, c.out.data() + c.outPos,
                           c.out.size() - c.outPos, MSG_NOSIGNAL);
                if (n > 0) {
                    c.outPos += static_cast<std::size_t>(n);
                    continue;
                }
                if (n < 0 &&
                    (errno == EINTR || errno == EAGAIN ||
                     errno == EWOULDBLOCK))
                    continue;
                break;
            }
            ::close(c.fd);
            c.fd = -1;
            c.inUse = false;
            ++c.gen;
        }
    }
}

} // namespace pccs::serve
