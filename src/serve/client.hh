/**
 * @file
 * A small blocking TCP client for the prediction service — used by
 * `pccs client`, the protocol tests, and the throughput bench.
 */

#ifndef PCCS_SERVE_CLIENT_HH
#define PCCS_SERVE_CLIENT_HH

#include <cstdint>
#include <optional>
#include <string>

#include "serve/json.hh"

namespace pccs::serve {

/** One connection to a serve daemon; newline-delimited JSON. */
class TcpClient
{
  public:
    TcpClient() = default;
    ~TcpClient();

    TcpClient(const TcpClient &) = delete;
    TcpClient &operator=(const TcpClient &) = delete;
    TcpClient(TcpClient &&other) noexcept
        : fd_(other.fd_), inbuf_(std::move(other.inbuf_))
    {
        other.fd_ = -1;
    }
    TcpClient &operator=(TcpClient &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            inbuf_ = std::move(other.inbuf_);
            other.fd_ = -1;
        }
        return *this;
    }

    /**
     * Connect to host:port.
     * @return true on success; else false with a diagnostic in *error
     */
    bool connectTo(const std::string &host, std::uint16_t port,
                   std::string *error = nullptr);

    bool connected() const { return fd_ >= 0; }
    void close();

    /** Send one raw line (the newline is appended). */
    bool sendLine(const std::string &line);

    /** Send raw bytes exactly as given — no newline appended. Lets
     *  tests fragment frames across arbitrary write boundaries. */
    bool sendRaw(const char *data, std::size_t n);

    /** The underlying socket (tests tune sockopts); -1 if closed. */
    int fd() const { return fd_; }

    /** @return the next response line, or nullopt on EOF/error. */
    std::optional<std::string> recvLine();

    /**
     * Round-trip one request: send, then read one response line and
     * parse it. Returns an `ok:false` object with a local "error"
     * field when the transport or the response parse fails.
     */
    Json request(const Json &message);

  private:
    int fd_ = -1;
    std::string inbuf_;
};

} // namespace pccs::serve

#endif // PCCS_SERVE_CLIENT_HH
