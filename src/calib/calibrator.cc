#include "calibrator.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace pccs::calib {

soc::KernelProfile
makeCalibrator(const soc::ExecutionModel &model, const soc::PuParams &pu,
               GBps target_bw, double locality)
{
    PCCS_ASSERT(target_bw > 0.0, "calibrator target must be positive");

    soc::KernelProfile kernel;
    char name[64];
    std::snprintf(name, sizeof(name), "calib-%.1fGBps", target_bw);
    kernel.name = name;
    kernel.locality = locality;
    kernel.workBytes = 1e9;

    // Standalone demand is monotonically non-increasing in operational
    // intensity: more flops per byte -> more compute-bound -> less
    // bandwidth. Bisect intensity to hit the target.
    double lo = 1e-4;  // essentially pure streaming
    double hi = 1e5;   // essentially pure compute
    kernel.intensity = lo;
    const GBps max_demand =
        model.standalone(pu, kernel).bandwidthDemand;
    if (target_bw >= max_demand) {
        // Target beyond what the PU can draw: return the most
        // memory-bound calibrator.
        return kernel;
    }

    for (int iter = 0; iter < 80; ++iter) {
        kernel.intensity = std::sqrt(lo * hi); // geometric bisection
        const GBps demand =
            model.standalone(pu, kernel).bandwidthDemand;
        if (demand > target_bw)
            lo = kernel.intensity;
        else
            hi = kernel.intensity;
    }
    kernel.intensity = std::sqrt(lo * hi);
    return kernel;
}

CalibrationMatrix
calibrate(const soc::SocSimulator &sim, std::size_t pu_index,
          const SweepSpec &spec, runner::SweepEngine *engine)
{
    PCCS_ASSERT(pu_index < sim.config().pus.size(),
                "bad PU index %zu", pu_index);
    PCCS_ASSERT(spec.numKernels >= 2 && spec.numExternal >= 2,
                "sweep needs at least 2x2 points");

    runner::SweepEngine &eng =
        engine ? *engine : runner::SweepEngine::global();
    const soc::PuParams &pu = sim.config().pus[pu_index];
    const GBps draw = pu.drawBandwidth();
    const GBps peak = sim.config().memory.peakBandwidth;

    CalibrationMatrix m;

    // Calibrator ladder: evenly spaced targets over the PU's range.
    std::vector<soc::KernelProfile> kernels;
    for (unsigned i = 0; i < spec.numKernels; ++i) {
        const double frac =
            spec.minDemandFraction +
            (spec.maxDemandFraction - spec.minDemandFraction) *
                static_cast<double>(i) /
                static_cast<double>(spec.numKernels - 1);
        const GBps target = frac * draw;
        soc::KernelProfile k =
            makeCalibrator(sim.model(), pu, target, spec.locality);
        const GBps achieved =
            sim.model().standalone(pu, k).bandwidthDemand;
        kernels.push_back(std::move(k));
        m.standaloneBw.push_back(achieved);
    }

    // External ladder: the paper steps external pressure in equal
    // strides starting at the first stride (not zero; rela at zero is
    // 100% by definition).
    for (unsigned j = 1; j <= spec.numExternal; ++j) {
        m.externalBw.push_back(spec.maxExternalFraction * peak *
                               static_cast<double>(j) /
                               static_cast<double>(spec.numExternal));
    }

    // The rela matrix is a batch of independent points; the engine
    // evaluates them in parallel and memoizes each one.
    std::vector<runner::EvalPoint> points;
    points.reserve(m.numKernels() * m.numExternal());
    for (std::size_t i = 0; i < m.numKernels(); ++i)
        for (std::size_t j = 0; j < m.numExternal(); ++j)
            points.push_back({pu_index, kernels[i], m.externalBw[j]});
    const std::vector<double> rela = eng.evaluateBatch(sim, points);

    m.rela.assign(m.numKernels(),
                  std::vector<double>(m.numExternal(), 0.0));
    for (std::size_t i = 0; i < m.numKernels(); ++i)
        for (std::size_t j = 0; j < m.numExternal(); ++j)
            m.rela[i][j] = rela[i * m.numExternal() + j];
    return m;
}

namespace {

/**
 * One (victim demand, external demand) sweep point on the multi-MC
 * subsystem: the victim's achieved bandwidth over the window. The
 * aggressor sources are spread across the 64 source slices so the
 * external pressure lands on every partition.
 */
GBps
evalMcPoint(const McSweepSpec &spec, GBps victim_demand,
            GBps external_demand)
{
    dram::MultiMcSystem sys(spec.perMcConfig, spec.numMcs, spec.policy,
                            spec.mapping, dram::SchedulerParams{},
                            spec.runMode);
    dram::TrafficParams v;
    v.source = 0;
    v.demand = victim_demand;
    v.seed = spec.seed * 131;
    const std::size_t victim = sys.addGenerator(v);
    if (external_demand > 0.0) {
        const unsigned stride =
            dram::Scheduler::maxSources / (spec.numAggressors + 1);
        for (unsigned a = 0; a < spec.numAggressors; ++a) {
            dram::TrafficParams p;
            p.source = (a + 1) * stride;
            p.demand = external_demand /
                       static_cast<double>(spec.numAggressors);
            p.rowLocality = 0.85;
            p.seed = spec.seed * 131 + p.source;
            sys.addGenerator(p);
        }
    }
    sys.run(spec.warmup);
    sys.resetMeasurement();
    sys.run(spec.window);
    return sys.achievedBandwidth(victim);
}

} // namespace

CalibrationMatrix
calibrateMultiMc(const McSweepSpec &spec, runner::SweepEngine *engine)
{
    PCCS_ASSERT(spec.numMcs >= 1, "need at least one controller");
    PCCS_ASSERT(spec.numKernels >= 2 && spec.numExternal >= 1,
                "sweep needs at least 2x1 points");
    PCCS_ASSERT(spec.numAggressors >= 1 &&
                    spec.numAggressors < dram::Scheduler::maxSources,
                "bad aggressor count %u", spec.numAggressors);

    runner::SweepEngine &eng =
        engine ? *engine : runner::SweepEngine::global();
    const GBps per_mc_peak = spec.perMcConfig.peakBandwidth();
    const GBps peak = per_mc_peak * spec.numMcs;

    CalibrationMatrix m;
    for (unsigned i = 0; i < spec.numKernels; ++i) {
        const double frac =
            spec.minDemandFraction +
            (spec.maxDemandFraction - spec.minDemandFraction) *
                static_cast<double>(i) /
                static_cast<double>(spec.numKernels - 1);
        m.standaloneBw.push_back(frac * per_mc_peak);
    }
    for (unsigned j = 1; j <= spec.numExternal; ++j) {
        m.externalBw.push_back(spec.maxExternalFraction * peak *
                               static_cast<double>(j) /
                               static_cast<double>(spec.numExternal));
    }

    // Column 0 of each row is the standalone run (the rela
    // denominator); the rest are the co-runs. All points are
    // independent simulations. The single-threaded run modes fan out
    // over the engine; sharded systems parallelize internally, and the
    // pool's batches do not nest, so their points stay serial.
    const std::size_t cols = m.numExternal() + 1;
    std::vector<GBps> bw(m.numKernels() * cols, 0.0);
    auto point = [&](std::size_t idx) {
        const std::size_t i = idx / cols;
        const std::size_t j = idx % cols;
        bw[idx] = evalMcPoint(spec, m.standaloneBw[i],
                              j == 0 ? 0.0 : m.externalBw[j - 1]);
    };
    if (spec.runMode == dram::McRunMode::Sharded) {
        for (std::size_t idx = 0; idx < bw.size(); ++idx)
            point(idx);
    } else {
        eng.parallelFor(bw.size(), point);
    }

    m.rela.assign(m.numKernels(),
                  std::vector<double>(m.numExternal(), 0.0));
    for (std::size_t i = 0; i < m.numKernels(); ++i) {
        const GBps solo = bw[i * cols];
        m.standaloneBw[i] = solo;
        for (std::size_t j = 0; j < m.numExternal(); ++j) {
            m.rela[i][j] =
                solo > 0.0 ? 100.0 * bw[i * cols + j + 1] / solo : 0.0;
        }
    }
    return m;
}

} // namespace pccs::calib
