/**
 * @file
 * Calibrator kernels and the processor-centric calibration sweep
 * (Section 3.2 of the paper).
 *
 * Calibrators are synthetic roofline-style kernels ("load each word of
 * an array and perform some operations on it") whose operational
 * intensity is tuned so that their standalone bandwidth demand on a
 * given PU hits a requested target. A calibration sweep co-runs each
 * calibrator against a ladder of external bandwidth demands and
 * records the achieved relative speeds into the rela[n][m] matrix the
 * model-construction algorithm consumes.
 */

#ifndef PCCS_CALIB_CALIBRATOR_HH
#define PCCS_CALIB_CALIBRATOR_HH

#include <string>
#include <vector>

#include "dram/multi_mc.hh"
#include "runner/sweep_engine.hh"
#include "soc/simulator.hh"

namespace pccs::calib {

/** Row locality of the synthetic streaming calibrators. */
inline constexpr double calibratorLocality = 0.97;

/**
 * Build a calibrator kernel whose standalone bandwidth demand on `pu`
 * is as close as possible to `target_bw` (GB/s). The operational
 * intensity is solved by bisection (demand is monotone in intensity).
 * Targets beyond the PU's achievable draw are clipped to it.
 */
soc::KernelProfile makeCalibrator(const soc::ExecutionModel &model,
                                  const soc::PuParams &pu, GBps target_bw,
                                  double locality = calibratorLocality);

/**
 * The rela[n][m] matrix of Section 3.2 plus its axes.
 *
 * rela[i][j] is the achieved relative speed (%) of the i-th smallest
 * calibrator kernel on the target PU under the j-th smallest external
 * bandwidth demand.
 */
struct CalibrationMatrix
{
    /** Standalone BW demands of the calibrators, ascending (GB/s). */
    std::vector<GBps> standaloneBw;
    /** External BW demands, ascending (GB/s); first entry > 0. */
    std::vector<GBps> externalBw;
    /** rela[i][j], percent. */
    std::vector<std::vector<double>> rela;

    std::size_t numKernels() const { return standaloneBw.size(); }
    std::size_t numExternal() const { return externalBw.size(); }
};

/** Parameters of a calibration sweep. */
struct SweepSpec
{
    /**
     * Number of calibrator kernels (rows). The region boundaries are
     * localized to half a row step, so more rows sharpen the
     * minor/normal/intensive classification.
     */
    unsigned numKernels = 10;
    /** Smallest calibrator target as a fraction of the PU's max draw. */
    double minDemandFraction = 0.1;
    /** Largest calibrator target as a fraction of the PU's max draw. */
    double maxDemandFraction = 1.0;
    /** Number of external-demand steps (columns). */
    unsigned numExternal = 10;
    /**
     * Largest external demand as a fraction of SoC peak bandwidth.
     * The paper sweeps external pressure to 100 GB/s on the 137 GB/s
     * Xavier, i.e., ~0.73 of peak.
     */
    double maxExternalFraction = 0.73;
    /** Row locality of the sweep's calibrator kernels. */
    double locality = calibratorLocality;
};

/**
 * Run the processor-centric calibration of one PU: no application
 * co-run measurements, only calibrators against calibrators. The
 * sweep's (kernel, external) points are evaluated through `engine`
 * (the process-wide engine when null): in parallel, and memoized so
 * later sweeps sharing points with the calibration ladder hit the
 * cache.
 */
CalibrationMatrix calibrate(const soc::SocSimulator &sim,
                            std::size_t pu_index,
                            const SweepSpec &spec = {},
                            runner::SweepEngine *engine = nullptr);

/**
 * Parameters of a multi-controller DRAM-substrate calibration sweep
 * (the Section 5 extension: calibrating against the cycle-accurate
 * multi-MC subsystem instead of the analytic SoC model, so the rela
 * matrix reflects the address mapping and per-MC scheduling).
 */
struct McSweepSpec
{
    /** Per-controller DRAM configuration. */
    dram::DramConfig perMcConfig = dram::table1Config();
    /** Number of memory controllers. */
    unsigned numMcs = 2;
    /** Registered scheduler-policy name (one instance per MC). */
    std::string policy = "FR-FCFS";
    /** Address-to-MC mapping under calibration. */
    dram::McMapping mapping = dram::McMapping::LineInterleaved;
    /** Run loop for the per-point simulations. */
    dram::McRunMode runMode = dram::defaultMcRunMode();
    /** Number of victim-demand steps (rows). */
    unsigned numKernels = 4;
    /** Smallest victim demand as a fraction of one MC's peak. */
    double minDemandFraction = 0.2;
    /** Largest victim demand as a fraction of one MC's peak. */
    double maxDemandFraction = 0.8;
    /** Number of external-demand steps (columns). */
    unsigned numExternal = 4;
    /** Largest aggregate external demand as a fraction of peak. */
    double maxExternalFraction = 0.6;
    /** Aggressor cores supplying the external demand. */
    unsigned numAggressors = 3;
    /** Warmup cycles before each measurement window. */
    Cycles warmup = 6000;
    /** Measurement window in bus cycles. */
    Cycles window = 30000;
    /** Base RNG seed for the synthetic address streams. */
    std::uint64_t seed = 1;
};

/**
 * Calibrate a victim core against aggressor cores on the multi-MC
 * DRAM subsystem: rela[i][j] is the victim's achieved bandwidth under
 * the j-th external demand as a percentage of its standalone achieved
 * bandwidth, at the i-th victim demand. standaloneBw holds the
 * measured standalone bandwidths, externalBw the aggregate aggressor
 * demand ladder.
 *
 * Points run in parallel on `engine` (global when null) for the
 * single-threaded run modes; with McRunMode::Sharded each point's
 * system parallelizes internally, so points run serially (the pool's
 * batches do not nest). Results are bit-identical either way.
 */
CalibrationMatrix calibrateMultiMc(const McSweepSpec &spec = {},
                                   runner::SweepEngine *engine = nullptr);

} // namespace pccs::calib

#endif // PCCS_CALIB_CALIBRATOR_HH
