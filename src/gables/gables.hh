/**
 * @file
 * The Gables baseline model (Hill & Reddi, HPCA 2019), as the paper
 * characterizes it in Section 4.1:
 *
 *   "The memory contention model proposed by Gables assumes that the
 *    effective bandwidth of a processor under contention is not
 *    reduced as long as the total BW requested is smaller than the
 *    SoC peak BW. Otherwise, the effective BW is calculated by
 *    pro-rating the requested BW to the available BW."
 *
 * A roofline helper is included for the standalone side of the Gables
 * methodology (perf = min(compute roof, intensity x bandwidth)).
 */

#ifndef PCCS_GABLES_GABLES_HH
#define PCCS_GABLES_GABLES_HH

#include "pccs/batch.hh"
#include "pccs/predictor.hh"

namespace pccs::gables {

/**
 * Gables' proportional-sharing slowdown model.
 */
class GablesModel final : public model::SlowdownPredictor,
                          public model::BatchPredictor
{
  public:
    /** @param peak_bw the SoC's theoretical peak bandwidth, GB/s. */
    explicit GablesModel(GBps peak_bw);

    const char *name() const override { return "Gables"; }

    /**
     * Predicted relative speed: 100% while x + y <= peak; otherwise
     * the pro-rated share 100 * peak / (x + y).
     */
    double relativeSpeed(GBps x, GBps y) const override;

    /**
     * Branchless structure-of-arrays evaluation, bit-exact with
     * calling `relativeSpeed` per point (the saturation and zero-
     * demand cases become arithmetic selects).
     */
    void relativeSpeedBatch(std::span<const GBps> x,
                            std::span<const GBps> y,
                            std::span<double> speeds) const override;

    void relativeSpeedBroadcast(std::span<const GBps> x, GBps y,
                                std::span<double> speeds) const override;

    /** Effective bandwidth granted to the processor, GB/s. */
    GBps effectiveBandwidth(GBps x, GBps y) const;

    GBps peakBandwidth() const { return peak_; }

  private:
    GBps peak_;
};

/**
 * Roofline attainable performance: min(compute roof, I * BW).
 *
 * @param compute_roof_gflops peak compute throughput, GFlop/s
 * @param intensity operational intensity, flops per byte
 * @param bandwidth available bandwidth, GB/s
 * @return attainable performance, GFlop/s
 */
double rooflinePerformance(double compute_roof_gflops, double intensity,
                           GBps bandwidth);

} // namespace pccs::gables

#endif // PCCS_GABLES_GABLES_HH
