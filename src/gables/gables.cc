#include "gables.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pccs::gables {

GablesModel::GablesModel(GBps peak_bw) : peak_(peak_bw)
{
    PCCS_ASSERT(peak_ > 0.0, "peak bandwidth must be positive");
}

GBps
GablesModel::effectiveBandwidth(GBps x, GBps y) const
{
    PCCS_ASSERT(x >= 0.0 && y >= 0.0, "negative bandwidth demand");
    const GBps total = x + y;
    if (total <= peak_ || total <= 0.0)
        return x;
    return x * peak_ / total;
}

double
GablesModel::relativeSpeed(GBps x, GBps y) const
{
    if (x <= 0.0)
        return 100.0;
    return 100.0 * effectiveBandwidth(x, y) / x;
}

double
rooflinePerformance(double compute_roof_gflops, double intensity,
                    GBps bandwidth)
{
    PCCS_ASSERT(compute_roof_gflops >= 0.0 && intensity >= 0.0 &&
                    bandwidth >= 0.0,
                "roofline inputs must be non-negative");
    return std::min(compute_roof_gflops, intensity * bandwidth);
}

} // namespace pccs::gables
