#include "gables.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pccs::gables {

GablesModel::GablesModel(GBps peak_bw) : peak_(peak_bw)
{
    PCCS_ASSERT(peak_ > 0.0, "peak bandwidth must be positive");
}

GBps
GablesModel::effectiveBandwidth(GBps x, GBps y) const
{
    PCCS_ASSERT(x >= 0.0 && y >= 0.0, "negative bandwidth demand");
    const GBps total = x + y;
    if (total <= peak_ || total <= 0.0)
        return x;
    return x * peak_ / total;
}

double
GablesModel::relativeSpeed(GBps x, GBps y) const
{
    if (x <= 0.0)
        return 100.0;
    return 100.0 * effectiveBandwidth(x, y) / x;
}

namespace {

/**
 * The branchless Gables kernel: the effective-bandwidth cases of the
 * scalar path become selects on precomputed values, with the same
 * operations in the same order per point (bit-exact). Note the scalar
 * path returns 100% for x <= 0 *before* validating y, so validation
 * here is likewise skipped for those points.
 */
template <typename YAt>
void
gablesBatchKernel(GBps peak, std::span<const GBps> x, YAt y_at,
                  std::span<double> speeds)
{
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i) {
        const double xi = x[i];
        const double yi = y_at(i);
        const double total = xi + yi;
        const double eff =
            total <= peak || total <= 0.0 ? xi : xi * peak / total;
        speeds[i] = xi <= 0.0 ? 100.0 : 100.0 * eff / xi;
    }
}

template <typename YAt>
void
checkGablesDemands(std::span<const GBps> x, YAt y_at)
{
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (x[i] <= 0.0)
            continue; // scalar path short-circuits before validating
        PCCS_ASSERT(x[i] >= 0.0 && y_at(i) >= 0.0,
                    "negative bandwidth demand");
    }
}

/* Multiversioned entry points: the kernel template inlines into each
 * clone (flatten), so the loop itself is compiled per ISA. */
PCCS_KERNEL_MULTIVERSION void
gablesBatchPairwise(GBps peak, std::span<const GBps> x,
                    std::span<const GBps> y, std::span<double> speeds)
{
    gablesBatchKernel(peak, x, [y](std::size_t i) { return y[i]; },
                      speeds);
}

PCCS_KERNEL_MULTIVERSION void
gablesBatchBroadcast(GBps peak, std::span<const GBps> x, GBps y,
                     std::span<double> speeds)
{
    gablesBatchKernel(peak, x, [y](std::size_t) { return y; }, speeds);
}

} // namespace

void
GablesModel::relativeSpeedBatch(std::span<const GBps> x,
                                std::span<const GBps> y,
                                std::span<double> speeds) const
{
    PCCS_ASSERT(x.size() == y.size() && x.size() == speeds.size(),
                "batch span lengths differ (%zu, %zu, %zu)", x.size(),
                y.size(), speeds.size());
    checkGablesDemands(x, [y](std::size_t i) { return y[i]; });
    gablesBatchPairwise(peak_, x, y, speeds);
}

void
GablesModel::relativeSpeedBroadcast(std::span<const GBps> x, GBps y,
                                    std::span<double> speeds) const
{
    PCCS_ASSERT(x.size() == speeds.size(),
                "batch span lengths differ (%zu, %zu)", x.size(),
                speeds.size());
    checkGablesDemands(x, [y](std::size_t) { return y; });
    gablesBatchBroadcast(peak_, x, y, speeds);
}

double
rooflinePerformance(double compute_roof_gflops, double intensity,
                    GBps bandwidth)
{
    PCCS_ASSERT(compute_roof_gflops >= 0.0 && intensity >= 0.0 &&
                    bandwidth >= 0.0,
                "roofline inputs must be non-negative");
    return std::min(compute_roof_gflops, intensity * bandwidth);
}

} // namespace pccs::gables
