/**
 * @file
 * The PCCS model-construction algorithm (Section 3.2).
 *
 * Takes the rela[n][m] calibration matrix (achieved relative speeds of
 * n calibrator kernels under m external bandwidth demands) and extracts
 * the model parameters in five steps:
 *
 *  [1] normalBW and MRMC from the last column (largest external
 *      pressure): the first row whose reduction doubles the smallest
 *      kernel's reduction marks the minor/normal boundary; the row
 *      above it defines MRMC.
 *  [2] TBWDC from the boundary row: the first column with a notable
 *      (2 x MRMC) reduction, plus that row's standalone demand.
 *  [3] intensiveBW from the first column (smallest external pressure):
 *      the first row with a notable (2 x MRMC) reduction.
 *  [4] CBP: the average external demand at which the normal-region
 *      rows' curves turn flat.
 *  [5] rateN: the average reduction rate of the normal-region rows
 *      between the drop onset and the contention balance point.
 */

#ifndef PCCS_MODEL_BUILDER_HH
#define PCCS_MODEL_BUILDER_HH

#include "calib/calibrator.hh"
#include "pccs/model.hh"

namespace pccs::model {

/** Tunable thresholds of the construction algorithm. */
struct BuilderOptions
{
    /**
     * Reduction (percent) of the smallest kernel at the largest
     * pressure beyond which the PU is deemed to have no minor region
     * at all (the paper's DLA case: normalBW = 0, MRMC = NA).
     */
    double noMinorRegionThreshold = 12.0;
    /**
     * Fallback "notable reduction" threshold (percent) used in steps
     * [2] and [3] when MRMC is NA; otherwise 2 x MRMC is used.
     */
    double notableReductionFallback = 8.0;
    /**
     * A curve counts as flat (step [4]) when consecutive points differ
     * by less than this many percentage points.
     */
    double flatEpsilon = 1.0;
};

/**
 * Run the five-step analysis on a calibration matrix.
 *
 * @param matrix the rela[n][m] matrix with its axes
 * @param peak_bw the SoC's peak bandwidth (PBW), GB/s
 * @param opts threshold knobs
 * @return the extracted PCCS parameters
 */
PccsParams buildModelParams(const calib::CalibrationMatrix &matrix,
                            GBps peak_bw,
                            const BuilderOptions &opts = {});

/**
 * Convenience: calibrate a PU on a simulated SoC and build its model.
 */
PccsModel buildModel(const soc::SocSimulator &sim, std::size_t pu_index,
                     const calib::SweepSpec &sweep = {},
                     const BuilderOptions &opts = {});

} // namespace pccs::model

#endif // PCCS_MODEL_BUILDER_HH
