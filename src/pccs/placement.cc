#include "placement.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pccs::model {

namespace {

/** Characterize one workload on one PU: phase demands + solo time. */
struct TaskOnPu
{
    std::vector<PhaseDemand> phases;
    double soloSeconds = 0.0;
    bool feasible = false;
};

TaskOnPu
characterize(const soc::SocSimulator &sim, std::size_t pu,
             const soc::PhasedWorkload &w)
{
    TaskOnPu t;
    if (w.phases.empty())
        return t;
    // One profile per phase, reused for both the total and the
    // per-phase shares (profiling is the expensive simulator call).
    std::vector<soc::StandaloneProfile> profs;
    profs.reserve(w.phases.size());
    double total = 0.0;
    for (const auto &ph : w.phases) {
        profs.push_back(sim.profile(pu, ph));
        total += profs.back().seconds;
    }
    for (const auto &prof : profs) {
        t.phases.push_back(
            {prof.bandwidthDemand, prof.seconds / total});
    }
    t.soloSeconds = total;
    t.feasible = true;
    return t;
}

} // namespace

std::vector<PlacementChoice>
enumeratePlacements(const soc::SocSimulator &sim,
                    const std::vector<const SlowdownPredictor *> &models,
                    const std::vector<PlacementTask> &tasks,
                    PlacementObjective objective)
{
    const std::size_t num_pus = sim.config().pus.size();
    PCCS_ASSERT(models.size() == num_pus,
                "need one model per PU (%zu given, %zu PUs)",
                models.size(), num_pus);
    PCCS_ASSERT(!tasks.empty() && tasks.size() <= num_pus,
                "placeable task count must be in [1, #PUs]");
    for (const auto &t : tasks) {
        PCCS_ASSERT(t.options.size() == num_pus,
                    "task '%s' needs one option slot per PU",
                    t.name.c_str());
    }

    // Pre-characterize every feasible (task, pu) pair.
    std::vector<std::vector<TaskOnPu>> on(tasks.size());
    for (std::size_t t = 0; t < tasks.size(); ++t) {
        on[t].resize(num_pus);
        for (std::size_t p = 0; p < num_pus; ++p)
            on[t][p] = characterize(sim, p, tasks[t].options[p]);
    }

    // Enumerate injective assignments task -> PU via permutations of
    // PU indices (the unused tail is ignored).
    std::vector<std::size_t> perm(num_pus);
    for (std::size_t p = 0; p < num_pus; ++p)
        perm[p] = p;
    std::sort(perm.begin(), perm.end());

    std::vector<PlacementChoice> choices;
    std::vector<std::vector<std::size_t>> seen;
    do {
        std::vector<std::size_t> assign(perm.begin(),
                                        perm.begin() + tasks.size());
        // Permutations of the unused tail repeat the same head.
        if (std::find(seen.begin(), seen.end(), assign) != seen.end())
            continue;
        seen.push_back(assign);

        bool feasible = true;
        for (std::size_t t = 0; t < tasks.size() && feasible; ++t)
            feasible = on[t][assign[t]].feasible;
        if (!feasible)
            continue;

        std::vector<CorunInput> inputs(tasks.size());
        for (std::size_t t = 0; t < tasks.size(); ++t) {
            inputs[t].model = models[assign[t]];
            inputs[t].phases = on[t][assign[t]].phases;
        }
        const std::vector<double> rs = predictCorun(inputs);

        PlacementChoice c;
        c.puAssignment = assign;
        c.relativeSpeed = rs;
        double worst_rs = 1e300;
        double makespan = 0.0;
        for (std::size_t t = 0; t < tasks.size(); ++t) {
            const double corun_s =
                on[t][assign[t]].soloSeconds / (rs[t] / 100.0);
            c.corunSeconds.push_back(corun_s);
            worst_rs = std::min(worst_rs, rs[t]);
            makespan = std::max(makespan, corun_s);
        }
        c.score = objective == PlacementObjective::MaxMinRelativeSpeed
                      ? worst_rs
                      : -makespan;
        choices.push_back(std::move(c));
    } while (std::next_permutation(perm.begin(), perm.end()));

    std::sort(choices.begin(), choices.end(),
              [](const PlacementChoice &a, const PlacementChoice &b) {
                  return a.score > b.score;
              });
    return choices;
}

PlacementChoice
bestPlacement(const soc::SocSimulator &sim,
              const std::vector<const SlowdownPredictor *> &models,
              const std::vector<PlacementTask> &tasks,
              PlacementObjective objective)
{
    const auto choices =
        enumeratePlacements(sim, models, tasks, objective);
    if (choices.empty())
        fatal("no feasible task-to-PU placement exists");
    return choices.front();
}

} // namespace pccs::model
