/**
 * @file
 * Plain-text serialization of PCCS model parameters.
 *
 * The processor-centric methodology's selling point is calibrate-once,
 * predict-forever: a model built on one board (or one simulator
 * configuration) is reused across arbitrary workloads and, via linear
 * scaling, across memory configurations. Persisting the handful of
 * parameters makes that workflow practical — the CLI and downstream
 * tools exchange models as small text files.
 *
 * Format (one key/value pair per line, '#' comments allowed):
 *
 *     pccs-model v1
 *     normalBw 38.1
 *     intensiveBw 96.2
 *     mrmc 4.9          # or "NA" when the PU has no minor region
 *     cbp 45.3
 *     tbwdc 87.2
 *     rateN 1.11
 *     peakBw 137.0
 */

#ifndef PCCS_MODEL_SERIALIZE_HH
#define PCCS_MODEL_SERIALIZE_HH

#include <optional>
#include <string>

#include "pccs/model.hh"

namespace pccs::model {

/** Render parameters in the textual model format. */
std::string paramsToText(const PccsParams &params);

/**
 * Outcome of a non-fatal parse or load. Exactly one of `params` /
 * `error` is meaningful: a failed load never yields a partially
 * filled or silently-defaulted parameter set.
 */
struct ParamsLoad
{
    std::optional<PccsParams> params;
    /** Human-readable diagnostic when `params` is empty. */
    std::string error;

    bool ok() const { return params.has_value(); }
};

/**
 * Parse the textual model format with a full diagnostic: bad header,
 * malformed/duplicate/missing keys (with line numbers), non-numeric
 * or non-finite values, and which structural constraint failed when
 * the parameters are out of range.
 */
ParamsLoad paramsFromTextChecked(const std::string &text);

/**
 * Parse the textual model format.
 * @return the parameters, or std::nullopt with a warning when the
 *         text is malformed or parameters are invalid
 */
std::optional<PccsParams> paramsFromText(const std::string &text);

/**
 * @return the first violated structural constraint of `params` as
 *         text, or an empty string when `params.valid()`.
 */
std::string paramsValidationError(const PccsParams &params);

/** Write parameters to a file; fatal on I/O failure. */
void saveParams(const PccsParams &params, const std::string &path);

/** Read parameters from a file without exiting on failure. */
ParamsLoad tryLoadParams(const std::string &path);

/** Read parameters from a file; fatal on I/O or parse failure. */
PccsParams loadParams(const std::string &path);

} // namespace pccs::model

#endif // PCCS_MODEL_SERIALIZE_HH
