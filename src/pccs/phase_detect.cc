#include "phase_detect.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/statistics.hh"

namespace pccs::model {

namespace {

double
windowMean(std::span<const GBps> trace, std::size_t begin,
           std::size_t end)
{
    double s = 0.0;
    for (std::size_t i = begin; i < end; ++i)
        s += trace[i];
    return end > begin ? s / static_cast<double>(end - begin) : 0.0;
}

bool
sameLevel(double a, double b, double relative_shift)
{
    const double scale = std::max(std::fabs(a), std::fabs(b));
    if (scale < 1e-12)
        return true;
    return std::fabs(a - b) <= relative_shift * scale;
}

} // namespace

std::vector<DetectedPhase>
detectPhases(std::span<const GBps> trace,
             const PhaseDetectorOptions &opts)
{
    PCCS_ASSERT(!trace.empty(), "phase detection needs a trace");
    PCCS_ASSERT(opts.window >= 1, "window must be >= 1");

    // The sliding-window detector cannot resolve phases shorter than
    // its window; anything below that is jitter by construction.
    const std::size_t min_len =
        std::max(opts.minPhaseLength, opts.window);

    // Stage 1: change points. Where the trailing-window and
    // leading-window means diverge beyond the relative threshold, a
    // transition is in progress; each contiguous run of divergence
    // yields exactly one cut, placed at its point of maximum mean
    // shift (the true boundary).
    std::vector<std::size_t> cuts{0};
    const std::size_t w = std::min(opts.window, trace.size());
    std::size_t run_best = 0;
    double run_best_shift = 0.0;
    bool in_run = false;
    for (std::size_t i = w; i + w <= trace.size(); ++i) {
        const double before = windowMean(trace, i - w, i);
        const double after = windowMean(trace, i, i + w);
        const bool diverged =
            !sameLevel(before, after, opts.relativeShift);
        const double shift = std::fabs(after - before);
        if (diverged) {
            if (!in_run || shift > run_best_shift) {
                run_best = i;
                run_best_shift = shift;
            }
            in_run = true;
        } else if (in_run) {
            if (run_best - cuts.back() >= min_len)
                cuts.push_back(run_best);
            in_run = false;
            run_best_shift = 0.0;
        }
    }
    if (in_run && run_best - cuts.back() >= min_len)
        cuts.push_back(run_best);
    cuts.push_back(trace.size());

    // Stage 2: build segments, then merge adjacent segments whose
    // means are within the threshold (jitter absorption) and segments
    // below the minimum length.
    std::vector<DetectedPhase> phases;
    for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
        DetectedPhase p;
        p.begin = cuts[c];
        p.end = cuts[c + 1];
        p.meanDemand = windowMean(trace, p.begin, p.end);
        phases.push_back(p);
    }

    auto merge_into = [&trace](DetectedPhase &dst,
                               const DetectedPhase &src) {
        dst.begin = std::min(dst.begin, src.begin);
        dst.end = std::max(dst.end, src.end);
        dst.meanDemand = windowMean(trace, dst.begin, dst.end);
    };

    bool merged = true;
    while (merged && phases.size() > 1) {
        merged = false;
        for (std::size_t i = 0; i + 1 < phases.size(); ++i) {
            const bool too_short =
                phases[i].length() < min_len ||
                phases[i + 1].length() < min_len;
            if (too_short || sameLevel(phases[i].meanDemand,
                                       phases[i + 1].meanDemand,
                                       opts.relativeShift)) {
                merge_into(phases[i], phases[i + 1]);
                phases.erase(phases.begin() + i + 1);
                merged = true;
                break;
            }
        }
        if (merged || phases.size() < 3)
            continue;
        // Sandwich rule: a brief excursion between two same-level
        // phases is a blip, not a phase — its own mean is diluted by
        // the window and may evade the pairwise merge above.
        for (std::size_t i = 0; i + 2 < phases.size(); ++i) {
            if (phases[i + 1].length() < 2 * w &&
                sameLevel(phases[i].meanDemand,
                          phases[i + 2].meanDemand,
                          opts.relativeShift)) {
                merge_into(phases[i], phases[i + 1]);
                merge_into(phases[i], phases[i + 2]);
                phases.erase(phases.begin() + i + 1,
                             phases.begin() + i + 3);
                merged = true;
                break;
            }
        }
    }
    return phases;
}

std::vector<PhaseDemand>
toPhaseDemands(const std::vector<DetectedPhase> &phases)
{
    PCCS_ASSERT(!phases.empty(), "no phases to convert");
    std::size_t total = 0;
    for (const auto &p : phases)
        total += p.length();
    std::vector<PhaseDemand> out;
    out.reserve(phases.size());
    for (const auto &p : phases) {
        out.push_back({p.meanDemand,
                       static_cast<double>(p.length()) /
                           static_cast<double>(total)});
    }
    return out;
}

double
predictFromTrace(const SlowdownPredictor &predictor,
                 std::span<const GBps> trace, GBps y,
                 const PhaseDetectorOptions &opts)
{
    return predictPiecewise(predictor,
                            toPhaseDemands(detectPhases(trace, opts)),
                            y);
}

} // namespace pccs::model
