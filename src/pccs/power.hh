/**
 * @file
 * Power modeling and power-budgeted design exploration.
 *
 * Section 5 of the paper: "In SoC design, our current model could
 * potentially work with power budgeting by predicting the co-run
 * performance under each given power budget." This module implements
 * that workflow: a standard frequency-cubed dynamic power model per
 * PU, and an explorer that searches per-PU clock assignments
 * maximizing the worst co-run performance subject to a total power
 * budget, with the slowdown predicted by PCCS (or any
 * SlowdownPredictor).
 */

#ifndef PCCS_MODEL_POWER_HH
#define PCCS_MODEL_POWER_HH

#include <vector>

#include "pccs/predictor.hh"
#include "soc/simulator.hh"

namespace pccs::model {

/** Power characteristics of one PU. */
struct PowerParams
{
    /** Dynamic power at the maximum clock with all cores, watts. */
    double dynamicWatts = 10.0;
    /** Leakage / always-on power, watts. */
    double staticWatts = 1.0;
    /**
     * Exponent of the dynamic-power frequency dependence. With
     * voltage scaled alongside frequency (DVFS), P_dyn ~ C V^2 f ~
     * f^3; fixed-voltage scaling would use 1.
     */
    double frequencyExponent = 3.0;
};

/**
 * @return PU power in watts at clock `frequency` (its nominal clock
 * is `max_frequency`), with `core_scale` of its cores powered.
 */
double puPower(const PowerParams &power, MHz frequency,
               MHz max_frequency, double core_scale = 1.0);

/** A power-budgeted frequency-assignment problem. */
struct PowerBudgetProblem
{
    soc::SocConfig soc;
    /** One kernel per PU (parallel to soc.pus). */
    std::vector<soc::KernelProfile> kernels;
    /** One slowdown model per PU (parallel to soc.pus; not owned). */
    std::vector<const SlowdownPredictor *> models;
    /** Candidate clock grid per PU, MHz (parallel to soc.pus). */
    std::vector<std::vector<MHz>> grids;
    /** Power characteristics per PU (parallel to soc.pus). */
    std::vector<PowerParams> power;
    /** Total SoC power budget, watts. */
    double budgetWatts = 0.0;
};

/** Result of a power-budgeted exploration. */
struct PowerBudgetResult
{
    /** Selected clock per PU, MHz; empty when nothing fits. */
    std::vector<MHz> frequencies;
    /** Total power of the selection, watts. */
    double totalWatts = 0.0;
    /**
     * The objective: the minimum, over PUs, of the predicted co-run
     * performance relative to the full-clock *standalone*
     * performance, in percent.
     */
    double worstRelativePerformance = 0.0;
    /** Per-PU relative performance of the selection, percent. */
    std::vector<double> relativePerformance;
};

/**
 * Exhaustively search the clock grids for the assignment that
 * maximizes the worst per-PU predicted co-run performance while the
 * total power stays within the budget.
 *
 * Performance of PU i at clocks (f_1..f_n): its standalone rate at
 * f_i times the predicted relative speed under the other PUs' total
 * standalone demand, normalized by its standalone rate at its
 * maximum clock.
 */
PowerBudgetResult explorePowerBudget(const PowerBudgetProblem &problem);

} // namespace pccs::model

#endif // PCCS_MODEL_POWER_HH
