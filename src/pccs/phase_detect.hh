/**
 * @file
 * Bandwidth-trace phase detection.
 *
 * Section 3.2 of the paper handles multi-phase programs by dividing
 * them into phases and predicting each phase separately; Section 4.1
 * notes that phase detection itself "is a well-studied topic and is
 * orthogonal to this work". This module supplies the missing piece for
 * a usable end-to-end pipeline: given a standalone bandwidth trace
 * (GB/s sampled at a fixed period, as produced by any profiler or by
 * soc::traceWorkload), segment it into phases and emit the
 * PhaseDemand list the multi-phase predictor consumes.
 *
 * The detector is a two-stage classic: (1) change-point detection by
 * comparing adjacent sliding-window means against a relative
 * threshold, (2) merging of adjacent segments whose mean demands are
 * within the threshold (absorbing detection jitter).
 */

#ifndef PCCS_MODEL_PHASE_DETECT_HH
#define PCCS_MODEL_PHASE_DETECT_HH

#include <cstddef>
#include <span>
#include <vector>

#include "pccs/phases.hh"

namespace pccs::model {

/** Knobs of the phase detector. */
struct PhaseDetectorOptions
{
    /** Sliding-window length in samples for the local mean. */
    std::size_t window = 8;
    /**
     * Relative mean-shift that starts a new phase: adjacent windows
     * whose means differ by more than this fraction of the larger
     * mean are considered different phases.
     */
    double relativeShift = 0.15;
    /** Segments shorter than this many samples merge into neighbors. */
    std::size_t minPhaseLength = 4;
};

/** One detected phase of a bandwidth trace. */
struct DetectedPhase
{
    /** First sample index of the phase. */
    std::size_t begin = 0;
    /** One past the last sample index. */
    std::size_t end = 0;
    /** Mean bandwidth demand over the phase, GB/s. */
    GBps meanDemand = 0.0;

    std::size_t length() const { return end - begin; }
};

/**
 * Segment a standalone bandwidth trace into phases.
 *
 * @param trace bandwidth samples in GB/s at a fixed sampling period
 * @param opts detector knobs
 * @return non-empty, contiguous, ordered phase list covering the trace
 */
std::vector<DetectedPhase> detectPhases(
    std::span<const GBps> trace, const PhaseDetectorOptions &opts = {});

/**
 * Convert detected phases into the multi-phase predictor's input:
 * time shares are the phases' sample-count fractions (the trace is
 * sampled uniformly in time).
 */
std::vector<PhaseDemand> toPhaseDemands(
    const std::vector<DetectedPhase> &phases);

/**
 * Convenience: detect phases in a trace and predict the program-level
 * relative speed under external demand y using the piecewise method.
 */
double predictFromTrace(const SlowdownPredictor &predictor,
                        std::span<const GBps> trace, GBps y,
                        const PhaseDetectorOptions &opts = {});

} // namespace pccs::model

#endif // PCCS_MODEL_PHASE_DETECT_HH
