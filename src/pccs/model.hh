/**
 * @file
 * The PCCS three-region interference-conscious slowdown model
 * (Section 3.1, Equations 1-5).
 *
 * A kernel is classified by its standalone bandwidth demand x into the
 * minor, normal, or intensive contention region (Eq. 1); each region
 * has a piecewise-linear achieved-relative-speed curve in the total
 * external demand y (Eqs. 2, 3, 5), with the intensive-region
 * reduction rate derived from the normal-region rate (Eq. 4).
 *
 * Note on Eq. 2: the paper's text defines MRMC as "the maximum
 * slowdown in the minor contention region at the largest external
 * memory pressure" and describes the speed as dropping while the
 * *external* demand increases, so the linear term of Eq. 2 is taken
 * over the external demand y (the equation in the paper prints x,
 * which would make the minor-region curve independent of the external
 * pressure, contradicting Fig. 3a and Fig. 6).
 */

#ifndef PCCS_MODEL_MODEL_HH
#define PCCS_MODEL_MODEL_HH

#include <string>

#include "pccs/batch.hh"
#include "pccs/predictor.hh"

namespace pccs::model {

/** Contention regions of Equation 1. */
enum class Region { Minor, Normal, Intensive };

/** @return display name of a region. */
const char *regionName(Region r);

/**
 * The parameters of one PU's PCCS model (Table 4 of the paper).
 * All bandwidths in GB/s; MRMC in percent; rateN in percent per GB/s.
 */
struct PccsParams
{
    /** Boundary between minor and normal contention regions. */
    GBps normalBw = 0.0;
    /** Boundary between normal and intensive contention regions. */
    GBps intensiveBw = 0.0;
    /**
     * Maximum reduction of minor contention (percent) at the largest
     * external pressure. NaN means the PU has no minor region (the
     * paper's DLA case, Table 7); 0 external slope is then used for
     * the (empty) minor region.
     */
    double mrmc = 0.0;
    /** Contention balance point: external demand where curves go flat. */
    GBps cbp = 0.0;
    /** Total bandwidth demand with contention: drop-phase entry point. */
    GBps tbwdc = 0.0;
    /** Reduction rate in the normal region, percent per GB/s. */
    double rateN = 0.0;
    /** Peak bandwidth of the SoC, GB/s. */
    GBps peakBw = 0.0;

    /** @return true when all parameters are structurally sane. */
    bool valid() const;

    /** @return true if this PU has no minor region (mrmc is NaN). */
    bool noMinorRegion() const;
};

/**
 * The three-region PCCS slowdown model of one PU on one SoC.
 */
class PccsModel final : public SlowdownPredictor, public BatchPredictor
{
  public:
    explicit PccsModel(const PccsParams &params,
                       std::string display_name = "PCCS");

    const char *name() const override { return displayName_.c_str(); }

    /** Equation 1: classify a bandwidth demand into a region. */
    Region classify(GBps x) const;

    /** Equation 4: intensive-region reduction rate for demand x. */
    double rateI(GBps x) const;

    /**
     * Equations 2/3/5: predicted achieved relative speed (%) of a
     * kernel with standalone demand x under external demand y.
     */
    double relativeSpeed(GBps x, GBps y) const override;

    /**
     * Branchless structure-of-arrays evaluation, bit-exact with
     * calling `relativeSpeed` per point: all three region curves are
     * computed with the parameters hoisted out of the loop, and the
     * per-point region/piece choices reduce to arithmetic selects the
     * compiler can turn into vector blends.
     */
    void relativeSpeedBatch(std::span<const GBps> x,
                            std::span<const GBps> y,
                            std::span<double> speeds) const override;

    void relativeSpeedBroadcast(std::span<const GBps> x, GBps y,
                                std::span<double> speeds) const override;

    const PccsParams &params() const { return params_; }

  private:
    double minorSpeed(GBps y) const;
    double normalSpeed(GBps x, GBps y) const;
    double intensiveSpeed(GBps x, GBps y) const;

    PccsParams params_;
    std::string displayName_;
};

} // namespace pccs::model

#endif // PCCS_MODEL_MODEL_HH
