#include "scaling.hh"

#include <cmath>

#include "common/logging.hh"

namespace pccs::model {

PccsParams
scaleParams(const PccsParams &params, double ratio)
{
    PCCS_ASSERT(ratio > 0.0, "bandwidth ratio must be positive");
    PccsParams s = params;
    s.normalBw = params.normalBw * ratio;
    s.intensiveBw = params.intensiveBw * ratio;
    s.cbp = params.cbp * ratio;
    s.tbwdc = params.tbwdc * ratio;
    s.peakBw = params.peakBw * ratio;
    // MRMC is a percentage at the (scaled) largest pressure: the curve
    // shape is preserved, so the value carries over unchanged.
    s.mrmc = params.mrmc;
    // rateN is percent per GB/s: the same reduction now spreads over a
    // bandwidth range scaled by `ratio`.
    s.rateN = params.rateN / ratio;
    return s;
}

namespace {

double
relErr(double a, double b)
{
    if (std::isnan(a) || std::isnan(b))
        return (std::isnan(a) && std::isnan(b)) ? 0.0 : 100.0;
    const double denom = std::fabs(b);
    if (denom < 1e-12)
        return std::fabs(a) < 1e-12 ? 0.0 : 100.0;
    return 100.0 * std::fabs(a - b) / denom;
}

} // namespace

ScalingError
compareParams(const PccsParams &scaled, const PccsParams &constructed)
{
    ScalingError e;
    e.normalBw = relErr(scaled.normalBw, constructed.normalBw);
    e.intensiveBw = relErr(scaled.intensiveBw, constructed.intensiveBw);
    e.mrmc = relErr(scaled.mrmc, constructed.mrmc);
    e.cbp = relErr(scaled.cbp, constructed.cbp);
    e.tbwdc = relErr(scaled.tbwdc, constructed.tbwdc);
    e.rateN = relErr(scaled.rateN, constructed.rateN);
    return e;
}

double
ScalingError::average() const
{
    return (normalBw + intensiveBw + mrmc + cbp + tbwdc + rateN) / 6.0;
}

} // namespace pccs::model
