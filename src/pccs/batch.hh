/**
 * @file
 * Structure-of-arrays batch evaluation of slowdown predictors.
 *
 * Grid-shaped consumers — design-space exploration, the co-run
 * fixed-point solver, placement enumeration, the serve predict
 * batcher — issue millions of cheap model queries. Paying a virtual
 * dispatch plus per-point region branching for each query dominates
 * the cost of the arithmetic itself, so this layer adds a batch
 * interface: spans of x/y demands in, a span of speeds out, evaluated
 * by a branchless kernel (region selection via arithmetic select,
 * parameters hoisted out of the loop) that compilers auto-vectorize.
 *
 * Contract: the batched path is bit-exact with the scalar path. For
 * every i, `speeds[i]` has the same bit pattern as
 * `relativeSpeed(x[i], y[i])` — the kernels perform the same
 * operations in the same order per point, they only drop the
 * per-point dispatch and branching. Tests enforce this with a
 * scalar-vs-batch parity oracle (see tests/test_batch_predict.cc).
 */

#ifndef PCCS_MODEL_BATCH_HH
#define PCCS_MODEL_BATCH_HH

#include <span>
#include <vector>

#include "pccs/predictor.hh"

/**
 * Function multiversioning for the batch kernels: the annotated
 * function is compiled once for the baseline ISA and once for AVX2
 * (4-wide doubles), with the runtime resolver picking per host. AVX2
 * deliberately excludes FMA, so no contraction can change results —
 * every clone stays bit-exact with the scalar path. `flatten` forces
 * the shared kernel template to inline into each clone so its loop is
 * compiled under the clone's ISA.
 *
 * Disabled under sanitizers: `target_clones` emits an IFUNC whose
 * resolver runs during relocation, before the sanitizer runtime has
 * initialized — an instant segfault under TSan/ASan. The baseline
 * code path is what sanitizer builds should check anyway.
 */
#if defined(__x86_64__) && defined(__GNUC__) &&                        \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define PCCS_KERNEL_MULTIVERSION                                       \
    __attribute__((target_clones("default", "avx2"), flatten))
#else
#define PCCS_KERNEL_MULTIVERSION
#endif

namespace pccs::model {

/**
 * Interface of batch-capable slowdown predictors. Implemented
 * natively by `PccsModel` and `GablesModel`; any other
 * `SlowdownPredictor` can be driven through `ScalarBatchAdapter`.
 */
class BatchPredictor
{
  public:
    virtual ~BatchPredictor() = default;

    /**
     * Evaluate many points at once: speeds[i] = relativeSpeed(x[i],
     * y[i]). All spans must have equal length. Bit-exact with the
     * scalar path.
     */
    virtual void relativeSpeedBatch(std::span<const GBps> x,
                                    std::span<const GBps> y,
                                    std::span<double> speeds) const = 0;

    /**
     * Broadcast form: speeds[i] = relativeSpeed(x[i], y) for one
     * shared external demand (a grid of kernels under one co-run
     * pressure). The default materializes a constant y vector; native
     * implementations override it with a strided kernel.
     */
    virtual void relativeSpeedBroadcast(std::span<const GBps> x, GBps y,
                                        std::span<double> speeds) const;

    /** Convenience: pairwise evaluation into a fresh vector. */
    std::vector<double> relativeSpeeds(std::span<const GBps> x,
                                       std::span<const GBps> y) const;
};

/**
 * Drives any scalar `SlowdownPredictor` through the batch interface,
 * one virtual call per point. The semantic fallback for predictors
 * without a native kernel — correctness by construction, none of the
 * throughput.
 */
class ScalarBatchAdapter final : public BatchPredictor
{
  public:
    /** @param scalar the wrapped predictor (not owned). */
    explicit ScalarBatchAdapter(const SlowdownPredictor &scalar)
        : scalar_(&scalar)
    {
    }

    void relativeSpeedBatch(std::span<const GBps> x,
                            std::span<const GBps> y,
                            std::span<double> speeds) const override;

    void relativeSpeedBroadcast(std::span<const GBps> x, GBps y,
                                std::span<double> speeds) const override;

  private:
    const SlowdownPredictor *scalar_;
};

/**
 * @return the predictor's native batch interface, or nullptr when it
 * only implements the scalar protocol (callers then fall back to
 * `ScalarBatchAdapter`).
 */
const BatchPredictor *batchInterface(const SlowdownPredictor &predictor);

} // namespace pccs::model

#endif // PCCS_MODEL_BATCH_HH
