#include "batch.hh"

#include "common/logging.hh"

namespace pccs::model {

void
BatchPredictor::relativeSpeedBroadcast(std::span<const GBps> x, GBps y,
                                       std::span<double> speeds) const
{
    const std::vector<double> ys(x.size(), y);
    relativeSpeedBatch(x, ys, speeds);
}

std::vector<double>
BatchPredictor::relativeSpeeds(std::span<const GBps> x,
                               std::span<const GBps> y) const
{
    std::vector<double> speeds(x.size(), 0.0);
    relativeSpeedBatch(x, y, speeds);
    return speeds;
}

void
ScalarBatchAdapter::relativeSpeedBatch(std::span<const GBps> x,
                                       std::span<const GBps> y,
                                       std::span<double> speeds) const
{
    PCCS_ASSERT(x.size() == y.size() && x.size() == speeds.size(),
                "batch span lengths differ (%zu, %zu, %zu)", x.size(),
                y.size(), speeds.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        speeds[i] = scalar_->relativeSpeed(x[i], y[i]);
}

void
ScalarBatchAdapter::relativeSpeedBroadcast(std::span<const GBps> x,
                                           GBps y,
                                           std::span<double> speeds) const
{
    PCCS_ASSERT(x.size() == speeds.size(),
                "batch span lengths differ (%zu, %zu)", x.size(),
                speeds.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        speeds[i] = scalar_->relativeSpeed(x[i], y);
}

const BatchPredictor *
batchInterface(const SlowdownPredictor &predictor)
{
    return dynamic_cast<const BatchPredictor *>(&predictor);
}

} // namespace pccs::model
