/**
 * @file
 * Linear bandwidth scaling of PCCS parameters (Section 3.3).
 *
 * When the memory subsystem's theoretical bandwidth changes by an
 * incremental amount (I/O clock or channel-count change, same memory
 * technology), the bandwidth-valued PCCS parameters scale linearly
 * with the bandwidth ratio, and the reduction rates — percent per
 * GB/s — scale inversely, so the same total reduction spreads over
 * the scaled bandwidth range. No re-calibration is needed.
 */

#ifndef PCCS_MODEL_SCALING_HH
#define PCCS_MODEL_SCALING_HH

#include "pccs/model.hh"

namespace pccs::model {

/**
 * Scale a PCCS parameter set to a new memory bandwidth.
 *
 * @param params model built at the original memory configuration
 * @param ratio  new theoretical bandwidth / original theoretical
 *               bandwidth (e.g., 1066/2133 for halving the clock)
 * @return the scaled parameter set
 */
PccsParams scaleParams(const PccsParams &params, double ratio);

/**
 * Per-parameter relative differences between a scaled model and a
 * model constructed from scratch at the target configuration
 * (the Table 5 comparison).
 */
struct ScalingError
{
    double normalBw = 0.0;
    double intensiveBw = 0.0;
    double mrmc = 0.0;
    double cbp = 0.0;
    double tbwdc = 0.0;
    double rateN = 0.0;

    /** @return the mean of the six component errors. */
    double average() const;
};

/** Relative errors (in percent) of `scaled` against `constructed`. */
ScalingError compareParams(const PccsParams &scaled,
                           const PccsParams &constructed);

} // namespace pccs::model

#endif // PCCS_MODEL_SCALING_HH
