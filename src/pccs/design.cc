#include "design.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pccs::model {

DesignExplorer::DesignExplorer(const soc::SocConfig &config,
                               runner::SweepEngine *engine)
    : config_(config),
      engine_(engine ? engine : &runner::SweepEngine::global())
{
    PCCS_ASSERT(!config_.pus.empty(), "explorer needs a populated SoC");
}

soc::SocConfig
DesignExplorer::configured(std::size_t pu_index, MHz frequency,
                           double core_scale) const
{
    PCCS_ASSERT(pu_index < config_.pus.size(), "bad PU index %zu",
                pu_index);
    soc::SocConfig cfg = config_;
    soc::PuParams &pu = cfg.pus[pu_index];
    if (frequency > 0.0)
        pu.frequency = frequency;
    if (core_scale > 0.0) {
        // Removing cores reduces both the compute throughput and the
        // load-issue capability; the shared interface width stays.
        pu.flopsPerCycle *= core_scale;
        pu.issueBandwidth *= core_scale;
    }
    return cfg;
}

double
DesignExplorer::performance(const soc::SocConfig &cfg,
                            std::size_t pu_index,
                            const soc::KernelProfile &kernel,
                            GBps external,
                            const SlowdownPredictor *predictor) const
{
    const soc::SocSimulator sim(cfg);
    const soc::StandaloneProfile solo =
        engine_->profile(sim, pu_index, kernel);
    double rs;
    if (predictor) {
        rs = predictor->relativeSpeed(solo.bandwidthDemand, external);
    } else {
        rs = engine_->evaluate(sim, pu_index, kernel, external);
    }
    return solo.rate * rs / 100.0;
}

double
DesignExplorer::corunPerformance(std::size_t pu_index,
                                 const soc::KernelProfile &kernel,
                                 MHz frequency, GBps external,
                                 const SlowdownPredictor &predictor) const
{
    return performance(configured(pu_index, frequency, 0.0), pu_index,
                       kernel, external, &predictor);
}

double
DesignExplorer::corunPerformanceActual(std::size_t pu_index,
                                       const soc::KernelProfile &kernel,
                                       MHz frequency,
                                       GBps external) const
{
    return performance(configured(pu_index, frequency, 0.0), pu_index,
                       kernel, external, nullptr);
}

DesignSelection
DesignExplorer::selectLowest(
    const std::vector<double> &grid, double allowed_pct,
    const std::function<double(double)> &perf_at) const
{
    PCCS_ASSERT(!grid.empty(), "selection grid is empty");
    std::vector<double> sorted = grid;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();

    if (!pruneSelection_) {
        // Full scan: every grid point's performance on the engine's
        // pool (the points are independent; repeated selections over
        // the same grid hit the engine cache), then a serial scan —
        // deterministic and identical to the serial early-exit loop.
        std::vector<double> perfs(n, 0.0);
        engine_->parallelFor(n, [&](std::size_t i) {
            perfs[i] = perf_at(sorted[i]);
        });

        DesignSelection sel;
        sel.referencePerformance = perfs.back();
        const double floor =
            sel.referencePerformance * (1.0 - allowed_pct / 100.0);

        sel.value = sorted.back();
        sel.predictedPerformance = sel.referencePerformance;
        for (std::size_t i = 0; i < n; ++i) {
            if (perfs[i] >= floor) {
                sel.value = sorted[i];
                sel.predictedPerformance = perfs[i];
                break;
            }
        }
        return sel;
    }

    // Pruned selection. Co-run performance is monotone non-decreasing
    // in the knob (a higher clock or more cores never predicts slower
    // co-run performance), so the acceptable set {i : perf(i) >=
    // floor} is a suffix of the sorted grid and the full scan's
    // "first acceptable point" is the suffix boundary. The reference
    // is hoisted — computed once per query, not once per candidate —
    // and the boundary is found by binary search: 1 + ceil(log2 n)
    // evaluations instead of n.
    std::vector<double> memo(n, 0.0);
    std::vector<char> known(n, 0);
    const auto eval = [&](std::size_t i) {
        if (!known[i]) {
            memo[i] = perf_at(sorted[i]);
            known[i] = 1;
        }
        return memo[i];
    };

    DesignSelection sel;
    sel.referencePerformance = eval(n - 1);
    const double floor =
        sel.referencePerformance * (1.0 - allowed_pct / 100.0);

    // Invariant: perf(hi) >= floor (the reference itself qualifies,
    // since floor <= referencePerformance for allowed_pct >= 0).
    std::size_t lo = 0, hi = n - 1;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (eval(mid) >= floor)
            hi = mid;
        else
            lo = mid + 1;
    }
    sel.value = sorted[hi];
    sel.predictedPerformance = eval(hi);
    return sel;
}

std::vector<double>
DesignExplorer::corunPerformanceGrid(
    std::size_t pu_index, const soc::KernelProfile &kernel,
    const std::vector<MHz> &grid, GBps external,
    const SlowdownPredictor &predictor) const
{
    const std::size_t n = grid.size();
    // Stage 1: standalone profiles of every candidate configuration,
    // in parallel and memoized (the expensive, simulator-backed part).
    std::vector<soc::StandaloneProfile> solos(n);
    engine_->parallelFor(n, [&](std::size_t i) {
        const soc::SocSimulator sim(
            configured(pu_index, grid[i], 0.0));
        solos[i] = engine_->profile(sim, pu_index, kernel);
    });

    // Stage 2: the whole grid's slowdowns in one batch call over the
    // structure-of-arrays demands.
    std::vector<double> xs(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        xs[i] = solos[i].bandwidthDemand;
    std::vector<double> speeds(n, 0.0);
    if (const BatchPredictor *bp = batchInterface(predictor)) {
        bp->relativeSpeedBroadcast(xs, external, speeds);
    } else {
        const ScalarBatchAdapter adapter(predictor);
        adapter.relativeSpeedBroadcast(xs, external, speeds);
    }

    std::vector<double> perfs(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        perfs[i] = solos[i].rate * speeds[i] / 100.0;
    return perfs;
}

DesignSelection
DesignExplorer::selectFrequency(std::size_t pu_index,
                                const soc::KernelProfile &kernel,
                                GBps external, double allowed_slowdown_pct,
                                const SlowdownPredictor &predictor,
                                const std::vector<MHz> &grid) const
{
    return selectLowest(grid, allowed_slowdown_pct, [&](double f) {
        return corunPerformance(pu_index, kernel, f, external, predictor);
    });
}

DesignSelection
DesignExplorer::selectFrequencyActual(std::size_t pu_index,
                                      const soc::KernelProfile &kernel,
                                      GBps external,
                                      double allowed_slowdown_pct,
                                      const std::vector<MHz> &grid) const
{
    return selectLowest(grid, allowed_slowdown_pct, [&](double f) {
        return corunPerformanceActual(pu_index, kernel, f, external);
    });
}

DesignSelection
DesignExplorer::selectCoreScale(std::size_t pu_index,
                                const soc::KernelProfile &kernel,
                                GBps external, double allowed_slowdown_pct,
                                const SlowdownPredictor &predictor,
                                const std::vector<double> &grid) const
{
    return selectLowest(grid, allowed_slowdown_pct, [&](double s) {
        return performance(configured(pu_index, 0.0, s), pu_index,
                           kernel, external, &predictor);
    });
}

} // namespace pccs::model
