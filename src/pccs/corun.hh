/**
 * @file
 * Whole-SoC co-run prediction (the Section 3.4 / Figure 7 workflow as
 * a library API): given each PU's slowdown model and each placed
 * program's phase demands, predict every program's achieved relative
 * speed.
 *
 * Two modes:
 *
 *  - one-shot (the paper's protocol): each PU's external demand y is
 *    the sum of its co-runners' *standalone* demands;
 *  - iterative refinement: the external inputs are iterated toward
 *    the fixed point y_i = sum_j!=i x_j * RS_j/100, modeling
 *    co-runners that throttle their *issue rate* when slowed.
 *
 * Which mode fits depends on the memory system: under fairness
 *  allocation a bandwidth-capped program keeps *demanding* its
 *  standalone rate (its request queue stays full), so the one-shot
 *  protocol matches — which is why the paper uses it, and why it is
 *  the default here. Refinement applies to co-runners that genuinely
 *  issue less when slowed (e.g., latency-bound, low-MLP producers).
 */

#ifndef PCCS_MODEL_CORUN_HH
#define PCCS_MODEL_CORUN_HH

#include <vector>

#include "pccs/phases.hh"
#include "pccs/predictor.hh"

namespace pccs::model {

/** One placed program as the co-run predictor sees it. */
struct CorunInput
{
    /** The PU's slowdown model (not owned). */
    const SlowdownPredictor *model = nullptr;
    /** The program's phases on that PU (standalone demands+shares). */
    std::vector<PhaseDemand> phases;

    /** @return the time-weighted mean standalone demand, GB/s. */
    GBps meanDemand() const;
};

/** Options of the co-run prediction. */
struct CorunPredictOptions
{
    /** 0 = the paper's one-shot protocol; n > 0 = refine n times. */
    unsigned refinementIterations = 0;
    /** Damping factor of the refinement updates, in (0, 1]. */
    double damping = 0.7;
};

/**
 * Predict the achieved relative speed (%) of every placed program.
 *
 * @param inputs one entry per PU (every PU runs one program)
 * @return relative speeds, parallel to inputs
 */
std::vector<double> predictCorun(
    const std::vector<CorunInput> &inputs,
    const CorunPredictOptions &opts = {});

} // namespace pccs::model

#endif // PCCS_MODEL_CORUN_HH
