#include "serialize.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "common/logging.hh"

namespace pccs::model {

std::string
paramsToText(const PccsParams &params)
{
    std::ostringstream os;
    os << "pccs-model v1\n";
    char buf[64];
    auto emit = [&](const char *key, double v) {
        if (std::isnan(v)) {
            os << key << " NA\n";
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", v);
            os << key << " " << buf << "\n";
        }
    };
    emit("normalBw", params.normalBw);
    emit("intensiveBw", params.intensiveBw);
    emit("mrmc", params.mrmc);
    emit("cbp", params.cbp);
    emit("tbwdc", params.tbwdc);
    emit("rateN", params.rateN);
    emit("peakBw", params.peakBw);
    return os.str();
}

std::optional<PccsParams>
paramsFromText(const std::string &text)
{
    std::istringstream is(text);
    std::string header, version;
    is >> header >> version;
    if (header != "pccs-model" || version != "v1") {
        warn("pccs model text: bad header '%s %s'", header.c_str(),
             version.c_str());
        return std::nullopt;
    }

    std::map<std::string, double> values;
    std::string line;
    std::getline(is, line); // consume the header remainder
    while (std::getline(is, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::string key, value;
        if (!(ls >> key >> value))
            continue; // blank or comment-only line
        if (value == "NA") {
            values[key] = std::numeric_limits<double>::quiet_NaN();
        } else {
            try {
                values[key] = std::stod(value);
            } catch (const std::exception &) {
                warn("pccs model text: bad value '%s' for key '%s'",
                     value.c_str(), key.c_str());
                return std::nullopt;
            }
        }
    }

    PccsParams p;
    struct Field
    {
        const char *key;
        double PccsParams::*member;
    };
    static const Field fields[] = {
        {"normalBw", &PccsParams::normalBw},
        {"intensiveBw", &PccsParams::intensiveBw},
        {"mrmc", &PccsParams::mrmc},
        {"cbp", &PccsParams::cbp},
        {"tbwdc", &PccsParams::tbwdc},
        {"rateN", &PccsParams::rateN},
        {"peakBw", &PccsParams::peakBw},
    };
    for (const Field &f : fields) {
        auto it = values.find(f.key);
        if (it == values.end()) {
            warn("pccs model text: missing key '%s'", f.key);
            return std::nullopt;
        }
        p.*(f.member) = it->second;
    }
    if (!p.valid()) {
        warn("pccs model text: parameters fail validation");
        return std::nullopt;
    }
    return p;
}

void
saveParams(const PccsParams &params, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    out << paramsToText(params);
    if (!out)
        fatal("failed writing model to '%s'", path.c_str());
}

PccsParams
loadParams(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open model file '%s'", path.c_str());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const auto params = paramsFromText(buffer.str());
    if (!params)
        fatal("model file '%s' is malformed", path.c_str());
    return *params;
}

} // namespace pccs::model
