#include "serialize.hh"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "common/logging.hh"

namespace pccs::model {

std::string
paramsToText(const PccsParams &params)
{
    std::ostringstream os;
    os << "pccs-model v1\n";
    char buf[64];
    auto emit = [&](const char *key, double v) {
        if (std::isnan(v)) {
            os << key << " NA\n";
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", v);
            os << key << " " << buf << "\n";
        }
    };
    emit("normalBw", params.normalBw);
    emit("intensiveBw", params.intensiveBw);
    emit("mrmc", params.mrmc);
    emit("cbp", params.cbp);
    emit("tbwdc", params.tbwdc);
    emit("rateN", params.rateN);
    emit("peakBw", params.peakBw);
    return os.str();
}

namespace {

/** The recognized keys, parallel to the PccsParams members. */
struct Field
{
    const char *key;
    double PccsParams::*member;
    /** Whether "NA" (stored as NaN) is a legal value for the key. */
    bool allowNa;
};

const Field fields[] = {
    {"normalBw", &PccsParams::normalBw, false},
    {"intensiveBw", &PccsParams::intensiveBw, false},
    {"mrmc", &PccsParams::mrmc, true},
    {"cbp", &PccsParams::cbp, false},
    {"tbwdc", &PccsParams::tbwdc, false},
    {"rateN", &PccsParams::rateN, false},
    {"peakBw", &PccsParams::peakBw, false},
};

const Field *
fieldByKey(const std::string &key)
{
    for (const Field &f : fields)
        if (key == f.key)
            return &f;
    return nullptr;
}

std::string
fmtError(const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

} // namespace

std::string
paramsValidationError(const PccsParams &p)
{
    if (!(p.peakBw > 0.0))
        return "peakBw must be > 0";
    if (!(p.normalBw >= 0.0))
        return "normalBw must be >= 0";
    if (!(p.intensiveBw >= p.normalBw))
        return "intensiveBw must be >= normalBw";
    if (!(p.cbp > 0.0))
        return "cbp must be > 0";
    if (!(p.tbwdc >= 0.0))
        return "tbwdc must be >= 0";
    if (!(p.rateN >= 0.0))
        return "rateN must be >= 0";
    if (!p.noMinorRegion() && !(p.mrmc >= 0.0))
        return "mrmc must be >= 0 (or NA)";
    return p.valid() ? "" : "parameters fail validation";
}

ParamsLoad
paramsFromTextChecked(const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line))
        return {std::nullopt, "empty model text"};
    {
        std::istringstream hs(line);
        std::string header, version, extra;
        hs >> header >> version;
        if (header != "pccs-model" || version != "v1") {
            return {std::nullopt,
                    fmtError("bad header '%s' (expected "
                             "'pccs-model v1')",
                             line.c_str())};
        }
        if (hs >> extra) {
            return {std::nullopt,
                    fmtError("trailing token '%s' after the header",
                             extra.c_str())};
        }
    }

    std::map<std::string, double> values;
    for (int lineno = 2; std::getline(is, line); ++lineno) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::string key, value, extra;
        if (!(ls >> key))
            continue; // blank or comment-only line
        const Field *field = fieldByKey(key);
        if (field == nullptr) {
            return {std::nullopt,
                    fmtError("line %d: unknown key '%s'", lineno,
                             key.c_str())};
        }
        if (!(ls >> value)) {
            return {std::nullopt,
                    fmtError("line %d: key '%s' has no value", lineno,
                             key.c_str())};
        }
        if (ls >> extra) {
            return {std::nullopt,
                    fmtError("line %d: trailing token '%s' after "
                             "'%s %s'",
                             lineno, extra.c_str(), key.c_str(),
                             value.c_str())};
        }
        if (values.count(key)) {
            return {std::nullopt,
                    fmtError("line %d: duplicate key '%s'", lineno,
                             key.c_str())};
        }
        if (value == "NA") {
            if (!field->allowNa) {
                return {std::nullopt,
                        fmtError("line %d: key '%s' cannot be NA",
                                 lineno, key.c_str())};
            }
            values[key] = std::numeric_limits<double>::quiet_NaN();
            continue;
        }
        char *end = nullptr;
        const double v = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0') {
            return {std::nullopt,
                    fmtError("line %d: value '%s' for key '%s' is "
                             "not a number",
                             lineno, value.c_str(), key.c_str())};
        }
        if (!std::isfinite(v)) {
            return {std::nullopt,
                    fmtError("line %d: value '%s' for key '%s' is "
                             "not finite",
                             lineno, value.c_str(), key.c_str())};
        }
        values[key] = v;
    }

    PccsParams p;
    for (const Field &f : fields) {
        auto it = values.find(f.key);
        if (it == values.end()) {
            return {std::nullopt,
                    fmtError("missing key '%s' (model text "
                             "truncated?)",
                             f.key)};
        }
        p.*(f.member) = it->second;
    }
    const std::string invalid = paramsValidationError(p);
    if (!invalid.empty()) {
        return {std::nullopt,
                fmtError("parameters out of range: %s",
                         invalid.c_str())};
    }
    return {p, ""};
}

std::optional<PccsParams>
paramsFromText(const std::string &text)
{
    ParamsLoad load = paramsFromTextChecked(text);
    if (!load.ok())
        warn("pccs model text: %s", load.error.c_str());
    return load.params;
}

void
saveParams(const PccsParams &params, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    out << paramsToText(params);
    if (!out)
        fatal("failed writing model to '%s'", path.c_str());
}

ParamsLoad
tryLoadParams(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        return {std::nullopt,
                fmtError("cannot open model file '%s'", path.c_str())};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        return {std::nullopt,
                fmtError("I/O error reading model file '%s'",
                         path.c_str())};
    }
    ParamsLoad load = paramsFromTextChecked(buffer.str());
    if (!load.ok()) {
        load.error = fmtError("model file '%s': %s", path.c_str(),
                              load.error.c_str());
    }
    return load;
}

PccsParams
loadParams(const std::string &path)
{
    const ParamsLoad load = tryLoadParams(path);
    if (!load.ok())
        fatal("%s", load.error.c_str());
    return *load.params;
}

} // namespace pccs::model
