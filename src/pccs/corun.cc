#include "corun.hh"

#include "common/logging.hh"
#include "pccs/batch.hh"

namespace pccs::model {

GBps
CorunInput::meanDemand() const
{
    double total_share = 0.0;
    double demand = 0.0;
    for (const auto &p : phases) {
        demand += p.timeShare * p.demand;
        total_share += p.timeShare;
    }
    PCCS_ASSERT(total_share > 0.0, "co-run input has no time share");
    return demand / total_share;
}

namespace {

/**
 * One flattened phase point of a round: program `input`, standalone
 * demand x under that program's external pressure y.
 */
struct PhasePoint
{
    std::size_t input;
    double share;
    double x;
};

/**
 * Evaluate one round — every program's relative speed under its
 * external pressure ys[i] — as one batched pass: the evaluated phase
 * points of all PUs are flattened into structure-of-arrays form and
 * each distinct model runs its batch kernel once over its points
 * (scalar-only models fall back to the adapter). Bit-exact with
 * calling predictPiecewise per program: the kernels match the scalar
 * path per point and the harmonic aggregation below accumulates in
 * the same phase order.
 */
std::vector<double>
roundSpeeds(const std::vector<CorunInput> &inputs,
            const std::vector<PhasePoint> &points,
            const std::vector<double> &ys)
{
    const std::size_t total = points.size();
    std::vector<double> xs(total), yflat(total), rs(total, 0.0);
    for (std::size_t k = 0; k < total; ++k) {
        xs[k] = points[k].x;
        yflat[k] = ys[points[k].input];
    }

    // Group points by model, preserving first-seen model order and
    // point order within each group.
    std::vector<const SlowdownPredictor *> models;
    std::vector<std::vector<std::size_t>> groups;
    for (std::size_t k = 0; k < total; ++k) {
        const SlowdownPredictor *m = inputs[points[k].input].model;
        std::size_t g = 0;
        while (g < models.size() && models[g] != m)
            ++g;
        if (g == models.size()) {
            models.push_back(m);
            groups.emplace_back();
        }
        groups[g].push_back(k);
    }

    std::vector<double> gx, gy, gout;
    for (std::size_t g = 0; g < models.size(); ++g) {
        const std::vector<std::size_t> &idx = groups[g];
        gx.assign(idx.size(), 0.0);
        gy.assign(idx.size(), 0.0);
        gout.assign(idx.size(), 0.0);
        for (std::size_t j = 0; j < idx.size(); ++j) {
            gx[j] = xs[idx[j]];
            gy[j] = yflat[idx[j]];
        }
        if (const BatchPredictor *bp = batchInterface(*models[g])) {
            bp->relativeSpeedBatch(gx, gy, gout);
        } else {
            const ScalarBatchAdapter adapter(*models[g]);
            adapter.relativeSpeedBatch(gx, gy, gout);
        }
        for (std::size_t j = 0; j < idx.size(); ++j)
            rs[idx[j]] = gout[j];
    }

    // Per-program weighted-harmonic aggregation, identical to
    // predictPiecewise (phases.cc).
    const std::size_t n = inputs.size();
    std::vector<double> share_sum(n, 0.0), corun_time(n, 0.0);
    for (std::size_t k = 0; k < total; ++k) {
        const PhasePoint &p = points[k];
        PCCS_ASSERT(rs[k] > 0.0, "phase predicted to a complete stall");
        corun_time[p.input] += p.share / (rs[k] / 100.0);
        share_sum[p.input] += p.share;
    }
    std::vector<double> out(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = 100.0 * share_sum[i] / corun_time[i];
    return out;
}

} // namespace

std::vector<double>
predictCorun(const std::vector<CorunInput> &inputs,
             const CorunPredictOptions &opts)
{
    PCCS_ASSERT(!inputs.empty(), "co-run prediction needs inputs");
    PCCS_ASSERT(opts.damping > 0.0 && opts.damping <= 1.0,
                "damping must be in (0, 1]");
    const std::size_t n = inputs.size();
    for (const auto &in : inputs) {
        PCCS_ASSERT(in.model != nullptr, "co-run input lacks a model");
        validatePhases(in.phases);
    }

    // Flatten the evaluated phase points once; zero-share phases are
    // skipped exactly as the scalar aggregation skips them.
    std::vector<PhasePoint> points;
    for (std::size_t i = 0; i < n; ++i)
        for (const auto &p : inputs[i].phases)
            if (p.timeShare > 0.0)
                points.push_back({i, p.timeShare, p.demand});

    // Effective external pressure each program exerts: starts at the
    // standalone demand (the paper's protocol) and, with refinement,
    // shrinks toward demand x predicted relative speed.
    std::vector<double> pressure(n);
    for (std::size_t i = 0; i < n; ++i)
        pressure[i] = inputs[i].meanDemand();

    std::vector<double> rs(n, 100.0);
    std::vector<double> ys(n, 0.0);
    const unsigned rounds = 1 + opts.refinementIterations;
    for (unsigned round = 0; round < rounds; ++round) {
        for (std::size_t i = 0; i < n; ++i) {
            double y = 0.0;
            for (std::size_t j = 0; j < n; ++j)
                if (j != i)
                    y += pressure[j];
            ys[i] = y;
        }
        // All PUs' demands as one batch per iteration.
        rs = roundSpeeds(inputs, points, ys);
        if (round + 1 < rounds) {
            for (std::size_t i = 0; i < n; ++i) {
                const double target =
                    inputs[i].meanDemand() * rs[i] / 100.0;
                pressure[i] += opts.damping * (target - pressure[i]);
            }
        }
    }
    return rs;
}

} // namespace pccs::model
