#include "corun.hh"

#include "common/logging.hh"

namespace pccs::model {

GBps
CorunInput::meanDemand() const
{
    double total_share = 0.0;
    double demand = 0.0;
    for (const auto &p : phases) {
        demand += p.timeShare * p.demand;
        total_share += p.timeShare;
    }
    PCCS_ASSERT(total_share > 0.0, "co-run input has no time share");
    return demand / total_share;
}

std::vector<double>
predictCorun(const std::vector<CorunInput> &inputs,
             const CorunPredictOptions &opts)
{
    PCCS_ASSERT(!inputs.empty(), "co-run prediction needs inputs");
    PCCS_ASSERT(opts.damping > 0.0 && opts.damping <= 1.0,
                "damping must be in (0, 1]");
    const std::size_t n = inputs.size();
    for (const auto &in : inputs) {
        PCCS_ASSERT(in.model != nullptr, "co-run input lacks a model");
        PCCS_ASSERT(!in.phases.empty(), "co-run input lacks phases");
    }

    // Effective external pressure each program exerts: starts at the
    // standalone demand (the paper's protocol) and, with refinement,
    // shrinks toward demand x predicted relative speed.
    std::vector<double> pressure(n);
    for (std::size_t i = 0; i < n; ++i)
        pressure[i] = inputs[i].meanDemand();

    std::vector<double> rs(n, 100.0);
    const unsigned rounds = 1 + opts.refinementIterations;
    for (unsigned round = 0; round < rounds; ++round) {
        for (std::size_t i = 0; i < n; ++i) {
            double y = 0.0;
            for (std::size_t j = 0; j < n; ++j)
                if (j != i)
                    y += pressure[j];
            rs[i] = predictPiecewise(*inputs[i].model,
                                     inputs[i].phases, y);
        }
        if (round + 1 < rounds) {
            for (std::size_t i = 0; i < n; ++i) {
                const double target =
                    inputs[i].meanDemand() * rs[i] / 100.0;
                pressure[i] += opts.damping * (target - pressure[i]);
            }
        }
    }
    return rs;
}

} // namespace pccs::model
