#include "model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/statistics.hh"

namespace pccs::model {

const char *
regionName(Region r)
{
    switch (r) {
      case Region::Minor:
        return "minor";
      case Region::Normal:
        return "normal";
      case Region::Intensive:
        return "intensive";
    }
    panic("unknown Region %d", static_cast<int>(r));
}

bool
PccsParams::valid() const
{
    return peakBw > 0.0 && normalBw >= 0.0 &&
           intensiveBw >= normalBw && cbp > 0.0 && tbwdc >= 0.0 &&
           rateN >= 0.0 && (noMinorRegion() || mrmc >= 0.0);
}

bool
PccsParams::noMinorRegion() const
{
    return std::isnan(mrmc);
}

PccsModel::PccsModel(const PccsParams &params, std::string display_name)
    : params_(params), displayName_(std::move(display_name))
{
    PCCS_ASSERT(params_.valid(), "invalid PccsParams");
}

Region
PccsModel::classify(GBps x) const
{
    if (x <= params_.normalBw)
        return Region::Minor;
    if (x <= params_.intensiveBw)
        return Region::Normal;
    return Region::Intensive;
}

double
PccsModel::minorSpeed(GBps y) const
{
    // Equation 2 (external-demand form; see the file comment): the
    // minor-region curve declines linearly to (100 - MRMC) at y = PBW.
    const double mrmc = params_.noMinorRegion() ? 0.0 : params_.mrmc;
    return 100.0 - mrmc * std::min(y, params_.peakBw) / params_.peakBw;
}

double
PccsModel::normalSpeed(GBps x, GBps y) const
{
    // Equation 3. The three pieces: pre-contention (minor-region
    // behavior), linear drop past TBWDC, flat past CBP. Taking the
    // minimum with the minor-region line keeps the curve continuous
    // and monotone at the TBWDC boundary.
    const double minor = minorSpeed(y);
    if (x + y <= params_.tbwdc && y <= params_.cbp)
        return minor;
    double reduced;
    if (y <= params_.cbp)
        reduced = 100.0 - (x + y - params_.tbwdc) * params_.rateN;
    else
        reduced =
            100.0 - (x + params_.cbp - params_.tbwdc) * params_.rateN;
    return std::min(minor, reduced);
}

double
PccsModel::rateI(GBps x) const
{
    // Equation 4: extend the normal-region reduction reached at the
    // contention balance point back to y = 0.
    return params_.rateN *
           std::max(0.0, x + params_.cbp - params_.tbwdc) / params_.cbp;
}

double
PccsModel::intensiveSpeed(GBps x, GBps y) const
{
    // Equation 5. Per Eq. 4's construction, the intensive curve is the
    // straight line from (y=0, 100%) to the normal-region reduction
    // reached at the contention balance point, then flat: reduction
    // starts with minimal external pressure (Fig. 3c) but the relative
    // speed at zero external demand is 100% by definition.
    const double rate = rateI(x);
    const double reduced = 100.0 - std::min(y, params_.cbp) * rate;
    return std::min(minorSpeed(y), reduced);
}

double
PccsModel::relativeSpeed(GBps x, GBps y) const
{
    PCCS_ASSERT(x >= 0.0 && y >= 0.0,
                "negative bandwidth demand (x=%f, y=%f)", x, y);
    double rs;
    switch (classify(x)) {
      case Region::Minor:
        rs = minorSpeed(y);
        break;
      case Region::Normal:
        rs = normalSpeed(x, y);
        break;
      case Region::Intensive:
        rs = intensiveSpeed(x, y);
        break;
      default:
        rs = 100.0;
    }
    return clamp(rs, 0.0, 100.0);
}

} // namespace pccs::model
