#include "model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/statistics.hh"

namespace pccs::model {

const char *
regionName(Region r)
{
    switch (r) {
      case Region::Minor:
        return "minor";
      case Region::Normal:
        return "normal";
      case Region::Intensive:
        return "intensive";
    }
    panic("unknown Region %d", static_cast<int>(r));
}

bool
PccsParams::valid() const
{
    return peakBw > 0.0 && normalBw >= 0.0 &&
           intensiveBw >= normalBw && cbp > 0.0 && tbwdc >= 0.0 &&
           rateN >= 0.0 && (noMinorRegion() || mrmc >= 0.0);
}

bool
PccsParams::noMinorRegion() const
{
    return std::isnan(mrmc);
}

PccsModel::PccsModel(const PccsParams &params, std::string display_name)
    : params_(params), displayName_(std::move(display_name))
{
    PCCS_ASSERT(params_.valid(), "invalid PccsParams");
}

Region
PccsModel::classify(GBps x) const
{
    if (x <= params_.normalBw)
        return Region::Minor;
    if (x <= params_.intensiveBw)
        return Region::Normal;
    return Region::Intensive;
}

double
PccsModel::minorSpeed(GBps y) const
{
    // Equation 2 (external-demand form; see the file comment): the
    // minor-region curve declines linearly to (100 - MRMC) at y = PBW.
    const double mrmc = params_.noMinorRegion() ? 0.0 : params_.mrmc;
    return 100.0 - mrmc * std::min(y, params_.peakBw) / params_.peakBw;
}

double
PccsModel::normalSpeed(GBps x, GBps y) const
{
    // Equation 3. The three pieces: pre-contention (minor-region
    // behavior), linear drop past TBWDC, flat past CBP. Taking the
    // minimum with the minor-region line keeps the curve continuous
    // and monotone at the TBWDC boundary.
    const double minor = minorSpeed(y);
    if (x + y <= params_.tbwdc && y <= params_.cbp)
        return minor;
    double reduced;
    if (y <= params_.cbp)
        reduced = 100.0 - (x + y - params_.tbwdc) * params_.rateN;
    else
        reduced =
            100.0 - (x + params_.cbp - params_.tbwdc) * params_.rateN;
    return std::min(minor, reduced);
}

double
PccsModel::rateI(GBps x) const
{
    // Equation 4: extend the normal-region reduction reached at the
    // contention balance point back to y = 0.
    return params_.rateN *
           std::max(0.0, x + params_.cbp - params_.tbwdc) / params_.cbp;
}

double
PccsModel::intensiveSpeed(GBps x, GBps y) const
{
    // Equation 5. Per Eq. 4's construction, the intensive curve is the
    // straight line from (y=0, 100%) to the normal-region reduction
    // reached at the contention balance point, then flat: reduction
    // starts with minimal external pressure (Fig. 3c) but the relative
    // speed at zero external demand is 100% by definition.
    const double rate = rateI(x);
    const double reduced = 100.0 - std::min(y, params_.cbp) * rate;
    return std::min(minorSpeed(y), reduced);
}

double
PccsModel::relativeSpeed(GBps x, GBps y) const
{
    PCCS_ASSERT(x >= 0.0 && y >= 0.0,
                "negative bandwidth demand (x=%f, y=%f)", x, y);
    double rs;
    switch (classify(x)) {
      case Region::Minor:
        rs = minorSpeed(y);
        break;
      case Region::Normal:
        rs = normalSpeed(x, y);
        break;
      case Region::Intensive:
        rs = intensiveSpeed(x, y);
        break;
      default:
        rs = 100.0;
    }
    return clamp(rs, 0.0, 100.0);
}

namespace {

/**
 * The branchless three-region kernel. Every expression mirrors the
 * scalar member functions above operation for operation — only the
 * control flow differs: all three region curves are evaluated and the
 * per-point choices (region, normal-region piece, y-cap) are ternary
 * selects on already-computed values, so selecting never changes what
 * arithmetic produced the selected value. That is what makes the
 * batched results bit-exact with the scalar path while leaving the
 * loop body straight-line code the auto-vectorizer accepts.
 *
 * `YAt` abstracts the y access so the pairwise and broadcast entry
 * points share one kernel without materializing a constant vector.
 */
template <typename YAt>
void
pccsBatchKernel(const PccsParams &p, std::span<const GBps> x, YAt y_at,
                std::span<double> speeds)
{
    const double normal_bw = p.normalBw;
    const double intensive_bw = p.intensiveBw;
    const double cbp = p.cbp;
    const double tbwdc = p.tbwdc;
    const double rate_n = p.rateN;
    const double peak_bw = p.peakBw;
    const double mrmc = p.noMinorRegion() ? 0.0 : p.mrmc;

    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i) {
        const double xi = x[i];
        const double yi = y_at(i);
        // Equation 2 (minorSpeed): also the continuity envelope of
        // the other two regions.
        const double minor =
            100.0 - mrmc * std::min(yi, peak_bw) / peak_bw;
        // Equation 3 (normalSpeed): the y<=CBP / y>CBP pieces differ
        // only in capping y at CBP, and the pre-contention piece is a
        // select back to the minor line.
        const double y_cap = yi <= cbp ? yi : cbp;
        const double reduced_n = 100.0 - (xi + y_cap - tbwdc) * rate_n;
        // Non-short-circuit conjunction: both comparisons are
        // trap-free, and `&&` on two loop-varying operands is control
        // flow the if-converter refuses to vectorize through.
        const bool pre = (xi + yi <= tbwdc) & (yi <= cbp);
        const double normal =
            pre ? minor : std::min(minor, reduced_n);
        // Equations 4 + 5 (rateI, intensiveSpeed).
        const double rate_i =
            rate_n * std::max(0.0, xi + cbp - tbwdc) / cbp;
        const double reduced_i = 100.0 - std::min(yi, cbp) * rate_i;
        const double intensive = std::min(minor, reduced_i);
        // Equation 1: region classification as a two-level select.
        const double rs =
            xi <= normal_bw ? minor
                            : (xi <= intensive_bw ? normal : intensive);
        // pccs::clamp's exact arithmetic, inlined: the out-of-line
        // call would block if-conversion of the whole loop body.
        speeds[i] = std::min(std::max(rs, 0.0), 100.0);
    }
}

/**
 * Input validation, hoisted out of the arithmetic loop so the kernel
 * body stays branch-free. Same condition and diagnostic as the scalar
 * path's per-point assertion.
 */
template <typename YAt>
void
checkBatchDemands(std::span<const GBps> x, YAt y_at)
{
    for (std::size_t i = 0; i < x.size(); ++i) {
        PCCS_ASSERT(x[i] >= 0.0 && y_at(i) >= 0.0,
                    "negative bandwidth demand (x=%f, y=%f)", x[i],
                    y_at(i));
    }
}

/* Multiversioned entry points: the kernel template inlines into each
 * clone (flatten), so the loop itself is compiled per ISA. */
PCCS_KERNEL_MULTIVERSION void
pccsBatchPairwise(const PccsParams &p, std::span<const GBps> x,
                  std::span<const GBps> y, std::span<double> speeds)
{
    pccsBatchKernel(p, x, [y](std::size_t i) { return y[i]; }, speeds);
}

PCCS_KERNEL_MULTIVERSION void
pccsBatchBroadcast(const PccsParams &p, std::span<const GBps> x, GBps y,
                   std::span<double> speeds)
{
    pccsBatchKernel(p, x, [y](std::size_t) { return y; }, speeds);
}

} // namespace

void
PccsModel::relativeSpeedBatch(std::span<const GBps> x,
                              std::span<const GBps> y,
                              std::span<double> speeds) const
{
    PCCS_ASSERT(x.size() == y.size() && x.size() == speeds.size(),
                "batch span lengths differ (%zu, %zu, %zu)", x.size(),
                y.size(), speeds.size());
    checkBatchDemands(x, [y](std::size_t i) { return y[i]; });
    pccsBatchPairwise(params_, x, y, speeds);
}

void
PccsModel::relativeSpeedBroadcast(std::span<const GBps> x, GBps y,
                                  std::span<double> speeds) const
{
    PCCS_ASSERT(x.size() == speeds.size(),
                "batch span lengths differ (%zu, %zu)", x.size(),
                speeds.size());
    checkBatchDemands(x, [y](std::size_t) { return y; });
    pccsBatchBroadcast(params_, x, y, speeds);
}

} // namespace pccs::model
