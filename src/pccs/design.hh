/**
 * @file
 * Design-space exploration with slowdown models (Sections 3.4, 4.3).
 *
 * The explorer answers the paper's use-case question: how far can a
 * PU's clock (or core count) be reduced while the kernel placed on it
 * keeps its co-run performance within an allowed slowdown of the
 * full-configuration co-run performance, under a given external
 * bandwidth demand? A more accurate slowdown model picks a lower
 * (cheaper) configuration that still truly meets the requirement.
 */

#ifndef PCCS_MODEL_DESIGN_HH
#define PCCS_MODEL_DESIGN_HH

#include <functional>
#include <vector>

#include "pccs/batch.hh"
#include "pccs/predictor.hh"
#include "runner/sweep_engine.hh"
#include "soc/simulator.hh"

namespace pccs::model {

/** Outcome of a frequency (or scale) selection. */
struct DesignSelection
{
    /** Selected knob value (MHz for frequency, ratio for core scale). */
    double value = 0.0;
    /** Predicted co-run performance at the selection, bytes/s. */
    double predictedPerformance = 0.0;
    /** Reference co-run performance (full configuration), bytes/s. */
    double referencePerformance = 0.0;
};

/**
 * Explores PU configurations of a simulated SoC under co-run
 * contention, using a pluggable slowdown predictor (PCCS, Gables) or
 * the simulator itself as ground truth.
 */
class DesignExplorer
{
  public:
    /**
     * @param config the SoC whose design space is explored
     * @param engine evaluation engine for ground-truth simulator
     *        points (grid sweeps are evaluated in parallel and
     *        memoized across select* calls); the process-wide engine
     *        when null
     */
    explicit DesignExplorer(const soc::SocConfig &config,
                            runner::SweepEngine *engine = nullptr);

    /**
     * Predicted co-run performance (bytes/s) of `kernel` on PU
     * `pu_index` clocked at `frequency`, under `external` GB/s of
     * demand, using `predictor` for the slowdown.
     */
    double corunPerformance(std::size_t pu_index,
                            const soc::KernelProfile &kernel,
                            MHz frequency, GBps external,
                            const SlowdownPredictor &predictor) const;

    /** Ground-truth co-run performance from the SoC simulator. */
    double corunPerformanceActual(std::size_t pu_index,
                                  const soc::KernelProfile &kernel,
                                  MHz frequency, GBps external) const;

    /**
     * Predicted co-run performance at every frequency of `grid` in
     * one pass: the standalone profiles are evaluated in parallel on
     * the engine pool (memoized), and the whole grid's slowdowns come
     * from a single `BatchPredictor` call (falling back to the scalar
     * adapter for predictors without a native kernel). Element i is
     * bit-exact with `corunPerformance(pu, kernel, grid[i], ...)`.
     */
    std::vector<double> corunPerformanceGrid(
        std::size_t pu_index, const soc::KernelProfile &kernel,
        const std::vector<MHz> &grid, GBps external,
        const SlowdownPredictor &predictor) const;

    /**
     * Selection strategy knob. Pruned (the default) exploits the
     * monotone co-run-performance-vs-knob structure: the reference
     * (full-configuration) performance is hoisted and computed once,
     * and the lowest acceptable candidate is found by binary search
     * over the sorted grid — O(log n) evaluations — instead of a full
     * scan. Identical selections to the full scan whenever the
     * performance curve is monotone non-decreasing in the knob (which
     * the simulator and both models guarantee; see DESIGN.md §10).
     */
    void setPruneSelection(bool on) { pruneSelection_ = on; }
    bool pruneSelection() const { return pruneSelection_; }

    /**
     * Select the lowest frequency in `grid` whose predicted co-run
     * performance stays within `allowed_slowdown_pct` percent of the
     * co-run performance at the maximum grid frequency.
     */
    DesignSelection selectFrequency(std::size_t pu_index,
                                    const soc::KernelProfile &kernel,
                                    GBps external,
                                    double allowed_slowdown_pct,
                                    const SlowdownPredictor &predictor,
                                    const std::vector<MHz> &grid) const;

    /** Ground-truth frequency selection from the SoC simulator. */
    DesignSelection selectFrequencyActual(
        std::size_t pu_index, const soc::KernelProfile &kernel,
        GBps external, double allowed_slowdown_pct,
        const std::vector<MHz> &grid) const;

    /**
     * Select the smallest core-count scale in `grid` (fractions of the
     * full PU: compute throughput and issue bandwidth scale together)
     * meeting the same co-run performance requirement.
     */
    DesignSelection selectCoreScale(std::size_t pu_index,
                                    const soc::KernelProfile &kernel,
                                    GBps external,
                                    double allowed_slowdown_pct,
                                    const SlowdownPredictor &predictor,
                                    const std::vector<double> &grid) const;

    const soc::SocConfig &config() const { return config_; }

  private:
    /** SoC with PU `pu_index` reconfigured. */
    soc::SocConfig configured(std::size_t pu_index, MHz frequency,
                              double core_scale) const;

    double performance(const soc::SocConfig &cfg, std::size_t pu_index,
                       const soc::KernelProfile &kernel, GBps external,
                       const SlowdownPredictor *predictor) const;

    DesignSelection selectLowest(
        const std::vector<double> &grid, double allowed_pct,
        const std::function<double(double)> &perf_at) const;

    soc::SocConfig config_;
    runner::SweepEngine *engine_;
    bool pruneSelection_ = true;
};

} // namespace pccs::model

#endif // PCCS_MODEL_DESIGN_HH
