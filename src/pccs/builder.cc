#include "builder.hh"

#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.hh"
#include "common/statistics.hh"

namespace pccs::model {

namespace {

/** Reduction (percentage points below 100) of one matrix element. */
double
red(const calib::CalibrationMatrix &m, std::size_t i, std::size_t j)
{
    return 100.0 - m.rela[i][j];
}

} // namespace

PccsParams
buildModelParams(const calib::CalibrationMatrix &m, GBps peak_bw,
                 const BuilderOptions &opts)
{
    const std::size_t n = m.numKernels();
    const std::size_t cols = m.numExternal();
    PCCS_ASSERT(n >= 2 && cols >= 2, "calibration matrix too small");
    PCCS_ASSERT(m.rela.size() == n && m.rela[0].size() == cols,
                "calibration matrix shape mismatch");
    const std::size_t last = cols - 1;

    PccsParams p;
    p.peakBw = peak_bw;

    // --- Step [1]: normalBW and MRMC from the last column. ---------
    const double base_red = red(m, 0, last);
    std::size_t k_boundary = 0;
    if (base_red > opts.noMinorRegionThreshold) {
        // Even the smallest kernel sees a notable slowdown: the PU has
        // no minor contention region (the paper's DLA case).
        p.normalBw = 0.0;
        p.mrmc = std::numeric_limits<double>::quiet_NaN();
    } else {
        bool found = false;
        for (std::size_t i = 1; i < n; ++i) {
            if (red(m, i, last) >= 2.0 * base_red &&
                red(m, i, last) > opts.flatEpsilon) {
                k_boundary = i;
                found = true;
                break;
            }
        }
        if (found) {
            // The boundary row is the first one that already behaves
            // "normal" (its reduction doubled): the region boundary
            // lies between it and the last still-minor row, so the
            // midpoint localizes it within half a grid step.
            p.normalBw = 0.5 * (m.standaloneBw[k_boundary - 1] +
                                m.standaloneBw[k_boundary]);
            p.mrmc = red(m, k_boundary - 1, last);
        } else {
            // Every calibrator behaves like the smallest one: the PU
            // never leaves the minor region within its demand range.
            k_boundary = n - 1;
            p.normalBw = m.standaloneBw[n - 1];
            p.mrmc = red(m, n - 1, last);
        }
    }

    const double notable = p.noMinorRegion()
                               ? opts.notableReductionFallback
                               : 2.0 * p.mrmc;

    // --- Step [2]: TBWDC from the boundary row. ---------------------
    {
        std::size_t j_star = last;
        for (std::size_t j = 0; j < cols; ++j) {
            if (red(m, k_boundary, j) >= notable) {
                j_star = j;
                break;
            }
        }
        p.tbwdc = m.standaloneBw[k_boundary] + m.externalBw[j_star];
    }

    // --- Step [3]: intensiveBW from the first column. ---------------
    std::size_t intensive_idx = n; // first intensive row; n = none
    for (std::size_t i = 0; i < n; ++i) {
        if (red(m, i, 0) >= notable) {
            intensive_idx = i;
            break;
        }
    }
    if (intensive_idx < n) {
        p.intensiveBw =
            intensive_idx > 0
                ? 0.5 * (m.standaloneBw[intensive_idx - 1] +
                         m.standaloneBw[intensive_idx])
                : m.standaloneBw[0];
    } else {
        // No calibrator is intensive: place the boundary just past the
        // largest observed demand.
        p.intensiveBw =
            m.standaloneBw[n - 1] +
            (m.standaloneBw[n - 1] - m.standaloneBw[n - 2]);
    }

    // --- Steps [4]+[5]: CBP and rateN from the normal rows. ---------
    // For each normal-region row, locate its drop segment: consecutive
    // relative-speed deltas are compared against the row's own largest
    // delta, so a slowly-declining tail after the drop still counts as
    // the flat region. The turning point into the flat region yields
    // the row's contention-balance column; the reduction rate is the
    // least-squares slope of the drop segment against the total
    // bandwidth demand (x + y).
    {
        std::vector<double> turns;
        std::vector<double> rates;
        const std::size_t normal_end = intensive_idx < n ? intensive_idx
                                                         : n;
        for (std::size_t i = k_boundary; i < normal_end; ++i) {
            double max_delta = 0.0;
            for (std::size_t j = 0; j + 1 < cols; ++j) {
                max_delta = std::max(
                    max_delta, m.rela[i][j] - m.rela[i][j + 1]);
            }
            const double drop_thresh =
                std::max(opts.flatEpsilon, 0.15 * max_delta);

            // Drop segment: first to last step with a notable delta.
            std::size_t onset = cols, turn = cols;
            for (std::size_t j = 0; j + 1 < cols; ++j) {
                const double delta = m.rela[i][j] - m.rela[i][j + 1];
                if (delta >= drop_thresh) {
                    if (onset == cols)
                        onset = j;
                    turn = j + 1;
                }
            }
            if (onset == cols)
                continue; // this row never drops beyond noise

            if (turn < cols)
                turns.push_back(m.externalBw[turn]);

            std::vector<double> xs, ys;
            for (std::size_t j = onset; j <= turn && j < cols; ++j) {
                xs.push_back(m.standaloneBw[i] + m.externalBw[j]);
                ys.push_back(m.rela[i][j]);
            }
            if (xs.size() >= 2) {
                const LineFit fit =
                    fitLine({xs.data(), xs.size()}, {ys.data(), ys.size()});
                if (fit.slope < 0.0)
                    rates.push_back(-fit.slope);
            }
        }
        p.cbp = turns.empty() ? m.externalBw[last]
                              : mean({turns.data(), turns.size()});
        if (!rates.empty()) {
            p.rateN = mean({rates.data(), rates.size()});
        } else {
            // Fall back to the end-to-end slope of the largest kernel.
            const double dy = red(m, n - 1, last) - red(m, n - 1, 0);
            const double dx = m.externalBw[last] - m.externalBw[0];
            p.rateN = dx > 0.0 ? std::max(0.0, dy / dx) : 0.0;
        }
    }

    // Refinement: the step-[2] detection fires only once the reduction
    // already reaches the notable threshold, so the detected TBWDC
    // overshoots the true drop onset by roughly notable / rateN.
    // Back-extrapolate along the fitted slope (bounded by two grid
    // steps to stay robust against a noisy rateN). Only applicable
    // when the boundary row actually has a flat prefix; a curve that
    // declines from the very first column (the DLA case) has its
    // onset at the detection point itself.
    const bool flat_prefix = red(m, k_boundary, 0) < 0.5 * notable;
    if (flat_prefix && p.rateN > 0.0 && cols >= 2) {
        const double step = m.externalBw[1] - m.externalBw[0];
        const double shift = std::min(notable / p.rateN, 2.0 * step);
        p.tbwdc = std::max(p.tbwdc - shift, m.standaloneBw[k_boundary]);
    }

    PCCS_ASSERT(p.valid(), "builder produced invalid parameters");
    return p;
}

PccsModel
buildModel(const soc::SocSimulator &sim, std::size_t pu_index,
           const calib::SweepSpec &sweep, const BuilderOptions &opts)
{
    const calib::CalibrationMatrix matrix =
        calib::calibrate(sim, pu_index, sweep);
    const PccsParams params = buildModelParams(
        matrix, sim.config().memory.peakBandwidth, opts);
    return PccsModel(params,
                     "PCCS/" + sim.config().pus[pu_index].name);
}

} // namespace pccs::model
