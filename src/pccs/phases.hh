/**
 * @file
 * Multi-phase program prediction (Section 3.2, "Handling multi-phase
 * programs", demonstrated on CFD in Section 4.1).
 *
 * A program with phase shifts is predicted per phase — each phase has
 * its own standalone bandwidth demand — and the per-phase predictions
 * are aggregated by each phase's share of the standalone execution
 * time. Aggregation is time-correct: the co-run time of a phase with
 * standalone share w and relative speed RS is w / RS, so the
 * program-level relative speed is the weighted harmonic mean.
 *
 * The average-bandwidth alternative (feed the time-weighted mean
 * demand to the model) is provided for the Figure 13(a) ablation.
 */

#ifndef PCCS_MODEL_PHASES_HH
#define PCCS_MODEL_PHASES_HH

#include <vector>

#include "pccs/predictor.hh"

namespace pccs::model {

/** One phase as the predictor sees it. */
struct PhaseDemand
{
    /** Standalone bandwidth demand of the phase, GB/s. */
    GBps demand = 0.0;
    /** Fraction of standalone execution time spent in the phase. */
    double timeShare = 0.0;
};

/**
 * Panic unless the phase list is non-empty with non-negative demands
 * and shares and a positive total share (the precondition of every
 * phase-aggregating predictor, scalar or batched).
 */
void validatePhases(const std::vector<PhaseDemand> &phases);

/**
 * Piecewise (per-phase) prediction: predict each phase and aggregate
 * by standalone time share (the Figure 13(b) method).
 *
 * @return program-level achieved relative speed, percent
 */
double predictPiecewise(const SlowdownPredictor &predictor,
                        const std::vector<PhaseDemand> &phases, GBps y);

/**
 * Average-bandwidth prediction: feed the time-weighted mean demand to
 * the model (the Figure 13(a) method, shown by the paper to
 * underestimate slowdown).
 */
double predictAverageBw(const SlowdownPredictor &predictor,
                        const std::vector<PhaseDemand> &phases, GBps y);

} // namespace pccs::model

#endif // PCCS_MODEL_PHASES_HH
