/**
 * @file
 * The common slowdown-predictor interface.
 *
 * A slowdown predictor maps (x = the kernel's standalone bandwidth
 * demand on the current PU, y = total external bandwidth demand) to
 * the achieved relative speed in percent. Both PCCS and the Gables
 * baseline implement it, so evaluation harnesses and the design-space
 * explorer can treat them interchangeably.
 */

#ifndef PCCS_MODEL_PREDICTOR_HH
#define PCCS_MODEL_PREDICTOR_HH

#include "common/units.hh"

namespace pccs::model {

/** Interface of per-PU co-run slowdown predictors. */
class SlowdownPredictor
{
  public:
    virtual ~SlowdownPredictor() = default;

    /** @return the predictor's display name. */
    virtual const char *name() const = 0;

    /**
     * Predict the achieved relative speed.
     *
     * @param x standalone bandwidth demand of the kernel on this PU,
     *          GB/s
     * @param y total external bandwidth demand from other PUs, GB/s
     * @return predicted achieved relative speed in percent (0..100]
     */
    virtual double relativeSpeed(GBps x, GBps y) const = 0;

    /** Predicted slowdown factor (>= 1): standalone / co-run speed. */
    double slowdownFactor(GBps x, GBps y) const
    {
        const double rs = relativeSpeed(x, y);
        return rs > 0.0 ? 100.0 / rs : 1e9;
    }
};

} // namespace pccs::model

#endif // PCCS_MODEL_PREDICTOR_HH
