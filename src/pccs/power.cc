#include "power.hh"

#include <cmath>

#include "common/logging.hh"
#include "runner/sweep_engine.hh"

namespace pccs::model {

double
puPower(const PowerParams &power, MHz frequency, MHz max_frequency,
        double core_scale)
{
    PCCS_ASSERT(max_frequency > 0.0, "nominal clock must be positive");
    PCCS_ASSERT(core_scale > 0.0 && core_scale <= 1.0,
                "core scale must be in (0, 1]");
    const double ratio = frequency / max_frequency;
    return power.staticWatts +
           core_scale * power.dynamicWatts *
               std::pow(ratio, power.frequencyExponent);
}

PowerBudgetResult
explorePowerBudget(const PowerBudgetProblem &problem)
{
    const std::size_t n = problem.soc.pus.size();
    PCCS_ASSERT(n > 0, "problem has no PUs");
    PCCS_ASSERT(problem.kernels.size() == n &&
                    problem.models.size() == n &&
                    problem.grids.size() == n &&
                    problem.power.size() == n,
                "problem arrays must parallel the PU list");
    for (std::size_t i = 0; i < n; ++i) {
        PCCS_ASSERT(!problem.grids[i].empty(),
                    "empty clock grid for PU %zu", i);
        PCCS_ASSERT(problem.models[i] != nullptr,
                    "missing model for PU %zu", i);
    }

    // Precompute, per PU and grid point: power, standalone demand,
    // and standalone rate; plus the full-clock reference rate. The
    // per-point profiles are independent simulator evaluations, so
    // they go through the sweep engine: in parallel, memoized across
    // repeated explorations of overlapping grids.
    struct Point
    {
        MHz frequency;
        double watts;
        GBps demand;
        double rate;
    };
    runner::SweepEngine &eng = runner::SweepEngine::global();
    std::vector<std::vector<Point>> points(n);
    std::vector<double> reference_rate(n);
    std::vector<std::pair<std::size_t, std::size_t>> flat;
    for (std::size_t i = 0; i < n; ++i) {
        points[i].resize(problem.grids[i].size());
        // Grid index g addresses grids[i][g]; n + g below marks the
        // extra full-clock reference evaluation of PU i.
        for (std::size_t g = 0; g <= problem.grids[i].size(); ++g)
            flat.emplace_back(i, g);
    }
    eng.parallelFor(flat.size(), [&](std::size_t idx) {
        const auto [i, g] = flat[idx];
        const bool reference = g == problem.grids[i].size();
        const MHz f = reference ? problem.soc.pus[i].maxFrequency
                                : problem.grids[i][g];
        soc::SocConfig cfg = problem.soc;
        cfg.pus[i].frequency = f;
        const soc::SocSimulator sim(cfg);
        const soc::StandaloneProfile prof =
            eng.profile(sim, i, problem.kernels[i]);
        if (reference) {
            reference_rate[i] = prof.rate;
        } else {
            points[i][g] = {f,
                            puPower(problem.power[i], f,
                                    problem.soc.pus[i].maxFrequency),
                            prof.bandwidthDemand, prof.rate};
        }
    });

    PowerBudgetResult best;
    best.worstRelativePerformance = -1.0;

    // Odometer over the grid product (grids are small by design).
    std::vector<std::size_t> idx(n, 0);
    while (true) {
        double watts = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            watts += points[i][idx[i]].watts;

        if (watts <= problem.budgetWatts) {
            double worst = 1e300;
            std::vector<double> rel(n);
            for (std::size_t i = 0; i < n; ++i) {
                double external = 0.0;
                for (std::size_t j = 0; j < n; ++j)
                    if (j != i)
                        external += points[j][idx[j]].demand;
                const double rs = problem.models[i]->relativeSpeed(
                    points[i][idx[i]].demand, external);
                rel[i] = 100.0 * points[i][idx[i]].rate *
                         (rs / 100.0) / reference_rate[i];
                worst = std::min(worst, rel[i]);
            }
            // Strictly better worst-case performance wins; on ties
            // (common under contention, where the memory grant caps
            // performance), the cheaper assignment wins.
            const bool better =
                worst > best.worstRelativePerformance + 1e-9 ||
                (worst > best.worstRelativePerformance - 1e-9 &&
                 !best.frequencies.empty() &&
                 watts < best.totalWatts - 1e-9);
            if (better) {
                best.worstRelativePerformance = worst;
                best.totalWatts = watts;
                best.relativePerformance = rel;
                best.frequencies.resize(n);
                for (std::size_t i = 0; i < n; ++i)
                    best.frequencies[i] = points[i][idx[i]].frequency;
            }
        }

        // Advance the odometer.
        std::size_t d = 0;
        while (d < n && ++idx[d] == points[d].size()) {
            idx[d] = 0;
            ++d;
        }
        if (d == n)
            break;
    }

    if (best.worstRelativePerformance < 0.0) {
        best.worstRelativePerformance = 0.0;
        best.frequencies.clear();
        best.relativePerformance.clear();
    }
    return best;
}

} // namespace pccs::model
