#include "phases.hh"

#include "common/logging.hh"

namespace pccs::model {

void
validatePhases(const std::vector<PhaseDemand> &phases)
{
    PCCS_ASSERT(!phases.empty(), "phase list is empty");
    double total = 0.0;
    for (const auto &p : phases) {
        PCCS_ASSERT(p.timeShare >= 0.0 && p.demand >= 0.0,
                    "negative phase demand or share");
        total += p.timeShare;
    }
    PCCS_ASSERT(total > 0.0, "phase time shares sum to zero");
}

double
predictPiecewise(const SlowdownPredictor &predictor,
                 const std::vector<PhaseDemand> &phases, GBps y)
{
    validatePhases(phases);
    double share_sum = 0.0;
    double corun_time = 0.0; // in units of standalone total time
    for (const auto &p : phases) {
        if (p.timeShare <= 0.0)
            continue;
        const double rs = predictor.relativeSpeed(p.demand, y);
        PCCS_ASSERT(rs > 0.0, "phase predicted to a complete stall");
        corun_time += p.timeShare / (rs / 100.0);
        share_sum += p.timeShare;
    }
    return 100.0 * share_sum / corun_time;
}

double
predictAverageBw(const SlowdownPredictor &predictor,
                 const std::vector<PhaseDemand> &phases, GBps y)
{
    validatePhases(phases);
    double share_sum = 0.0;
    double avg_demand = 0.0;
    for (const auto &p : phases) {
        avg_demand += p.timeShare * p.demand;
        share_sum += p.timeShare;
    }
    avg_demand /= share_sum;
    return predictor.relativeSpeed(avg_demand, y);
}

} // namespace pccs::model
