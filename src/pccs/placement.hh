/**
 * @file
 * Kernel-to-PU placement optimization (the Figure 7 workflow of the
 * paper: "a task placement scheme for an application indicates a
 * mapping of kernels K1 and K2 to PUs in a system"; PCCS supplies the
 * co-run slowdowns that let designers compare placements without
 * running them).
 *
 * Given a set of tasks (each with per-PU-kind implementations), a set
 * of per-PU slowdown models, and the standalone profiles of every
 * task-on-PU option, the optimizer enumerates the injective
 * assignments of tasks to PUs and scores each with the co-run
 * predictor. Two objectives are provided: maximize the worst per-task
 * relative speed (pipelines) or minimize the predicted makespan
 * (batch jobs).
 */

#ifndef PCCS_MODEL_PLACEMENT_HH
#define PCCS_MODEL_PLACEMENT_HH

#include <string>
#include <vector>

#include "pccs/corun.hh"
#include "soc/simulator.hh"

namespace pccs::model {

/** One schedulable task with its per-PU implementation options. */
struct PlacementTask
{
    std::string name;
    /**
     * One entry per PU of the SoC (parallel to SocConfig::pus); an
     * empty phase list marks the PU as unable to run this task
     * (e.g., Rodinia kernels have no DLA implementation).
     */
    std::vector<soc::PhasedWorkload> options;
};

/** Objective of the placement search. */
enum class PlacementObjective
{
    /** Maximize the minimum per-task relative speed (pipelines). */
    MaxMinRelativeSpeed,
    /** Minimize the predicted completion time of the slowest task. */
    MinMakespan,
};

/** One scored assignment. */
struct PlacementChoice
{
    /** puAssignment[t] = PU index running task t. */
    std::vector<std::size_t> puAssignment;
    /** Predicted relative speed per task, %. */
    std::vector<double> relativeSpeed;
    /** Predicted co-run completion time per task, seconds. */
    std::vector<double> corunSeconds;
    /** The objective value (higher is better for both objectives). */
    double score = 0.0;
};

/**
 * Enumerate and score all feasible injective task-to-PU assignments.
 *
 * @param sim the SoC (used for standalone profiling)
 * @param models one slowdown model per PU (parallel to the PU list)
 * @param tasks the tasks to place (at most as many as there are PUs)
 * @param objective the ranking criterion
 * @return all feasible choices, best first; empty if none feasible
 */
std::vector<PlacementChoice> enumeratePlacements(
    const soc::SocSimulator &sim,
    const std::vector<const SlowdownPredictor *> &models,
    const std::vector<PlacementTask> &tasks,
    PlacementObjective objective = PlacementObjective::MaxMinRelativeSpeed);

/** Convenience: the best placement only; fatal when none feasible. */
PlacementChoice bestPlacement(
    const soc::SocSimulator &sim,
    const std::vector<const SlowdownPredictor *> &models,
    const std::vector<PlacementTask> &tasks,
    PlacementObjective objective = PlacementObjective::MaxMinRelativeSpeed);

} // namespace pccs::model

#endif // PCCS_MODEL_PLACEMENT_HH
