/**
 * @file
 * Synthetic profiles of the Rodinia benchmarks the paper evaluates
 * (Section 4.1: hotspot, leukocyte, heartwall, streamcluster,
 * pathfinder, srad, k-means, b+tree, cfd, bfs).
 *
 * PCCS consumes only a kernel's standalone bandwidth demand (plus, in
 * our simulated substrate, its row locality), so each benchmark is
 * modeled by its DRAM-level operational intensity. The intensity of a
 * benchmark on a PU *kind* is an intrinsic property of its
 * implementation: it is solved once against the Xavier-class reference
 * PU of that kind so that the standalone demand matches the target
 * the paper's narrative implies, and then carries over to other SoCs
 * (on the Snapdragon the same kernels naturally show lower demands,
 * e.g. hotspot drops into the minor region — the Figure 11 story).
 */

#ifndef PCCS_WORKLOADS_RODINIA_HH
#define PCCS_WORKLOADS_RODINIA_HH

#include <string>
#include <vector>

#include "soc/exec_model.hh"
#include "soc/kernel.hh"

namespace pccs::workloads {

/** Static description of one Rodinia benchmark. */
struct RodiniaSpec
{
    std::string name;
    /** Target standalone demand on the Xavier-class CPU, GB/s. */
    GBps cpuTarget = 0.0;
    /** Target standalone demand on the Xavier-class GPU, GB/s. */
    GBps gpuTarget = 0.0;
    /** Row locality of the access stream. */
    double locality = 0.9;
    /** DRAM traffic of one run, bytes. */
    double workBytes = 2e9;
    /** True for the compute-intensive benchmarks (HS, LC, HW). */
    bool computeIntensive = false;
};

/** @return the full 10-benchmark suite. */
const std::vector<RodiniaSpec> &rodiniaSuite();

/** @return the spec by name; fatal when unknown. */
const RodiniaSpec &rodiniaSpec(const std::string &name);

/** @return names of the benchmarks evaluated on the GPU (all 10). */
std::vector<std::string> gpuBenchmarks();

/** @return names of the benchmarks evaluated on the CPU (Fig. 9's 5). */
std::vector<std::string> cpuBenchmarks();

/**
 * Build the kernel profile of a Rodinia benchmark for a PU kind.
 * The operational intensity is solved against the Xavier-class
 * reference PU of that kind (results are cached).
 */
soc::KernelProfile rodiniaKernel(const std::string &name,
                                 soc::PuKind kind);

/**
 * CFD as a 4-phase workload (Section 4.1, Figure 13): one high-
 * bandwidth kernel (K1) and three medium-bandwidth kernels (K2-K4).
 */
soc::PhasedWorkload cfdPhased(soc::PuKind kind);

} // namespace pccs::workloads

#endif // PCCS_WORKLOADS_RODINIA_HH
