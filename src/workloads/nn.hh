/**
 * @file
 * Neural-network inference workloads for the DLA (Section 4.1: the
 * DLA slowdown model is validated on ImageNet inference with
 * ResNet-50 and VGG19; the co-location study of Table 8 also uses
 * AlexNet; MNIST serves as the DLA calibrator whose operational
 * intensity is controlled by the convolution filter size).
 *
 * Each network is a multi-phase workload: groups of layers with
 * similar bandwidth behavior form phases (early wide convolutions are
 * bandwidth-heavier than late, compute-dense ones).
 */

#ifndef PCCS_WORKLOADS_NN_HH
#define PCCS_WORKLOADS_NN_HH

#include "soc/kernel.hh"

namespace pccs::workloads {

/** ResNet-50 inference on the DLA. */
soc::PhasedWorkload resnet50Dla();

/** VGG19 inference on the DLA (the most bandwidth-hungry model). */
soc::PhasedWorkload vgg19Dla();

/** AlexNet inference on the DLA. */
soc::PhasedWorkload alexnetDla();

/**
 * The MNIST calibration network: a single convolution whose filter
 * size controls the operational intensity.
 *
 * @param target_bw standalone bandwidth demand to hit on the
 *        Xavier-class DLA, GB/s
 */
soc::KernelProfile mnistDla(GBps target_bw);

/** @return the DLA workload by model name; fatal when unknown. */
soc::PhasedWorkload dlaWorkload(const std::string &name);

} // namespace pccs::workloads

#endif // PCCS_WORKLOADS_NN_HH
