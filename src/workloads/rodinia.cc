#include "rodinia.hh"

#include <map>
#include <mutex>

#include "calib/calibrator.hh"
#include "common/logging.hh"
#include "soc/soc_config.hh"

namespace pccs::workloads {

const std::vector<RodiniaSpec> &
rodiniaSuite()
{
    // Targets (GB/s on the Xavier-class PUs) place each benchmark in
    // the contention region the paper's results show it in: HS/LC/HW
    // are compute-intensive (minor region), the other seven are memory
    // intensive. bfs/k-means/b+tree get reduced locality (the paper
    // attributes their larger errors to poor row-buffer hit rates).
    static const std::vector<RodiniaSpec> suite = {
        {"hotspot", 4.5, 22.0, 0.95, 1.6e9, true},
        {"leukocyte", 6.0, 18.0, 0.95, 2.2e9, true},
        {"heartwall", 8.0, 26.0, 0.94, 2.0e9, true},
        {"streamcluster", 52.0, 76.0, 0.96, 3.5e9, false},
        {"pathfinder", 48.0, 58.0, 0.95, 2.8e9, false},
        {"srad", 55.0, 72.0, 0.95, 3.0e9, false},
        {"k-means", 45.0, 64.0, 0.88, 2.6e9, false},
        {"b+tree", 42.0, 52.0, 0.85, 2.4e9, false},
        {"cfd", 58.0, 70.0, 0.93, 3.2e9, false},
        {"bfs", 50.0, 88.0, 0.75, 2.0e9, false},
    };
    return suite;
}

const RodiniaSpec &
rodiniaSpec(const std::string &name)
{
    for (const auto &spec : rodiniaSuite())
        if (spec.name == name)
            return spec;
    fatal("unknown Rodinia benchmark '%s'", name.c_str());
}

std::vector<std::string>
gpuBenchmarks()
{
    std::vector<std::string> names;
    for (const auto &spec : rodiniaSuite())
        names.push_back(spec.name);
    return names;
}

std::vector<std::string>
cpuBenchmarks()
{
    // The five benchmarks of Figure 9.
    return {"hotspot", "streamcluster", "pathfinder", "k-means", "srad"};
}

namespace {

/** Reference PU and execution model used to pin intensities. */
struct ReferenceContext
{
    soc::SocConfig soc = soc::xavierLike();
    soc::ExecutionModel model{soc.memory};
};

const ReferenceContext &
reference()
{
    static const ReferenceContext ctx;
    return ctx;
}

GBps
targetFor(const RodiniaSpec &spec, soc::PuKind kind)
{
    switch (kind) {
      case soc::PuKind::Cpu:
        return spec.cpuTarget;
      case soc::PuKind::Gpu:
        return spec.gpuTarget;
      case soc::PuKind::Dla:
        fatal("Rodinia benchmark '%s' has no DLA implementation",
              spec.name.c_str());
    }
    panic("unknown PuKind %d", static_cast<int>(kind));
}

/**
 * Solve the intensity of a kernel so its standalone demand on the
 * Xavier-class PU of `kind` equals `target`, honoring `locality`.
 */
soc::KernelProfile
solveKernel(const std::string &name, soc::PuKind kind, GBps target,
            double locality, double work_bytes)
{
    const ReferenceContext &ctx = reference();
    soc::KernelProfile k = calib::makeCalibrator(
        ctx.model, ctx.soc.pu(kind), target, locality);
    k.name = name;
    k.workBytes = work_bytes;
    return k;
}

} // namespace

soc::KernelProfile
rodiniaKernel(const std::string &name, soc::PuKind kind)
{
    static std::map<std::pair<std::string, soc::PuKind>,
                    soc::KernelProfile>
        cache;
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);

    const auto key = std::make_pair(name, kind);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    const RodiniaSpec &spec = rodiniaSpec(name);
    soc::KernelProfile k =
        solveKernel(spec.name, kind, targetFor(spec, kind),
                    spec.locality, spec.workBytes);
    cache.emplace(key, k);
    return k;
}

soc::PhasedWorkload
cfdPhased(soc::PuKind kind)
{
    // Four kernels: K1 is high-bandwidth, K2-K4 are medium (Fig. 13).
    struct PhaseSpec
    {
        const char *name;
        GBps cpuTarget;
        GBps gpuTarget;
        double byteShare;
    };
    // K1's demand sits deep in the contention range while K2-K4 stay
    // low: the *time-weighted average* demand lands near the minor
    // region, which is exactly why feeding the average to the model
    // underestimates the slowdown (Fig. 13a) while per-phase
    // prediction does not (Fig. 13b).
    static const PhaseSpec phases[] = {
        {"cfd-K1", 70.0, 85.0, 0.45},
        {"cfd-K2", 26.0, 32.0, 0.20},
        {"cfd-K3", 24.0, 28.0, 0.15},
        {"cfd-K4", 28.0, 30.0, 0.20},
    };
    const RodiniaSpec &spec = rodiniaSpec("cfd");

    soc::PhasedWorkload w;
    w.name = "cfd";
    for (const auto &ps : phases) {
        const GBps target = kind == soc::PuKind::Cpu ? ps.cpuTarget
                                                     : ps.gpuTarget;
        w.phases.push_back(solveKernel(ps.name, kind, target,
                                       spec.locality,
                                       ps.byteShare * spec.workBytes));
    }
    return w;
}

} // namespace pccs::workloads
