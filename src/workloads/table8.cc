#include "table8.hh"

namespace pccs::workloads {

const std::vector<WorkloadTriple> &
table8Workloads()
{
    static const std::vector<WorkloadTriple> workloads = {
        {"A", "streamcluster", "pathfinder", "Resnet-50"},
        {"B", "streamcluster", "pathfinder", "VGG-19"},
        {"C", "streamcluster", "leukocyte", "Alexnet"},
        {"D", "streamcluster", "srad", "Resnet-50"},
        {"E", "pathfinder", "streamcluster", "VGG-19"},
        {"F", "pathfinder", "heartwall", "Alexnet"},
        {"G", "k-means", "b+tree", "Resnet-50"},
        {"H", "k-means", "srad", "VGG-19"},
        {"I", "hotspot", "bfs", "Alexnet"},
        {"J", "srad", "pathfinder", "Resnet-50"},
        {"K", "srad", "leukocyte", "VGG-19"},
    };
    return workloads;
}

} // namespace pccs::workloads
