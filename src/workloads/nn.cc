#include "nn.hh"

#include "calib/calibrator.hh"
#include "common/logging.hh"
#include "soc/soc_config.hh"

namespace pccs::workloads {

namespace {

/** DLA streams activations/weights with decent but not perfect rows. */
constexpr double dlaLocality = 0.94;

soc::KernelProfile
dlaPhase(const char *name, GBps target_bw, double work_bytes)
{
    static const soc::SocConfig soc = soc::xavierLike();
    static const soc::ExecutionModel model(soc.memory);
    soc::KernelProfile k = calib::makeCalibrator(
        model, soc.pu(soc::PuKind::Dla), target_bw, dlaLocality);
    k.name = name;
    k.workBytes = work_bytes;
    return k;
}

} // namespace

soc::PhasedWorkload
resnet50Dla()
{
    // Phase grouping: stem + early residual stages are bandwidth
    // heavier (large activations), late stages are compute dense.
    soc::PhasedWorkload w;
    w.name = "resnet-50";
    const double total = 2.4e9;
    w.phases.push_back(dlaPhase("resnet50-early", 24.0, 0.35 * total));
    w.phases.push_back(dlaPhase("resnet50-mid", 17.0, 0.40 * total));
    w.phases.push_back(dlaPhase("resnet50-late", 12.0, 0.25 * total));
    return w;
}

soc::PhasedWorkload
vgg19Dla()
{
    soc::PhasedWorkload w;
    w.name = "vgg-19";
    const double total = 3.6e9;
    w.phases.push_back(dlaPhase("vgg19-early", 27.0, 0.50 * total));
    w.phases.push_back(dlaPhase("vgg19-mid", 21.0, 0.30 * total));
    w.phases.push_back(dlaPhase("vgg19-fc", 15.0, 0.20 * total));
    return w;
}

soc::PhasedWorkload
alexnetDla()
{
    soc::PhasedWorkload w;
    w.name = "alexnet";
    const double total = 1.5e9;
    w.phases.push_back(dlaPhase("alexnet-conv", 20.0, 0.45 * total));
    w.phases.push_back(dlaPhase("alexnet-fc", 14.0, 0.55 * total));
    return w;
}

soc::KernelProfile
mnistDla(GBps target_bw)
{
    PCCS_ASSERT(target_bw > 0.0, "mnist calibrator target must be > 0");
    soc::KernelProfile k = dlaPhase("mnist", target_bw, 2e8);
    return k;
}

soc::PhasedWorkload
dlaWorkload(const std::string &name)
{
    if (name == "Resnet-50" || name == "resnet-50")
        return resnet50Dla();
    if (name == "VGG-19" || name == "vgg-19")
        return vgg19Dla();
    if (name == "Alexnet" || name == "alexnet")
        return alexnetDla();
    fatal("unknown DLA workload '%s'", name.c_str());
}

} // namespace pccs::workloads
