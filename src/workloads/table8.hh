/**
 * @file
 * The eleven three-PU co-location workloads of Table 8 (Section 4.2):
 * each workload runs one Rodinia benchmark on the CPU, one on the GPU,
 * and one neural network on the DLA.
 */

#ifndef PCCS_WORKLOADS_TABLE8_HH
#define PCCS_WORKLOADS_TABLE8_HH

#include <string>
#include <vector>

namespace pccs::workloads {

/** One row of Table 8. */
struct WorkloadTriple
{
    std::string id;       //!< "A" .. "K"
    std::string cpuBench; //!< Rodinia benchmark on the CPU
    std::string gpuBench; //!< Rodinia benchmark on the GPU
    std::string dlaModel; //!< NN model on the DLA
};

/** @return the eleven Table 8 workloads. */
const std::vector<WorkloadTriple> &table8Workloads();

} // namespace pccs::workloads

#endif // PCCS_WORKLOADS_TABLE8_HH
