/**
 * @file
 * The sweep engine: one parallel, memoizing evaluation layer under
 * every sweep-shaped consumer of the SoC simulator.
 *
 * Calibration (`calib::calibrate`), the predicted-vs-actual benches
 * (`bench::sweepKernel`), the design explorer, and the power-budget
 * explorer all reduce to evaluating independent (SoC, PU, kernel,
 * external-BW) points. The engine owns a simple thread pool that
 * evaluates such points in parallel while guaranteeing bit-identical
 * results to serial execution — point ordering is deterministic, each
 * point writes only its own result slot, and every evaluated function
 * is pure (`SocSimulator::run` and friends are const) — and routes
 * all evaluations through a shared `EvalCache` so overlapping sweeps
 * (the calibration ladder, the figure ladders, the frequency grids)
 * stop recomputing common points.
 *
 * Pool sizing: `std::thread::hardware_concurrency()` by default,
 * overridable with the `PCCS_JOBS` environment variable. `PCCS_JOBS=1`
 * disables the pool entirely (pure serial fallback).
 */

#ifndef PCCS_RUNNER_SWEEP_ENGINE_HH
#define PCCS_RUNNER_SWEEP_ENGINE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "runner/eval_cache.hh"
#include "soc/simulator.hh"

namespace pccs::runner {

/** One independent sweep point: a kernel on a PU under pressure. */
struct EvalPoint
{
    std::size_t puIndex = 0;
    soc::KernelProfile kernel;
    GBps externalBw = 0.0;
};

/**
 * A fixed-size pool of `std::jthread` workers executing indexed loop
 * bodies. One batch runs at a time; `run()` blocks until the batch
 * completes and the calling thread participates in the work.
 */
class ThreadPool
{
  public:
    /** Spawn `workers` threads (0 = no pool; run() executes inline). */
    explicit ThreadPool(unsigned workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return number of pool threads (excluding the caller). */
    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Execute body(0) .. body(count - 1), distributing indices over
     * the pool plus the calling thread. Indices are claimed atomically
     * but each index runs exactly once and writes only what the body
     * makes it write, so any pure body yields results identical to a
     * serial loop. Blocks until every index completed. Bodies must not
     * call run() on the same pool (batches do not nest).
     */
    void run(std::size_t count,
             const std::function<void(std::size_t)> &body);

  private:
    void workerLoop(const std::stop_token &stop);

    std::mutex batchMutex_; ///< serializes concurrent run() callers
    std::mutex mutex_;
    std::condition_variable_any cvWork_;
    std::condition_variable cvDone_;
    const std::function<void(std::size_t)> *body_ = nullptr;
    std::size_t count_ = 0;
    std::atomic<std::size_t> next_{0};
    std::size_t active_ = 0;
    std::uint64_t generation_ = 0;
    /** Declared last: joins (via stop token) before members die. */
    std::vector<std::jthread> threads_;
};

/**
 * Parallel, cached evaluation of sweep points. One engine (usually
 * the process-wide `global()` instance) is shared by calibration,
 * benches, and the explorers so their overlapping sweep matrices hit
 * the same cache.
 */
class SweepEngine
{
  public:
    /**
     * @param jobs total worker count including the calling thread;
     *        0 = automatic (PCCS_JOBS env var, else
     *        hardware_concurrency), 1 = serial fallback.
     */
    explicit SweepEngine(unsigned jobs = 0);

    /** @return the effective job count (>= 1). */
    unsigned jobs() const { return jobs_; }

    /**
     * Achieved relative speed (%) of one point, memoized. Identical
     * to `sim.relativeSpeedUnderPressure(pu, kernel, external)`.
     */
    double evaluate(const soc::SocSimulator &sim, std::size_t pu_index,
                    const soc::KernelProfile &kernel, GBps external);

    /**
     * Evaluate all points on `sim` in parallel; result[i] is point
     * i's relative speed, bit-identical to a serial loop.
     */
    std::vector<double> evaluateBatch(const soc::SocSimulator &sim,
                                      const std::vector<EvalPoint> &points);

    /** Standalone profile of a kernel on a PU, memoized. */
    soc::StandaloneProfile profile(const soc::SocSimulator &sim,
                                   std::size_t pu_index,
                                   const soc::KernelProfile &kernel);

    /**
     * Deterministic parallel loop over [0, count) on the engine's
     * pool, for sweep-shaped work that is not a plain speed
     * evaluation (grid precomputes, per-config sweeps).
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    EvalCache &cache() { return cache_; }
    const EvalCache &cache() const { return cache_; }

    /**
     * The process-wide engine. Created on first use; sized from
     * PCCS_JOBS / hardware_concurrency at that moment.
     */
    static SweepEngine &global();

  private:
    unsigned jobs_;
    EvalCache cache_;
    ThreadPool pool_;
};

} // namespace pccs::runner

#endif // PCCS_RUNNER_SWEEP_ENGINE_HH
