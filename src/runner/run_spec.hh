/**
 * @file
 * Structured sweep-run descriptions and machine-readable artifacts.
 *
 * Every bench binary prints human-readable tables; the runner layer
 * additionally captures the same data as a `RunResult` and exports it
 * as JSON and CSV, so downstream tooling (plotters, regression
 * trackers, large sweep farms) can consume every experiment without
 * scraping terminal output.
 *
 * Artifact layout (JSON):
 *
 *     {
 *       "experiment": "fig08_xavier_gpu",
 *       "title": "...", "paperRef": "Figure 8",
 *       "soc": "Xavier-like", "pu": "Volta GPU",
 *       "externalBw": [10.0, ...],
 *       "kernels": [
 *         {"name": "bfs", "demand": 55.2,
 *          "series": {"actual": [...], "pccs": [...]}}
 *       ],
 *       "tables": [
 *         {"title": "...", "headers": [...], "rows": [[...], ...]}
 *       ],
 *       "cache": {"hits": 120, "misses": 240, "hitRate": 0.333}
 *     }
 *
 * The CSV rendering is long-format for curves (kernel, series,
 * external_bw, value) followed by '#'-titled raw table sections.
 */

#ifndef PCCS_RUNNER_RUN_SPEC_HH
#define PCCS_RUNNER_RUN_SPEC_HH

#include <string>
#include <vector>

#include "common/table.hh"
#include "common/units.hh"
#include "runner/eval_cache.hh"

namespace pccs::runner {

/** Identity and axes of one sweep run. */
struct RunSpec
{
    /** Artifact base name, e.g. "fig08_xavier_gpu". */
    std::string experiment;
    /** Human-readable experiment title. */
    std::string title;
    /** Paper reference, e.g. "Figure 8". */
    std::string paperRef;
    /** SoC configuration name. */
    std::string socName;
    /** Target PU name (empty for whole-SoC experiments). */
    std::string puName;
    /** The external-demand ladder (x axis of the curves). */
    std::vector<GBps> externalBw;
};

/** One named curve over the spec's external ladder. */
struct Series
{
    std::string name;
    std::vector<double> values;
};

/** All curves of one sweep subject (kernel/workload). */
struct KernelRun
{
    std::string name;
    /** Standalone bandwidth demand, GB/s (0 when not applicable). */
    GBps demand = 0.0;
    std::vector<Series> series;
};

/** A raw table attached to the artifact (summaries, params, ...). */
struct NamedTable
{
    std::string title;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** The machine-readable result of one experiment run. */
struct RunResult
{
    RunSpec spec;
    std::vector<KernelRun> kernels;
    std::vector<NamedTable> tables;
    /** Engine cache counters at export time. */
    CacheStats cache;

    /** Attach a rendered Table under a title. */
    void addTable(std::string table_title, const Table &t)
    {
        tables.push_back({std::move(table_title), t.headers(),
                          t.cells()});
    }

    /** Render the whole artifact as a JSON document. */
    std::string toJson() const;

    /** Render the whole artifact as CSV. */
    std::string toCsv() const;

    /**
     * Write `<dir>/<experiment>.json` and `<dir>/<experiment>.csv`;
     * fatal on I/O failure.
     * @return the JSON path written.
     */
    std::string writeArtifacts(const std::string &dir = ".") const;
};

/** Minimal JSON string escaping (quotes, backslashes, control). */
std::string jsonEscape(const std::string &s);

/** Round-trippable JSON number formatting for doubles. */
std::string jsonNumber(double v);

} // namespace pccs::runner

#endif // PCCS_RUNNER_RUN_SPEC_HH
