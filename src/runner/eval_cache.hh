/**
 * @file
 * Memoization of simulator evaluations for the sweep engine.
 *
 * Every sweep-shaped consumer of the SoC simulator (calibration, the
 * predicted-vs-actual benches, the design and power explorers) asks
 * for the same two pure quantities over and over: the standalone
 * profile of a kernel on a PU, and the achieved relative speed of a
 * kernel under a given external bandwidth demand. Both depend only on
 * (SoC configuration, PU index, kernel profile, external demand), so
 * they memoize perfectly. The cache keys on bit-exact double
 * representations: a hit returns the very double the simulator would
 * have produced, keeping cached sweeps bit-identical to uncached ones.
 */

#ifndef PCCS_RUNNER_EVAL_CACHE_HH
#define PCCS_RUNNER_EVAL_CACHE_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "soc/exec_model.hh"
#include "soc/soc_config.hh"

namespace pccs::runner {

/**
 * Identity of one simulator evaluation. Doubles are keyed by their
 * bit patterns so that only exactly-equal inputs share an entry.
 * Kernel names are deliberately excluded: the simulator's results do
 * not depend on them, so renamed copies of a kernel still hit.
 */
struct PointKey
{
    /** Fingerprint of the full SoC configuration. */
    std::uint64_t socFingerprint = 0;
    std::size_t puIndex = 0;
    std::uint64_t intensityBits = 0;
    std::uint64_t localityBits = 0;
    std::uint64_t workBytesBits = 0;
    /** External demand bits; 0 for standalone-profile entries. */
    std::uint64_t externalBits = 0;

    bool operator==(const PointKey &other) const = default;
};

/** FNV-1a style hash over the key's fields. */
struct PointKeyHash
{
    std::size_t operator()(const PointKey &k) const;
};

/**
 * Order-independent fingerprint of an SoC configuration: hashes the
 * memory parameters and every PU's numeric fields (and names, for
 * conservatism). Two configs with equal fingerprints are treated as
 * interchangeable by the cache.
 */
std::uint64_t socFingerprint(const soc::SocConfig &config);

/** Cache key for a relative-speed evaluation. */
PointKey speedKey(const soc::SocConfig &config, std::size_t pu_index,
                  const soc::KernelProfile &kernel, GBps external);

/** Same, but with a precomputed config fingerprint. */
PointKey speedKey(std::uint64_t soc_fingerprint, std::size_t pu_index,
                  const soc::KernelProfile &kernel, GBps external);

/** Cache key for a standalone-profile evaluation. */
PointKey profileKey(const soc::SocConfig &config, std::size_t pu_index,
                    const soc::KernelProfile &kernel);

/** Hit/miss accounting of an EvalCache. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    std::uint64_t lookups() const { return hits + misses; }

    /** @return hits / lookups in [0, 1]; 0 when never consulted. */
    double hitRate() const
    {
        return lookups() > 0
                   ? static_cast<double>(hits) /
                         static_cast<double>(lookups())
                   : 0.0;
    }
};

/**
 * Thread-safe memo table for relative-speed and standalone-profile
 * evaluations. Lookups and stores may race benignly: both racers
 * compute the same pure function, so the value stored last is the
 * value stored first.
 */
class EvalCache
{
  public:
    /** @return the cached relative speed, counting a hit or miss. */
    std::optional<double> lookupSpeed(const PointKey &key);

    void storeSpeed(const PointKey &key, double value);

    /** @return the cached profile, counting a hit or miss. */
    std::optional<soc::StandaloneProfile>
    lookupProfile(const PointKey &key);

    void storeProfile(const PointKey &key,
                      const soc::StandaloneProfile &profile);

    /** Combined hit/miss counters across both tables. */
    CacheStats stats() const;

    /** @return number of memoized entries across both tables. */
    std::size_t size() const;

    /** Drop all entries and reset the counters. */
    void clear();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<PointKey, double, PointKeyHash> speeds_;
    std::unordered_map<PointKey, soc::StandaloneProfile, PointKeyHash>
        profiles_;
    CacheStats stats_;
};

} // namespace pccs::runner

#endif // PCCS_RUNNER_EVAL_CACHE_HH
