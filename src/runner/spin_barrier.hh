/**
 * @file
 * A reusable sense-free spin barrier for tightly coupled worker
 * teams.
 *
 * The sweep engine's ThreadPool hands out coarse independent work
 * items; cyclic simulations that parallelize *within* a timestep (the
 * sharded multi-MC DRAM loop) instead need all workers to rendezvous
 * once or twice per simulated cycle. A mutex/condvar rendezvous costs
 * microseconds per crossing — more than the simulated cycle itself —
 * so this barrier spins, with a bounded busy phase before yielding to
 * stay polite on oversubscribed CI runners.
 *
 * Correctness: arrivals are acq_rel RMWs on `arrived_`, so the last
 * arriver's release-store of `phase_` happens-after every earlier
 * arriver's preceding writes (release sequence through the RMW
 * chain), and each waiter's acquire-load of `phase_` synchronizes
 * with it. Everything written before arriveAndWait() is therefore
 * visible to every thread after it returns.
 */

#ifndef PCCS_RUNNER_SPIN_BARRIER_HH
#define PCCS_RUNNER_SPIN_BARRIER_HH

#include <atomic>
#include <cstdint>
#include <thread>

namespace pccs::runner {

/** One CPU-friendly busy-wait pause. */
inline void
spinPause()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::this_thread::yield();
#endif
}

/**
 * Phase-counting barrier for a fixed party count. Reusable: each
 * arriveAndWait() crossing releases exactly when all parties arrive,
 * and the monotonically increasing phase counter (rather than a
 * flipping sense flag) makes back-to-back crossings race-free — a
 * thread sprinting ahead to the next crossing observes a fresh phase
 * value, never a stale reset.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(unsigned parties) : parties_(parties) {}

    SpinBarrier(const SpinBarrier &) = delete;
    SpinBarrier &operator=(const SpinBarrier &) = delete;

    /** Block (spinning) until all parties have arrived. */
    void arriveAndWait()
    {
        const std::uint64_t phase =
            phase_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            // Reset before publishing the new phase: a waiter released
            // by the phase store acquires it, so it sees the reset
            // before its own next arrival increments the counter.
            arrived_.store(0, std::memory_order_relaxed);
            phase_.store(phase + 1, std::memory_order_release);
            return;
        }
        unsigned spins = 0;
        while (phase_.load(std::memory_order_acquire) == phase) {
            if (++spins < kSpinsBeforeYield)
                spinPause();
            else
                std::this_thread::yield();
        }
    }

    unsigned parties() const { return parties_; }

  private:
    static constexpr unsigned kSpinsBeforeYield = 4096;

    const unsigned parties_;
    std::atomic<unsigned> arrived_{0};
    std::atomic<std::uint64_t> phase_{0};
};

} // namespace pccs::runner

#endif // PCCS_RUNNER_SPIN_BARRIER_HH
