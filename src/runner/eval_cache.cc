#include "eval_cache.hh"

#include <bit>

namespace pccs::runner {

namespace {

constexpr std::uint64_t fnvOffset = 1469598103934665603ull;
constexpr std::uint64_t fnvPrime = 1099511628211ull;

void
mix(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= fnvPrime;
    }
}

void
mix(std::uint64_t &h, double v)
{
    mix(h, std::bit_cast<std::uint64_t>(v));
}

void
mix(std::uint64_t &h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= fnvPrime;
    }
    mix(h, static_cast<std::uint64_t>(s.size()));
}

std::uint64_t
doubleBits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

} // namespace

std::size_t
PointKeyHash::operator()(const PointKey &k) const
{
    std::uint64_t h = fnvOffset;
    mix(h, k.socFingerprint);
    mix(h, static_cast<std::uint64_t>(k.puIndex));
    mix(h, k.intensityBits);
    mix(h, k.localityBits);
    mix(h, k.workBytesBits);
    mix(h, k.externalBits);
    return static_cast<std::size_t>(h);
}

std::uint64_t
socFingerprint(const soc::SocConfig &config)
{
    std::uint64_t h = fnvOffset;
    mix(h, config.name);
    mix(h, config.memory.peakBandwidth);
    mix(h, config.memory.baseEfficiency);
    mix(h, config.memory.minEfficiency);
    mix(h, config.memory.mixPenalty);
    mix(h, config.memory.localityPenalty);
    mix(h, config.memory.latencyLoad);
    mix(h, static_cast<std::uint64_t>(config.memory.policy));
    mix(h, static_cast<std::uint64_t>(config.pus.size()));
    for (const auto &pu : config.pus) {
        mix(h, pu.name);
        mix(h, static_cast<std::uint64_t>(pu.kind));
        mix(h, pu.frequency);
        mix(h, pu.maxFrequency);
        mix(h, pu.flopsPerCycle);
        mix(h, pu.interfaceBandwidth);
        mix(h, pu.issueBandwidth);
        mix(h, pu.overlap);
        mix(h, pu.latencySensitivity);
        mix(h, pu.fairShareWeight);
    }
    return h;
}

PointKey
speedKey(std::uint64_t soc_fingerprint, std::size_t pu_index,
         const soc::KernelProfile &kernel, GBps external)
{
    PointKey k;
    k.socFingerprint = soc_fingerprint;
    k.puIndex = pu_index;
    k.intensityBits = doubleBits(kernel.intensity);
    k.localityBits = doubleBits(kernel.locality);
    k.workBytesBits = doubleBits(kernel.workBytes);
    k.externalBits = doubleBits(external);
    return k;
}

PointKey
speedKey(const soc::SocConfig &config, std::size_t pu_index,
         const soc::KernelProfile &kernel, GBps external)
{
    return speedKey(socFingerprint(config), pu_index, kernel, external);
}

PointKey
profileKey(const soc::SocConfig &config, std::size_t pu_index,
           const soc::KernelProfile &kernel)
{
    return speedKey(socFingerprint(config), pu_index, kernel, 0.0);
}

std::optional<double>
EvalCache::lookupSpeed(const PointKey &key)
{
    std::lock_guard lock(mutex_);
    auto it = speeds_.find(key);
    if (it == speeds_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.hits;
    return it->second;
}

void
EvalCache::storeSpeed(const PointKey &key, double value)
{
    std::lock_guard lock(mutex_);
    speeds_[key] = value;
}

std::optional<soc::StandaloneProfile>
EvalCache::lookupProfile(const PointKey &key)
{
    std::lock_guard lock(mutex_);
    auto it = profiles_.find(key);
    if (it == profiles_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.hits;
    return it->second;
}

void
EvalCache::storeProfile(const PointKey &key,
                        const soc::StandaloneProfile &profile)
{
    std::lock_guard lock(mutex_);
    profiles_[key] = profile;
}

CacheStats
EvalCache::stats() const
{
    std::lock_guard lock(mutex_);
    return stats_;
}

std::size_t
EvalCache::size() const
{
    std::lock_guard lock(mutex_);
    return speeds_.size() + profiles_.size();
}

void
EvalCache::clear()
{
    std::lock_guard lock(mutex_);
    speeds_.clear();
    profiles_.clear();
    stats_ = {};
}

} // namespace pccs::runner
