#include "run_spec.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace pccs::runner {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no NaN/Inf
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

namespace {

void
appendNumberArray(std::string &out, const std::vector<double> &values)
{
    out += "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i)
            out += ", ";
        out += jsonNumber(values[i]);
    }
    out += "]";
}

void
appendStringArray(std::string &out,
                  const std::vector<std::string> &values)
{
    out += "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i)
            out += ", ";
        out += "\"" + jsonEscape(values[i]) + "\"";
    }
    out += "]";
}

std::string
csvQuote(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
RunResult::toJson() const
{
    std::string out;
    out += "{\n";
    out += "  \"experiment\": \"" + jsonEscape(spec.experiment) +
           "\",\n";
    out += "  \"title\": \"" + jsonEscape(spec.title) + "\",\n";
    out += "  \"paperRef\": \"" + jsonEscape(spec.paperRef) + "\",\n";
    out += "  \"soc\": \"" + jsonEscape(spec.socName) + "\",\n";
    out += "  \"pu\": \"" + jsonEscape(spec.puName) + "\",\n";
    out += "  \"externalBw\": ";
    appendNumberArray(out, spec.externalBw);
    out += ",\n  \"kernels\": [";
    for (std::size_t k = 0; k < kernels.size(); ++k) {
        const KernelRun &kr = kernels[k];
        out += k ? ",\n    {" : "\n    {";
        out += "\"name\": \"" + jsonEscape(kr.name) + "\", ";
        out += "\"demand\": " + jsonNumber(kr.demand) + ", ";
        out += "\"series\": {";
        for (std::size_t s = 0; s < kr.series.size(); ++s) {
            if (s)
                out += ", ";
            out += "\"" + jsonEscape(kr.series[s].name) + "\": ";
            appendNumberArray(out, kr.series[s].values);
        }
        out += "}}";
    }
    out += kernels.empty() ? "]" : "\n  ]";
    out += ",\n  \"tables\": [";
    for (std::size_t t = 0; t < tables.size(); ++t) {
        const NamedTable &nt = tables[t];
        out += t ? ",\n    {" : "\n    {";
        out += "\"title\": \"" + jsonEscape(nt.title) + "\", ";
        out += "\"headers\": ";
        appendStringArray(out, nt.headers);
        out += ", \"rows\": [";
        for (std::size_t r = 0; r < nt.rows.size(); ++r) {
            if (r)
                out += ", ";
            appendStringArray(out, nt.rows[r]);
        }
        out += "]}";
    }
    out += tables.empty() ? "]" : "\n  ]";
    out += ",\n  \"cache\": {\"hits\": " +
           std::to_string(cache.hits) +
           ", \"misses\": " + std::to_string(cache.misses) +
           ", \"hitRate\": " + jsonNumber(cache.hitRate()) + "}\n";
    out += "}\n";
    return out;
}

std::string
RunResult::toCsv() const
{
    std::ostringstream out;
    if (!kernels.empty()) {
        out << "kernel,demand_gbps,series,external_bw_gbps,value\n";
        for (const KernelRun &kr : kernels) {
            for (const Series &s : kr.series) {
                for (std::size_t j = 0; j < s.values.size(); ++j) {
                    const double x = j < spec.externalBw.size()
                                         ? spec.externalBw[j]
                                         : static_cast<double>(j);
                    out << csvQuote(kr.name) << ','
                        << jsonNumber(kr.demand) << ','
                        << csvQuote(s.name) << ',' << jsonNumber(x)
                        << ',' << jsonNumber(s.values[j]) << '\n';
                }
            }
        }
    }
    for (const NamedTable &nt : tables) {
        if (out.tellp() > 0)
            out << '\n';
        out << "# " << nt.title << '\n';
        for (std::size_t c = 0; c < nt.headers.size(); ++c)
            out << (c ? "," : "") << csvQuote(nt.headers[c]);
        out << '\n';
        for (const auto &row : nt.rows) {
            for (std::size_t c = 0; c < row.size(); ++c)
                out << (c ? "," : "") << csvQuote(row[c]);
            out << '\n';
        }
    }
    return out.str();
}

std::string
RunResult::writeArtifacts(const std::string &dir) const
{
    PCCS_ASSERT(!spec.experiment.empty(),
                "artifact needs an experiment name");
    const std::string base =
        (dir.empty() ? std::string(".") : dir) + "/" + spec.experiment;
    const std::string json_path = base + ".json";
    const std::string csv_path = base + ".csv";
    {
        std::ofstream f(json_path);
        if (!f)
            fatal("cannot write artifact '%s'", json_path.c_str());
        f << toJson();
    }
    {
        std::ofstream f(csv_path);
        if (!f)
            fatal("cannot write artifact '%s'", csv_path.c_str());
        f << toCsv();
    }
    return json_path;
}

} // namespace pccs::runner
