#include "sweep_engine.hh"

#include <cstdlib>
#include <string>

#include "common/logging.hh"

namespace pccs::runner {

namespace {

/** Resolve the effective job count for jobs=0 (automatic). */
unsigned
resolveJobs(unsigned jobs)
{
    if (jobs > 0)
        return jobs;
    if (const char *env = std::getenv("PCCS_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1 && v <= 1024)
            return static_cast<unsigned>(v);
        warn("ignoring invalid PCCS_JOBS='%s' (want an integer in "
             "[1, 1024])",
             env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace

ThreadPool::ThreadPool(unsigned workers)
{
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
        threads_.emplace_back(
            [this](std::stop_token stop) { workerLoop(stop); });
    }
}

ThreadPool::~ThreadPool()
{
    // jthread destructors request stop and join; the stop token wakes
    // workers parked on cvWork_.
}

void
ThreadPool::workerLoop(const std::stop_token &stop)
{
    std::uint64_t seen = 0;
    std::unique_lock lock(mutex_);
    while (true) {
        if (!cvWork_.wait(lock, stop,
                          [&] { return generation_ != seen; })) {
            return; // stop requested while idle
        }
        seen = generation_;
        const auto *body = body_;
        const std::size_t count = count_;
        lock.unlock();

        for (std::size_t i; (i = next_.fetch_add(1)) < count;)
            (*body)(i);

        lock.lock();
        if (--active_ == 0)
            cvDone_.notify_all();
    }
}

void
ThreadPool::run(std::size_t count,
                const std::function<void(std::size_t)> &body)
{
    if (threads_.empty() || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    std::lock_guard batch(batchMutex_);
    {
        std::lock_guard lock(mutex_);
        body_ = &body;
        count_ = count;
        next_.store(0, std::memory_order_relaxed);
        active_ = threads_.size();
        ++generation_;
    }
    cvWork_.notify_all();

    // The caller is a worker too.
    for (std::size_t i; (i = next_.fetch_add(1)) < count;)
        body(i);

    std::unique_lock lock(mutex_);
    cvDone_.wait(lock, [&] { return active_ == 0; });
    body_ = nullptr;
}

SweepEngine::SweepEngine(unsigned jobs)
    : jobs_(resolveJobs(jobs)), pool_(jobs_ - 1)
{
}

double
SweepEngine::evaluate(const soc::SocSimulator &sim, std::size_t pu_index,
                      const soc::KernelProfile &kernel, GBps external)
{
    const PointKey key =
        speedKey(sim.config(), pu_index, kernel, external);
    if (const auto cached = cache_.lookupSpeed(key))
        return *cached;
    const double rs =
        sim.relativeSpeedUnderPressure(pu_index, kernel, external);
    cache_.storeSpeed(key, rs);
    return rs;
}

std::vector<double>
SweepEngine::evaluateBatch(const soc::SocSimulator &sim,
                           const std::vector<EvalPoint> &points)
{
    std::vector<double> results(points.size(), 0.0);
    const std::uint64_t fp = socFingerprint(sim.config());
    pool_.run(points.size(), [&](std::size_t i) {
        const EvalPoint &p = points[i];
        const PointKey key =
            speedKey(fp, p.puIndex, p.kernel, p.externalBw);
        if (const auto cached = cache_.lookupSpeed(key)) {
            results[i] = *cached;
            return;
        }
        const double rs = sim.relativeSpeedUnderPressure(
            p.puIndex, p.kernel, p.externalBw);
        cache_.storeSpeed(key, rs);
        results[i] = rs;
    });
    return results;
}

soc::StandaloneProfile
SweepEngine::profile(const soc::SocSimulator &sim, std::size_t pu_index,
                     const soc::KernelProfile &kernel)
{
    const PointKey key = profileKey(sim.config(), pu_index, kernel);
    if (const auto cached = cache_.lookupProfile(key))
        return *cached;
    const soc::StandaloneProfile prof = sim.profile(pu_index, kernel);
    cache_.storeProfile(key, prof);
    return prof;
}

void
SweepEngine::parallelFor(std::size_t count,
                         const std::function<void(std::size_t)> &body)
{
    pool_.run(count, body);
}

SweepEngine &
SweepEngine::global()
{
    static SweepEngine engine;
    return engine;
}

} // namespace pccs::runner
