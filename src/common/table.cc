#include "table.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "logging.hh"

namespace pccs {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    PCCS_ASSERT(!headers_.empty(), "Table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    PCCS_ASSERT(cells.size() == headers_.size(),
                "Table row has %zu cells, expected %zu",
                cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::addRow(const std::string &label, const std::vector<double> &values,
              int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(fmtDouble(v, precision));
    addRow(std::move(cells));
}

std::string
Table::str() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "| " << row[c]
               << std::string(widths[c] - row[c].size() + 1, ' ');
        }
        os << "|\n";
    };

    emit_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << "|" << std::string(widths[c] + 2, '-');
    os << "|\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
Table::csv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::ostream &
operator<<(std::ostream &os, const Table &t)
{
    return os << t.str();
}

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace pccs
