/**
 * @file
 * Small statistics toolkit: running summaries, vector reductions, simple
 * least-squares line fitting, and error metrics used to compare model
 * predictions against measurements.
 */

#ifndef PCCS_COMMON_STATISTICS_HH
#define PCCS_COMMON_STATISTICS_HH

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace pccs {

/**
 * Incrementally maintained summary of a stream of samples.
 * Uses Welford's algorithm for numerically stable variance.
 */
class RunningStats
{
  public:
    /** Fold one sample into the summary. */
    void add(double x);

    /** @return number of samples folded in so far. */
    std::size_t count() const { return n_; }

    /** @return arithmetic mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** @return population variance (0 when fewer than 2 samples). */
    double variance() const;

    /** @return population standard deviation. */
    double stddev() const;

    /** @return smallest sample seen (+inf when empty). */
    double min() const { return min_; }

    /** @return largest sample seen (-inf when empty). */
    double max() const { return max_; }

    /** @return sum of all samples. */
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** @return arithmetic mean of values (0 when empty). */
double mean(std::span<const double> values);

/** @return population standard deviation of values. */
double stddev(std::span<const double> values);

/**
 * Result of an ordinary least-squares fit y = slope * x + intercept.
 */
struct LineFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination in [0, 1]. */
    double r2 = 0.0;
};

/**
 * Fit a line through (xs[i], ys[i]) by ordinary least squares.
 * Requires xs.size() == ys.size() and at least two distinct x values;
 * degenerate inputs yield slope 0 and intercept = mean(ys).
 */
LineFit fitLine(std::span<const double> xs, std::span<const double> ys);

/**
 * Mean absolute error between prediction and truth, in the same unit as
 * the inputs. Requires equal, nonzero sizes.
 */
double meanAbsoluteError(std::span<const double> predicted,
                         std::span<const double> actual);

/**
 * Mean absolute *percentage-point* error between two series expressed in
 * percent (e.g., achieved relative speeds). This is the error metric the
 * PCCS paper reports: |predictedRS - actualRS| averaged, in % points.
 */
double meanAbsPctPointError(std::span<const double> predicted,
                            std::span<const double> actual);

/** Clamp x into [lo, hi]. */
double clamp(double x, double lo, double hi);

} // namespace pccs

#endif // PCCS_COMMON_STATISTICS_HH
