#include "logging.hh"

#include <cstdio>
#include <cstdlib>

namespace pccs {

namespace {
LogLevel g_level = LogLevel::Inform;

void
vprint(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Inform)
        return;
    va_list args;
    va_start(args, fmt);
    vprint("info", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    vprint("warn", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (g_level < LogLevel::Debug)
        return;
    va_list args;
    va_start(args, fmt);
    vprint("debug", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vprint("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vprint("panic", fmt, args);
    va_end(args);
    std::abort();
}

namespace detail {

void
assertFailBanner(const char *cond, const char *file, int line)
{
    std::fprintf(stderr, "panic: assertion `%s' failed at %s:%d\n",
                 cond, file, line);
}

} // namespace detail

} // namespace pccs
