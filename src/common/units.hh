/**
 * @file
 * Unit helpers and strong-ish typedefs used throughout the library.
 *
 * Bandwidth is expressed in GB/s (decimal gigabytes, matching the paper),
 * time in seconds or controller cycles, frequencies in MHz.
 */

#ifndef PCCS_COMMON_UNITS_HH
#define PCCS_COMMON_UNITS_HH

#include <cstdint>

namespace pccs {

/** Memory bandwidth in GB/s (1e9 bytes per second). */
using GBps = double;

/** Clock frequency in MHz. */
using MHz = double;

/** Simulated controller clock cycle count. */
using Cycles = std::uint64_t;

/** Physical byte address in the simulated DRAM address space. */
using Addr = std::uint64_t;

/** Bytes per decimal gigabyte. */
inline constexpr double bytesPerGB = 1e9;

/** Convert bytes moved over a duration (seconds) into GB/s. */
constexpr GBps
toGBps(double bytes, double seconds)
{
    return seconds > 0.0 ? bytes / bytesPerGB / seconds : 0.0;
}

/** Convert a frequency in MHz to Hz. */
constexpr double
mhzToHz(MHz f)
{
    return f * 1e6;
}

/**
 * Theoretical peak DRAM bandwidth.
 *
 * @param data_rate_mhz effective transfer rate in MT/s (e.g., 3200 for
 *        DDR4-3200, 4266 for LPDDR4x-2133 double data rate)
 * @param channels number of channels
 * @param channel_bits channel width in bits
 * @return peak bandwidth in GB/s
 */
constexpr GBps
peakBandwidth(double data_rate_mhz, unsigned channels, unsigned channel_bits)
{
    return data_rate_mhz * 1e6 * channels * (channel_bits / 8.0) / bytesPerGB;
}

} // namespace pccs

#endif // PCCS_COMMON_UNITS_HH
