/**
 * @file
 * Status-message and error-reporting helpers, modeled on gem5's
 * base/logging.hh conventions.
 *
 * Severity levels:
 *  - inform(): normal operating messages, no connotation of error.
 *  - warn():   something may be off; keep running.
 *  - fatal():  the simulation cannot continue due to a user error
 *              (bad configuration, invalid arguments); exits with code 1.
 *  - panic():  an internal invariant was violated (a bug in this library);
 *              aborts so a debugger/core dump can capture state.
 */

#ifndef PCCS_COMMON_LOGGING_HH
#define PCCS_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace pccs {

/** Verbosity knob: messages below this level are suppressed. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Set the global log verbosity. Thread-hostile; call once at startup. */
void setLogLevel(LogLevel level);

/** @return the current global log verbosity. */
LogLevel logLevel();

/** Print an informational message (printf-style) to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning message (printf-style) to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug message (printf-style); only shown at Debug level. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-caused error and exit(1).
 * Use for bad configurations or invalid arguments, not internal bugs.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a violated internal invariant and abort().
 * Use only for conditions that indicate a bug in this library.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

namespace detail {
/** Print the location banner for a failed PCCS_ASSERT, then return. */
void assertFailBanner(const char *cond, const char *file, int line);
} // namespace detail

/**
 * Assert-like helper: panics with a printf-style message when cond is
 * false. Active in all build types (unlike assert()).
 */
#define PCCS_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::pccs::detail::assertFailBanner(#cond, __FILE__, __LINE__);    \
            ::pccs::panic(__VA_ARGS__);                                     \
        }                                                                   \
    } while (0)

} // namespace pccs

#endif // PCCS_COMMON_LOGGING_HH
