/**
 * @file
 * Lightweight tabular output: aligned ASCII tables for terminal reports
 * (the bench harness prints paper tables/figure series with these) and
 * CSV export for plotting.
 */

#ifndef PCCS_COMMON_TABLE_HH
#define PCCS_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace pccs {

/**
 * A simple column-aligned table. Build it row by row, then stream it.
 *
 * Usage:
 * @code
 *   Table t({"bench", "PCCS err (%)", "Gables err (%)"});
 *   t.addRow({"bfs", "8.1", "31.0"});
 *   std::cout << t;
 * @endcode
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: append a row of doubles formatted with precision. */
    void addRow(const std::string &label, const std::vector<double> &values,
                int precision = 1);

    /** @return number of data rows. */
    std::size_t rows() const { return rows_.size(); }

    /** @return the column headers. */
    const std::vector<std::string> &headers() const { return headers_; }

    /** @return the raw cell rows (for export/serialization). */
    const std::vector<std::vector<std::string>> &cells() const
    {
        return rows_;
    }

    /** Render the aligned table into a string. */
    std::string str() const;

    /** Render as CSV (comma-separated, headers first). */
    std::string csv() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

std::ostream &operator<<(std::ostream &os, const Table &t);

/** Format a double with fixed precision into a string. */
std::string fmtDouble(double v, int precision = 1);

} // namespace pccs

#endif // PCCS_COMMON_TABLE_HH
