#include "statistics.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace pccs {

void
RunningStats::add(double x)
{
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
mean(std::span<const double> values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

double
stddev(std::span<const double> values)
{
    RunningStats rs;
    for (double v : values)
        rs.add(v);
    return rs.stddev();
}

LineFit
fitLine(std::span<const double> xs, std::span<const double> ys)
{
    PCCS_ASSERT(xs.size() == ys.size(),
                "fitLine: size mismatch %zu vs %zu", xs.size(), ys.size());
    LineFit fit;
    const std::size_t n = xs.size();
    if (n == 0) {
        return fit;
    }

    const double mx = mean(xs);
    const double my = mean(ys);
    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }

    if (sxx <= 0.0) {
        fit.intercept = my;
        return fit;
    }

    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    fit.r2 = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
    return fit;
}

double
meanAbsoluteError(std::span<const double> predicted,
                  std::span<const double> actual)
{
    PCCS_ASSERT(predicted.size() == actual.size() && !predicted.empty(),
                "meanAbsoluteError: bad sizes %zu vs %zu",
                predicted.size(), actual.size());
    double s = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i)
        s += std::fabs(predicted[i] - actual[i]);
    return s / static_cast<double>(predicted.size());
}

double
meanAbsPctPointError(std::span<const double> predicted,
                     std::span<const double> actual)
{
    return meanAbsoluteError(predicted, actual);
}

double
clamp(double x, double lo, double hi)
{
    return std::min(std::max(x, lo), hi);
}

} // namespace pccs
