/**
 * @file
 * Deterministic pseudo-random number generation for simulators.
 *
 * All stochastic components of the library draw from an explicitly
 * seeded Rng so that every experiment is exactly reproducible.
 */

#ifndef PCCS_COMMON_RNG_HH
#define PCCS_COMMON_RNG_HH

#include <cstdint>

namespace pccs {

/**
 * A small, fast, deterministic RNG (xoshiro256** core).
 *
 * Not cryptographic; intended for address-stream and scheduling jitter
 * generation inside the simulators.
 */
class Rng
{
  public:
    /** Construct with a seed; equal seeds yield identical streams. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** @return next raw 64-bit value. */
    std::uint64_t next();

    /** @return uniform double in [0, 1). */
    double uniform();

    /** @return uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return uniform integer in [0, bound) (bound > 0). */
    std::uint64_t below(std::uint64_t bound);

    /** @return true with probability p (clamped into [0, 1]). */
    bool chance(double p);

  private:
    std::uint64_t s_[4];
};

} // namespace pccs

#endif // PCCS_COMMON_RNG_HH
