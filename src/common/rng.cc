#include "rng.hh"

namespace pccs {

namespace {

/** splitmix64, used to expand the seed into the xoshiro state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    return bound ? next() % bound : 0;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

} // namespace pccs
