#include "soc_config.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pccs::soc {

int
SocConfig::puIndex(PuKind kind) const
{
    for (std::size_t i = 0; i < pus.size(); ++i)
        if (pus[i].kind == kind)
            return static_cast<int>(i);
    return -1;
}

const PuParams &
SocConfig::pu(PuKind kind) const
{
    const int idx = puIndex(kind);
    if (idx < 0)
        fatal("SoC '%s' has no %s", name.c_str(), puKindName(kind));
    return pus[idx];
}

PuParams &
SocConfig::pu(PuKind kind)
{
    const int idx = puIndex(kind);
    if (idx < 0)
        fatal("SoC '%s' has no %s", name.c_str(), puKindName(kind));
    return pus[idx];
}

SocConfig
SocConfig::withMemoryScaled(double ratio) const
{
    PCCS_ASSERT(ratio > 0.0, "memory scale ratio must be positive");
    SocConfig c = *this;
    c.memory = memory.scaled(ratio);
    return c;
}

SocConfig
xavierLike()
{
    SocConfig soc;
    soc.name = "xavier-like";

    soc.memory.peakBandwidth = 137.0;
    soc.memory.baseEfficiency = 0.93;
    soc.memory.minEfficiency = 0.55;
    soc.memory.mixPenalty = 0.32;
    soc.memory.localityPenalty = 0.30;
    soc.memory.latencyLoad = 1.0;

    PuParams cpu;
    cpu.name = "Carmel CPU";
    cpu.kind = PuKind::Cpu;
    cpu.frequency = cpu.maxFrequency = 2265.0;
    cpu.flopsPerCycle = 64.0; // 8 cores x 2 FMA x 4-wide SIMD
    cpu.interfaceBandwidth = 93.0;
    cpu.issueBandwidth = 105.0;
    cpu.overlap = 0.95;
    cpu.latencySensitivity = 0.06;
    // The eight cores' combined request streams attain slightly more
    // than a single-agent fair share under the MC's fairness policy.
    cpu.fairShareWeight = 1.1;
    soc.pus.push_back(cpu);

    PuParams gpu;
    gpu.name = "Volta GPU";
    gpu.kind = PuKind::Gpu;
    gpu.frequency = gpu.maxFrequency = 1377.0;
    gpu.flopsPerCycle = 1024.0; // 512 cores x 2 flops
    gpu.interfaceBandwidth = 127.0;
    // Issue headroom places the memory-bound clock knee near 900 MHz
    // (1377 * 127 / 194), matching the Figure 15 observation that
    // streamcluster keeps full speed down to ~900 MHz.
    gpu.issueBandwidth = 194.0;
    gpu.overlap = 0.97;
    gpu.latencySensitivity = 0.06;
    gpu.fairShareWeight = 1.0;
    soc.pus.push_back(gpu);

    PuParams dla;
    dla.name = "DLA";
    dla.kind = PuKind::Dla;
    dla.frequency = dla.maxFrequency = 1395.2;
    dla.flopsPerCycle = 512.0;
    dla.interfaceBandwidth = 30.0;
    dla.issueBandwidth = 34.0;
    dla.overlap = 0.60;
    // The DLA has no thread-level parallelism to hide latency: queueing
    // delay inflates its execution time almost one-for-one, which is
    // why it has no minor contention region (Table 7).
    dla.latencySensitivity = 0.70;
    dla.fairShareWeight = 0.8;
    soc.pus.push_back(dla);

    return soc;
}

SocConfig
snapdragonLike()
{
    SocConfig soc;
    soc.name = "snapdragon-855-like";

    soc.memory.peakBandwidth = 34.0;
    soc.memory.baseEfficiency = 0.93;
    soc.memory.minEfficiency = 0.55;
    soc.memory.mixPenalty = 0.32;
    soc.memory.localityPenalty = 0.30;
    soc.memory.latencyLoad = 1.0;

    PuParams cpu;
    cpu.name = "Kryo 485 CPU";
    cpu.kind = PuKind::Cpu;
    cpu.frequency = cpu.maxFrequency = 1800.0;
    cpu.flopsPerCycle = 32.0;
    cpu.interfaceBandwidth = 20.0;
    cpu.issueBandwidth = 24.0;
    cpu.overlap = 0.94;
    cpu.latencySensitivity = 0.08;
    cpu.fairShareWeight = 1.1;
    soc.pus.push_back(cpu);

    PuParams gpu;
    gpu.name = "Adreno 640 GPU";
    gpu.kind = PuKind::Gpu;
    gpu.frequency = gpu.maxFrequency = 585.0;
    gpu.flopsPerCycle = 1536.0;
    gpu.interfaceBandwidth = 28.0;
    gpu.issueBandwidth = 38.0;
    gpu.overlap = 0.95;
    gpu.latencySensitivity = 0.12;
    gpu.fairShareWeight = 1.0;
    soc.pus.push_back(gpu);

    return soc;
}

std::vector<BandwidthDemand>
externalDemands(const SocConfig &soc, std::size_t target_pu,
                GBps total_demand)
{
    PCCS_ASSERT(target_pu < soc.pus.size(), "bad target PU index %zu",
                target_pu);
    std::vector<BandwidthDemand> out;
    if (total_demand <= 0.0)
        return out;

    double cap_sum = 0.0;
    for (std::size_t i = 0; i < soc.pus.size(); ++i)
        if (i != target_pu)
            cap_sum += soc.pus[i].drawBandwidth();
    if (cap_sum <= 0.0)
        return out;

    for (std::size_t i = 0; i < soc.pus.size(); ++i) {
        if (i == target_pu)
            continue;
        const GBps cap = soc.pus[i].drawBandwidth();
        const GBps share =
            std::min(cap, total_demand * cap / cap_sum);
        if (share > 0.0) {
            // Calibrator kernels are streaming and row-friendly.
            out.push_back({share, 0.97, soc.pus[i].fairShareWeight});
        }
    }
    return out;
}

} // namespace pccs::soc
