/**
 * @file
 * The PU execution model: converts a kernel profile, a PU description,
 * and a memory-bandwidth grant into an execution rate.
 *
 * Per DRAM byte of work, the kernel spends t_c = I / C seconds of
 * compute and t_m = 1 / S seconds of memory service (S = the PU's
 * draw capability bounded by the memory system's single-source
 * effective bandwidth); the two overlap according to the PU's overlap
 * quality o:
 *
 *     t_base = max(t_c, t_m) + (1 - o) * min(t_c, t_m)
 *
 * Under contention two independent effects add:
 *
 *  - queueing-latency inflation, proportional to the interference
 *    phi (the share of effective bandwidth served to *other* sources)
 *    and to the latency-exposed time (t_m + (1 - o) * t_c):
 *        stall = eta * latencyLoad * phi * (t_m + (1 - o) * t_c)
 *  - the fairness allocation's bandwidth grant G, a hard progress
 *    ceiling:
 *        t = max(t_base + stall, 1 / G)
 *
 * The stall term is what slows down even low-bandwidth kernels (the
 * minor contention region; and, with low overlap, the DLA's missing
 * minor region); the grant term produces the drop and the flat tail
 * of the normal/intensive regions. Standalone, phi = 0 and G equals
 * the demand, so the standalone rate is 1 / t_base with no iteration.
 */

#ifndef PCCS_SOC_EXEC_MODEL_HH
#define PCCS_SOC_EXEC_MODEL_HH

#include <vector>

#include "soc/kernel.hh"
#include "soc/memory_model.hh"
#include "soc/pu.hh"

namespace pccs::soc {

/** Standalone characterization of one kernel on one PU. */
struct StandaloneProfile
{
    /** Achieved standalone bandwidth = demand fed to slowdown models. */
    GBps bandwidthDemand = 0.0;
    /** Execution rate in DRAM bytes per second. */
    double rate = 0.0;
    /** Standalone execution time of the kernel's workBytes, seconds. */
    double seconds = 0.0;
};

/** Execution rates of a set of co-running kernels. */
struct CorunRates
{
    /** Progress rate per placement, DRAM bytes per second. */
    std::vector<double> rates;
    /** The bandwidth allocation that produced the rates. */
    AllocationResult allocation;
};

/**
 * Steady-state execution model over a shared memory system.
 */
class ExecutionModel
{
  public:
    explicit ExecutionModel(const MemoryParams &mem);

    /**
     * Profile a kernel running alone on a PU (the simulator's analogue
     * of profiling standalone runs with NVperf/perf).
     */
    StandaloneProfile standalone(const PuParams &pu,
                                 const KernelProfile &kernel) const;

    /**
     * Steady-state co-run rates for kernels[i] on pus[i] (parallel
     * arrays; each PU runs one kernel, matching the paper's scenario).
     */
    CorunRates corun(const std::vector<PuParams> &pus,
                     const std::vector<KernelProfile> &kernels) const;

    /**
     * Achieved relative speed (%) of kernel on pu when co-running with
     * the given external demand set. This is the quantity the paper's
     * figures plot.
     */
    double relativeSpeed(const PuParams &pu, const KernelProfile &kernel,
                         const std::vector<BandwidthDemand> &external) const;

    const SharedMemorySystem &memory() const { return mem_; }

  private:
    /** Bytes/second given a grant (GB/s) and interference share. */
    double rate(const PuParams &pu, const KernelProfile &kernel,
                GBps grant, double interference) const;

    /** Unconstrained demand used to seed the solo fixed point. */
    GBps rawDemand(const PuParams &pu, const KernelProfile &kernel) const;

    SharedMemorySystem mem_;
};

} // namespace pccs::soc

#endif // PCCS_SOC_EXEC_MODEL_HH
