/**
 * @file
 * Fluent construction of custom SoC configurations — the Figure 1
 * design questions ("what PUs should be put onto the SoC, how many
 * cores of each, what frequencies, what total memory bandwidth")
 * expressed as an API. Kind-specific templates carry the
 * characteristic contention behavior of each PU class (latency
 * hiding, fairness weight), so a designer only specifies the sizing
 * knobs.
 */

#ifndef PCCS_SOC_BUILDER_HH
#define PCCS_SOC_BUILDER_HH

#include <string>

#include "soc/soc_config.hh"

namespace pccs::soc {

/**
 * Characteristic (sizing-independent) parameters of a PU class:
 * compute/memory overlap, latency sensitivity, and fairness weight,
 * taken from the calibrated Xavier-class presets.
 */
PuParams puTemplate(PuKind kind);

/** Fluent builder for SocConfig. */
class SocBuilder
{
  public:
    explicit SocBuilder(std::string name);

    /** Set the memory subsystem from its peak bandwidth (GB/s). */
    SocBuilder &memory(GBps peak_bandwidth);

    /** Full control over the memory subsystem. */
    SocBuilder &memory(const MemoryParams &params);

    /**
     * Add a CPU cluster.
     * @param name display name
     * @param frequency clock, MHz
     * @param flops_per_cycle aggregate flops per clock
     * @param interface_bw memory-interface cap, GB/s
     * @param issue_bw load-issue capability at this clock's maximum,
     *        GB/s (defaults to 1.13x the interface, the Xavier ratio)
     */
    SocBuilder &addCpu(const std::string &name, MHz frequency,
                       double flops_per_cycle, GBps interface_bw,
                       GBps issue_bw = 0.0);

    /** Add a GPU (issue default: 1.53x the interface). */
    SocBuilder &addGpu(const std::string &name, MHz frequency,
                       double flops_per_cycle, GBps interface_bw,
                       GBps issue_bw = 0.0);

    /** Add a DLA-class accelerator (issue default: 1.13x). */
    SocBuilder &addDla(const std::string &name, MHz frequency,
                       double flops_per_cycle, GBps interface_bw,
                       GBps issue_bw = 0.0);

    /** Add a fully specified PU. */
    SocBuilder &addPu(const PuParams &pu);

    /** Validate and return the configuration; fatal when invalid. */
    SocConfig build() const;

  private:
    SocBuilder &add(PuKind kind, const std::string &name,
                    MHz frequency, double flops_per_cycle,
                    GBps interface_bw, GBps issue_bw,
                    double default_issue_ratio);

    SocConfig config_;
    bool memorySet_ = false;
};

} // namespace pccs::soc

#endif // PCCS_SOC_BUILDER_HH
