#include "simulator.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace pccs::soc {

SocSimulator::SocSimulator(SocConfig config)
    : config_(std::move(config)), model_(config_.memory)
{
    PCCS_ASSERT(!config_.pus.empty(), "SoC has no processing units");
}

StandaloneProfile
SocSimulator::profile(std::size_t pu_index,
                      const KernelProfile &kernel) const
{
    PCCS_ASSERT(pu_index < config_.pus.size(), "bad PU index %zu",
                pu_index);
    return model_.standalone(config_.pus[pu_index], kernel);
}

StandaloneProfile
SocSimulator::profile(PuKind kind, const KernelProfile &kernel) const
{
    const int idx = config_.puIndex(kind);
    if (idx < 0)
        fatal("SoC '%s' has no %s", config_.name.c_str(),
              puKindName(kind));
    return profile(static_cast<std::size_t>(idx), kernel);
}

double
SocSimulator::relativeSpeedUnderPressure(std::size_t pu_index,
                                         const KernelProfile &kernel,
                                         GBps external) const
{
    PCCS_ASSERT(pu_index < config_.pus.size(), "bad PU index %zu",
                pu_index);
    const auto ext = externalDemands(config_, pu_index, external);
    return model_.relativeSpeed(config_.pus[pu_index], kernel, ext);
}

CorunOutcome
SocSimulator::run(const std::vector<Placement> &placements,
                  StopPolicy stop) const
{
    PCCS_ASSERT(!placements.empty(), "co-run needs placements");
    for (const auto &p : placements) {
        PCCS_ASSERT(p.puIndex < config_.pus.size(),
                    "placement on missing PU index %zu", p.puIndex);
        PCCS_ASSERT(!p.workload.phases.empty(),
                    "workload '%s' has no phases",
                    p.workload.name.c_str());
    }

    struct State
    {
        std::size_t phase = 0;
        double remaining = 0.0; // bytes left in current phase
        double bytesDone = 0.0;
        double soloSeconds = 0.0; // standalone time of completed bytes
        double corunSeconds = 0.0;
        bool finished = false;
    };
    std::vector<State> states(placements.size());
    for (std::size_t i = 0; i < placements.size(); ++i)
        states[i].remaining = placements[i].workload.phases[0].workBytes;

    double now = 0.0;
    const int max_steps = 1 << 20;
    for (int step = 0; step < max_steps; ++step) {
        // Gather the active phase set.
        std::vector<std::size_t> active;
        std::vector<PuParams> pus;
        std::vector<KernelProfile> kernels;
        for (std::size_t i = 0; i < placements.size(); ++i) {
            if (states[i].finished)
                continue;
            active.push_back(i);
            pus.push_back(config_.pus[placements[i].puIndex]);
            kernels.push_back(
                placements[i].workload.phases[states[i].phase]);
        }
        if (active.empty())
            break;

        const CorunRates rates = model_.corun(pus, kernels);

        // Advance to the earliest phase boundary.
        double dt = std::numeric_limits<double>::infinity();
        for (std::size_t a = 0; a < active.size(); ++a) {
            PCCS_ASSERT(rates.rates[a] > 0.0,
                        "stalled placement %zu (zero rate)", active[a]);
            dt = std::min(dt, states[active[a]].remaining /
                                  rates.rates[a]);
        }

        bool someone_finished = false;
        for (std::size_t a = 0; a < active.size(); ++a) {
            State &st = states[active[a]];
            const double moved = rates.rates[a] * dt;
            const StandaloneProfile solo =
                model_.standalone(pus[a], kernels[a]);
            st.bytesDone += moved;
            st.remaining -= moved;
            st.soloSeconds += moved / solo.rate;
            st.corunSeconds += dt;
            if (st.remaining <= 1e-6) {
                const auto &phases =
                    placements[active[a]].workload.phases;
                if (st.phase + 1 < phases.size()) {
                    ++st.phase;
                    st.remaining = phases[st.phase].workBytes;
                } else {
                    st.finished = true;
                    someone_finished = true;
                }
            }
        }
        now += dt;
        if (someone_finished && stop == StopPolicy::FirstFinish)
            break;
    }

    CorunOutcome out;
    out.seconds = now;
    out.placements.resize(placements.size());
    for (std::size_t i = 0; i < placements.size(); ++i) {
        PlacementOutcome &po = out.placements[i];
        const State &st = states[i];
        po.bytesCompleted = st.bytesDone;
        po.corunSeconds = st.corunSeconds;
        po.standaloneSeconds = st.soloSeconds;
        po.finished = st.finished;
        po.relativeSpeed = st.corunSeconds > 0.0
                               ? 100.0 * st.soloSeconds / st.corunSeconds
                               : 100.0;
    }
    return out;
}

} // namespace pccs::soc
