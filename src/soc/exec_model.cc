#include "exec_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pccs::soc {

ExecutionModel::ExecutionModel(const MemoryParams &mem) : mem_(mem) {}

double
ExecutionModel::rate(const PuParams &pu, const KernelProfile &kernel,
                     GBps grant, double interference) const
{
    const double compute = pu.computeGflops() * 1e9; // flops/s
    PCCS_ASSERT(compute > 0.0, "PU %s has no compute throughput",
                pu.name.c_str());
    const double t_c = kernel.intensity / compute; // s per byte

    // Solo memory service rate: the PU's draw capability bounded by
    // what the memory system delivers to a single source with this
    // stream's row locality.
    std::vector<BandwidthDemand> solo{
        {1.0, kernel.locality, pu.fairShareWeight}};
    const double service =
        std::min(pu.drawBandwidth() * bytesPerGB,
                 mem_.effectiveBandwidth(solo) * bytesPerGB);
    const double t_m = 1.0 / service; // s per byte, standalone

    // Base time per byte with compute/memory overlap.
    const double t_base = std::max(t_c, t_m) +
                          (1.0 - pu.overlap) * std::min(t_c, t_m);

    // Queueing-latency inflation: interference (the fraction of
    // effective bandwidth served to *other* sources) lengthens every
    // access of this PU's stream, pacing the whole kernel — the
    // per-PU latency sensitivity encodes how much of that inflation
    // the PU's parallelism hides. The inflation is independent of the
    // kernel's own demand, matching the observation that the paper's
    // minor-region slope (MRMC) is a per-PU constant.
    const double inflation = 1.0 + pu.latencySensitivity *
                                       mem_.params().latencyLoad *
                                       interference;

    // Bandwidth constraint: progress can never outrun the granted
    // bandwidth. Unconstrained kernels have grant == demand, where
    // 1/grant == t_base and the latency path dominates.
    double t = t_base * inflation;
    if (grant > 0.0)
        t = std::max(t, 1.0 / (grant * bytesPerGB));
    return 1.0 / t; // bytes per second
}

GBps
ExecutionModel::rawDemand(const PuParams &pu,
                          const KernelProfile &kernel) const
{
    return rate(pu, kernel, 0.0, 0.0) / bytesPerGB;
}

StandaloneProfile
ExecutionModel::standalone(const PuParams &pu,
                           const KernelProfile &kernel) const
{
    // Standalone there is no interference and the grant equals the
    // demand, so the achieved rate is the unconstrained rate directly.
    StandaloneProfile prof;
    prof.rate = rate(pu, kernel, 0.0, 0.0);
    prof.bandwidthDemand = prof.rate / bytesPerGB;
    prof.seconds =
        prof.rate > 0.0 ? kernel.workBytes / prof.rate : 0.0;
    return prof;
}

CorunRates
ExecutionModel::corun(const std::vector<PuParams> &pus,
                      const std::vector<KernelProfile> &kernels) const
{
    PCCS_ASSERT(pus.size() == kernels.size(),
                "corun: %zu PUs vs %zu kernels", pus.size(),
                kernels.size());
    std::vector<BandwidthDemand> demands;
    demands.reserve(pus.size());
    for (std::size_t i = 0; i < pus.size(); ++i) {
        const StandaloneProfile solo = standalone(pus[i], kernels[i]);
        demands.push_back({solo.bandwidthDemand, kernels[i].locality,
                           pus[i].fairShareWeight});
    }

    CorunRates result;
    result.allocation = mem_.allocate(demands);
    double served = 0.0;
    for (GBps g : result.allocation.grants)
        served += g;

    result.rates.reserve(pus.size());
    for (std::size_t i = 0; i < pus.size(); ++i) {
        const double interference =
            result.allocation.effectiveBandwidth > 0.0
                ? (served - result.allocation.grants[i]) /
                      result.allocation.effectiveBandwidth
                : 0.0;
        result.rates.push_back(rate(pus[i], kernels[i],
                                    result.allocation.grants[i],
                                    interference));
    }
    return result;
}

double
ExecutionModel::relativeSpeed(
    const PuParams &pu, const KernelProfile &kernel,
    const std::vector<BandwidthDemand> &external) const
{
    const StandaloneProfile solo = standalone(pu, kernel);

    std::vector<BandwidthDemand> demands;
    demands.reserve(external.size() + 1);
    demands.push_back(
        {solo.bandwidthDemand, kernel.locality, pu.fairShareWeight});
    for (const auto &e : external)
        demands.push_back(e);

    const AllocationResult alloc = mem_.allocate(demands);
    double served = 0.0;
    for (GBps g : alloc.grants)
        served += g;
    const double interference =
        alloc.effectiveBandwidth > 0.0
            ? (served - alloc.grants[0]) / alloc.effectiveBandwidth
            : 0.0;
    const double corun_rate =
        rate(pu, kernel, alloc.grants[0], interference);
    return solo.rate > 0.0 ? 100.0 * corun_rate / solo.rate : 0.0;
}

} // namespace pccs::soc
