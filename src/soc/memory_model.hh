/**
 * @file
 * The shared-memory contention model of the SoC simulator.
 *
 * Two mechanisms — identified by the paper's Section 2.3 analysis as
 * the causes of the observed three-region slowdown shapes — are
 * modeled explicitly:
 *
 * 1. Load-dependent effective bandwidth. The memory controller keeps a
 *    high row-buffer hit rate for a single streaming source, but when
 *    several sources interleave their requests, the hit rate (and with
 *    it the achievable fraction of peak bandwidth) degrades. This is
 *    why contention effects appear even before the sum of demands
 *    reaches the nominal peak (the paper's Figure 2 observation).
 *
 * 2. Fairness-controlled allocation. A fairness-aware scheduling
 *    policy (ATLAS/TCM/SMS class) grants every source up to a weighted
 *    fair share of the effective bandwidth: small demands are always
 *    satisfied, and a source demanding more than its share is capped
 *    at it — which is why a victim's slowdown flattens once the
 *    external demand exceeds the external sources' granted share
 *    (the flat segment past the Contention Balance Point).
 *
 * A proportional-sharing mode reproduces the Gables assumption and is
 * used for ablation.
 */

#ifndef PCCS_SOC_MEMORY_MODEL_HH
#define PCCS_SOC_MEMORY_MODEL_HH

#include <vector>

#include "common/units.hh"

namespace pccs::soc {

/** How the effective bandwidth is divided among competing sources. */
enum class AllocationPolicy
{
    /** Weighted water-filling (fairness control); the default. */
    FairWaterFill,
    /** Pro-rata division of peak bandwidth (the Gables assumption). */
    Proportional,
};

/** Parameters of the shared memory subsystem. */
struct MemoryParams
{
    /** Theoretical peak bandwidth, GB/s. */
    GBps peakBandwidth = 137.0;

    /**
     * Fraction of peak achievable by a single well-behaved streaming
     * source (row-buffer-friendly traffic).
     */
    double baseEfficiency = 0.93;

    /** Efficiency floor under heavy multi-source interleaving. */
    double minEfficiency = 0.62;

    /**
     * Strength of the efficiency loss caused by request interleaving
     * between sources (multiplies a mixing index in [0, 1]).
     */
    double mixPenalty = 0.22;

    /**
     * Strength of the efficiency loss caused by poor row locality of
     * the access streams themselves.
     */
    double localityPenalty = 0.30;

    /** Scale of queueing-latency inflation with served load. */
    double latencyLoad = 1.0;

    AllocationPolicy policy = AllocationPolicy::FairWaterFill;

    /** @return a copy with peak bandwidth scaled by `ratio`. */
    MemoryParams scaled(double ratio) const
    {
        MemoryParams m = *this;
        m.peakBandwidth = peakBandwidth * ratio;
        return m;
    }
};

/** One competing source as the allocator sees it. */
struct BandwidthDemand
{
    /** Requested (standalone) bandwidth, GB/s. */
    GBps demand = 0.0;
    /** Row locality of the stream, [0, 1]. */
    double locality = 0.9;
    /** Fairness weight of the owning PU. */
    double weight = 1.0;
};

/** Result of one allocation round. */
struct AllocationResult
{
    /** Granted bandwidth per source, GB/s (same order as demands). */
    std::vector<GBps> grants;
    /** Effective total bandwidth under this load, GB/s. */
    GBps effectiveBandwidth = 0.0;
    /** Served-load ratio in [0, 1]: min(total demand, eff) / eff. */
    double loadRatio = 0.0;
    /** Modeled row-buffer efficiency in [minEff, baseEff]. */
    double efficiency = 0.0;
};

/**
 * The shared-memory bandwidth allocator (one call = one steady-state
 * epoch).
 */
class SharedMemorySystem
{
  public:
    explicit SharedMemorySystem(const MemoryParams &params);

    /** Allocate bandwidth among the given concurrent demands. */
    AllocationResult allocate(
        const std::vector<BandwidthDemand> &demands) const;

    /**
     * Effective total bandwidth under the given demand set, GB/s
     * (before division among sources).
     */
    GBps effectiveBandwidth(
        const std::vector<BandwidthDemand> &demands) const;

    const MemoryParams &params() const { return params_; }

  private:
    /**
     * Weighted water-filling: find grants g_i = min(d_i, w_i * f) with
     * sum(g_i) = min(sum(d_i), capacity).
     */
    static std::vector<GBps> waterFill(
        const std::vector<BandwidthDemand> &demands, GBps capacity);

    MemoryParams params_;
};

} // namespace pccs::soc

#endif // PCCS_SOC_MEMORY_MODEL_HH
