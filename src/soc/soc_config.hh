/**
 * @file
 * Whole-SoC configurations: the processing units plus the shared
 * memory subsystem, with presets modeled after the paper's two
 * experiment platforms (Table 6).
 */

#ifndef PCCS_SOC_SOC_CONFIG_HH
#define PCCS_SOC_SOC_CONFIG_HH

#include <string>
#include <vector>

#include "soc/memory_model.hh"
#include "soc/pu.hh"

namespace pccs::soc {

/** A heterogeneous shared-memory SoC. */
struct SocConfig
{
    std::string name;
    MemoryParams memory;
    std::vector<PuParams> pus;

    /** @return index of the first PU of `kind`, or -1 if absent. */
    int puIndex(PuKind kind) const;

    /** @return the first PU of `kind`; fatal if absent. */
    const PuParams &pu(PuKind kind) const;

    /** Mutable access to the first PU of `kind`; fatal if absent. */
    PuParams &pu(PuKind kind);

    /**
     * @return a copy with the memory subsystem's bandwidth scaled by
     * `ratio` (frequency and/or channel-count change, Section 3.3).
     */
    SocConfig withMemoryScaled(double ratio) const;
};

/**
 * An SoC modeled after the NVIDIA Jetson AGX Xavier: 8-core Carmel
 * CPU @ 2265 MHz, 512-core Volta GPU @ 1377 MHz, DLA @ 1395 MHz,
 * 137 GB/s of LPDDR4x. The PU-level bandwidth caps match the demands
 * reported in the paper's Figure 2 (CPU 93, GPU 127, DLA 30 GB/s).
 */
SocConfig xavierLike();

/**
 * An SoC modeled after the Qualcomm Snapdragon 855: 8-core Kryo 485
 * CPU @ 1.8 GHz and an Adreno 640 GPU over 34 GB/s of LPDDR4x.
 */
SocConfig snapdragonLike();

/**
 * Build the set of external bandwidth demands totaling `total_demand`
 * GB/s, spread over the SoC's PUs other than `target_pu` in proportion
 * to their draw capabilities (the paper creates external pressure by
 * running calibrator kernels on the other PUs). Demands beyond what
 * the other PUs can draw are clipped, mirroring the note under
 * Figure 3 that actual pressure can be lower than demanded.
 */
std::vector<BandwidthDemand> externalDemands(const SocConfig &soc,
                                             std::size_t target_pu,
                                             GBps total_demand);

} // namespace pccs::soc

#endif // PCCS_SOC_SOC_CONFIG_HH
