#include "trace.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace pccs::soc {

std::vector<GBps>
traceWorkload(const SocSimulator &sim, std::size_t pu_index,
              const PhasedWorkload &workload, const TraceOptions &opts)
{
    PCCS_ASSERT(opts.samplePeriod > 0.0, "sample period must be > 0");
    PCCS_ASSERT(!workload.phases.empty(), "workload has no phases");

    Rng rng(opts.seed);
    std::vector<GBps> trace;
    for (const auto &phase : workload.phases) {
        const StandaloneProfile prof = sim.profile(pu_index, phase);
        const auto samples = static_cast<std::size_t>(
            std::ceil(prof.seconds / opts.samplePeriod));
        for (std::size_t s = 0; s < std::max<std::size_t>(samples, 1);
             ++s) {
            double v = prof.bandwidthDemand;
            if (opts.noise > 0.0)
                v *= 1.0 + rng.uniform(-opts.noise, opts.noise);
            trace.push_back(v);
        }
    }
    return trace;
}

} // namespace pccs::soc
