#include "pu.hh"

#include "common/logging.hh"

namespace pccs::soc {

const char *
puKindName(PuKind kind)
{
    switch (kind) {
      case PuKind::Cpu:
        return "CPU";
      case PuKind::Gpu:
        return "GPU";
      case PuKind::Dla:
        return "DLA";
    }
    panic("unknown PuKind %d", static_cast<int>(kind));
}

} // namespace pccs::soc
