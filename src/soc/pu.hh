/**
 * @file
 * Processing-unit (PU) descriptions for the heterogeneous shared-memory
 * SoC simulator.
 *
 * A PU is characterized by its compute throughput, how much memory
 * bandwidth it can draw (interface cap and frequency-scaled issue
 * capability), how well it overlaps compute with memory, how sensitive
 * it is to memory latency inflation, and how much service the fairness
 * policy of the memory controller tends to grant it.
 */

#ifndef PCCS_SOC_PU_HH
#define PCCS_SOC_PU_HH

#include <string>

#include "common/units.hh"

namespace pccs::soc {

/** Kinds of processing units the paper's SoCs embed. */
enum class PuKind { Cpu, Gpu, Dla };

/** @return display name of a PU kind ("CPU", "GPU", "DLA"). */
const char *puKindName(PuKind kind);

/** Static description of one processing unit. */
struct PuParams
{
    /** Display name, e.g. "Carmel CPU". */
    std::string name;
    PuKind kind = PuKind::Cpu;

    /** Current clock in MHz. */
    MHz frequency = 1000.0;
    /** Nominal (maximum) clock in MHz. */
    MHz maxFrequency = 1000.0;

    /** Aggregate useful flops per clock across all cores/SMs. */
    double flopsPerCycle = 8.0;

    /**
     * Memory-interface bandwidth cap in GB/s: the most this PU can draw
     * regardless of clock (load/store unit + interconnect port width).
     */
    GBps interfaceBandwidth = 100.0;

    /**
     * Load-issue capability at maxFrequency in GB/s. Scales linearly
     * with clock; the effective draw cap is
     * min(interfaceBandwidth, issueBandwidth * f / fmax). Setting
     * issueBandwidth > interfaceBandwidth gives the PU clock headroom:
     * memory-bound kernels keep full speed until the clock drops below
     * fmax * interfaceBandwidth / issueBandwidth (the Figure 15 story).
     */
    GBps issueBandwidth = 100.0;

    /**
     * Compute/memory overlap quality in [0, 1]: 1 = perfect overlap
     * (ideal latency hiding), 0 = fully serialized. GPUs are near 1;
     * streaming accelerators are lower.
     */
    double overlap = 0.9;

    /**
     * Sensitivity to memory-latency inflation under load (dimensionless
     * slope of the latency factor in the served-load ratio). High for
     * PUs with little thread-level parallelism (the DLA), low for GPUs.
     */
    double latencySensitivity = 0.3;

    /**
     * Relative service weight the memory controller's fairness policy
     * grants this PU (1.0 = equal share). GPUs attain somewhat more
     * than an equal share because their deep request queues keep row
     * locality high in their service slots.
     */
    double fairShareWeight = 1.0;

    /** @return compute throughput at the current clock, in GFlop/s. */
    double computeGflops() const
    {
        return frequency * 1e6 * flopsPerCycle / 1e9;
    }

    /** @return max bandwidth this PU can draw at its current clock. */
    GBps drawBandwidth() const
    {
        const double scale =
            maxFrequency > 0.0 ? frequency / maxFrequency : 1.0;
        const GBps issue = issueBandwidth * scale;
        return issue < interfaceBandwidth ? issue : interfaceBandwidth;
    }

    /** @return a copy of this PU clocked at `f` MHz. */
    PuParams atFrequency(MHz f) const
    {
        PuParams p = *this;
        p.frequency = f;
        return p;
    }
};

} // namespace pccs::soc

#endif // PCCS_SOC_PU_HH
