/**
 * @file
 * The co-run SoC simulator: runs multi-phase workloads placed on the
 * SoC's processing units over the shared memory system, advancing
 * phase by phase, and reports measured ("actual") relative speeds.
 *
 * This component plays the role the physical Jetson Xavier and
 * Snapdragon boards play in the paper's evaluation: its outputs are
 * the ground truth that PCCS and Gables predictions are scored
 * against.
 */

#ifndef PCCS_SOC_SIMULATOR_HH
#define PCCS_SOC_SIMULATOR_HH

#include <vector>

#include "soc/exec_model.hh"
#include "soc/soc_config.hh"

namespace pccs::soc {

/** One workload placed on one PU of the SoC. */
struct Placement
{
    std::size_t puIndex = 0;
    PhasedWorkload workload;
};

/** When to stop the co-run simulation. */
enum class StopPolicy
{
    /** Stop when the first workload finishes (the Fig. 14 protocol). */
    FirstFinish,
    /** Run until every workload finishes. */
    AllFinish,
};

/** Per-placement outcome of a co-run. */
struct PlacementOutcome
{
    double bytesCompleted = 0.0;
    /** Wall-clock the placement actually ran in the co-run, seconds. */
    double corunSeconds = 0.0;
    /** Time the completed bytes would have taken standalone, seconds. */
    double standaloneSeconds = 0.0;
    /** Achieved relative speed, % (standalone / co-run time). */
    double relativeSpeed = 0.0;
    bool finished = false;
};

/** Outcome of one co-run simulation. */
struct CorunOutcome
{
    std::vector<PlacementOutcome> placements;
    /** Simulated duration, seconds. */
    double seconds = 0.0;
};

/**
 * Epoch-driven co-run simulator over the steady-state execution model.
 */
class SocSimulator
{
  public:
    explicit SocSimulator(SocConfig config);

    const SocConfig &config() const { return config_; }
    const ExecutionModel &model() const { return model_; }

    /** Standalone profile of a kernel on a PU (by index). */
    StandaloneProfile profile(std::size_t pu_index,
                              const KernelProfile &kernel) const;

    /** Standalone profile of a kernel on the first PU of `kind`. */
    StandaloneProfile profile(PuKind kind,
                              const KernelProfile &kernel) const;

    /** Simulate the co-run of the given placements. */
    CorunOutcome run(const std::vector<Placement> &placements,
                     StopPolicy stop = StopPolicy::FirstFinish) const;

    /**
     * Sweep helper: achieved relative speed (%) of `kernel` on PU
     * `pu_index` under `external` GB/s of synthetic demand from the
     * other PUs.
     */
    double relativeSpeedUnderPressure(std::size_t pu_index,
                                      const KernelProfile &kernel,
                                      GBps external) const;

  private:
    SocConfig config_;
    ExecutionModel model_;
};

} // namespace pccs::soc

#endif // PCCS_SOC_SIMULATOR_HH
