/**
 * @file
 * Kernel descriptions consumed by the SoC execution model.
 *
 * A kernel is characterized at the DRAM level: its effective
 * operational intensity (useful flops per byte of DRAM traffic, i.e.,
 * after caches) and its row-buffer locality. Work is measured in bytes
 * of DRAM traffic so that bandwidth-demand arithmetic stays simple.
 */

#ifndef PCCS_SOC_KERNEL_HH
#define PCCS_SOC_KERNEL_HH

#include <string>
#include <vector>

#include "common/units.hh"

namespace pccs::soc {

/** One kernel (or one phase of a multi-phase program). */
struct KernelProfile
{
    std::string name;

    /** Effective operational intensity, flops per DRAM byte. */
    double intensity = 1.0;

    /** Row-buffer locality of the DRAM access stream, in [0, 1]. */
    double locality = 0.9;

    /** Total DRAM traffic of one execution, bytes. */
    double workBytes = 1e9;

    /** @return a renamed copy (for phase labeling). */
    KernelProfile named(std::string new_name) const
    {
        KernelProfile k = *this;
        k.name = std::move(new_name);
        return k;
    }
};

/**
 * A program as the slowdown methodology sees it: a sequence of phases,
 * each a kernel profile with its own bandwidth demand. Single-kernel
 * programs have one phase.
 */
struct PhasedWorkload
{
    std::string name;
    std::vector<KernelProfile> phases;

    /** Convenience: wrap a single kernel as a one-phase workload. */
    static PhasedWorkload single(KernelProfile kernel)
    {
        PhasedWorkload w;
        w.name = kernel.name;
        w.phases.push_back(std::move(kernel));
        return w;
    }

    /** @return total DRAM traffic across phases, bytes. */
    double totalBytes() const
    {
        double b = 0.0;
        for (const auto &p : phases)
            b += p.workBytes;
        return b;
    }
};

} // namespace pccs::soc

#endif // PCCS_SOC_KERNEL_HH
